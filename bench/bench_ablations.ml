(* Ablations of the design choices DESIGN.md calls out, plus the
   repository's extensions beyond the paper:

   - ABFT vs the general-purpose DMR/TMR redundancy the paper's intro
     argues against;
   - checksum row count d: detection-only (1), the paper's locate+correct
     (2), two-errors-per-column (4) and its overhead;
   - the K auto-tuner: optimal verification interval vs failure rate;
   - the final-sweep extension's cost;
   - CPU vs GPU checksum-update placement, forced both ways on both
     machines (the Optimization-2 decision surface). *)

module C = Cholesky
open Bench_util

let enhanced = Abft.Scheme.enhanced ()

let ablation_redundancy () =
  header "Ablation — ABFT vs general-purpose redundancy (DMR/TMR)";
  Format.printf "%-14s %10s %16s %16s %16s %16s@." "machine" "n" "enhanced"
    "dmr(detect)" "dmr(faulty)" "tmr(correct)";
  List.iter
    (fun ((machine : Hetsim.Machine.t), n) ->
      let base = baseline machine n in
      let enh = (run machine enhanced n).C.Schedule.makespan in
      let dmr = C.Redundancy.dmr machine ~n in
      let dmr_faulty = C.Redundancy.dmr ~faulty:true machine ~n in
      let tmr = C.Redundancy.tmr machine ~n in
      Format.printf "%-14s %10d %9.2fs/+%3.1f%% %9.2fs/+%3.0f%% %9.2fs/+%3.0f%% %9.2fs/+%3.0f%%@."
        machine.Hetsim.Machine.name n enh
        ((enh -. base) /. base *. 100.)
        dmr.C.Redundancy.makespan
        (dmr.C.Redundancy.overhead_vs_plain *. 100.)
        dmr_faulty.C.Redundancy.makespan
        (dmr_faulty.C.Redundancy.overhead_vs_plain *. 100.)
        tmr.C.Redundancy.makespan
        (tmr.C.Redundancy.overhead_vs_plain *. 100.))
    machines;
  paper
    "intro: DMR costs 100%% to detect, TMR 200%% to correct; ABFT a few \
     percent for the same single-error coverage"

let ablation_checksum_rows () =
  header "Ablation — checksum rows d (capability vs overhead)";
  Format.printf
    "  d=1: detects, cannot locate; d=2 (paper): corrects 1 error/column; \
     d=4 (extension): corrects 2 errors/column@.";
  Format.printf "%-14s %10s %12s %12s %12s@." "machine" "n" "d=2" "d=3" "d=4";
  List.iter
    (fun ((machine : Hetsim.Machine.t), n) ->
      let overhead d =
        let cfg = C.Config.make ~machine ~scheme:enhanced () in
        let r = C.Schedule.run ~d cfg ~n in
        overhead_pct machine n r.C.Schedule.makespan
      in
      Format.printf "%-14s %10d %11.2f%% %11.2f%% %11.2f%%@."
        machine.Hetsim.Machine.name n (overhead 2) (overhead 3) (overhead 4))
    machines;
  note
    "checksum traffic is one fused pass per tile regardless of d, so extra \
     rows cost mainly update flops — double-error protection is nearly free"

let ablation_ktuner () =
  header "Ablation — verification-interval auto-tuning vs failure rate";
  Format.printf "%-14s %14s %6s %14s %14s@." "machine" "errors/hour" "K*"
    "fault-free" "expected";
  List.iter
    (fun ((machine : Hetsim.Machine.t), n) ->
      let b = machine.Hetsim.Machine.default_block in
      let streams = machine.Hetsim.Machine.gpu.Hetsim.Device.max_concurrent_kernels in
      let base = baseline machine n in
      let verify_cost_s k =
        Abft.Ktuner.verify_cost_model ~machine ~n ~b ~streams k
      in
      List.iter
        (fun per_hour ->
          let e =
            Abft.Ktuner.optimal_k ~base_s:base ~verify_cost_s
              ~error_rate:(per_hour /. 3600.) ()
          in
          Format.printf "%-14s %14.1f %6d %13.4fs %13.4fs@."
            machine.Hetsim.Machine.name per_hour e.Abft.Ktuner.k
            e.Abft.Ktuner.fault_free_s e.Abft.Ktuner.expected_s)
        [ 0.; 1.; 60.; 600.; 7200. ])
    machines;
  paper
    "§V-C: 'for systems with low error rate, we can increase K ... keep K low \
     for systems with high error rate'"

let ablation_final_sweep () =
  header "Ablation — final-sweep extension cost (beyond the paper)";
  (* The sweep is one more verification pass over all n^2/... tiles:
     quantified against the per-run verification totals in numeric mode
     and as simulated time. *)
  List.iter
    (fun ((machine : Hetsim.Machine.t), n) ->
      let b = machine.Hetsim.Machine.default_block in
      let g = n / b in
      let tiles = g * (g + 1) / 2 in
      let kernels =
        List.init tiles (fun _ -> Hetsim.Kernel.Checksum_recalc { b; nchk = 2 })
      in
      let cost =
        Hetsim.Cost_model.batch_duration machine.Hetsim.Machine.gpu
          ~streams:machine.Hetsim.Machine.gpu.Hetsim.Device.max_concurrent_kernels
          kernels
      in
      let base = baseline machine n in
      Format.printf "  %-14s n=%-7d sweep of %5d tiles: %.4fs = %.3f%% of the run@."
        machine.Hetsim.Machine.name n tiles cost (cost /. base *. 100.))
    machines;
  note
    "closes the after-last-read storage window for every scheme at O(n^2) \
     bandwidth cost"

let ablation_placement_forced () =
  header "Ablation — Optimization-2 placement forced both ways";
  Format.printf "%-14s %10s %14s %14s %14s@." "machine" "n" "gpu-inline"
    "gpu-stream" "cpu-offload";
  List.iter
    (fun ((machine : Hetsim.Machine.t), n) ->
      let t opt2 =
        (run ~opt2 machine enhanced n).C.Schedule.makespan
      in
      Format.printf "%-14s %10d %13.4fs %13.4fs %13.4fs@."
        machine.Hetsim.Machine.name n (t C.Config.Gpu_inline)
        (t C.Config.Gpu_stream) (t C.Config.Cpu_offload))
    machines;
  paper "§VII-D picked CPU on tardis and GPU on bulldozer64"

let run () =
  ablation_redundancy ();
  ablation_checksum_rows ();
  ablation_ktuner ();
  ablation_final_sweep ();
  ablation_placement_forced ()
