(* Balance — static vs adaptive CPU/GPU splitting of the trailing
   update.

   Part 1 (clean machines) is a regression gate: with no faults the
   adaptive balancer's efficiency estimates sit at their 1.0 fixpoint,
   so the adaptive schedule must be bitwise identical to the static
   one, and both must stay within a small band of the historical
   GPU-only schedule (the split only pays off when the CPU has real
   spare throughput).

   Part 2 runs the canonical GPU storm (Machine_cli.storm_reliability)
   and compares the three policies seed-by-seed: the adaptive policy
   should shift rows off the misbehaving GPU and beat the frozen
   split, and it reports how many re-splits and rejoins it took. *)

module C = Cholesky

let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

(* Quarantined GPUs get the half-open re-probe in the storm runs so
   the rejoin path is part of what the comparison measures; the same
   policy serves every mode, so balancing is the only variable. *)
let storm_policy =
  {
    Hetsim.Resilient.default_policy with
    Hetsim.Resilient.reprobe_after_s = 0.05;
  }

let run_mode ?balance ?policy ~machine ~seed n =
  let cfg = C.Config.make ~machine ~scheme:(Abft.Scheme.enhanced ()) ?balance () in
  C.Schedule.run ?policy ~fault_seed:seed cfg ~n

let clean_part () =
  Bench_util.header "Balance — clean machines (adaptive must match static)";
  Format.printf "%-14s%14s%14s%14s%12s@." "machine" "off" "static" "adaptive"
    "adapt=stat";
  List.iter
    (fun (machine, n) ->
      let ms balance =
        (run_mode ?balance ~machine ~seed:1 n).C.Schedule.makespan
      in
      let off = ms None in
      let stat = ms (Some Hetsim.Load_balancer.Static) in
      let adapt = ms (Some Hetsim.Load_balancer.Adaptive) in
      let exact = Float.equal adapt stat in
      Format.printf "%-14s%12.4f s%12.4f s%12.4f s%12b@."
        machine.Hetsim.Machine.name off stat adapt exact;
      Bench_util.record
        ~name:(Printf.sprintf "clean/%s" machine.Hetsim.Machine.name)
        ~size:n
        [
          ("makespan_off_s", off);
          ("makespan_static_s", stat);
          ("makespan_adaptive_s", adapt);
          ("adaptive_equals_static", if exact then 1. else 0.);
          ("static_vs_off_pct", (stat -. off) /. off *. 100.);
        ])
    Bench_util.machines

let storm_part () =
  Bench_util.header
    "Balance — canonical GPU storm (rate 1.0), mean over seeds";
  Format.printf "%-14s%14s%14s%14s%11s%10s%9s@." "machine" "off" "static"
    "adaptive" "vs static" "resplits" "rejoins";
  List.iter
    (fun (machine, _) ->
      let n = 10240 in
      let m = Machine_cli.apply_device_faults ~rate:1.0 machine in
      let runs balance =
        List.map
          (fun seed ->
            run_mode ?balance ~policy:storm_policy ~machine:m ~seed n)
          seeds
      in
      let mean f rs =
        List.fold_left (fun a r -> a +. f r) 0. rs
        /. float_of_int (List.length rs)
      in
      let ms = mean (fun r -> r.C.Schedule.makespan) in
      let off = ms (runs None) in
      let static_runs = runs (Some Hetsim.Load_balancer.Static) in
      let stat = ms static_runs in
      let adaptive_runs = runs (Some Hetsim.Load_balancer.Adaptive) in
      let adapt = ms adaptive_runs in
      let stat_of f =
        mean (fun r -> float_of_int (f r.C.Schedule.resilience)) adaptive_runs
      in
      let resplits = stat_of (fun s -> s.Hetsim.Resilient.resplits) in
      let rejoins = stat_of (fun s -> s.Hetsim.Resilient.rejoins) in
      let speedup_pct = (stat -. adapt) /. stat *. 100. in
      Format.printf "%-14s%12.4f s%12.4f s%12.4f s%+10.1f%%%10.1f%9.1f@."
        machine.Hetsim.Machine.name off stat adapt speedup_pct resplits
        rejoins;
      Bench_util.record
        ~name:(Printf.sprintf "storm/%s" machine.Hetsim.Machine.name)
        ~size:n
        [
          ("makespan_off_s", off);
          ("makespan_static_s", stat);
          ("makespan_adaptive_s", adapt);
          ("speedup_vs_static_pct", speedup_pct);
          ("resplits", resplits);
          ("rejoins", rejoins);
        ])
    Bench_util.machines;
  Bench_util.note
    "virtual time; storm rows averaged over %d seeds with half-open \
     re-probing on for every mode. speedup > 0 means the adaptive split \
     finished the storm faster than the frozen one."
    (List.length seeds)

let run () =
  clean_part ();
  storm_part ()
