(* Fault-coverage measurement (numeric mode): Monte-Carlo over many
   randomly placed single faults, per scheme, counting how each run
   ends — corrected inline, recovered by recomputation, or silently
   wrong. This is the statistical version of Tables VII/VIII's
   three-column capability story, run on real arithmetic with real
   corruption, plus the checkpointing comparison the related work
   motivates. *)

module C = Cholesky
open Bench_util

type tally = {
  mutable clean_success : int;  (* corrected inline, no restart *)
  mutable recovered : int;  (* success after >= 1 recomputation *)
  mutable silent : int;
  mutable gave_up : int;
}

let tally () = { clean_success = 0; recovered = 0; silent = 0; gave_up = 0 }

let coverage_matrix () =
  header "Coverage — Monte-Carlo of single random faults (numeric mode)";
  let trials = 60 in
  let grid = 6 and block = 8 in
  let n = grid * block in
  Format.printf
    "%d trials per scheme x window, %dx%d matrix (%dx%d tiles), covered \
     windows only@."
    trials n n grid grid;
  Format.printf "%-14s %-10s %10s %10s %10s %10s@." "scheme" "window"
    "corrected" "recovered" "silent" "gave-up";
  let a = Matrix.Spd.random_spd ~seed:99 n in
  List.iter
    (fun scheme ->
      List.iter
        (fun (wname, storage_fraction) ->
          let t = tally () in
          for seed = 0 to trials - 1 do
            let plan =
              Fault.random_plan ~covered_only:true ~seed ~grid ~block ~count:1
                ~storage_fraction ()
            in
            let cfg =
              C.Config.make ~machine:Hetsim.Machine.testbench ~block ~scheme ()
            in
            let r = C.Ft.factor ~plan cfg a in
            match (r.C.Ft.outcome, r.C.Ft.stats.C.Ft.restarts) with
            | C.Ft.Success, 0 -> t.clean_success <- t.clean_success + 1
            | C.Ft.Success, _ -> t.recovered <- t.recovered + 1
            | C.Ft.Silent_corruption, _ -> t.silent <- t.silent + 1
            | C.Ft.Gave_up _, _ -> t.gave_up <- t.gave_up + 1
          done;
          Format.printf "%-14s %-10s %10d %10d %10d %10d@."
            (Abft.Scheme.name scheme) wname t.clean_success t.recovered
            t.silent t.gave_up)
        [ ("computing", 0.); ("storage", 1.) ])
    [
      Abft.Scheme.Offline;
      Abft.Scheme.Online;
      Abft.Scheme.enhanced ();
      Abft.Scheme.enhanced ~k:3 ();
    ];
  paper
    "Table VII in distribution form: Enhanced absorbs both windows inline; \
     Online absorbs computing errors only; Offline recovers everything at 2x.";
  note
    "'corrected' under Offline counts benign faults: deltas landing in the \
     zeroed upper triangle of a diagonal tile (erased by POTF2) or flips too \
     small to matter. 'silent' under Online+storage are flips that never \
     propagate into a post-update verification — the paper's motivating gap."

let checkpoint_comparison () =
  header "Coverage — ABFT vs periodic checkpoint/restart (Young/Daly)";
  Format.printf "%-14s %12s %14s %16s %16s@." "machine" "errors/hr"
    "enhanced" "ckpt(optimal)" "ckpt interval";
  List.iter
    (fun ((machine : Hetsim.Machine.t), n) ->
      let enh = (run machine (Abft.Scheme.enhanced ()) n).C.Schedule.makespan in
      List.iter
        (fun per_hour ->
          let rate = per_hour /. 3600. in
          let ck = C.Checkpoint.expected_time machine ~n ~error_rate:rate () in
          Format.printf "%-14s %12.1f %13.4fs %15.4fs %15.1fs@."
            machine.Hetsim.Machine.name per_hour enh ck.C.Checkpoint.expected_s
            ck.C.Checkpoint.interval_s)
        [ 1.; 60.; 600. ])
    machines;
  note
    "ABFT's expected time is flat in the error rate (correction is O(B) \
     flops); checkpointing pays the checkpoint stream plus expected rework, \
     growing with sqrt(rate)."

let run () =
  coverage_matrix ();
  checkpoint_comparison ()
