(* Reproduction of the paper's figures (8–17): overhead and performance
   sweeps over matrix size on both testbed models. Each figure is
   printed as the series the paper plots. *)

module C = Cholesky
open Bench_util

let enhanced = Abft.Scheme.enhanced ()

let print_sweep title columns cell (machine : Hetsim.Machine.t) =
  header (Printf.sprintf "%s (%s)" title machine.Hetsim.Machine.name);
  Format.printf "%-8s" "n";
  List.iter (fun c -> Format.printf "%16s" c) columns;
  Format.printf "@.";
  List.iter
    (fun n ->
      Format.printf "%-8d" n;
      List.iteri (fun i _ -> Format.printf "%16s" (cell n i)) columns;
      Format.printf "@.")
    (sizes machine)

let pct v = Printf.sprintf "%.2f%%" v

(* Figures 8 & 9 — Optimization 1: overhead before/after concurrent
   checksum recalculation. *)
let fig8_9 () =
  List.iter
    (fun ((machine : Hetsim.Machine.t), _) ->
      let cell n i =
        let opt1 = i = 1 in
        let r = run ~opt1 machine enhanced n in
        pct (overhead_pct ~opt1 machine n r.C.Schedule.makespan)
      in
      print_sweep "Figures 8/9 — Optimization 1 (concurrent recalculation)"
        [ "before opt1"; "after opt1" ] cell machine)
    machines;
  paper "saves ~2 points on tardis (weak Fermi concurrency), ~10 on bulldozer64 (Hyper-Q)"

(* Figures 10 & 11 — Optimization 2: overhead with checksum updating
   inline on the GPU vs offloaded (CPU on tardis, GPU stream on
   bulldozer64, per the placement decision). *)
let fig10_11 () =
  List.iter
    (fun ((machine : Hetsim.Machine.t), _) ->
      let cell n i =
        let opt2 = if i = 0 then C.Config.Gpu_inline else C.Config.Auto in
        let r = run ~opt2 machine enhanced n in
        pct (overhead_pct ~opt2 machine n r.C.Schedule.makespan)
      in
      print_sweep "Figures 10/11 — Optimization 2 (checksum-update placement)"
        [ "before opt2"; "after opt2" ] cell machine)
    machines;
  paper "saves ~5%% of the overhead on tardis (CPU), ~8%% on bulldozer64 (GPU stream)"

(* Figures 12 & 13 — Optimization 3: overhead at K = 1, 3, 5. *)
let fig12_13 () =
  List.iter
    (fun ((machine : Hetsim.Machine.t), _) ->
      let ks = [ 1; 3; 5 ] in
      let cell n i =
        let k = List.nth ks i in
        let r = run machine (Abft.Scheme.enhanced ~k ()) n in
        pct (overhead_pct machine n r.C.Schedule.makespan)
      in
      print_sweep "Figures 12/13 — Optimization 3 (verification interval K)"
        [ "K=1"; "K=3"; "K=5" ] cell machine)
    machines;
  paper "overhead drops significantly as K grows"

(* Figures 14 & 15 — overhead comparison across the three ABFT schemes
   (all optimizations on). *)
let fig14_15 () =
  List.iter
    (fun ((machine : Hetsim.Machine.t), _) ->
      let schemes = [ Abft.Scheme.Offline; Abft.Scheme.Online; enhanced ] in
      let cell n i =
        let r = run machine (List.nth schemes i) n in
        pct (overhead_pct machine n r.C.Schedule.makespan)
      in
      print_sweep "Figures 14/15 — overhead comparison" [ "offline"; "online"; "enhanced" ]
        cell machine)
    machines;
  paper "enhanced <6%% on tardis, <4%% on bulldozer64; slightly above offline/online; ~constant at large n"

(* Figures 16 & 17 — performance (GFLOPS) of MAGMA, CULA and the three
   ABFT schemes. *)
let fig16_17 () =
  List.iter
    (fun ((machine : Hetsim.Machine.t), _) ->
      let cell n i =
        let gf =
          match i with
          | 0 -> (run machine Abft.Scheme.No_ft n).C.Schedule.gflops
          | 1 -> (C.Cula_model.run machine ~n).C.Cula_model.gflops
          | 2 -> (run machine Abft.Scheme.Offline n).C.Schedule.gflops
          | 3 -> (run machine Abft.Scheme.Online n).C.Schedule.gflops
          | _ -> (run machine enhanced n).C.Schedule.gflops
        in
        Printf.sprintf "%.0f" gf
      in
      print_sweep "Figures 16/17 — performance (GFLOPS)"
        [ "magma"; "cula"; "offline"; "online"; "enhanced" ]
        cell machine)
    machines;
  paper "MAGMA fastest; all three ABFT variants close behind; every ABFT variant beats CULA"
