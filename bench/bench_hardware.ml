(* Hardware-sensitivity experiment (beyond the paper): how do the
   paper's trade-offs age as hardware evolves?

   1. The same experiment on a modern (A100-class) machine model: does
      Enhanced ABFT still cost only a few percent when compute grows
      ~7x over the K40c but PCIe only ~2.5x?
   2. Parameter sweeps around the bulldozer64 baseline: overhead vs GPU
      memory bandwidth (verification is bandwidth-bound) and vs
      concurrent-kernel effectiveness (what Optimization 1 can
      harvest). *)

module C = Cholesky
open Bench_util

let enhanced = Abft.Scheme.enhanced ()

let modern_machine () =
  header "Hardware — the paper's experiment on a modern (A100-class) node";
  let machine = Hetsim.Machine.modern in
  let n = 61440 in
  (* a 28 GB matrix, filling a 40 GB card like 30720 filled the K40c *)
  let base = (run machine Abft.Scheme.No_ft n).C.Schedule.makespan in
  Format.printf "%a@." Hetsim.Machine.pp machine;
  Format.printf "n = %d: plain %.4fs (%.0f GFLOPS)@." n base
    (float_of_int n ** 3. /. 3. /. base /. 1e9);
  List.iter
    (fun (name, scheme, opt1) ->
      let r = run ~opt1 machine scheme n in
      Format.printf "  %-22s %9.4fs  overhead %+6.2f%%@." name
        r.C.Schedule.makespan
        (overhead_pct machine n r.C.Schedule.makespan))
    [
      ("offline", Abft.Scheme.Offline, true);
      ("online", Abft.Scheme.Online, true);
      ("enhanced (no opt1)", enhanced, false);
      ("enhanced", enhanced, true);
      ("enhanced k=3", Abft.Scheme.enhanced ~k:3 (), true);
    ];
  note
    "flops-to-bandwidth ratio worsened ~2.3x since Kepler, raising the \
     relative price of bandwidth-bound verification; deeper concurrent-kernel \
     hardware (Optimization 1) claws most of it back"

let sweep_param name values remake =
  Format.printf "@.%s sweep (bulldozer64 variant, n = 16384):@." name;
  Format.printf "  %-12s %14s@." name "enh. overhead";
  List.iter
    (fun v ->
      let machine = remake v in
      let base = (run machine Abft.Scheme.No_ft 16384).C.Schedule.makespan in
      let enh = (run machine enhanced 16384).C.Schedule.makespan in
      Format.printf "  %-12.2f %13.2f%%@." v ((enh -. base) /. base *. 100.))
    values

let parameter_sweeps () =
  header "Hardware — overhead sensitivity to device parameters";
  let base_machine = Hetsim.Machine.bulldozer64 in
  sweep_param "bandwidth(x)" [ 0.5; 1.; 2.; 4.; 8. ] (fun f ->
      {
        base_machine with
        Hetsim.Machine.gpu =
          {
            base_machine.Hetsim.Machine.gpu with
            Hetsim.Device.mem_bandwidth_gbs =
              base_machine.Hetsim.Machine.gpu.Hetsim.Device.mem_bandwidth_gbs
              *. f;
          };
      });
  sweep_param "conc.eff" [ 0.; 0.05; 0.1; 0.25; 0.5; 1. ] (fun e ->
      {
        base_machine with
        Hetsim.Machine.gpu =
          {
            base_machine.Hetsim.Machine.gpu with
            Hetsim.Device.concurrency_effectiveness = e;
          };
      });
  note
    "overhead falls hyperbolically with bandwidth and with concurrency \
     effectiveness — the two levers Optimization 1 exploits"

let run () =
  modern_machine ();
  parameter_sweeps ()
