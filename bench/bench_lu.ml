(* FT-LU extension benches: the Table VII/VIII capability story and the
   overhead sweep, for the LU driver on both testbed models. Dual
   (column + row) checksums double the verification traffic relative to
   Cholesky's single-sided encoding — the tables quantify the price of
   protecting both factors. *)

module C = Cholesky
open Bench_util

let lu_run ?plan machine scheme n =
  let cfg = C.Config.make ~machine ~scheme () in
  Ftlu.Schedule_lu.run ?plan cfg ~n

let capability () =
  List.iter
    (fun ((machine : Hetsim.Machine.t), n) ->
      header
        (Printf.sprintf "FT-LU capability (extension), %s, %dx%d"
           machine.Hetsim.Machine.name n n);
      let b = machine.Hetsim.Machine.default_block in
      let g = n / b in
      let mid = g / 2 in
      let computing =
        [
          Fault.computing_error ~iteration:mid ~op:Fault.Gemm
            ~block:(mid + 2, mid) ~element:(1, 1) ();
        ]
      in
      let storage =
        [
          Fault.storage_error ~iteration:(mid + 1) ~block:(mid + 2, 1)
            ~element:(2, 2) ();
        ]
      in
      Format.printf "%-22s %12s %18s %14s@." "" "No Error" "Computing Error"
        "Memory Error";
      List.iter
        (fun (label, scheme) ->
          let t plan =
            (lu_run ?plan machine scheme n).Ftlu.Schedule_lu.makespan
          in
          Format.printf "%-22s %11.4fs %17.4fs %13.4fs@." label (t None)
            (t (Some computing)) (t (Some storage)))
        [
          ("Enhanced Online-ABFT", Abft.Scheme.enhanced ());
          ("Online-ABFT", Abft.Scheme.Online);
          ("Offline-ABFT", Abft.Scheme.Offline);
        ])
    machines;
  note "same capability shape as the Cholesky Tables VII/VIII"

let overhead_sweep () =
  List.iter
    (fun ((machine : Hetsim.Machine.t), _) ->
      header
        (Printf.sprintf "FT-LU overhead over plain LU (%s)"
           machine.Hetsim.Machine.name);
      Format.printf "%-8s %14s %14s %14s@." "n" "offline" "online" "enhanced";
      List.iter
        (fun n ->
          let base = (lu_run machine Abft.Scheme.No_ft n).Ftlu.Schedule_lu.makespan in
          let pct scheme =
            let t = (lu_run machine scheme n).Ftlu.Schedule_lu.makespan in
            (t -. base) /. base *. 100.
          in
          Format.printf "%-8d %13.2f%% %13.2f%% %13.2f%%@." n
            (pct Abft.Scheme.Offline) (pct Abft.Scheme.Online)
            (pct (Abft.Scheme.enhanced ())))
        (sizes machine))
    machines;
  note
    "roughly double the Cholesky overheads: LU factors both triangles \
     and maintains checksums on both sides"

let qr_overhead () =
  List.iter
    (fun ((machine : Hetsim.Machine.t), _) ->
      header
        (Printf.sprintf "FT-QR overhead over plain MGS QR (%s), m = 2n"
           machine.Hetsim.Machine.name);
      Format.printf "%-8s %14s %14s %14s@." "n" "offline" "online" "enhanced";
      List.iter
        (fun n ->
          let t scheme =
            (Ftqr.Schedule_qr.run (C.Config.make ~machine ~scheme ()) ~m:(2 * n)
               ~n)
              .Ftqr.Schedule_qr.makespan
          in
          let base = t Abft.Scheme.No_ft in
          let pct scheme = (t scheme -. base) /. base *. 100. in
          Format.printf "%-8d %13.2f%% %13.2f%% %13.2f%%@." n
            (pct Abft.Scheme.Offline) (pct Abft.Scheme.Online)
            (pct (Abft.Scheme.enhanced ())))
        [ 5120; 10240; 15360 ])
    machines;
  note
    "pre-read verification per block projection is the price of QR's \
     immediately-consumed R entries"

let run () =
  capability ();
  overhead_sweep ();
  qr_overhead ()
