(* Bechamel microbenches of the *real* numeric kernels — one
   Test.make per kernel class the reproduction implements: the BLAS-3
   compute kernels, the unblocked factorization, checksum encode /
   recalculate / verify, the four checksum-update rules, and a whole
   small FT factorization. These measure actual OCaml execution on this
   host (the simulated testbed times come from the tables/figures
   benches). *)

open Bechamel
open Matrix

let b = 64
(* one MAGMA-tile-sized working set *)

let tile seed = Spd.random ~seed b b
let spd_tile seed = Spd.random_spd ~seed b

let test_gemm =
  let a = tile 1 and bm = tile 2 in
  let c = Mat.create b b in
  Test.make ~name:"gemm 64x64x64"
    (Staged.stage (fun () -> Blas3.gemm ~beta:0. a bm c))

let test_syrk =
  let a = tile 3 in
  let c = Mat.create b b in
  Test.make ~name:"syrk 64 k=64"
    (Staged.stage (fun () -> Blas3.syrk ~beta:0. Types.Lower a c))

let test_trsm =
  let l = Mat.tril (spd_tile 4) in
  let rhs = tile 5 in
  Test.make ~name:"trsm 64 rhs=64"
    (Staged.stage (fun () ->
         let x = Mat.copy rhs in
         Blas3.trsm Types.Right Types.Lower Types.Trans Types.Non_unit_diag l x))

let test_potf2 =
  let a = spd_tile 6 in
  Test.make ~name:"potf2 64"
    (Staged.stage (fun () ->
         let x = Mat.copy a in
         Lapack.potf2 Types.Lower x))

let test_encode =
  let a = tile 7 in
  Test.make ~name:"checksum encode 64"
    (Staged.stage (fun () -> ignore (Abft.Checksum.encode a)))

let test_recalc =
  let a = tile 8 in
  let chk = Abft.Checksum.encode a in
  Test.make ~name:"checksum recalc 64"
    (Staged.stage (fun () -> ignore (Abft.Checksum.recompute chk a)))

let test_verify_clean =
  let a = tile 9 in
  let chk = Abft.Checksum.encode a in
  Test.make ~name:"verify (clean) 64"
    (Staged.stage (fun () -> ignore (Abft.Verify.check chk a)))

let test_verify_correct =
  let a = tile 10 in
  let chk = Abft.Checksum.encode a in
  Test.make ~name:"verify+correct 64"
    (Staged.stage (fun () ->
         let x = Mat.copy a in
         Mat.set x 10 20 (Mat.get x 10 20 +. 100.);
         ignore (Abft.Verify.verify chk x)))

let test_update_gemm =
  let chk_b = Abft.Checksum.encode (tile 11) in
  let chk_ld = Abft.Checksum.encode (tile 12) in
  let lc = tile 13 in
  Test.make ~name:"chk-update gemm rule"
    (Staged.stage (fun () -> Abft.Update.gemm ~chk_b ~chk_ld ~lc))

let test_update_potf2 =
  let la = Mat.tril (spd_tile 14) in
  let chk0 = Abft.Checksum.encode la in
  Test.make ~name:"chk-update potf2 rule (Algorithm 2)"
    (Staged.stage (fun () ->
         let chk = Abft.Checksum.copy chk0 in
         Abft.Update.potf2 ~chk ~la))

let test_ft_factor =
  let n = 128 in
  let a = Spd.random_spd ~seed:15 n in
  let cfg =
    Cholesky.Config.make ~machine:Hetsim.Machine.testbench ~block:32 ()
  in
  Test.make ~name:"ft cholesky 128 (enhanced)"
    (Staged.stage (fun () -> ignore (Cholesky.Ft.factor cfg a)))

let test_schedule =
  let cfg =
    Cholesky.Config.make ~machine:Hetsim.Machine.tardis
      ~scheme:(Abft.Scheme.enhanced ()) ()
  in
  Test.make ~name:"schedule gen 20480 (tardis)"
    (Staged.stage (fun () -> ignore (Cholesky.Schedule.run cfg ~n:20480)))

let all_tests =
  Test.make_grouped ~name:"micro"
    [
      test_gemm;
      test_syrk;
      test_trsm;
      test_potf2;
      test_encode;
      test_recalc;
      test_verify_clean;
      test_verify_correct;
      test_update_gemm;
      test_update_potf2;
      test_ft_factor;
      test_schedule;
    ]

(* ------------------------------------------------------------------ *)
(* Fused vs separate ABFT pipelines (PR 6)                             *)
(*                                                                     *)
(* Wall-clock comparison of the two pass structures on the real        *)
(* kernels: plain kernel (baseline), kernel + separate checksum-update *)
(* passes + full verification (the pre-fusion pipeline), and the fused *)
(* kernel carrying the chains in-cache + carried-vs-fresh compare.     *)
(* ------------------------------------------------------------------ *)

let fused_sizes = ref [ 256; 512; 1024; 2048 ]

let now = Unix.gettimeofday

(* [reps] rounds with the three modes interleaved inside each round
   (plain, separate, fused back to back), resetting the mutated output
   tile + checksum outside the timed region so every rep measures one
   clean update.

   The ABFT overheads being resolved are fractions of a percent of a
   multi-second kernel, below the wall-clock noise of independent
   timings on a shared host. So the estimator is paired: each round
   yields the differences (separate − plain) and (fused − plain)
   between back-to-back runs — slow drift (thermal, sibling load) hits
   all three measurements of a round roughly equally and cancels in
   the difference — and the median difference across rounds shrugs off
   isolated preemption spikes. [plain] itself is the minimum across
   rounds (noise only ever adds time). *)
let best_of3 reps ~reset fns =
  let rounds =
    Array.init reps (fun _ ->
        Array.map
          (fun f ->
            reset ();
            let t0 = now () in
            f ();
            now () -. t0)
          fns)
  in
  let median a =
    let s = Array.copy a in
    Array.sort Float.compare s;
    s.(Array.length s / 2)
  in
  let plain =
    Array.fold_left (fun acc r -> Float.min acc r.(0)) infinity rounds
  in
  let diff i = median (Array.map (fun r -> r.(i) -. r.(0)) rounds) in
  (plain, plain +. diff 1, plain +. diff 2)

let reps_for n = if n <= 512 then 7 else 5

let rand_mat seed m n =
  let st = Random.State.make [| seed; m; n |] in
  Mat.init m n (fun _ _ -> Random.State.float st 2. -. 1.)

let complain ~mode ~kernel n = function
  | Abft.Verify.Clean -> ()
  | o ->
      Format.eprintf "fused bench: %s %s %d not clean: %a@." mode kernel n
        Abft.Verify.pp_outcome o

let fused_report ~kernel ~n ~flops ~plain ~separate ~fused =
  let pct t = (t -. plain) /. plain *. 100. in
  let g t = flops /. t /. 1e9 in
  Format.printf
    "  %-5s %5d  %8.3f %8.3f %8.3f  %7.2f%% %7.2f%%  %8.2f %8.2f@." kernel n
    plain separate fused (pct separate) (pct fused) (g separate) (g fused);
  Bench_util.record ~name:kernel ~size:n
    [
      ("plain_s", plain);
      ("separate_s", separate);
      ("fused_s", fused);
      ("separate_overhead_pct", pct separate);
      ("fused_overhead_pct", pct fused);
      ("plain_gflops", g plain);
      ("separate_gflops", g separate);
      ("fused_gflops", g fused);
      ( "model_fused_rel_pct",
        100. *. Abft.Overhead_model.gemm_carry_relative ~m:n () );
    ]

let bench_fused_gemm n =
  let a = rand_mat 21 n n and bm = rand_mat 22 n n in
  let c0 = rand_mat 23 n n in
  let chk_a = Abft.Checksum.encode a in
  let chk0 = Abft.Checksum.encode c0 in
  let c = Mat.copy c0 in
  let chk = Abft.Checksum.copy chk0 in
  let fresh = Mat.create (Abft.Checksum.d chk0) n in
  let reset () =
    Mat.blit ~src:c0 ~dst:c ~row:0 ~col:0;
    Abft.Checksum.restore ~src:chk0 ~dst:chk
  in
  let plain, separate, fused =
    best_of3 (reps_for n) ~reset
      [|
        (fun () -> Blas3.gemm ~alpha:(-1.) ~beta:1. a bm c);
        (fun () ->
          Blas3.gemm ~alpha:(-1.) ~beta:1. a bm c;
          (* chk(C) -= chk(A)·B on both replicas, then a full
             recompute-and-verify pass — the pre-fusion pipeline *)
          Blas3.gemm ~alpha:(-1.) ~beta:1.
            (Abft.Checksum.matrix chk_a)
            bm
            (Abft.Checksum.matrix chk);
          Blas3.gemm ~alpha:(-1.) ~beta:1.
            (Abft.Checksum.shadow chk_a)
            bm
            (Abft.Checksum.shadow chk);
          complain ~mode:"separate" ~kernel:"gemm" n (Abft.Verify.verify chk c));
        (fun () ->
          (* chains + fresh sums ride the kernel (nothing can corrupt the
             tile between kernel and verification here, so the in-cache
             fresh reduction is sound); verification is a d×n diff *)
          Blas3.gemm ~alpha:(-1.) ~beta:1.
            ~fused:(Abft.Checksum.update_fused ~fresh ~chk_a chk)
            a bm c;
          complain ~mode:"fused" ~kernel:"gemm" n
            (Abft.Verify.compare ~fresh chk c));
      |]
  in
  fused_report ~kernel:"gemm" ~n ~flops:(2. *. (float_of_int n ** 3.)) ~plain
    ~separate ~fused

let bench_fused_syrk n =
  let a = rand_mat 31 n n in
  (* symmetric start: SYRK stores one triangle while the chains track
     the full symmetric product, so the mirror-reading reduction
     ([chk_reduce_sym]) only matches if the untouched triangle mirrors
     the stored one *)
  let c0 =
    let m = rand_mat 32 n n in
    Mat.init n n (fun i j ->
        if i >= j then Mat.get m i j else Mat.get m j i)
  in
  let chk_a = Abft.Checksum.encode a in
  let chk0 = Abft.Checksum.encode c0 in
  let c = Mat.copy c0 in
  let chk = Abft.Checksum.copy chk0 in
  let d = Abft.Checksum.d chk0 in
  let weights = Abft.Checksum.weights ~d ~b:n in
  let fresh = Mat.create d n in
  let reset () =
    Mat.blit ~src:c0 ~dst:c ~row:0 ~col:0;
    Abft.Checksum.restore ~src:chk0 ~dst:chk
  in
  (* Both pipelines verify through the mirror-reading fresh reduction
     (SYRK cannot fill [fresh] in-kernel — the symmetric output isn't
     panel-local); the measured difference is the pass structure of the
     chain update itself. *)
  let plain, separate, fused =
    best_of3 (reps_for n) ~reset
      [|
        (fun () -> Blas3.syrk ~alpha:(-1.) ~beta:1. Types.Lower a c);
        (fun () ->
          Blas3.syrk ~alpha:(-1.) ~beta:1. Types.Lower a c;
          Abft.Update.syrk ~chk_a:chk ~chk_lc:chk_a ~lc:a;
          Blas3.chk_reduce_sym Types.Lower ~weights c ~into:fresh;
          complain ~mode:"separate" ~kernel:"syrk" n
            (Abft.Verify.compare ~fresh chk c));
        (fun () ->
          Blas3.syrk ~alpha:(-1.) ~beta:1.
            ~fused:(Abft.Checksum.update_fused ~chk_a chk)
            Types.Lower a c;
          Blas3.chk_reduce_sym Types.Lower ~weights c ~into:fresh;
          complain ~mode:"fused" ~kernel:"syrk" n
            (Abft.Verify.compare ~fresh chk c));
      |]
  in
  fused_report ~kernel:"syrk" ~n ~flops:(float_of_int n ** 3.) ~plain
    ~separate ~fused

let run_fused () =
  Format.printf
    "@.Fused vs separate ABFT pipelines (real kernels, wall-clock)@.";
  Format.printf
    "------------------------------------------------------------@.";
  Format.printf "  %-5s %5s  %8s %8s %8s  %8s %8s  %8s %8s@." "op" "n"
    "plain(s)" "sep(s)" "fused(s)" "sep-ovh" "fus-ovh" "sep-GF/s" "fus-GF/s";
  List.iter
    (fun n ->
      bench_fused_gemm n;
      bench_fused_syrk n)
    !fused_sizes;
  Bench_util.note
    "fused carries the checksum chains through the packed panels and \
     (for GEMM) reduces fresh sums in-cache; separate re-reads the \
     operands in standalone d-row passes and re-reduces the whole tile \
     at verify time"

let run () =
  Format.printf "@.Bechamel microbenches (real execution on this host)@.";
  Format.printf "---------------------------------------------------@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] all_tests in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
        else Printf.sprintf "%8.1f ns" ns
      in
      Format.printf "  %-42s %s / run@." name pretty)
    rows
