(* Bechamel microbenches of the *real* numeric kernels — one
   Test.make per kernel class the reproduction implements: the BLAS-3
   compute kernels, the unblocked factorization, checksum encode /
   recalculate / verify, the four checksum-update rules, and a whole
   small FT factorization. These measure actual OCaml execution on this
   host (the simulated testbed times come from the tables/figures
   benches). *)

open Bechamel
open Matrix

let b = 64
(* one MAGMA-tile-sized working set *)

let tile seed = Spd.random ~seed b b
let spd_tile seed = Spd.random_spd ~seed b

let test_gemm =
  let a = tile 1 and bm = tile 2 in
  let c = Mat.create b b in
  Test.make ~name:"gemm 64x64x64"
    (Staged.stage (fun () -> Blas3.gemm ~beta:0. a bm c))

let test_syrk =
  let a = tile 3 in
  let c = Mat.create b b in
  Test.make ~name:"syrk 64 k=64"
    (Staged.stage (fun () -> Blas3.syrk ~beta:0. Types.Lower a c))

let test_trsm =
  let l = Mat.tril (spd_tile 4) in
  let rhs = tile 5 in
  Test.make ~name:"trsm 64 rhs=64"
    (Staged.stage (fun () ->
         let x = Mat.copy rhs in
         Blas3.trsm Types.Right Types.Lower Types.Trans Types.Non_unit_diag l x))

let test_potf2 =
  let a = spd_tile 6 in
  Test.make ~name:"potf2 64"
    (Staged.stage (fun () ->
         let x = Mat.copy a in
         Lapack.potf2 Types.Lower x))

let test_encode =
  let a = tile 7 in
  Test.make ~name:"checksum encode 64"
    (Staged.stage (fun () -> ignore (Abft.Checksum.encode a)))

let test_recalc =
  let a = tile 8 in
  let chk = Abft.Checksum.encode a in
  Test.make ~name:"checksum recalc 64"
    (Staged.stage (fun () -> ignore (Abft.Checksum.recompute chk a)))

let test_verify_clean =
  let a = tile 9 in
  let chk = Abft.Checksum.encode a in
  Test.make ~name:"verify (clean) 64"
    (Staged.stage (fun () -> ignore (Abft.Verify.check chk a)))

let test_verify_correct =
  let a = tile 10 in
  let chk = Abft.Checksum.encode a in
  Test.make ~name:"verify+correct 64"
    (Staged.stage (fun () ->
         let x = Mat.copy a in
         Mat.set x 10 20 (Mat.get x 10 20 +. 100.);
         ignore (Abft.Verify.verify chk x)))

let test_update_gemm =
  let chk_b = Abft.Checksum.encode (tile 11) in
  let chk_ld = Abft.Checksum.encode (tile 12) in
  let lc = tile 13 in
  Test.make ~name:"chk-update gemm rule"
    (Staged.stage (fun () -> Abft.Update.gemm ~chk_b ~chk_ld ~lc))

let test_update_potf2 =
  let la = Mat.tril (spd_tile 14) in
  let chk0 = Abft.Checksum.encode la in
  Test.make ~name:"chk-update potf2 rule (Algorithm 2)"
    (Staged.stage (fun () ->
         let chk = Abft.Checksum.copy chk0 in
         Abft.Update.potf2 ~chk ~la))

let test_ft_factor =
  let n = 128 in
  let a = Spd.random_spd ~seed:15 n in
  let cfg =
    Cholesky.Config.make ~machine:Hetsim.Machine.testbench ~block:32 ()
  in
  Test.make ~name:"ft cholesky 128 (enhanced)"
    (Staged.stage (fun () -> ignore (Cholesky.Ft.factor cfg a)))

let test_schedule =
  let cfg =
    Cholesky.Config.make ~machine:Hetsim.Machine.tardis
      ~scheme:(Abft.Scheme.enhanced ()) ()
  in
  Test.make ~name:"schedule gen 20480 (tardis)"
    (Staged.stage (fun () -> ignore (Cholesky.Schedule.run cfg ~n:20480)))

let all_tests =
  Test.make_grouped ~name:"micro"
    [
      test_gemm;
      test_syrk;
      test_trsm;
      test_potf2;
      test_encode;
      test_recalc;
      test_verify_clean;
      test_verify_correct;
      test_update_gemm;
      test_update_potf2;
      test_ft_factor;
      test_schedule;
    ]

let run () =
  Format.printf "@.Bechamel microbenches (real execution on this host)@.";
  Format.printf "---------------------------------------------------@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] all_tests in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
        else Printf.sprintf "%8.1f ns" ns
      in
      Format.printf "  %-42s %s / run@." name pretty)
    rows
