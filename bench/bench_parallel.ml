(* Real-kernel parallelism bench: the seed naive loops vs the
   cache-blocked tiled kernels vs tiled + N domains, plus the batched
   checksum-verification sweep (paper Optimization 1 on real cores).

   Unlike every other section, these times are *wall-clock* on the host
   CPU (Unix.gettimeofday — CPU-time clocks sum across domains and
   would hide the speedup). *)

open Matrix
module Pool = Parallel.Pool
module C = Cholesky

let now = Unix.gettimeofday

(* Best of [reps]: immune to one-off GC pauses without bechamel's
   per-run machinery (these kernels run hundreds of ms). *)
let best_of reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = now () in
    f ();
    best := Float.min !best (now () -. t0)
  done;
  !best

let rand_mat seed m n =
  let st = Random.State.make [| seed; m; n |] in
  Mat.init m n (fun _ _ -> Random.State.float st 2. -. 1.)

let spd_mat seed n =
  let a = rand_mat seed n n in
  let c = Mat.create n n in
  Blas3.syrk ~trans:Types.Trans ~beta:0. Types.Lower a c;
  for i = 0 to n - 1 do
    Mat.set c i i (Mat.get c i i +. float_of_int n)
  done;
  c

let max_abs_diff x y =
  let acc = ref 0. in
  for j = 0 to Mat.cols x - 1 do
    for i = 0 to Mat.rows x - 1 do
      acc := Float.max !acc (abs_float (Mat.get x i j -. Mat.get y i j))
    done
  done;
  !acc

let gflops flops secs = flops /. secs /. 1e9

let print_row name n ~flops ~naive ~tiled ~par ~lanes =
  Format.printf "  %-6s %5d  %8.3f %8.3f %8.3f  %8.2f %8.2f %8.2f  %6.2fx %6.2fx@."
    name n naive tiled par (gflops flops naive) (gflops flops tiled)
    (gflops flops par) (naive /. tiled) (naive /. par);
  Bench_util.record
    ~name:(Printf.sprintf "%s-%dd" name lanes)
    ~size:n
    [
      ("naive_s", naive);
      ("tiled_s", tiled);
      ("parallel_s", par);
      ("naive_gflops", gflops flops naive);
      ("tiled_gflops", gflops flops tiled);
      ("parallel_gflops", gflops flops par);
      ("tiling_speedup", naive /. tiled);
      ("parallel_speedup", naive /. par);
    ]

let kernel_bench pool1 pooln lanes =
  Format.printf
    "  %-6s %5s  %24s  %26s  %15s@.  %-6s %5s  %8s %8s %8s  %8s %8s %8s  %6s %6s@."
    "" "" "wall-clock (s)" "GFLOP/s" "speedup" "kernel" "n" "naive" "tiled"
    (Printf.sprintf "%dd" lanes) "naive" "tiled"
    (Printf.sprintf "%dd" lanes) "tile" "par";
  List.iter
    (fun n ->
      let reps = if n >= 1024 then 1 else 3 in
      let a = rand_mat 1 n n and b = rand_mat 2 n n in
      let c = Mat.create n n in
      (* GEMM: c <- a * bᵀ, the trailing-update shape of the driver *)
      let g_naive =
        best_of reps (fun () ->
            Blas3.gemm_naive ~transb:Types.Trans ~beta:0. a b c)
      in
      let ref_c = Mat.copy c in
      let g_tiled =
        best_of reps (fun () ->
            Blas3.gemm ~pool:pool1 ~transb:Types.Trans ~beta:0. a b c)
      in
      if max_abs_diff ref_c c > 1e-10 *. float_of_int n then
        Format.printf "  WARNING: gemm tiled/naive mismatch at n=%d@." n;
      let g_par =
        best_of reps (fun () ->
            Blas3.gemm ~pool:pooln ~transb:Types.Trans ~beta:0. a b c)
      in
      print_row "gemm" n
        ~flops:(2. *. (float_of_int n ** 3.))
        ~naive:g_naive ~tiled:g_tiled ~par:g_par ~lanes;
      (* SYRK: lower triangle of a * aᵀ *)
      let s_naive =
        best_of reps (fun () -> Blas3.syrk_naive ~beta:0. Types.Lower a c)
      in
      let ref_c = Mat.copy c in
      let s_tiled =
        best_of reps (fun () ->
            Blas3.syrk ~pool:pool1 ~beta:0. Types.Lower a c)
      in
      if max_abs_diff ref_c c > 1e-10 *. float_of_int n then
        Format.printf "  WARNING: syrk tiled/naive mismatch at n=%d@." n;
      let s_par =
        best_of reps (fun () ->
            Blas3.syrk ~pool:pooln ~beta:0. Types.Lower a c)
      in
      print_row "syrk" n
        ~flops:(float_of_int n ** 3.)
        ~naive:s_naive ~tiled:s_tiled ~par:s_par ~lanes;
      (* TRSM: the driver's panel solve X · Lᵀ = B *)
      let la = spd_mat 3 n in
      (try Lapack.potf2 Types.Lower la
       with _ -> Format.printf "  WARNING: potf2 failed at n=%d@." n);
      let rhs = rand_mat 4 n n in
      let x_naive = Mat.copy rhs and x_tiled = Mat.copy rhs in
      let x_par = Mat.copy rhs in
      let solve kind x =
        match kind with
        | `Naive ->
            Blas3.trsm_naive Types.Right Types.Lower Types.Trans
              Types.Non_unit_diag la x
        | `Pool p ->
            Blas3.trsm ~pool:p Types.Right Types.Lower Types.Trans
              Types.Non_unit_diag la x
      in
      (* in-place solves: time a single application per rep on a fresh
         copy, timing includes the copy for all three equally *)
      let refresh dst =
        Mat.blit ~src:rhs ~dst ~row:0 ~col:0;
        dst
      in
      let t_naive =
        best_of reps (fun () -> solve `Naive (refresh x_naive))
      and t_tiled =
        best_of reps (fun () -> solve (`Pool pool1) (refresh x_tiled))
      and t_par = best_of reps (fun () -> solve (`Pool pooln) (refresh x_par)) in
      if max_abs_diff x_naive x_tiled > 1e-8 *. float_of_int n then
        Format.printf "  WARNING: trsm tiled/naive mismatch at n=%d@." n;
      print_row "trsm" n
        ~flops:(float_of_int n ** 3.)
        ~naive:t_naive ~tiled:t_tiled ~par:t_par ~lanes)
    [ 256; 512; 1024 ]

(* Batched per-tile verification: one grid of encoded tiles, verified
   sequentially vs fanned out across the pool — the shape of every
   verification point in the FT driver. *)
let verify_bench pooln lanes =
  let n = 2048 and block = 256 in
  let a = spd_mat 7 n in
  let tiles = Tile.of_mat ~block a in
  let store = Abft.Checksum.encode_lower tiles in
  let g = Tile.grid tiles in
  let jobs = ref [] in
  for i = g - 1 downto 0 do
    for c = i downto 0 do
      jobs := (Abft.Checksum.get store i c, Tile.tile tiles i c) :: !jobs
    done
  done;
  let jobs = Array.of_list !jobs in
  let reps = 3 in
  let seq =
    best_of reps (fun () ->
        Array.iter
          (fun (chk, tile) -> ignore (Abft.Verify.verify chk tile))
          jobs)
  in
  let par =
    best_of reps (fun () ->
        ignore (Abft.Verify.verify_batch ~pool:pooln jobs))
  in
  Format.printf
    "  verify %d tiles of %d^2: sequential %.3f s, %d-domain batch %.3f s \
     (%.2fx)@."
    (Array.length jobs) block seq lanes par (seq /. par);
  Bench_util.record
    ~name:(Printf.sprintf "verify-batch-%dd" lanes)
    ~size:n
    [
      ("sequential_s", seq);
      ("parallel_s", par);
      ("parallel_speedup", seq /. par);
    ]

let run () =
  Bench_util.header
    "Parallel kernels — naive vs tiled vs tiled + domains (wall-clock)";
  let lanes = Pool.default_lanes () in
  let pool1 = Pool.create ~domains:1 () in
  let pooln = if lanes > 1 then Pool.create ~domains:lanes () else pool1 in
  Format.printf
    "  %d domain lane(s) (override with %s); all kernels bitwise-deterministic \
     across pool sizes@."
    lanes Pool.env_var;
  kernel_bench pool1 pooln lanes;
  verify_bench pooln lanes;
  if pooln != pool1 then Pool.shutdown pooln;
  Pool.shutdown pool1
