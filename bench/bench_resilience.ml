(* Resilience — overhead of the failure-aware scheduling layer.

   Sweeps the canonical GPU storm profile (Machine_cli.storm_reliability)
   across intensities and measures what the retry/backoff/quarantine/
   CPU-fallback machinery costs on top of the clean Enhanced schedule:
   makespan inflation, retries, backoff time, and how often a run ends
   degraded onto the CPU. Rate 0 doubles as a regression check that the
   resilient driver is an exact pass-through on reliable machines. *)

module C = Cholesky

(* Overridden by `main.exe --device-faults RATE` to probe one rate. *)
let rates = ref [ 0.0; 0.25; 0.5; 1.0 ]
let seeds = [ 1; 2; 3 ]

let run () =
  let machine = Hetsim.Machine.tardis in
  let n = 10240 in
  let scheme = Abft.Scheme.enhanced () in
  Bench_util.header
    (Printf.sprintf "Resilience — device-fault overhead (%s, %s, %d^2)"
       machine.Hetsim.Machine.name (Abft.Scheme.name scheme) n);
  let clean = (Bench_util.run machine scheme n).C.Schedule.makespan in
  Format.printf "%-12s%14s%10s%10s%12s%12s%10s@." "fault rate" "makespan"
    "overhead" "retries" "backoff" "quarantine" "degraded";
  List.iter
    (fun rate ->
      let m = Machine_cli.apply_device_faults ~rate machine in
      let cfg = C.Config.make ~machine:m ~scheme () in
      let runs =
        List.map (fun seed -> C.Schedule.run ~fault_seed:seed cfg ~n) seeds
      in
      let k = float_of_int (List.length runs) in
      let mean f = List.fold_left (fun a r -> a +. f r) 0. runs /. k in
      let makespan = mean (fun r -> r.C.Schedule.makespan) in
      let stat f =
        mean (fun r -> float_of_int (f r.C.Schedule.resilience))
      in
      let retries =
        stat (fun (s : Hetsim.Resilient.stats) ->
            s.Hetsim.Resilient.cpu.Hetsim.Resilient.retries
            + s.Hetsim.Resilient.gpu.Hetsim.Resilient.retries)
      in
      let backoff =
        mean (fun r ->
            let s = r.C.Schedule.resilience in
            s.Hetsim.Resilient.cpu.Hetsim.Resilient.backoff_s
            +. s.Hetsim.Resilient.gpu.Hetsim.Resilient.backoff_s)
      in
      let quarantined =
        stat (fun (s : Hetsim.Resilient.stats) ->
            match s.Hetsim.Resilient.gpu.Hetsim.Resilient.quarantined_at with
            | Some _ -> 1
            | None -> 0)
      in
      let degraded =
        mean (fun r -> if r.C.Schedule.degraded then 1. else 0.)
      in
      let overhead_pct = (makespan -. clean) /. clean *. 100. in
      Format.printf "%-12.2f%12.4f s%9.1f%%%10.1f%10.4f s%12.2f%10.2f@." rate
        makespan overhead_pct retries backoff quarantined degraded;
      if rate <= 0. then
        Bench_util.note "pass-through exact: %b"
          (List.for_all
             (fun r -> Float.equal r.C.Schedule.makespan clean)
             runs);
      Bench_util.record
        ~name:
          (Printf.sprintf "%s/rate%.2f" machine.Hetsim.Machine.name rate)
        ~size:n
        [
          ("makespan_s", makespan);
          ("overhead_pct", overhead_pct);
          ("retries", retries);
          ("backoff_s", backoff);
          ("quarantined", quarantined);
          ("degraded", degraded);
        ])
    !rates;
  Bench_util.note
    "virtual time; each rate averaged over %d seeds. The backoff column is \
     modelled delay, already inside the makespan."
    (List.length seeds)
