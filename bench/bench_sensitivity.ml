(* Numerical-sensitivity experiments (numeric mode): where does the
   rounding threshold stop distinguishing real faults from arithmetic
   noise?

   1. False-positive study: factor increasingly ill-conditioned SPD
      matrices with Enhanced ABFT and *no* faults; any correction or
      recovery the driver reports is a false positive — rounding drift
      mistaken for an error. The paper sets the threshold informally
      ("within rounding error"); this measures how much margin the
      default threshold leaves.
   2. Detectability floor: inject a single computing error of varying
      magnitude and find the smallest delta the scheme reliably
      corrects. Errors below the verification threshold are invisible —
      and also harmless relative to rounding, which is the design
      argument for threshold-based ABFT. *)

open Matrix
module C = Cholesky
open Bench_util

let false_positive_study () =
  header "Sensitivity — false positives vs matrix conditioning (no faults)";
  Format.printf "%-12s" "cond(A)";
  List.iter (fun tol -> Format.printf "%18s" (Printf.sprintf "tol=%.0e" tol))
    [ 1e-6; 1e-8; 1e-10 ];
  Format.printf "@.";
  let n = 96 and block = 16 in
  List.iter
    (fun cond ->
      Format.printf "%-12.0e" cond;
      List.iter
        (fun tol ->
          let a = Spd.random_spd_cond ~seed:7 ~cond n in
          let cfg =
            C.Config.make ~machine:Hetsim.Machine.testbench ~block ~tol ()
          in
          let r = C.Ft.factor cfg a in
          let fp =
            r.C.Ft.stats.C.Ft.corrections
            + r.C.Ft.stats.C.Ft.uncorrectable_events
          in
          Format.printf "%18s"
            (Printf.sprintf "%d fp%s" fp
               (match r.C.Ft.outcome with C.Ft.Success -> "" | _ -> " (!)")))
        [ 1e-6; 1e-8; 1e-10 ];
      Format.printf "@.")
    [ 1e2; 1e6; 1e10; 1e13 ];
  note
    "0 fp everywhere up to the precision limit means the default threshold \
     has honest margin; ill-conditioned matrices at tight tolerances are \
     where threshold-based ABFT runs out of road."

let detectability_floor () =
  header "Sensitivity — smallest corrected error magnitude";
  let n = 96 and block = 16 in
  let a = Spd.random_spd ~seed:9 n in
  Format.printf "%-12s %14s %14s@." "delta" "corrected?" "residual";
  List.iter
    (fun delta ->
      let plan =
        [
          Fault.computing_error ~delta ~iteration:2 ~op:Fault.Gemm ~block:(4, 2)
            ~element:(3, 3) ();
        ]
      in
      let cfg = C.Config.make ~machine:Hetsim.Machine.testbench ~block () in
      let r = C.Ft.factor ~plan cfg a in
      Format.printf "%-12.0e %14s %14.2e@." delta
        (if r.C.Ft.stats.C.Ft.corrections > 0 then "yes"
         else "below threshold")
        r.C.Ft.residual)
    [ 1e3; 1.; 1e-3; 1e-5; 1e-7; 1e-9; 1e-11 ];
  note
    "undetected deltas are those already indistinguishable from rounding at \
     this scale — they leave the residual at working precision, so missing \
     them is safe by construction."

let run () =
  false_positive_study ();
  detectability_floor ()
