(* Solver — overhead of the fault-tolerant PCG harness.

   Measures iterations-to-convergence and wall time of the protected
   solver (periodic true-residual verification + verified checkpoints)
   against the unprotected CG baseline (verify_interval = 0) at several
   verification cadences, on clean runs and under a seeded In_solver
   storm. Clean runs quantify the pure cost of protection — the extra
   matrix-vector product per verification and the checkpoint copies —
   while the faulted runs show what the same cadence buys: the
   unprotected solver silently returns whatever the corrupted recurrence
   converged to, the protected one detects and recovers. *)

open Matrix

(* Conditioned so PCG takes a few hundred iterations with a
   block-Jacobi preconditioner — enough for every cadence to verify
   many times mid-run — while staying comfortably inside the default
   2n iteration budget and keeping the sweep under a second per cell. *)
let n = 384
let block = 8
let verify_intervals = [ 4; 16; 64 ]
let seeds = [ 1; 2; 3 ]

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run () =
  Bench_util.header
    (Printf.sprintf
       "Solver — protected PCG overhead vs unprotected CG (n = %d, \
        block-Jacobi)"
       n);
  let a = Spd.random_spd_cond ~seed:7 ~cond:1e3 n in
  let b = Array.init n (fun i -> 1. +. (float_of_int (i mod 7) /. 7.)) in
  let precond = Solvers.Cg.block_jacobi ~block a in
  let solve ?plan cfg =
    let (r : Solvers.Cg.report), wall =
      time (fun () -> Solvers.Cg.solve ?plan ~precond cfg a b)
    in
    (r, wall)
  in
  let mean xs =
    List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  (* Unprotected baseline: verify_interval = 0 disables the whole
     harness. Repeated over the seed list purely to stabilise the
     timing (the run itself is deterministic). *)
  let base_runs =
    List.map (fun _ -> solve (Solvers.Cg.config ~verify_interval:0 ())) seeds
  in
  let base_iters =
    mean
      (List.map
         (fun ((r : Solvers.Cg.report), _) ->
           float_of_int r.Solvers.Cg.stats.Solvers.Cg.iterations)
         base_runs)
  in
  let base_wall = mean (List.map snd base_runs) in
  let converged runs =
    List.for_all
      (fun ((r : Solvers.Cg.report), _) ->
        r.Solvers.Cg.outcome = Solvers.Cg.Converged)
      runs
  in
  Format.printf "%-22s%12s%12s%12s%14s@." "configuration" "iters" "wall"
    "overhead" "converged";
  Format.printf "%-22s%12.1f%10.2f ms%12s%14s@." "unprotected" base_iters
    (base_wall *. 1000.) "—"
    (if converged base_runs then "yes" else "NO");
  Bench_util.record ~name:"unprotected" ~size:n
    [
      ("iterations", base_iters);
      ("wall_s", base_wall);
      ("overhead_pct", 0.);
      ("verified", 0.);
      ("converged", (if converged base_runs then 1. else 0.));
    ];
  List.iter
    (fun vi ->
      let cfg =
        Solvers.Cg.config ~verify_interval:vi ~checkpoint_interval:(2 * vi) ()
      in
      let runs = List.map (fun _ -> solve cfg) seeds in
      let iters =
        mean
          (List.map
             (fun ((r : Solvers.Cg.report), _) ->
               float_of_int r.Solvers.Cg.stats.Solvers.Cg.iterations)
             runs)
      in
      let wall = mean (List.map snd runs) in
      let overhead_pct = (wall -. base_wall) /. base_wall *. 100. in
      Format.printf "%-22s%12.1f%10.2f ms%11.1f%%%14s@."
        (Printf.sprintf "protected k=%d" vi)
        iters (wall *. 1000.) overhead_pct
        (if converged runs then "yes" else "NO");
      Bench_util.record
        ~name:(Printf.sprintf "protected-k%d" vi)
        ~size:n
        [
          ("iterations", iters);
          ("wall_s", wall);
          ("overhead_pct", overhead_pct);
          ("verified", 1.);
          ("converged", (if converged runs then 1. else 0.));
        ])
    verify_intervals;
  (* The same cadences under a storm: the protected solver must keep
     converging to a verified answer; the per-cadence iteration counts
     show how detection latency (longer cadence = staler checkpoints
     and later detections) translates into recovery work. *)
  Bench_util.note
    "faulted leg: 6 In_solver bit flips, iterations 1..12, seeds %s"
    (String.concat "," (List.map string_of_int seeds));
  List.iter
    (fun vi ->
      let cfg =
        Solvers.Cg.config ~verify_interval:vi ~checkpoint_interval:(2 * vi) ()
      in
      let runs =
        List.map
          (fun seed ->
            let plan =
              Fault.random_solver_plan ~seed ~n ~iters:12 ~count:6 ()
            in
            solve ~plan cfg)
          seeds
      in
      let stat f =
        mean
          (List.map
             (fun ((r : Solvers.Cg.report), _) ->
               float_of_int (f r.Solvers.Cg.stats))
             runs)
      in
      let iters = stat (fun s -> s.Solvers.Cg.iterations) in
      let wall = mean (List.map snd runs) in
      let recovered = converged runs in
      let overhead_pct = (wall -. base_wall) /. base_wall *. 100. in
      Format.printf "%-22s%12.1f%10.2f ms%11.1f%%%14s@."
        (Printf.sprintf "storm k=%d" vi)
        iters (wall *. 1000.) overhead_pct
        (if recovered then "yes" else "NO");
      Bench_util.record
        ~name:(Printf.sprintf "storm-k%d" vi)
        ~size:n
        [
          ("iterations", iters);
          ("wall_s", wall);
          ("overhead_pct", overhead_pct);
          ("verified", 1.);
          ("converged", (if recovered then 1. else 0.));
          ("detections", stat (fun s -> s.Solvers.Cg.detections));
          ("reconstructions", stat (fun s -> s.Solvers.Cg.reconstructions));
          ("rollbacks", stat (fun s -> s.Solvers.Cg.rollbacks));
          ("restarts", stat (fun s -> s.Solvers.Cg.restarts));
        ])
    verify_intervals
