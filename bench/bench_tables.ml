(* Reproduction of the paper's tables.

   Table I    — verification counts per operation, Online vs Enhanced.
   Tables II–VI — the analytic overhead model, checked against the
                simulator's measured phase decomposition.
   Table VII  — fault-tolerance capability on TARDIS, 20480².
   Table VIII — same on BULLDOZER64, 30720². *)

module C = Cholesky
open Bench_util

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table I — blocks verified per iteration (Online vs Enhanced)";
  let g = 16 in
  Format.printf "grid = %d tiles/side, iteration j = %d@." g (g / 2);
  let j = g / 2 in
  let len = List.length in
  Format.printf "%-10s %-22s %-26s@." "operation" "Online (post-update)"
    "Enhanced (pre-read)";
  Format.printf "%-10s %-22s %-26s@." "POTF2"
    (Printf.sprintf "L: %d block" (len (C.Sets.post_potf2 ~j)))
    (Printf.sprintf "A: %d block" (len (C.Sets.pre_potf2 ~j)));
  Format.printf "%-10s %-22s %-26s@." "TRSM"
    (Printf.sprintf "B: %d blocks" (len (C.Sets.post_trsm ~grid:g ~j)))
    (Printf.sprintf "L,B: %d blocks" (len (C.Sets.pre_trsm ~grid:g ~j)));
  Format.printf "%-10s %-22s %-26s@." "SYRK"
    (Printf.sprintf "A: %d block" (len (C.Sets.post_syrk ~j)))
    (Printf.sprintf "A,C: %d blocks" (len (C.Sets.pre_syrk ~j)));
  Format.printf "%-10s %-22s %-26s@." "GEMM"
    (Printf.sprintf "B: %d blocks" (len (C.Sets.post_gemm ~grid:g ~j)))
    (Printf.sprintf "B,C,D: %d blocks" (len (C.Sets.pre_gemm ~grid:g ~j)));
  paper "POTF2 O(1)->O(1), TRSM O(n)->O(n), SYRK O(1)->O(n), GEMM O(n)->O(n^2)"

(* ------------------------------------------------------------------ *)
(* Tables II–VI — analytic model vs simulation                         *)
(* ------------------------------------------------------------------ *)

let table2_6 () =
  header "Tables II-VI — analytic overhead model (relative to n^3/3 flops)";
  List.iter
    (fun ((machine : Hetsim.Machine.t), n) ->
      let b = machine.Hetsim.Machine.default_block in
      Format.printf "@.%s: n = %d, B = %d@." machine.Hetsim.Machine.name n b;
      Format.printf
        "%4s %12s %12s %14s %14s %12s %12s@." "K" "encode" "update"
        "recalc(onl)" "recalc(enh)" "overall(onl)" "overall(enh)";
      List.iter
        (fun k ->
          let p = { Abft.Overhead_model.n; b; k } in
          Format.printf "%4d %11.4f%% %11.4f%% %13.4f%% %13.4f%% %11.4f%% %11.4f%%@."
            k
            (Abft.Overhead_model.encode_flops p
            /. Abft.Overhead_model.cholesky_flops p *. 100.)
            (Abft.Overhead_model.update_relative p *. 100.)
            (Abft.Overhead_model.recalc_relative_online p *. 100.)
            (Abft.Overhead_model.recalc_relative_enhanced p *. 100.)
            (Abft.Overhead_model.overall_relative_online p *. 100.)
            (Abft.Overhead_model.overall_relative_enhanced p *. 100.))
        [ 1; 3; 5 ];
      let p1 = { Abft.Overhead_model.n; b; k = 1 } in
      Format.printf "asymptotes (n->inf): online %.4f%%, enhanced %.4f%% | space overhead %.4f%% (%.1f MB)@."
        (Abft.Overhead_model.asymptote_online p1 *. 100.)
        (Abft.Overhead_model.asymptote_enhanced p1 *. 100.)
        (Abft.Overhead_model.space_relative p1 *. 100.)
        (Abft.Overhead_model.space_bytes p1 /. 1048576.);
      (* Cross-check the model's flop ratios against the simulator's
         measured phase times for the inline (unoptimized) schedule. *)
      let r =
        run ~opt1:false ~opt2:C.Config.Gpu_inline machine
          (Abft.Scheme.enhanced ()) n
      in
      let e = r.C.Schedule.engine in
      let base = baseline machine n in
      Format.printf
        "simulated (unopt. enhanced): recalc %.3fs (%.2f%% of base), update \
         %.3fs (%.2f%% of base)@."
        (Hetsim.Engine.phase_time e "chk-recalc")
        (Hetsim.Engine.phase_time e "chk-recalc" /. base *. 100.)
        (Hetsim.Engine.phase_time e "chk-update")
        (Hetsim.Engine.phase_time e "chk-update" /. base *. 100.);
      note
        "flop-relative model predicts the shape; simulated recalc is larger \
         because BLAS-2 kernels run at bandwidth, not peak — the very gap \
         Optimization 1 attacks.")
    machines;
  paper "Table VI: online 30/n + 2/B; enhanced (24K+6)/nK + (2K+2)/BK"

(* ------------------------------------------------------------------ *)
(* Tables VII & VIII                                                   *)
(* ------------------------------------------------------------------ *)

(* Faults at the paper's logical points: a computing error in a GEMM
   output mid-run; a storage error in a factored block between its
   post-update verification and its next read. *)
let capability_plans (machine : Hetsim.Machine.t) n =
  let b = machine.Hetsim.Machine.default_block in
  let g = n / b in
  let mid = g / 2 in
  let computing =
    [
      Fault.computing_error ~iteration:mid ~op:Fault.Gemm
        ~block:(mid + 2, mid) ~element:(1, 1) ();
    ]
  in
  let storage =
    [
      Fault.storage_error ~iteration:(mid + 1) ~block:(mid + 2, 1)
        ~element:(2, 2) ();
    ]
  in
  (computing, storage)

let capability_table name (machine : Hetsim.Machine.t) n =
  header
    (Printf.sprintf "%s — fault tolerance capability, %s, %dx%d" name
       machine.Hetsim.Machine.name n n);
  let computing, storage = capability_plans machine n in
  Format.printf "%-22s %12s %18s %14s@." "" "No Error" "Computing Error"
    "Memory Error";
  List.iter
    (fun (label, scheme) ->
      let t plan = (run ?plan machine scheme n).C.Schedule.makespan in
      Format.printf "%-22s %11.4fs %17.4fs %13.4fs@." label (t None)
        (t (Some computing)) (t (Some storage)))
    [
      ("Enhanced Online-ABFT", Abft.Scheme.enhanced ());
      ("Online-ABFT", Abft.Scheme.Online);
      ("Offline-ABFT", Abft.Scheme.Offline);
    ]

let table7 () =
  capability_table "Table VII" Hetsim.Machine.tardis 20480;
  paper "Enhanced 10.66/10.66/10.67s; Online 10.51/10.52/22.63s; Offline 10.45/21.39/21.26s"

let table8 () =
  capability_table "Table VIII" Hetsim.Machine.bulldozer64 30720;
  paper "Enhanced 8.85/8.93/8.91s; Online 8.65/8.70/21.42s; Offline 8.64/21.45/21.35s"
