(* Throughput — the serving layer under offered load (real kernels).

   Open-loop sweep against a live Serving.Server: deterministic arrival
   schedules at multiples of the calibrated sustainable rate, reporting
   achieved req/s, p50/p99 latency, and how much load the bounded queue
   shed with Overloaded. A final fault-storm leg runs a storming tenant
   (persistent injected faults, tight deadline, low quota weight) next
   to a clean tenant and reports the clean tenant's p99 inflation — the
   isolation number the serving layer exists to bound.

   Times are wall-clock (Unix.gettimeofday): latency here is queueing +
   service across domains, which CPU-time clocks would misreport. *)

open Matrix
module Server = Serving.Server
module C = Cholesky

let now = Unix.gettimeofday

(* Small enough that the full sweep stays in bench-suite time; large
   enough that service time dominates scheduling noise. *)
let n = 96
let block = 16
let requests = 30
let loads = [ 0.5; 1.0; 2.0 ]
let storm_faults = 3

let cfg =
  {
    Server.workers = 2;
    pool_domains = 2;
    queue_capacity = 8;
    chol = C.Config.default;
    seed = 0;
  }

let percentile p xs =
  match xs with
  | [] -> 0.
  | _ ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let k = p *. float_of_int (Array.length a - 1) in
      a.(int_of_float (Float.round k))

type arrival = { at : float; tenant : string; deadline : float }

let schedule ?(deadline = 0.) ~rate ~count ~tenant () =
  List.init count (fun i ->
      { at = float_of_int i /. rate; tenant; deadline })

let merge a b =
  List.stable_sort (fun x y -> Float.compare x.at y.at) (a @ b)

type leg = {
  name : string;
  offered_rps : float;
  achieved_rps : float;
  accepted : int;
  overloaded : int;
  completed : int;
  p50_s : float;
  p99_s : float;
  clean_p99_s : float;
}

(* One leg: fresh server, submit along the schedule, await everything,
   drain. Latency is submit-to-settle per ticket. *)
let run_leg ~name ~offered_rps ~tenants arrivals =
  let srv = Server.create cfg tenants in
  let mats =
    List.mapi
      (fun i (t, _) -> (t, Spd.random_spd ~seed:(1000 * (i + 1)) n))
      tenants
  in
  let t0 = now () in
  let settled = ref [] in
  List.iter
    (fun a ->
      let target = t0 +. a.at in
      let dt = target -. now () in
      if dt > 0. then Unix.sleepf dt;
      let deadline_s = if a.deadline > 0. then Some a.deadline else None in
      match
        Server.submit srv ~tenant:a.tenant ?deadline_s
          (Server.Factor (List.assoc a.tenant mats))
      with
      | Ok tk -> settled := (a.tenant, tk) :: !settled
      | Error _ -> ())
    arrivals;
  (* latency comes from the outcome's own clocks (queue wait + slot
     service, or elapsed-at-settlement) — measuring around await would
     fold the harness's sequential await order into the numbers *)
  let lats =
    List.rev_map
      (fun (tenant, tk) ->
        let l =
          match Server.await srv tk with
          | Server.Completed { wait_s; service_s; _ } -> wait_s +. service_s
          | Server.Deadline_exceeded { elapsed_s; _ }
          | Server.Cancelled { elapsed_s; _ }
          | Server.Failed { elapsed_s; _ } ->
              elapsed_s
        in
        (tenant, l))
      !settled
  in
  Server.shutdown srv ~drain:true;
  let wall = Float.max 1e-9 (now () -. t0) in
  let c = Server.counters srv in
  let all = List.map snd lats in
  let clean =
    List.filter_map
      (fun (t, l) -> if String.equal t "clean" then Some l else None)
      lats
  in
  let leg =
    {
      name;
      offered_rps;
      achieved_rps = float_of_int c.Server.completed /. wall;
      accepted = c.Server.accepted;
      overloaded = c.Server.rejected_overloaded;
      completed = c.Server.completed;
      p50_s = percentile 0.5 all;
      p99_s = percentile 0.99 all;
      clean_p99_s = percentile 0.99 clean;
    }
  in
  Bench_util.record ~name ~size:n
    [
      ("offered_rps", leg.offered_rps);
      ("achieved_rps", leg.achieved_rps);
      ("accepted", float_of_int leg.accepted);
      ("rejected_overloaded", float_of_int leg.overloaded);
      ("completed", float_of_int leg.completed);
      ("p50_s", leg.p50_s);
      ("p99_s", leg.p99_s);
      ("clean_p99_s", leg.clean_p99_s);
    ];
  leg

let print_leg l =
  Format.printf "  %-12s %8.1f %8.1f %6d %6d %6d %9.2f %9.2f@." l.name
    l.offered_rps l.achieved_rps l.accepted l.overloaded l.completed
    (1000. *. l.p50_s) (1000. *. l.p99_s)

(* Same calibration discipline as bin/ftserve: measure through the
   server with every slot busy, warmup batch discarded, median of the
   second batch. *)
let calibrate () =
  let srv =
    Server.create
      { cfg with Server.queue_capacity = 4 * cfg.Server.workers }
      [ ("clean", Server.clean_tenant) ]
  in
  let a = Spd.random_spd ~seed:0 n in
  let batch () =
    List.init (4 * cfg.Server.workers) (fun i -> i)
    |> List.filter_map (fun _ ->
           Result.to_option (Server.submit srv ~tenant:"clean" (Server.Factor a)))
    |> List.filter_map (fun tk ->
           match Server.await srv tk with
           | Server.Completed { service_s; _ } -> Some service_s
           | _ -> None)
  in
  ignore (batch () : float list);
  let samples = Array.of_list (batch ()) in
  Array.sort Float.compare samples;
  Server.shutdown srv ~drain:true;
  if Array.length samples = 0 then 1e-3
  else Float.max 1e-6 samples.(Array.length samples / 2)

let storm_policy =
  {
    Server.clean_tenant with
    Server.weight = 1;
    plan =
      (fun ~n ~block ~seed ->
        Campaign.plan Campaign.Mixed ~seed ~grid:(n / block)
          ~block ~count:storm_faults);
    chol = Some (C.Config.make ~block ~snapshot_interval:2 ~max_rollbacks:4 ());
  }

let run () =
  Bench_util.header
    (Printf.sprintf
       "Throughput — serving layer under offered load (%d^2, block %d, %d \
        workers)"
       n block cfg.Server.workers);
  let service_s = calibrate () in
  let sustainable = float_of_int cfg.Server.workers /. service_s in
  Bench_util.note "calibrated service %.2f ms => sustainable %.1f req/s"
    (1000. *. service_s) sustainable;
  Format.printf "  %-12s %8s %8s %6s %6s %6s %9s %9s@." "leg" "offer" "ach"
    "acc" "ovl" "done" "p50ms" "p99ms";
  List.iter
    (fun m ->
      let rate = m *. sustainable in
      let l =
        run_leg
          ~name:(Printf.sprintf "load-%.2gx" m)
          ~offered_rps:rate
          ~tenants:[ ("clean", Server.clean_tenant) ]
          (schedule ~rate ~count:requests ~tenant:"clean" ())
      in
      print_leg l)
    loads;
  (* fault-storm isolation: clean tenant alone, then the same clean
     traffic next to a storming tenant held to one slot by 7:1 quota
     weights, a tight per-request deadline, and rollback recovery. *)
  let clean_rate = 0.25 *. sustainable in
  let clean_count = 2 * requests in
  let clean_sched =
    schedule ~rate:clean_rate ~count:clean_count ~tenant:"clean" ()
  in
  let base =
    run_leg ~name:"storm-base" ~offered_rps:clean_rate
      ~tenants:[ ("clean", Server.clean_tenant) ]
      clean_sched
  in
  print_leg base;
  let storm_sched =
    schedule ~deadline:(1.5 *. service_s) ~rate:(0.35 *. sustainable)
      ~count:clean_count ~tenant:"storm" ()
  in
  let mixed =
    run_leg ~name:"storm"
      ~offered_rps:(clean_rate +. (0.35 *. sustainable))
      ~tenants:
        [
          ("clean", { Server.clean_tenant with Server.weight = 7 });
          ("storm", storm_policy);
        ]
      (merge clean_sched storm_sched)
  in
  print_leg mixed;
  let floor_s = Float.max base.clean_p99_s service_s in
  Bench_util.note
    "isolation: clean p99 %.2f ms under storm vs %.2f ms alone (x%.2f over \
     max(baseline, one service time))"
    (1000. *. mixed.clean_p99_s)
    (1000. *. base.clean_p99_s)
    (mixed.clean_p99_s /. floor_s);
  Bench_util.record ~name:"isolation" ~size:n
    [
      ("baseline_clean_p99_s", base.clean_p99_s);
      ("storm_clean_p99_s", mixed.clean_p99_s);
      ("inflation", mixed.clean_p99_s /. floor_s);
    ]
