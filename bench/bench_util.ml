(* Shared helpers for the reproduction benches: machine/size grids,
   overhead computation, table formatting, and the machine-readable
   results sink behind `--json`. *)

module C = Cholesky

(* The paper's sweep ranges (§VII-A): 5120..23040 on tardis,
   5120..30720 on bulldozer64, step 2560 (matching both block sizes). *)
let sizes (machine : Hetsim.Machine.t) =
  let top = if machine.Hetsim.Machine.name = "tardis" then 23040 else 30720 in
  let rec go n acc = if n > top then List.rev acc else go (n + 2560) (n :: acc) in
  go 5120 []

let machines =
  [ (Hetsim.Machine.tardis, 20480); (Hetsim.Machine.bulldozer64, 30720) ]

(* ------------------------------------------------------------------ *)
(* Machine-readable results (`--json out.json`)                        *)
(*                                                                     *)
(* Every simulated run that goes through [run] (and anything a bench   *)
(* reports explicitly via [record]) accumulates one row; [write_json]  *)
(* dumps them at exit. Schema documented in EXPERIMENTS.md.            *)
(* ------------------------------------------------------------------ *)

let current_experiment = ref ""
let json_requested = ref false

type json_row = {
  experiment : string;
  name : string;
  size : int;
  metrics : (string * float) list;
}

let rows : json_row list ref = ref []
let rows_mutex = Mutex.create ()

let record ~name ~size metrics =
  if !json_requested then begin
    Mutex.lock rows_mutex;
    rows :=
      { experiment = !current_experiment; name; size; metrics } :: !rows;
    Mutex.unlock rows_mutex
  end

(* Escaping/formatting and the sink document itself come from Obs —
   the shared implementation also used by the soak report and the
   engine's chrome-trace exporter. *)
let json_escape = Obs.Json.escape
let json_float = Obs.Json.number

let write_json path =
  let oc = open_out path in
  output_string oc
    (Obs.metrics_json
       (List.rev_map
          (fun r ->
            {
              Obs.experiment = r.experiment;
              name = r.name;
              size = r.size;
              metrics = r.metrics;
            })
          !rows));
  close_out oc

(* The bench process's observability sink: Obs.null unless the user
   passed --trace-out/--metrics-out, in which case main.ml swaps in a
   live sink before dispatching experiments. *)
let obs : Obs.t ref = ref Obs.null

(* ------------------------------------------------------------------ *)
(* Simulated runs                                                      *)
(* ------------------------------------------------------------------ *)

let run ?plan ?(opt1 = true) ?(opt2 = C.Config.Auto) ?(block = 0) machine
    scheme n =
  let cfg = C.Config.make ~machine ~scheme ~block ~opt1 ~opt2 () in
  let r = C.Schedule.run ?plan cfg ~n in
  record
    ~name:
      (Printf.sprintf "%s/%s" machine.Hetsim.Machine.name
         (Abft.Scheme.name scheme))
    ~size:n
    [
      ("makespan_s", r.C.Schedule.makespan);
      ("gflops", r.C.Schedule.gflops);
      ("reruns", float_of_int r.C.Schedule.reruns);
    ];
  r

(* Makespan of plain MAGMA (no FT) — the baseline every overhead is
   relative to. Memoised on the *full* configuration (machine, size,
   optimization flags, block size): a sweep that varies opt1/opt2 or
   the tile size must not read a baseline computed under different
   settings. The machine record participates structurally, so two
   machines differing in any rate hash to different keys even under
   one name. *)
let baseline_tbl
    : (Hetsim.Machine.t * int * bool * C.Config.placement * int, float)
      Hashtbl.t =
  Hashtbl.create 64

let baseline ?(opt1 = true) ?(opt2 = C.Config.Auto) ?(block = 0) machine n =
  let key = (machine, n, opt1, opt2, block) in
  Mutex.lock rows_mutex;
  let hit = Hashtbl.find_opt baseline_tbl key in
  Mutex.unlock rows_mutex;
  match hit with
  | Some t -> t
  | None ->
      let t =
        (run ~opt1 ~opt2 ~block machine Abft.Scheme.No_ft n)
          .C.Schedule.makespan
      in
      Mutex.lock rows_mutex;
      Hashtbl.replace baseline_tbl key t;
      Mutex.unlock rows_mutex;
      t

let overhead_pct ?opt1 ?opt2 ?block machine n makespan =
  let base = baseline ?opt1 ?opt2 ?block machine n in
  (makespan -. base) /. base *. 100.

let header title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '-')

let row_label = Format.printf "%-24s"

let note fmt = Format.printf ("  note: " ^^ fmt ^^ "@.")

let paper fmt = Format.printf ("  paper: " ^^ fmt ^^ "@.")
