(* Shared helpers for the reproduction benches: machine/size grids,
   overhead computation, and table formatting. *)

module C = Cholesky

(* The paper's sweep ranges (§VII-A): 5120..23040 on tardis,
   5120..30720 on bulldozer64, step 2560 (matching both block sizes). *)
let sizes (machine : Hetsim.Machine.t) =
  let top = if machine.Hetsim.Machine.name = "tardis" then 23040 else 30720 in
  let rec go n acc = if n > top then List.rev acc else go (n + 2560) (n :: acc) in
  go 5120 []

let machines =
  [ (Hetsim.Machine.tardis, 20480); (Hetsim.Machine.bulldozer64, 30720) ]

let run ?plan ?(opt1 = true) ?(opt2 = C.Config.Auto) machine scheme n =
  let cfg = C.Config.make ~machine ~scheme ~opt1 ~opt2 () in
  C.Schedule.run ?plan cfg ~n

(* Makespan of plain MAGMA (no FT) — the baseline every overhead is
   relative to. Memoised: the sweeps ask for the same baselines often. *)
let baseline_tbl : (string * int, float) Hashtbl.t = Hashtbl.create 64

let baseline machine n =
  let key = (machine.Hetsim.Machine.name, n) in
  match Hashtbl.find_opt baseline_tbl key with
  | Some t -> t
  | None ->
      let t = (run machine Abft.Scheme.No_ft n).C.Schedule.makespan in
      Hashtbl.add baseline_tbl key t;
      t

let overhead_pct machine n makespan =
  let base = baseline machine n in
  (makespan -. base) /. base *. 100.

let header title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '-')

let row_label = Format.printf "%-24s"

let note fmt = Format.printf ("  note: " ^^ fmt ^^ "@.")

let paper fmt = Format.printf ("  paper: " ^^ fmt ^^ "@.")
