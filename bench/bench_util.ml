(* Shared helpers for the reproduction benches: machine/size grids,
   overhead computation, table formatting, and the machine-readable
   results sink behind `--json`. *)

module C = Cholesky

(* The paper's sweep ranges (§VII-A): 5120..23040 on tardis,
   5120..30720 on bulldozer64, step 2560 (matching both block sizes). *)
let sizes (machine : Hetsim.Machine.t) =
  let top = if machine.Hetsim.Machine.name = "tardis" then 23040 else 30720 in
  let rec go n acc = if n > top then List.rev acc else go (n + 2560) (n :: acc) in
  go 5120 []

let machines =
  [ (Hetsim.Machine.tardis, 20480); (Hetsim.Machine.bulldozer64, 30720) ]

(* ------------------------------------------------------------------ *)
(* Machine-readable results (`--json out.json`)                        *)
(*                                                                     *)
(* Every simulated run that goes through [run] (and anything a bench   *)
(* reports explicitly via [record]) accumulates one row; [write_json]  *)
(* dumps them at exit. Schema documented in EXPERIMENTS.md.            *)
(* ------------------------------------------------------------------ *)

let current_experiment = ref ""
let json_requested = ref false

type json_row = {
  experiment : string;
  name : string;
  size : int;
  metrics : (string * float) list;
}

let rows : json_row list ref = ref []
let rows_mutex = Mutex.create ()

let record ~name ~size metrics =
  if !json_requested then begin
    Mutex.lock rows_mutex;
    rows :=
      { experiment = !current_experiment; name; size; metrics } :: !rows;
    Mutex.unlock rows_mutex
  end

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_integer f && abs_float f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let write_json path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"schema_version\": 1,\n  \"results\": [";
  List.iteri
    (fun i r ->
      out "%s\n    { \"experiment\": \"%s\", \"name\": \"%s\", \"size\": %d, \
           \"metrics\": {"
        (if i = 0 then "" else ",")
        (json_escape r.experiment) (json_escape r.name) r.size;
      List.iteri
        (fun k (key, v) ->
          out "%s\"%s\": %s"
            (if k = 0 then " " else ", ")
            (json_escape key) (json_float v))
        r.metrics;
      out " } }")
    (List.rev !rows);
  out "\n  ]\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Simulated runs                                                      *)
(* ------------------------------------------------------------------ *)

let run ?plan ?(opt1 = true) ?(opt2 = C.Config.Auto) ?(block = 0) machine
    scheme n =
  let cfg = C.Config.make ~machine ~scheme ~block ~opt1 ~opt2 () in
  let r = C.Schedule.run ?plan cfg ~n in
  record
    ~name:
      (Printf.sprintf "%s/%s" machine.Hetsim.Machine.name
         (Abft.Scheme.name scheme))
    ~size:n
    [
      ("makespan_s", r.C.Schedule.makespan);
      ("gflops", r.C.Schedule.gflops);
      ("reruns", float_of_int r.C.Schedule.reruns);
    ];
  r

(* Makespan of plain MAGMA (no FT) — the baseline every overhead is
   relative to. Memoised on the *full* configuration (machine, size,
   optimization flags, block size): a sweep that varies opt1/opt2 or
   the tile size must not read a baseline computed under different
   settings. The machine record participates structurally, so two
   machines differing in any rate hash to different keys even under
   one name. *)
let baseline_tbl
    : (Hetsim.Machine.t * int * bool * C.Config.placement * int, float)
      Hashtbl.t =
  Hashtbl.create 64

let baseline ?(opt1 = true) ?(opt2 = C.Config.Auto) ?(block = 0) machine n =
  let key = (machine, n, opt1, opt2, block) in
  Mutex.lock rows_mutex;
  let hit = Hashtbl.find_opt baseline_tbl key in
  Mutex.unlock rows_mutex;
  match hit with
  | Some t -> t
  | None ->
      let t =
        (run ~opt1 ~opt2 ~block machine Abft.Scheme.No_ft n)
          .C.Schedule.makespan
      in
      Mutex.lock rows_mutex;
      Hashtbl.replace baseline_tbl key t;
      Mutex.unlock rows_mutex;
      t

let overhead_pct ?opt1 ?opt2 ?block machine n makespan =
  let base = baseline ?opt1 ?opt2 ?block machine n in
  (makespan -. base) /. base *. 100.

let header title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '-')

let row_label = Format.printf "%-24s"

let note fmt = Format.printf ("  note: " ^^ fmt ^^ "@.")

let paper fmt = Format.printf ("  paper: " ^^ fmt ^^ "@.")
