(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section on the simulated testbeds, then runs Bechamel
   microbenches of the real numeric kernels.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --only fig14_15 table7
     dune exec bench/main.exe -- --json out.json --only table7
     dune exec bench/main.exe -- --list
*)

let experiments =
  [
    ("table1", "Table I — verification counts", Bench_tables.table1);
    ("table2_6", "Tables II-VI — analytic overhead model", Bench_tables.table2_6);
    ("table7", "Table VII — capability, TARDIS 20480^2", Bench_tables.table7);
    ("table8", "Table VIII — capability, BULLDOZER64 30720^2", Bench_tables.table8);
    ("fig8_9", "Figures 8/9 — Optimization 1", Bench_figs.fig8_9);
    ("fig10_11", "Figures 10/11 — Optimization 2", Bench_figs.fig10_11);
    ("fig12_13", "Figures 12/13 — Optimization 3", Bench_figs.fig12_13);
    ("fig14_15", "Figures 14/15 — overhead comparison", Bench_figs.fig14_15);
    ("fig16_17", "Figures 16/17 — performance", Bench_figs.fig16_17);
    ("ablations", "Ablations — redundancy, d, K-tuner, sweep, placement",
     Bench_ablations.run);
    ("coverage", "Coverage — fault Monte-Carlo + checkpoint comparison",
     Bench_coverage.run);
    ("sensitivity", "Sensitivity — thresholds vs conditioning & magnitude",
     Bench_sensitivity.run);
    ("lu", "FT-LU and FT-QR extensions — capability + overhead at paper scale",
     Bench_lu.run);
    ("hardware", "Hardware — modern GPU + parameter sensitivity",
     Bench_hardware.run);
    ("parallel", "Parallel kernels — domain-pool BLAS-3 + batched verification",
     Bench_parallel.run);
    ("resilience", "Resilience — device-fault overhead of the failure-aware \
                    scheduler", Bench_resilience.run);
    ("balance", "Balance — static vs adaptive CPU/GPU split under the GPU \
                 storm", Bench_balance.run);
    ("throughput", "Throughput — serving layer offered-load sweep + fault \
                    storm", Bench_throughput.run);
    ("solver", "Solver — protected PCG overhead vs unprotected CG",
     Bench_solver.run);
    ("micro", "Bechamel microbenches (real kernels)", Bench_micro.run);
    ("fused", "Fused vs separate ABFT pipelines (real kernels)",
     Bench_micro.run_fused);
  ]

let run_experiment (id, _, f) =
  Bench_util.current_experiment := id;
  (* One span per experiment: a trace of a full bench run shows which
     tables/figures dominate wall time. *)
  Obs.span !Bench_util.obs ~op:id ~phase:"experiment" f;
  Bench_util.current_experiment := ""

let usage () =
  Format.eprintf
    "usage: main.exe [--json <path>] [--trace-out <path>] [--metrics-out \
     <path>] [--device-faults <rate>] [--fused-sizes <n,n,...>] [--list | \
     --only <id>...]@.";
  exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* Peel off `--json <path>` / `--device-faults <rate>` wherever they
     appear. *)
  let json_path = ref None in
  let trace_path = ref None in
  let metrics_path = ref None in
  let rec strip = function
    | "--json" :: path :: rest ->
        json_path := Some path;
        strip rest
    | [ "--json" ] -> usage ()
    | "--trace-out" :: path :: rest ->
        trace_path := Some path;
        strip rest
    | [ "--trace-out" ] -> usage ()
    | "--metrics-out" :: path :: rest ->
        metrics_path := Some path;
        strip rest
    | [ "--metrics-out" ] -> usage ()
    | "--device-faults" :: rate :: rest -> (
        match float_of_string_opt rate with
        | Some r when r >= 0. && r <= 1. ->
            (* probe one storm intensity in the resilience experiment *)
            Bench_resilience.rates := [ r ];
            strip rest
        | Some _ | None ->
            Format.eprintf "--device-faults: rate must be a float in [0,1]@.";
            exit 1)
    | [ "--device-faults" ] -> usage ()
    | "--fused-sizes" :: spec :: rest -> (
        match
          String.split_on_char ',' spec
          |> List.map (fun s -> int_of_string_opt (String.trim s))
        with
        | sizes when sizes <> [] && List.for_all (function
            | Some n -> n > 0
            | None -> false) sizes ->
            Bench_micro.fused_sizes :=
              List.filter_map (fun x -> x) sizes;
            strip rest
        | _ ->
            Format.eprintf
              "--fused-sizes: comma-separated positive ints, e.g. 256,1024@.";
            exit 1)
    | [ "--fused-sizes" ] -> usage ()
    | a :: rest -> a :: strip rest
    | [] -> []
  in
  let args = strip args in
  Bench_util.json_requested := !json_path <> None;
  if !trace_path <> None || !metrics_path <> None then
    Bench_util.obs := Obs.create ();
  (match args with
  | [ "--list" ] ->
      List.iter (fun (id, desc, _) -> Format.printf "%-10s %s@." id desc) experiments
  | "--only" :: ids when ids <> [] ->
      List.iter
        (fun id ->
          match List.find_opt (fun (i, _, _) -> i = id) experiments with
          | Some e -> run_experiment e
          | None ->
              Format.eprintf "unknown experiment %S (try --list)@." id;
              exit 1)
        ids
  | [] ->
      Format.printf
        "Reproducing the evaluation of 'Online Algorithm-Based Fault \
         Tolerance for Cholesky Decomposition on Heterogeneous Systems with \
         GPUs' (IPDPS'16).@.All times are virtual (discrete-event simulation \
         of the paper's testbeds) except the 'parallel' and 'micro' \
         sections.@.";
      List.iter run_experiment experiments
  | _ -> usage ());
  (match !json_path with
  | Some path ->
      Bench_util.write_json path;
      Format.printf "@.wrote %s@." path
  | None -> ());
  (match !trace_path with
  | Some path ->
      let oc = open_out path in
      output_string oc (Obs.chrome_trace !Bench_util.obs);
      close_out oc;
      Format.printf "@.wrote %s@." path
  | None -> ());
  match !metrics_path with
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Obs.metrics_json
           [
             {
               Obs.experiment = "bench";
               name = "all";
               size = 0;
               metrics = Obs.metric_list !Bench_util.obs;
             };
           ]);
      close_out oc;
      Format.printf "wrote %s@." path
  | None -> ()
