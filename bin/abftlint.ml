(* abftlint — static checker for the project invariants the ABFT layer
   depends on. See lib/analysis for the rule implementations and
   DESIGN.md §"The analysis layer" for the catalogue.

   Exit codes (the CI contract): 0 when clean — waived and baselined
   findings are clean; 1 when blocking findings remain; 2 on usage,
   file or parse errors (including a --baseline file that does not
   exist, unless --update-baseline is creating it). *)

let list_rules () =
  List.iter
    (fun (r : Analysis.Rules.t) ->
      Printf.printf "%s  %s\n    %s\n" r.id r.title r.rationale)
    Analysis.Rules.all

let split_commas s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let write_out path content =
  if path = "-" then print_endline content
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc content;
        output_char oc '\n')
  end

let run paths json sarif baseline_file update_baseline cache_dir rules_csv
    list_only quiet =
  if list_only then begin
    list_rules ();
    0
  end
  else
    match Analysis.Rules.select (split_commas rules_csv) with
    | Error id ->
        Printf.eprintf "abftlint: unknown rule %S (try --list-rules)\n" id;
        2
    | Ok rules -> (
        let baseline =
          match baseline_file with
          | None -> Ok None
          | Some _ when update_baseline ->
              (* regenerating: current contents are irrelevant *)
              Ok None
          | Some path -> (
              match Analysis.Baseline.load path with
              | Ok entries -> Ok (Some entries)
              | Error msg ->
                  Error
                    (Printf.sprintf
                       "cannot read baseline %s (%s); pass \
                        --update-baseline to create it"
                       path msg))
        in
        match baseline with
        | Error msg ->
            Printf.eprintf "abftlint: %s\n" msg;
            2
        | Ok baseline ->
            let paths =
              if paths = [] then [ "lib"; "bin"; "bench" ] else paths
            in
            let report =
              Analysis.Driver.run ~rules ?cache_dir ?baseline paths
            in
            let report =
              match baseline_file with
              | Some path when update_baseline ->
                  (* Accept today's blocking findings as the new debt
                     line, then report against it so the run exits 0. *)
                  Analysis.Baseline.save path report.Analysis.Driver.findings;
                  let entries =
                    match Analysis.Baseline.load path with
                    | Ok e -> e
                    | Error _ -> []
                  in
                  let findings, stale =
                    Analysis.Baseline.apply entries
                      report.Analysis.Driver.findings
                  in
                  {
                    report with
                    Analysis.Driver.findings;
                    stale_baseline = stale;
                  }
              | _ -> report
            in
            Option.iter
              (fun p -> write_out p (Analysis.Driver.json_report report))
              json;
            Option.iter
              (fun p ->
                write_out p (Analysis.Driver.sarif_report ~rules report))
              sarif;
            if not quiet then
              print_string (Analysis.Driver.human_report report);
            Analysis.Driver.exit_code report)

open Cmdliner

let paths_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"PATH"
         ~doc:"Files or directories to lint (default: lib bin bench).")

let json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Also write a machine-readable JSON report to $(docv) ('-' for \
               stdout).")

let sarif_arg =
  Arg.(value & opt (some string) None & info [ "sarif-out" ] ~docv:"FILE"
         ~doc:"Also write a SARIF 2.1.0 report to $(docv) ('-' for stdout).")

let baseline_arg =
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE"
         ~doc:"Accepted-findings file: blocking findings matching an entry \
               are demoted to baselined (clean). Missing file is an error \
               unless $(b,--update-baseline) is creating it.")

let update_baseline_arg =
  Arg.(value & flag & info [ "update-baseline" ]
         ~doc:"Rewrite the $(b,--baseline) file from this run's blocking \
               findings and exit as if it had been in force.")

let cache_dir_arg =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Incremental cache: per-file results keyed by content digest; \
               a warm run re-parses only changed files.")

let rules_arg =
  Arg.(value & opt string "" & info [ "rules" ] ~docv:"IDS"
         ~doc:"Comma-separated rule ids to run (default: all).")

let list_arg =
  Arg.(value & flag & info [ "list-rules" ]
         ~doc:"Print the rule catalogue and exit.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ]
         ~doc:"Suppress the human-readable report.")

let cmd =
  let doc =
    "static analysis for the ABFT project invariants: syntactic rules (R1 \
     parallel-write discipline, R2 verify-before-read, R3 banned \
     constructs, R4 bounded retries, R5 unchecked access) plus \
     whole-program dataflow (R6 unverified-data taint, R7 span/resource \
     discipline, R8 exception-path soundness)"
  in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"no blocking findings (waived/baselined-only is clean)";
      Cmd.Exit.info 1 ~doc:"blocking findings reported";
      Cmd.Exit.info 2 ~doc:"usage, file or parse errors";
    ]
  in
  Cmd.v
    (Cmd.info "abftlint" ~doc ~exits ~version:Analysis.Driver.version)
    Term.(
      const run $ paths_arg $ json_arg $ sarif_arg $ baseline_arg
      $ update_baseline_arg $ cache_dir_arg $ rules_arg $ list_arg
      $ quiet_arg)

let () = exit (Cmd.eval' cmd)
