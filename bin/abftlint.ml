(* abftlint — static checker for the project invariants the ABFT layer
   depends on. See lib/analysis for the rule implementations and
   DESIGN.md §"The analysis layer" for the catalogue. *)

let list_rules () =
  List.iter
    (fun (r : Analysis.Rules.t) ->
      Printf.printf "%s  %s\n    %s\n" r.id r.title r.rationale)
    Analysis.Rules.all

let split_commas s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let run paths json rules_csv list_only quiet =
  if list_only then begin
    list_rules ();
    0
  end
  else
    match Analysis.Rules.select (split_commas rules_csv) with
    | Error id ->
        Printf.eprintf "abftlint: unknown rule %S (try --list-rules)\n" id;
        2
    | Ok rules ->
        let paths = if paths = [] then [ "lib"; "bin" ] else paths in
        let report = Analysis.Driver.run ~rules paths in
        (match json with
        | None -> ()
        | Some "-" -> print_endline (Analysis.Driver.json_report report)
        | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                output_string oc (Analysis.Driver.json_report report);
                output_char oc '\n'));
        if not quiet then print_string (Analysis.Driver.human_report report);
        Analysis.Driver.exit_code report

open Cmdliner

let paths_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"PATH"
         ~doc:"Files or directories to lint (default: lib bin).")

let json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Also write a machine-readable JSON report to $(docv) ('-' for \
               stdout).")

let rules_arg =
  Arg.(value & opt string "" & info [ "rules" ] ~docv:"IDS"
         ~doc:"Comma-separated rule ids to run (default: all).")

let list_arg =
  Arg.(value & flag & info [ "list-rules" ]
         ~doc:"Print the rule catalogue and exit.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ]
         ~doc:"Suppress the human-readable report.")

let cmd =
  let doc =
    "static analysis for the ABFT project invariants (R1 parallel-write \
     discipline, R2 verify-before-read, R3 banned constructs, R4 bounded retries)"
  in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"no blocking findings (waived-only is clean)";
      Cmd.Exit.info 1 ~doc:"blocking findings reported";
      Cmd.Exit.info 2 ~doc:"usage, file or parse errors";
    ]
  in
  Cmd.v
    (Cmd.info "abftlint" ~doc ~exits ~version:Analysis.Driver.version)
    Term.(const run $ paths_arg $ json_arg $ rules_arg $ list_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
