(* ftchol — command-line front end for the fault-tolerant Cholesky
   reproduction: numeric factorizations with fault injection, timing
   simulations on the paper's testbed models, parameter sweeps, and
   machine/plan inspection. *)

open Cmdliner
module C = Cholesky

(* ------------------------------------------------------------------ *)
(* Shared argument converters                                          *)
(* ------------------------------------------------------------------ *)

let scheme_conv =
  let parse s =
    match Abft.Scheme.of_string s with Ok s -> Ok s | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Abft.Scheme.pp)

let placement_conv =
  let parse = function
    | "auto" -> Ok C.Config.Auto
    | "gpu-inline" -> Ok C.Config.Gpu_inline
    | "gpu-stream" -> Ok C.Config.Gpu_stream
    | "cpu" -> Ok C.Config.Cpu_offload
    | s -> Error (`Msg (Printf.sprintf "unknown placement %S" s))
  in
  let print fmt p =
    Format.pp_print_string fmt
      (match p with
      | C.Config.Auto -> "auto"
      | C.Config.Gpu_inline -> "gpu-inline"
      | C.Config.Gpu_stream -> "gpu-stream"
      | C.Config.Cpu_offload -> "cpu")
  in
  Arg.conv (parse, print)

let machine_arg = Machine_cli.machine_arg ~default:Hetsim.Machine.tardis ()

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv (Abft.Scheme.enhanced ())
    & info [ "s"; "scheme" ] ~docv:"SCHEME"
        ~doc:
          "Fault-tolerance scheme: none, offline, online, enhanced or \
           enhanced-kN.")

let n_arg ~default =
  Arg.(
    value & opt int default
    & info [ "n" ] ~docv:"N" ~doc:"Matrix order (multiple of the block size).")

let block_arg =
  Arg.(
    value & opt int 0
    & info [ "b"; "block" ] ~docv:"B"
        ~doc:"Tile size (0 = the machine's MAGMA default).")

let opt1_arg =
  Arg.(
    value & opt bool true
    & info [ "opt1" ] ~docv:"BOOL"
        ~doc:"Optimization 1: concurrent checksum recalculation.")

let opt2_arg =
  Arg.(
    value
    & opt placement_conv C.Config.Auto
    & info [ "opt2" ] ~docv:"PLACEMENT"
        ~doc:
          "Optimization 2 placement of checksum updating: auto, gpu-inline, \
           gpu-stream or cpu.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let faults_arg =
  Arg.(
    value & opt int 0
    & info [ "faults" ] ~docv:"COUNT" ~doc:"Number of random faults to inject.")

let storage_frac_arg =
  Arg.(
    value & opt float 0.5
    & info [ "storage-fraction" ] ~docv:"FRAC"
        ~doc:"Fraction of injected faults that are storage errors.")

let make_cfg machine block scheme opt1 opt2 =
  C.Config.make ~machine ~block ~scheme ~opt1 ~opt2 ()

let exit_err msg =
  Format.eprintf "ftchol: %s@." msg;
  exit 1

let random_plan_or_exit ?covered_only ~seed ~grid ~block ~count ~storage_fraction () =
  try Fault.random_plan ?covered_only ~seed ~grid ~block ~count ~storage_fraction ()
  with Invalid_argument msg -> exit_err msg

(* ------------------------------------------------------------------ *)
(* factor — numeric mode                                               *)
(* ------------------------------------------------------------------ *)

let factor_cmd =
  let run machine n block scheme opt1 opt2 seed faults storage_fraction sweep
      input trace_out metrics_out =
    let a =
      match input with
      | None -> None
      | Some path -> (
          try Some (Matrix.Mm_io.read path)
          with Failure e -> exit_err e)
    in
    let n = match a with Some m -> Matrix.Mat.rows m | None -> n in
    let cfg = make_cfg machine block scheme opt1 opt2 in
    let b = C.Config.block_size cfg in
    if n <= 0 || n mod b <> 0 then
      exit_err (Printf.sprintf "n=%d must be a positive multiple of B=%d" n b);
    let plan =
      if faults = 0 then []
      else
        random_plan_or_exit ~covered_only:true ~seed ~grid:(n / b) ~block:b
          ~count:faults ~storage_fraction ()
    in
    Format.printf "config: %a@." C.Config.pp cfg;
    if plan <> [] then Format.printf "plan:@.%a@." Fault.pp plan;
    let a =
      match a with Some m -> m | None -> Matrix.Spd.random_spd ~seed:(seed + 1) n
    in
    let traced = trace_out <> None || metrics_out <> None in
    let obs = if traced then Obs.create () else Obs.null in
    let t0 = Unix.gettimeofday () in
    let report = C.Ft.factor ~obs ~plan ~final_sweep:sweep cfg a in
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "%a@." C.Ft.pp_report report;
    List.iter
      (fun f -> Format.printf "  %a@." Injector.pp_fired f)
      report.C.Ft.injections_fired;
    Format.printf "wall time (real arithmetic on this host): %.3fs@." dt;
    if traced then Format.printf "@.%s" (Obs.summary_table obs);
    (match trace_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Obs.chrome_trace obs);
        close_out oc;
        Format.printf "chrome trace written to %s@." path);
    (match metrics_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc
          (Obs.metrics_json
             [
               {
                 Obs.experiment = "ftchol";
                 name =
                   Printf.sprintf "%s/%s" machine.Hetsim.Machine.name
                     (Abft.Scheme.name scheme);
                 size = n;
                 metrics = ("wall_s", dt) :: Obs.metric_list obs;
               };
             ]);
        close_out oc;
        Format.printf "metrics written to %s@." path);
    match report.C.Ft.outcome with C.Ft.Success -> 0 | _ -> 2
  in
  let term =
    Term.(
      const run $ machine_arg $ n_arg ~default:512 $ block_arg $ scheme_arg
      $ opt1_arg $ opt2_arg $ seed_arg $ faults_arg $ storage_frac_arg
      $ Arg.(
          value & flag
          & info [ "final-sweep" ]
              ~doc:
                "Enable the end-of-run verification sweep (extension beyond \
                 the paper).")
      $ Arg.(
          value
          & opt (some file) None
          & info [ "input" ] ~docv:"FILE"
              ~doc:
                "Factor the SPD matrix in this Matrix Market file instead of \
                 a random one (its order must be a multiple of the block).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace-out" ] ~docv:"FILE"
              ~doc:
                "Trace the run and write a Chrome Trace-Event JSON (loadable \
                 in Perfetto / about:tracing, one timeline row per domain) \
                 to $(docv).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "metrics-out" ] ~docv:"FILE"
              ~doc:
                "Trace the run and write per-op time totals, counters and \
                 histograms (bench-convention JSON) to $(docv)."))
  in
  Cmd.v
    (Cmd.info "factor"
       ~doc:
         "Numerically factor a random SPD matrix with the chosen ABFT scheme, \
          injecting faults, and report detection/correction statistics.")
    term

(* ------------------------------------------------------------------ *)
(* simulate — timing mode                                              *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let run machine n block scheme opt1 opt2 seed faults storage_fraction
      device_faults device_seed balance balance_interval trace_out show_gantt
      =
    let machine =
      try Machine_cli.apply_device_faults ~rate:device_faults machine
      with Invalid_argument _ -> exit_err "--device-faults must be in [0,1]"
    in
    if balance_interval < 1 then exit_err "--balance-interval must be >= 1";
    let cfg = make_cfg machine block scheme opt1 opt2 in
    let cfg = { cfg with C.Config.balance; balance_interval } in
    let b = C.Config.block_size cfg in
    if n <= 0 || n mod b <> 0 then
      exit_err (Printf.sprintf "n=%d must be a positive multiple of B=%d" n b);
    let plan =
      if faults = 0 then []
      else
        Fault.random_plan ~covered_only:true ~seed ~grid:(n / b) ~block:b
          ~count:faults ~storage_fraction ()
    in
    let r =
      try C.Schedule.run ~plan ~fault_seed:device_seed cfg ~n
      with Hetsim.Resilient.Gave_up { resource; failure; attempts; _ } ->
        Format.eprintf
          "ftchol: schedule gave up: %s on %s after %d attempts@."
          (Hetsim.Engine.failure_name failure)
          (Hetsim.Engine.resource_name resource)
          attempts;
        exit 2
    in
    Format.printf "config: %a@." C.Config.pp cfg;
    Format.printf "simulated time: %.4f s (%.1f GFLOPS)@." r.C.Schedule.makespan
      r.C.Schedule.gflops;
    Format.printf "recovery passes: %d@." r.C.Schedule.reruns;
    Format.printf "resolved placement: %s@."
      (match r.C.Schedule.placement with
      | C.Config.Auto -> "auto"
      | C.Config.Gpu_inline -> "gpu-inline"
      | C.Config.Gpu_stream -> "gpu-stream"
      | C.Config.Cpu_offload -> "cpu");
    Format.printf "phase decomposition:@.";
    List.iter
      (fun (p, t) -> Format.printf "  %-14s %9.4f s@." p t)
      (Hetsim.Engine.phases r.C.Schedule.engine);
    Format.printf "resource utilization:@.";
    List.iter
      (fun (res, u) ->
        Format.printf "  %-10s %5.1f%%@."
          (Format.asprintf "%a" Hetsim.Engine.pp_resource res)
          (u *. 100.))
      (Hetsim.Engine.utilization r.C.Schedule.engine);
    Format.printf "operations bound by:@.";
    List.iter
      (fun (b, count) ->
        Format.printf "  %-10s %d@."
          (Format.asprintf "%a" Hetsim.Engine.pp_binding b)
          count)
      (Hetsim.Engine.binding_summary r.C.Schedule.engine);
    if device_faults > 0. then begin
      Format.printf "device resilience%s:@."
        (if r.C.Schedule.degraded then " (DEGRADED to CPU)" else "");
      Format.printf "  %a@." Hetsim.Resilient.pp_stats r.C.Schedule.resilience
    end;
    (match balance with
    | None -> ()
    | Some mode ->
        Format.printf "trailing-update balance: %s, %d applied resplit(s)@."
          (Hetsim.Load_balancer.mode_name mode)
          r.C.Schedule.resilience.Hetsim.Resilient.resplits);
    if show_gantt then
      Format.printf "@.%s@." (Hetsim.Engine.gantt r.C.Schedule.engine);
    (match trace_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Hetsim.Engine.to_chrome_trace r.C.Schedule.engine);
        close_out oc;
        Format.printf "chrome trace written to %s@." path);
    0
  in
  let term =
    Term.(
      const run $ machine_arg $ n_arg ~default:20480 $ block_arg $ scheme_arg
      $ opt1_arg $ opt2_arg $ seed_arg $ faults_arg $ storage_frac_arg
      $ Machine_cli.device_faults_arg $ Machine_cli.device_seed_arg
      $ Machine_cli.balance_arg $ Machine_cli.balance_interval_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE"
              ~doc:"Write a chrome://tracing JSON timeline to $(docv).")
      $ Arg.(
          value & flag
          & info [ "gantt" ]
              ~doc:"Print an ASCII Gantt chart of the simulated timeline."))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Simulate the factorization on a testbed model at any size and print \
          the virtual time and phase decomposition.")
    term

(* ------------------------------------------------------------------ *)
(* sweep — overhead/performance tables across n                        *)
(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let run machine block sizes =
    let sizes =
      match sizes with
      | [] ->
          let b =
            if block > 0 then block else machine.Hetsim.Machine.default_block
          in
          List.init 8 (fun i -> (i + 2) * 10 * b / 4 * 2)
          |> List.map (fun n -> n - (n mod b))
          |> List.filter (fun n -> n > 0)
      | l -> l
    in
    let schemes =
      [
        ("magma", Abft.Scheme.No_ft);
        ("offline", Abft.Scheme.Offline);
        ("online", Abft.Scheme.Online);
        ("enhanced", Abft.Scheme.enhanced ());
      ]
    in
    Format.printf "%-8s" "n";
    List.iter (fun (name, _) -> Format.printf "%14s" name) schemes;
    Format.printf "%14s@." "cula";
    List.iter
      (fun n ->
        Format.printf "%-8d" n;
        List.iter
          (fun (_, scheme) ->
            let cfg = C.Config.make ~machine ~block ~scheme () in
            let r = C.Schedule.run cfg ~n in
            Format.printf "%9.1f GF  " r.C.Schedule.gflops)
          schemes;
        let cula = C.Cula_model.run ~block:(if block > 0 then block else machine.Hetsim.Machine.default_block) machine ~n in
        Format.printf "%9.1f GF@." cula.C.Cula_model.gflops)
      sizes;
    0
  in
  let term =
    Term.(
      const run $ machine_arg $ block_arg
      $ Arg.(
          value & pos_all int []
          & info [] ~docv:"N..." ~doc:"Matrix sizes (default: a spread)."))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Performance sweep over matrix sizes for every scheme plus CULA.")
    term

(* ------------------------------------------------------------------ *)
(* machines / plan                                                     *)
(* ------------------------------------------------------------------ *)

let machines_cmd =
  let run () =
    List.iter
      (fun (_, m) -> Format.printf "%a@.@." Hetsim.Machine.pp m)
      Hetsim.Machine.all_presets;
    0
  in
  Cmd.v
    (Cmd.info "machines" ~doc:"List the built-in machine presets.")
    Term.(const run $ const ())

let plan_cmd =
  let run seed grid block count storage_fraction =
    match Fault.random_plan ~seed ~grid ~block ~count ~storage_fraction () with
    | plan ->
        Format.printf "%a@." Fault.pp plan;
        0
    | exception Invalid_argument msg -> exit_err msg
  in
  let term =
    Term.(
      const run $ seed_arg
      $ Arg.(value & opt int 8 & info [ "grid" ] ~docv:"G" ~doc:"Tile grid side.")
      $ Arg.(value & opt int 64 & info [ "block" ] ~docv:"B" ~doc:"Tile size.")
      $ Arg.(value & opt int 5 & info [ "count" ] ~docv:"N" ~doc:"Injections.")
      $ storage_frac_arg)
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Generate and print a random fault-injection plan.")
    term

let lu_cmd =
  let run n block scheme seed faults storage_fraction =
    let block = if block > 0 then block else 16 in
    if n <= 0 || n mod block <> 0 then
      exit_err (Printf.sprintf "n=%d must be a positive multiple of B=%d" n block);
    let plan =
      if faults = 0 then []
      else
        random_plan_or_exit ~covered_only:true ~seed ~grid:(n / block) ~block
          ~count:faults ~storage_fraction ()
    in
    if plan <> [] then Format.printf "plan:@.%a@." Fault.pp plan;
    let a = Matrix.Lapack.diag_dominant ~seed:(seed + 1) n in
    let report = Ftlu.Ft_lu.factor ~plan ~scheme ~block a in
    Format.printf "%a@." Ftlu.Ft_lu.pp_report report;
    List.iter
      (fun f -> Format.printf "  %a@." Injector.pp_fired f)
      report.Ftlu.Ft_lu.injections_fired;
    match report.Ftlu.Ft_lu.outcome with Ftlu.Ft_lu.Success -> 0 | _ -> 2
  in
  let term =
    Term.(
      const run $ n_arg ~default:256 $ block_arg $ scheme_arg $ seed_arg
      $ faults_arg $ storage_frac_arg)
  in
  Cmd.v
    (Cmd.info "lu"
       ~doc:
         "Numerically run the fault-tolerant LU extension on a random \
          diagonally dominant matrix with fault injection.")
    term

let placement_cmd =
  let run machine n block k =
    let b = if block > 0 then block else machine.Hetsim.Machine.default_block in
    let d = Abft.Placement.decide machine { Abft.Overhead_model.n; b; k } in
    Format.printf "%a@." Abft.Placement.pp_decision d;
    0
  in
  let term =
    Term.(
      const run $ machine_arg $ n_arg ~default:20480 $ block_arg
      $ Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Verification interval."))
  in
  Cmd.v
    (Cmd.info "placement"
       ~doc:"Show the Optimization-2 CPU/GPU placement decision for a machine.")
    term

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let () =
  (* cmdliner commands read the flag positionally before dispatch *)
  setup_logs (Array.exists (fun a -> a = "-v" || a = "--verbose") Sys.argv);
  let doc =
    "fault-tolerant Cholesky decomposition with Enhanced Online-ABFT \
     (IPDPS'16 reproduction)"
  in
  let argv =
    Array.of_list
      (List.filter
         (fun a -> a <> "-v" && a <> "--verbose")
         (Array.to_list Sys.argv))
  in
  exit
    (Cmd.eval' ~argv
       (Cmd.group (Cmd.info "ftchol" ~doc)
          [
            factor_cmd; simulate_cmd; sweep_cmd; machines_cmd; plan_cmd;
            placement_cmd; lu_cmd;
          ]))
