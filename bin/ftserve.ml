(* ftserve: bounded load test for the factorization-as-a-service layer.

   Calibrates the sustainable request rate from measured service time,
   then drives open-loop offered-load legs through Serving.Server,
   reporting accepted/rejected/completed counts, achieved req/s and
   p50/p99 latency per leg. The storm part runs a clean-tenant
   baseline leg and then the same clean load mixed with a
   fault-storming tenant, asserting the isolation contract: clean p99
   within --p99-factor of its baseline and zero silent corruption.

   Exit codes (the CI contract):
     0  load test ran and every assertion held
     1  usage error
     2  infrastructure failure, silent corruption, or a violated
        backpressure/isolation assertion *)

open Cmdliner
open Matrix
module C = Cholesky
module Server = Serving.Server

let exit_err msg =
  Format.eprintf "ftserve: %s@." msg;
  exit 1

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

let n_arg =
  Arg.(value & opt int 96 & info [ "n" ] ~docv:"N" ~doc:"Matrix order.")

let block_arg =
  Arg.(value & opt int 16 & info [ "block" ] ~docv:"B" ~doc:"Tile size.")

let workers_arg =
  Arg.(
    value & opt int 2
    & info [ "workers" ] ~docv:"W"
        ~doc:"Worker slots (each a domain with a private pool).")

let pool_domains_arg =
  Arg.(
    value & opt int 2
    & info [ "pool-domains" ] ~docv:"D"
        ~doc:"Parallelism lanes per worker's pool.")

let queue_arg =
  Arg.(
    value & opt int 8
    & info [ "queue" ] ~docv:"Q" ~doc:"Bounded submission queue capacity.")

let requests_arg =
  Arg.(
    value & opt int 40
    & info [ "requests" ] ~docv:"R" ~doc:"Requests offered per leg.")

let loads_arg =
  Arg.(
    value
    & opt (list float) [ 0.5; 1.0; 2.0 ]
    & info [ "loads" ] ~docv:"M,..."
        ~doc:
          "Offered-load legs as multiples of the calibrated sustainable \
           rate.")

let deadline_arg =
  Arg.(
    value & opt float 0.
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:"Per-request deadline; 0 disables deadlines.")

let no_storm_arg =
  Arg.(
    value & flag
    & info [ "no-storm" ] ~doc:"Skip the fault-storm isolation legs.")

let storm_faults_arg =
  Arg.(
    value & opt int 3
    & info [ "storm-faults" ] ~docv:"K"
        ~doc:"Faults per storming request (Campaign Mixed plans).")

let p99_factor_arg =
  Arg.(
    value & opt float 2.0
    & info [ "p99-factor" ] ~docv:"F"
        ~doc:
          "Isolation bound: clean-tenant p99 under storm must stay within \
           F times its no-storm baseline.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write per-leg metrics (bench-convention JSON, one record per \
           leg) to $(docv).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-request outcomes.")

(* ------------------------------------------------------------------ *)
(* Open-loop legs                                                      *)
(* ------------------------------------------------------------------ *)

type arrival = { at : float; tenant : string; deadline : float (* 0 = none *) }

let schedule ?(deadline = 0.) ~rate ~count ~tenant () =
  List.init count (fun i ->
      { at = float_of_int i /. rate; tenant; deadline })

let merge_arrivals a b =
  List.stable_sort (fun x y -> Float.compare x.at y.at) (a @ b)

type leg_result = {
  leg : string;
  offered_rps : float;
  achieved_rps : float;
  accepted : int;
  rejected_overloaded : int;
  rejected_quota : int;
  rejected_breaker : int;
  completed : int;
  deadline_exceeded : int;
  cancelled : int;
  failed : int;
  corruptions : int;
  p50_s : float;
  p99_s : float;
  clean_p99_s : float;  (* p99 over the "clean" tenant only *)
  obs_metrics : (string * float) list;
}

let percentile sorted q =
  match Array.length sorted with
  | 0 -> 0.
  | len ->
      let i = int_of_float (q *. float_of_int len) in
      sorted.(min (len - 1) i)

let sorted_of_list l =
  let a = Array.of_list l in
  Array.sort Float.compare a;
  a

(* one open-loop leg: submit along the arrival schedule (sleeping to
   the next arrival, never blocking on results), then await every
   accepted ticket and drain the leg's server *)
let run_leg ~leg ~offered_rps ~cfg ~tenants ~matrix_order ~traced ~verbose
    arrivals =
  let obs = if traced then Obs.create () else Obs.null in
  let srv = Server.create ~obs cfg tenants in
  let mats =
    List.mapi
      (fun i (name, _) ->
        ( name,
          Spd.random_spd
            ~seed:(cfg.Server.seed + (1000 * (i + 1)))
            matrix_order ))
      tenants
  in
  let t_start = now () in
  let tickets = ref [] in
  List.iter
    (fun { at; tenant; deadline } ->
      let lag = t_start +. at -. now () in
      if lag > 0. then Unix.sleepf lag;
      let work = Server.Factor (List.assoc tenant mats) in
      let verdict =
        if deadline > 0. then
          Server.submit srv ~tenant ~deadline_s:deadline work
        else Server.submit srv ~tenant work
      in
      match verdict with
      | Ok tk -> tickets := (tenant, tk) :: !tickets
      | Error r ->
          if verbose then
            Format.printf "  [%s] %s rejected: %a@." leg tenant
              Server.pp_rejection r)
    arrivals;
  let lats = ref [] and clean_lats = ref [] in
  List.iter
    (fun (tenant, tk) ->
      match Server.await srv tk with
      | Server.Completed { wait_s; service_s; _ } ->
          let l = wait_s +. service_s in
          lats := l :: !lats;
          if String.equal tenant "clean" then clean_lats := l :: !clean_lats
      | o ->
          if verbose then
            Format.printf "  [%s] %s #%d: %a@." leg tenant
              (Server.ticket_id tk) Server.pp_outcome o)
    (List.rev !tickets);
  Server.shutdown srv ~drain:true;
  let wall = Float.max 1e-9 (now () -. t_start) in
  let c = Server.counters srv in
  let all = sorted_of_list !lats and clean = sorted_of_list !clean_lats in
  {
    leg;
    offered_rps;
    achieved_rps = float_of_int c.Server.completed /. wall;
    accepted = c.Server.accepted;
    rejected_overloaded = c.Server.rejected_overloaded;
    rejected_quota = c.Server.rejected_quota;
    rejected_breaker = c.Server.rejected_breaker;
    completed = c.Server.completed;
    deadline_exceeded = c.Server.deadline_exceeded;
    cancelled = c.Server.cancelled;
    failed = c.Server.failed;
    corruptions = c.Server.corruptions;
    p50_s = percentile all 0.5;
    p99_s = percentile all 0.99;
    clean_p99_s = percentile clean 0.99;
    obs_metrics = (if traced then Obs.metric_list obs else []);
  }

let pp_leg fmt r =
  Format.fprintf fmt
    "%-14s %8.1f %8.1f %5d %5d %5d %5d %5d %5d %5d %5d %8.2f %8.2f" r.leg
    r.offered_rps r.achieved_rps r.accepted r.rejected_overloaded
    r.rejected_quota r.rejected_breaker r.completed r.deadline_exceeded
    r.cancelled r.failed (1000. *. r.p50_s) (1000. *. r.p99_s)

let leg_metrics r =
  [
    ("offered_rps", r.offered_rps);
    ("achieved_rps", r.achieved_rps);
    ("accepted", float_of_int r.accepted);
    ("rejected_overloaded", float_of_int r.rejected_overloaded);
    ("rejected_quota", float_of_int r.rejected_quota);
    ("rejected_breaker", float_of_int r.rejected_breaker);
    ("completed", float_of_int r.completed);
    ("deadline_exceeded", float_of_int r.deadline_exceeded);
    ("cancelled", float_of_int r.cancelled);
    ("failed", float_of_int r.failed);
    ("corruptions", float_of_int r.corruptions);
    ("p50_s", r.p50_s);
    ("p99_s", r.p99_s);
    ("clean_p99_s", r.clean_p99_s);
  ]
  @ r.obs_metrics

(* ------------------------------------------------------------------ *)
(* The harness                                                         *)
(* ------------------------------------------------------------------ *)

let storm_policy ~storm_faults ~block =
  {
    Server.clean_tenant with
    Server.weight = 1;
    plan =
      (fun ~n ~block ~seed ->
        Campaign.plan Campaign.Mixed ~seed ~grid:(n / block) ~block
          ~count:storm_faults);
    (* per-tenant resilience override: frequent verified snapshots let
       the storming tenant recover by cheap rollback instead of full
       restarts, so one storm request cannot occupy its slot for a
       multiple of the clean service time *)
    chol = Some (C.Config.make ~block ~snapshot_interval:2 ~max_rollbacks:4 ());
  }

let serve n block workers pool_domains queue requests loads deadline no_storm
    storm_faults p99_factor seed metrics_out verbose =
  if n < 4 then exit_err "--n must be >= 4";
  if block < 2 then exit_err "--block must be >= 2";
  if n mod block <> 0 then exit_err "--n must be a multiple of --block";
  if workers < 1 then exit_err "--workers must be >= 1";
  if pool_domains < 1 then exit_err "--pool-domains must be >= 1";
  if queue < 1 then exit_err "--queue must be >= 1";
  if requests < 1 then exit_err "--requests must be >= 1";
  if loads = [] || List.exists (fun m -> m <= 0.) loads then
    exit_err "--loads must be positive";
  if p99_factor < 1. then exit_err "--p99-factor must be >= 1";
  let cfg =
    {
      Server.workers;
      pool_domains;
      queue_capacity = queue;
      chol = C.Config.make ~block ();
      seed;
    }
  in
  let traced = Option.is_some metrics_out in
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun s -> failures := s :: !failures) fmt in
  let results =
    (try
       (* calibration: clean service time measured through the server
          itself with all worker slots busy, so pool contention is
          priced into the sustainable-rate estimate.  The first batch is
          warmup only (allocator/domain spin-up inflates it); the
          estimate is the median of the second batch, which is robust to
          the odd GC-stalled sample in either direction.  An optimistic
          estimate here is what turns the storm leg into a pileup. *)
       let service_s =
         let srv =
           Server.create
             { cfg with Server.queue_capacity = 4 * workers }
             [ ("clean", Server.clean_tenant) ]
         in
         let a = Spd.random_spd ~seed n in
         let run_batch () =
           let tickets =
             List.filter_map
               (fun _ ->
                 Result.to_option
                   (Server.submit srv ~tenant:"clean" (Server.Factor a)))
               (List.init (4 * workers) (fun i -> i))
           in
           List.filter_map
             (fun tk ->
               match Server.await srv tk with
               | Server.Completed { service_s; _ } -> Some service_s
               | _ -> None)
             tickets
         in
         ignore (run_batch () : float list);
         let samples = Array.of_list (run_batch ()) in
         Array.sort Float.compare samples;
         Server.shutdown srv ~drain:true;
         if Array.length samples = 0 then
           exit_err "calibration produced no completed requests";
         Float.max 1e-6 samples.(Array.length samples / 2)
       in
       let sustainable = float_of_int workers /. service_s in
       Format.printf
         "calibration: service %.2f ms => sustainable %.1f req/s (%d \
          worker(s))@."
         (1000. *. service_s) sustainable workers;
       let sweep =
         List.map
           (fun m ->
             let rate = m *. sustainable in
             let r =
               run_leg
                 ~leg:(Printf.sprintf "load-%.2gx" m)
                 ~offered_rps:rate ~cfg
                 ~tenants:[ ("clean", Server.clean_tenant) ]
                 ~matrix_order:n ~traced ~verbose
                 (schedule ~deadline ~rate ~count:requests ~tenant:"clean" ())
             in
             (Some m, r))
           loads
       in
       let storm_legs =
         if no_storm then []
         else begin
           (* clean traffic well under the sustainable rate, with and
              without a storming tenant competing for the slots.  Double
              the sample count here: with few samples the p99 collapses
              to the single worst wait, which makes the isolation ratio
              a coin flip on scheduler/GC noise. *)
           let clean_rate = 0.25 *. sustainable in
           let clean_count = 2 * requests in
           let clean_sched =
             schedule ~deadline ~rate:clean_rate ~count:clean_count
               ~tenant:"clean" ()
           in
           let baseline =
             run_leg ~leg:"storm-base" ~offered_rps:clean_rate ~cfg
               ~tenants:[ ("clean", Server.clean_tenant) ]
               ~matrix_order:n ~traced ~verbose clean_sched
           in
           (* storm requests carry a deadline bounding how long one can
              occupy a slot; a storm run that blows it is cancelled at
              the next iteration boundary (and repeated blowups trip
              the tenant's breaker) *)
           let storm_deadline =
             let cap = 1.5 *. service_s in
             if deadline > 0. then Float.min deadline cap else cap
           in
           let storm_sched =
             schedule ~deadline:storm_deadline ~rate:(0.35 *. sustainable)
               ~count:clean_count ~tenant:"storm" ()
           in
           let mixed =
             run_leg ~leg:"storm"
               ~offered_rps:(clean_rate +. (0.35 *. sustainable))
               ~cfg
               ~tenants:
                 (* 7:1 weights: with the default queue the storm
                    tenant's quota is a single outstanding request, so
                    it can never hold more than one worker slot *)
                 [
                   ("clean", { Server.clean_tenant with Server.weight = 7 });
                   ("storm", storm_policy ~storm_faults ~block);
                 ]
               ~matrix_order:n ~traced ~verbose
               (merge_arrivals clean_sched storm_sched)
           in
           (* isolation: the storming tenant must not blow up clean
              tail latency.  The denominator is floored at one
              contended service time: with the clean tenant far below
              saturation its baseline p99 can land under a single
              service time out of scheduling luck, and the guarantee
              is about queueing inflation, not about beating a lucky
              baseline sample. *)
           if baseline.clean_p99_s > 0. && mixed.clean_p99_s > 0. then begin
             let floor_s = Float.max baseline.clean_p99_s service_s in
             let ratio = mixed.clean_p99_s /. floor_s in
             Format.printf
               "isolation: clean p99 %.2f ms under storm vs %.2f ms \
                baseline (floor %.2f ms; x%.2f, bound x%.2f)@."
               (1000. *. mixed.clean_p99_s)
               (1000. *. baseline.clean_p99_s)
               (1000. *. floor_s) ratio p99_factor;
             if ratio > p99_factor then
               fail
                 "clean-tenant p99 degraded x%.2f under storm (bound x%.2f)"
                 ratio p99_factor
           end
           else fail "storm legs completed too few clean requests for a p99";
           [ (None, baseline); (None, mixed) ]
         end
       in
       sweep @ storm_legs
     with e ->
       Format.eprintf "ftserve: infrastructure failure: %s@."
         (Printexc.to_string e);
       exit 2)
    [@abft.waive
      "load-test harness boundary: every unexpected exception must become \
       exit code 2, never a crash the CI job can't classify"]
  in
  Format.printf
    "%-14s %8s %8s %5s %5s %5s %5s %5s %5s %5s %5s %8s %8s@." "leg" "offer"
    "ach" "acc" "ovl" "quo" "brk" "done" "ddl" "cxl" "fail" "p50ms" "p99ms";
  List.iter (fun (_, r) -> Format.printf "%a@." pp_leg r) results;
  (* contract checks over the sweep *)
  List.iter
    (fun (mult, r) ->
      if r.corruptions > 0 then
        fail "%s: %d silent corruption(s)" r.leg r.corruptions;
      match mult with
      | Some m when m >= 1.5 ->
          (* past saturation the server must shed load explicitly: with
             a bounded queue, either every request fit (it genuinely
             kept up — calibration was pessimistic) or some were turned
             away with Overloaded; anything else means silent loss *)
          if r.rejected_overloaded = 0 && r.accepted < requests then
            fail
              "%s: %d of %d requests neither accepted nor rejected with \
               Overloaded at %.2gx offered load"
              r.leg (requests - r.accepted) requests m
      | _ -> ())
    results;
  (match metrics_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Obs.metrics_json
           (List.map
              (fun (_, r) ->
                {
                  Obs.experiment = "ftserve";
                  name = r.leg;
                  size = n;
                  metrics = leg_metrics r;
                })
              results));
      close_out oc;
      Format.printf "metrics written to %s@." path);
  match !failures with
  | [] ->
      Format.printf "ftserve: all assertions held@.";
      0
  | fs ->
      List.iter (fun f -> Format.eprintf "ftserve: ASSERTION FAILED: %s@." f)
        (List.rev fs);
      2

let () =
  let term =
    Term.(
      const serve $ n_arg $ block_arg $ workers_arg $ pool_domains_arg
      $ queue_arg $ requests_arg $ loads_arg $ deadline_arg $ no_storm_arg
      $ storm_faults_arg $ p99_factor_arg $ seed_arg $ metrics_out_arg
      $ verbose_arg)
  in
  let doc =
    "offered-load and fault-storm load tests for the Cholesky serving layer"
  in
  exit (Cmd.eval' (Cmd.v (Cmd.info "ftserve" ~doc) term))
