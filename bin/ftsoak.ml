(* ftsoak — seeded randomized multi-fault soak harness.

   Enumerates campaigns (family × scheme × grid × pool size), generates
   a deterministic per-case fault plan via Campaign.plan, runs each
   through the numeric Ft.factor recovery ladder (device-storm
   campaigns additionally run a timing-mode leg against an unreliable
   machine; solver-storm campaigns run the fault-tolerant PCG harness
   instead of a factorization), and reports an outcome histogram with
   per-rung, per-device and per-solver-rung statistics.

   Exit-code contract (documented in EXPERIMENTS.md, relied on by CI):
     0 — every campaign completed without silent corruption
     1 — usage error (bad arguments / empty case matrix)
     2 — infrastructure failure (unexpected exception while running), or
         — with --balance adaptive — the adaptive policy's summed
         device-storm makespan exceeded the static split's by more than
         the tolerance band
     3 — at least one campaign ended in SILENT CORRUPTION
   A structured give-up (ladder exhausted, or the resilient scheduler's
   CPU of last resort failed) is a *reported outcome*, not an exit
   condition: the acceptance property is "correct factor or structured
   give-up, never silence". *)

open Cmdliner
module C = Cholesky

let exit_err msg =
  Format.eprintf "ftsoak: %s@." msg;
  exit 1

(* ------------------------------------------------------------------ *)
(* Argument converters                                                 *)
(* ------------------------------------------------------------------ *)

let scheme_conv =
  let parse s =
    match Abft.Scheme.of_string s with Ok s -> Ok s | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Abft.Scheme.pp)

let family_conv =
  let parse s =
    match Campaign.family_of_string s with
    | Ok f -> Ok f
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt f -> Format.pp_print_string fmt (Campaign.family_name f))

(* ------------------------------------------------------------------ *)
(* Arguments                                                           *)
(* ------------------------------------------------------------------ *)

let campaigns_arg =
  Arg.(
    value & opt int 100
    & info [ "campaigns" ] ~docv:"N"
        ~doc:"Total number of campaigns to run (spread round-robin over the \
              case matrix).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed.")

let machine_arg =
  Machine_cli.machine_arg
    ~doc:
      "Machine preset used for the driver config (and the Young/Daly \
       snapshot interval when $(b,--snapshot-interval) is -1)."
    ()

let schemes_arg =
  Arg.(
    value
    & opt (list scheme_conv) [ Abft.Scheme.Online; Abft.Scheme.enhanced () ]
    & info [ "schemes" ] ~docv:"S,.."
        ~doc:"Comma-separated schemes to soak (families containing storage \
              faults only pair with enhanced).")

let grids_arg =
  Arg.(
    value
    & opt (list int) [ 4; 6 ]
    & info [ "grids" ] ~docv:"G,.." ~doc:"Tile-grid sides to soak.")

let block_arg =
  Arg.(
    value & opt int 8
    & info [ "b"; "block" ] ~docv:"B" ~doc:"Tile size for every campaign.")

let pools_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2 ]
    & info [ "pools" ] ~docv:"P,.."
        ~doc:"Domain-pool sizes; each distinct size is created once and \
              reused.")

let faults_arg =
  Arg.(
    value & opt int 3
    & info [ "faults" ] ~docv:"COUNT"
        ~doc:"Injections per campaign for the randomized families (burst is \
              always 2).")

let families_arg =
  Arg.(
    value
    & opt (list family_conv) Campaign.all_families
    & info [ "families" ] ~docv:"F,.."
        ~doc:"Fault families to soak: mixed, burst, storage-heavy, \
              compute-heavy, checksum-storm, anchor, device-storm, \
              solver-storm.")

let snapshot_arg =
  Arg.(
    value & opt int 2
    & info [ "snapshot-interval" ] ~docv:"ITERS"
        ~doc:"Iterations between verified snapshots (0 disables the rollback \
              rung; -1 picks the Young/Daly interval per grid).")

let max_rollbacks_arg =
  Arg.(
    value & opt int 2
    & info [ "max-rollbacks" ] ~docv:"N"
        ~doc:"Snapshot rollbacks per attempt before escalating to restart.")

let max_restarts_arg =
  Arg.(
    value & opt int 3
    & info [ "max-restarts" ] ~docv:"N"
        ~doc:"Full restarts before the ladder gives up.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the full per-campaign JSON report to $(docv).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Trace every campaign and write the merged Chrome Trace-Event \
              JSON (loadable in Perfetto / about:tracing) to $(docv).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Trace every campaign and write per-campaign observability \
              metrics (bench-convention JSON, one record per campaign) to \
              $(docv).")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose" ] ~doc:"Print a line per campaign as it runs.")

let balance_arg = Machine_cli.balance_arg

(* The adaptive-vs-static acceptance band for the balanced device-storm
   leg. Fault draws diverge between the two schedules once the splits
   differ, so individual campaigns are noisy; the band is judged on the
   summed makespans over the whole soak, where the storm statistics
   have averaged out. *)
let balance_tolerance = 0.10

(* ------------------------------------------------------------------ *)
(* Case enumeration and execution                                      *)
(* ------------------------------------------------------------------ *)

(* The acceptance property is about the *ladder*, not about scheme
   limitations the paper already documents: Online-ABFT inherently
   misses storage errors (its motivating failure), so storage-bearing
   families pair only with Enhanced-style schemes. *)
let compatible family scheme =
  if not (Campaign.needs_enhanced family) then true
  else match scheme with Abft.Scheme.Enhanced _ -> true | _ -> false

let enumerate ~campaigns ~seed ~families ~schemes ~grids ~pools ~block ~faults =
  let cells =
    List.concat_map
      (fun family ->
        List.concat_map
          (fun scheme ->
            if not (compatible family scheme) then []
            else
              List.concat_map
                (fun grid ->
                  (* the burst pattern needs grid >= 4 *)
                  if family = Campaign.Burst && grid < 4 then []
                  else
                    List.map (fun domains -> (family, scheme, grid, domains))
                      pools)
                grids)
          schemes)
      families
  in
  if cells = [] then exit_err "no (family, scheme, grid, pool) cases selected";
  let cells = Array.of_list cells in
  List.init campaigns (fun id ->
      let family, scheme, grid, domains = cells.(id mod Array.length cells) in
      (* derived per-case seed: distinct per id, reproducible from the
         master seed alone *)
      let case_seed = seed + (7919 * id) in
      let plan =
        Campaign.plan family ~seed:case_seed ~grid ~block ~count:faults
      in
      {
        Campaign.id;
        family;
        scheme = Abft.Scheme.name scheme;
        grid;
        block;
        domains;
        seed = case_seed;
        plan;
      },
      scheme)

(* Device-storm campaigns run a second, timing-mode leg: the same plan
   and per-case seed against the full Cholesky schedule on a machine
   whose GPU carries a seeded reliability profile. The numeric leg
   certifies the ABFT ladder heals the corrupted-transfer bits; this
   leg certifies the resilient scheduling layer (deadline hang
   detection, backoff retry, quarantine, CPU-fallback degradation)
   against the identical fault mix. Every 13th case makes the GPU drop
   out permanently mid-schedule. *)
let device_storm_leg ~machine ~scheme ~balance ~obs (case : Campaign.case) =
  let dropout = case.Campaign.id mod 13 = 0 in
  let profile =
    Campaign.device_profile ~seed:case.Campaign.seed ~dropout
  in
  let m = Hetsim.Machine.with_reliability ~gpu:profile machine in
  let n = case.Campaign.grid * case.Campaign.block in
  (* when balancing is on, quarantined GPUs also get the half-open
     re-probe so rejoin/re-split paths are exercised under the storm *)
  let policy =
    match balance with
    | None -> Hetsim.Resilient.default_policy
    | Some _ ->
        { Hetsim.Resilient.default_policy with
          Hetsim.Resilient.reprobe_after_s = 0.05 }
  in
  let attempt ?balance () =
    let cfg =
      C.Config.make ~machine:m ~block:case.Campaign.block ~scheme ?balance ()
    in
    match
      C.Schedule.run ~plan:case.Campaign.plan ~policy
        ~fault_seed:case.Campaign.seed ~obs cfg ~n
    with
    | r ->
        ( Campaign.device_counts_of_stats r.C.Schedule.resilience,
          None,
          Some r.C.Schedule.makespan )
    | exception
        Hetsim.Resilient.Gave_up { resource; failure; attempts; stats } ->
        (* the run died, but everything the driver counted up to that
           point still happened — dropping it to zero_device made the
           aggregate drift away from the sum of its campaigns *)
        ( Campaign.device_counts_of_stats stats,
          Some
            (Printf.sprintf "device: %s on %s after %d attempts"
               (Hetsim.Engine.failure_name failure)
               (Hetsim.Engine.resource_name resource)
               attempts),
          None )
  in
  match balance with
  | None ->
      let counts, gave_up, _ = attempt () in
      (counts, gave_up, None)
  | Some Hetsim.Load_balancer.Static ->
      let counts, gave_up, _ =
        attempt ~balance:Hetsim.Load_balancer.Static ()
      in
      (counts, gave_up, None)
  | Some Hetsim.Load_balancer.Adaptive ->
      (* the acceptance comparison: the same storm scheduled with the
         frozen split vs. the adaptive one *)
      let counts, gave_up, adaptive_ms =
        attempt ~balance:Hetsim.Load_balancer.Adaptive ()
      in
      let _, _, static_ms = attempt ~balance:Hetsim.Load_balancer.Static () in
      let cmp =
        match (adaptive_ms, static_ms) with
        | Some a, Some s -> Some (a, s)
        | _ -> None (* a leg gave up: nothing comparable this campaign *)
      in
      (counts, gave_up, cmp)
  [@abft.waive
    "the abandonment is accounted by value, not by a counter: the Some \
     failure line is returned to the harness, which records it in the \
     campaign report"]

(* Solver-storm campaigns run the fault-tolerant PCG harness instead
   of a factorization: a block-Jacobi incomplete-Cholesky preconditioner
   (inexact, so the solver actually iterates) over a pristine SPD
   system, with the case's In_solver plan firing against the live
   x/r/p vectors and the preconditioner factor.

   The verification/checkpoint cadence is varied by case id so every
   recovery rung stays reachable across the soak: a third of the cases
   run without checkpoints, forcing detections past the backward rung
   into a full restart; the rest keep checkpoints so rollback wins
   when the iterate is implausible while forward reconstruction wins
   when it is still good.

   Classification never trusts the solver's own verdict: the true
   residual is recomputed here against the pristine inputs, so a
   "converged" report whose iterate does not actually solve the system
   is recorded as SILENT CORRUPTION. *)
let solver_leg ~obs (case : Campaign.case) =
  let n = case.Campaign.grid * case.Campaign.block in
  let a = Matrix.Spd.random_spd ~seed:(case.Campaign.seed + 1) n in
  let b = Array.init n (fun i -> 1. +. (float_of_int (i mod 7) /. 7.)) in
  let precond = Solvers.Cg.block_jacobi ~block:case.Campaign.block a in
  let verify_interval, checkpoint_interval =
    match case.Campaign.id mod 3 with
    | 0 -> (2, 0) (* no checkpoints: the backward rung escalates *)
    | 1 -> (2, 2)
    | _ -> (4, 4)
  in
  let cfg =
    Solvers.Cg.config ~rtol:1e-9 ~verify_interval ~checkpoint_interval
      ~max_rollbacks:2 ~max_restarts:3 ()
  in
  let r = Solvers.Cg.solve ~obs ~plan:case.Campaign.plan ~precond cfg a b in
  let true_resid =
    let rt = Array.copy b in
    Matrix.Blas2.gemv ~alpha:(-1.) ~beta:1. a r.Solvers.Cg.x rt;
    Matrix.Vec.nrm2 rt /. Matrix.Vec.nrm2 b
  in
  let outcome =
    match r.Solvers.Cg.outcome with
    | Solvers.Cg.Converged ->
        if Float.is_finite true_resid && true_resid <= 1e-6 then
          Campaign.Success
        else Campaign.Silent_corruption
    | Solvers.Cg.Gave_up reason ->
        Campaign.Gave_up
          (Format.asprintf "solver: %a" Solvers.Cg.pp_reason reason)
  in
  let st = r.Solvers.Cg.stats in
  {
    Campaign.case;
    outcome;
    residual = true_resid;
    verifications = 0;
    corrections = 0;
    reconstructions = 0;
    checksum_repairs = 0;
    rollbacks = 0;
    snapshots = 0;
    restarts = 0;
    fired = List.length r.Solvers.Cg.injections_fired;
    device = Campaign.zero_device;
    solver =
      {
        Campaign.iterations_s = st.Solvers.Cg.iterations;
        verifications_s = st.Solvers.Cg.verifications;
        detections_s = st.Solvers.Cg.detections;
        reconstructions_s = st.Solvers.Cg.reconstructions;
        rollbacks_s = st.Solvers.Cg.rollbacks;
        restarts_s = st.Solvers.Cg.restarts;
        precond_repairs_s = st.Solvers.Cg.precond_repairs;
      };
    obs_metrics = [];
  }

let factor_leg ~machine ~pool ~snapshot_interval ~max_rollbacks ~max_restarts
    ~balance ~obs (case, scheme) =
  let n = case.Campaign.grid * case.Campaign.block in
  let snap =
    if snapshot_interval >= 0 then snapshot_interval
    else
      C.Checkpoint.snapshot_interval_iters machine ~n ~grid:case.Campaign.grid
        ~expected_faults:(float_of_int (List.length case.Campaign.plan))
  in
  let cfg =
    C.Config.make ~machine ~block:case.Campaign.block ~scheme ~max_restarts
      ~max_rollbacks ~snapshot_interval:snap ()
  in
  let a = Matrix.Spd.random_spd ~seed:(case.Campaign.seed + 1) n in
  let report = C.Ft.factor ~pool ~obs ~plan:case.Campaign.plan cfg a in
  let st = report.C.Ft.stats in
  let device, device_gave_up, balance_cmp =
    match case.Campaign.family with
    | Campaign.Device_storm ->
        device_storm_leg ~machine ~scheme ~balance ~obs case
    | Campaign.Mixed | Campaign.Burst | Campaign.Storage_heavy
    | Campaign.Compute_heavy | Campaign.Checksum_storm | Campaign.Anchor
    | Campaign.Solver_storm ->
        (* solver-storm cases never reach this leg *)
        (Campaign.zero_device, None, None)
  in
  let outcome =
    match (report.C.Ft.outcome, device_gave_up) with
    | C.Ft.Silent_corruption, _ -> Campaign.Silent_corruption
    | C.Ft.Gave_up reason, _ -> Campaign.Gave_up (C.Recovery.describe reason)
    | C.Ft.Success, Some why -> Campaign.Gave_up why
    | C.Ft.Success, None -> Campaign.Success
  in
  ( {
      Campaign.case;
      outcome;
      residual = report.C.Ft.residual;
      verifications = st.C.Ft.verifications;
      corrections = st.C.Ft.corrections;
      reconstructions = st.C.Ft.reconstructions;
      checksum_repairs = st.C.Ft.checksum_repairs;
      rollbacks = st.C.Ft.rollbacks;
      snapshots = st.C.Ft.snapshots;
      restarts = st.C.Ft.restarts;
      fired = List.length report.C.Ft.injections_fired;
      device;
      solver = Campaign.zero_solver;
      obs_metrics = [];
    },
    balance_cmp )

(* Each traced campaign gets its own sink, so per-campaign totals are
   exact; the spans (absolute monotonic timestamps) are returned for
   the harness to merge into one whole-soak trace. *)
let run_case ~machine ~pool ~snapshot_interval ~max_rollbacks ~max_restarts
    ~balance ~traced ((case, _) as c) =
  let obs = if traced then Obs.create () else Obs.null in
  let result, balance_cmp =
    match case.Campaign.family with
    | Campaign.Solver_storm -> (solver_leg ~obs case, None)
    | Campaign.Mixed | Campaign.Burst | Campaign.Storage_heavy
    | Campaign.Compute_heavy | Campaign.Checksum_storm | Campaign.Anchor
    | Campaign.Device_storm ->
        factor_leg ~machine ~pool ~snapshot_interval ~max_rollbacks
          ~max_restarts ~balance ~obs c
  in
  ( {
      result with
      Campaign.obs_metrics = (if traced then Obs.metric_list obs else []);
    },
    balance_cmp,
    if traced then Obs.spans obs else [] )

let soak campaigns seed machine schemes grids block pools faults families
    snapshot_interval max_rollbacks max_restarts balance json trace_out
    metrics_out verbose =
  let traced = trace_out <> None || metrics_out <> None in
  if campaigns < 1 then exit_err "--campaigns must be >= 1";
  if block < 2 then exit_err "--block must be >= 2";
  if List.exists (fun g -> g < 2) grids then exit_err "--grids must all be >= 2";
  if List.exists (fun p -> p < 1) pools then exit_err "--pools must all be >= 1";
  let cases =
    try
      enumerate ~campaigns ~seed ~families ~schemes ~grids ~pools ~block ~faults
    with Invalid_argument msg -> exit_err msg
  in
  let distinct_pools = List.sort_uniq Int.compare pools in
  let pool_for =
    let pairs =
      List.map
        (fun d -> (d, Parallel.Pool.create ~domains:d ()))
        distinct_pools
    in
    fun d -> List.assoc d pairs
  in
  let all_spans = ref [] in
  let balance_sums = ref (0., 0., 0) in
  let results =
    (try
       List.map
         (fun ((case, _) as c) ->
           let r, balance_cmp, spans =
             run_case ~machine
               ~pool:(pool_for case.Campaign.domains)
               ~snapshot_interval ~max_rollbacks ~max_restarts ~balance
               ~traced c
           in
           (match balance_cmp with
           | None -> ()
           | Some (adaptive_ms, static_ms) ->
               let a, s, k = !balance_sums in
               balance_sums := (a +. adaptive_ms, s +. static_ms, k + 1));
           all_spans := spans :: !all_spans;
           if verbose then
             Format.printf "%4d %-40s %-17s resid %.2e@." case.Campaign.id
               (Campaign.case_name case)
               (match r.Campaign.outcome with
               | Campaign.Gave_up why -> "gave-up: " ^ why
               | o -> Campaign.outcome_name o)
               r.Campaign.residual;
           r)
         cases
     with e ->
       (* harness boundary: anything unexpected is an infrastructure
          failure, distinguished from silent corruption by exit code *)
       List.iter (fun d -> Parallel.Pool.shutdown (pool_for d)) distinct_pools;
       Format.eprintf "ftsoak: infrastructure failure: %s@."
         (Printexc.to_string e);
       exit 2)
    [@abft.waive
      "soak harness boundary: every unexpected exception must become exit \
       code 2, never a crash the CI job can't classify"]
  in
  List.iter (fun d -> Parallel.Pool.shutdown (pool_for d)) distinct_pools;
  let agg = Campaign.aggregate results in
  Format.printf "%a@." Campaign.pp_aggregate agg;
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Campaign.to_json ~seed results);
      close_out oc;
      Format.printf "json report written to %s@." path);
  (match trace_out with
  | None -> ()
  | Some path ->
      (* per-campaign sinks share the one monotonic clock, so the
         concatenation (campaigns ran sequentially) is already a
         globally ordered span stream *)
      let oc = open_out path in
      output_string oc
        (Obs.chrome_trace_of_spans (List.concat (List.rev !all_spans)));
      close_out oc;
      Format.printf "chrome trace written to %s@." path);
  (match metrics_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Obs.metrics_json
           (List.map
              (fun (r : Campaign.run_result) ->
                {
                  Obs.experiment = "ftsoak";
                  name = Campaign.case_name r.Campaign.case;
                  size = r.Campaign.case.Campaign.grid * r.Campaign.case.Campaign.block;
                  metrics = r.Campaign.obs_metrics;
                })
              results));
      close_out oc;
      Format.printf "metrics written to %s@." path);
  let balance_violation =
    let a, s, k = !balance_sums in
    if k = 0 then None
    else begin
      Format.printf
        "balanced device-storm: %d compared campaign(s), adaptive %.4fs vs \
         static %.4fs (%+.1f%%)@."
        k a s
        (100. *. ((a /. s) -. 1.));
      if a > s *. (1. +. balance_tolerance) then Some (a, s) else None
    end
  in
  if agg.Campaign.silent_corruptions > 0 then begin
    Format.eprintf "ftsoak: %d campaign(s) ended in SILENT CORRUPTION@."
      agg.Campaign.silent_corruptions;
    3
  end
  else
    match balance_violation with
    | Some (a, s) ->
        (* a harness-level acceptance failure, not a numeric one: the
           adaptive policy made the storm slower than the frozen split
           beyond the tolerance band *)
        Format.eprintf
          "ftsoak: adaptive balancing exceeded the static makespan band: \
           %.4fs > %.4fs * %.2f@."
          a s
          (1. +. balance_tolerance);
        2
    | None -> 0

let () =
  let term =
    Term.(
      const soak $ campaigns_arg $ seed_arg $ machine_arg $ schemes_arg
      $ grids_arg $ block_arg $ pools_arg $ faults_arg $ families_arg
      $ snapshot_arg $ max_rollbacks_arg $ max_restarts_arg $ balance_arg
      $ json_arg $ trace_out_arg $ metrics_out_arg $ verbose_arg)
  in
  let doc =
    "seeded multi-fault soak campaigns through the Cholesky recovery ladder"
  in
  exit (Cmd.eval' (Cmd.v (Cmd.info "ftsoak" ~doc) term))
