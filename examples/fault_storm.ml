(* Fault-storm stress demo: a barrage of random computing and storage
   errors against one factorization, with the full audit trail. Run:

     dune exec examples/fault_storm.exe -- [count] [seed]
*)

open Matrix

let () =
  let count =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8
  in
  let seed = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 7 in
  let block = 16 and grid = 10 in
  let n = block * grid in
  Format.printf "Fault storm: %d faults against a %dx%d factorization (%dx%d tiles)@.@."
    count n n grid grid;

  (* Survivable storm: skip the POTF2 computing window (detected but
     only recoverable by recomputation) and storage flips past a
     block's last read (invisible to pre-read verification). *)
  let plan =
    Fault.random_plan ~seed ~grid ~block ~count:(count * 2) ~storage_fraction:0.5 ()
    |> List.filter (fun (inj : Fault.injection) ->
           match inj.Fault.window with
           | Fault.In_computation Fault.Potf2 -> false
           | Fault.In_computation _ -> true
           | Fault.In_storage | Fault.In_device ->
               inj.Fault.iteration <= fst inj.Fault.block
           | Fault.In_checksum | Fault.In_update _ ->
               true (* the self-protecting store heals these *)
           | Fault.In_solver _ -> false)
    |> List.filteri (fun i _ -> i < count)
  in
  Format.printf "plan:@.%a@.@." Fault.pp plan;

  let a = Spd.random_spd ~seed:(seed + 1) n in
  let cfg =
    Cholesky.Config.make ~machine:Hetsim.Machine.testbench ~block
      ~scheme:(Abft.Scheme.enhanced ()) ()
  in
  let report = Cholesky.Ft.factor ~plan cfg a in
  Format.printf "%a@.@." Cholesky.Ft.pp_report report;
  Format.printf "audit log:@.";
  List.iter
    (fun fired -> Format.printf "  %a@." Injector.pp_fired fired)
    report.Cholesky.Ft.injections_fired;
  let l = report.Cholesky.Ft.factor in
  let recon = Blas3.gemm_alloc ~transb:Types.Trans l l in
  Format.printf "@.final reconstruction error: %.3e@."
    (Mat.norm_fro (Mat.sub_mat recon a) /. Mat.norm_fro a)
