(* Gaussian-process regression on the fault-tolerant Cholesky — the
   kernel-matrix factorization dominates GP training, and it is exactly
   the SPD solve the paper targets. Fits a noisy sinusoid, predicts,
   and shows the fit is unchanged when a storage error strikes the
   kernel factorization. Run:

     dune exec examples/gp_regression.exe
*)

open Matrix

let () =
  let n = 60 in
  Format.printf "GP regression: %d noisy samples of sin(x)@.@." n;
  let st = Random.State.make [| 31 |] in
  let x = Vec.init n (fun i -> float_of_int i /. 5.) in
  let y =
    Array.map (fun xi -> sin xi +. (0.05 *. Workloads.Util.gaussian st)) x
  in

  let cfg =
    Cholesky.Config.make ~machine:Hetsim.Machine.testbench
      ~block:(Workloads.Util.pick_block ~target:16 n)
      ()
  in
  let clean = Workloads.Gp.fit ~cfg ~noise:0.05 ~x ~y () in
  let plan =
    [ Fault.storage_error ~bit:52 ~iteration:1 ~block:(2, 0) ~element:(3, 3) () ]
  in
  let faulty = Workloads.Gp.fit ~cfg ~plan ~noise:0.05 ~x ~y () in

  Format.printf "log marginal likelihood: clean %.4f, faulty %.4f@."
    (Workloads.Gp.log_marginal_likelihood clean)
    (Workloads.Gp.log_marginal_likelihood faulty);
  Format.printf "ABFT corrections absorbed: %d@.@."
    (Workloads.Gp.factorization faulty).Cholesky.Ft.stats.Cholesky.Ft.corrections;

  let test_x = Vec.init 9 (fun i -> 0.7 +. (float_of_int i *. 1.4)) in
  let mc, vc = Workloads.Gp.predict clean test_x in
  let mf, _ = Workloads.Gp.predict faulty test_x in
  Format.printf "%8s %10s %10s %10s %10s@." "x" "truth" "clean" "faulty"
    "stddev";
  Array.iteri
    (fun i xi ->
      Format.printf "%8.2f %10.4f %10.4f %10.4f %10.4f@." xi (sin xi) mc.(i)
        mf.(i)
        (sqrt vc.(i)))
    test_x;
  Format.printf "@.predictions identical: %b@."
    (Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-12) mc mf)
