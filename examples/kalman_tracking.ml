(* Kalman-filter target tracking whose innovation-covariance solve runs
   on the fault-tolerant Cholesky — the paper's "Kalman filters"
   motivation. A storage error strikes the factorization mid-flight;
   the filtered track is unaffected. Run:

     dune exec examples/kalman_tracking.exe
*)

let () =
  let dim = 12 and steps = 60 in
  Format.printf
    "Kalman tracking: constant-velocity target, %d spatial dims, %d steps@.@."
    dim steps;
  let model = Workloads.Kalman.constant_velocity ~dim () in
  let cfg =
    Cholesky.Config.make ~machine:Hetsim.Machine.testbench
      ~block:(Workloads.Util.pick_block ~target:4 dim)
      ()
  in

  let clean = Workloads.Kalman.run model ~cfg ~steps in
  Format.printf "clean run:  position RMSE %.4f over %d factorizations@."
    clean.Workloads.Kalman.rmse clean.Workloads.Kalman.factorizations;

  let plan =
    [ Fault.storage_error ~bit:52 ~iteration:1 ~block:(2, 2) ~element:(0, 0) () ]
  in
  let faulty = Workloads.Kalman.run model ~cfg ~plan_at:(30, plan) ~steps in
  Format.printf
    "faulty run: position RMSE %.4f (%d ABFT corrections absorbed at step 30)@."
    faulty.Workloads.Kalman.rmse faulty.Workloads.Kalman.corrections;

  let identical =
    List.for_all2
      (fun a b -> Matrix.Mat.approx_equal ~tol:1e-12 a b)
      clean.Workloads.Kalman.estimates faulty.Workloads.Kalman.estimates
  in
  Format.printf "@.tracks identical: %b@." identical
