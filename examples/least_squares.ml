(* Linear least squares through the fault-tolerant normal equations —
   the paper's first motivating application. Fits a synthetic
   regression, once cleanly and once with a fault storm injected into
   the Gram-matrix factorization, and shows the coefficients agree. Run:

     dune exec examples/least_squares.exe
*)

open Matrix

let () =
  let rows = 600 and cols = 48 in
  Format.printf "Least squares: %d observations, %d features@.@." rows cols;
  let a, b, x_true = Workloads.Lstsq.synthetic_problem ~rows ~cols () in

  let clean = Workloads.Lstsq.solve ~a ~b () in
  Format.printf "clean solve:   residual |Ax - b| = %.4e@."
    clean.Workloads.Lstsq.residual_norm;

  (* Storage + computing errors during the 48x48 Gram factorization. *)
  let block = Workloads.Util.pick_block ~target:12 cols in
  let cfg = Cholesky.Config.make ~machine:Hetsim.Machine.testbench ~block () in
  let plan =
    [
      Fault.storage_error ~bit:52 ~iteration:2 ~block:(3, 0) ~element:(1, 1) ();
      Fault.computing_error ~delta:1e4 ~iteration:1 ~op:Fault.Gemm ~block:(2, 1)
        ~element:(0, 0) ();
    ]
  in
  let faulty = Workloads.Lstsq.solve ~cfg ~plan ~a ~b () in
  let stats = faulty.Workloads.Lstsq.factorization.Cholesky.Ft.stats in
  Format.printf
    "faulty solve:  residual |Ax - b| = %.4e  (%d faults injected, %d \
     elements corrected, %d restarts)@."
    faulty.Workloads.Lstsq.residual_norm
    (List.length faulty.Workloads.Lstsq.factorization.Cholesky.Ft.injections_fired)
    stats.Cholesky.Ft.corrections stats.Cholesky.Ft.restarts;

  let drift =
    Mat.norm_fro (Mat.sub_mat clean.Workloads.Lstsq.x faulty.Workloads.Lstsq.x)
  in
  Format.printf "coefficient drift between the two solves: %.3e@." drift;
  Format.printf "error vs ground truth (clean):  %.3e@."
    (Mat.norm_fro (Mat.sub_mat clean.Workloads.Lstsq.x x_true));
  Format.printf "error vs ground truth (faulty): %.3e@."
    (Mat.norm_fro (Mat.sub_mat faulty.Workloads.Lstsq.x x_true));
  if drift < 1e-9 then
    Format.printf "@.ABFT absorbed both faults: the fits are identical.@."
