(* Fault-tolerant LU decomposition (the repository's extension of the
   paper's Enhanced scheme to a two-sided factorization): factor a
   diagonally dominant matrix while storage errors strike both an L and
   a U panel tile, then solve a linear system with the repaired
   factors. Run:

     dune exec examples/lu_decomposition.exe
*)

open Matrix

let () =
  let n = 128 and block = 16 in
  Format.printf "FT-LU: %dx%d diagonally dominant matrix, %dx%d tiles@.@." n n
    block block;
  let a = Lapack.diag_dominant ~seed:11 n in

  let plan =
    [
      (* L(5,1) flips after its iteration-1 factorization, caught by a
         column checksum at its next lazy-update read; *)
      Fault.storage_error ~bit:52 ~iteration:3 ~block:(5, 1) ~element:(4, 4) ();
      (* U(1,6) flips too — located via the ROW checksums that the
         two-sided encoding adds over the Cholesky scheme. *)
      Fault.storage_error ~bit:52 ~iteration:3 ~block:(1, 6) ~element:(2, 9) ();
    ]
  in
  List.iter (fun i -> Format.printf "injecting: %a@." Fault.pp_injection i) plan;

  let r = Ftlu.Ft_lu.factor ~plan ~block a in
  Format.printf "@.%a@.@." Ftlu.Ft_lu.pp_report r;
  List.iter
    (fun f -> Format.printf "fired: %a@." Injector.pp_fired f)
    r.Ftlu.Ft_lu.injections_fired;

  (* Use the repaired factors: solve A x = b. *)
  let x_true = Spd.random ~seed:12 n 1 in
  let b = Blas3.gemm_alloc a x_true in
  let x = Mat.copy b in
  Blas3.trsm Types.Left Types.Lower Types.No_trans Types.Unit_diag
    r.Ftlu.Ft_lu.l x;
  Blas3.trsm Types.Left Types.Upper Types.No_trans Types.Non_unit_diag
    r.Ftlu.Ft_lu.u x;
  Format.printf "@.solve with repaired factors: |x - x_true| = %.3e@."
    (Mat.norm_fro (Mat.sub_mat x x_true))
