(* Correlated Monte-Carlo portfolio simulation — the paper's "Monte
   Carlo simulations" motivation. The Cholesky factor of the return
   covariance drives every sample, so a single silently corrupted
   factor element skews the whole risk estimate. This demo compares:
   a clean run, a run where ABFT absorbs an injected fault, and the
   damage an *unprotected* run would have shipped. Run:

     dune exec examples/monte_carlo.exe
*)

open Matrix

let print_est name (est : Workloads.Montecarlo.estimate) =
  Format.printf "%-24s mean %+.5f  stddev %.5f  VaR(95%%) %.5f@." name
    est.Workloads.Montecarlo.mean est.Workloads.Montecarlo.stddev
    est.Workloads.Montecarlo.var_95

let () =
  let assets = 48 and samples = 20000 in
  Format.printf "Monte-Carlo portfolio risk: %d assets, %d samples@.@." assets
    samples;
  let cov = Workloads.Montecarlo.correlated_returns_cov ~assets () in
  let weights = Vec.init assets (fun _ -> 1. /. float_of_int assets) in
  let block = Workloads.Util.pick_block ~target:12 assets in

  let clean = Workloads.Montecarlo.simulate ~cov ~weights ~samples () in
  print_est "clean factor:" clean;

  (* The same simulation with a storage error absorbed by Enhanced ABFT. *)
  let cfg = Cholesky.Config.make ~machine:Hetsim.Machine.testbench ~block () in
  let plan =
    [ Fault.storage_error ~bit:62 ~iteration:1 ~block:(1, 1) ~element:(5, 5) () ]
  in
  let protected = Workloads.Montecarlo.simulate ~cfg ~plan ~cov ~weights ~samples () in
  print_est "faulty, ABFT-protected:" protected;

  (* What an unprotected run would have shipped: corrupt the factor the
     same way by hand and re-estimate. *)
  let l = Lapack.cholesky cov in
  let corrupted = Mat.copy l in
  Mat.set corrupted (block + 5) (block + 5)
    (Bitflip.flip (Mat.get corrupted (block + 5) (block + 5)) 62);
  let st = Random.State.make [| 17; samples; assets |] in
  let returns =
    Array.init samples (fun _ ->
        Vec.dot weights (Blas2.gemv_alloc corrupted (Workloads.Util.gaussian_vec st assets)))
  in
  let mean = Array.fold_left ( +. ) 0. returns /. float_of_int samples in
  let var =
    Array.fold_left (fun acc r -> acc +. ((r -. mean) ** 2.)) 0. returns
    /. float_of_int (samples - 1)
  in
  Format.printf "%-24s mean %+.5f  stddev %.5f   <- silent corruption@."
    "unprotected (corrupt L):" mean (sqrt var);
  Format.printf
    "@.ABFT-protected estimates match the clean run exactly; the corrupted \
     factor destroys the risk numbers.@."
