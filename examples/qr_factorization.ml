(* Fault-tolerant QR (blocked modified Gram–Schmidt) — the repository's
   third factorization. Solves a least-squares problem through the
   protected QR while storage errors strike the Q panels, and shows the
   solution is unchanged. Run:

     dune exec examples/qr_factorization.exe
*)

open Matrix

let () =
  let m = 240 and n = 96 in
  Format.printf "FT-QR: %dx%d overdetermined system, 16-column panels@.@." m n;
  let a = Spd.random ~seed:21 m n in
  let x_true = Spd.random ~seed:22 n 1 in
  let b = Blas3.gemm_alloc a x_true in

  let plan =
    [
      Fault.storage_error ~bit:52 ~iteration:3 ~block:(1, 0) ~element:(100, 7) ();
      Fault.computing_error ~delta:80. ~iteration:4 ~op:Fault.Gemm ~block:(4, 2)
        ~element:(50, 3) ();
    ]
  in
  List.iter (fun i -> Format.printf "injecting: %a@." Fault.pp_injection i) plan;

  let r = Ftqr.Ft_qr.factor ~plan ~block:16 a in
  Format.printf "@.%a@.@." Ftqr.Ft_qr.pp_report r;

  (* Least squares through the factors: R x = Q^T b. *)
  let qtb = Blas3.gemm_alloc ~transa:Types.Trans r.Ftqr.Ft_qr.q b in
  Blas3.trsm Types.Left Types.Upper Types.No_trans Types.Non_unit_diag
    r.Ftqr.Ft_qr.r qtb;
  Format.printf "least-squares solution error |x - x_true| = %.3e@."
    (Mat.norm_fro (Mat.sub_mat qtb x_true))
