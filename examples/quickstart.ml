(* Quickstart: factor an SPD matrix with Enhanced Online-ABFT while a
   storage error (a bit flip in a factored, already-verified block)
   strikes mid-run — the exact failure mode the paper's scheme was
   built for. Run with:

     dune exec examples/quickstart.exe
*)

open Matrix

let () =
  let n = 256 and block = 32 in
  Format.printf "Enhanced Online-ABFT quickstart: %dx%d SPD matrix, %dx%d tiles@.@."
    n n block block;
  let a = Spd.random_spd ~seed:42 n in

  (* A storage error: bit 52 of an element of tile (4,1) flips at the
     start of iteration 5 — after that tile was factored and verified,
     before it is next read. Classic Online-ABFT ships a wrong factor
     here; Enhanced verifies the tile immediately before the read. *)
  let flip =
    Fault.storage_error ~bit:52 ~iteration:4 ~block:(6, 1) ~element:(7, 12) ()
  in
  Format.printf "Injecting: %a@.@." Fault.pp_injection flip;

  let cfg =
    Cholesky.Config.make ~machine:Hetsim.Machine.testbench ~block
      ~scheme:(Abft.Scheme.enhanced ()) ()
  in
  let report = Cholesky.Ft.factor ~plan:[ flip ] cfg a in

  Format.printf "%a@.@." Cholesky.Ft.pp_report report;
  List.iter
    (fun fired -> Format.printf "fired: %a@." Injector.pp_fired fired)
    report.Cholesky.Ft.injections_fired;

  (* Prove the factor is right: reconstruct L * L^T. *)
  let l = report.Cholesky.Ft.factor in
  let recon = Blas3.gemm_alloc ~transb:Types.Trans l l in
  Format.printf "@.reconstruction error |LL^T - A|_F / |A|_F = %.3e@."
    (Mat.norm_fro (Mat.sub_mat recon a) /. Mat.norm_fro a);

  (* Contrast: the same fault under classic Online-ABFT. *)
  let online_cfg = { cfg with Cholesky.Config.scheme = Abft.Scheme.Online } in
  let online = Cholesky.Ft.factor ~plan:[ flip ] online_cfg a in
  Format.printf
    "@.same fault under Online-ABFT: %a (restarts: %d) — corrected inline \
     only by Enhanced@."
    Cholesky.Ft.pp_outcome online.Cholesky.Ft.outcome
    online.Cholesky.Ft.stats.Cholesky.Ft.restarts
