(* Timing-mode demo: simulate the paper's two testbeds at paper scale
   and print the per-phase time decomposition for each scheme —
   a compact preview of what bench/main.exe reproduces in full. Run:

     dune exec examples/simulate_testbeds.exe
*)

module C = Cholesky

let schemes =
  [
    ("MAGMA (no FT)", Abft.Scheme.No_ft);
    ("Offline-ABFT", Abft.Scheme.Offline);
    ("Online-ABFT", Abft.Scheme.Online);
    ("Enhanced k=1", Abft.Scheme.enhanced ());
    ("Enhanced k=3", Abft.Scheme.enhanced ~k:3 ());
  ]

let () =
  List.iter
    (fun (machine, n) ->
      Format.printf "@.=== %s, n = %d (B = %d) ===@." machine.Hetsim.Machine.name
        n machine.Hetsim.Machine.default_block;
      Format.printf "%a@.@." Hetsim.Machine.pp machine;
      let base = ref 0. in
      List.iter
        (fun (name, scheme) ->
          let cfg = C.Config.make ~machine ~scheme () in
          let r = C.Schedule.run cfg ~n in
          if scheme = Abft.Scheme.No_ft then base := r.C.Schedule.makespan;
          let overhead = (r.C.Schedule.makespan -. !base) /. !base *. 100. in
          Format.printf "%-14s %8.4f s  %7.1f GFLOPS  overhead %+5.2f%%@." name
            r.C.Schedule.makespan r.C.Schedule.gflops overhead;
          let interesting =
            [ "compute"; "chk-recalc"; "chk-update"; "chk-encode"; "transfer" ]
          in
          let e = r.C.Schedule.engine in
          Format.printf "   phases: %s@."
            (String.concat ", "
               (List.filter_map
                  (fun p ->
                    let t = Hetsim.Engine.phase_time e p in
                    if t > 1e-6 then Some (Printf.sprintf "%s %.3fs" p t)
                    else None)
                  interesting)))
        schemes;
      let cula = C.Cula_model.run machine ~n in
      Format.printf "%-14s %8.4f s  %7.1f GFLOPS  (vendor-library baseline)@."
        "CULA model" cula.C.Cula_model.makespan cula.C.Cula_model.gflops)
    [ (Hetsim.Machine.tardis, 20480); (Hetsim.Machine.bulldozer64, 30720) ]
