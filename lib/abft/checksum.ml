open Matrix
module Pool = Parallel.Pool

(* [chk] is the primary copy the update rules and verifications read;
   [shadow] is an independently maintained duplicate. The two copies
   receive bitwise-identical update sequences, so any disagreement
   proves one copy was corrupted in place — and the fresh recalculation
   from the tile says which (see Verify's cross-check). *)
type t = { chk : Mat.t; shadow : Mat.t; weights : Mat.t }

let weights ~d ~b =
  if d < 1 || b < 1 then invalid_arg "Checksum.weights: d and b must be >= 1";
  Mat.init b d (fun i r -> Float.pow (float_of_int (i + 1)) (float_of_int r))

let encode ?pool ?(d = 2) a =
  if Mat.rows a < 1 then invalid_arg "Checksum.encode: empty tile";
  let v = weights ~d ~b:(Mat.rows a) in
  let chk = Blas3.gemm_alloc ?pool ~transa:Types.Trans v a in
  { chk; shadow = Mat.copy chk; weights = v }

let recompute ?pool t a =
  if Mat.rows a <> Mat.rows t.weights || Mat.cols a <> Mat.cols t.chk then
    invalid_arg "Checksum.recompute: tile shape mismatch";
  Blas3.gemm_alloc ?pool ~transa:Types.Trans t.weights a

let recompute_into t a ~into =
  if Mat.rows a <> Mat.rows t.weights || Mat.cols a <> Mat.cols t.chk then
    invalid_arg "Checksum.recompute_into: tile shape mismatch";
  Blas3.chk_reduce ~weights:t.weights a ~into

(* Fused-kernel builders: hand the kernel both replica chains so the
   carried update reaches primary and shadow in one pass, each chain
   reading only its own operand copy — the same independence the
   separate-pass Update rules maintain. *)
let update_fused ?fresh ~chk_a chk_c =
  {
    Blas3.f_a = [| chk_a.chk; chk_a.shadow |];
    f_c = [| chk_c.chk; chk_c.shadow |];
    f_fresh = fresh;
    f_weights = (match fresh with Some _ -> Some chk_c.weights | None -> None);
  }

let solve_fused t =
  { Blas3.f_a = [||]; f_c = [| t.chk; t.shadow |]; f_fresh = None; f_weights = None }

let matrix t = t.chk
let shadow t = t.shadow
let d t = Mat.rows t.chk
let b t = Mat.cols t.chk

let rows t = Mat.rows t.weights

let copy t =
  { chk = Mat.copy t.chk; shadow = Mat.copy t.shadow; weights = t.weights }

let corrupt t ~row ~col v = Mat.set t.chk row col v

let blit_into ~src ~dst =
  for r = 0 to Mat.rows src - 1 do
    for c = 0 to Mat.cols src - 1 do
      Mat.set dst r c (Mat.get src r c)
    done
  done

let restore ~src ~dst =
  if Mat.rows src.chk <> Mat.rows dst.chk || Mat.cols src.chk <> Mat.cols dst.chk
  then invalid_arg "Checksum.restore: shape mismatch";
  blit_into ~src:src.chk ~dst:dst.chk;
  blit_into ~src:src.shadow ~dst:dst.shadow

(* Bitwise agreement of the two copies: [Int64.bits_of_float] compares
   the exact representation (a NaN produced by a flip still differs),
   where a float [=] would both trip lint rule R3 and miss NaNs. *)
let copies_agree t =
  let ok = ref true in
  let dd = Mat.rows t.chk and bb = Mat.cols t.chk in
  for r = 0 to dd - 1 do
    for c = 0 to bb - 1 do
      if
        not
          (Int64.equal
             (Int64.bits_of_float (Mat.get t.chk r c))
             (Int64.bits_of_float (Mat.get t.shadow r c)))
      then ok := false
    done
  done;
  !ok

let copies_differing t =
  let n = ref 0 in
  let dd = Mat.rows t.chk and bb = Mat.cols t.chk in
  for r = 0 to dd - 1 do
    for c = 0 to bb - 1 do
      if
        not
          (Int64.equal
             (Int64.bits_of_float (Mat.get t.chk r c))
             (Int64.bits_of_float (Mat.get t.shadow r c)))
      then incr n
    done
  done;
  !n

let promote_shadow t = blit_into ~src:t.shadow ~dst:t.chk
let resync_shadow t = blit_into ~src:t.chk ~dst:t.shadow

type store = { blocks : t option array array; d : int; grid : int }

(* Initial whole-matrix encoding: every lower-triangle tile is an
   independent v^T * A_block product, so the batch fans out across the
   pool exactly like the paper's N-stream checksum recalculation
   (Optimization 1). Each task writes its own slot — determinism is
   structural. *)
let encode_lower ?pool ?(d = 2) tiles =
  let g = Tile.grid tiles in
  let blocks = Array.init g (fun _ -> Array.make g None) in
  let coords = ref [] in
  for i = g - 1 downto 0 do
    for j = i downto 0 do
      coords := (i, j) :: !coords
    done
  done;
  let coords = Array.of_list !coords in
  let encode_at k =
    let i, j = coords.(k) in
    blocks.(i).(j) <- Some (encode ~d (Tile.tile tiles i j))
  in
  let n = Array.length coords in
  (match pool with
  | Some p -> Pool.parallel_for ~chunk:1 p ~lo:0 ~hi:n encode_at
  | None ->
      let p = Pool.default () in
      if Pool.size p > 1 && n > 1 then
        Pool.parallel_for ~chunk:1 p ~lo:0 ~hi:n encode_at
      else
        for k = 0 to n - 1 do
          encode_at k
        done);
  { blocks; d; grid = g }

let get s i j =
  if i < 0 || j < 0 || i >= s.grid || j >= s.grid || i < j then
    invalid_arg
      (Printf.sprintf "Checksum.get: (%d,%d) not a lower-triangle tile of %d"
         i j s.grid);
  match s.blocks.(i).(j) with
  | Some t -> t
  | None -> assert false

let store_d s = s.d
let store_grid s = s.grid

let total_bytes s =
  let acc = ref 0 in
  Array.iter
    (Array.iter (function
      (* primary + shadow: the duplicate encoding doubles the space *)
      | Some t -> acc := !acc + (2 * 8 * d t * b t)
      | None -> ()))
    s.blocks;
  !acc

let copy_store s =
  { s with blocks = Array.map (Array.map (Option.map copy)) s.blocks }

let restore_store ~src ~dst =
  if src.grid <> dst.grid || src.d <> dst.d then
    invalid_arg "Checksum.restore_store: store shape mismatch";
  for i = 0 to src.grid - 1 do
    for j = 0 to i do
      match (src.blocks.(i).(j), dst.blocks.(i).(j)) with
      | Some s, Some d -> restore ~src:s ~dst:d
      | None, None -> ()
      | _ -> invalid_arg "Checksum.restore_store: block population mismatch"
    done
  done
