(** Per-block weighted column checksums (the paper's §IV-A encoding).

    A B×B tile [A] is encoded by [d] weighted column sums
    [chk_r = w_rᵀ · A], one row per weight vector, stored together as a
    d×B matrix. The paper uses [d = 2] with [w_1 = (1,…,1)] and
    [w_2 = (1,2,…,B)]: one checksum detects an error in a column, the
    pair locates its row (δ₂/δ₁) and its magnitude (δ₁), enabling
    correction of one error per tile column.

    The encoding is per *block*, not per matrix: MAGMA updates tiles as
    units, and block-local checksums both localize faults (higher
    "fault-tolerance density", §IV-A) and make every update rule a
    small dense kernel.

    Weight vectors generalise to any [d ≥ 1] as
    [w_r(i) = (i+1)^(r-1)] (a Vandermonde family), which keeps the
    locate-and-correct algebra of [d = 2] intact and supports the
    ablation "one checksum detects but cannot correct".

    {b Self-protection.} Checksums live in the same fallible memory as
    the data they guard. Each block therefore stores {e two} copies —
    a primary and a shadow — that receive identical update sequences.
    Verification first cross-checks the copies bitwise: if they
    disagree, some replica was corrupted in place ([In_checksum] /
    [In_update] faults), and the verifier repairs the bad copy from a
    fresh recalculation instead of "correcting" clean tile data
    against a lying checksum. *)

open Matrix

type t
(** The checksum block of one tile: a d×B matrix. Mutable — update
    rules modify it in place, exactly like the data tiles. *)

val weights : d:int -> b:int -> Mat.t
(** [weights ~d ~b] is the B×d weight matrix [V] with
    [V(i, r) = (i+1)^r]. @raise Invalid_argument unless
    [1 <= d] and [1 <= b]. *)

val encode : ?pool:Parallel.Pool.t -> ?d:int -> Mat.t -> t
(** [encode ~d a] computes the d×n checksum [Vᵀ·a] of an m×n tile
    (default [d = 2]); Cholesky uses square B×B tiles, the QR
    extension tall m×b panels — the algebra never needs squareness.
    [pool] is forwarded to the underlying GEMM (only engaged for tiles
    large enough to benefit).
    @raise Invalid_argument on an empty tile. *)

val recompute : ?pool:Parallel.Pool.t -> t -> Mat.t -> Mat.t
(** [recompute t a] recomputes the checksum of [a] fresh (same weights
    and shape as [t]) — the "checksum recalculation" operation that
    Optimization 1 accelerates. Returns a new matrix; [t] is
    unchanged. *)

val recompute_into : t -> Mat.t -> into:Mat.t -> unit
(** Allocation-free {!recompute} through the {!Blas3.chk_reduce}
    micro-kernel: one pass over the tile into the caller's d×n scratch.
    Bitwise identical to [recompute] and to a fused kernel's in-cache
    [f_fresh] epilogue. @raise Invalid_argument on shape mismatch. *)

(** {1 Fused-kernel carry} *)

val update_fused : ?fresh:Mat.t -> chk_a:t -> t -> Blas3.fuse
(** [update_fused ~chk_a chk_c] builds the {!Blas3.fuse} that carries
    [chk_c] through a BLAS-3 update whose [op(a)] operand is protected
    by [chk_a]: both replica chains ride the kernel's own blocking
    (primary reading primary, shadow reading shadow), replacing the
    separate-pass {!Update} rule bit for bit. [?fresh], if given, is a
    d×n scratch the kernel additionally fills with the weighted
    reduction of the finished output — only sound when nothing can
    corrupt the tile between the kernel and its verification; drivers
    with post-kernel fault windows recompute at verify time instead. *)

val solve_fused : t -> Blas3.fuse
(** [solve_fused chk_b] carries both replica chains of [chk_b] through
    a right-side [Blas3.trsm], co-solving them against the same
    factor — the fused form of {!Update.trsm}. *)

val matrix : t -> Mat.t
(** The live {e primary} d×B checksum matrix (aliased, not copied):
    update rules in {!Update} mutate it (and its shadow, through
    {!shadow}). *)

val shadow : t -> Mat.t
(** The live shadow copy (aliased). Update rules apply every change to
    both copies; the injector only ever hits the primary, so a copy
    disagreement always means in-place corruption. *)

val d : t -> int
(** Number of checksum rows. *)

val b : t -> int
(** Column count of the tile this checksum covers. *)

val rows : t -> int
(** Row count of the tile this checksum covers (equals {!b} for the
    square tiles of the Cholesky drivers). *)

val copy : t -> t

val restore : src:t -> dst:t -> unit
(** Copy both replicas of [src] into [dst] in place (snapshot
    rollback). @raise Invalid_argument on shape mismatch. *)

val corrupt : t -> row:int -> col:int -> float -> unit
(** Overwrite one stored {e primary} checksum entry — test hook for
    exercising checksum-side corruption. The shadow is untouched, so
    the next verification sees the copies disagree. *)

val copies_agree : t -> bool
(** Bitwise agreement of primary and shadow (exact representation
    compare, so NaN-producing flips still register). *)

val copies_differing : t -> int
(** Number of cells where the two copies disagree bitwise. *)

val promote_shadow : t -> unit
(** Overwrite the primary with the shadow (heal a corrupted
    primary). *)

val resync_shadow : t -> unit
(** Overwrite the shadow with the primary (heal a corrupted
    shadow). *)

(** {1 Whole-matrix stores} *)

type store
(** Checksums for every lower-triangle tile of a tiled matrix
    (Cholesky only maintains the lower triangle). *)

val encode_lower : ?pool:Parallel.Pool.t -> ?d:int -> Tile.t -> store
(** Encode every tile [(i, j)] with [i >= j]. The per-tile encodes are
    independent and fan out across [pool] (default: the shared
    {!Parallel.Pool.default} pool when it has more than one lane) —
    the host-side analogue of the paper's N concurrent recalculation
    streams. *)

val get : store -> int -> int -> t
(** [get s i j] for a lower-triangle tile.
    @raise Invalid_argument if [i < j] or out of range. *)

val store_d : store -> int
val store_grid : store -> int

val total_bytes : store -> int
(** Space occupied by all checksums, both replicas included — twice
    the paper's [2n²/B] single-copy overhead, reported by benches. *)

val copy_store : store -> store

val restore_store : src:store -> dst:store -> unit
(** Restore every block of [dst] from [src] in place (both replicas),
    preserving aliases held by drivers. @raise Invalid_argument on
    shape or population mismatch. *)
