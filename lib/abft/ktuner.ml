type estimate = { k : int; fault_free_s : float; expected_s : float }

let expected_time ~base_s ~verify_cost_s ~error_rate ?(recovery_factor = 1.0) k =
  if k < 1 then invalid_arg "Ktuner.expected_time: k must be >= 1";
  if error_rate < 0. then invalid_arg "Ktuner.expected_time: negative rate";
  let fault_free_s = base_s +. verify_cost_s k in
  let slip = float_of_int (k - 1) /. float_of_int k in
  let expected_s =
    fault_free_s
    *. (1. +. (error_rate *. fault_free_s *. slip *. recovery_factor))
  in
  { k; fault_free_s; expected_s }

let optimal_k ~base_s ~verify_cost_s ~error_rate ?(recovery_factor = 1.0)
    ?(k_max = 16) () =
  if k_max < 1 then invalid_arg "Ktuner.optimal_k: k_max must be >= 1";
  let best = ref (expected_time ~base_s ~verify_cost_s ~error_rate ~recovery_factor 1) in
  for k = 2 to k_max do
    let e = expected_time ~base_s ~verify_cost_s ~error_rate ~recovery_factor k in
    if e.expected_s < !best.expected_s then best := e
  done;
  !best

let verify_cost_model ~machine ~n ~b ~streams ?(fused = true) k =
  let gpu = machine.Hetsim.Machine.gpu in
  let fn = float_of_int n and fb = float_of_int b and fk = float_of_int k in
  (* Table V recalculation flops at interval k; BLAS-2 traffic is ~2
     bytes per flop (one fused pass per tile). The recalculation is the
     same in both modes (fused verification recomputes fresh sums too);
     separate-pass runs additionally pay the standalone checksum-update
     traffic that fused kernels absorb into the tile passes. *)
  let flops =
    (2. *. fn *. fn)
    +. (2. *. fn *. fn /. fk)
    +. (2. *. (fn ** 3.) /. (3. *. fb *. fk))
  in
  let update_bytes =
    if fused then 0.
    else
      let p = { Overhead_model.n; b; k } in
      8.
      *. (Overhead_model.update_words_separate p
         -. Overhead_model.update_words_fused p)
  in
  let bytes = (2. *. flops) +. update_bytes in
  let util = Hetsim.Device.aggregate_blas2_util gpu ~concurrent:streams in
  bytes /. (gpu.Hetsim.Device.mem_bandwidth_gbs *. 1e9 *. util)
