(** Choosing the verification interval K from the system's failure rate
    (the paper's Optimization 3: "K is a parameter related to the
    failure rate of the system"; §V-C leaves the choice informal — this
    module makes the trade-off explicit).

    Larger K verifies GEMM/TRSM inputs less often, cutting the
    recalculation overhead from [(6K+6)/nK + 2/BK] toward [6/n]; but an
    error that strikes inside an unverified window has (conservatively)
    a [(K-1)/K] chance of slipping past its cheap correction point and
    forcing recovery by recomputation. With a Poisson failure rate λ
    (errors/second) the expected run time is

    [E(K) = T(K) · (1 + λ·T(K) · (K-1)/K · r)]

    where [T(K)] is the fault-free time (base time plus the modelled
    verification cost at interval K) and [r] is the relative cost of a
    recovery (1.0 = one full re-run). [optimal_k] minimises [E] over
    [1..k_max]. As λ → 0 the optimum grows (verify rarely); for large λ
    it collapses to K = 1 — matching the paper's guidance. *)

type estimate = {
  k : int;
  fault_free_s : float;  (** modelled T(K) *)
  expected_s : float;  (** E(K) under the given failure rate *)
}

val expected_time :
  base_s:float ->
  verify_cost_s:(int -> float) ->
  error_rate:float ->
  ?recovery_factor:float ->
  int ->
  estimate
(** [expected_time ~base_s ~verify_cost_s ~error_rate k] evaluates one
    candidate. [verify_cost_s k] is the verification time added at
    interval [k]; [recovery_factor] defaults to [1.0].
    @raise Invalid_argument if [k < 1] or [error_rate < 0]. *)

val optimal_k :
  base_s:float ->
  verify_cost_s:(int -> float) ->
  error_rate:float ->
  ?recovery_factor:float ->
  ?k_max:int ->
  unit ->
  estimate
(** The [k] in [1..k_max] (default 16) minimising expected time. *)

val verify_cost_model :
  machine:Hetsim.Machine.t ->
  n:int ->
  b:int ->
  streams:int ->
  ?fused:bool ->
  int ->
  float
(** The bandwidth-bound cost of Enhanced verification at interval [k]
    on a machine: the Table-V traffic ([(2n² + 2n²/k + 2n³/3bk) · 2]
    bytes) over the aggregate BLAS-2 bandwidth at the given concurrent
    stream width — a closed-form stand-in for running the simulator,
    suitable for on-line tuning.

    [?fused] (default [true], matching the drivers) selects the pass
    structure: fused kernels carry the checksum chains through the tile
    passes for free, while the separate-pass baseline adds the
    standalone update traffic
    ({!Overhead_model.update_words_separate} −
    {!Overhead_model.update_words_fused} words). The recalculation term
    is common to both modes. *)
