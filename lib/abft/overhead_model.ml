type params = { n : int; b : int; k : int }

let f = float_of_int
let cholesky_flops { n; _ } = f n ** 3. /. 3.
let encode_flops { n; _ } = 2. *. (f n ** 2.)

let update_flops { n; b; _ } =
  (4. *. (f n ** 2.)) +. (2. *. (f n ** 3.) /. (3. *. f b))

let update_relative { n; b; _ } = (12. /. f n) +. (2. /. f b)
let recalc_flops_online { n; _ } = 4. *. (f n ** 2.)
let recalc_relative_online { n; _ } = 12. /. f n

let recalc_flops_enhanced { n; b; k } =
  (2. *. (f n ** 2.))
  +. (2. *. (f n ** 2.) /. f k)
  +. (2. *. (f n ** 3.) /. (3. *. f b *. f k))

let recalc_relative_enhanced { n; b; k } =
  (((6. *. f k) +. 6.) /. (f n *. f k)) +. (2. /. (f b *. f k))

let space_bytes { n; b; _ } = 8. *. 2. *. (f n ** 2.) /. f b
let space_relative { b; _ } = 2. /. f b
let overall_relative_online { n; b; _ } = (30. /. f n) +. (2. /. f b)

let overall_relative_enhanced { n; b; k } =
  (((24. *. f k) +. 6.) /. (f n *. f k))
  +. (((2. *. f k) +. 2.) /. (f b *. f k))

let asymptote_online { b; _ } = 2. /. f b
let asymptote_enhanced { b; k; _ } = ((2. *. f k) +. 2.) /. (f b *. f k)
let transfer_words_initial { n; b; _ } = 2. *. (f n ** 2.) /. f b
let transfer_words_update { n; _ } = f n ** 2. /. 2.

let transfer_words_verify_enhanced { n; b; k } =
  f n ** 3. /. (3. *. f k *. (f b ** 2.))

(* --- fused-kernel carry (PR 6) ------------------------------------- *)

let update_words_separate { n; b; _ } =
  (f n ** 3. /. (3. *. f b)) +. (f n ** 2. /. 2.)

let update_words_fused { n; _ } = f n ** 2. /. 2.

let update_traffic_ratio p = update_words_fused p /. update_words_separate p

let gemm_carry_relative ?(d = 2) ?(replicas = 2) ?(pass_penalty = 1.) ~m () =
  if m <= 0 then invalid_arg "Overhead_model.gemm_carry_relative: m <= 0";
  pass_penalty *. f (replicas * d) /. f m
