(** The paper's analytic overhead model (§VI, Tables II–VI).

    All quantities are in floating-point operations (or words for the
    transfer costs) for an n×n input with block size B, verification
    interval K. "Relative" overheads are normalised by the Cholesky
    flop count [n³/3]. These closed forms are what the bench compares
    against the simulator's measured decomposition, and what
    Optimization 2's placement model consumes. *)

type params = { n : int; b : int; k : int }

val cholesky_flops : params -> float
(** [n³/3] *)

val encode_flops : params -> float
(** Checksum encoding, done once before factorization: [2n²]
    (Table: relative [6/n]). *)

val update_flops : params -> float
(** Total checksum-updating work: TRSM + SYRK + GEMM terms
    [2n² + 2n² + 2n³/(3B)] (POTF2's [2Bn] ignored as in the paper). *)

val update_relative : params -> float
(** [12/n + 2/B]. *)

val recalc_flops_online : params -> float
(** Online-ABFT recalculation (post-update): [2n² + 2n²]
    (TRSM + GEMM rows of Table IV; POTF2/SYRK ignored). *)

val recalc_relative_online : params -> float
(** [12/n]. *)

val recalc_flops_enhanced : params -> float
(** Enhanced recalculation (pre-read): TRSM [2n²] + SYRK [2n²/K] +
    GEMM [2n³/(3BK)] per Table V. *)

val recalc_relative_enhanced : params -> float
(** [(6K+6)/(nK) + 2/(BK)]. *)

val space_bytes : params -> float
(** Checksum storage: [2n²/B] doubles, returned in bytes. *)

val space_relative : params -> float
(** [2/B]. *)

val overall_relative_online : params -> float
(** Table VI: [30/n + 2/B]. *)

val overall_relative_enhanced : params -> float
(** Table VI: [(24K+6)/(nK) + (2K+2)/(BK)]. *)

val asymptote_online : params -> float
(** [2/B]. *)

val asymptote_enhanced : params -> float
(** [(2K+2)/(BK)]. *)

(** {1 Data-transfer words (§VI item 6, CPU-side updating)} *)

val transfer_words_initial : params -> float
(** [2n²/B] *)

val transfer_words_update : params -> float
(** [n²/2] *)

val transfer_words_verify_enhanced : params -> float
(** [n³/(3KB²)] *)
