(** The paper's analytic overhead model (§VI, Tables II–VI).

    All quantities are in floating-point operations (or words for the
    transfer costs) for an n×n input with block size B, verification
    interval K. "Relative" overheads are normalised by the Cholesky
    flop count [n³/3]. These closed forms are what the bench compares
    against the simulator's measured decomposition, and what
    Optimization 2's placement model consumes. *)

type params = { n : int; b : int; k : int }

val cholesky_flops : params -> float
(** [n³/3] *)

val encode_flops : params -> float
(** Checksum encoding, done once before factorization: [2n²]
    (Table: relative [6/n]). *)

val update_flops : params -> float
(** Total checksum-updating work: TRSM + SYRK + GEMM terms
    [2n² + 2n² + 2n³/(3B)] (POTF2's [2Bn] ignored as in the paper). *)

val update_relative : params -> float
(** [12/n + 2/B]. *)

val recalc_flops_online : params -> float
(** Online-ABFT recalculation (post-update): [2n² + 2n²]
    (TRSM + GEMM rows of Table IV; POTF2/SYRK ignored). *)

val recalc_relative_online : params -> float
(** [12/n]. *)

val recalc_flops_enhanced : params -> float
(** Enhanced recalculation (pre-read): TRSM [2n²] + SYRK [2n²/K] +
    GEMM [2n³/(3BK)] per Table V. *)

val recalc_relative_enhanced : params -> float
(** [(6K+6)/(nK) + 2/(BK)]. *)

val space_bytes : params -> float
(** Checksum storage: [2n²/B] doubles, returned in bytes. *)

val space_relative : params -> float
(** [2/B]. *)

val overall_relative_online : params -> float
(** Table VI: [30/n + 2/B]. *)

val overall_relative_enhanced : params -> float
(** Table VI: [(24K+6)/(nK) + (2K+2)/(BK)]. *)

val asymptote_online : params -> float
(** [2/B]. *)

val asymptote_enhanced : params -> float
(** [(2K+2)/(BK)]. *)

(** {1 Data-transfer words (§VI item 6, CPU-side updating)} *)

val transfer_words_initial : params -> float
(** [2n²/B] *)

val transfer_words_update : params -> float
(** [n²/2] *)

val transfer_words_verify_enhanced : params -> float
(** [n³/(3KB²)] *)

(** {1 Fused-kernel carry}

    The checksum-updating flops are identical whether the chains ride
    the BLAS-3 kernels ({!Matrix.Blas3.fuse}) or run as separate
    skinny passes — what fusion removes is {e memory traffic}: the
    separate passes re-read each trailing tile's B×B operand that the
    fused kernel already holds packed in cache. These closed forms
    quantify that, in 64-bit words over a whole n×n factorization and
    per-kernel relative flops. *)

val update_words_separate : params -> float
(** Words moved by separate-pass checksum updating:
    [n³/(3B) + n²/2] — one B² operand re-read per checksum GEMM per
    replica across the [n³/(6B³)] trailing tile updates, plus the
    d×B chain rows themselves (d = 2). *)

val update_words_fused : params -> float
(** [n²/2] — fused updating touches only the chain rows; the operand
    panels are already packed for the tile kernel. *)

val update_traffic_ratio : params -> float
(** [update_words_fused / update_words_separate] — tends to [3B/(2n)]
    ≪ 1 for n ≫ B: the predicted traffic saving of fusion. *)

val gemm_carry_relative :
  ?d:int -> ?replicas:int -> ?pass_penalty:float -> m:int -> unit -> float
(** Extra flops of carrying [d]-row chains for [replicas] replicas
    through one m×k·k×n GEMM, relative to the tile's [2mkn]:
    [π·R·d/m] (the inner dimension cancels). [pass_penalty] π ≥ 1
    models the bandwidth-bound slowdown of running the same flops as
    standalone d-row passes; the default [π = 1] is the fused (in-cache)
    case. @raise Invalid_argument if [m <= 0]. *)
