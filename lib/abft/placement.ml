type choice = Cpu_updates | Gpu_updates

type decision = {
  choice : choice;
  t_pick_gpu : float;
  t_pick_cpu : float;
  cpu_tail_iter_s : float;
  gpu_tail_iter_s : float;
  cpu_viable : bool;
}

let decide (m : Hetsim.Machine.t) (p : Overhead_model.params) =
  let gpu = m.Hetsim.Machine.gpu and cpu = m.Hetsim.Machine.cpu in
  let p_gpu = gpu.Hetsim.Device.peak_gflops *. 1e9 in
  let p_cpu = cpu.Hetsim.Device.peak_gflops *. 1e9 in
  let rate = m.Hetsim.Machine.link.Hetsim.Machine.bandwidth_gbs *. 1e9 in
  let latency = m.Hetsim.Machine.link.Hetsim.Machine.latency_s in
  let n_cho = Overhead_model.cholesky_flops p in
  let n_upd = Overhead_model.update_flops p in
  let n_rec = Overhead_model.recalc_flops_enhanced p in
  let d_upd_bytes = 8. *. Overhead_model.transfer_words_verify_enhanced p in
  (* The paper's literal §V-B estimates. *)
  let t_pick_gpu = (n_cho +. n_upd +. n_rec) /. p_gpu in
  let t_pick_cpu =
    Float.max
      ((n_cho +. n_rec) /. p_gpu)
      ((n_upd /. p_cpu) +. (d_upd_bytes /. rate))
  in
  (* Tail-iteration viability (the §V-B caveat): r rows remain, one
     iteration's updating must fit inside that iteration's GPU time. *)
  let b = float_of_int p.Overhead_model.b in
  let r = 2. *. b in
  let p_gpu_sustained =
    p_gpu *. gpu.Hetsim.Device.gemm_efficiency
  in
  let gpu_tail_iter_s =
    ((2. *. b *. r *. r) +. (b *. b *. r)) /. p_gpu_sustained
  in
  (* Skinny 2-row checksum GEMMs stream the LC operand once per ~4
     flops per element: ~0.5 flops/byte, so the CPU rate is the lower
     of its dense rate and its bandwidth-derived rate. *)
  let cpu_eff_rate =
    Float.min
      (p_cpu *. cpu.Hetsim.Device.gemm_efficiency)
      (cpu.Hetsim.Device.mem_bandwidth_gbs *. 1e9 *. 0.5)
  in
  let cpu_flops_iter = 4. *. b *. r in
  let transfer_bytes_iter = 8. *. ((b *. b) +. (2. *. b *. r)) in
  let cpu_tail_iter_s =
    (cpu_flops_iter /. cpu_eff_rate)
    +. (transfer_bytes_iter /. rate)
    +. (2. *. latency)
  in
  let cpu_viable = cpu_tail_iter_s <= gpu_tail_iter_s in
  let choice =
    (* The measured answer, when the machine descriptor carries one,
       beats the model — both options cost well under 1% of the run, so
       the analytic margin is inside the noise the paper measured
       through. *)
    match m.Hetsim.Machine.measured_update_placement with
    | Some `Cpu -> Cpu_updates
    | Some `Gpu -> Gpu_updates
    | None ->
        if cpu_viable && t_pick_cpu <= t_pick_gpu then Cpu_updates
        else Gpu_updates
  in
  { choice; t_pick_gpu; t_pick_cpu; cpu_tail_iter_s; gpu_tail_iter_s; cpu_viable }

let choice_name = function Cpu_updates -> "cpu" | Gpu_updates -> "gpu"

let pp_decision fmt d =
  Format.fprintf fmt
    "pick %s (T_gpu=%.4fs, T_cpu=%.4fs; tail iter: cpu %.0fus vs gpu budget \
     %.0fus, %s)"
    (choice_name d.choice) d.t_pick_gpu d.t_pick_cpu
    (d.cpu_tail_iter_s *. 1e6) (d.gpu_tail_iter_s *. 1e6)
    (if d.cpu_viable then "viable" else "not viable")
