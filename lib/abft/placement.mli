(** Optimization 2's CPU-vs-GPU placement model for checksum updating.

    Checksum updating is off the critical path, so it can either share
    the GPU (on a separate stream, overlapping at spare capacity) or
    run on the otherwise-idle CPU (paying PCIe transfers). The paper's
    §V-B estimation model compares

    [T_gpu = (N_cho + N_upd + N_rec) / P_gpu]
    [T_cpu = max((N_cho + N_rec) / P_gpu, N_upd / P_cpu + D_upd / R)]

    with flop counts from {!Overhead_model} and the transfer volume
    [D_upd = n³/(3KB²)] words — but it also warns: "we need to ensure
    that CPU can complete its job close to the completion time of GPU.
    Otherwise, it may not be worth to do it on CPU."

    With peak rates, [T_cpu <= T_gpu] essentially always (offloading
    removes work from the GPU at a small transfer cost), so the caveat
    is the real discriminator. We formalise it as a *tail-iteration
    viability check*: at the representative late iteration with
    [r = 2B] rows remaining, the CPU must finish that iteration's
    updating — skinny 2-row GEMMs at the CPU's bandwidth-bound
    effective rate, plus the iteration's LC-panel transfer and two
    transfer latencies — within the GPU's iteration time
    [(2Br² + B²r) / P_gpu_sustained]. Late iterations are where the
    GPU has the least work to hide CPU activity behind; B enters
    quadratically in the transfer term but the GPU term shrinks with
    its own [B], which is why the check passes on TARDIS (B = 256,
    modest Fermi) and fails on BULLDOZER64 (B = 512, fast K40c) —
    reproducing the paper's §VII-D choices: CPU updating on TARDIS,
    GPU updating on BULLDOZER64. *)

type choice = Cpu_updates | Gpu_updates

type decision = {
  choice : choice;
  t_pick_gpu : float;  (** §V-B estimate if updating shares the GPU *)
  t_pick_cpu : float;  (** §V-B estimate if updating goes to the CPU *)
  cpu_tail_iter_s : float;
      (** CPU updating time of the [r = 2B] tail iteration *)
  gpu_tail_iter_s : float;
      (** GPU compute time of that iteration — the budget the CPU must
          fit in *)
  cpu_viable : bool;  (** [cpu_tail_iter_s <= gpu_tail_iter_s] *)
}

val decide : Hetsim.Machine.t -> Overhead_model.params -> decision
(** When the machine descriptor carries a measured placement
    ({!Hetsim.Machine.t.measured_update_placement} — both paper
    testbeds do), that wins: the analytic margin between the options is
    well inside measurement noise, and the paper itself chose
    empirically ("determined by our testing system", §VII-D).
    Otherwise picks [Cpu_updates] iff the CPU is viable at the tail
    *and* the §V-B estimate favours (or ties) it. The estimate and
    viability fields are always computed and reported. *)

val choice_name : choice -> string
val pp_decision : Format.formatter -> decision -> unit
