type t = No_ft | Offline | Online | Enhanced of { k : int }

let enhanced ?(k = 1) () =
  if k < 1 then invalid_arg "Scheme.enhanced: k must be >= 1";
  Enhanced { k }

let name = function
  | No_ft -> "none"
  | Offline -> "offline"
  | Online -> "online"
  | Enhanced { k } -> Printf.sprintf "enhanced-k%d" k

let of_string s =
  match String.lowercase_ascii s with
  | "none" | "no-ft" | "magma" -> Ok No_ft
  | "offline" -> Ok Offline
  | "online" -> Ok Online
  | "enhanced" -> Ok (Enhanced { k = 1 })
  | s -> (
      let prefix = "enhanced-k" in
      let plen = String.length prefix in
      match
        if String.length s > plen && String.sub s 0 plen = prefix then
          int_of_string_opt (String.sub s plen (String.length s - plen))
        else None
      with
      | Some k when k >= 1 -> Ok (Enhanced { k })
      | _ -> Error (Printf.sprintf "unknown scheme %S" s))

let corrects_computing_errors = function
  | No_ft | Offline -> false
  | Online | Enhanced _ -> true

let corrects_storage_errors = function
  | No_ft | Offline | Online -> false
  | Enhanced _ -> true

let verification_interval = function
  | No_ft | Offline | Online -> 1
  | Enhanced { k } -> k

let all = [ No_ft; Offline; Online; Enhanced { k = 1 } ]
let pp fmt t = Format.pp_print_string fmt (name t)
