(** Fault-tolerance scheme selector.

    - [No_ft] — plain MAGMA-style factorization, no checksums.
    - [Offline] — Huang–Abraham: encode before, verify once after the
      whole factorization. Detects, but propagated errors are not
      correctable mid-run.
    - [Online] — Davies–Chen style post-update verification: every
      block is verified right after it is written. Corrects computing
      errors; blind to storage errors that strike between a block's
      last verification and its next read.
    - [Enhanced { k }] — this paper: pre-read verification of every
      input block, relaxed to every [k] iterations for GEMM/TRSM inputs
      (Optimization 3; SYRK inputs are always verified because an
      undetected error entering the diagonal block can destroy positive
      definiteness). [k = 1] is full-strength. *)

type t = No_ft | Offline | Online | Enhanced of { k : int }

val enhanced : ?k:int -> unit -> t
(** [enhanced ()] is [Enhanced { k = 1 }].
    @raise Invalid_argument if [k < 1]. *)

val name : t -> string
(** Short stable identifier: ["none"], ["offline"], ["online"],
    ["enhanced-k<k>"]. *)

val of_string : string -> (t, string) result
(** Parses {!name} output plus the aliases ["enhanced"] (k = 1) and
    ["enhanced-kN"]. *)

val corrects_computing_errors : t -> bool
(** Whether the scheme corrects a computing error before it pollutes
    the final result (the paper's Table VII middle column). *)

val corrects_storage_errors : t -> bool
(** Whether the scheme corrects a storage error struck between a
    verification and the next read (Table VII right column). Only
    [Enhanced] does. *)

val verification_interval : t -> int
(** The [K] of Optimization 3 ([1] for every scheme but [Enhanced]). *)

val all : t list
(** The four schemes with [Enhanced] at [k = 1], in presentation
    order. *)

val pp : Format.formatter -> t -> unit
