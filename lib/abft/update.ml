open Matrix

let check_pair name chk_x chk_y lc =
  if Checksum.d chk_x <> Checksum.d chk_y then
    invalid_arg (name ^ ": checksum row-count mismatch");
  if
    Checksum.b chk_x <> Mat.rows lc
    || Checksum.b chk_y <> Mat.rows lc
    || Mat.rows lc <> Mat.cols lc
  then invalid_arg (name ^ ": tile size mismatch")

(* Every rule applies the same arithmetic to the primary and the
   shadow replica, each chain reading its own copy of the operand
   checksums. The two chains are bitwise-identical deterministic
   computations, so on a clean run primary = shadow exactly; any
   disagreement at verify time proves in-place corruption of one
   replica (In_checksum / In_update faults). *)

(* chk_a <- chk_a - chk_lc . lc^T, shared by the SYRK and GEMM rules
   (they differ only in which operands the driver passes). *)
let rank_update name ~chk_x ~chk_y ~lc =
  check_pair name chk_x chk_y lc;
  Blas3.gemm ~transb:Types.Trans ~alpha:(-1.) ~beta:1. (Checksum.matrix chk_y)
    lc (Checksum.matrix chk_x);
  Blas3.gemm ~transb:Types.Trans ~alpha:(-1.) ~beta:1. (Checksum.shadow chk_y)
    lc (Checksum.shadow chk_x)

let syrk ~chk_a ~chk_lc ~lc = rank_update "Update.syrk" ~chk_x:chk_a ~chk_y:chk_lc ~lc
let gemm ~chk_b ~chk_ld ~lc = rank_update "Update.gemm" ~chk_x:chk_b ~chk_y:chk_ld ~lc

let potf2_one c ~la ~b ~d =
  for j = 0 to b - 1 do
    let piv = Mat.get la j j in
    for r = 0 to d - 1 do
      let v = Mat.get c r j /. piv in
      Mat.set c r j v;
      for col = j + 1 to b - 1 do
        Mat.set c r col (Mat.get c r col -. (v *. Mat.get la col j))
      done
    done
  done

let potf2 ~chk ~la =
  let b = Checksum.b chk and d = Checksum.d chk in
  if Mat.rows la <> b || Mat.cols la <> b then
    invalid_arg "Update.potf2: tile size mismatch";
  potf2_one (Checksum.matrix chk) ~la ~b ~d;
  potf2_one (Checksum.shadow chk) ~la ~b ~d

let potf2_by_trsm ~chk ~la =
  let b = Checksum.b chk in
  if Mat.rows la <> b || Mat.cols la <> b then
    invalid_arg "Update.potf2_by_trsm: tile size mismatch";
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Non_unit_diag la
    (Checksum.matrix chk);
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Non_unit_diag la
    (Checksum.shadow chk)

let trsm ~chk ~la =
  let b = Checksum.b chk in
  if Mat.rows la <> b || Mat.cols la <> b then
    invalid_arg "Update.trsm: tile size mismatch";
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Non_unit_diag la
    (Checksum.matrix chk);
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Non_unit_diag la
    (Checksum.shadow chk)
