(** Checksum-updating rules (§IV-B): one per Cholesky kernel.

    Each rule transforms a tile's checksum exactly as the kernel
    transforms the tile, so the invariant [chk = Vᵀ·tile] is preserved
    through the whole factorization:

    - SYRK  [A' = A − LC·LCᵀ]  ⇒  [chk(A') = chk(A) − chk(LC)·LCᵀ]
    - GEMM  [B' = B − LD·LCᵀ]  ⇒  [chk(B') = chk(B) − chk(LD)·LCᵀ]
    - POTF2 [A' → L]           ⇒  Algorithm 2 of the paper
      (equivalently [chk(L) = chk(A')·(Lᵀ)⁻¹])
    - TRSM  [LB = B'·(Lᵀ)⁻¹]   ⇒  [chk(LB) = chk(B')·(Lᵀ)⁻¹]

    All rules mutate the first checksum argument in place and never
    touch tile data. *)

open Matrix

val syrk : chk_a:Checksum.t -> chk_lc:Checksum.t -> lc:Mat.t -> unit
(** Rank-k update of the diagonal block's checksum.
    @raise Invalid_argument on shape or weight-count mismatch. *)

val gemm : chk_b:Checksum.t -> chk_ld:Checksum.t -> lc:Mat.t -> unit
(** Panel-update (GEMM) rule; same algebra as {!syrk} with the panel's
    operands. *)

val potf2 : chk:Checksum.t -> la:Mat.t -> unit
(** Algorithm 2, implemented literally as the paper's per-column loop:
    [chk[j] /= LA[j,j]; chk[j+1:] -= chk[j]·LA[j+1:,j]ᵀ] for each
    checksum row. [la] must be the factored lower-triangular block. *)

val potf2_by_trsm : chk:Checksum.t -> la:Mat.t -> unit
(** The same transform expressed as a triangular solve
    [chk ← chk·(laᵀ)⁻¹] — used to cross-check {!potf2} and as the
    BLAS-3 form a production kernel would use. *)

val trsm : chk:Checksum.t -> la:Mat.t -> unit
(** Panel TRSM rule: [chk ← chk·(laᵀ)⁻¹]. *)
