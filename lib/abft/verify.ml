open Matrix

type source = Located | Reconstructed

type correction = {
  row : int;
  col : int;
  wrong : float;
  fixed : float;
  source : source;
}

type outcome =
  | Clean
  | Corrected of correction list
  | Checksum_repaired of { cells : int; corrections : correction list }
  | Uncorrectable of string

let default_tol = 1e-8

let max_correctable_per_column ~d =
  if d >= 4 then 2 else if d >= 2 then 1 else 0

(* Per-row thresholds: row r of the checksum carries weights (i+1)^r,
   so its magnitudes — and its rounding noise — grow with r. Comparing
   every row against one global threshold either drowns row 0 or
   over-trusts row 3. *)
let row_thresholds ~tol stored fresh =
  let d = Mat.rows stored in
  Array.init d (fun r ->
      let m = ref 1. in
      for i = 0 to Mat.cols stored - 1 do
        m := Float.max !m (abs_float (Mat.get stored r i));
        m := Float.max !m (abs_float (Mat.get fresh r i))
      done;
      tol *. !m)

let bad_columns ~thr delta =
  let d = Mat.rows delta and bsz = Mat.cols delta in
  let cols = ref [] in
  for i = bsz - 1 downto 0 do
    let bad = ref false in
    for r = 0 to d - 1 do
      let v = Mat.get delta r i in
      (* A non-finite discrepancy (the tile caught an Inf/NaN bit flip)
         fails every > comparison; it must still count as bad. *)
      if (not (Float.is_finite v)) || abs_float v > thr.(r) then bad := true
    done;
    if !bad then cols := i :: !cols
  done;
  !cols

(* Corruption that overwhelms floating point — Inf/NaN, or a finite
   value so large that subtracting the located delta would destroy
   every mantissa bit of the true value (exponent-field flips routinely
   produce ~1e150) — defeats delta-based correction. If the column
   contains exactly one such element its row is self-evident and the
   true value is recoverable from the plain-sum checksum row by
   reconstruction: a_true = chk1 - sum of the column's other elements. *)
let anchor_magnitude = 1e30

let is_anchor v = (not (Float.is_finite v)) || abs_float v >= anchor_magnitude

let anchored_fit ~stored tile i =
  let b = Mat.rows tile in
  let bad = ref [] in
  for r = b - 1 downto 0 do
    if is_anchor (Mat.get tile r i) then bad := r :: !bad
  done;
  match !bad with
  | [ row ] ->
      let others = ref 0. in
      for r = 0 to b - 1 do
        if r <> row then others := !others +. Mat.get tile r i
      done;
      let truth = Mat.get stored 0 i -. !others in
      Ok (row, truth)
  | [] -> Error "no overwhelming element to anchor on"
  | l ->
      Error
        (Printf.sprintf "%d overwhelming elements in one column"
           (List.length l))

(* Attempt a single-error explanation of column [i]: one error e at row
   w-1 produces delta_r = e * w^r. Returns the (row, magnitude) or an
   explanation of why the pattern does not fit. *)
let single_fit ~b ~thr delta i =
  let d0 = Mat.get delta 0 i in
  if abs_float d0 <= thr.(0) then
    Error "row-0 discrepancy below threshold (cancelling errors?)"
  else begin
    let d = Mat.rows delta in
    let locator = Mat.get delta 1 i /. d0 in
    let w = Float.round locator in
    let row = int_of_float w - 1 in
    if row < 0 || row >= b || abs_float (locator -. w) > 1e-3 then
      Error
        (Printf.sprintf "locator %.6g is not a valid row index" locator)
    else begin
      (* Rows >= 2 must agree with the single-error model. *)
      let consistent = ref true in
      for r = 2 to d - 1 do
        let expect = d0 *. (w ** float_of_int r) in
        let got = Mat.get delta r i in
        let slack = Float.max thr.(r) (1e-6 *. abs_float expect) in
        if abs_float (got -. expect) > slack then consistent := false
      done;
      if !consistent then Ok (row, d0)
      else Error "higher checksum rows disagree with a single-error fit"
    end
  end

(* Attempt a two-error explanation using four power sums
   m_r = e1*w1^r + e2*w2^r (r = 0..3): classic Prony/BCH decoding. The
   locations are the roots of w^2 - s*w + p with
   s = (m0*m3 - m1*m2) / (m0*m2 - m1^2),
   p = (m1*m3 - m2^2) / (m0*m2 - m1^2). *)
let double_fit ~b ~thr delta i =
  if Mat.rows delta < 4 then
    Error "two-error correction needs d >= 4 checksum rows"
  else begin
    let m0 = Mat.get delta 0 i
    and m1 = Mat.get delta 1 i
    and m2 = Mat.get delta 2 i
    and m3 = Mat.get delta 3 i in
    let den = (m0 *. m2) -. (m1 *. m1) in
    let den_scale = Float.max (thr.(0) *. thr.(2)) (thr.(1) *. thr.(1)) in
    if abs_float den <= 100. *. den_scale then
      Error "degenerate power sums: not a two-error pattern"
    else begin
      let s = ((m0 *. m3) -. (m1 *. m2)) /. den in
      let p = ((m1 *. m3) -. (m2 *. m2)) /. den in
      let disc = (s *. s) -. (4. *. p) in
      if disc < 0. then Error "complex locator roots"
      else begin
        let sq = sqrt disc in
        let w1 = Float.round ((s +. sq) /. 2.) in
        let w2 = Float.round ((s -. sq) /. 2.) in
        let ok_root w raw =
          w >= 1.
          && w <= float_of_int b
          && abs_float (raw -. w) <= 0.02
        in
        if
          (not (ok_root w1 ((s +. sq) /. 2.)))
          || (not (ok_root w2 ((s -. sq) /. 2.)))
          || Int.equal (int_of_float w1) (int_of_float w2)
        then Error "locator roots are not two distinct row indices"
        else begin
          let e2 = (m1 -. (w1 *. m0)) /. (w2 -. w1) in
          let e1 = m0 -. e2 in
          Ok ((int_of_float w1 - 1, e1), (int_of_float w2 - 1, e2))
        end
      end
    end
  end

(* Locate-and-patch against the (already trusted) primary copy.
   Factored out so the cross-check below can retry it with either
   replica promoted to primary. *)
let verify_core ?pool ~tol chk tile =
  let stored = Checksum.matrix chk in
  let fresh = Checksum.recompute ?pool chk tile in
  let delta = Mat.sub_mat fresh stored in
  let thr = row_thresholds ~tol stored fresh in
  match bad_columns ~thr delta with
  | [] -> Clean
  | cols ->
      let d = Checksum.d chk in
      if d < 2 then
        Uncorrectable "single checksum row: error detected but not locatable"
      else begin
        let b = Mat.rows tile in
        let failure = ref None in
        (* write the corrected value directly: for non-finite wrongs,
           wrong - magnitude would be NaN *)
        let apply_value i row fixed source acc =
          let wrong = Mat.get tile row i in
          Mat.set tile row i fixed;
          { row; col = i; wrong; fixed; source } :: acc
        in
        let apply i row magnitude acc =
          apply_value i row (Mat.get tile row i -. magnitude) Located acc
        in
        let column_has_anchor i =
          let bad = ref false in
          for r = 0 to b - 1 do
            if is_anchor (Mat.get tile r i) then bad := true
          done;
          !bad
        in
        let fixes =
          List.fold_left
            (fun acc i ->
              match !failure with
              | Some _ -> acc
              | None when column_has_anchor i -> (
                  match anchored_fit ~stored tile i with
                  | Ok (row, truth) -> apply_value i row truth Reconstructed acc
                  | Error msg ->
                      failure := Some (Printf.sprintf "column %d: %s" i msg);
                      acc)
              | None -> (
                  match single_fit ~b ~thr delta i with
                  | Ok (row, e) -> apply i row e acc
                  | Error single_msg -> (
                      if d < 4 then begin
                        failure :=
                          Some (Printf.sprintf "column %d: %s" i single_msg);
                        acc
                      end
                      else
                        match double_fit ~b ~thr delta i with
                        | Ok ((r1, e1), (r2, e2)) ->
                            apply i r2 e2 (apply i r1 e1 acc)
                        | Error double_msg ->
                            failure :=
                              Some
                                (Printf.sprintf "column %d: %s; %s" i
                                   single_msg double_msg);
                            acc)))
            [] cols
          |> List.rev
        in
        match !failure with
        | Some msg -> Uncorrectable msg
        | None ->
            (* Re-verify: patching must have restored consistency. *)
            let fresh' = Checksum.recompute ?pool chk tile in
            let delta' = Mat.sub_mat fresh' stored in
            let thr' = row_thresholds ~tol stored fresh' in
            if bad_columns ~thr:thr' delta' = [] then Corrected fixes
            else
              Uncorrectable
                "residual mismatch after correction (uncorrectable pattern)"
      end

let blit_into ~src ~dst =
  for r = 0 to Mat.rows src - 1 do
    for c = 0 to Mat.cols src - 1 do
      Mat.set dst r c (Mat.get src r c)
    done
  done

let agrees_with ~tol reference fresh =
  let thr = row_thresholds ~tol reference fresh in
  bad_columns ~thr (Mat.sub_mat fresh reference) = []

(* Self-protection cross-check: the primary and shadow replicas
   received bitwise-identical updates, so any disagreement proves one
   replica was corrupted in place. A fresh recalculation from the tile
   arbitrates:

   - the recalculation matches one replica -> the other replica is the
     corrupted one; heal it by overwriting from the agreeing side (the
     tile data is clean, nothing else to do);
   - the recalculation matches neither -> the tile carries an error
     too. Trust each replica in turn as the reference for ordinary
     locate-and-patch; the first trial whose patch re-verifies wins.
     Tile and primary are restored between trials so a failed trial
     cannot leave a mis-patch behind.

   Without this cross-check a corrupted checksum read against a clean
   tile looks exactly like a tile error — and "correcting" it would
   corrupt good data. *)
let cross_check_and_heal ?pool ~tol chk tile =
  let cells = Checksum.copies_differing chk in
  let fresh = Checksum.recompute ?pool chk tile in
  if agrees_with ~tol (Checksum.matrix chk) fresh then begin
    Checksum.resync_shadow chk;
    Checksum_repaired { cells; corrections = [] }
  end
  else if agrees_with ~tol (Checksum.shadow chk) fresh then begin
    Checksum.promote_shadow chk;
    Checksum_repaired { cells; corrections = [] }
  end
  else begin
    let saved_primary = Mat.copy (Checksum.matrix chk) in
    let saved_tile = Mat.copy tile in
    let trial promote =
      promote ();
      match verify_core ?pool ~tol chk tile with
      | Clean -> Some []
      | Corrected fixes -> Some fixes
      | Checksum_repaired _ -> assert false (* verify_core never heals *)
      | Uncorrectable _ ->
          (* roll the trial back so the next reference starts clean *)
          blit_into ~src:saved_tile ~dst:tile;
          blit_into ~src:saved_primary ~dst:(Checksum.matrix chk);
          None
    in
    match trial (fun () -> Checksum.promote_shadow chk) with
    | Some fixes -> Checksum_repaired { cells; corrections = fixes }
    | None -> (
        match trial (fun () -> Checksum.resync_shadow chk) with
        | Some fixes -> Checksum_repaired { cells; corrections = fixes }
        | None ->
            Uncorrectable
              "checksum replicas disagree and neither explains the tile")
  end

let verify ?pool ?(tol = default_tol) chk tile =
  let stored = Checksum.matrix chk in
  if Mat.cols stored <> Mat.cols tile || Checksum.rows chk <> Mat.rows tile
  then invalid_arg "Verify.verify: checksum/tile shape mismatch";
  if Checksum.copies_agree chk then verify_core ?pool ~tol chk tile
  else cross_check_and_heal ?pool ~tol chk tile

(* Fused-mode verification: the kernel already carried the checksum
   chains, so all that is left is one cheap reduction of the tile —
   either the kernel's own in-cache [?fresh] or a single
   [recompute_into] pass — diffed against the carried primary. The
   clean path (overwhelmingly the common one) allocates one d×n
   scratch at most and never forms a delta matrix; any threshold
   breach or replica disagreement escalates to the full [verify]
   ladder, which re-runs its own recompute and keeps every locate /
   patch / heal behavior unchanged. *)
let compare ?pool ?(tol = default_tol) ?fresh chk tile =
  let stored = Checksum.matrix chk in
  if Mat.cols stored <> Mat.cols tile || Checksum.rows chk <> Mat.rows tile
  then invalid_arg "Verify.compare: checksum/tile shape mismatch";
  if not (Checksum.copies_agree chk) then
    cross_check_and_heal ?pool ~tol chk tile
  else begin
    let fresh =
      match fresh with
      | Some f -> f
      | None ->
          let f = Mat.create (Checksum.d chk) (Checksum.b chk) in
          Checksum.recompute_into chk tile ~into:f;
          f
    in
    let thr = row_thresholds ~tol stored fresh in
    let d = Mat.rows stored and bsz = Mat.cols stored in
    let clean = ref true in
    for i = 0 to bsz - 1 do
      for r = 0 to d - 1 do
        let v = Mat.get fresh r i -. Mat.get stored r i in
        if (not (Float.is_finite v)) || abs_float v > thr.(r) then
          clean := false
      done
    done;
    if !clean then Clean else verify_core ?pool ~tol chk tile
  end

let check ?pool ?(tol = default_tol) chk tile =
  (* Detect-only: replica disagreement is corruption by definition. *)
  Checksum.copies_agree chk
  &&
  let stored = Checksum.matrix chk in
  let fresh = Checksum.recompute ?pool chk tile in
  let delta = Mat.sub_mat fresh stored in
  let thr = row_thresholds ~tol stored fresh in
  bad_columns ~thr delta = []

(* A batch of independent tile verifications fanned out across the
   pool — the host-side realization of the paper's Optimization 1,
   which issues the per-block checksum recalculations on N concurrent
   streams instead of serially. Each task owns exactly one tile
   (recompute, locate, patch in place), so outcomes and any in-place
   corrections are identical to running [verify] sequentially, in any
   pool configuration. *)
let run_batch ?pool one jobs =
  let n = Array.length jobs in
  let out = Array.make n Clean in
  let run_one k =
    let chk, tile = jobs.(k) in
    out.(k) <- one chk tile
  in
  let module Pool = Parallel.Pool in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  if Pool.size pool > 1 && n > 1 then
    Pool.parallel_for ~chunk:1 pool ~lo:0 ~hi:n run_one
  else
    for k = 0 to n - 1 do
      run_one k
    done;
  out

let verify_batch ?pool ?(tol = default_tol) jobs =
  run_batch ?pool (fun chk tile -> verify ~tol chk tile) jobs

(* The fused counterpart of [verify_batch]: same fan-out, each task
   running the cheap carried-vs-fresh [compare] instead of a full
   re-reduce-and-locate pass. *)
let compare_batch ?pool ?(tol = default_tol) jobs =
  run_batch ?pool (fun chk tile -> compare ~tol chk tile) jobs

let pp_outcome fmt = function
  | Clean -> Format.pp_print_string fmt "clean"
  | Corrected fixes ->
      Format.fprintf fmt "corrected %d error(s):" (List.length fixes);
      List.iter
        (fun f ->
          Format.fprintf fmt " (%d,%d) %.6g->%.6g" f.row f.col f.wrong f.fixed)
        fixes
  | Checksum_repaired { cells; corrections } ->
      Format.fprintf fmt "checksum repaired (%d cell(s))" cells;
      if corrections <> [] then begin
        Format.fprintf fmt ", then corrected %d error(s):"
          (List.length corrections);
        List.iter
          (fun f ->
            Format.fprintf fmt " (%d,%d) %.6g->%.6g" f.row f.col f.wrong
              f.fixed)
          corrections
      end
  | Uncorrectable msg -> Format.fprintf fmt "uncorrectable: %s" msg
