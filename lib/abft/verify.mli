(** Error detection, location and correction (the paper's §IV-C).

    Given a tile and its stored checksum, [verify] recomputes the
    checksum fresh and compares. A discrepancy [δ₁ᵢ] above the rounding
    threshold in column [i] signals an error in that column; with two
    checksum rows, the row index is [δ₂ᵢ/δ₁ᵢ − 1] and the corrected
    value is the stored one minus [δ₁ᵢ]. Up to one error per column is
    corrected; anything else (non-integral locator, out-of-range row,
    residual mismatch after patching, or a single-row checksum) is
    reported uncorrectable and triggers the driver's
    recovery-by-recomputation.

    The stored checksums are {e not} assumed intact: each block keeps
    two replicas (see {!Checksum}), and [verify] cross-checks them
    bitwise before trusting either. A replica disagreement proves
    in-place checksum corruption; the fresh recalculation arbitrates
    which copy to trust, the corrupted copy is repaired by overwriting,
    and only then does ordinary tile locate-and-patch proceed. A
    corrupted checksum block therefore never patches clean tile data —
    the repair is by recalculation, not by chasing the lying copy. *)

open Matrix

type source =
  | Located  (** δ₂/δ₁ (or Prony) location plus delta subtraction *)
  | Reconstructed
      (** plain-sum reconstruction: the element was overwhelmed
          (Inf/NaN or ≥ the anchor magnitude) so its true value was
          rebuilt as [chk₁ − Σ other elements] of its column *)

type correction = {
  row : int;
  col : int;
  wrong : float;  (** value found in the tile *)
  fixed : float;  (** value written back *)
  source : source;  (** how the fixed value was obtained *)
}

type outcome =
  | Clean  (** checksums matched everywhere *)
  | Corrected of correction list
      (** mismatches found, all located and patched, re-verification
          passed *)
  | Checksum_repaired of { cells : int; corrections : correction list }
      (** the two checksum replicas disagreed in [cells] cells; the
          corrupted replica was repaired by recalculation/overwrite.
          [corrections] lists any tile fixes applied after the repair
          (empty when the tile itself was clean — the common case). *)
  | Uncorrectable of string
      (** mismatch found that the scheme cannot repair; the payload
          explains why (for logs and tests) *)

val default_tol : float
(** Relative rounding threshold, [1e-8]: mismatches below
    [tol × scale] (where scale is the largest checksum magnitude, at
    least 1) are attributed to floating-point rounding. *)

val verify : ?pool:Parallel.Pool.t -> ?tol:float -> Checksum.t -> Mat.t -> outcome
(** [verify ~tol chk tile] detects, locates and corrects in-place
    (square tiles or rectangular panels alike).
    With the paper's [d = 2] checksum rows, up to one error per tile
    column is corrected. With [d >= 4] rows (an extension beyond the
    paper), up to {e two} errors per column are corrected: the column's
    checksum discrepancies [δ_r = Σᵢ eᵢ·(rowᵢ+1)^r] are the power sums
    of the error locations weighted by the error magnitudes, so the two
    locations are the roots of the quadratic [w² − s·w + p] recovered
    from four consecutive power sums (classic Prony/BCH decoding), and
    the magnitudes follow by elimination. Non-integral or out-of-range
    roots fall through to [Uncorrectable].

    When the checksum replicas disagree, the self-protection path runs
    first (see the module preamble) and the result is reported as
    {!Checksum_repaired}. A failed repair trial restores both the tile
    and the primary replica before the next trial, so an
    [Uncorrectable] outcome never leaves a speculative mis-patch
    behind from the replica arbitration.
    @raise Invalid_argument on shape mismatch between [chk] and
    [tile]. *)

val max_correctable_per_column : d:int -> int
(** [1] for [d] of 2 or 3, [2] for [d >= 4], [0] for [d = 1] — what
    {!verify} can repair in one column of a tile. *)

val compare :
  ?pool:Parallel.Pool.t ->
  ?tol:float ->
  ?fresh:Mat.t ->
  Checksum.t ->
  Mat.t ->
  outcome
(** Fused-mode verification: diffs the {e carried} checksum (updated in
    the kernel via {!Checksum.update_fused}) against a fresh reduction
    of the tile — [?fresh] if the kernel computed it in-cache, else one
    allocation-light {!Checksum.recompute_into} pass — instead of
    re-deriving everything. The clean path does no locate/patch work at
    all; any threshold breach or replica disagreement escalates to the
    full {!verify} ladder, so outcomes, corrections and healing are
    identical to [verify] whenever something is wrong. Only pass
    [?fresh] when nothing can have corrupted the tile after the kernel
    that produced it. *)

val check : ?pool:Parallel.Pool.t -> ?tol:float -> Checksum.t -> Mat.t -> bool
(** Detection only — true iff the checksum replicas agree {e and} they
    match a fresh recalculation within tolerance. Neither the tile nor
    the checksum is modified (no healing). *)

val verify_batch :
  ?pool:Parallel.Pool.t ->
  ?tol:float ->
  (Checksum.t * Mat.t) array ->
  outcome array
(** [verify_batch jobs] runs {!verify} on every (checksum, tile) pair
    and returns the outcomes in order. Independent tiles fan out
    across the pool (default {!Parallel.Pool.default}) exactly like
    the paper's N-stream concurrent checksum recalculation
    (Optimization 1); corrections are applied in place per tile, and
    results are identical to a sequential sweep for every pool
    size. *)

val compare_batch :
  ?pool:Parallel.Pool.t ->
  ?tol:float ->
  (Checksum.t * Mat.t) array ->
  outcome array
(** {!compare} over a batch with the same pool fan-out as
    {!verify_batch} — the verification step of a fully fused
    iteration. *)

val pp_outcome : Format.formatter -> outcome -> unit
