open Ppxlib

let rec path_parts (li : Longident.t) =
  match li with
  | Lident s -> [ s ]
  | Ldot (p, s) -> path_parts p @ [ s ]
  | Lapply (_, _) -> []

let path_last li =
  match List.rev (path_parts li) with [] -> "" | last :: _ -> last

let path_string li = String.concat "." (path_parts li)

let ident_path (e : expression) =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

(* The variable at the root of an access path. [x.(i).(j)] parses as
   [Array.get (Array.get x i) j], so for a get-like application we
   recurse into the first positional argument. [!x] is [( ! ) x]. *)
let rec head_ident (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident s; _ } -> Some s
  | Pexp_ident { txt; _ } -> Some (path_last txt)
  | Pexp_field (e, _) -> head_ident e
  | Pexp_apply (f, args) -> (
      let name = match ident_path f with Some p -> path_last p | None -> "" in
      match name with
      | "get" | "unsafe_get" | "!" -> (
          match
            List.find_opt (fun (lbl, _) -> lbl = Nolabel) args
          with
          | Some (_, a) -> head_ident a
          | None -> None)
      | _ -> None)
  | _ -> None

let waiver_attr name (attrs : attributes) =
  let payload_string (p : payload) =
    match p with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ( {
                    pexp_desc = Pexp_constant (Pconst_string (s, _, _));
                    _;
                  },
                  _ );
            _;
          };
        ] ->
        Some s
    | _ -> None
  in
  match List.find_opt (fun (a : attribute) -> a.attr_name.txt = name) attrs with
  | None -> None
  | Some a -> Some (payload_string a.attr_payload)

let float_lit (e : expression) =
  let rec strip (e : expression) =
    match e.pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Lident ("~-." | "~-"); _ }; _ },
          [ (Nolabel, a) ] ) ->
        strip a
    | _ -> e
  in
  match (strip e).pexp_desc with
  | Pexp_constant (Pconst_float (s, _)) -> Some s
  | _ -> None

let mentions_any pred (e : expression) =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt = Lident s; _ } when pred s -> found := true
        | _ -> ());
        if not !found then super#expression e
    end
  in
  it#expression e;
  !found

let pattern_names (p : pattern) =
  let acc = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! pattern p =
        (match p.ppat_desc with
        | Ppat_var v -> acc := v.txt :: !acc
        | Ppat_alias (_, v) -> acc := v.txt :: !acc
        | _ -> ());
        super#pattern p
    end
  in
  it#pattern p;
  !acc

let add_bound_names tbl (e : expression) =
  let add s = Hashtbl.replace tbl s () in
  let add_pat p = List.iter add (pattern_names p) in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_function (params, _, _) ->
            List.iter
              (fun (p : function_param) ->
                match p.pparam_desc with
                | Pparam_val (_, _, pat) -> add_pat pat
                | Pparam_newtype _ -> ())
              params
        | Pexp_let (_, vbs, _) -> List.iter (fun vb -> add_pat vb.pvb_pat) vbs
        | Pexp_for (pat, _, _, _, _) -> add_pat pat
        | Pexp_match (_, cases) | Pexp_try (_, cases) ->
            List.iter (fun c -> add_pat c.pc_lhs) cases
        | _ -> ());
        super#expression e

      method! case c =
        add_pat c.pc_lhs;
        super#case c
    end
  in
  it#expression e

let bound_names e =
  let tbl = Hashtbl.create 16 in
  add_bound_names tbl e;
  tbl

let param_names (e : expression) =
  match e.pexp_desc with
  | Pexp_function (params, _, _) ->
      List.concat_map
        (fun (p : function_param) ->
          match p.pparam_desc with
          | Pparam_val (_, _, pat) -> pattern_names pat
          | Pparam_newtype _ -> [])
        params
  | _ -> []

let fun_body (e : expression) =
  match e.pexp_desc with
  | Pexp_function (_, _, Pfunction_body b) -> b
  | _ -> e

(* ------------------------------------------------------------------ *)
(* Qualified-ident resolution                                          *)
(* ------------------------------------------------------------------ *)

let module_aliases (str : structure) =
  let tbl = Hashtbl.create 8 in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! module_binding mb =
        (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
        | Some name, Pmod_ident { txt; _ } ->
            Hashtbl.replace tbl name (path_parts txt)
        | _ -> ());
        super#module_binding mb
    end
  in
  it#structure str;
  tbl

let resolve_parts aliases parts =
  (* Expand a leading module alias, chasing at most a few hops so an
     alias-of-an-alias still lands on the canonical path. *)
  let rec expand fuel parts =
    match parts with
    | head :: rest when fuel > 0 -> (
        match Hashtbl.find_opt aliases head with
        | Some expansion when expansion <> parts ->
            expand (fuel - 1) (expansion @ rest)
        | _ -> parts)
    | _ -> parts
  in
  expand 3 parts

let resolve_path aliases (li : Longident.t) =
  resolve_parts aliases (path_parts li)

let top_level_value_names (str : structure) =
  let tbl = Hashtbl.create 16 in
  let rec item (si : structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb -> List.iter (fun n -> Hashtbl.replace tbl n ()) (pattern_names vb.pvb_pat))
          vbs
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure items; _ }; _ } ->
        List.iter item items
    | _ -> ()
  in
  List.iter item str;
  tbl
