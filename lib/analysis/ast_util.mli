(** Small parsetree helpers shared by the rule implementations. *)

open Ppxlib

val path_parts : Longident.t -> string list
(** [path_parts (Ldot (Lident "Pool", "parallel_for"))] is
    [["Pool"; "parallel_for"]]. [Lapply] contributes nothing. *)

val path_last : Longident.t -> string
(** Last component of the path (["parallel_for"] above); [""] for a
    pure [Lapply]. *)

val path_string : Longident.t -> string
(** Dotted rendering of the path. *)

val ident_path : expression -> Longident.t option
(** The identifier an expression denotes, if it is a bare identifier. *)

val head_ident : expression -> string option
(** The root variable an access path hangs off: [x] for [x], [x.f],
    [x.(i)], [x.(i).(j)], [!x] — used to decide whether a write target
    is closure-local. *)

val waiver_attr : string -> attributes -> string option option
(** [waiver_attr name attrs] is [None] when no [@name] attribute is
    present, [Some reason] when it is ([reason] is the optional string
    payload, as in [[@abft.waive "why"]]). *)

val float_lit : expression -> string option
(** The textual value of a float constant ([Some "0."] for [0.]),
    looking through a unary minus. *)

val mentions_any : (string -> bool) -> expression -> bool
(** Does the expression reference an identifier satisfying the
    predicate anywhere inside? *)

val bound_names : expression -> (string, unit) Hashtbl.t
(** Every name bound anywhere within the expression: function
    parameters, [let] patterns, [for] indices, [match]/[function] case
    patterns. An over-approximation of "locally bound" that ignores
    scoping order — used for the R1 disjoint-write allowlist, where
    over-approximating keeps false positives down. *)

val add_bound_names : (string, unit) Hashtbl.t -> expression -> unit
(** [bound_names], accumulating into an existing table. *)

val param_names : expression -> string list
(** The parameter names of a (possibly curried) [fun] chain. *)

val fun_body : expression -> expression
(** The body after stripping the leading [fun] chain (the expression
    itself if it is not a function). *)

val module_aliases : structure -> (string, string list) Hashtbl.t
(** Every [module M = Path] alias in the file (top level, nested and
    [let module]): alias name to canonical path parts. *)

val resolve_parts : (string, string list) Hashtbl.t -> string list -> string list

val resolve_path : (string, string list) Hashtbl.t -> Longident.t -> string list
(** Path parts with a leading module alias expanded to its canonical
    path ([module Pool = Parallel.Pool] makes [Pool.parallel_for]
    resolve to [["Parallel"; "Pool"; "parallel_for"]]). *)

val top_level_value_names : structure -> (string, unit) Hashtbl.t
(** Names bound by top-level [let]s of the file (including inside
    nested [module ... struct] items) — the shadowing check for bans
    on stdlib names like [compare]. *)
