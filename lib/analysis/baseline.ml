(* The committed baseline: accepted pre-existing findings, so CI gates
   differentially — only findings *not* in the baseline block.

   A deliberately line-oriented text format (one finding per line,
   tab-separated, '#' comments), not JSON: it diffs cleanly in review,
   merges without tooling, and needs no parser dependency. The
   fingerprint is (rule, file, message) — no line/column — so an
   unrelated edit that shifts a finding a few lines does not churn the
   baseline; the message carries enough identity (binding names,
   producer paths) to keep collisions rare. *)

type entry = { rule : string; file : string; message : string }

let fingerprint_of_finding (f : Finding.t) =
  { rule = f.rule; file = f.file; message = f.message }

(* The format reserves tabs and newlines as separators; our messages
   are single-line ASCII, but sanitize so a hostile message cannot
   smuggle extra entries. *)
let clean s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let to_line e =
  Printf.sprintf "%s\t%s\t%s" (clean e.rule) (clean e.file) (clean e.message)

let of_line line =
  match String.split_on_char '\t' line with
  | [ rule; file; message ] -> Some { rule; file; message }
  | _ -> None

let header =
  "# abftlint baseline: accepted pre-existing findings (differential CI \
   gate).\n\
   # One finding per line: rule<TAB>file<TAB>message. Line numbers are\n\
   # deliberately not part of the fingerprint. Regenerate with\n\
   #   abftlint --baseline <this file> --update-baseline [paths]\n"

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let entries = ref [] in
          (try
             while true do
               let line = String.trim (input_line ic) in
               if line <> "" && line.[0] <> '#' then
                 match of_line line with
                 | Some e -> entries := e :: !entries
                 | None -> ()
             done
           with End_of_file -> ());
          Ok (List.rev !entries))

let save path findings =
  let entries =
    findings
    |> List.filter Finding.is_blocking
    |> List.map fingerprint_of_finding
    |> List.map to_line
    |> List.sort_uniq String.compare
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc header;
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        entries)

let apply entries findings =
  let used = Hashtbl.create 16 in
  let matches (f : Finding.t) e =
    e.rule = f.Finding.rule && e.file = f.Finding.file
    && e.message = f.Finding.message
  in
  let findings =
    List.map
      (fun (f : Finding.t) ->
        if not (Finding.is_blocking f) then f
        else
          match List.find_opt (matches f) entries with
          | Some e ->
              Hashtbl.replace used (to_line e) ();
              { f with Finding.baselined = true }
          | None -> f)
      findings
  in
  let stale =
    List.filter (fun e -> not (Hashtbl.mem used (to_line e))) entries
  in
  (findings, stale)
