(** The committed baseline/suppression file: accepted pre-existing
    findings, for differential CI gating. Line-oriented text
    ([rule<TAB>file<TAB>message], ['#'] comments); the fingerprint
    deliberately omits line/column so unrelated edits don't churn it. *)

type entry = { rule : string; file : string; message : string }

val fingerprint_of_finding : Finding.t -> entry

val load : string -> (entry list, string) result
(** [Error] carries the IO failure message. Unparsable lines are
    skipped. *)

val save : string -> Finding.t list -> unit
(** Write the blocking findings' fingerprints (sorted, deduplicated)
    with an explanatory header — the [--update-baseline] path. *)

val apply : entry list -> Finding.t list -> Finding.t list * entry list
(** Demote blocking findings matching an entry to [baselined]; also
    return the stale entries (those that matched nothing — debt that
    has since been paid and should be pruned). *)
