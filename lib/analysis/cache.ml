(* The incremental cache: per-file analysis results keyed by a content
   digest, so a warm run re-parses nothing that did not change.

   The key digests the cache format version, the selected rule ids,
   the file path and the file contents — any of those changing misses
   the cache and recomputes. Entries are [Marshal]ed behind a magic
   header; a corrupt, truncated or stale-format entry simply reads as
   a miss (the cache is an accelerator, never a source of truth). *)

(* Bump when Ir/Index extraction or the per-file rules change shape:
   stale summaries must never be deserialized into new code. *)
let version = "1"

let magic = "abftlint-cache-" ^ version ^ "\n"

type entry =
  | Parsed of Ir.file_summary * Finding.t list
      (* summary + the per-file (syntactic) rules' findings, with
         waiver spans already applied *)
  | Failed of string  (* parse error, cached so broken files are stable *)

let key ~rules_sig ~file source =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ magic; rules_sig; file; source ]))

let entry_path dir key = Filename.concat dir (key ^ ".bin")

let load ~dir key =
  let path = entry_path dir key in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          (try
             let header = really_input_string ic (String.length magic) in
             if header <> magic then None
             else Some (Marshal.from_channel ic : entry)
           with _ -> None)
          [@abft.waive
            "the cache is an accelerator, never a source of truth: any \
             corrupt, truncated or stale entry must read as a miss"])

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let store ~dir key entry =
  try
    mkdir_p dir;
    let path = entry_path dir key in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        Marshal.to_channel oc entry []);
    (* atomic publish so a concurrent reader never sees a torn entry *)
    Sys.rename tmp path
  with Sys_error _ -> ()
