(** Content-digest incremental cache for per-file analysis results: a
    warm run re-parses only files whose contents (or the rule
    selection, or the cache format) changed. *)

val version : string
(** Cache format version; part of every key, so bumping it invalidates
    all stored entries. *)

type entry =
  | Parsed of Ir.file_summary * Finding.t list
      (** phase-1 summary + the syntactic (per-file) rules' findings *)
  | Failed of string  (** parse error message *)

val key : rules_sig:string -> file:string -> string -> string
(** Digest of format version, selected rule ids, path and contents. *)

val load : dir:string -> string -> entry option
(** A corrupt/missing/stale entry reads as a miss, never an error. *)

val store : dir:string -> string -> entry -> unit
(** Creates [dir] if needed; writes atomically; IO failures are
    swallowed (the cache is best-effort). *)
