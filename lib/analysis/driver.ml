(* The two-phase driver.

   Phase 1, per file (cacheable by content digest): parse, lower to
   the IR summary, run the syntactic (File-kind) rules, apply the
   file's waiver spans. Phase 2, whole program: build the index from
   all summaries — cached or fresh — and run the dataflow
   (Project-kind) rules over it, then the cross-cutting post-passes:
   waiver spans for the project findings, the stale-waiver check, and
   baseline demotion.

   The cache stores phase-1 results only; phase 2 is cheap (events,
   not parsetrees) and always runs, so a warm run re-parses nothing
   yet still sees whole-program findings move when any one file
   changed. *)

type report = {
  findings : Finding.t list;
  errors : (string * string) list;
  files_checked : int;
  files_parsed : int;
  stale_baseline : Baseline.entry list;
}

let version = "2.0"

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  Ppxlib.Parse.implementation lexbuf

let run_file_rules rules ~file str =
  List.concat_map
    (fun (r : Rules.t) ->
      match r.Rules.kind with
      | Rules.File check -> check ~file str
      | Rules.Project _ -> [])
    rules

let run_project_rules rules idx =
  List.concat_map
    (fun (r : Rules.t) ->
      match r.Rules.kind with
      | Rules.Project check -> check idx
      | Rules.File _ -> [])
    rules

(* ------------------------------------------------------------------ *)
(* Waiver spans and the stale-waiver check                             *)
(* ------------------------------------------------------------------ *)

(* [@abft.unverified] declares a read the ABFT layer deliberately does
   not check — it answers R2/R6 and nothing else. [@abft.waive] is the
   generic suppression for every other rule. *)
let span_matches_rule (w : Ir.waiver) rule =
  let unverified_rules = [ "R2"; "R6" ] in
  match w with
  | Ir.No_waiver -> false
  | Ir.Unverified _ -> List.mem rule unverified_rules
  | Ir.Waive _ -> not (List.mem rule unverified_rules)

let apply_waiver_spans spans findings =
  List.map
    (fun (f : Finding.t) ->
      if f.Finding.waived || f.Finding.baselined then f
      else
        match
          List.find_opt
            (fun ((span : Ir.loc), w) ->
              span_matches_rule w f.Finding.rule
              && Ir.contains_finding span ~file:f.Finding.file
                   ~line:f.Finding.line ~col:f.Finding.col)
            spans
        with
        | Some (_, w) ->
            {
              f with
              Finding.waived = true;
              waiver_reason = Ir.waiver_reason w;
            }
        | None -> f)
    findings

(* A waiver that suppresses nothing is debt in the other direction:
   the finding it answered was fixed (or the rule moved on) and the
   attribute now only misleads readers. Only meaningful when the full
   rule set ran — under --rules a waiver's rule may simply be off. *)
let stale_waiver_rule = "W0"

let stale_waiver_findings summaries findings =
  List.concat_map
    (fun (fs : Ir.file_summary) ->
      List.filter_map
        (fun ((span : Ir.loc), (w : Ir.waiver)) ->
          (* A waiver is "used" when a waived finding sits inside its
             span — or, for attributes the dataflow rules consume
             through the IR (a tainted binding's producer waives the
             finding at the *consuming* call, outside the attribute's
             own span), when a waived finding in the same file carries
             this waiver's reason. *)
          let used =
            List.exists
              (fun (f : Finding.t) ->
                f.Finding.waived
                && (Ir.contains_finding span ~file:f.Finding.file
                      ~line:f.Finding.line ~col:f.Finding.col
                   || (f.Finding.file = span.Ir.file
                      && f.Finding.waiver_reason <> None
                      && f.Finding.waiver_reason = Ir.waiver_reason w)))
              findings
          in
          if used then None
          else
            let attr, hint =
              match w with
              | Ir.Unverified _ -> ("[@abft.unverified]", "R2/R6")
              | _ -> ("[@abft.waive]", "any rule")
            in
            Some
              (Finding.make ~rule:stale_waiver_rule
                 ~loc:(Ir.to_location span)
                 (Printf.sprintf
                    "stale waiver: this %s attribute suppresses no %s \
                     finding any more; delete it (reason was%s)"
                    attr hint
                    (match Ir.waiver_reason w with
                    | Some r -> ": " ^ r
                    | None -> " not given"))))
        fs.Ir.waiver_spans)
    summaries

(* ------------------------------------------------------------------ *)
(* Per-file phase                                                      *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let analyze_source ~rules ~file source : Cache.entry =
  match parse ~file source with
  | str ->
      let summary = Index.summarize ~file str in
      let findings =
        apply_waiver_spans summary.Ir.waiver_spans
          (run_file_rules rules ~file str)
      in
      Cache.Parsed (summary, findings)
  | exception exn -> (
      match Ppxlib.Location.Error.of_exn exn with
      | Some err -> Cache.Failed (Ppxlib.Location.Error.message err)
      | None -> Cache.Failed (Printexc.to_string exn))

(* Whether the default (complete) rule set is running — the gate for
   the stale-waiver post-pass. *)
let full_rule_set rules =
  List.length rules = List.length Rules.all
  && List.for_all2 (fun (a : Rules.t) (b : Rules.t) -> a.Rules.id = b.Rules.id)
       rules Rules.all

let finish ~rules ~summaries ~findings ~baseline =
  let idx = Index.build summaries in
  let spans =
    List.concat_map (fun (fs : Ir.file_summary) -> fs.Ir.waiver_spans)
      summaries
  in
  let proj = apply_waiver_spans spans (run_project_rules rules idx) in
  let all = findings @ proj in
  let all =
    if full_rule_set rules then all @ stale_waiver_findings summaries all
    else all
  in
  let all, stale_baseline =
    match baseline with
    | None -> (all, [])
    | Some entries -> Baseline.apply entries all
  in
  (List.sort Finding.order all, stale_baseline)

let lint_string ?(rules = Rules.all) ~file source =
  match analyze_source ~rules ~file source with
  | Cache.Failed msg -> failwith msg
  | Cache.Parsed (summary, findings) ->
      fst (finish ~rules ~summaries:[ summary ] ~findings ~baseline:None)

let lint_file ?(rules = Rules.all) path =
  match read_file path with
  | exception Sys_error e -> Error e
  | source -> (
      match analyze_source ~rules ~file:path source with
      | Cache.Failed msg -> Error msg
      | Cache.Parsed (summary, findings) ->
          Ok (fst (finish ~rules ~summaries:[ summary ] ~findings ~baseline:None)))

(* ------------------------------------------------------------------ *)
(* File discovery                                                      *)
(* ------------------------------------------------------------------ *)

(* Directories that never hold project sources. *)
let skip_dir name =
  String.length name > 0
  && (name.[0] = '_' || name.[0] = '.')

let collect_ml_files paths =
  let files = ref [] in
  let errors = ref [] in
  let rec walk ~explicit path =
    if not (Sys.file_exists path) then
      errors := (path, "no such file or directory") :: !errors
    else if Sys.is_directory path then
      match Sys.readdir path with
      | entries ->
          Array.sort String.compare entries;
          Array.iter
            (fun entry ->
              if not (skip_dir entry) then
                walk ~explicit:false (Filename.concat path entry))
            entries
      | exception Sys_error e -> errors := (path, e) :: !errors
    else if explicit || Filename.check_suffix path ".ml" then
      files := path :: !files
  in
  List.iter (walk ~explicit:true) paths;
  (List.rev !files, List.rev !errors)

(* ------------------------------------------------------------------ *)
(* The full run                                                        *)
(* ------------------------------------------------------------------ *)

let run ?(rules = Rules.all) ?cache_dir ?baseline paths =
  let files, path_errors = collect_ml_files paths in
  let rules_sig =
    String.concat "," (List.map (fun (r : Rules.t) -> r.Rules.id) rules)
  in
  let summaries = ref [] in
  let file_findings = ref [] in
  let errors = ref (List.rev path_errors) in
  let parsed = ref 0 in
  List.iter
    (fun file ->
      match read_file file with
      | exception Sys_error e -> errors := (file, e) :: !errors
      | source ->
          let key = Cache.key ~rules_sig ~file source in
          let cached =
            match cache_dir with
            | None -> None
            | Some dir -> Cache.load ~dir key
          in
          let entry =
            match cached with
            | Some e -> e
            | None ->
                incr parsed;
                let e = analyze_source ~rules ~file source in
                (match cache_dir with
                | Some dir -> Cache.store ~dir key e
                | None -> ());
                e
          in
          (match entry with
          | Cache.Parsed (summary, fs) ->
              summaries := summary :: !summaries;
              file_findings := List.rev_append fs !file_findings
          | Cache.Failed msg -> errors := (file, msg) :: !errors))
    files;
  let findings, stale_baseline =
    finish ~rules ~summaries:(List.rev !summaries)
      ~findings:(List.rev !file_findings) ~baseline
  in
  {
    findings;
    errors = List.rev !errors;
    files_checked = List.length files;
    files_parsed = !parsed;
    stale_baseline;
  }

let blocking r = List.filter Finding.is_blocking r.findings

let human_report r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (file, msg) ->
      Buffer.add_string buf (Printf.sprintf "%s: error: %s\n" file msg))
    r.errors;
  List.iter
    (fun f ->
      Buffer.add_string buf (Finding.to_human f);
      Buffer.add_char buf '\n')
    r.findings;
  List.iter
    (fun (e : Baseline.entry) ->
      Buffer.add_string buf
        (Printf.sprintf
           "stale baseline entry (prune it): %s %s: %s\n" e.Baseline.rule
           e.Baseline.file e.Baseline.message))
    r.stale_baseline;
  let nblock = List.length (blocking r) in
  let nbaselined =
    List.length (List.filter (fun f -> f.Finding.baselined) r.findings)
  in
  let nwaived = List.length r.findings - nblock - nbaselined in
  Buffer.add_string buf
    (Printf.sprintf
       "abftlint: %d file%s checked (%d parsed, %d cached), %d blocking \
        finding%s, %d waived, %d baselined, %d error%s\n"
       r.files_checked
       (if r.files_checked = 1 then "" else "s")
       r.files_parsed
       (max 0 (r.files_checked - r.files_parsed))
       nblock
       (if nblock = 1 then "" else "s")
       nwaived nbaselined (List.length r.errors)
       (if List.length r.errors = 1 then "" else "s"));
  Buffer.contents buf

let json_report r =
  (* Reuse the finding serializer; errors ride along so CI archives one
     self-contained artifact. *)
  let body = Finding.report_json ~tool_version:version r.findings in
  let errors =
    String.concat ","
      (List.map
         (fun (file, msg) ->
           Printf.sprintf "{\"file\":\"%s\",\"message\":\"%s\"}"
             (Finding.json_escape file) (Finding.json_escape msg))
         r.errors)
  in
  let stale =
    String.concat ","
      (List.map
         (fun (e : Baseline.entry) ->
           Printf.sprintf "{\"rule\":\"%s\",\"file\":\"%s\",\"message\":\"%s\"}"
             (Finding.json_escape e.Baseline.rule)
             (Finding.json_escape e.Baseline.file)
             (Finding.json_escape e.Baseline.message))
         r.stale_baseline)
  in
  (* body ends with "]}"; splice the extra fields before the close. *)
  String.sub body 0 (String.length body - 1)
  ^ Printf.sprintf
      ",\"files_checked\":%d,\"files_parsed\":%d,\"errors\":[%s],\"stale_baseline\":[%s]}"
      r.files_checked r.files_parsed errors stale

let sarif_report ?(rules = Rules.all) r =
  Sarif.report ~tool_version:version ~rules ~findings:r.findings
    ~errors:r.errors

let exit_code r =
  if r.errors <> [] then 2 else if blocking r <> [] then 1 else 0
