type report = {
  findings : Finding.t list;
  errors : (string * string) list;
  files_checked : int;
}

let version = "1.0"

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  Ppxlib.Parse.implementation lexbuf

let run_rules rules ~file str =
  List.concat_map (fun (r : Rules.t) -> r.Rules.check ~file str) rules

let lint_string ?(rules = Rules.all) ~file source =
  run_rules rules ~file (parse ~file source)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?(rules = Rules.all) path =
  match read_file path with
  | exception Sys_error e -> Error e
  | source -> (
      match parse ~file:path source with
      | str -> Ok (run_rules rules ~file:path str)
      | exception exn -> (
          match Ppxlib.Location.Error.of_exn exn with
          | Some err -> Error (Ppxlib.Location.Error.message err)
          | None -> Error (Printexc.to_string exn)))

(* Directories that never hold project sources. *)
let skip_dir name =
  String.length name > 0
  && (name.[0] = '_' || name.[0] = '.')

let collect_ml_files paths =
  let files = ref [] in
  let errors = ref [] in
  let rec walk ~explicit path =
    if not (Sys.file_exists path) then
      errors := (path, "no such file or directory") :: !errors
    else if Sys.is_directory path then
      match Sys.readdir path with
      | entries ->
          Array.sort String.compare entries;
          Array.iter
            (fun entry ->
              if not (skip_dir entry) then
                walk ~explicit:false (Filename.concat path entry))
            entries
      | exception Sys_error e -> errors := (path, e) :: !errors
    else if explicit || Filename.check_suffix path ".ml" then
      files := path :: !files
  in
  List.iter (walk ~explicit:true) paths;
  (List.rev !files, List.rev !errors)

let run ?(rules = Rules.all) paths =
  let files, path_errors = collect_ml_files paths in
  let findings = ref [] in
  let errors = ref (List.rev path_errors) in
  List.iter
    (fun file ->
      match lint_file ~rules file with
      | Ok fs -> findings := List.rev_append fs !findings
      | Error e -> errors := (file, e) :: !errors)
    files;
  {
    findings = List.sort Finding.order !findings;
    errors = List.rev !errors;
    files_checked = List.length files;
  }

let blocking r = List.filter Finding.is_blocking r.findings

let human_report r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (file, msg) ->
      Buffer.add_string buf (Printf.sprintf "%s: error: %s\n" file msg))
    r.errors;
  List.iter
    (fun f ->
      Buffer.add_string buf (Finding.to_human f);
      Buffer.add_char buf '\n')
    r.findings;
  let nblock = List.length (blocking r) in
  let nwaived = List.length r.findings - nblock in
  Buffer.add_string buf
    (Printf.sprintf
       "abftlint: %d file%s checked, %d blocking finding%s, %d waived, %d \
        error%s\n"
       r.files_checked
       (if r.files_checked = 1 then "" else "s")
       nblock
       (if nblock = 1 then "" else "s")
       nwaived (List.length r.errors)
       (if List.length r.errors = 1 then "" else "s"));
  Buffer.contents buf

let json_report r =
  (* Reuse the finding serializer; errors ride along so CI archives one
     self-contained artifact. *)
  let body = Finding.report_json ~tool_version:version r.findings in
  let errors =
    String.concat ","
      (List.map
         (fun (file, msg) ->
           Printf.sprintf "{\"file\":\"%s\",\"message\":\"%s\"}"
             (Finding.json_escape file) (Finding.json_escape msg))
         r.errors)
  in
  (* body ends with "]}"; splice the extra fields before the close. *)
  String.sub body 0 (String.length body - 1)
  ^ Printf.sprintf ",\"files_checked\":%d,\"errors\":[%s]}" r.files_checked
      errors

let exit_code r =
  if r.errors <> [] then 2 else if blocking r <> [] then 1 else 0
