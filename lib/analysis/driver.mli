(** The two-phase analysis driver: file discovery, phase-1 per-file
    parsing/extraction (behind the incremental cache), phase-2
    whole-program dataflow, and the report/exit-code contracts. *)

type report = {
  findings : Finding.t list;  (** sorted by file/line/col/rule *)
  errors : (string * string) list;  (** file, message — unreadable/unparsable *)
  files_checked : int;
  files_parsed : int;
      (** files actually parsed this run; a warm-cache run reports 0 *)
  stale_baseline : Baseline.entry list;
      (** baseline entries that matched no finding (paid-off debt) *)
}

val version : string

val lint_string :
  ?rules:Rules.t list -> file:string -> string -> Finding.t list
(** Lint source text directly (the unit tests' entry point). Project
    rules see a one-file program. The stale-waiver check (rule [W0])
    runs only with the full default rule set.
    @raise Failure on a syntax error. *)

val lint_file : ?rules:Rules.t list -> string -> (Finding.t list, string) result

val collect_ml_files : string list -> string list * (string * string) list
(** Expand paths: a file is taken as-is, a directory is walked
    recursively for [.ml] files, skipping [_build]-style and hidden
    directories. Returns (files, errors-for-missing-paths). *)

val run :
  ?rules:Rules.t list ->
  ?cache_dir:string ->
  ?baseline:Baseline.entry list ->
  string list ->
  report
(** Lint all [.ml] files reachable from the given paths. With
    [cache_dir], phase-1 results are reused for files whose contents
    did not change (phase 2 always runs). With [baseline], matching
    blocking findings are demoted to [baselined]. *)

val human_report : report -> string

val json_report : report -> string

val sarif_report : ?rules:Rules.t list -> report -> string
(** SARIF 2.1.0; [rules] populates the tool's rule metadata. *)

val exit_code : report -> int
(** 0 clean (waived/baselined-only findings are clean), 1 blocking
    findings, 2 file/parse errors. *)
