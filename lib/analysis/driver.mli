(** File discovery, parsing and rule execution for `abftlint`. *)

type report = {
  findings : Finding.t list;  (** sorted by file/line/col/rule *)
  errors : (string * string) list;  (** file, message — unreadable/unparsable *)
  files_checked : int;
}

val version : string

val lint_string :
  ?rules:Rules.t list -> file:string -> string -> Finding.t list
(** Lint source text directly (the unit tests' entry point).
    @raise Failure on a syntax error. *)

val lint_file : ?rules:Rules.t list -> string -> (Finding.t list, string) result

val collect_ml_files : string list -> string list * (string * string) list
(** Expand paths: a file is taken as-is, a directory is walked
    recursively for [.ml] files, skipping [_build]-style and hidden
    directories. Returns (files, errors-for-missing-paths). *)

val run : ?rules:Rules.t list -> string list -> report
(** Lint all [.ml] files reachable from the given paths. *)

val human_report : report -> string

val json_report : report -> string

val exit_code : report -> int
(** 0 clean (waived-only findings are clean), 1 blocking findings,
    2 file/parse errors. *)
