type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  waived : bool;
  waiver_reason : string option;
  baselined : bool;
}

let make ~rule ~(loc : Ppxlib.Location.t) ?(waived = false) ?waiver_reason
    message =
  let p = loc.loc_start in
  {
    rule;
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    message;
    waived;
    waiver_reason;
    baselined = false;
  }

let order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let is_blocking t = not (t.waived || t.baselined)

let to_human t =
  let note =
    if t.waived then
      match t.waiver_reason with
      | Some r -> Printf.sprintf " (waived: %s)" r
      | None -> " (waived)"
    else if t.baselined then " (baselined)"
    else ""
  in
  Printf.sprintf "%s:%d:%d: [%s] %s%s" t.file t.line t.col t.rule t.message
    note

(* The messages we emit are ASCII, but file paths and waiver reasons
   are arbitrary; escaping comes from the repo's one shared JSON
   escaper. *)
let json_escape = Obs.Json.escape

let to_json t =
  let reason =
    match t.waiver_reason with
    | Some r -> Printf.sprintf ",\"waiver_reason\":\"%s\"" (json_escape r)
    | None -> ""
  in
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\",\"waived\":%b,\"baselined\":%b%s}"
    (json_escape t.rule) (json_escape t.file) t.line t.col
    (json_escape t.message) t.waived t.baselined reason

let report_json ~tool_version findings =
  let blocking = List.filter is_blocking findings in
  let nbaselined = List.length (List.filter (fun f -> f.baselined) findings) in
  let waived =
    List.length findings - List.length blocking - nbaselined
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"tool\":\"abftlint\",\"version\":\"%s\",\"blocking\":%d,\"waived\":%d,\"baselined\":%d,\"findings\":["
       (json_escape tool_version)
       (List.length blocking) waived nbaselined);
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (to_json f))
    findings;
  Buffer.add_string buf "]}";
  Buffer.contents buf
