(** A single linter finding: one rule violation (or waived/baselined
    violation) anchored to a source location. *)

type t = {
  rule : string;  (** rule id, e.g. ["R1"] *)
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports *)
  message : string;
  waived : bool;  (** carried an [@abft.*] waiver attribute *)
  waiver_reason : string option;  (** payload of the waiver, if any *)
  baselined : bool;
      (** matched an entry of the committed baseline file: accepted
          pre-existing debt, reported but not blocking *)
}

val make :
  rule:string ->
  loc:Ppxlib.Location.t ->
  ?waived:bool ->
  ?waiver_reason:string ->
  string ->
  t
(** [make ~rule ~loc msg] anchors [msg] at the start of [loc].
    Findings are never born baselined; [Baseline.apply] demotes them. *)

val order : t -> t -> int
(** Sort key: file, line, column, rule. *)

val is_blocking : t -> bool
(** A finding blocks (non-zero exit) unless it is waived or baselined. *)

val to_human : t -> string
(** One [file:line:col: [rule] message] line (plus waiver/baseline
    note). *)

val to_json : t -> string
(** The finding as one JSON object (no trailing newline). *)

val report_json : tool_version:string -> t list -> string
(** Machine-readable report: counts plus the full finding list. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)
