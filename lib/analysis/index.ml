(* Phase 1 of the whole-program analysis: lower each parsed file into
   the event IR ([summarize]) and assemble the project index ([build]).

   The index resolves cross-module calls through a per-module
   definition table (a file's module is its capitalized basename, plus
   any nested [module ... struct] blocks) and computes three function
   summaries by fixpoint over the call graph:

   - [sources]       — defs whose result is a taint source (their body's
                       tail call is [Blas3.*_alloc], a [Checksum]-family
                       [encode*], or another source def);
   - [sanitizers]    — defs that verify something (call into [Verify],
                       a [verify*] function, a checksum [check*]/
                       [compare*], or a recovery rung);
   - [stat_updaters] — defs that visibly account (mutate a field, bump
                       a ref/counter, or call another updater).

   The dataflow rules R6–R8 consult these summaries, which is what
   makes them interprocedural: a driver helper that wraps
   [Blas3.gemm_alloc] taints its callers' bindings, and a local
   [mark_degraded] counts as accounting at its call sites. *)

open Ppxlib

let module_name_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let attr_waiver attrs : Ir.waiver =
  match Ast_util.waiver_attr "abft.waive" attrs with
  | Some r -> Waive r
  | None -> (
      match Ast_util.waiver_attr "abft.unverified" attrs with
      | Some r -> Unverified r
      | None -> No_waiver)

(* Bare identifiers mentioned anywhere in an expression, deduplicated
   in first-seen order. *)
let idents_of (e : expression) =
  let acc = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt = Lident s; _ } ->
            if not (List.mem s !acc) then acc := s :: !acc
        | _ -> ());
        super#expression e
    end
  in
  it#expression e;
  List.rev !acc

let is_stat_op = function "incr" | "decr" | ":=" -> true | _ -> false

let has_stat_update (e : expression) =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_setfield _ -> found := true
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
          when is_stat_op (Ast_util.path_last txt) ->
            found := true
        | _ -> ());
        if not !found then super#expression e
    end
  in
  it#expression e;
  !found

(* A handler body that re-raises — or terminates the process visibly
   ([exit], [failwith], [invalid_arg]) — does not swallow the failure;
   R8 treats either as sound. *)
let has_raise (e : expression) =
  Ast_util.mentions_any
    (function
      | "raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit" ->
          true
      | _ -> false)
    e

let calls_of aliases (e : expression) =
  let acc = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
            acc := Ast_util.resolve_path aliases txt :: !acc
        | _ -> ());
        super#expression e
    end
  in
  it#expression e;
  List.rev !acc

let exn_path_of aliases (arg : expression) =
  match arg.pexp_desc with
  | Pexp_construct ({ txt; _ }, _) -> Ast_util.resolve_path aliases txt
  | Pexp_ident { txt; _ } -> Ast_util.resolve_path aliases txt
  | _ -> []

let rec handler_catches aliases (p : pattern) =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> [ Ast_util.resolve_path aliases txt ]
  | Ppat_exception inner | Ppat_alias (inner, _) ->
      handler_catches aliases inner
  | Ppat_or (a, b) -> handler_catches aliases a @ handler_catches aliases b
  | _ -> []

(* The event extractor. One instance walks one top-level binding; the
   events of nested closures and local functions flatten into the
   enclosing def's list in pre-order (source order for the
   straight-line code the rules patrol). *)
class extractor ~aliases ~(emit : Ir.event -> unit) =
  object (self)
    inherit Ast_traverse.iter as super
    val mutable in_finally = false

    method private eloc (e : expression) = Ir.of_location e.pexp_loc

    method private handler_case (pat : pattern) (c : case) =
      match handler_catches aliases pat with
      | [] -> ()
      | catches ->
          emit
            (Ir.Handler
               {
                 catches;
                 accounted = has_stat_update c.pc_rhs;
                 reraises = has_raise c.pc_rhs;
                 handler_calls = calls_of aliases c.pc_rhs;
                 handler_loc = Ir.of_location pat.ppat_loc;
               })

    method private rhs ?bound (e : expression) =
      match e.pexp_desc with
      | Pexp_apply _ -> self#apply ?bound e
      | Pexp_constraint (inner, _) -> self#rhs ?bound inner
      | _ -> self#expression e

    method private apply ?bound (e : expression) =
      match e.pexp_desc with
      | Pexp_apply
          (({ pexp_desc = Pexp_ident { txt; _ }; _ } as f), args) -> (
          let path = Ast_util.resolve_path aliases txt in
          let walk_args () =
            List.iter (fun (_, a) -> self#expression a) args
          in
          match List.rev path with
          | "start" :: "Obs" :: _ ->
              emit (Ir.Obs_start { bound; start_loc = self#eloc e });
              walk_args ()
          | "stop" :: "Obs" :: _ ->
              emit
                (Ir.Obs_stop
                   {
                     stop_args =
                       List.concat_map (fun (_, a) -> idents_of a) args;
                     stop_loc = self#eloc e;
                   });
              walk_args ()
          | "set_obs" :: _ ->
              emit
                (Ir.Set_obs
                   { set_in_finally = in_finally; set_loc = self#eloc e });
              walk_args ()
          | ("raise" | "raise_notrace") :: [] ->
              (match args with
              | (_, arg) :: _ ->
                  emit
                    (Ir.Raise
                       {
                         exn_path = exn_path_of aliases arg;
                         raise_loc = self#eloc e;
                       })
              | [] -> ());
              walk_args ()
          | (("failwith" | "invalid_arg") as fn) :: [] ->
              (* failwith-style exits are raises for span/handler
                 purposes: they cross an open Obs.start span exactly
                 like an explicit [raise] does *)
              emit
                (Ir.Raise
                   {
                     exn_path =
                       [
                         (if String.equal fn "failwith" then "Failure"
                          else "Invalid_argument");
                       ];
                     raise_loc = self#eloc e;
                   });
              walk_args ()
          | op :: [] when is_stat_op op ->
              emit (Ir.Stat_update { stat_loc = self#eloc e });
              walk_args ()
          | ("incr" | "decr") :: _ ->
              (* counter bumps through a module, e.g. Obs.incr *)
              emit (Ir.Stat_update { stat_loc = self#eloc e });
              walk_args ()
          | "protect" :: "Fun" :: _ ->
              List.iter
                (fun ((lbl : arg_label), a) ->
                  match lbl with
                  | Labelled "finally" ->
                      let saved = in_finally in
                      in_finally <- true;
                      self#expression a;
                      in_finally <- saved
                  | _ -> self#expression a)
                args
          | [] -> walk_args ()
          | _ ->
              let arg_calls =
                List.filter_map
                  (fun (_, (a : expression)) ->
                    match a.pexp_desc with
                    | Pexp_apply
                        ( {
                            pexp_desc = Pexp_ident { txt; _ };
                            pexp_attributes = fattrs;
                            _;
                          },
                          _ ) ->
                        Some
                          ( Ast_util.resolve_path aliases txt,
                            attr_waiver (a.pexp_attributes @ fattrs) )
                    | _ -> None)
                  args
              in
              emit
                (Ir.Call
                   {
                     path;
                     args = List.concat_map (fun (_, a) -> idents_of a) args;
                     arg_calls;
                     bound;
                     waiver =
                       attr_waiver (e.pexp_attributes @ f.pexp_attributes);
                     in_finally;
                     call_loc = self#eloc e;
                   });
              walk_args ())
      | Pexp_apply (f, args) ->
          self#expression f;
          List.iter (fun (_, a) -> self#expression a) args
      | _ -> self#expression e

    method! expression e =
      match e.pexp_desc with
      | Pexp_let (_, vbs, body) ->
          List.iter
            (fun vb ->
              let bound =
                match vb.pvb_pat.ppat_desc with
                | Ppat_var v -> Some v.txt
                | _ -> None
              in
              self#rhs ?bound vb.pvb_expr)
            vbs;
          self#expression body
      | Pexp_apply _ -> self#apply e
      | Pexp_setfield (lhs, _, rhs) ->
          emit (Ir.Stat_update { stat_loc = self#eloc e });
          self#expression lhs;
          self#expression rhs
      | Pexp_try (body, cases) ->
          self#expression body;
          List.iter
            (fun c ->
              self#handler_case c.pc_lhs c;
              Option.iter self#expression c.pc_guard;
              self#expression c.pc_rhs)
            cases
      | Pexp_match (scrut, cases) ->
          self#expression scrut;
          List.iter
            (fun c ->
              (match c.pc_lhs.ppat_desc with
              | Ppat_exception _ -> self#handler_case c.pc_lhs c
              | _ -> ());
              Option.iter self#expression c.pc_guard;
              self#expression c.pc_rhs)
            cases
      | _ -> super#expression e
  end

let rec tail_call aliases (e : expression) =
  match e.pexp_desc with
  | Pexp_let (_, _, body)
  | Pexp_sequence (_, body)
  | Pexp_constraint (body, _) ->
      tail_call aliases body
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      Some (Ast_util.resolve_path aliases txt)
  | _ -> None

let whole_file_span file =
  {
    Ir.file;
    start = { Ir.line = 1; col = 0 };
    stop = { Ir.line = max_int; col = max_int };
  }

let collect_waiver_spans ~file (str : structure) =
  let spans = ref [] in
  let add loc w = spans := (loc, w) :: !spans in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match attr_waiver e.pexp_attributes with
        | No_waiver -> ()
        | w -> add (Ir.of_location e.pexp_loc) w);
        super#expression e

      method! value_binding vb =
        (match attr_waiver vb.pvb_attributes with
        | No_waiver -> ()
        | w -> add (Ir.of_location vb.pvb_loc) w);
        super#value_binding vb
    end
  in
  it#structure str;
  (* floating [@@@abft.waive "reason"] covers the whole file *)
  List.iter
    (fun (si : structure_item) ->
      match si.pstr_desc with
      | Pstr_attribute a -> (
          match attr_waiver [ a ] with
          | No_waiver -> ()
          | w -> add (whole_file_span file) w)
      | _ -> ())
    str;
  List.rev !spans

let summarize ~file (str : structure) : Ir.file_summary =
  let aliases = Ast_util.module_aliases str in
  let defs = ref [] in
  let rec items ~module_name l = List.iter (item ~module_name) l
  and item ~module_name (si : structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let name =
              match vb.pvb_pat.ppat_desc with
              | Ppat_var v -> v.txt
              | _ -> "_"
            in
            let events = ref [] in
            let emit ev = events := ev :: !events in
            let ex = new extractor ~aliases ~emit in
            ex#expression vb.pvb_expr;
            defs :=
              {
                Ir.def_module = module_name;
                def_name = name;
                def_loc = Ir.of_location vb.pvb_loc;
                events = List.rev !events;
                result_call =
                  tail_call aliases (Ast_util.fun_body vb.pvb_expr);
              }
              :: !defs)
          vbs
    | Pstr_module
        {
          pmb_name = { txt = Some m; _ };
          pmb_expr = { pmod_desc = Pmod_structure sub; _ };
          _;
        } ->
        items ~module_name:m sub
    | _ -> ()
  in
  let module_name = module_name_of_file file in
  items ~module_name str;
  {
    Ir.file;
    module_name;
    defs = List.rev !defs;
    waiver_spans = collect_waiver_spans ~file str;
  }

(* ------------------------------------------------------------------ *)
(* The whole-program index                                             *)
(* ------------------------------------------------------------------ *)

type key = string * string (* module, value name *)

type t = {
  files : Ir.file_summary list;
  def_tbl : (key, Ir.def) Hashtbl.t;
  sources : (key, unit) Hashtbl.t;
  sanitizers : (key, unit) Hashtbl.t;
  stat_updaters : (key, unit) Hashtbl.t;
}

let files t = t.files

let prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p
let suffix p s =
  String.length s >= String.length p
  && String.sub s (String.length s - String.length p) (String.length p) = p

let builtin_source path =
  match List.rev path with
  | name :: md :: _ ->
      ((md = "Blas3" || md = "Blas2") && suffix "_alloc" name)
      || ((md = "Checksum" || md = "Duochk" || md = "Panelchk")
         && prefix "encode" name)
  | _ -> false

let builtin_sanitizer path =
  match List.rev path with
  | [] -> false
  | name :: rest -> (
      prefix "verify" name
      (* the solver layer's verification point: a true-residual
         recomputation cross-checked against the recurrence residual *)
      || prefix "residual_check" name
      ||
      match rest with
      | md :: _ ->
          md = "Verify" || md = "Recovery" || md = "Checkpoint"
          || ((md = "Duochk" || md = "Panelchk" || md = "Checksum")
             && (prefix "check" name || prefix "compare" name))
      | [] -> false)

let resolve_def_key t ~current path =
  match List.rev path with
  | [] -> None
  | [ name ] ->
      if Hashtbl.mem t.def_tbl (current, name) then Some (current, name)
      else None
  | name :: md :: _ ->
      if Hashtbl.mem t.def_tbl (md, name) then Some (md, name) else None

let find_def t ~current path =
  Option.map (Hashtbl.find t.def_tbl) (resolve_def_key t ~current path)

let in_set t set ~current path =
  match resolve_def_key t ~current path with
  | Some key -> Hashtbl.mem set key
  | None -> false

let is_source t ~current path =
  builtin_source path || in_set t t.sources ~current path

let is_sanitizer t ~current path =
  builtin_sanitizer path || in_set t t.sanitizers ~current path

let is_stat_updater t ~current path = in_set t t.stat_updaters ~current path

let build files =
  let def_tbl = Hashtbl.create 256 in
  List.iter
    (fun (fs : Ir.file_summary) ->
      List.iter
        (fun (d : Ir.def) ->
          if d.def_name <> "_" then
            Hashtbl.replace def_tbl (d.def_module, d.def_name) d)
        fs.defs)
    files;
  let t =
    {
      files;
      def_tbl;
      sources = Hashtbl.create 16;
      sanitizers = Hashtbl.create 32;
      stat_updaters = Hashtbl.create 32;
    }
  in
  (* Seed + fixpoint. The three summary sets only grow, and each pass
     is linear in the event count, so this terminates quickly. *)
  let changed = ref true in
  let mark set key = if not (Hashtbl.mem set key) then (Hashtbl.replace set key (); changed := true) in
  while !changed do
    changed := false;
    List.iter
      (fun (fs : Ir.file_summary) ->
        List.iter
          (fun (d : Ir.def) ->
            let key = (d.Ir.def_module, d.Ir.def_name) in
            let current = d.Ir.def_module in
            (match d.Ir.result_call with
            | Some p when is_source t ~current p -> mark t.sources key
            | _ -> ());
            List.iter
              (fun (ev : Ir.event) ->
                match ev with
                | Ir.Stat_update _ -> mark t.stat_updaters key
                | Ir.Call c ->
                    if is_sanitizer t ~current c.Ir.path then
                      mark t.sanitizers key;
                    if is_stat_updater t ~current c.Ir.path then
                      mark t.stat_updaters key
                | _ -> ())
              d.Ir.events)
          fs.defs)
      files
  done;
  t
