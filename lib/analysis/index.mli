(** Phase 1 of the whole-program analysis: IR extraction per file and
    the project index (definition table, resolved cross-module call
    graph, fixpoint function summaries) the dataflow rules run over. *)

type t

val module_name_of_file : string -> string
(** [ft.ml] (any directory) -> [Ft]. *)

val summarize : file:string -> Ppxlib.Parsetree.structure -> Ir.file_summary
(** Lower one parsed file into the cacheable IR. *)

val build : Ir.file_summary list -> t
(** Assemble the index: per-module definition table plus the
    source/sanitizer/stat-updater summaries computed by fixpoint over
    the resolved call graph. *)

val files : t -> Ir.file_summary list

val find_def : t -> current:string -> string list -> Ir.def option
(** Resolve a call path to a project definition: a bare ident looks in
    [current] (the calling def's module), a qualified path in its
    second-to-last component's module. *)

val is_source : t -> current:string -> string list -> bool
(** Does a call to this path produce tainted (not-yet-verified) data?
    Builtin: [Blas3.*_alloc] and the checksum [encode*] family; plus
    any project def whose result is a source call. *)

val is_sanitizer : t -> current:string -> string list -> bool
(** Does a call to this path verify its data (clear taint)? Builtin:
    anything under [Verify]/[Recovery]/[Checkpoint], [verify*]
    functions, checksum [check*]/[compare*]; plus any project def that
    calls a sanitizer. *)

val is_stat_updater : t -> current:string -> string list -> bool
(** Does this path resolve to a project def that visibly updates
    stats (field mutation, counter bump, or transitively)? *)

val builtin_source : string list -> bool
val builtin_sanitizer : string list -> bool
