(* The analyzer's intermediate representation.

   Phase 1 of the whole-program analysis lowers each parsed file into
   this IR: a per-definition event list (calls with resolved paths,
   observability span starts/stops, raises, stat updates, exception
   handlers) plus the file's waiver spans. The IR is deliberately
   self-contained — no [Ppxlib.Location.t], no lazy values — so a
   [file_summary] can be marshalled into the incremental cache and a
   warm run can skip the parser entirely.

   Event lists are in pre-order traversal order, which for the
   straight-line driver code the dataflow rules patrol coincides with
   source order. The rules are therefore *lexical* dataflow: "a verify
   call appears before the read", "a stat update appears before the
   raise". That coarseness is the same bargain R2 already makes, and
   it keeps the fixpoint in [Index] trivial. *)

type pos = { line : int; col : int }
(* [line] is 1-based, [col] 0-based, as the compiler reports. *)

type loc = { file : string; start : pos; stop : pos }

type waiver =
  | No_waiver
  | Waive of string option  (* [@abft.waive "reason"] *)
  | Unverified of string option  (* [@abft.unverified "reason"] *)

type call = {
  path : string list;  (* alias-resolved, e.g. ["Blas3"; "gemm_alloc"] *)
  args : string list;  (* bare idents mentioned anywhere in the arguments *)
  arg_calls : (string list * waiver) list;
      (* head paths of arguments that are themselves applications:
         direct value flow from a producer into this call *)
  bound : string option;  (* [let x = f ...] binds the result to [x] *)
  waiver : waiver;
  in_finally : bool;  (* inside a [Fun.protect ~finally:...] thunk *)
  call_loc : loc;
}

type handler = {
  catches : string list list;  (* constructor paths of caught exceptions *)
  accounted : bool;  (* body updates state: setfield / incr / decr / := *)
  reraises : bool;  (* body re-raises *)
  handler_calls : string list list;  (* resolved paths called in the body *)
  handler_loc : loc;
}

type event =
  | Call of call
  | Obs_start of { bound : string option; start_loc : loc }
  | Obs_stop of { stop_args : string list; stop_loc : loc }
  | Set_obs of { set_in_finally : bool; set_loc : loc }
  | Raise of { exn_path : string list; raise_loc : loc }
  | Stat_update of { stat_loc : loc }
  | Handler of handler

type def = {
  def_module : string;  (* enclosing module: file module or nested *)
  def_name : string;  (* "_" for bindings with no single name *)
  def_loc : loc;
  events : event list;  (* pre-order, closures flattened in *)
  result_call : string list option;
      (* resolved head path of the body's tail application, if any:
         a def whose result is a taint source is itself a source *)
}

type file_summary = {
  file : string;
  module_name : string;  (* capitalized basename: ft.ml -> Ft *)
  defs : def list;
  waiver_spans : (loc * waiver) list;
      (* every [@abft.waive]/[@abft.unverified] attribute's carrier span,
         for the generic suppression post-pass and stale-waiver check *)
}

let no_pos = { line = 0; col = 0 }

let of_position (p : Lexing.position) =
  { line = p.pos_lnum; col = p.pos_cnum - p.pos_bol }

let of_location (l : Ppxlib.Location.t) =
  {
    file = l.loc_start.pos_fname;
    start = of_position l.loc_start;
    stop = of_position l.loc_end;
  }

let to_location (l : loc) : Ppxlib.Location.t =
  let mk (p : pos) =
    {
      Lexing.pos_fname = l.file;
      pos_lnum = p.line;
      pos_bol = 0;
      pos_cnum = p.col;
    }
  in
  { loc_start = mk l.start; loc_end = mk l.stop; loc_ghost = false }

let pos_leq a b = a.line < b.line || (a.line = b.line && a.col <= b.col)

let contains (span : loc) (inner : loc) =
  span.file = inner.file
  && pos_leq span.start inner.start
  && pos_leq inner.stop span.stop

let contains_finding (span : loc) ~file ~line ~col =
  span.file = file
  && pos_leq span.start { line; col }
  && pos_leq { line; col } span.stop

let before (a : loc) (b : loc) = pos_leq a.start b.start && a.start <> b.start

let event_loc = function
  | Call c -> c.call_loc
  | Obs_start { start_loc; _ } -> start_loc
  | Obs_stop { stop_loc; _ } -> stop_loc
  | Set_obs { set_loc; _ } -> set_loc
  | Raise { raise_loc; _ } -> raise_loc
  | Stat_update { stat_loc } -> stat_loc
  | Handler h -> h.handler_loc

let waiver_reason = function
  | No_waiver -> None
  | Waive r | Unverified r -> r

let is_waived = function No_waiver -> false | Waive _ | Unverified _ -> true
