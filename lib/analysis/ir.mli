(** The whole-program analyzer's intermediate representation: what
    phase 1 extracts per file and the incremental cache marshals.
    Self-contained (no parsetree types inside), so a cached summary is
    usable without re-parsing the source. *)

type pos = { line : int; col : int }  (** 1-based line, 0-based col *)

type loc = { file : string; start : pos; stop : pos }

type waiver =
  | No_waiver
  | Waive of string option  (** [[@abft.waive "reason"]] *)
  | Unverified of string option  (** [[@abft.unverified "reason"]] *)

type call = {
  path : string list;  (** alias-resolved, e.g. [["Blas3"; "gemm_alloc"]] *)
  args : string list;  (** bare idents mentioned anywhere in the arguments *)
  arg_calls : (string list * waiver) list;
      (** head paths of arguments that are themselves applications *)
  bound : string option;  (** [let x = f ...] binds the result to [x] *)
  waiver : waiver;
  in_finally : bool;  (** inside a [Fun.protect ~finally] thunk *)
  call_loc : loc;
}

type handler = {
  catches : string list list;  (** constructor paths of caught exceptions *)
  accounted : bool;  (** body updates state: setfield / incr / decr / [:=] *)
  reraises : bool;
  handler_calls : string list list;
  handler_loc : loc;
}

type event =
  | Call of call
  | Obs_start of { bound : string option; start_loc : loc }
  | Obs_stop of { stop_args : string list; stop_loc : loc }
  | Set_obs of { set_in_finally : bool; set_loc : loc }
  | Raise of { exn_path : string list; raise_loc : loc }
  | Stat_update of { stat_loc : loc }
  | Handler of handler

type def = {
  def_module : string;
  def_name : string;
  def_loc : loc;
  events : event list;  (** pre-order; closure bodies flattened in *)
  result_call : string list option;
      (** resolved head path of the body's tail application, if any *)
}

type file_summary = {
  file : string;
  module_name : string;  (** capitalized basename: [ft.ml] -> [Ft] *)
  defs : def list;
  waiver_spans : (loc * waiver) list;
}

val no_pos : pos

val of_location : Ppxlib.Location.t -> loc

val to_location : loc -> Ppxlib.Location.t
(** Lossy inverse (no [pos_bol]); good enough for [Finding.make]. *)

val pos_leq : pos -> pos -> bool

val contains : loc -> loc -> bool
(** [contains span inner]: same file and [inner] within [span]. *)

val contains_finding : loc -> file:string -> line:int -> col:int -> bool

val before : loc -> loc -> bool
(** Strictly earlier start position (same-file comparison is the
    caller's concern). *)

val event_loc : event -> loc

val waiver_reason : waiver -> string option

val is_waived : waiver -> bool
