(* R1 — no mutation of captured state inside parallel closures.

   Work items fanned out by [Pool.parallel_for] / [parallel_chunks] /
   [run_tasks] (and the drivers' [par_for] wrapper) execute
   concurrently. A closure passed to one of these sinks must not write
   state it captured from the enclosing scope — [r := ...], [incr],
   [x.field <- ...], [a.(i) <- ...], [Mat.set m i j v] — because two
   items racing on the same cell is exactly the silent-corruption
   failure mode ABFT exists to catch, this time planted in the
   fault-tolerance layer itself.

   Allowlisted disjoint-write idiom: a write is permitted when its
   target is bound inside the work item, or when the write is indexed
   by a name bound inside the work item (typically the item index:
   [out.(k) <- ...] with [k] the closure parameter). Each item then
   owns its slice, so the fan-out is race-free — and the dynamic
   tile-race detector ([ABFT_RACECHECK=1]) cross-checks the claim at
   run time for block writes routed through kernels.

   Waive a deliberate exception with [[@abft.waive "reason"]] on the
   write (or on the whole closure). *)

open Ppxlib

let rule_id = "R1"

let sink_names = [ "parallel_for"; "parallel_chunks"; "run_tasks"; "par_for" ]

(* Mutating calls by last path component: target is the first
   positional argument unless a ~dst label is present (blit). *)
let mutator_names =
  [ "set"; "unsafe_set"; "set_col"; "set_row"; "set_slice"; "blit"; "fill" ]

let is_sink (f : expression) =
  match Ast_util.ident_path f with
  | Some p -> List.mem (Ast_util.path_last p) sink_names
  | None -> false

let check ~file:_ (str : structure) =
  let findings = ref [] in
  let waived_or_add ~loc ~attrs ~closure_attrs msg =
    let waiver =
      match Ast_util.waiver_attr "abft.waive" attrs with
      | Some r -> Some r
      | None -> Ast_util.waiver_attr "abft.waive" closure_attrs
    in
    let f =
      match waiver with
      | None -> Finding.make ~rule:rule_id ~loc msg
      | Some reason ->
          Finding.make ~rule:rule_id ~loc ~waived:true ?waiver_reason:reason
            msg
    in
    findings := f :: !findings
  in
  (* Local [let f x = ...] lambdas seen so far, so a sink argument that
     is a plain identifier ([Pool.parallel_for pool ... run_one]) can be
     resolved to its body. Scoping is approximated: last binding of a
     name wins, which is exact for the straight-line code this rule
     targets. *)
  let local_funs : (string, expression) Hashtbl.t = Hashtbl.create 16 in
  let record_local_funs (vbs : value_binding list) =
    List.iter
      (fun vb ->
        match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
        | Ppat_var v, Pexp_function (_, _, _) ->
            Hashtbl.replace local_funs v.txt vb.pvb_expr
        | _ -> ())
      vbs
  in
  (* Check the body of one work-item closure. [local] accumulates every
     name bound within the item (params, lets, loop indices): writes
     rooted at — or indexed by — such a name are the allowlisted
     disjoint idiom. *)
  let check_closure (closure : expression) =
    let local = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace local n ()) (Ast_util.param_names closure);
    Ast_util.add_bound_names local (Ast_util.fun_body closure);
    let is_local n = Hashtbl.mem local n in
    let target_allowed target indices =
      (match Ast_util.head_ident target with
      | Some n -> is_local n
      | None -> false)
      || List.exists (Ast_util.mentions_any is_local) indices
    in
    let describe target =
      match Ast_util.head_ident target with
      | Some n -> Printf.sprintf "captured `%s`" n
      | None -> "a captured value"
    in
    let body_it =
      object
        inherit Ast_traverse.iter as super

        method! expression e =
          (match e.pexp_desc with
          | Pexp_setfield (target, field, _) ->
              if not (target_allowed target []) then
                waived_or_add ~loc:e.pexp_loc ~attrs:e.pexp_attributes
                  ~closure_attrs:closure.pexp_attributes
                  (Printf.sprintf
                     "mutable field write `%s.%s <- ...` on %s inside a \
                      parallel work item; write only item-owned state or \
                      index by the item binding"
                     (Option.value (Ast_util.head_ident target) ~default:"_")
                     (Ast_util.path_last field.txt)
                     (describe target))
          | Pexp_apply (f, args) -> (
              match Ast_util.ident_path f with
              | None -> ()
              | Some p -> (
                  let name = Ast_util.path_last p in
                  let positional =
                    List.filter_map
                      (fun (lbl, a) -> if lbl = Nolabel then Some a else None)
                      args
                  in
                  match (name, positional) with
                  | ":=", target :: _ ->
                      if not (target_allowed target []) then
                        waived_or_add ~loc:e.pexp_loc ~attrs:e.pexp_attributes
                          ~closure_attrs:closure.pexp_attributes
                          (Printf.sprintf
                             "`:=` on %s inside a parallel work item races \
                              across items; accumulate into item-owned slots \
                              and fold after the batch"
                             (describe target))
                  | ("incr" | "decr"), target :: _ ->
                      if not (target_allowed target []) then
                        waived_or_add ~loc:e.pexp_loc ~attrs:e.pexp_attributes
                          ~closure_attrs:closure.pexp_attributes
                          (Printf.sprintf "`%s` on %s inside a parallel work \
                                           item races across items"
                             name (describe target))
                  | mname, _ when List.mem mname mutator_names ->
                      let target_and_indices =
                        match
                          List.find_opt (fun (lbl, _) -> lbl = Labelled "dst") args
                        with
                        | Some (_, dst) -> Some (dst, List.map snd args)
                        | None -> (
                            match positional with
                            | t :: idx -> Some (t, idx)
                            | [] -> None)
                      in
                      (match target_and_indices with
                      | None -> ()
                      | Some (target, indices) ->
                      if not (target_allowed target indices) then
                        waived_or_add ~loc:e.pexp_loc ~attrs:e.pexp_attributes
                          ~closure_attrs:closure.pexp_attributes
                          (Printf.sprintf
                             "`%s` writes %s inside a parallel work item \
                              without indexing by an item-local binding; \
                              items must write disjoint slices"
                             (Ast_util.path_string p) (describe target)))
                  | _ -> ()))
          | _ -> ());
          super#expression e
      end
    in
    body_it#expression (Ast_util.fun_body closure)
  in
  (* Arguments of a sink application that denote work-item closures. *)
  let closures_of_sink (args : (arg_label * expression) list) =
    List.filter_map
      (fun ((_, a) : arg_label * expression) ->
        match a.pexp_desc with
        | Pexp_function (_, _, _) -> Some a
        | Pexp_ident { txt = Lident n; _ } -> Hashtbl.find_opt local_funs n
        | _ -> None)
      args
  in
  let it =
    object (self)
      inherit Ast_traverse.iter as super

      method! expression e =
        match e.pexp_desc with
        | Pexp_let (_, vbs, body) ->
            record_local_funs vbs;
            List.iter (fun vb -> self#expression vb.pvb_expr) vbs;
            self#expression body
        | Pexp_apply (f, args) when is_sink f ->
            (* Analyze the work-item closures with the full write
               discipline; nested sinks inside them run inline on the
               same item and are covered by the same closure scan, so
               don't re-enter them here. *)
            List.iter check_closure (closures_of_sink args);
            self#expression f;
            List.iter
              (fun (_, a) ->
                match a.pexp_desc with
                | Pexp_function (_, _, _) -> ()
                | _ -> self#expression a)
              args
        | _ -> super#expression e

      method! structure_item item =
        (match item.pstr_desc with
        | Pstr_value (_, vbs) -> record_local_funs vbs
        | _ -> ());
        super#structure_item item
    end
  in
  it#structure str;
  List.rev !findings
