(* R2 — verify-before-read discipline in the FT drivers.

   Enhanced Online-ABFT's invariant (PAPER.md) is that every block is
   verified immediately before it is read. In the FT drivers
   ([lib/cholesky/ft.ml], [lib/qr/ft_qr.ml]) that means a BLAS-3 call
   that consumes blocks — [Blas3.gemm]/[gemm_alloc]/[syrk]/[trsm]/
   [trmm]/[symm] — must be dominated, within the same top-level
   function, by a verification call: anything whose name starts with
   [verify] ([Verify.verify], [verify_blocks], [verify_panel],
   [Verify.verify_batch], ...) or [Verify.check]/[Panelchk.check].

   Dominance is approximated syntactically: some verification call must
   occur at an earlier source position inside the same top-level [let].
   That is deliberately coarse — the scheme decides *which* blocks to
   verify at run time — but it guarantees no driver function ships
   BLAS-3 reads with no verification step at all.

   A BLAS-3 call whose inputs are legitimately unverified (e.g. the
   final residual check, which runs *after* verification on the
   finished factor) must say so explicitly:

     (Blas3.gemm_alloc l l [@abft.unverified "why this read is safe"])

   The waiver is per-call and is reported (as waived) in the JSON
   output, so every exception to the invariant stays visible. *)

open Ppxlib

let rule_id = "R2"

(* Only the FT drivers carry the verify-before-read obligation. *)
let in_scope_basenames = [ "ft.ml"; "ft_qr.ml" ]

let blas_reads = [ "gemm"; "gemm_alloc"; "syrk"; "trsm"; "trmm"; "symm" ]

let is_verify_call (p : Longident.t) =
  let last = Ast_util.path_last p in
  let lower = String.lowercase_ascii last in
  String.length lower >= 6 && String.sub lower 0 6 = "verify"
  ||
  (last = "check"
  &&
  match List.rev (Ast_util.path_parts p) with
  | _ :: m :: _ -> m = "Verify" || m = "Panelchk"
  | _ -> false)

let is_blas_read (p : Longident.t) =
  List.mem (Ast_util.path_last p) blas_reads
  &&
  match List.rev (Ast_util.path_parts p) with
  | _ :: m :: _ -> m = "Blas3"
  | _ -> false

let pos_before (a : Location.t) (b : Location.t) =
  a.loc_start.pos_lnum < b.loc_start.pos_lnum
  || (a.loc_start.pos_lnum = b.loc_start.pos_lnum
     && a.loc_start.pos_cnum < b.loc_start.pos_cnum)

let check ~file (str : structure) =
  if not (List.mem (Filename.basename file) in_scope_basenames) then []
  else begin
    let findings = ref [] in
    (* One top-level binding at a time: collect verify-call positions
       and BLAS-3 read positions, then flag reads no verify precedes. *)
    let check_binding (vb : value_binding) =
      let verifies = ref [] in
      let reads = ref [] in
      let it =
        object
          inherit Ast_traverse.iter as super

          method! expression e =
            (match e.pexp_desc with
            | Pexp_apply (f, _) -> (
                match Ast_util.ident_path f with
                | Some p when is_verify_call p ->
                    verifies := e.pexp_loc :: !verifies
                | Some p when is_blas_read p ->
                    reads := (e, p) :: !reads
                | _ -> ())
            | _ -> ());
            super#expression e
        end
      in
      it#expression vb.pvb_expr;
      List.iter
        (fun ((e : expression), p) ->
          let dominated =
            List.exists (fun v -> pos_before v e.pexp_loc) !verifies
          in
          if not dominated then begin
            let msg =
              Printf.sprintf
                "%s reads blocks with no preceding verification in this \
                 function; verify inputs first or mark the call \
                 [@abft.unverified \"reason\"]"
                (Ast_util.path_string p)
            in
            let f =
              match Ast_util.waiver_attr "abft.unverified" e.pexp_attributes with
              | None -> Finding.make ~rule:rule_id ~loc:e.pexp_loc msg
              | Some reason ->
                  Finding.make ~rule:rule_id ~loc:e.pexp_loc ~waived:true
                    ?waiver_reason:reason msg
            in
            findings := f :: !findings
          end)
        (List.rev !reads)
    in
    List.iter
      (fun (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter check_binding vbs
        | _ -> ())
      str;
    List.rev !findings
  end
