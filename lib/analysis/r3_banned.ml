(* R3 — banned constructs.

   The fault-tolerance layer's own correctness depends on a handful of
   language-level disciplines:

   - no catch-all [try ... with _ ->] (or a bare variable pattern): a
     wildcard handler can swallow a [Verify] failure or the drivers'
     [Recovery] control exception and turn a detected error into silent
     corruption;
   - no polymorphic [=]/[==]/[!=] against float literals and no bare
     [compare]: polymorphic equality on floats is NaN-hostile and on
     matrix/record types compares representation, not value — use
     [Float.equal]/[Float.compare] (exception: [<>] against the [0.]
     and [1.] literals, the BLAS sparsity/identity fast-path idiom,
     which only skips work and never gates a correctness decision);
   - no [Obj.magic];
   - no [List.hd]/[List.nth] in library code: partial, and O(n) access
     hides quadratic sweeps in hot paths.

   Waive a deliberate use by attaching [[@abft.waive "reason"]] to the
   offending expression. *)

open Ppxlib

let rule_id = "R3"

let fast_path_floats = [ "0."; "0.0"; "1."; "1.0" ]

let banned_idents =
  [
    ("Obj.magic", "Obj.magic defeats the type system; model the data instead");
    ("List.hd", "List.hd is partial; match on the list or use arrays");
    ("List.nth", "List.nth is partial and O(n); use an array");
    ( "compare",
      "bare polymorphic compare; use Float.compare / Int.compare / \
       String.compare" );
    ( "Stdlib.compare",
      "polymorphic compare; use Float.compare / Int.compare / String.compare"
    );
  ]

let check ~file:_ (str : structure) =
  (* A file that defines its own top-level [compare] (e.g. the
     carried-vs-fresh [Verify.compare]) shadows the polymorphic one, so
     bare references to it are that function, not Stdlib's. Qualified
     bans ([Stdlib.compare], [List.hd], ...) are unaffected. *)
  let locals = Ast_util.top_level_value_names str in
  let findings = ref [] in
  let add ~loc ?waived ?waiver_reason msg =
    findings :=
      Finding.make ~rule:rule_id ~loc ?waived ?waiver_reason msg :: !findings
  in
  let waiver attrs = Ast_util.waiver_attr "abft.waive" attrs in
  let flag ~loc ~attrs msg =
    match waiver attrs with
    | None -> add ~loc msg
    | Some reason -> add ~loc ~waived:true ?waiver_reason:reason msg
  in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_try (_, cases) ->
            List.iter
              (fun c ->
                let catch_all =
                  match c.pc_lhs.ppat_desc with
                  | Ppat_any | Ppat_var _ -> c.pc_guard = None
                  | _ -> false
                in
                if catch_all then
                  flag ~loc:c.pc_lhs.ppat_loc ~attrs:e.pexp_attributes
                    "catch-all exception handler can swallow Verify/Recovery \
                     failures; match the specific exceptions")
              cases
        | Pexp_ident { txt; loc } ->
            let path = Ast_util.path_string txt in
            let shadowed =
              match txt with
              | Lident name -> Hashtbl.mem locals name
              | _ -> false
            in
            List.iter
              (fun (banned, why) ->
                if path = banned && not shadowed then
                  flag ~loc ~attrs:e.pexp_attributes
                    (Printf.sprintf "banned construct %s: %s" banned why))
              banned_idents
        | Pexp_apply
            ( { pexp_desc = Pexp_ident { txt = Lident op; _ }; _ },
              [ (_, a); (_, b) ] )
          when op = "=" || op = "==" || op = "!=" || op = "<>" -> (
            let lit =
              match Ast_util.float_lit a with
              | Some l -> Some l
              | None -> Ast_util.float_lit b
            in
            match lit with
            | Some l when op = "<>" && List.mem l fast_path_floats ->
                (* sparsity/identity fast path: allowed idiom *)
                ()
            | Some l ->
                flag ~loc:e.pexp_loc ~attrs:e.pexp_attributes
                  (Printf.sprintf
                     "polymorphic %s against float literal %s; use \
                      Float.equal or an explicit <,<=,>,>= comparison"
                     op l)
            | None -> ())
        | _ -> ());
        super#expression e
    end
  in
  it#structure str;
  List.rev !findings
