(* R4 — retry loops must be bounded.

   The resilient scheduling layer (and the numeric drivers' restart
   ladders) lean on one discipline: every retry/restart recursion
   carries an explicit cap. An uncapped retry loop turns a permanent
   fault into a livelock — the failure mode is worse than giving up,
   because nothing is ever reported.

   Heuristic: a [let rec] binding is *retry-ish* when its name or one
   of its parameters mentions retry/attempt/resubmit/restart; it is
   flagged when its body (a) actually recurses into the binding group
   and (b) never consults a cap-like quantity — an identifier or record
   field mentioning max/cap/limit/budget/quota. References through a
   record path ([t.policy.max_retries], [cfg.Config.max_restarts])
   count, matching how the drivers thread their budgets.

   [while] loops get the same bargain: a loop whose condition or body
   mentions a retry-ish identifier must consult a cap somewhere in the
   condition or body, because the serving layer's imperative drain/
   resubmit loops are retry loops in everything but shape.

   Waive a deliberately unbounded loop (e.g. one bounded by an
   exception from below) with [[@abft.waive "reason"]] on the
   binding (or, for a while loop, on the loop expression). *)

open Ppxlib

let rule_id = "R4"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
  in
  m = 0 || go 0

let mentions_token tokens s =
  let s = String.lowercase_ascii s in
  List.exists (fun t -> contains s t) tokens

let retryish = mentions_token [ "retry"; "retries"; "attempt"; "resubmit"; "restart" ]
let capish = mentions_token [ "max"; "cap"; "limit"; "budget"; "quota" ]

(* Does the expression consult a cap-like quantity anywhere — as a bare
   identifier, a path component ([Config.max_restarts]) or a record
   field ([t.policy.max_retries])? *)
let consults_cap (e : expression) =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
            if List.exists capish (Ast_util.path_parts txt) then found := true
        | Pexp_field (_, { txt; _ }) ->
            if capish (Ast_util.path_last txt) then found := true
        | _ -> ());
        if not !found then super#expression e
    end
  in
  it#expression e;
  !found

let check ~file:_ (str : structure) =
  let findings = ref [] in
  let add ~loc ?waived ?waiver_reason msg =
    findings :=
      Finding.make ~rule:rule_id ~loc ?waived ?waiver_reason msg :: !findings
  in
  let flag ~loc ~attrs msg =
    match Ast_util.waiver_attr "abft.waive" attrs with
    | None -> add ~loc msg
    | Some reason -> add ~loc ~waived:true ?waiver_reason:reason msg
  in
  let examine_group (vbs : value_binding list) =
    (* names bound by the whole group, so mutual recursion counts *)
    let group_names =
      List.filter_map
        (fun vb ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var v -> Some v.txt
          | _ -> None)
        vbs
    in
    List.iter
      (fun vb ->
        match vb.pvb_pat.ppat_desc with
        | Ppat_var v -> (
            match vb.pvb_expr.pexp_desc with
            | Pexp_function _ ->
                let name = v.txt in
                let params = Ast_util.param_names vb.pvb_expr in
                let body = Ast_util.fun_body vb.pvb_expr in
                let recurses =
                  Ast_util.mentions_any
                    (fun s -> List.exists (String.equal s) group_names)
                    body
                in
                if
                  (retryish name || List.exists retryish params)
                  && recurses
                  && not (consults_cap body)
                then
                  flag ~loc:vb.pvb_pat.ppat_loc
                    ~attrs:
                      (vb.pvb_attributes @ vb.pvb_expr.pexp_attributes
                     @ body.pexp_attributes)
                    (Printf.sprintf
                       "recursive retry loop %S has no visible bound; thread \
                        an explicit cap (max/limit/budget) through the \
                        recursion or waive with [@abft.waive]"
                       name)
            | _ -> ())
        | _ -> ())
      vbs
  in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! structure_item si =
        (match si.pstr_desc with
        | Pstr_value (Recursive, vbs) -> examine_group vbs
        | _ -> ());
        super#structure_item si

      method! expression e =
        (match e.pexp_desc with
        | Pexp_let (Recursive, vbs, _) -> examine_group vbs
        | Pexp_while (cond, body) ->
            let retry_shaped = Ast_util.mentions_any retryish in
            if
              (retry_shaped cond || retry_shaped body)
              && not (consults_cap cond || consults_cap body)
            then
              flag ~loc:e.pexp_loc ~attrs:e.pexp_attributes
                "while-shaped retry loop has no visible bound; consult an \
                 explicit cap (max/limit/budget) in the condition or body, \
                 or waive with [@abft.waive]"
        | _ -> ());
        super#expression e
    end
  in
  it#structure str;
  List.rev !findings
