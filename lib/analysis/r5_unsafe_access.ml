(* R5 — unchecked array access stays in the micro-kernel layer.

   [Array.unsafe_get]/[Array.unsafe_set] (and the [unsafe_*] accessors
   of Mat, Bytes, String, ...) skip bounds checks. The repository's
   bargain is that only the BLAS micro-kernels in lib/matrix use them:
   those modules route every unchecked loop through a bounds-checked
   twin under ABFT_BOUNDS_CHECK=1, so the debug build audits exactly
   the code allowed to be unchecked. An unsafe access anywhere else
   escapes that audit — an out-of-bounds write there is silent memory
   corruption in the very layer whose job is catching silent
   corruption.

   Scope: module-qualified [M.unsafe_*] identifiers in any file outside
   the allowlisted lib/matrix micro-kernel modules. Waive a deliberate
   use (with the bounds argument in the comment) by attaching
   [[@abft.waive "reason"]] to the call. *)

open Ppxlib

let rule_id = "R5"

(* The audited micro-kernel modules: each pairs its unchecked loops
   with an ABFT_BOUNDS_CHECK-selected checked twin. *)
let kernel_basenames = [ "vec.ml"; "blas2.ml"; "mat.ml"; "blas3.ml"; "lapack.ml" ]

(* Module-qualified (two or more components after alias expansion)
   [M.unsafe_*]. Bare [unsafe_foo] locals are someone's own function
   and stay out of scope. *)
let unsafe_parts parts =
  match (parts, List.rev parts) with
  | (_ :: _ :: _), last :: _
    when String.length last > 7 && String.sub last 0 7 = "unsafe_" ->
      Some (String.concat "." parts)
  | _ -> None

let check ~file (str : structure) =
  if List.mem (Filename.basename file) kernel_basenames then []
  else begin
    (* resolve [module A = Array] style aliases so a finding names the
       real module and an alias cannot hide an unchecked access *)
    let aliases = Ast_util.module_aliases str in
    let unsafe_path txt = unsafe_parts (Ast_util.resolve_path aliases txt) in
    let findings = ref [] in
    let add ~loc ~attrs path =
      let msg =
        Printf.sprintf
          "unchecked access %s outside the lib/matrix micro-kernels: only \
           those modules are covered by the ABFT_BOUNDS_CHECK debug build; \
           use safe indexing here or push the loop into the kernel layer"
          path
      in
      match Ast_util.waiver_attr "abft.waive" attrs with
      | None -> findings := Finding.make ~rule:rule_id ~loc msg :: !findings
      | Some reason ->
          findings :=
            Finding.make ~rule:rule_id ~loc ~waived:true ?waiver_reason:reason
              msg
            :: !findings
    in
    let it =
      object (self)
        inherit Ast_traverse.iter as super

        method! expression e =
          match e.pexp_desc with
          | Pexp_apply
              ({ pexp_desc = Pexp_ident { txt; loc }; pexp_attributes; _ }, args)
            when unsafe_path txt <> None ->
              (match unsafe_path txt with
              | Some path ->
                  (* the waiver may sit on the application or on the
                     identifier itself *)
                  add ~loc ~attrs:(e.pexp_attributes @ pexp_attributes) path
              | None -> ());
              List.iter (fun (_, a) -> self#expression a) args
          | Pexp_ident { txt; loc } -> (
              (* bare reference, e.g. passed as a function value *)
              match unsafe_path txt with
              | Some path -> add ~loc ~attrs:e.pexp_attributes path
              | None -> ())
          | _ -> super#expression e
      end
    in
    it#structure str;
    List.rev !findings
  end
