(* R6 — unverified-data taint in the FT drivers.

   The paper's detection guarantee is only as strong as the discipline
   that every value produced by a checksummed BLAS-3 kernel (or a
   checksum encoder) passes through a verify — [Verify.compare]/
   [compare_batch] after PR 6, a [verify*] helper, or a recovery rung —
   before anything else consumes it. R2 checks a syntactic shadow of
   this ("some verify call appears earlier in the function"); R6 checks
   the dataflow itself: a binding whose value comes from a taint source
   stays tainted until a sanitizer mentions it, and any other call that
   reads it (or that consumes a source's result directly as a nested
   argument) is a finding.

   Interprocedural via the index summaries: a driver helper returning
   [Blas3.gemm_alloc ...] is itself a source at its call sites, and a
   helper that verifies is itself a sanitizer.

   Scope: the resilience drivers — ft.ml, ft_lu.ml, ft_qr.ml,
   resilient.ml — and the fault-tolerant solver harness, cg.ml, whose
   verification points are the [residual_check] true-residual
   recomputations. Waive a deliberately unverified read with
   [[@abft.unverified "reason"]] on the producing or consuming call. *)

let rule_id = "R6"

let scope_basenames =
  [ "ft.ml"; "ft_lu.ml"; "ft_qr.ml"; "resilient.ml"; "cg.ml" ]

let path_str p = String.concat "." p

let check (idx : Index.t) =
  let findings = ref [] in
  let add ~loc ~waived ~reason msg =
    findings :=
      Finding.make ~rule:rule_id ~loc:(Ir.to_location loc) ~waived
        ?waiver_reason:reason msg
      :: !findings
  in
  List.iter
    (fun (fs : Ir.file_summary) ->
      if List.mem (Filename.basename fs.file) scope_basenames then
        List.iter
          (fun (d : Ir.def) ->
            let current = d.Ir.def_module in
            let env : (string, Ir.waiver * string) Hashtbl.t =
              Hashtbl.create 8
            in
            List.iter
              (fun (ev : Ir.event) ->
                match ev with
                | Ir.Call c ->
                    if Index.is_source idx ~current c.path then (
                      match c.bound with
                      | Some x ->
                          Hashtbl.replace env x (c.waiver, path_str c.path)
                      | None -> ())
                    else if Index.is_sanitizer idx ~current c.path then
                      List.iter (Hashtbl.remove env) c.args
                    else begin
                      List.iter
                        (fun x ->
                          match Hashtbl.find_opt env x with
                          | None -> ()
                          | Some (w, src) ->
                              (* report each tainted binding once *)
                              Hashtbl.remove env x;
                              let waived =
                                Ir.is_waived w || Ir.is_waived c.waiver
                              in
                              let reason =
                                match Ir.waiver_reason c.waiver with
                                | Some r -> Some r
                                | None -> Ir.waiver_reason w
                              in
                              add ~loc:c.call_loc ~waived ~reason
                                (Printf.sprintf
                                   "unverified data read: [%s] comes from %s \
                                    and reaches %s without a verify or \
                                    recovery rung in between"
                                   x src (path_str c.path)))
                        c.args;
                      List.iter
                        (fun (p, w) ->
                          if Index.is_source idx ~current p then
                            let waived =
                              Ir.is_waived w || Ir.is_waived c.waiver
                            in
                            let reason =
                              match Ir.waiver_reason w with
                              | Some r -> Some r
                              | None -> Ir.waiver_reason c.waiver
                            in
                            add ~loc:c.call_loc ~waived ~reason
                              (Printf.sprintf
                                 "unverified data read: the result of %s \
                                  flows directly into %s without a verify \
                                  or recovery rung in between"
                                 (path_str p) (path_str c.path)))
                        c.arg_calls
                    end
                | _ -> ())
              d.Ir.events)
          fs.defs)
    (Index.files idx);
  List.rev !findings
