(* R7 — span/resource discipline for the observability layer.

   Two paired-resource protocols underpin the tracing story:

   - a span opened with [let t0 = Obs.start obs] must reach a matching
     [Obs.stop obs ... t0] on every path out of the function. A raise
     between the start and its stop skips the stop and the span
     silently vanishes from the trace — exactly when a trace is most
     needed. [Obs.span] records the span even if the body raises, so
     the fix is mechanical;
   - attaching an observability sink to a shared pool
     ([Pool.set_obs pool (Some obs)]) mutates state that outlives the
     call, so the restoring [set_obs] must sit in a
     [Fun.protect ~finally] in the same function.

   The checks are lexical over the extracted event stream (pre-order =
   source order for this code), the same bargain R2 makes. Waive with
   [[@abft.waive "reason"]] on an enclosing expression. *)

let rule_id = "R7"

let check (idx : Index.t) =
  let findings = ref [] in
  let add ~loc msg =
    findings := Finding.make ~rule:rule_id ~loc:(Ir.to_location loc) msg :: !findings
  in
  List.iter
    (fun (fs : Ir.file_summary) ->
      List.iter
        (fun (d : Ir.def) ->
          let events = Array.of_list d.Ir.events in
          let n = Array.length events in
          let stop_used = Array.make n false in
          for i = 0 to n - 1 do
            match events.(i) with
            | Ir.Obs_start { bound = None; start_loc } ->
                add ~loc:start_loc
                  "Obs.start result is not bound, so this span can never \
                   be stopped; bind it or use Obs.span"
            | Ir.Obs_start { bound = Some tok; start_loc } -> (
                let stop = ref None in
                (try
                   for j = i + 1 to n - 1 do
                     match events.(j) with
                     | Ir.Obs_stop { stop_args; _ }
                       when (not stop_used.(j)) && List.mem tok stop_args ->
                         stop := Some j;
                         raise Exit
                     | _ -> ()
                   done
                 with Exit -> ());
                match !stop with
                | None ->
                    add ~loc:start_loc
                      (Printf.sprintf
                         "span [%s] started here is never stopped in this \
                          function; add the matching Obs.stop or use \
                          Obs.span"
                         tok)
                | Some j ->
                    stop_used.(j) <- true;
                    for k = i + 1 to j - 1 do
                      match events.(k) with
                      | Ir.Raise { raise_loc; _ } ->
                          add ~loc:start_loc
                            (Printf.sprintf
                               "span [%s] is not closed on the exception \
                                path of the raise at line %d; use Obs.span \
                                (recorded even if the body raises) or \
                                Fun.protect"
                               tok raise_loc.Ir.start.Ir.line)
                      | _ -> ()
                    done)
            | _ -> ()
          done;
          let sets =
            List.filter_map
              (function
                | Ir.Set_obs { set_in_finally; set_loc } ->
                    Some (set_in_finally, set_loc)
                | _ -> None)
              d.Ir.events
          in
          match sets with
          | [] -> ()
          | (_, first_loc) :: _ ->
              if not (List.exists fst sets) then
                add ~loc:first_loc
                  "observability sink attached to a shared pool without a \
                   Fun.protect ~finally restore in the same function")
        fs.defs)
    (Index.files idx);
  List.rev !findings
