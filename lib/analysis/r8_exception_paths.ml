(* R8 — exception-path soundness for the recovery ladder.

   A recovery-family raise ([Recovery.Error], the LU/QR drivers' local
   [Recovery _], [Resilient]'s [Gave_up]) abandons work. The ladder's
   accounting contract is that abandonment is always visible: either
   the raising function has already updated stats (a field mutation, a
   counter bump, or a call to a helper that does — [mark_degraded],
   [count_*]), or an exception handler in the same file catches the
   recovery family and accounts there. A raise with neither is a
   fault that disappears from every report; a handler that catches a
   recovery exception and neither accounts nor re-raises swallows a
   detected error silently — the one outcome ABFT exists to prevent.

   Like R2/R6/R7 the check is lexical: "a stat update appears earlier
   in the function" approximates "the raise is reachable only below a
   snapshot/accounting point". Waive with [[@abft.waive "reason"]]. *)

let rule_id = "R8"

let recovery_exn path =
  match (path, List.rev path) with
  | "Recovery" :: _, _ -> true
  | _, last :: _ -> last = "Recovery" || last = "Gave_up"
  | _ -> false

let recovery_handler (h : Ir.handler) = List.exists recovery_exn h.catches

let handler_accounts idx ~current (h : Ir.handler) =
  h.Ir.accounted || h.Ir.reraises
  || List.exists (Index.is_stat_updater idx ~current) h.Ir.handler_calls

let check (idx : Index.t) =
  let findings = ref [] in
  let add ~loc msg =
    findings := Finding.make ~rule:rule_id ~loc:(Ir.to_location loc) msg :: !findings
  in
  List.iter
    (fun (fs : Ir.file_summary) ->
      (* does any handler in this file catch the recovery family and
         account for the abandonment? *)
      let accounted_handler_in_file =
        List.exists
          (fun (d : Ir.def) ->
            List.exists
              (function
                | Ir.Handler h ->
                    recovery_handler h
                    && handler_accounts idx ~current:d.Ir.def_module h
                | _ -> false)
              d.Ir.events)
          fs.defs
      in
      List.iter
        (fun (d : Ir.def) ->
          let current = d.Ir.def_module in
          let stat_seen = ref false in
          List.iter
            (fun (ev : Ir.event) ->
              match ev with
              | Ir.Stat_update _ -> stat_seen := true
              | Ir.Call c ->
                  if Index.is_stat_updater idx ~current c.Ir.path then
                    stat_seen := true
              | Ir.Raise { exn_path; raise_loc } ->
                  if
                    recovery_exn exn_path
                    && (not !stat_seen)
                    && not accounted_handler_in_file
                  then
                    add ~loc:raise_loc
                      (Printf.sprintf
                         "recovery raise [%s] with no stats update before \
                          it and no accounting handler in this file: the \
                          abandonment is invisible to every report"
                         (String.concat "." exn_path))
              | Ir.Handler h ->
                  if recovery_handler h && not (handler_accounts idx ~current h)
                  then
                    add ~loc:h.Ir.handler_loc
                      "recovery exception caught but neither accounted (no \
                       stats update) nor re-raised: a detected fault is \
                       swallowed silently"
              | _ -> ())
            d.Ir.events)
        fs.defs)
    (Index.files idx);
  List.rev !findings
