type t = {
  id : string;
  title : string;
  rationale : string;
  check : file:string -> Ppxlib.Parsetree.structure -> Finding.t list;
}

let all =
  [
    {
      id = "R1";
      title = "no mutation of captured state in parallel closures";
      rationale =
        "closures passed to Pool.parallel_for/parallel_chunks/run_tasks (and \
         the drivers' par_for) run concurrently; writes to captured state \
         race unless each item writes a slice indexed by an item-local \
         binding (the disjoint-write idiom). Waive with [@abft.waive].";
      check = R1_parallel_writes.check;
    };
    {
      id = "R2";
      title = "verify-before-read in the FT drivers";
      rationale =
        "every Blas3.gemm/syrk/trsm call in lib/cholesky/ft.ml and \
         lib/qr/ft_qr.ml must be preceded, in the same top-level function, \
         by a verification call — the Enhanced Online-ABFT invariant. Waive \
         a deliberately unverified read with [@abft.unverified \"reason\"].";
      check = R2_verify_before_read.check;
    };
    {
      id = "R3";
      title = "banned constructs";
      rationale =
        "catch-all exception handlers, Obj.magic, List.hd/List.nth, \
         polymorphic =/compare on float literals: each has silently broken \
         an ABFT implementation before. Waive with [@abft.waive \"reason\"].";
      check = R3_banned.check;
    };
    {
      id = "R4";
      title = "retry loops must be bounded";
      rationale =
        "a recursive retry/restart loop with no visible cap turns a \
         permanent fault into a livelock — worse than giving up, because \
         nothing is ever reported. Thread an explicit max/limit/budget \
         through the recursion, or waive with [@abft.waive \"reason\"].";
      check = R4_unbounded_retry.check;
    };
    {
      id = "R5";
      title = "unchecked array access stays in the micro-kernel layer";
      rationale =
        "Array.unsafe_get/unsafe_set (and friends) are allowed only in the \
         lib/matrix micro-kernel modules, whose unchecked loops have \
         bounds-checked twins selected by ABFT_BOUNDS_CHECK=1; anywhere \
         else they escape that audit and risk silent memory corruption. \
         Waive with [@abft.waive \"reason\"].";
      check = R5_unsafe_access.check;
    };
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun r -> r.id = id) all

let select ids =
  match ids with
  | [] -> Ok all
  | ids ->
      let rec resolve acc = function
        | [] -> Ok (List.rev acc)
        | id :: rest -> (
            match find id with
            | Some r -> resolve (r :: acc) rest
            | None -> Error id)
      in
      resolve [] ids
