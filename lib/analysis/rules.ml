type kind =
  | File of (file:string -> Ppxlib.Parsetree.structure -> Finding.t list)
      (* syntactic, one file at a time — cacheable per file *)
  | Project of (Index.t -> Finding.t list)
      (* dataflow over the whole-program index *)

type t = { id : string; title : string; rationale : string; kind : kind }

let all =
  [
    {
      id = "R1";
      title = "no mutation of captured state in parallel closures";
      rationale =
        "closures passed to Pool.parallel_for/parallel_chunks/run_tasks (and \
         the drivers' par_for) run concurrently; writes to captured state \
         race unless each item writes a slice indexed by an item-local \
         binding (the disjoint-write idiom). Waive with [@abft.waive].";
      kind = File R1_parallel_writes.check;
    };
    {
      id = "R2";
      title = "verify-before-read in the FT drivers";
      rationale =
        "every Blas3.gemm/syrk/trsm call in lib/cholesky/ft.ml and \
         lib/qr/ft_qr.ml must be preceded, in the same top-level function, \
         by a verification call — the Enhanced Online-ABFT invariant. Waive \
         a deliberately unverified read with [@abft.unverified \"reason\"].";
      kind = File R2_verify_before_read.check;
    };
    {
      id = "R3";
      title = "banned constructs";
      rationale =
        "catch-all exception handlers, Obj.magic, List.hd/List.nth, \
         polymorphic =/compare on float literals: each has silently broken \
         an ABFT implementation before. Waive with [@abft.waive \"reason\"].";
      kind = File R3_banned.check;
    };
    {
      id = "R4";
      title = "retry loops must be bounded";
      rationale =
        "a recursive or while-shaped retry/restart loop with no visible cap \
         turns a permanent fault into a livelock — worse than giving up, \
         because nothing is ever reported. Thread an explicit \
         max/limit/budget through the recursion (or the loop condition), or \
         waive with [@abft.waive \"reason\"].";
      kind = File R4_unbounded_retry.check;
    };
    {
      id = "R5";
      title = "unchecked array access stays in the micro-kernel layer";
      rationale =
        "Array.unsafe_get/unsafe_set (and friends) are allowed only in the \
         lib/matrix micro-kernel modules, whose unchecked loops have \
         bounds-checked twins selected by ABFT_BOUNDS_CHECK=1; anywhere \
         else they escape that audit and risk silent memory corruption. \
         Waive with [@abft.waive \"reason\"].";
      kind = File R5_unsafe_access.check;
    };
    {
      id = "R6";
      title = "unverified-data taint in the FT drivers (whole-program)";
      rationale =
        "values produced by Blas3.*_alloc/Blas2.*_alloc or the checksum \
         encoders are tainted until a Verify.compare/compare_batch, \
         verify* or residual_check* helper or recovery rung mentions \
         them; any other call that reads a tainted binding in \
         ft.ml/ft_lu.ml/ft_qr.ml/resilient.ml/cg.ml consumes data the \
         ABFT layer never checked. Interprocedural through the project \
         index: helpers wrapping a source taint their callers. Waive with \
         [@abft.unverified \"reason\"].";
      kind = Project R6_taint.check;
    };
    {
      id = "R7";
      title = "observability spans and pool sinks close on all paths";
      rationale =
        "a span opened with Obs.start must reach its Obs.stop on every \
         path — a raise (including failwith/invalid_arg, the serving \
         layer's cancellation bail-outs) in between loses the span exactly \
         when the trace matters; Pool.set_obs mutates shared state and \
         needs its restore inside Fun.protect ~finally. Use Obs.span for \
         raise-safe regions. Waive with [@abft.waive \"reason\"].";
      kind = Project R7_span_discipline.check;
    };
    {
      id = "R8";
      title = "recovery raises and handlers always account";
      rationale =
        "a recovery-ladder raise (Recovery.*, Gave_up) must happen after a \
         visible stats update, or be caught by a handler in the same file \
         that accounts or re-raises; a handler that swallows a recovery \
         exception without accounting turns a detected fault into silent \
         corruption. Waive with [@abft.waive \"reason\"].";
      kind = Project R8_exception_paths.check;
    };
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun r -> r.id = id) all

let select ids =
  match ids with
  | [] -> Ok all
  | ids ->
      let rec resolve acc = function
        | [] -> Ok (List.rev acc)
        | id :: rest -> (
            match find id with
            | Some r -> resolve (r :: acc) rest
            | None -> Error id)
      in
      resolve [] ids
