(** The rule registry: every project invariant `abftlint` enforces. *)

type t = {
  id : string;  (** "R1", "R2", "R3", "R4", "R5" *)
  title : string;
  rationale : string;
  check : file:string -> Ppxlib.Parsetree.structure -> Finding.t list;
}

val all : t list
(** Every registered rule, in id order. *)

val find : string -> t option
(** Look a rule up by (case-insensitive) id. *)

val select : string list -> (t list, string) result
(** Resolve a list of ids ([[]] means all); [Error] names the first
    unknown id. *)
