(** The rule registry: every project invariant `abftlint` enforces. *)

type kind =
  | File of (file:string -> Ppxlib.Parsetree.structure -> Finding.t list)
      (** syntactic, one file at a time — cacheable per file *)
  | Project of (Index.t -> Finding.t list)
      (** dataflow over the whole-program index (R6/R7/R8) *)

type t = {
  id : string;  (** "R1" … "R8" *)
  title : string;
  rationale : string;
  kind : kind;
}

val all : t list
(** Every registered rule, in id order. *)

val find : string -> t option
(** Look a rule up by (case-insensitive) id. *)

val select : string list -> (t list, string) result
(** Resolve a list of ids ([[]] means all); [Error] names the first
    unknown id. *)
