(* SARIF 2.1.0 export, for code-scanning UIs and CI annotation.

   Hand-rolled against the published schema with the repo's one JSON
   escaper, like every other exporter here (Chrome traces, bench
   reports). The mapping:

   - blocking finding  -> level "error"
   - waived finding    -> level "note" + suppression kind "inSource"
                          (the [@abft.*] attribute is the in-source
                          suppression, justification = its reason)
   - baselined finding -> level "note" + suppression kind "external"
                          (the committed baseline file)
   - file/parse error  -> tool execution notification, and
                          executionSuccessful false

   Columns: SARIF regions are 1-based; [Finding.col] is 0-based. *)

let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"

let esc = Finding.json_escape

let rule_json (r : Rules.t) =
  Printf.sprintf
    "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\"fullDescription\":{\"text\":\"%s\"}}"
    (esc r.Rules.id) (esc r.Rules.title) (esc r.Rules.rationale)

let result_json (f : Finding.t) =
  let level = if Finding.is_blocking f then "error" else "note" in
  let suppressions =
    if f.Finding.waived then
      let justification =
        match f.Finding.waiver_reason with
        | Some r -> Printf.sprintf ",\"justification\":\"%s\"" (esc r)
        | None -> ""
      in
      Printf.sprintf ",\"suppressions\":[{\"kind\":\"inSource\"%s}]"
        justification
    else if f.Finding.baselined then
      ",\"suppressions\":[{\"kind\":\"external\",\"justification\":\"committed \
       baseline\"}]"
    else ""
  in
  Printf.sprintf
    "{\"ruleId\":\"%s\",\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]%s}"
    (esc f.Finding.rule) level
    (esc f.Finding.message)
    (esc f.Finding.file)
    (max 1 f.Finding.line)
    (f.Finding.col + 1)
    suppressions

let report ~tool_version ~rules ~findings ~errors =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"$schema\":\"%s\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"abftlint\",\"version\":\"%s\",\"informationUri\":\"https://github.com/abft-repro\",\"rules\":["
       schema_uri (esc tool_version));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (rule_json r))
    rules;
  Buffer.add_string buf "]}},\"results\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (result_json f))
    findings;
  Buffer.add_string buf "],\"invocations\":[{\"executionSuccessful\":";
  Buffer.add_string buf (if errors = [] then "true" else "false");
  (match errors with
  | [] -> ()
  | errors ->
      Buffer.add_string buf ",\"toolExecutionNotifications\":[";
      List.iteri
        (fun i (file, msg) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "{\"level\":\"error\",\"message\":{\"text\":\"%s: %s\"}}"
               (esc file) (esc msg)))
        errors;
      Buffer.add_string buf "]");
  Buffer.add_string buf "}]}]}";
  Buffer.contents buf
