(** SARIF 2.1.0 export: blocking findings as ["error"] results, waived
    and baselined findings as ["note"]s with the matching suppression
    kind ([inSource] / [external]), file errors as tool execution
    notifications. Regions use SARIF's 1-based columns. *)

val schema_uri : string

val report :
  tool_version:string ->
  rules:Rules.t list ->
  findings:Finding.t list ->
  errors:(string * string) list ->
  string
