type result = {
  interval_s : float;
  checkpoint_cost_s : float;
  expected_s : float;
  overhead_vs_plain : float;
}

let checkpoint_cost (machine : Hetsim.Machine.t) ~n =
  let b = float_of_int machine.Hetsim.Machine.default_block in
  let fn = float_of_int n in
  let bytes = 8. *. fn *. fn *. (1. +. (2. /. b)) in
  Hetsim.Machine.transfer_time machine ~bytes:(int_of_float bytes)

let young_daly_interval ~checkpoint_cost_s ~error_rate =
  if checkpoint_cost_s <= 0. then
    invalid_arg "Checkpoint.young_daly_interval: non-positive cost";
  if error_rate < 0. then
    invalid_arg "Checkpoint.young_daly_interval: negative rate";
  if Float.equal error_rate 0. then infinity
  else sqrt (2. *. checkpoint_cost_s /. error_rate)

let plain_work (machine : Hetsim.Machine.t) ~n =
  let cfg = Config.make ~machine ~scheme:Abft.Scheme.No_ft () in
  (Schedule.run cfg ~n).Schedule.makespan

let expected_time machine ~n ~error_rate ?interval_s () =
  let c = checkpoint_cost machine ~n in
  let w = plain_work machine ~n in
  let interval_s =
    match interval_s with
    | Some s ->
        if s <= 0. then invalid_arg "Checkpoint.expected_time: interval <= 0";
        s
    | None -> young_daly_interval ~checkpoint_cost_s:c ~error_rate
  in
  let restart_cost = c in
  (* First-order Young/Daly accounting: the work itself, one checkpoint
     per interval of work, and per expected failure half an interval of
     rework plus the reload. An interval longer than the run degenerates
     to "no checkpoints, restart from scratch on failure". *)
  let tau = Float.min interval_s w in
  let expected_s =
    w
    +. (if Float.is_finite interval_s && interval_s < w then w /. tau *. c
        else 0.)
    +. (error_rate *. w *. ((tau /. 2.) +. restart_cost))
  in
  {
    interval_s;
    checkpoint_cost_s = c;
    expected_s;
    overhead_vs_plain = (expected_s -. w) /. w;
  }
