type result = {
  interval_s : float;
  checkpoint_cost_s : float;
  expected_s : float;
  overhead_vs_plain : float;
}

let checkpoint_cost (machine : Hetsim.Machine.t) ~n =
  let b = float_of_int machine.Hetsim.Machine.default_block in
  let fn = float_of_int n in
  let bytes = 8. *. fn *. fn *. (1. +. (2. /. b)) in
  Hetsim.Machine.transfer_time machine ~bytes:(int_of_float bytes)

let young_daly_interval ~checkpoint_cost_s ~error_rate =
  if checkpoint_cost_s <= 0. then
    invalid_arg "Checkpoint.young_daly_interval: non-positive cost";
  if error_rate < 0. then
    invalid_arg "Checkpoint.young_daly_interval: negative rate";
  if Float.equal error_rate 0. then infinity
  else sqrt (2. *. checkpoint_cost_s /. error_rate)

let plain_work (machine : Hetsim.Machine.t) ~n =
  let cfg = Config.make ~machine ~scheme:Abft.Scheme.No_ft () in
  (Schedule.run cfg ~n).Schedule.makespan

(* ---- Real iteration-boundary snapshots (numeric mode) ---- *)

type snapshot = {
  iteration : int;
  tiles : Matrix.Tile.t;
  store : Abft.Checksum.store option;
}

let take ~iteration tiles store =
  {
    iteration;
    tiles = Matrix.Tile.copy tiles;
    store = Option.map Abft.Checksum.copy_store store;
  }

let restore snap ~tiles ~store =
  (* Copy element-wise into the live storage: drivers hold aliases into
     [tiles] and the checksum store, so replacing the containers would
     silently detach them. *)
  Matrix.Tile.iter_tiles
    (fun i j _ -> Matrix.Tile.set_tile tiles i j (Matrix.Tile.tile snap.tiles i j))
    tiles;
  match (snap.store, store) with
  | Some src, Some dst -> Abft.Checksum.restore_store ~src ~dst
  | None, None -> ()
  | _ -> invalid_arg "Checkpoint.restore: snapshot/store mismatch"

let snapshot_interval_iters machine ~n ~grid ~expected_faults =
  if grid < 1 then invalid_arg "Checkpoint.snapshot_interval_iters: grid < 1";
  if expected_faults <= 0. then 0
  else begin
    let c = checkpoint_cost machine ~n in
    let w = plain_work machine ~n in
    let rate = expected_faults /. w in
    let tau = young_daly_interval ~checkpoint_cost_s:c ~error_rate:rate in
    (* An interval at least as long as the whole run means snapshots
       cannot pay for themselves: fall back to restart-only. *)
    if (not (Float.is_finite tau)) || tau >= w then 0
    else
      let per_iter = w /. float_of_int grid in
      let iters = int_of_float (Float.round (tau /. per_iter)) in
      Int.max 1 (Int.min grid iters)
  end

let expected_time machine ~n ~error_rate ?interval_s () =
  let c = checkpoint_cost machine ~n in
  let w = plain_work machine ~n in
  let interval_s =
    match interval_s with
    | Some s ->
        if s <= 0. then invalid_arg "Checkpoint.expected_time: interval <= 0";
        s
    | None -> young_daly_interval ~checkpoint_cost_s:c ~error_rate
  in
  let restart_cost = c in
  (* First-order Young/Daly accounting: the work itself, one checkpoint
     per interval of work, and per expected failure half an interval of
     rework plus the reload. An interval longer than the run degenerates
     to "no checkpoints, restart from scratch on failure". *)
  let tau = Float.min interval_s w in
  let expected_s =
    w
    +. (if Float.is_finite interval_s && interval_s < w then w /. tau *. c
        else 0.)
    +. (error_rate *. w *. ((tau /. 2.) +. restart_cost))
  in
  {
    interval_s;
    checkpoint_cost_s = c;
    expected_s;
    overhead_vs_plain = (expected_s -. w) /. w;
  }
