(** Periodic checkpoint/restart — the third resilience technique the
    paper's related work composes with ABFT (Bosilca et al., "Composing
    resilience techniques: ABFT, periodic and incremental
    checkpointing").

    A checkpoint copies the factorization state (the n×n matrix plus
    checksums) to host memory over PCIe every [interval] outer
    iterations; a detected failure rolls back to the last checkpoint
    instead of to the beginning. Under a Poisson failure rate λ the
    classic Young/Daly analysis gives the optimal interval
    [sqrt(2·C/λ)] (in seconds of work between checkpoints, [C] the
    checkpoint cost) and the expected run time

    [E = (W / interval_s) · (C + interval_s + λ·interval_s·(interval_s/2 + R))]

    approximated to first order in λ, where [W] is the fault-free work
    time and [R] the restart (reload) cost. This module provides the
    model for the ablation bench: at realistic soft-error rates, ABFT's
    forward correction beats rollback by a wide margin because its
    "recovery" is a handful of flops, not a rollback. *)

type result = {
  interval_s : float;  (** seconds of work between checkpoints *)
  checkpoint_cost_s : float;  (** one checkpoint (PCIe copy) *)
  expected_s : float;  (** expected total run time under the rate *)
  overhead_vs_plain : float;  (** fraction over the fault-free time *)
}

val checkpoint_cost : Hetsim.Machine.t -> n:int -> float
(** Copying the matrix and its checksums to the host:
    [8·n²·(1 + 2/B)] bytes over the PCIe link. *)

val young_daly_interval : checkpoint_cost_s:float -> error_rate:float -> float
(** [sqrt (2·C/λ)]; [infinity] when [error_rate = 0].
    @raise Invalid_argument on negative arguments or non-positive
    checkpoint cost. *)

val expected_time :
  Hetsim.Machine.t ->
  n:int ->
  error_rate:float ->
  ?interval_s:float ->
  unit ->
  result
(** Expected run time of plain (no-FT) Cholesky protected by periodic
    checkpointing at the given Poisson [error_rate] (errors/second).
    [interval_s] defaults to the Young/Daly optimum. The fault-free
    work time comes from the simulator's no-FT schedule. *)

(** {1 Real snapshots (numeric mode)}

    The analytic model above sizes the interval; these functions
    implement the checkpoints themselves for the numeric driver's
    recovery ladder: a deep copy of the tile state and checksum store
    at an iteration boundary, restorable in place. *)

type snapshot = {
  iteration : int;  (** outer iteration the state was captured before *)
  tiles : Matrix.Tile.t;  (** deep copy of the tile state *)
  store : Abft.Checksum.store option;  (** deep copy of the checksums *)
}

val take : iteration:int -> Matrix.Tile.t -> Abft.Checksum.store option -> snapshot
(** Deep-copy the factorization state. The caller is responsible for
    verifying the state first — rolling back to an unverified snapshot
    would faithfully restore the corruption. *)

val restore : snapshot -> tiles:Matrix.Tile.t -> store:Abft.Checksum.store option -> unit
(** Copy the snapshot back into the live containers element-wise
    (aliases held by drivers stay valid).
    @raise Invalid_argument if snapshot and target disagree about
    having a checksum store. *)

val snapshot_interval_iters :
  Hetsim.Machine.t -> n:int -> grid:int -> expected_faults:float -> int
(** Map the Young/Daly interval to outer iterations: with [W] the
    machine's fault-free makespan for order [n] and λ =
    [expected_faults / W], the optimal [sqrt(2C/λ)] seconds convert to
    [τ / (W/grid)] iterations, clamped to [1..grid]. Returns [0]
    (snapshots off) when the interval is at least the whole run or
    [expected_faults <= 0]. @raise Invalid_argument if [grid < 1]. *)
