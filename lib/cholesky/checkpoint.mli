(** Periodic checkpoint/restart — the third resilience technique the
    paper's related work composes with ABFT (Bosilca et al., "Composing
    resilience techniques: ABFT, periodic and incremental
    checkpointing").

    A checkpoint copies the factorization state (the n×n matrix plus
    checksums) to host memory over PCIe every [interval] outer
    iterations; a detected failure rolls back to the last checkpoint
    instead of to the beginning. Under a Poisson failure rate λ the
    classic Young/Daly analysis gives the optimal interval
    [sqrt(2·C/λ)] (in seconds of work between checkpoints, [C] the
    checkpoint cost) and the expected run time

    [E = (W / interval_s) · (C + interval_s + λ·interval_s·(interval_s/2 + R))]

    approximated to first order in λ, where [W] is the fault-free work
    time and [R] the restart (reload) cost. This module provides the
    model for the ablation bench: at realistic soft-error rates, ABFT's
    forward correction beats rollback by a wide margin because its
    "recovery" is a handful of flops, not a rollback. *)

type result = {
  interval_s : float;  (** seconds of work between checkpoints *)
  checkpoint_cost_s : float;  (** one checkpoint (PCIe copy) *)
  expected_s : float;  (** expected total run time under the rate *)
  overhead_vs_plain : float;  (** fraction over the fault-free time *)
}

val checkpoint_cost : Hetsim.Machine.t -> n:int -> float
(** Copying the matrix and its checksums to the host:
    [8·n²·(1 + 2/B)] bytes over the PCIe link. *)

val young_daly_interval : checkpoint_cost_s:float -> error_rate:float -> float
(** [sqrt (2·C/λ)]; [infinity] when [error_rate = 0].
    @raise Invalid_argument on negative arguments or non-positive
    checkpoint cost. *)

val expected_time :
  Hetsim.Machine.t ->
  n:int ->
  error_rate:float ->
  ?interval_s:float ->
  unit ->
  result
(** Expected run time of plain (no-FT) Cholesky protected by periodic
    checkpointing at the given Poisson [error_rate] (errors/second).
    [interval_s] defaults to the Young/Daly optimum. The fault-free
    work time comes from the simulator's no-FT schedule. *)
