type placement = Auto | Gpu_inline | Gpu_stream | Cpu_offload

type t = {
  machine : Hetsim.Machine.t;
  block : int;
  scheme : Abft.Scheme.t;
  opt1_concurrent_recalc : bool;
  opt2_placement : placement;
  recalc_streams : int;
  tol : float;
  max_restarts : int;
  max_rollbacks : int;
  snapshot_interval : int;
  fused : bool;
  balance : Hetsim.Load_balancer.mode option;
  balance_interval : int;
}

let default =
  {
    machine = Hetsim.Machine.tardis;
    block = 0;
    scheme = Abft.Scheme.enhanced ();
    opt1_concurrent_recalc = true;
    opt2_placement = Auto;
    recalc_streams = 0;
    tol = Abft.Verify.default_tol;
    max_restarts = 3;
    max_rollbacks = 2;
    snapshot_interval = 0;
    fused = true;
    balance = None;
    balance_interval =
      Hetsim.Load_balancer.default_config.Hetsim.Load_balancer.update_interval;
  }

let make ?(machine = Hetsim.Machine.tardis) ?(block = 0)
    ?(scheme = Abft.Scheme.enhanced ()) ?(opt1 = true) ?(opt2 = Auto)
    ?(recalc_streams = 0) ?(tol = Abft.Verify.default_tol) ?(max_restarts = 3)
    ?(max_rollbacks = 2) ?(snapshot_interval = 0) ?(fused = true) ?balance
    ?(balance_interval =
      Hetsim.Load_balancer.default_config.Hetsim.Load_balancer.update_interval)
    () =
  if snapshot_interval < 0 then
    invalid_arg
      (Printf.sprintf
         "Config.make: snapshot_interval must be >= 0 (0 disables periodic \
          snapshots), got %d"
         snapshot_interval);
  {
    machine;
    block;
    scheme;
    opt1_concurrent_recalc = opt1;
    opt2_placement = opt2;
    recalc_streams;
    tol;
    max_restarts;
    max_rollbacks;
    snapshot_interval;
    fused;
    balance;
    balance_interval;
  }

let block_size t =
  if t.block > 0 then t.block else t.machine.Hetsim.Machine.default_block

let resolve_placement t ~n =
  match t.opt2_placement with
  | (Gpu_inline | Gpu_stream | Cpu_offload) as p -> p
  | Auto -> (
      let params =
        {
          Abft.Overhead_model.n;
          b = block_size t;
          k = Abft.Scheme.verification_interval t.scheme;
        }
      in
      match (Abft.Placement.decide t.machine params).Abft.Placement.choice with
      | Abft.Placement.Cpu_updates -> Cpu_offload
      | Abft.Placement.Gpu_updates -> Gpu_stream)

let effective_recalc_streams t =
  if not t.opt1_concurrent_recalc then 1
  else if t.recalc_streams > 0 then t.recalc_streams
  else t.machine.Hetsim.Machine.gpu.Hetsim.Device.max_concurrent_kernels

let divisor_block ?(target = 64) n =
  if n <= 0 then invalid_arg "Config.divisor_block: n must be positive";
  let rec best d acc =
    if d > min n target then acc else best (d + 1) (if n mod d = 0 then d else acc)
  in
  best 1 1

let validate t =
  if block_size t < 1 then Error "block size must be >= 1"
  else if t.recalc_streams < 0 then Error "recalc_streams must be >= 0"
  else if t.tol <= 0. then Error "tol must be positive"
  else if t.max_restarts < 0 then Error "max_restarts must be >= 0"
  else if t.max_rollbacks < 0 then Error "max_rollbacks must be >= 0"
  else if t.snapshot_interval < 0 then Error "snapshot_interval must be >= 0"
  else if t.balance_interval < 1 then Error "balance_interval must be >= 1"
  else Ok ()

let placement_name = function
  | Auto -> "auto"
  | Gpu_inline -> "gpu-inline"
  | Gpu_stream -> "gpu-stream"
  | Cpu_offload -> "cpu"

let balancer t =
  match t.balance with
  | None -> None
  | Some mode ->
      Some
        (Hetsim.Load_balancer.create
           ~config:
             {
               Hetsim.Load_balancer.default_config with
               Hetsim.Load_balancer.mode;
               update_interval = t.balance_interval;
             }
           t.machine)

let balance_name t =
  match t.balance with
  | None -> "off"
  | Some m -> Hetsim.Load_balancer.mode_name m

let pp fmt t =
  Format.fprintf fmt
    "%s B=%d scheme=%a opt1=%b opt2=%s streams=%d fused=%b balance=%s"
    t.machine.Hetsim.Machine.name (block_size t) Abft.Scheme.pp t.scheme
    t.opt1_concurrent_recalc
    (placement_name t.opt2_placement)
    (effective_recalc_streams t)
    t.fused (balance_name t)
