(** Driver configuration: machine, blocking, scheme, optimizations.

    One record configures both execution modes (numeric and timing) so
    that a single value describes "the experiment". *)

(** Where checksum *updating* runs (the paper's Optimization 2). *)
type placement =
  | Auto  (** pick per {!Abft.Placement.decide} for the machine *)
  | Gpu_inline
      (** on the GPU main stream, serialized with compute — the
          unoptimized baseline *)
  | Gpu_stream  (** on a separate GPU stream (spare capacity) *)
  | Cpu_offload  (** on the CPU, paying PCIe transfers *)

type t = {
  machine : Hetsim.Machine.t;
  block : int;  (** tile size B; [0] means the machine default *)
  scheme : Abft.Scheme.t;
  opt1_concurrent_recalc : bool;
      (** batch checksum recalculations over CUDA streams *)
  opt2_placement : placement;
  recalc_streams : int;
      (** streams used when [opt1_concurrent_recalc]; [0] means the
          GPU's [max_concurrent_kernels] *)
  tol : float;  (** verification rounding threshold *)
  max_restarts : int;
      (** recovery-by-recomputation attempts before giving up — the
          last rung of the recovery ladder *)
  max_rollbacks : int;
      (** snapshot rollbacks per attempt before escalating to a full
          restart — the rung below restart *)
  snapshot_interval : int;
      (** outer iterations between verified state snapshots; [0]
          (the default) disables snapshots entirely, so clean runs and
          restart-only recovery behave exactly as without this rung *)
  fused : bool;
      (** carry checksum chains through the BLAS-3 kernels
          ({!Abft.Checksum.update_fused}) and verify by
          carried-vs-fresh {!Abft.Verify.compare} instead of running
          separate checksum-update and full re-reduce passes. Numeric
          results and detection coverage are identical (the chains are
          bitwise the same); only the pass structure changes. Default
          [true]; set [false] to measure the separate-pass baseline. *)
  balance : Hetsim.Load_balancer.mode option;
      (** CPU/GPU split of the trailing update (timing mode only):
          [None] (default) keeps the historical GPU-only trailing
          update, byte-identical to earlier versions; [Some Static]
          splits once from {!Hetsim.Cost_model.gpu_share} and never
          moves; [Some Adaptive] re-splits from observed per-device
          efficiency, shifting work away from a faulting or
          quarantined GPU. *)
  balance_interval : int;
      (** outer iterations between applied adaptive re-splits (>= 1);
          forced events (quarantine, rejoin, dropout) bypass it *)
}

val default : t
(** tardis, machine-default block, Enhanced (k = 1), both
    optimizations on, [Auto] placement, {!Abft.Verify.default_tol},
    3 restarts, 2 rollbacks, snapshots disabled, fused kernels,
    balancing off. *)

val make :
  ?machine:Hetsim.Machine.t ->
  ?block:int ->
  ?scheme:Abft.Scheme.t ->
  ?opt1:bool ->
  ?opt2:placement ->
  ?recalc_streams:int ->
  ?tol:float ->
  ?max_restarts:int ->
  ?max_rollbacks:int ->
  ?snapshot_interval:int ->
  ?fused:bool ->
  ?balance:Hetsim.Load_balancer.mode ->
  ?balance_interval:int ->
  unit ->
  t
(** @raise Invalid_argument if [snapshot_interval] is negative (0 is
    the legitimate "snapshots disabled" value); a misconfigured
    checkpoint cadence must fail at construction, not deep inside a
    recovery. The remaining fields are range-checked by {!validate}. *)

val block_size : t -> int
(** The effective tile size (resolving [0] to the machine default). *)

val resolve_placement : t -> n:int -> placement
(** [Auto] resolved via the placement model at problem size [n];
    anything else returned unchanged. Never returns [Auto]. *)

val effective_recalc_streams : t -> int
(** Streams the recalculation batches use: 1 when Optimization 1 is
    off, otherwise [recalc_streams] (or the GPU limit when 0). *)

val divisor_block : ?target:int -> int -> int
(** [divisor_block n] is the largest divisor of [n] at most [target]
    (default 64) — the convenient tile size for numeric-mode runs on
    workload-determined matrix orders. @raise Invalid_argument if
    [n <= 0]. *)

val balancer : t -> Hetsim.Load_balancer.t option
(** A fresh balancer per {!balance}/{!t.balance_interval} over the
    configured machine, [None] when balancing is off. Each schedule
    run must create its own — balancer state is per-run. *)

val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
