open Hetsim

type result = {
  makespan : float;
  gflops : float;
  engine : Engine.t;
}

let run ?(derate = 0.8) ?(block = 0) (machine : Machine.t) ~n =
  if derate <= 0. || derate > 1. then
    invalid_arg "Cula_model.run: derate must be in (0, 1]";
  let b = if block > 0 then block else machine.Machine.default_block in
  if n <= 0 || n mod b <> 0 then
    invalid_arg "Cula_model.run: n must be a positive multiple of the block";
  let machine =
    {
      machine with
      Machine.gpu =
        {
          machine.Machine.gpu with
          Device.gemm_efficiency =
            machine.Machine.gpu.Device.gemm_efficiency *. derate;
        };
    }
  in
  let eng = Engine.create machine in
  let g = n / b in
  let block_bytes = 8 * b * b in
  (* Fully synchronous loop: every step depends on the previous one, so
     the CPU factorization and both transfers extend the critical path. *)
  let last = ref Engine.ready in
  for j = 0 to g - 1 do
    if Sets.syrk_exists ~j then
      last :=
        Engine.submit eng ~deps:[ !last ] Engine.Gpu
          (Kernel.Syrk { n = b; k = j * b });
    last := Engine.transfer eng ~deps:[ !last ] ~dir:`D2h block_bytes;
    last :=
      Engine.submit eng ~deps:[ !last ] Engine.Cpu (Kernel.Potf2 { n = b });
    last := Engine.transfer eng ~deps:[ !last ] ~dir:`H2d block_bytes;
    if Sets.gemm_exists ~grid:g ~j then
      last :=
        Engine.submit eng ~deps:[ !last ] Engine.Gpu
          (Kernel.Gemm { m = (g - 1 - j) * b; n = b; k = j * b });
    if Sets.trsm_exists ~grid:g ~j then
      last :=
        Engine.submit eng ~deps:[ !last ] Engine.Gpu
          (Kernel.Trsm { order = b; nrhs = (g - 1 - j) * b })
  done;
  let makespan = Engine.makespan eng in
  {
    makespan;
    gflops = float_of_int n ** 3. /. 3. /. makespan /. 1e9;
    engine = eng;
  }
