(** A CULA-R18-like baseline for the performance comparison
    (Figures 16/17).

    CULA is closed source; the paper uses it only as the vendor-library
    yardstick that MAGMA (and the ABFT variants built on MAGMA) beat.
    Two documented characteristics of that era's CULA dpotrf are
    modelled: a fully {e synchronous} hybrid loop — the CPU
    factorization of the diagonal block and both PCIe transfers sit on
    the critical path instead of overlapping the trailing GEMM — and
    kernels noticeably less tuned than MAGMA's (a flat efficiency
    derate, default 0.8). The absolute gap is a calibration, but the
    *ordering* the paper reports (MAGMA > ABFT variants > CULA) is
    structural: Enhanced-ABFT costs a few percent of MAGMA, the lost
    overlap plus kernel gap cost much more. *)

type result = {
  makespan : float;
  gflops : float;
  engine : Hetsim.Engine.t;
}

val run : ?derate:float -> ?block:int -> Hetsim.Machine.t -> n:int -> result
(** [run machine ~n] simulates CULA's synchronous blocked Cholesky.
    [block] defaults to the machine's block size, [derate] to [0.8].
    @raise Invalid_argument if [n] is not a positive multiple of the
    block size or [derate] is outside (0, 1]. *)
