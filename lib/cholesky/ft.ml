open Matrix
module Pool = Parallel.Pool

let src = Logs.Src.create "ftchol.cholesky" ~doc:"FT Cholesky driver events"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome = Success | Silent_corruption | Gave_up of Recovery.reason

type stats = {
  verifications : int;
  corrections : int;
  reconstructions : int;
  checksum_repairs : int;
  uncorrectable_events : int;
  fail_stops : int;
  rollbacks : int;
  snapshots : int;
  restarts : int;
}

type report = {
  factor : Mat.t;
  outcome : outcome;
  residual : float;
  stats : stats;
  injections_fired : Injector.fired list;
  trace : Trace_op.t list;
}

let residual_threshold = 1e-6

exception Cancelled of { iteration : int; stats : stats }

(* Per-run racecheck tag namespace. The serving layer runs many factor
   requests concurrently (each on its own pool slot); write claims are
   per pool, but a shared or nested pool must never confuse two runs'
   identically named "tile"/"chk" rectangles — tile (2,1) of request A
   is not tile (2,1) of request B. The counter is Atomic because it is
   the one piece of driver state genuinely shared across concurrent
   requests. *)
let run_ids = Atomic.make 0

type attempt_state = {
  cfg : Config.t;
  grid : int;
  tiles : Tile.t;
  store : Abft.Checksum.store option;  (* None for No_ft *)
  injector : Injector.t;
  pool : Pool.t;
  obs : Obs.t;  (* span/counter sink; Obs.null when untraced *)
  tag_tile : string;  (* racecheck tag for tile writes, unique per run *)
  tag_chk : string;  (* racecheck tag for checksum-block writes *)
  mutable trace : Trace_op.t list;  (* reverse order *)
  mutable verifications : int;
  mutable corrections : int;
  mutable reconstructions : int;
  mutable checksum_repairs : int;
}

let emit st op = st.trace <- op :: st.trace

(* Fan the row blocks of one iteration phase across the pool. Each
   index owns its own tile (and checksum block), so the fan-out is
   race-free and — because no work item is ever split — bitwise
   deterministic for every pool size. *)
let par_for st ~lo ~hi f =
  if Pool.size st.pool > 1 && hi - lo > 1 then
    Pool.parallel_for ~chunk:1 st.pool ~lo ~hi f
  else
    for i = lo to hi - 1 do
      f i
    done

let lookup st (i, c) =
  if i >= 0 && c >= 0 && i < st.grid && c < st.grid && i >= c then
    Some (Tile.tile st.tiles i c)
  else None

(* Checksum-store analogue of [lookup] for In_checksum injections: the
   injector corrupts the primary replica of the block's stored
   checksum. *)
let chk_lookup st (i, c) =
  match st.store with
  | None -> None
  | Some store ->
      if i >= 0 && c >= 0 && i < st.grid && c < st.grid && i >= c then
        Some (Abft.Checksum.matrix (Abft.Checksum.get store i c))
      else None

(* ABFT_RACECHECK instrumentation: claim the element rectangle of tile
   (i, c) — or its checksum block — before a parallel work item writes
   it. The fan-outs below are row-block disjoint by construction; the
   claims let the pool prove it on every run instead of trusting the
   comment. Free when racecheck is off. *)
let declare_tile st i c =
  if Pool.racecheck_enabled st.pool then begin
    let b = Config.block_size st.cfg in
    Pool.declare_write st.pool ~tag:st.tag_tile
      ~rows:(i * b, ((i + 1) * b) - 1)
      ~cols:(c * b, ((c + 1) * b) - 1)
  end

let declare_chk st i c =
  if Pool.racecheck_enabled st.pool then
    Pool.declare_write st.pool ~tag:st.tag_chk ~rows:(i, i) ~cols:(c, c)

(* Ladder rung accounting: located-and-patched elements and plain-sum
   reconstructions are different rungs of the inline recovery ladder,
   so count them apart. *)
let count_fixes st fixes =
  List.iter
    (fun (f : Abft.Verify.correction) ->
      match f.Abft.Verify.source with
      | Abft.Verify.Located -> st.corrections <- st.corrections + 1
      | Abft.Verify.Reconstructed ->
          st.reconstructions <- st.reconstructions + 1)
    fixes

(* Verify the listed tiles, correcting in place; raise Recovery.Error on
   the first uncorrectable tile. The independent per-tile verifications
   fan out across the pool (the paper's Optimization 1 on real cores);
   outcomes are then folded in block order, so counters and the choice
   of "first" uncorrectable block match a sequential sweep exactly. *)
let verify_blocks st ~j ~point blocks =
  emit st (Trace_op.Verify { j; point; blocks });
  match st.store with
  | None -> ()
  | Some store ->
      (* span wraps the whole batch (including the fold) so detection
         cost is charged to its op — "compare" for the fused
         carried-vs-fresh diff, "verify" for the separate-pass full
         re-reduce — even when the sweep aborts the attempt with
         Recovery.Error *)
      let fused = st.cfg.Config.fused in
      Obs.span st.obs
        ~op:(if fused then "compare" else "verify")
        ~phase:"abft" (fun () ->
      let blocks_arr = Array.of_list blocks in
      let jobs =
        Array.map
          (fun (i, c) -> (Abft.Checksum.get store i c, Tile.tile st.tiles i c))
          blocks_arr
      in
      let outcomes =
        (* fused runs diff the carried checksum against one cheap fresh
           reduction (recomputed here, not in-kernel: faults can land on
           a tile after the kernel that produced it, so the reduction
           must read the tile as verification sees it); anything dirty
           escalates inside [compare] to the full verify ladder *)
        if fused then
          Abft.Verify.compare_batch ~pool:st.pool ~tol:st.cfg.Config.tol jobs
        else
          Abft.Verify.verify_batch ~pool:st.pool ~tol:st.cfg.Config.tol jobs
      in
      Array.iteri
        (fun k (i, c) ->
          st.verifications <- st.verifications + 1;
          match outcomes.(k) with
          | Abft.Verify.Clean -> ()
          | Abft.Verify.Corrected fixes ->
              Log.info (fun m ->
                  m "iteration %d: corrected %d element(s) in block (%d,%d)" j
                    (List.length fixes) i c);
              count_fixes st fixes
          | Abft.Verify.Checksum_repaired { cells; corrections } ->
              Log.info (fun m ->
                  m
                    "iteration %d: repaired %d checksum cell(s) of block \
                     (%d,%d) (+%d tile fix(es))"
                    j cells i c
                    (List.length corrections));
              st.checksum_repairs <- st.checksum_repairs + 1;
              count_fixes st corrections
          | Abft.Verify.Uncorrectable msg ->
              Log.warn (fun m ->
                  m "iteration %d: uncorrectable at block (%d,%d): %s" j i c
                    msg);
              raise
                (Recovery.Error
                   (Recovery.Uncorrectable_block { block = (i, c); detail = msg })))
        blocks_arr)

(* One attempt of the full factorization over fresh tiles, starting at
   outer iteration [from] (0 for a fresh attempt, the snapshot's
   iteration after a rollback). Returns unit; errors surface as
   Recovery.Error. [on_boundary j] runs at the top of every iteration,
   before any fault of iteration [j] fires — the snapshot hook. *)
let run_attempt st ~from ~on_boundary =
  let g = st.grid in
  let scheme = st.cfg.Config.scheme in
  let enhanced = match scheme with Abft.Scheme.Enhanced _ -> true | _ -> false in
  let online = scheme = Abft.Scheme.Online in
  let with_ft = st.store <> None in
  (* Fused mode: the BLAS-3 kernels carry both checksum replica chains
     through their own blocking, so the separate chk-update passes below
     disappear; the chains are bitwise identical either way (the fused
     carry follows the exact separate-pass accumulation order). Spans
     are tagged "-fused" so traces distinguish the two pass
     structures. *)
  let fused = with_ft && st.cfg.Config.fused in
  let kk = Abft.Scheme.verification_interval scheme in
  let tile = Tile.tile st.tiles in
  let chk i c =
    match st.store with Some s -> Abft.Checksum.get s i c | None -> assert false
  in
  if with_ft && from = 0 then emit st Trace_op.Encode;
  for j = from to g - 1 do
    emit st (Trace_op.Iteration_start j);
    on_boundary j;
    Injector.fire_storage st.injector ~iteration:j ~lookup:(lookup st);
    Injector.fire_device st.injector ~iteration:j ~lookup:(lookup st);
    Injector.fire_checksum st.injector ~iteration:j ~lookup:(chk_lookup st);
    let gate = Sets.k_gate ~k:kk ~j in
    (* ---- SYRK: diagonal block rank-k update ---- *)
    if Sets.syrk_exists ~j then begin
      if enhanced then verify_blocks st ~j ~point:Trace_op.Pre_syrk (Sets.pre_syrk ~j);
      let diag = tile j j in
      (* accumulates into one diagonal block: c order is load-bearing,
         parallelism lives inside the (pool-aware) kernel *)
      let t0 = Obs.start st.obs in
      for c = 0 to j - 1 do
        let lc = tile j c in
        if fused then
          Blas3.gemm ~pool:st.pool ~transb:Types.Trans ~alpha:(-1.) ~beta:1.
            ~fused:(Abft.Checksum.update_fused ~chk_a:(chk j c) (chk j j))
            lc lc diag
        else
          Blas3.gemm ~pool:st.pool ~transb:Types.Trans ~alpha:(-1.) ~beta:1. lc
            lc diag
      done;
      Obs.stop st.obs ~tile:(j, j)
        ~op:(if fused then "syrk-fused" else "syrk")
        ~phase:"compute" t0;
      emit st (Trace_op.Syrk j);
      Injector.fire_compute st.injector ~iteration:j ~op:Fault.Syrk ~block:(j, j) diag;
      if with_ft then begin
        if not fused then begin
          let t0 = Obs.start st.obs in
          for c = 0 to j - 1 do
            Abft.Update.syrk ~chk_a:(chk j j) ~chk_lc:(chk j c) ~lc:(tile j c)
          done;
          Obs.stop st.obs ~tile:(j, j) ~op:"chk-syrk" ~phase:"chk-update" t0
        end;
        emit st (Trace_op.Chk_syrk j);
        Injector.fire_update st.injector ~iteration:j ~op:Fault.Syrk
          ~block:(j, j)
          (Abft.Checksum.matrix (chk j j))
      end;
      if online then verify_blocks st ~j ~point:Trace_op.Post_syrk (Sets.post_syrk ~j)
    end;
    (* ---- diagonal block to host (logical only in numeric mode).
       Enhanced verifies it first: the transfer is a read. ---- *)
    if enhanced then verify_blocks st ~j ~point:Trace_op.Pre_potf2 (Sets.pre_potf2 ~j);
    emit st (Trace_op.D2h_diag j);
    (* ---- GEMM: trailing panel update ---- *)
    if Sets.gemm_exists ~grid:g ~j then begin
      if enhanced && gate then
        verify_blocks st ~j ~point:Trace_op.Pre_gemm (Sets.pre_gemm ~grid:g ~j);
      (* each row block i updates only tile (i, j) and — fused — its
         checksum block: independent either way *)
      par_for st ~lo:(j + 1) ~hi:g (fun i ->
          declare_tile st i j;
          if fused then declare_chk st i j;
          let t0 = Obs.start st.obs in
          let b = tile i j in
          for c = 0 to j - 1 do
            if fused then
              Blas3.gemm ~pool:st.pool ~transb:Types.Trans ~alpha:(-1.)
                ~beta:1.
                ~fused:(Abft.Checksum.update_fused ~chk_a:(chk i c) (chk i j))
                (tile i c) (tile j c) b
            else
              Blas3.gemm ~pool:st.pool ~transb:Types.Trans ~alpha:(-1.)
                ~beta:1. (tile i c) (tile j c) b
          done;
          Obs.stop st.obs ~tile:(i, j)
            ~op:(if fused then "gemm-fused" else "gemm")
            ~phase:"compute" t0);
      emit st (Trace_op.Gemm j);
      for i = j + 1 to g - 1 do
        Injector.fire_compute st.injector ~iteration:j ~op:Fault.Gemm
          ~block:(i, j) (tile i j)
      done;
      if with_ft then begin
        if not fused then
          (* row block i touches only checksum (i, j): independent *)
          par_for st ~lo:(j + 1) ~hi:g (fun i ->
              declare_chk st i j;
              let t0 = Obs.start st.obs in
              for c = 0 to j - 1 do
                Abft.Update.gemm ~chk_b:(chk i j) ~chk_ld:(chk i c)
                  ~lc:(tile j c)
              done;
              Obs.stop st.obs ~tile:(i, j) ~op:"chk-gemm" ~phase:"chk-update" t0);
        emit st (Trace_op.Chk_gemm j);
        (* sequential like fire_compute above: the injector is not
           thread-safe and never needs to be *)
        for i = j + 1 to g - 1 do
          Injector.fire_update st.injector ~iteration:j ~op:Fault.Gemm
            ~block:(i, j)
            (Abft.Checksum.matrix (chk i j))
        done
      end;
      if online then
        verify_blocks st ~j ~point:Trace_op.Post_gemm (Sets.post_gemm ~grid:g ~j)
    end;
    (* ---- POTF2 on the (host-side) diagonal block ---- *)
    let diag = tile j j in
    Obs.span st.obs ~tile:(j, j) ~op:"potf2" ~phase:"compute" (fun () ->
        try Lapack.potf2 Types.Lower diag
        with Lapack.Not_positive_definite k ->
          raise (Recovery.Error (Recovery.Fail_stop { iteration = j; column = k })));
    emit st (Trace_op.Potf2 j);
    Injector.fire_compute st.injector ~iteration:j ~op:Fault.Potf2 ~block:(j, j) diag;
    if with_ft then begin
      let t0 = Obs.start st.obs in
      Abft.Update.potf2 ~chk:(chk j j) ~la:diag;
      Obs.stop st.obs ~tile:(j, j) ~op:"chk-potf2" ~phase:"chk-update" t0;
      emit st (Trace_op.Chk_potf2 j);
      Injector.fire_update st.injector ~iteration:j ~op:Fault.Potf2
        ~block:(j, j)
        (Abft.Checksum.matrix (chk j j))
    end;
    if online then verify_blocks st ~j ~point:Trace_op.Post_potf2 (Sets.post_potf2 ~j);
    (* ---- factored block back to device ---- *)
    emit st (Trace_op.H2d_diag j);
    (* ---- TRSM: panel solve against the factored diagonal ---- *)
    if Sets.trsm_exists ~grid:g ~j then begin
      if enhanced && gate then
        verify_blocks st ~j ~point:Trace_op.Pre_trsm (Sets.pre_trsm ~grid:g ~j);
      let la = tile j j in
      (* independent panel solves against the shared factored diagonal;
         fused co-solves each panel's checksum chains in the same call *)
      par_for st ~lo:(j + 1) ~hi:g (fun i ->
          declare_tile st i j;
          if fused then declare_chk st i j;
          let t0 = Obs.start st.obs in
          (if fused then
             Blas3.trsm ~pool:st.pool
               ~fused:(Abft.Checksum.solve_fused (chk i j))
               Types.Right Types.Lower Types.Trans Types.Non_unit_diag la
               (tile i j)
           else
             Blas3.trsm ~pool:st.pool Types.Right Types.Lower Types.Trans
               Types.Non_unit_diag la (tile i j));
          Obs.stop st.obs ~tile:(i, j)
            ~op:(if fused then "trsm-fused" else "trsm")
            ~phase:"compute" t0);
      emit st (Trace_op.Trsm j);
      for i = j + 1 to g - 1 do
        Injector.fire_compute st.injector ~iteration:j ~op:Fault.Trsm
          ~block:(i, j) (tile i j)
      done;
      if with_ft then begin
        if not fused then
          par_for st ~lo:(j + 1) ~hi:g (fun i ->
              declare_chk st i j;
              let t0 = Obs.start st.obs in
              Abft.Update.trsm ~chk:(chk i j) ~la;
              Obs.stop st.obs ~tile:(i, j) ~op:"chk-trsm" ~phase:"chk-update" t0);
        emit st (Trace_op.Chk_trsm j);
        for i = j + 1 to g - 1 do
          Injector.fire_update st.injector ~iteration:j ~op:Fault.Trsm
            ~block:(i, j)
            (Abft.Checksum.matrix (chk i j))
        done
      end;
      if online then
        verify_blocks st ~j ~point:Trace_op.Post_trsm (Sets.post_trsm ~grid:g ~j)
    end
  done

(* Offline-ABFT's end-of-run verification is detect-only: once an error
   has propagated through later updates, the per-block "corrections" the
   locator suggests chase entangled checksums and can silently patch the
   data to a wrong-but-consistent state. The paper is explicit that
   correcting at the end is "impossible or very expensive" — detected
   means recompute. The [final_sweep] extension (beyond the paper) *does*
   correct: it is meant for schemes that already corrected propagation
   inline (Online/Enhanced), where a residual mismatch is a lone
   un-reread storage flip. *)
let final_verification st ~sweep =
  let offline = st.cfg.Config.scheme = Abft.Scheme.Offline in
  if st.store <> None && (offline || sweep) then
    Obs.span st.obs ~op:"final-verify" ~phase:"abft" @@ fun () ->
    begin
    let blocks = Sets.all_lower ~grid:st.grid in
    emit st (Trace_op.Final_verify blocks);
    match st.store with
    | None -> ()
    | Some store ->
        let blocks_arr = Array.of_list blocks in
        let jobs =
          Array.map
            (fun (i, c) ->
              (Abft.Checksum.get store i c, Tile.tile st.tiles i c))
            blocks_arr
        in
        if offline then begin
          (* detect-only: read-only checks fan out, results fold in
             block order so the reported first mismatch is stable *)
          let ok = Array.make (Array.length jobs) true in
          let run_one k =
            let chk, tile = jobs.(k) in
            ok.(k) <- Abft.Verify.check ~tol:st.cfg.Config.tol chk tile
          in
          if Pool.size st.pool > 1 && Array.length jobs > 1 then
            Pool.parallel_for ~chunk:1 st.pool ~lo:0
              ~hi:(Array.length jobs) run_one
          else Array.iteri (fun k _ -> run_one k) jobs;
          Array.iteri
            (fun k (i, c) ->
              st.verifications <- st.verifications + 1;
              if not ok.(k) then
                raise
                  (Recovery.Error
                     (Recovery.Final_mismatch
                        { block = (i, c); detail = "mismatch at end of run" })))
            blocks_arr
        end
        else begin
          let outcomes =
            if st.cfg.Config.fused then
              Abft.Verify.compare_batch ~pool:st.pool ~tol:st.cfg.Config.tol
                jobs
            else
              Abft.Verify.verify_batch ~pool:st.pool ~tol:st.cfg.Config.tol
                jobs
          in
          Array.iteri
            (fun k (i, c) ->
              st.verifications <- st.verifications + 1;
              match outcomes.(k) with
              | Abft.Verify.Clean -> ()
              | Abft.Verify.Corrected fixes -> count_fixes st fixes
              | Abft.Verify.Checksum_repaired { cells = _; corrections } ->
                  st.checksum_repairs <- st.checksum_repairs + 1;
                  count_fixes st corrections
              | Abft.Verify.Uncorrectable msg ->
                  raise
                    (Recovery.Error
                       (Recovery.Final_mismatch
                          { block = (i, c); detail = msg })))
            blocks_arr
        end
  end

let lower_of_tiles tiles = Mat.tril (Tile.to_mat tiles)

let residual_of ~input l =
  let recon =
    (Blas3.gemm_alloc ~transb:Types.Trans l l
    [@abft.unverified
      "residual check on the finished factor: it runs after the scheme's own \
       verification and exists to second-guess it, so it must read L as-is"])
  in
  Mat.norm_fro (Mat.sub_mat recon input) /. Float.max 1. (Mat.norm_fro input)

(* The graduated recovery ladder, cheapest rung first:

   1. inline correction — Verify locates and patches a tile element
      (counted in [corrections]);
   2. plain-sum reconstruction — an overwhelmed element is rebuilt from
      the plain-sum checksum row (counted in [reconstructions]); both
      of these happen inside the verification passes and never unwind
      the attempt. Checksum-replica repairs ([checksum_repairs]) are
      likewise inline.
   3. snapshot rollback — an unrecoverable event (Recovery.Error)
      restores the last verified iteration-boundary snapshot and reruns
      only the trailing iterations, up to [max_rollbacks] times per
      attempt;
   4. full restart — no usable snapshot or budget exhausted: recompute
      from the pristine input, up to [max_restarts] times;
   5. give up, reporting the last structured reason. *)
let factor ?pool ?(obs = Obs.null) ?(plan = []) ?(final_sweep = false)
    ?(cancel = fun () -> false) cfg a =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Ft.factor: " ^ e));
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let n = Mat.rows a in
  let b = Config.block_size cfg in
  if Mat.cols a <> n then invalid_arg "Ft.factor: input not square";
  if n <= 0 || n mod b <> 0 then
    invalid_arg
      (Printf.sprintf "Ft.factor: order %d must be a positive multiple of the \
                       block size %d" n b);
  let run_id = Atomic.fetch_and_add run_ids 1 in
  let injector = Injector.create plan in
  let uncorrectable_events = ref 0 in
  let fail_stops = ref 0 in
  let snapshots_total = ref 0 in
  let rollbacks_total = ref 0 in
  let snap_every = cfg.Config.snapshot_interval in
  let rec attempt k =
    let tiles =
      Obs.span obs ~op:"init" ~phase:"setup" (fun () -> Tile.of_mat ~block:b a)
    in
    let store =
      match cfg.Config.scheme with
      | Abft.Scheme.No_ft -> None
      | _ ->
          Some
            (Obs.span obs ~op:"encode" ~phase:"abft" (fun () ->
                 Abft.Checksum.encode_lower ~pool tiles))
    in
    let st =
      {
        cfg;
        grid = n / b;
        tiles;
        store;
        injector;
        pool;
        obs;
        tag_tile = Printf.sprintf "tile#%d" run_id;
        tag_chk = Printf.sprintf "chk#%d" run_id;
        trace = [];
        verifications = 0;
        corrections = 0;
        reconstructions = 0;
        checksum_repairs = 0;
      }
    in
    let snap = ref None in
    let rollbacks_here = ref 0 in
    let on_boundary j =
      (* Cooperative cancellation: iteration boundaries are the only
         points where no tile is half-written and no span is open, so
         bailing here can never publish a torn result. The partial
         stats let the caller report how far the run got. *)
      if cancel () then
        raise
          (Cancelled
             {
               iteration = j;
               stats =
                 {
                   verifications = st.verifications;
                   corrections = st.corrections;
                   reconstructions = st.reconstructions;
                   checksum_repairs = st.checksum_repairs;
                   uncorrectable_events = !uncorrectable_events;
                   fail_stops = !fail_stops;
                   rollbacks = !rollbacks_total;
                   snapshots = !snapshots_total;
                   restarts = k;
                 };
             });
      if snap_every > 0 && j > 0 && j mod snap_every = 0 then begin
        (* Verified snapshot: sweep the whole triangle first so the
           captured state is known-consistent — rolling back to an
           unverified snapshot would faithfully restore corruption. A
           failure here escalates through the ladder like any other. *)
        verify_blocks st ~j ~point:Trace_op.Pre_snapshot
          (Sets.all_lower ~grid:st.grid);
        (* the span covers only the state capture; the verified sweep
           above is already charged to "verify" *)
        snap :=
          Some
            (Obs.span obs ~op:"snapshot" ~phase:"recovery" (fun () ->
                 Checkpoint.take ~iteration:j st.tiles st.store));
        incr snapshots_total;
        emit st (Trace_op.Snapshot j)
      end
    in
    let rec go from =
      match
        run_attempt st ~from ~on_boundary;
        final_verification st ~sweep:final_sweep;
        ()
      with
      | () -> (k, st, None)
      | exception Recovery.Error reason -> (
          incr uncorrectable_events;
          if Recovery.is_fail_stop reason then incr fail_stops;
          match !snap with
          | Some s when !rollbacks_here < cfg.Config.max_rollbacks ->
              incr rollbacks_here;
              incr rollbacks_total;
              Log.warn (fun m ->
                  m "attempt %d failed (%s); rolling back to iteration %d"
                    k (Recovery.describe reason) s.Checkpoint.iteration);
              Obs.span obs ~op:"rollback" ~phase:"recovery" (fun () ->
                  Checkpoint.restore s ~tiles:st.tiles ~store:st.store);
              emit st (Trace_op.Rollback s.Checkpoint.iteration);
              go s.Checkpoint.iteration
          | _ ->
              Log.warn (fun m ->
                  m "attempt %d failed (%s); recovering by recomputation" k
                    (Recovery.describe reason));
              (* Discard this attempt's state; retry on pristine data
                 (transient injections do not re-fire). *)
              if k < cfg.Config.max_restarts then attempt (k + 1)
              else (k, st, Some reason))
    in
    go 0
  in
  (* The run's sink doubles as the pool's for the duration, so pool
     batch counters land in the same place as the driver's spans; the
     previous sink is restored even if the ladder gives up by raising. *)
  let prev_obs = Pool.obs pool in
  Pool.set_obs pool obs;
  Fun.protect
    ~finally:(fun () -> Pool.set_obs pool prev_obs)
    (fun () ->
      let restarts, st, failure = attempt 0 in
      let l, residual =
        Obs.span obs ~op:"residual" ~phase:"check" (fun () ->
            let l = lower_of_tiles st.tiles in
            (l, residual_of ~input:a l))
      in
      let outcome =
        match failure with
        | Some reason -> Gave_up reason
        | None ->
            if residual <= residual_threshold then Success
            else Silent_corruption
      in
      let stats =
        {
          verifications = st.verifications;
          corrections = st.corrections;
          reconstructions = st.reconstructions;
          checksum_repairs = st.checksum_repairs;
          uncorrectable_events = !uncorrectable_events;
          fail_stops = !fail_stops;
          rollbacks = !rollbacks_total;
          snapshots = !snapshots_total;
          restarts;
        }
      in
      if Obs.enabled obs then begin
        let c name v = Obs.incr obs ~by:(float_of_int v) ("ft." ^ name) in
        c "verifications" stats.verifications;
        c "corrections" stats.corrections;
        c "reconstructions" stats.reconstructions;
        c "checksum_repairs" stats.checksum_repairs;
        c "uncorrectable_events" stats.uncorrectable_events;
        c "fail_stops" stats.fail_stops;
        c "rollbacks" stats.rollbacks;
        c "snapshots" stats.snapshots;
        c "restarts" stats.restarts
      end;
      {
        factor = l;
        outcome;
        residual;
        stats;
        injections_fired = Injector.fired injector;
        trace = List.rev st.trace;
      })

let pp_outcome fmt = function
  | Success -> Format.pp_print_string fmt "success"
  | Silent_corruption -> Format.pp_print_string fmt "silent corruption"
  | Gave_up reason -> Format.fprintf fmt "gave up: %a" Recovery.pp reason

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>outcome: %a@,residual: %.3e@,verifications: %d, corrections: %d, \
     reconstructions: %d, checksum repairs: %d@,rollbacks: %d (snapshots: \
     %d), restarts: %d, uncorrectable: %d, fail-stops: %d@,injections fired: \
     %d@]"
    pp_outcome r.outcome r.residual r.stats.verifications r.stats.corrections
    r.stats.reconstructions r.stats.checksum_repairs r.stats.rollbacks
    r.stats.snapshots r.stats.restarts r.stats.uncorrectable_events
    r.stats.fail_stops
    (List.length r.injections_fired)
