(** The numeric fault-tolerant Cholesky driver.

    Runs the MAGMA-ordered blocked factorization on real data —
    per iteration: SYRK on the diagonal block, GEMM on the trailing
    panel, POTF2 of the diagonal block (the step MAGMA places on the
    CPU), TRSM of the panel — with the configured ABFT scheme woven in:
    checksum encoding up front, the {!Abft.Update} rule after every
    kernel, and verification at the scheme's points (post-update for
    Online, pre-read for Enhanced, end-of-run for Offline).

    Fault injection is physical: the plan's bit flips and wrong values
    are written into the live tiles — or the stored checksum blocks —
    at their scheduled logical points, and detection/correction runs
    the real checksum machinery.

    {b Recovery ladder.} When something goes wrong the driver escalates
    through graduated rungs, cheapest first:

    + {e inline correction} — verification locates and patches the
      element ([stats.corrections]);
    + {e plain-sum reconstruction} — an overwhelmed element (Inf/NaN or
      huge) is rebuilt from the plain-sum checksum row
      ([stats.reconstructions]); checksum-replica repairs
      ([stats.checksum_repairs]) are likewise inline;
    + {e snapshot rollback} — an unrecoverable event restores the last
      verified iteration-boundary snapshot (see {!Checkpoint}) and
      recomputes only the trailing iterations, up to
      [Config.max_rollbacks] times per attempt; snapshots are taken
      every [Config.snapshot_interval] iterations (0 = rung disabled);
    + {e full restart} — recompute from the pristine input
      (the paper's recovery-by-recomputation), up to
      [Config.max_restarts] times;
    + give up, reporting the structured {!Recovery.reason}.

    The driver also emits the logical {!Trace_op} trace that the
    timing-mode {!Schedule} generator must reproduce (snapshots and
    rollbacks are numeric-mode-only trace entries and are off by
    default). *)

open Matrix

type outcome =
  | Success  (** factor returned and residual at working precision *)
  | Silent_corruption
      (** the run completed believing it succeeded, but the factor is
          wrong — e.g. Online-ABFT after a storage error (the paper's
          motivating failure) *)
  | Gave_up of Recovery.reason
      (** every ladder rung exhausted; payload is the last failure *)

type stats = {
  verifications : int;  (** tile verifications performed *)
  corrections : int;  (** elements located and delta-patched (rung 1) *)
  reconstructions : int;
      (** elements rebuilt from the plain-sum row (rung 2) *)
  checksum_repairs : int;
      (** checksum blocks healed after replica disagreement *)
  uncorrectable_events : int;  (** verifications that triggered recovery *)
  fail_stops : int;  (** positive-definiteness losses in POTF2 *)
  rollbacks : int;  (** snapshot rollbacks taken (rung 3), all attempts *)
  snapshots : int;  (** snapshots captured, all attempts *)
  restarts : int;  (** full restarts (rung 4) *)
}

type report = {
  factor : Mat.t;  (** lower-triangular result (last attempt's) *)
  outcome : outcome;
  residual : float;  (** ‖L·Lᵀ − A‖_F / ‖A‖_F against the pristine input *)
  stats : stats;
      (** [verifications], [corrections], [reconstructions] and
          [checksum_repairs] cover the final attempt; [rollbacks],
          [snapshots], [uncorrectable_events] and [fail_stops] are
          whole-run totals *)
  injections_fired : Injector.fired list;
  trace : Trace_op.t list;  (** logical trace of the {e last} attempt *)
}

exception Cancelled of { iteration : int; stats : stats }
(** Raised out of {!factor} when its [cancel] hook returns [true] at an
    iteration boundary. [iteration] is the outer iteration the run was
    about to start; [stats] are the partial whole-run totals at that
    point. The input matrix is untouched and no partial factor is
    returned — cancellation can never publish a half-written result. *)

val factor :
  ?pool:Parallel.Pool.t ->
  ?obs:Obs.t ->
  ?plan:Fault.t ->
  ?final_sweep:bool ->
  ?cancel:(unit -> bool) ->
  Config.t ->
  Mat.t ->
  report
(** [factor ~plan cfg a] factors SPD [a] (not modified). [~final_sweep]
    (default false) adds an end-of-run verification sweep to every
    FT scheme — an extension beyond the paper that lets even
    Online-ABFT catch (and often repair) residual storage errors;
    off by default to stay faithful.

    [cancel] (default [fun () -> false]) is polled cooperatively at the
    top of every outer iteration — including after rollbacks and
    restarts — where no tile write is in flight. When it returns
    [true] the driver raises {!Cancelled} with partial stats, the pool
    slot is freed (the pool's previous obs sink is restored on the way
    out), and the caller sees no torn state. Serving layers use this
    for deadlines and client cancellation; the hook must be cheap and
    thread-safe (typically an [Atomic.get]).

    [pool] (default {!Parallel.Pool.default}, sized by [ABFT_DOMAINS])
    carries the real-core parallelism: row blocks of the trailing GEMM,
    the panel TRSMs, the checksum updates, and the per-tile
    verification sweeps all fan out across it, mirroring the paper's
    N-stream Optimization 1. The factor is bitwise identical for every
    pool size (no work item is ever split, and per-element reduction
    order is fixed), so fault-detection thresholds behave the same
    under any [ABFT_DOMAINS].

    [obs] (default [Obs.null]) receives the run's observability
    stream: one non-nested span per driver-level operation — [init],
    [encode], per-tile [gemm]/[trsm] and per-iteration [syrk]/[potf2]
    (phase [compute]), their [chk-*] counterparts (phase
    [chk-update]), [verify]/[final-verify] (phase [abft]),
    [snapshot]/[rollback] (phase [recovery], state capture/restore
    only), [residual] (phase [check]) — plus ["ft.*"] counters
    mirroring {!stats} at the end. Spans never overlap on a domain, so
    their durations sum to (almost all of) the run's busy time. The
    sink is also attached to [pool] for the duration of the run (its
    previous sink is restored on return). With the default null sink
    every instrumentation point is a single branch and the factor is
    bitwise identical to an uninstrumented run.
    @raise Invalid_argument if [a] is not square, its order is not a
    positive multiple of the block size, or the config is invalid. *)

val residual_threshold : float
(** Residual above which a completed run is classified
    {!Silent_corruption} ([1e-6]). *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit
