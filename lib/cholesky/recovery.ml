type reason =
  | Fail_stop of { iteration : int; column : int }
  | Uncorrectable_block of { block : int * int; detail : string }
  | Final_mismatch of { block : int * int; detail : string }

exception Error of reason

let is_fail_stop = function
  | Fail_stop _ -> true
  | Uncorrectable_block _ | Final_mismatch _ -> false

let describe = function
  | Fail_stop { iteration; column } ->
      Printf.sprintf
        "fail-stop: potf2 lost positive definiteness at iteration %d, column \
         %d"
        iteration column
  | Uncorrectable_block { block = i, c; detail } ->
      Printf.sprintf "block (%d,%d): %s" i c detail
  | Final_mismatch { block = i, c; detail } ->
      Printf.sprintf "final verify (%d,%d): %s" i c detail

let pp fmt r = Format.pp_print_string fmt (describe r)
