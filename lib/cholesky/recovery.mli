(** Structured recovery reasons.

    Every event that makes an attempt unrecoverable in place is one of
    these constructors — the graduated recovery ladder in {!Ft.factor}
    dispatches on the constructor, not on string prefixes, and the
    reason survives intact into {!Ft.outcome} ([Gave_up]) for tests and
    reports. *)

type reason =
  | Fail_stop of { iteration : int; column : int }
      (** POTF2 lost positive definiteness — the classic fail-stop the
          paper recovers from by recomputation *)
  | Uncorrectable_block of { block : int * int; detail : string }
      (** a verification detected an error pattern the scheme cannot
          repair in the given tile *)
  | Final_mismatch of { block : int * int; detail : string }
      (** the end-of-run verification found a block inconsistent
          (Offline-ABFT's detect-only check, or the final sweep) *)

exception Error of reason
(** Raised inside an attempt; caught by the recovery ladder. *)

val is_fail_stop : reason -> bool

val describe : reason -> string
(** Human-readable one-liner; [Fail_stop] descriptions begin with
    ["fail-stop:"] to keep log and report text stable. *)

val pp : Format.formatter -> reason -> unit
