open Hetsim

type result = {
  makespan : float;
  gflops : float;
  overhead_vs_plain : float;
}

let plain_makespan machine ~n =
  let cfg = Config.make ~machine ~scheme:Abft.Scheme.No_ft () in
  (Schedule.run cfg ~n).Schedule.makespan

(* An O(n^2) elementwise compare (or majority vote) pass over the
   factor, bandwidth-bound on the GPU. *)
let compare_pass (machine : Machine.t) ~n =
  let bytes = 2 * 8 * n * n in
  float_of_int bytes /. (machine.Machine.gpu.Device.mem_bandwidth_gbs *. 1e9)

let dmr ?(faulty = false) machine ~n =
  let one = plain_makespan machine ~n in
  let runs = if faulty then 3. else 2. in
  let compares = if faulty then 2. else 1. in
  let makespan = (runs *. one) +. (compares *. compare_pass machine ~n) in
  {
    makespan;
    gflops = float_of_int n ** 3. /. 3. /. makespan /. 1e9;
    overhead_vs_plain = (makespan -. one) /. one;
  }

let tmr machine ~n =
  let one = plain_makespan machine ~n in
  let makespan = (3. *. one) +. compare_pass machine ~n in
  {
    makespan;
    gflops = float_of_int n ** 3. /. 3. /. makespan /. 1e9;
    overhead_vs_plain = (makespan -. one) /. one;
  }
