(** Modular-redundancy baselines — the general-purpose alternatives the
    paper's introduction compares ABFT against.

    DMR runs the computation twice and compares (detects, cannot
    correct: a mismatch forces a third run); TMR runs it three times
    and votes (corrects one faulty replica). Both add a full O(n²)
    compare/vote pass per replica pair. On a single heterogeneous node
    the replicas serialize on the GPU, so the overheads are the
    textbook ~100% / ~200% — which is the point of the comparison:
    ABFT's checksums buy the same single-error protection for a few
    percent. *)

type result = {
  makespan : float;
  gflops : float;
  overhead_vs_plain : float;  (** fraction, e.g. [1.0] = +100% *)
}

val dmr : ?faulty:bool -> Hetsim.Machine.t -> n:int -> result
(** Duplicate + compare. [~faulty:true] charges the third (re-)run a
    detected mismatch forces. *)

val tmr : Hetsim.Machine.t -> n:int -> result
(** Triplicate + vote; a single faulty replica is outvoted at no extra
    cost, so the result does not depend on fault presence. *)
