open Matrix

type state = {
  grid : int;
  pool : Parallel.Pool.t;
  tol : float;
  tiles : Tile.t;
  store : Abft.Checksum.store option;
  injector : Injector.t;
  mutable verifications : int;
  mutable corrections : int;
  mutable reconstructions : int;
  mutable checksum_repairs : int;
}

let lookup st (i, c) =
  if i >= 0 && c >= 0 && i < st.grid && c < st.grid && i >= c then
    Some (Tile.tile st.tiles i c)
  else None

let chk st i c =
  match st.store with Some s -> Abft.Checksum.get s i c | None -> assert false

let count_fixes st fixes =
  List.iter
    (fun (f : Abft.Verify.correction) ->
      match f.Abft.Verify.source with
      | Abft.Verify.Located -> st.corrections <- st.corrections + 1
      | Abft.Verify.Reconstructed ->
          st.reconstructions <- st.reconstructions + 1)
    fixes

let verify st i c =
  st.verifications <- st.verifications + 1;
  match
    Abft.Verify.verify ~tol:st.tol (chk st i c) (Tile.tile st.tiles i c)
  with
  | Abft.Verify.Clean -> ()
  | Abft.Verify.Corrected fixes -> count_fixes st fixes
  | Abft.Verify.Checksum_repaired { cells = _; corrections } ->
      st.checksum_repairs <- st.checksum_repairs + 1;
      count_fixes st corrections
  | Abft.Verify.Uncorrectable msg ->
      raise
        (Recovery.Error
           (Recovery.Uncorrectable_block { block = (i, c); detail = msg }))

let run_attempt st ~scheme =
  let g = st.grid in
  let with_ft = st.store <> None in
  let enhanced = match scheme with Abft.Scheme.Enhanced _ -> true | _ -> false in
  let online = scheme = Abft.Scheme.Online in
  let kk = Abft.Scheme.verification_interval scheme in
  let tile = Tile.tile st.tiles in
  for j = 0 to g - 1 do
    Injector.fire_storage st.injector ~iteration:j ~lookup:(lookup st);
    let gate = j mod kk = 0 in
    (* ---- POTF2: the diagonal tile already carries all its updates ---- *)
    if enhanced && with_ft then verify st j j;
    let diag = tile j j in
    (try Lapack.potf2 Types.Lower diag
     with Lapack.Not_positive_definite k ->
       raise (Recovery.Error (Recovery.Fail_stop { iteration = j; column = k })));
    Injector.fire_compute st.injector ~iteration:j ~op:Fault.Potf2 ~block:(j, j)
      diag;
    if with_ft then Abft.Update.potf2 ~chk:(chk st j j) ~la:diag;
    if online && with_ft then verify st j j;
    (* ---- TRSM: panel solve ---- *)
    if j < g - 1 then begin
      if enhanced && with_ft && gate then begin
        verify st j j;
        for i = j + 1 to g - 1 do
          verify st i j
        done
      end;
      for i = j + 1 to g - 1 do
        let t = tile i j in
        Blas3.trsm ~pool:st.pool Types.Right Types.Lower Types.Trans
          Types.Non_unit_diag diag t;
        Injector.fire_compute st.injector ~iteration:j ~op:Fault.Trsm
          ~block:(i, j) t;
        if with_ft then Abft.Update.trsm ~chk:(chk st i j) ~la:diag;
        if online && with_ft then verify st i j
      done;
      (* ---- eager trailing update (the right-looking signature):
              A(i,c) -= L(i,j) L(c,j)^T for j < c <= i. The L panel of
              iteration j is never read again after this loop. ---- *)
      if enhanced && with_ft && gate then begin
        for i = j + 1 to g - 1 do
          verify st i j
        done;
        for c = j + 1 to g - 1 do
          for i = c to g - 1 do
            verify st i c
          done
        done
      end;
      for c = j + 1 to g - 1 do
        for i = c to g - 1 do
          let t = tile i c in
          Blas3.gemm ~pool:st.pool ~transb:Types.Trans ~alpha:(-1.)
            ~beta:1. (tile i j) (tile c j) t;
          if with_ft then begin
            if i = c then
              Abft.Update.syrk ~chk_a:(chk st i c) ~chk_lc:(chk st i j)
                ~lc:(tile c j)
            else
              Abft.Update.gemm ~chk_b:(chk st i c) ~chk_ld:(chk st i j)
                ~lc:(tile c j)
          end;
          Injector.fire_compute st.injector ~iteration:j
            ~op:(if i = c then Fault.Syrk else Fault.Gemm)
            ~block:(i, c) t;
          if online && with_ft then verify st i c
        done
      done
    end
  done

let final_verification st ~scheme =
  if scheme = Abft.Scheme.Offline && st.store <> None then
    List.iter
      (fun (i, c) ->
        st.verifications <- st.verifications + 1;
        if
          not
            (Abft.Verify.check ~tol:st.tol (chk st i c) (Tile.tile st.tiles i c))
        then
          raise
            (Recovery.Error
               (Recovery.Final_mismatch { block = (i, c); detail = "mismatch" })))
      (Sets.all_lower ~grid:st.grid)

let factor ?pool ?(plan = []) ?(scheme = Abft.Scheme.enhanced ()) ?(block = 16)
    ?(tol = Abft.Verify.default_tol) ?(max_restarts = 3) a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Right_looking.factor: input not square";
  let block = if n < block then n else block in
  if n <= 0 || n mod block <> 0 then
    invalid_arg
      (Printf.sprintf
         "Right_looking.factor: order %d must be a positive multiple of %d" n
         block);
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  let injector = Injector.create plan in
  let uncorrectable_events = ref 0 and fail_stops = ref 0 in
  let rec attempt k =
    let tiles = Tile.of_mat ~block a in
    let store =
      match scheme with
      | Abft.Scheme.No_ft -> None
      | _ -> Some (Abft.Checksum.encode_lower ~pool tiles)
    in
    let st =
      {
        grid = n / block;
        pool;
        tol;
        tiles;
        store;
        injector;
        verifications = 0;
        corrections = 0;
        reconstructions = 0;
        checksum_repairs = 0;
      }
    in
    match
      run_attempt st ~scheme;
      final_verification st ~scheme
    with
    | () -> (k, st, None)
    | exception Recovery.Error reason ->
        incr uncorrectable_events;
        if Recovery.is_fail_stop reason then incr fail_stops;
        if k < max_restarts then attempt (k + 1) else (k, st, Some reason)
  in
  let restarts, st, failure = attempt 0 in
  let l = Mat.tril (Tile.to_mat st.tiles) in
  let recon = Blas3.gemm_alloc ~transb:Types.Trans l l in
  let residual =
    Mat.norm_fro (Mat.sub_mat recon a) /. Float.max 1. (Mat.norm_fro a)
  in
  let outcome =
    match failure with
    | Some reason -> Ft.Gave_up reason
    | None ->
        if residual <= Ft.residual_threshold then Ft.Success
        else Ft.Silent_corruption
  in
  {
    Ft.factor = l;
    outcome;
    residual;
    stats =
      {
        Ft.verifications = st.verifications;
        corrections = st.corrections;
        reconstructions = st.reconstructions;
        checksum_repairs = st.checksum_repairs;
        uncorrectable_events = !uncorrectable_events;
        fail_stops = !fail_stops;
        rollbacks = 0;
        snapshots = 0;
        restarts;
      };
    injections_fired = Injector.fired injector;
    trace = [];
  }
