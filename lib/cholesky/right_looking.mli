(** Right-looking (outer-product) blocked Cholesky with the Enhanced
    scheme — an ablation that justifies the paper's substrate choice.

    MAGMA's Cholesky (the paper's Algorithm 1) is the *inner-product*
    variant: every iteration re-reads all previously factored panels to
    apply their updates lazily. The textbook *right-looking* variant
    applies each panel's trailing update eagerly, in the iteration that
    produces it — so a factored tile is never read again, and pre-read
    verification has no later opportunity to catch a storage error that
    strikes it. Identical arithmetic, identical flop count, crucially
    different read pattern.

    This driver implements the right-looking order with the same
    checksum machinery. The test suite shows the punchline: a storage
    error that Enhanced-ABFT corrects under the inner-product driver
    ({!Ft}) ships silently under this one. The paper never spells this
    out — "MAGMA chose the inner product version because it has more
    BLAS Level-3 operations" — but the fault-coverage consequence is a
    second, equally strong reason. *)

open Matrix

val factor :
  ?pool:Parallel.Pool.t ->
  ?plan:Fault.t ->
  ?scheme:Abft.Scheme.t ->
  ?block:int ->
  ?tol:float ->
  ?max_restarts:int ->
  Mat.t ->
  Ft.report
(** [factor a] — same report type and defaults as {!Ft.factor} (block
    defaulting to 16 or the order if smaller), same fault-window
    mapping ([Syrk] = the eager trailing update of a diagonal tile,
    [Gemm] = of an off-diagonal tile, at the iteration that produces
    the update). Supported schemes: [No_ft], [Online], [Enhanced]
    (pre-read, K-gated trailing verifications), [Offline] (detect-only
    final check). The [trace] field of the report is left empty — there
    is no timing-mode counterpart for this ablation driver.
    @raise Invalid_argument as {!Ft.factor}. *)
