open Hetsim

type result = {
  makespan : float;
  gflops : float;
  reruns : int;
  trace : Trace_op.t list;
  engine : Engine.t;
  placement : Config.placement;
  resilience : Resilient.stats;
  degraded : bool;
}

let uncorrected scheme plan =
  let correctable (inj : Fault.injection) =
    match inj.Fault.window with
    | Fault.In_computation Fault.Potf2 ->
        (* The POTF2 checksum update consumes the (corrupted) factor,
           so the stored checksum chases the corruption: detected but
           not locatable. See Ft's documentation. *)
        false
    | Fault.In_computation _ -> Abft.Scheme.corrects_computing_errors scheme
    | Fault.In_storage | Fault.In_device ->
        (* a corrupted transfer materializes as wrong bits in the tile:
           storage-class, healed only by pre-read verification *)
        Abft.Scheme.corrects_storage_errors scheme
    | Fault.In_checksum | Fault.In_update _ -> (
        (* Checksum-side corruption never touches the factor. The
           replicated store repairs it at the next verification (or it
           is simply never consulted again); only Offline's detect-only
           end-of-run check still forces a rerun on the mismatch. *)
        match scheme with
        | Abft.Scheme.Offline -> false
        | Abft.Scheme.No_ft | Abft.Scheme.Online | Abft.Scheme.Enhanced _ ->
            true)
    | Fault.In_solver _ ->
        (* Solver windows never fire during a factorization pass; the
           timing simulation has nothing to rerun for them. *)
        true
  in
  List.filter (fun inj -> not (correctable inj)) plan

(* State for one simulated pass. *)
type pass_state = {
  cfg : Config.t;
  eng : Engine.t;
  res : Resilient.t;
  bal : Load_balancer.t option;
      (* trailing-update split policy; None = historical GPU-only
         trailing update, byte-identical schedule *)
  obs : Obs.t;
  g : int;
  b : int;
  d : int;
  streams : int;  (* recalc/encode batch width *)
  placement : Config.placement;
  mutable trace : Trace_op.t list;
  mutable prev_chk_ready : Engine.event;
      (* cumulative join of every checksum update issued in earlier
         iterations *)
  mutable lc_hist : Engine.event;
      (* CPU placement: join of every factored-panel download through
         iteration j-2 — those blocks had at least one full iteration
         of link slack. *)
  mutable lc_last_priority : Engine.event;
      (* the priority block L(j, j-1), shipped first after TRSM(j-1)
         because the very next iteration's updates consume it *)
  mutable lc_last_bulk : Engine.event;
      (* the rest of TRSM(j-1)'s panel — needed from iteration j+1 on *)
  mutable degraded_emitted : bool;
      (* the Degraded trace op is recorded once per pass *)
  mutable prev_trsm : Engine.event;
      (* completion of the previous iteration's whole panel solve —
         the producer of the pivot row the CPU slice reads *)
  mutable cpu_owned : int;
      (* bottom block-rows of the trailing set currently host-resident
         under a balanced split; ownership changes are charged as
         migration transfers *)
}

let emit st op = st.trace <- op :: st.trace

let recalc_kernel st = Kernel.Checksum_recalc { b = st.b; nchk = st.d }

(* One verification pass over [blocks]: a concurrent batch of BLAS-2
   recalculations (Optimization 1), preceded for CPU placement by the
   upload of the stored checksums it compares against, plus one trivial
   compare op. Returns the event the consuming kernel must wait for. *)
let verify st ~j ~point ~deps blocks : Engine.event =
  emit st (Trace_op.Verify { j; point; blocks });
  match blocks with
  | [] -> Engine.join st.eng deps
  | _ ->
      let nb = List.length blocks in
      let deps =
        match st.placement with
        | Config.Cpu_offload ->
            let bytes = nb * st.d * st.b * 8 in
            [ Resilient.transfer st.res ~deps ~phase:"chk-transfer" ~dir:`H2d bytes ]
        | _ -> deps
      in
      let batch =
        Resilient.submit_batch st.res ~deps ~phase:"chk-recalc"
          ~streams:st.streams
          (List.init nb (fun _ -> recalc_kernel st))
      in
      Resilient.submit st.res ~deps:[ batch ] ~phase:"chk-compare" Engine.Gpu
        (Kernel.Checksum_compare { b = st.b * nb; nchk = st.d })

(* Aggregated checksum-update work for one op class of one iteration:
   [count] skinny (d x b) x (b x b) products. Returns the completion
   event, routed per Optimization 2 placement. *)
let chk_update st ~deps ~count kernel_of_count : Engine.event =
  if count = 0 then Engine.join st.eng deps
  else begin
    let kernel = kernel_of_count count in
    match st.placement with
    | Config.Auto -> assert false
    | Config.Gpu_inline ->
        Resilient.submit st.res ~deps ~phase:"chk-update" Engine.Gpu kernel
    | Config.Gpu_stream ->
        Resilient.submit_background st.res ~deps ~phase:"chk-update" kernel
    | Config.Cpu_offload ->
        Resilient.submit st.res ~deps ~phase:"chk-update" Engine.Cpu kernel
  end

let gemm_update_kernel st count =
  (* count skinny gemms (d x b) . (b x b): inner dim b. *)
  Kernel.Gemm { m = st.d * count; n = st.b; k = st.b }

let trsm_update_kernel st count =
  Kernel.Trsm { order = st.b; nrhs = st.d * count }

let run_pass st ~with_ft ~enhanced ~online ~offline ~kk =
  let g = st.g and b = st.b in
  let eng = st.eng in
  let res = st.res in
  let block_bytes = 8 * b * b in
  (* Initial encoding: one recalc-shaped pass over every lower tile. *)
  let encode_ev =
    if with_ft then begin
      emit st Trace_op.Encode;
      let nblocks = g * (g + 1) / 2 in
      let ev =
        Engine.submit_batch eng ~phase:"chk-encode" ~streams:st.streams
          (List.init nblocks (fun _ -> recalc_kernel st))
      in
      match st.placement with
      | Config.Cpu_offload ->
          (* checksums live host-side: initial download (§VI 6a). *)
          Engine.transfer eng ~deps:[ ev ] ~phase:"chk-transfer" ~dir:`D2h
            (nblocks * st.d * b * 8)
      | _ -> ev
    end
    else Engine.ready
  in
  st.prev_chk_ready <- encode_ev;
  st.lc_hist <- Engine.ready;
  st.lc_last_priority <- Engine.ready;
  st.lc_last_bulk <- Engine.ready;
  st.prev_trsm <- Engine.ready;
  st.cpu_owned <- 0;
  for j = 0 to g - 1 do
    emit st (Trace_op.Iteration_start j);
    (* ---- trailing-update split (load balancer) ---- *)
    let trail = g - 1 - j in
    let split =
      match st.bal with
      | None -> None
      | Some bal ->
          let kernel =
            if Sets.gemm_exists ~grid:g ~j then
              Kernel.Gemm { m = trail * b; n = b; k = j * b }
            else Kernel.Trsm { order = b; nrhs = trail * b }
          in
          let s = Load_balancer.tick bal ~kernel ~rows:trail in
          Obs.observe st.obs "balance.gpu_share" s.Load_balancer.share;
          if s.Load_balancer.resplit then begin
            Obs.incr st.obs "balance.resplits";
            emit st
              (Trace_op.Rebalance
                 {
                   j;
                   gpu_rows = s.Load_balancer.gpu_rows;
                   cpu_rows = s.Load_balancer.cpu_rows;
                 })
          end;
          Some s
    in
    let cpu_rows =
      match split with None -> 0 | Some s -> s.Load_balancer.cpu_rows
    in
    (* Ownership migration: a block-row changing sides carries its
       current row state — the j factored panel blocks plus the live
       trailing tile — over the link once, after the solve that last
       touched it. Rows that stay put pay nothing. *)
    let migrate_ev =
      match split with
      | None -> Engine.ready
      | Some _ ->
          let owned = min st.cpu_owned trail in
          let delta = cpu_rows - owned in
          st.cpu_owned <- cpu_rows;
          if delta = 0 then Engine.ready
          else begin
            Obs.incr st.obs
              ~by:(float_of_int (abs delta))
              "balance.migrated_rows";
            let bytes = abs delta * (j + 1) * block_bytes in
            let dir = if delta > 0 then `D2h else `H2d in
            Resilient.transfer res ~deps:[ st.prev_trsm ] ~phase:"balance" ~dir
              bytes
          end
    in
    (* The CPU slice multiplies against the pivot row L(j, 0..j-1),
       produced device-side by the previous iteration's panel solve. *)
    let pivot_ev =
      if cpu_rows > 0 && j > 0 then
        Resilient.transfer res ~deps:[ st.prev_trsm ] ~phase:"balance"
          ~dir:`D2h (j * block_bytes)
      else Engine.ready
    in
    let gate = Sets.k_gate ~k:kk ~j in
    let chk_updates = ref [] in
    (* Verification compares against stored checksums, so each verify
       point waits for the updates that touched exactly its operands:
       all earlier-iteration updates (cumulative [prior_chk]), plus the
       specific same-iteration update events named per point below. *)
    let prior_chk = st.prev_chk_ready in
    (* For CPU placement, this iteration's updates need the LC row
       blocks host-side: everything through iteration j-2 plus the
       priority block from j-1 (see the [lc_*] fields). *)
    let lc_panel_ev =
      if with_ft && st.placement = Config.Cpu_offload then
        Engine.join eng [ st.lc_hist; st.lc_last_priority ]
      else Engine.ready
    in
    (* ---- SYRK ---- *)
    let syrk_ev =
      if Sets.syrk_exists ~j then begin
        let pre =
          if enhanced then
            verify st ~j ~point:Trace_op.Pre_syrk ~deps:[ prior_chk ]
              (Sets.pre_syrk ~j)
          else Engine.ready
        in
        let ev =
          Resilient.submit res ~deps:[ pre ] ~phase:"compute" Engine.Gpu
            (Kernel.Syrk { n = b; k = j * b })
        in
        emit st (Trace_op.Syrk j);
        let syrk_chk =
          if with_ft then begin
            let u =
              chk_update st ~deps:[ lc_panel_ev ] ~count:j (gemm_update_kernel st)
            in
            emit st (Trace_op.Chk_syrk j);
            chk_updates := u :: !chk_updates;
            u
          end
          else Engine.ready
        in
        if online then
          ignore
            (verify st ~j ~point:Trace_op.Post_syrk
               ~deps:[ ev; syrk_chk; prior_chk ]
               (Sets.post_syrk ~j));
        (ev, syrk_chk)
      end
      else (Engine.ready, Engine.ready)
    in
    let syrk_ev, syrk_chk_ev = syrk_ev in
    (* ---- diagonal block to host (verified first under Enhanced) ---- *)
    let pre_potf2_ev =
      if enhanced then
        verify st ~j ~point:Trace_op.Pre_potf2
          ~deps:[ syrk_ev; prior_chk; syrk_chk_ev ]
          (Sets.pre_potf2 ~j)
      else Engine.ready
    in
    let d2h_ev =
      Resilient.transfer res ~deps:[ syrk_ev; pre_potf2_ev ] ~dir:`D2h
        block_bytes
    in
    emit st (Trace_op.D2h_diag j);
    (* ---- GEMM ---- *)
    let gemm_ev =
      if Sets.gemm_exists ~grid:g ~j then begin
        let pre =
          if enhanced && gate then
            verify st ~j ~point:Trace_op.Pre_gemm ~deps:[ prior_chk ]
              (Sets.pre_gemm ~grid:g ~j)
          else Engine.ready
        in
        let gpu_rows = trail - cpu_rows in
        let gemm_gpu =
          if gpu_rows > 0 then
            Resilient.submit res ~deps:[ pre ] ~phase:"compute" Engine.Gpu
              (Kernel.Gemm { m = gpu_rows * b; n = b; k = j * b })
          else Engine.ready
        in
        let gemm_cpu =
          if cpu_rows > 0 then
            Resilient.submit res
              ~deps:[ pre; pivot_ev; migrate_ev ]
              ~phase:"compute" Engine.Cpu
              (Kernel.Gemm { m = cpu_rows * b; n = b; k = j * b })
          else Engine.ready
        in
        let ev =
          if cpu_rows = 0 then gemm_gpu
          else Engine.join eng [ gemm_gpu; gemm_cpu ]
        in
        emit st (Trace_op.Gemm j);
        let gemm_chk =
          if with_ft then begin
            let u =
              chk_update st ~deps:[ lc_panel_ev ]
                ~count:((g - 1 - j) * j)
                (gemm_update_kernel st)
            in
            emit st (Trace_op.Chk_gemm j);
            chk_updates := u :: !chk_updates;
            u
          end
          else Engine.ready
        in
        if online then
          ignore
            (verify st ~j ~point:Trace_op.Post_gemm
               ~deps:[ ev; gemm_chk; prior_chk ]
               (Sets.post_gemm ~grid:g ~j));
        (ev, gemm_chk, gemm_gpu, gemm_cpu)
      end
      else (Engine.ready, Engine.ready, Engine.ready, Engine.ready)
    in
    let gemm_ev, gemm_chk_ev, gemm_gpu_ev, gemm_cpu_ev = gemm_ev in
    (* ---- POTF2 on the CPU, overlapping the GEMM ---- *)
    let potf2_ev =
      Resilient.submit res ~deps:[ d2h_ev ] ~phase:"compute" Engine.Cpu
        (Kernel.Potf2 { n = b })
    in
    emit st (Trace_op.Potf2 j);
    let chk_potf2_ev =
      if with_ft then begin
        (* Algorithm 2 is tiny; it runs where the factored block lives
           (the CPU), or inline per placement for the GPU variants. *)
        let u =
          chk_update st ~deps:[ potf2_ev ] ~count:1 (trsm_update_kernel st)
        in
        emit st (Trace_op.Chk_potf2 j);
        chk_updates := u :: !chk_updates;
        u
      end
      else Engine.ready
    in
    if online then
      ignore
        (verify st ~j ~point:Trace_op.Post_potf2
           ~deps:[ potf2_ev; chk_potf2_ev; prior_chk ]
           (Sets.post_potf2 ~j));
    (* ---- factored block back to the device ---- *)
    let h2d_ev =
      Resilient.transfer res ~deps:[ potf2_ev ] ~dir:`H2d block_bytes
    in
    emit st (Trace_op.H2d_diag j);
    (* ---- TRSM ---- *)
    if Sets.trsm_exists ~grid:g ~j then begin
      let pre =
        if enhanced && gate then
          verify st ~j ~point:Trace_op.Pre_trsm
            ~deps:[ h2d_ev; gemm_ev; prior_chk; chk_potf2_ev; gemm_chk_ev ]
            (Sets.pre_trsm ~grid:g ~j)
        else Engine.ready
      in
      let ev =
        if cpu_rows = 0 then
          Resilient.submit res
            ~deps:[ h2d_ev; gemm_ev; pre ]
            ~phase:"compute" Engine.Gpu
            (Kernel.Trsm { order = b; nrhs = (g - 1 - j) * b })
        else begin
          (* each side solves exactly the rows whose update it owns;
             the CPU side reads the factored diagonal straight from
             POTF2's host-resident output, no h2d round-trip *)
          let gpu_part =
            if trail - cpu_rows > 0 then
              Resilient.submit res
                ~deps:[ h2d_ev; gemm_gpu_ev; pre ]
                ~phase:"compute" Engine.Gpu
                (Kernel.Trsm { order = b; nrhs = (trail - cpu_rows) * b })
            else Engine.ready
          in
          let cpu_part =
            Resilient.submit res
              ~deps:[ potf2_ev; gemm_cpu_ev; pre; migrate_ev ]
              ~phase:"compute" Engine.Cpu
              (Kernel.Trsm { order = b; nrhs = cpu_rows * b })
          in
          Engine.join eng [ gpu_part; cpu_part ]
        end
      in
      st.prev_trsm <- ev;
      emit st (Trace_op.Trsm j);
      if with_ft && st.placement = Config.Cpu_offload then begin
        (* stream the freshly factored panel to the host (§VI 6b),
           next iteration's LC block first *)
        let priority =
          Resilient.transfer res ~deps:[ ev ] ~phase:"chk-transfer" ~dir:`D2h
            block_bytes
        in
        let bulk =
          if g - 2 - j > 0 then
            Resilient.transfer res ~deps:[ ev ] ~phase:"chk-transfer" ~dir:`D2h
              ((g - 2 - j) * block_bytes)
          else Engine.ready
        in
        st.lc_hist <-
          Engine.join eng [ st.lc_hist; st.lc_last_priority; st.lc_last_bulk ];
        st.lc_last_priority <- priority;
        st.lc_last_bulk <- bulk
      end;
      let trsm_chk =
        if with_ft then begin
          let u =
            chk_update st
              ~deps:[ chk_potf2_ev; h2d_ev ]
              ~count:(g - 1 - j) (trsm_update_kernel st)
          in
          emit st (Trace_op.Chk_trsm j);
          chk_updates := u :: !chk_updates;
          u
        end
        else Engine.ready
      in
      if online then
        ignore
          (verify st ~j ~point:Trace_op.Post_trsm
             ~deps:[ ev; trsm_chk; prior_chk ]
             (Sets.post_trsm ~grid:g ~j))
    end;
    st.prev_chk_ready <- Engine.join eng (prior_chk :: !chk_updates);
    if Resilient.degraded res && not st.degraded_emitted then begin
      st.degraded_emitted <- true;
      emit st (Trace_op.Degraded j)
    end
  done;
  (* ---- Offline-ABFT's end-of-run verification ---- *)
  if offline then begin
    let blocks = Sets.all_lower ~grid:st.g in
    ignore
      (verify st ~j:(g - 1) ~point:Trace_op.Post_trsm ~deps:[ st.prev_chk_ready ]
         blocks);
    (* Replace the generic marker: the trace records Final_verify. *)
    (match st.trace with
    | Trace_op.Verify _ :: rest -> st.trace <- Trace_op.Final_verify blocks :: rest
    | _ -> assert false)
  end

let run ?pool:_ ?(plan = []) ?(d = 2) ?policy ?(fault_seed = 0) ?obs cfg ~n =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Schedule.run: " ^ e));
  let b = Config.block_size cfg in
  if n <= 0 || n mod b <> 0 then
    invalid_arg
      (Printf.sprintf
         "Schedule.run: n=%d must be a positive multiple of the block size %d"
         n b);
  let scheme = cfg.Config.scheme in
  let with_ft = scheme <> Abft.Scheme.No_ft in
  let enhanced = match scheme with Abft.Scheme.Enhanced _ -> true | _ -> false in
  let online = scheme = Abft.Scheme.Online in
  let offline = scheme = Abft.Scheme.Offline in
  let kk = Abft.Scheme.verification_interval scheme in
  let placement =
    if with_ft then Config.resolve_placement cfg ~n else Config.Gpu_inline
  in
  let eng = Engine.create ~seed:fault_seed cfg.Config.machine in
  let bal = Config.balancer cfg in
  let res = Resilient.create ?policy ?balancer:bal ~seed:fault_seed ?obs eng in
  let st =
    {
      cfg;
      eng;
      res;
      bal;
      obs = Option.value obs ~default:Obs.null;
      g = n / b;
      b;
      d;
      streams = Config.effective_recalc_streams cfg;
      placement;
      trace = [];
      prev_chk_ready = Engine.ready;
      lc_hist = Engine.ready;
      lc_last_priority = Engine.ready;
      lc_last_bulk = Engine.ready;
      degraded_emitted = false;
      prev_trsm = Engine.ready;
      cpu_owned = 0;
    }
  in
  run_pass st ~with_ft ~enhanced ~online ~offline ~kk;
  (* A corrupted transfer landed wrong bits in device (or host) memory:
     for the timeline that is exactly an In_storage fault, so it forces
     a rerun on any scheme that cannot locate-and-correct storage
     errors. The resilient driver deliberately does not retry it. *)
  let transfer_faults =
    (Resilient.stats res).Resilient.corrupted_transfers > 0
    && not (Abft.Scheme.corrects_storage_errors scheme)
  in
  let reruns =
    if uncorrected scheme plan <> [] || transfer_faults then 1 else 0
  in
  if reruns > 0 then begin
    st.trace <- [];
    st.degraded_emitted <- false;
    run_pass st ~with_ft ~enhanced ~online ~offline ~kk
  end;
  let makespan = Engine.makespan eng in
  {
    makespan;
    gflops = float_of_int n ** 3. /. 3. /. makespan /. 1e9;
    reruns;
    trace = List.rev st.trace;
    engine = eng;
    placement;
    resilience = Resilient.stats res;
    degraded = Resilient.degraded res;
  }

(* A batch of independent simulations — a parameter sweep — fanned out
   across the pool. Each run builds its own engine and state, so runs
   share nothing mutable; results come back in input order. *)
let run_many ?pool ?(d = 2) jobs =
  let module Pool = Parallel.Pool in
  let jobs = Array.of_list jobs in
  let nj = Array.length jobs in
  let out = Array.make nj None in
  let run_one k =
    let cfg, n = jobs.(k) in
    out.(k) <- Some (run ~d cfg ~n)
  in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  if Pool.size pool > 1 && nj > 1 then
    Pool.parallel_for ~chunk:1 pool ~lo:0 ~hi:nj run_one
  else
    for k = 0 to nj - 1 do
      run_one k
    done;
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) out)
