(** Timing-mode execution: the same factorization as {!Ft}, issued as
    cost-modelled operations to the {!Hetsim.Engine} instead of being
    computed on data.

    This is what lets the benches reproduce the paper's experiments at
    the paper's sizes (5120…30720): the schedule — which kernels run
    where, what depends on what, what overlaps what — is generated for
    any [n] without allocating an n×n matrix. Its logical
    {!Trace_op} trace is asserted equal to the numeric driver's in the
    test suite, so the virtual clock measures the same algorithm the
    numeric mode validates.

    Modelling decisions (kept deliberately coarse; each is one engine
    operation per kernel *class* per iteration so paper-scale runs stay
    cheap):

    - Compute: SYRK/GEMM/TRSM are single GPU kernels with MAGMA's exact
      shapes; POTF2 runs on the CPU between the two diagonal-block PCIe
      transfers and overlaps the GPU's GEMM, as in Algorithm 1.
    - Verification: each verify point is one concurrent-batch of
      per-tile BLAS-2 recalculation kernels ({!Hetsim.Engine.submit_batch}
      with the configured stream count — Optimization 1), a dependency
      of the consuming kernel (pre-read) or serialized after the
      producing kernel (post-update).
    - Checksum updating: aggregated per op class per iteration;
      placement per Optimization 2 — inline on the GPU main engine
      (baseline), on the GPU spare channel, or on the CPU with the
      paper's §VI transfer volumes (initial checksum download, per-
      iteration LC-panel download, per-verification checksum upload).
    - Faults: a correctable injection costs (negligibly) nothing; an
      injection the scheme does not correct forces one full re-run —
      the paper's recovery accounting in Tables VII/VIII, where both
      scheme-detected recomputation and externally-detected silent
      corruption are charged as a second pass. *)

type result = {
  makespan : float;  (** virtual seconds, including any recovery pass *)
  gflops : float;  (** (n³/3) / makespan / 1e9 *)
  reruns : int;  (** recovery passes appended (0 or 1 per plan) *)
  trace : Trace_op.t list;  (** logical trace of the last pass *)
  engine : Hetsim.Engine.t;  (** for phase decomposition and traces *)
  placement : Config.placement;  (** resolved, never [Auto] *)
  resilience : Hetsim.Resilient.stats;
      (** retry/quarantine/degradation accounting; all-zero on
          reliable machines *)
  degraded : bool;
      (** true iff the GPU was quarantined or lost and the run
          finished on the CPU *)
}

val run :
  ?pool:Parallel.Pool.t ->
  ?plan:Fault.t ->
  ?d:int ->
  ?policy:Hetsim.Resilient.policy ->
  ?fault_seed:int ->
  ?obs:Obs.t ->
  Config.t ->
  n:int ->
  result
(** [run ~plan cfg ~n] simulates the factorization of an n×n matrix.
    [~d] is the checksum row count (default 2). [pool] is accepted for
    call-site uniformity with {!Ft.factor} but unused: one simulation
    is a single sequential sweep of a virtual clock (the concurrency it
    models — streams, engines — is virtual). Use {!run_many} to spread
    a sweep of independent simulations across real cores. [obs] is
    handed to the {!Hetsim.Resilient} driver, which emits one
    ["resilient.*"] counter per scheduling-level resilience event
    (retries, hangs, quarantines, …) into it.

    Every operation is issued through a {!Hetsim.Resilient} driver
    ([?policy], default {!Hetsim.Resilient.default_policy}) over an
    engine seeded with [fault_seed] (default 0). On machines whose
    devices are {!Hetsim.Device.reliable} — every preset — this is an
    exact pass-through; with a non-trivial reliability profile
    (see {!Hetsim.Machine.with_reliability}) kernels fault, hang, and
    drop out, and the driver retries/quarantines/degrades, all
    deterministically in [fault_seed]. A corrupted transfer counts as
    an In_storage fault for the rerun accounting: it forces a rerun
    unless the scheme corrects storage errors.
    @raise Hetsim.Resilient.Gave_up if the CPU fallback is exhausted.
    @raise Invalid_argument if [n] is not a positive multiple of the
    block size. *)

val run_many :
  ?pool:Parallel.Pool.t -> ?d:int -> (Config.t * int) list -> result list
(** [run_many jobs] simulates every [(cfg, n)] job and returns results
    in order. Independent simulations fan out across [pool] (default
    {!Parallel.Pool.default}) — this is how the bench sweeps use real
    cores: many virtual machines, one per domain. *)

val uncorrected : Abft.Scheme.t -> Fault.t -> Fault.t
(** The injections of a plan that the scheme does {e not} correct in
    time (each forces recovery): computing errors survive [No_ft] and
    [Offline] (and POTF2-output errors survive everything — the
    checksum update itself consumes the corrupted factor); storage
    errors survive everything but [Enhanced]. *)
