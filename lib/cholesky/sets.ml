let syrk_exists ~j = j >= 1
let gemm_exists ~grid ~j = j >= 1 && j < grid - 1
let trsm_exists ~grid ~j = j < grid - 1
let k_gate ~k ~j = j mod k = 0
let pre_syrk ~j = (j, j) :: List.init j (fun c -> (j, c))

let pre_gemm ~grid ~j =
  let panel = List.init (grid - 1 - j) (fun d -> (j + 1 + d, j)) in
  let factored =
    List.concat_map
      (fun d ->
        let i = j + 1 + d in
        List.init j (fun c -> (i, c)))
      (List.init (grid - 1 - j) Fun.id)
  in
  panel @ factored

let pre_potf2 ~j = [ (j, j) ]

let pre_trsm ~grid ~j =
  (j, j) :: List.init (grid - 1 - j) (fun d -> (j + 1 + d, j))

let post_syrk ~j = [ (j, j) ]
let post_gemm ~grid ~j = List.init (grid - 1 - j) (fun d -> (j + 1 + d, j))
let post_potf2 ~j = [ (j, j) ]
let post_trsm ~grid ~j = List.init (grid - 1 - j) (fun d -> (j + 1 + d, j))

let all_lower ~grid =
  List.concat_map
    (fun c -> List.init (grid - c) (fun d -> (c + d, c)))
    (List.init grid Fun.id)
