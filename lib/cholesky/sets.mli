(** Verification sets and kernel-existence predicates, shared by the
    numeric driver and the timing-mode schedule generator.

    Both modes must verify exactly the same tiles in exactly the same
    order for their logical traces to be comparable, so the sets are
    defined once here. Block coordinates are (row, col) over the lower
    triangle of a [grid × grid] tiling; iteration [j] factors block
    column [j].

    The sets implement the paper's Table I:
    - SYRK reads the diagonal block and the row panel [L(j, 0..j-1)] —
      Enhanced verifies those *every* iteration (errors entering the
      diagonal can destroy positive definiteness, §V-C).
    - GEMM reads the trailing panel blocks [A(i, j)], the factored
      blocks [L(i, c)] below row [j], and the row panel [L(j, c)]; the
      row panel is already covered by the SYRK set in the same
      iteration, so it is deduplicated away. K-gated (Optimization 3).
    - POTF2 reads the diagonal block (always verified).
    - TRSM reads the factored diagonal [L(j,j)] and the panel
      [A(i, j)]. K-gated. *)

val syrk_exists : j:int -> bool
(** There is a rank-k update at iteration [j] iff [j >= 1]. *)

val gemm_exists : grid:int -> j:int -> bool
(** Rows below and columns to the left: [1 <= j < grid - 1]. *)

val trsm_exists : grid:int -> j:int -> bool
(** Rows below: [j < grid - 1]. *)

val k_gate : k:int -> j:int -> bool
(** Whether the K-gated verifications run at iteration [j]:
    [j mod k = 0]. *)

val pre_syrk : j:int -> (int * int) list
(** [(j,j); (j,0); …; (j,j-1)]. *)

val pre_gemm : grid:int -> j:int -> (int * int) list
(** Panel blocks [(i,j)] for [i > j], then factored blocks [(i,c)] for
    [i > j], [c < j], row-major. *)

val pre_potf2 : j:int -> (int * int) list
val pre_trsm : grid:int -> j:int -> (int * int) list
val post_syrk : j:int -> (int * int) list
val post_gemm : grid:int -> j:int -> (int * int) list
val post_potf2 : j:int -> (int * int) list
val post_trsm : grid:int -> j:int -> (int * int) list

val all_lower : grid:int -> (int * int) list
(** Every lower-triangle tile, column-major — the Offline-ABFT final
    verification set. *)
