open Matrix

type t = { a : Mat.t; l : Mat.t; ft_report : Ft.report }

type refine_stats = { iterations : int; final_residual : float }

let factorize ?pool ?obs ?plan ?cfg a =
  let cfg =
    match cfg with
    | Some c -> c
    | None ->
        Config.make ~machine:Hetsim.Machine.testbench
          ~block:(Config.divisor_block (Mat.rows a))
          ()
  in
  let ft_report = Ft.factor ?pool ?obs ?plan cfg a in
  (match ft_report.Ft.outcome with
  | Ft.Success -> ()
  | o ->
      failwith
        (Format.asprintf "Solve.factorize: factorization failed: %a"
           Ft.pp_outcome o));
  { a = Mat.copy a; l = ft_report.Ft.factor; ft_report }

let report t = t.ft_report
let factor_matrix t = t.l

let triangular_solve_vec l x =
  if Mat.rows l <> Mat.cols l then
    invalid_arg "Solve.triangular_solve_vec: factor is not square";
  if Mat.rows l <> Array.length x then
    invalid_arg "Solve.triangular_solve_vec: vector has wrong length";
  Blas2.trsv Types.Lower Types.No_trans Types.Non_unit_diag l x;
  Blas2.trsv Types.Lower Types.Trans Types.Non_unit_diag l x

let relative_residual t ~x ~b =
  let r = Mat.sub_mat (Blas3.gemm_alloc t.a x) b in
  let scale = Float.max 1e-300 (Mat.norm_inf t.a *. Mat.norm_inf x) in
  Mat.norm_inf r /. scale

let solve ?(refine = 2) t b =
  if Mat.rows b <> Mat.rows t.a then
    invalid_arg "Solve.solve: right-hand side has wrong height";
  if refine < 0 then invalid_arg "Solve.solve: refine must be >= 0";
  let x = Mat.copy b in
  Lapack.potrs Types.Lower t.l x;
  let eps_goal = 1e-14 in
  let rec go i =
    let res = relative_residual t ~x ~b in
    if i >= refine || res <= eps_goal then { iterations = i; final_residual = res }
    else begin
      (* r = b - A x; solve A d = r; x += d *)
      let r = Mat.sub_mat b (Blas3.gemm_alloc t.a x) in
      Lapack.potrs Types.Lower t.l r;
      for j = 0 to Mat.cols x - 1 do
        for i' = 0 to Mat.rows x - 1 do
          Mat.set x i' j (Mat.get x i' j +. Mat.get r i' j)
        done
      done;
      go (i + 1)
    end
  in
  let stats = go 0 in
  (x, stats)

let solve_vec ?refine t b =
  let bm = Mat.init (Array.length b) 1 (fun i _ -> b.(i)) in
  let x, stats = solve ?refine t bm in
  (Mat.col x 0, stats)
