(** High-level fault-tolerant SPD solver: factor once with the
    configured ABFT scheme, solve any number of right-hand sides, and
    optionally polish each solution with iterative refinement.

    This is the API a downstream user actually wants — the paper's
    motivation is "solving linear equations arising from least squares,
    optimization, Monte Carlo, Kalman filters", and those users call
    [posv], not [potrf]. Iterative refinement (residual → correction →
    update, at working precision) both tightens the solution and acts
    as an independent end-to-end acceptance check on the factor: a
    corrupted factor cannot pass the refinement residual test, so
    refinement doubles as a last line of defence behind ABFT. *)

open Matrix

type t
(** A factorized SPD system, ready to solve. *)

type refine_stats = {
  iterations : int;  (** refinement steps actually taken *)
  final_residual : float;  (** ‖A·x − b‖_∞ / (‖A‖_∞·‖x‖_∞) after the last *)
}

val factorize :
  ?pool:Parallel.Pool.t -> ?obs:Obs.t -> ?plan:Fault.t -> ?cfg:Config.t ->
  Mat.t -> t
(** [factorize a] factors SPD [a] with {!Ft.factor} (default config:
    Enhanced on the testbench machine with a block dividing the order).
    [pool] and [obs] are passed through to {!Ft.factor}; the factor is
    bitwise identical for every pool size.
    The input matrix is retained (unmodified) for refinement residuals.
    @raise Failure if the factorization outcome is not [Success].
    @raise Invalid_argument as {!Ft.factor}. *)

val report : t -> Ft.report
(** The underlying factorization report (corrections, restarts, …). *)

val factor_matrix : t -> Mat.t
(** The lower-triangular Cholesky factor (live, not a copy) — what the
    iterative-solver layer feeds to {!triangular_solve_vec} as a
    preconditioner, and what a solver fault campaign corrupts through
    [Fault.In_solver Sol_precond]. *)

val triangular_solve_vec : Mat.t -> Vec.t -> unit
(** [triangular_solve_vec l x] overwrites [x] with [L⁻ᵀ(L⁻¹x)] — the
    forward/backward triangular-solve pair against a lower Cholesky (or
    incomplete-Cholesky) factor. This is the preconditioner application
    of the PCG layer.
    @raise Invalid_argument on shape mismatch.
    @raise Failure on a zero pivot (as {!Matrix.Blas2.trsv}). *)

val solve : ?refine:int -> t -> Mat.t -> Mat.t * refine_stats
(** [solve ~refine t b] returns the solution of [A·X = b] (fresh) after
    at most [refine] refinement steps (default 2; 0 disables).
    Refinement stops early once the componentwise relative residual
    reaches working precision.
    @raise Invalid_argument on shape mismatch. *)

val solve_vec : ?refine:int -> t -> Vec.t -> Vec.t * refine_stats
(** Single right-hand-side convenience wrapper. *)
