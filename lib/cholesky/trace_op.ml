type verify_point =
  | Pre_syrk
  | Pre_gemm
  | Pre_potf2
  | Pre_trsm
  | Post_syrk
  | Post_gemm
  | Post_potf2
  | Post_trsm
  | Pre_snapshot

type t =
  | Encode
  | Iteration_start of int
  | Verify of { j : int; point : verify_point; blocks : (int * int) list }
  | Syrk of int
  | Chk_syrk of int
  | D2h_diag of int
  | Gemm of int
  | Chk_gemm of int
  | Potf2 of int
  | Chk_potf2 of int
  | H2d_diag of int
  | Trsm of int
  | Chk_trsm of int
  | Final_verify of (int * int) list
  | Snapshot of int
  | Rollback of int
  | Restart
  | Degraded of int
  | Rebalance of { j : int; gpu_rows : int; cpu_rows : int }

let equal a b = a = b

let diff a b =
  let rec go i a b =
    match (a, b) with
    | [], [] -> None
    | x :: a', y :: b' -> if x = y then go (i + 1) a' b' else Some (i, Some x, Some y)
    | x :: _, [] -> Some (i, Some x, None)
    | [], y :: _ -> Some (i, None, Some y)
  in
  go 0 a b

let point_name = function
  | Pre_syrk -> "pre-syrk"
  | Pre_gemm -> "pre-gemm"
  | Pre_potf2 -> "pre-potf2"
  | Pre_trsm -> "pre-trsm"
  | Post_syrk -> "post-syrk"
  | Post_gemm -> "post-gemm"
  | Post_potf2 -> "post-potf2"
  | Post_trsm -> "post-trsm"
  | Pre_snapshot -> "pre-snapshot"

let pp fmt = function
  | Encode -> Format.pp_print_string fmt "encode"
  | Iteration_start j -> Format.fprintf fmt "iter %d" j
  | Verify { j; point; blocks } ->
      Format.fprintf fmt "verify[%d] %s {%s}" j (point_name point)
        (String.concat ","
           (List.map (fun (i, c) -> Printf.sprintf "(%d,%d)" i c) blocks))
  | Syrk j -> Format.fprintf fmt "syrk %d" j
  | Chk_syrk j -> Format.fprintf fmt "chk-syrk %d" j
  | D2h_diag j -> Format.fprintf fmt "d2h %d" j
  | Gemm j -> Format.fprintf fmt "gemm %d" j
  | Chk_gemm j -> Format.fprintf fmt "chk-gemm %d" j
  | Potf2 j -> Format.fprintf fmt "potf2 %d" j
  | Chk_potf2 j -> Format.fprintf fmt "chk-potf2 %d" j
  | H2d_diag j -> Format.fprintf fmt "h2d %d" j
  | Trsm j -> Format.fprintf fmt "trsm %d" j
  | Chk_trsm j -> Format.fprintf fmt "chk-trsm %d" j
  | Final_verify blocks -> Format.fprintf fmt "final-verify (%d blocks)" (List.length blocks)
  | Snapshot j -> Format.fprintf fmt "snapshot %d" j
  | Rollback j -> Format.fprintf fmt "rollback %d" j
  | Restart -> Format.pp_print_string fmt "restart"
  | Degraded j -> Format.fprintf fmt "degraded %d" j
  | Rebalance { j; gpu_rows; cpu_rows } ->
      Format.fprintf fmt "rebalance %d gpu=%d cpu=%d" j gpu_rows cpu_rows

let pp_trace fmt ops =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp)
    ops
