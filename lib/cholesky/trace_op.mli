(** The logical operation trace shared by the two execution modes.

    The numeric driver ({!Ft}) and the timing-mode schedule generator
    ({!Schedule}) both emit this coarse per-iteration trace. A test
    asserts the two traces are equal for the same configuration, which
    is what entitles the timing results (produced at paper-scale sizes
    the numeric mode cannot reach) to speak for the algorithm the
    numeric mode actually runs and validates. *)

type verify_point =
  | Pre_syrk
  | Pre_gemm
  | Pre_potf2
  | Pre_trsm
  | Post_syrk
  | Post_gemm
  | Post_potf2
  | Post_trsm
  | Pre_snapshot
      (** whole-triangle verification immediately before a snapshot is
          captured — a snapshot is only worth rolling back to if it was
          verified at capture time *)

type t =
  | Encode  (** initial checksum encoding of every lower tile *)
  | Iteration_start of int
  | Verify of { j : int; point : verify_point; blocks : (int * int) list }
      (** a verification pass over the listed tiles *)
  | Syrk of int  (** rank-k update of the diagonal block, iteration j *)
  | Chk_syrk of int  (** its checksum update *)
  | D2h_diag of int  (** diagonal block to host *)
  | Gemm of int  (** trailing-panel update *)
  | Chk_gemm of int
  | Potf2 of int  (** CPU factorization of the diagonal block *)
  | Chk_potf2 of int
  | H2d_diag of int  (** factored block back to device *)
  | Trsm of int  (** panel solve *)
  | Chk_trsm of int
  | Final_verify of (int * int) list  (** Offline-ABFT end-of-run check *)
  | Snapshot of int
      (** iteration-boundary snapshot captured before iteration [j].
          Numeric-mode only: snapshots are off by default and the
          timing schedule does not model them, so clean-run traces stay
          comparable across modes. *)
  | Rollback of int
      (** state restored from the snapshot of iteration [j]; the
          attempt resumes there instead of restarting. Numeric-mode
          only, like {!Snapshot}. *)
  | Restart  (** recovery by recomputation begins *)
  | Degraded of int
      (** the resilient driver quarantined or lost the GPU during
          iteration [j] and re-planned the remaining work onto the
          CPU. Timing-mode only, and only on machines with a
          non-trivial {!Hetsim.Device.reliability} profile, so
          clean-run traces stay comparable across modes. *)
  | Rebalance of { j : int; gpu_rows : int; cpu_rows : int }
      (** the load balancer applied a changed CPU/GPU split of the
          trailing update at iteration [j]: the [gpu_rows]/[cpu_rows]
          block-row cut it moved to. Timing-mode only, and only with
          [Config.balance] set; a clean adaptive run applies no change
          and emits none, so clean traces stay comparable. *)

val equal : t list -> t list -> bool

val diff : t list -> t list -> (int * t option * t option) option
(** First position where the traces disagree, with the two entries
    ([None] = trace exhausted); [None] if equal. Test diagnostics. *)

val pp : Format.formatter -> t -> unit
val pp_trace : Format.formatter -> t list -> unit
