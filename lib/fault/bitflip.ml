let check bit =
  if bit < 0 || bit > 63 then
    invalid_arg (Printf.sprintf "Bitflip.flip: bit %d out of [0,63]" bit)

let flip x bit =
  check bit;
  Int64.float_of_bits (Int64.logxor (Int64.bits_of_float x) (Int64.shift_left 1L bit))

let is_flipped a b bit =
  check bit;
  Int64.logxor (Int64.bits_of_float a) (Int64.bits_of_float b)
  = Int64.shift_left 1L bit

let flipped_bits a b =
  let x = Int64.logxor (Int64.bits_of_float a) (Int64.bits_of_float b) in
  List.filter
    (fun i -> Int64.logand (Int64.shift_right_logical x i) 1L = 1L)
    (List.init 64 Fun.id)

let severity x bit =
  let y = flip x bit in
  if Float.is_nan y || Float.is_nan x then infinity else abs_float (y -. x)
