(** IEEE-754 bit manipulation for storage-error injection.

    A storage error in the paper is a flipped bit in a resident
    [double]. Flipping through the Int64 representation reproduces the
    real failure mode exactly, including the pathological cases (sign
    flips, exponent flips that produce huge magnitudes, NaN/Inf
    patterns) that can break positive definiteness and fail-stop the
    factorization. *)

val flip : float -> int -> float
(** [flip x bit] returns [x] with bit [bit] of its IEEE-754
    representation inverted. Bit 0 is the least significant mantissa
    bit; bit 52–62 are the exponent; bit 63 is the sign.
    @raise Invalid_argument unless [0 <= bit < 64]. *)

val is_flipped : float -> float -> int -> bool
(** [is_flipped a b bit] is true when [a] and [b] differ exactly in the
    given bit. *)

val flipped_bits : float -> float -> int list
(** The positions at which the two representations differ (empty iff
    bit-identical). *)

val severity : float -> int -> float
(** [severity x bit] is [|flip x bit - x|] — the magnitude of the
    induced error, used by tests to pick "large" vs "small" storage
    errors. NaN-producing flips report [infinity]. *)
