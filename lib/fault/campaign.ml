(* Randomized multi-fault campaign generation and reporting for the
   soak harness (bin/ftsoak). This module owns everything that does not
   need the Cholesky driver: seeded plan families, case descriptors,
   per-run result records, aggregation, and the JSON report (same
   hand-rolled conventions as bench/bench_util.ml — the bench helpers
   are not a library, so the escaping/formatting is re-implemented
   here to keep the sink formats identical). *)

type family =
  | Mixed
  | Burst
  | Storage_heavy
  | Compute_heavy
  | Checksum_storm
  | Anchor
  | Device_storm
  | Solver_storm

let all_families =
  [
    Mixed; Burst; Storage_heavy; Compute_heavy; Checksum_storm; Anchor;
    Device_storm; Solver_storm;
  ]

let family_name = function
  | Mixed -> "mixed"
  | Burst -> "burst"
  | Storage_heavy -> "storage-heavy"
  | Compute_heavy -> "compute-heavy"
  | Checksum_storm -> "checksum-storm"
  | Anchor -> "anchor"
  | Device_storm -> "device-storm"
  | Solver_storm -> "solver-storm"

let family_of_string s =
  match String.lowercase_ascii s with
  | "mixed" -> Ok Mixed
  | "burst" -> Ok Burst
  | "storage-heavy" | "storage" -> Ok Storage_heavy
  | "compute-heavy" | "compute" -> Ok Compute_heavy
  | "checksum-storm" | "checksum" -> Ok Checksum_storm
  | "anchor" -> Ok Anchor
  | "device-storm" | "device" -> Ok Device_storm
  | "solver-storm" | "solver" -> Ok Solver_storm
  | s ->
      Error
        (Printf.sprintf
           "unknown family %S (expected \
            mixed|burst|storage-heavy|compute-heavy|checksum-storm|anchor|\
            device-storm|solver-storm)"
           s)

(* Families whose plans can contain In_storage flips must run under
   Enhanced: Online-ABFT inherently misses storage errors consumed
   before their next post-update verification (the paper's motivating
   failure), so pairing those plans with Online would report "silent
   corruption" that is a property of the scheme, not a bug in the
   ladder. *)
let needs_enhanced = function
  | Mixed | Storage_heavy | Anchor | Device_storm -> true
  | Burst | Compute_heavy | Checksum_storm -> false
  (* Solver campaigns run the PCG harness, not the factorization
     drivers; pinning them to the Enhanced cell avoids duplicating
     every solver case across schemes the solve never consults. *)
  | Solver_storm -> true

(* A burst: two wrong values in the SAME column of one freshly written
   block. With the default d = 2 checksum rows a column can hide at
   most one correctable error, so the pattern is uncorrectable by
   construction and forces the ladder past the inline rungs (rollback
   when snapshots are on, full restart otherwise). *)
let burst_plan st ~grid ~block =
  if grid < 4 then
    invalid_arg "Campaign.plan: the burst family needs grid >= 4";
  let int_in lo hi = lo + Random.State.int st (hi - lo + 1) in
  (* iteration >= 2 so a snapshot boundary (interval 2) exists below it *)
  let f = int_in 2 (grid - 1) in
  let op, blk =
    if f < grid - 1 then (Fault.Gemm, (int_in (f + 1) (grid - 1), f))
    else (Fault.Syrk, (f, f))
  in
  let col = Random.State.int st block in
  let r1 = Random.State.int st block in
  let r2 = (r1 + 1 + Random.State.int st (block - 1)) mod block in
  List.map
    (fun row ->
      Fault.computing_error
        ~delta:(1. +. Random.State.float st 1e4)
        ~iteration:f ~op ~block:blk ~element:(row, col) ())
    [ r1; r2 ]

(* Anchor: overwhelming resident corruption (the signature of an
   exponent-field flip — ~1e35..1e55, far past Verify's anchor
   magnitude) in off-diagonal blocks. Delta subtraction would destroy
   every mantissa bit of the true value, so correction must go through
   the plain-sum reconstruction rung. *)
let anchor_plan st ~grid ~block ~count =
  let int_in lo hi = lo + Random.State.int st (hi - lo + 1) in
  List.init count (fun _ ->
      let i = int_in 1 (grid - 1) in
      let c = Random.State.int st i in
      let sign = if Random.State.bool st then 1. else -1. in
      let value = sign *. (10. ** float_of_int (int_in 35 55)) in
      {
        Fault.iteration = int_in c (max i c);
        window = Fault.In_storage;
        block = (i, c);
        element = (Random.State.int st block, Random.State.int st block);
        kind = Fault.Value_set { value };
      })

let plan family ~seed ~grid ~block ~count =
  if count < 1 then invalid_arg "Campaign.plan: count must be >= 1";
  let random ?(device = 0.) ~storage ~checksum ~update () =
    Fault.random_plan ~covered_only:true ~seed ~grid ~block ~count
      ~storage_fraction:storage ~checksum_fraction:checksum
      ~update_fraction:update ~device_fraction:device ()
  in
  match family with
  | Mixed -> random ~storage:0.3 ~checksum:0.15 ~update:0.15 ()
  | Storage_heavy -> random ~storage:0.8 ~checksum:0.1 ~update:0.05 ()
  | Compute_heavy -> random ~storage:0. ~checksum:0.1 ~update:0.1 ()
  | Checksum_storm -> random ~storage:0. ~checksum:0.5 ~update:0.5 ()
  | Device_storm -> random ~device:0.6 ~storage:0.1 ~checksum:0.1 ~update:0. ()
  | Burst ->
      let st = Random.State.make [| seed; grid; block; 0x6275 |] in
      burst_plan st ~grid ~block
  | Anchor ->
      let st = Random.State.make [| seed; grid; block; 0x616e |] in
      anchor_plan st ~grid ~block ~count
  | Solver_storm ->
      (* In_solver windows against an (grid*block)-dimensional PCG run:
         bitflips on x/r/p and the preconditioner's factor, scheduled
         inside the early iterations so they land before convergence. *)
      Fault.random_solver_plan ~seed ~n:(grid * block) ~iters:12 ~count ()

(* Seeded device-reliability profile for device-storm campaigns: rates
   hot enough that a ~10-iteration schedule sees several transients and
   the occasional hang, yet cold enough that the retry budget usually
   absorbs them — quarantine and degradation then come from the unlucky
   tail and from dropout cases, which is exactly the mix the soak wants
   to certify. *)
let device_profile ~seed ~dropout =
  let st = Random.State.make [| seed; 0xdef1 |] in
  let range lo hi = lo +. Random.State.float st (hi -. lo) in
  {
    Hetsim.Device.transient_fault_rate = range 0.05 0.25;
    hang_rate = range 0.02 0.10;
    hang_timeout_s = range 0.02 0.08;
    transfer_corruption_rate = range 0.05 0.20;
    dropout_after_s =
      (* draw unconditionally so the non-dropout profile stream is
         unchanged by the flag *)
      (let t = range 0.005 0.05 in
       if dropout then t else infinity);
    faults_until_s = infinity;
  }

type case = {
  id : int;
  family : family;
  scheme : string;
  grid : int;
  block : int;
  domains : int;
  seed : int;
  plan : Fault.t;
}

type outcome = Success | Silent_corruption | Gave_up of string

let outcome_name = function
  | Success -> "success"
  | Silent_corruption -> "silent-corruption"
  | Gave_up _ -> "gave-up"

(* Device-side resilience counters for one campaign, distilled from
   [Hetsim.Resilient.stats]: what the failure-aware scheduling layer
   did while the ABFT ladder handled the numeric side. All zero for
   families that run on reliable machines. *)
type device_counts = {
  retries_d : int;  (** kernel attempts beyond the first, both devices *)
  transients_d : int;
  hangs_d : int;
  corrupted_d : int;  (** corrupted transfers (healed by ABFT, not retried) *)
  quarantines_d : int;  (** 1 if the GPU was quarantined *)
  fallbacks_d : int;  (** operations re-planned onto the CPU *)
  losses_d : int;  (** 1 if a device dropped out permanently *)
  reprobes_d : int;  (** half-open probes of a quarantined GPU *)
  rejoins_d : int;  (** quarantines lifted after successful probes *)
  resplits_d : int;  (** applied load-balancer split changes *)
}

let zero_device =
  {
    retries_d = 0;
    transients_d = 0;
    hangs_d = 0;
    corrupted_d = 0;
    quarantines_d = 0;
    fallbacks_d = 0;
    losses_d = 0;
    reprobes_d = 0;
    rejoins_d = 0;
    resplits_d = 0;
  }

(* Solver-side ladder counters for one campaign, distilled from the
   PCG harness's stats (the solvers library sits above this one, so
   ftsoak maps [Solvers.Cg.stats] into this record). All zero for the
   factorization families. *)
type solver_counts = {
  iterations_s : int;  (** PCG updates performed, all attempts *)
  verifications_s : int;  (** true-residual verification points *)
  detections_s : int;  (** verification failures entering the ladder *)
  reconstructions_s : int;  (** forward reconstructions (rung 1) *)
  rollbacks_s : int;  (** checkpoint rollbacks (rung 2) *)
  restarts_s : int;  (** full solver restarts (rung 3) *)
  precond_repairs_s : int;  (** preconditioner columns healed *)
}

let zero_solver =
  {
    iterations_s = 0;
    verifications_s = 0;
    detections_s = 0;
    reconstructions_s = 0;
    rollbacks_s = 0;
    restarts_s = 0;
    precond_repairs_s = 0;
  }

let device_counts_of_stats (s : Hetsim.Resilient.stats) =
  let dev (d : Hetsim.Resilient.device_stats) =
    (d.Hetsim.Resilient.retries, d.Hetsim.Resilient.transient_faults,
     d.Hetsim.Resilient.hangs, d.Hetsim.Resilient.quarantined_at,
     d.Hetsim.Resilient.lost_at)
  in
  let cr, ct, ch, cq, cl = dev s.Hetsim.Resilient.cpu in
  let gr, gt, gh, gq, gl = dev s.Hetsim.Resilient.gpu in
  let hit = function Some _ -> 1 | None -> 0 in
  {
    retries_d = cr + gr;
    transients_d = ct + gt;
    hangs_d = ch + gh;
    corrupted_d = s.Hetsim.Resilient.corrupted_transfers;
    quarantines_d = hit cq + hit gq;
    fallbacks_d = s.Hetsim.Resilient.degraded_ops;
    losses_d = hit cl + hit gl;
    reprobes_d = s.Hetsim.Resilient.reprobes;
    rejoins_d = s.Hetsim.Resilient.rejoins;
    resplits_d = s.Hetsim.Resilient.resplits;
  }

type run_result = {
  case : case;
  outcome : outcome;
  residual : float;
  verifications : int;
  corrections : int;
  reconstructions : int;
  checksum_repairs : int;
  rollbacks : int;
  snapshots : int;
  restarts : int;
  fired : int;
  device : device_counts;
  solver : solver_counts;
  obs_metrics : (string * float) list;
      (* per-campaign observability totals (Obs.metric_list); empty
         when the soak ran untraced *)
}

type rung_counts = {
  corrections_n : int;
  reconstructions_n : int;
  checksum_repairs_n : int;
  rollbacks_n : int;
  restarts_n : int;
}

let zero_rungs =
  {
    corrections_n = 0;
    reconstructions_n = 0;
    checksum_repairs_n = 0;
    rollbacks_n = 0;
    restarts_n = 0;
  }

type aggregate = {
  campaigns : int;
  successes : int;
  silent_corruptions : int;
  gave_ups : int;
  faults_fired : int;
  totals : rung_counts;  (** summed event counts across campaigns *)
  rung_campaigns : rung_counts;
      (** campaigns that exercised each rung at least once *)
  device_totals : device_counts;  (** summed device counters *)
  device_campaigns : device_counts;
      (** campaigns that exercised each device mechanism at least once *)
  solver_totals : solver_counts;  (** summed solver-ladder counters *)
  solver_campaigns : solver_counts;
      (** campaigns that exercised each solver rung at least once *)
  worst_residual : float;
  silent_rate : float;
}

let aggregate results =
  let n = List.length results in
  let add t r =
    {
      corrections_n = t.corrections_n + r.corrections;
      reconstructions_n = t.reconstructions_n + r.reconstructions;
      checksum_repairs_n = t.checksum_repairs_n + r.checksum_repairs;
      rollbacks_n = t.rollbacks_n + r.rollbacks;
      restarts_n = t.restarts_n + r.restarts;
    }
  in
  let hit t r =
    let b x = if x > 0 then 1 else 0 in
    {
      corrections_n = t.corrections_n + b r.corrections;
      reconstructions_n = t.reconstructions_n + b r.reconstructions;
      checksum_repairs_n = t.checksum_repairs_n + b r.checksum_repairs;
      rollbacks_n = t.rollbacks_n + b r.rollbacks;
      restarts_n = t.restarts_n + b r.restarts;
    }
  in
  let add_dev t r =
    {
      retries_d = t.retries_d + r.device.retries_d;
      transients_d = t.transients_d + r.device.transients_d;
      hangs_d = t.hangs_d + r.device.hangs_d;
      corrupted_d = t.corrupted_d + r.device.corrupted_d;
      quarantines_d = t.quarantines_d + r.device.quarantines_d;
      fallbacks_d = t.fallbacks_d + r.device.fallbacks_d;
      losses_d = t.losses_d + r.device.losses_d;
      reprobes_d = t.reprobes_d + r.device.reprobes_d;
      rejoins_d = t.rejoins_d + r.device.rejoins_d;
      resplits_d = t.resplits_d + r.device.resplits_d;
    }
  in
  let hit_dev t r =
    let b x = if x > 0 then 1 else 0 in
    {
      retries_d = t.retries_d + b r.device.retries_d;
      transients_d = t.transients_d + b r.device.transients_d;
      hangs_d = t.hangs_d + b r.device.hangs_d;
      corrupted_d = t.corrupted_d + b r.device.corrupted_d;
      quarantines_d = t.quarantines_d + b r.device.quarantines_d;
      fallbacks_d = t.fallbacks_d + b r.device.fallbacks_d;
      losses_d = t.losses_d + b r.device.losses_d;
      reprobes_d = t.reprobes_d + b r.device.reprobes_d;
      rejoins_d = t.rejoins_d + b r.device.rejoins_d;
      resplits_d = t.resplits_d + b r.device.resplits_d;
    }
  in
  let add_sol t r =
    {
      iterations_s = t.iterations_s + r.solver.iterations_s;
      verifications_s = t.verifications_s + r.solver.verifications_s;
      detections_s = t.detections_s + r.solver.detections_s;
      reconstructions_s = t.reconstructions_s + r.solver.reconstructions_s;
      rollbacks_s = t.rollbacks_s + r.solver.rollbacks_s;
      restarts_s = t.restarts_s + r.solver.restarts_s;
      precond_repairs_s = t.precond_repairs_s + r.solver.precond_repairs_s;
    }
  in
  let hit_sol t r =
    let b x = if x > 0 then 1 else 0 in
    {
      iterations_s = t.iterations_s + b r.solver.iterations_s;
      verifications_s = t.verifications_s + b r.solver.verifications_s;
      detections_s = t.detections_s + b r.solver.detections_s;
      reconstructions_s = t.reconstructions_s + b r.solver.reconstructions_s;
      rollbacks_s = t.rollbacks_s + b r.solver.rollbacks_s;
      restarts_s = t.restarts_s + b r.solver.restarts_s;
      precond_repairs_s = t.precond_repairs_s + b r.solver.precond_repairs_s;
    }
  in
  let count p = List.length (List.filter p results) in
  let silent =
    count (fun r -> match r.outcome with Silent_corruption -> true | Success | Gave_up _ -> false)
  in
  {
    campaigns = n;
    successes =
      count (fun r -> match r.outcome with Success -> true | Silent_corruption | Gave_up _ -> false);
    silent_corruptions = silent;
    gave_ups =
      count (fun r -> match r.outcome with Gave_up _ -> true | Success | Silent_corruption -> false);
    faults_fired = List.fold_left (fun a r -> a + r.fired) 0 results;
    totals = List.fold_left add zero_rungs results;
    rung_campaigns = List.fold_left hit zero_rungs results;
    device_totals = List.fold_left add_dev zero_device results;
    device_campaigns = List.fold_left hit_dev zero_device results;
    solver_totals = List.fold_left add_sol zero_solver results;
    solver_campaigns = List.fold_left hit_sol zero_solver results;
    worst_residual =
      List.fold_left (fun a r -> Float.max a r.residual) 0. results;
    silent_rate = (if n = 0 then 0. else float_of_int silent /. float_of_int n);
  }

(* ---- JSON report (bench_util sink conventions, schema_version 3) ----

   Schema history:
   - 1: per-campaign ladder metrics + aggregate rung totals/coverage.
   - 2: adds per-campaign device-resilience metrics (retries, hangs,
     transients, corrupted transfers, quarantine/degradation/loss) and
     the aggregate "device_totals" / "device_campaigns" objects.
   - 3: adds per-campaign observability totals (the [obs_metrics]
     key/value pairs — "op.<op>_s"/"op.<op>_n" time breakdowns,
     "counter.*" and "hist.*" entries) when the soak runs traced.
     Strictly additive: untraced reports differ from version 2 only in
     the version number.
   - 4: adds per-campaign solver-ladder metrics (solver_iterations,
     solver_verifications, solver_detections, solver_reconstructions,
     solver_rollbacks, solver_restarts, solver_precond_repairs) and
     the aggregate "solver_totals" / "solver_campaigns" objects for
     the solver-storm family. Strictly additive: factorization-only
     reports carry zeros in the new fields.
   - 5: adds the half-open re-probe / adaptive-balance counters
     (device_reprobes, device_rejoins, resplits) to the per-campaign
     metrics and "reprobes"/"rejoins"/"resplits" to the device_totals
     and device_campaigns objects. Strictly additive: balance-off
     runs with re-probing disabled carry zeros in the new fields.

   String escaping and float formatting come from [Obs.Json] — the one
   shared implementation (also used by bench_util and the engine's
   chrome-trace exporter), so the sink formats cannot drift apart. *)

let json_escape = Obs.Json.escape
let json_float = Obs.Json.number

let case_name c =
  Printf.sprintf "%s/%s/g%d-b%d-p%d/seed%d" (family_name c.family) c.scheme
    c.grid c.block c.domains c.seed

let result_metrics r =
  [
    ("residual", r.residual);
    ("verifications", float_of_int r.verifications);
    ("corrections", float_of_int r.corrections);
    ("reconstructions", float_of_int r.reconstructions);
    ("checksum_repairs", float_of_int r.checksum_repairs);
    ("rollbacks", float_of_int r.rollbacks);
    ("snapshots", float_of_int r.snapshots);
    ("restarts", float_of_int r.restarts);
    ("faults_fired", float_of_int r.fired);
    ("device_retries", float_of_int r.device.retries_d);
    ("device_transients", float_of_int r.device.transients_d);
    ("device_hangs", float_of_int r.device.hangs_d);
    ("corrupted_transfers", float_of_int r.device.corrupted_d);
    ("quarantines", float_of_int r.device.quarantines_d);
    ("cpu_fallbacks", float_of_int r.device.fallbacks_d);
    ("device_losses", float_of_int r.device.losses_d);
    ("device_reprobes", float_of_int r.device.reprobes_d);
    ("device_rejoins", float_of_int r.device.rejoins_d);
    ("resplits", float_of_int r.device.resplits_d);
    ("solver_iterations", float_of_int r.solver.iterations_s);
    ("solver_verifications", float_of_int r.solver.verifications_s);
    ("solver_detections", float_of_int r.solver.detections_s);
    ("solver_reconstructions", float_of_int r.solver.reconstructions_s);
    ("solver_rollbacks", float_of_int r.solver.rollbacks_s);
    ("solver_restarts", float_of_int r.solver.restarts_s);
    ("solver_precond_repairs", float_of_int r.solver.precond_repairs_s);
    ( "silent",
      match r.outcome with
      | Silent_corruption -> 1.
      | Success | Gave_up _ -> 0. );
  ]
  @ r.obs_metrics

let rung_fields prefix t =
  Printf.sprintf
    "\"%scorrections\": %d, \"%sreconstructions\": %d, \
     \"%schecksum_repairs\": %d, \"%srollbacks\": %d, \"%srestarts\": %d"
    prefix t.corrections_n prefix t.reconstructions_n prefix
    t.checksum_repairs_n prefix t.rollbacks_n prefix t.restarts_n

let solver_fields t =
  Printf.sprintf
    "\"iterations\": %d, \"verifications\": %d, \"detections\": %d, \
     \"reconstructions\": %d, \"rollbacks\": %d, \"restarts\": %d, \
     \"precond_repairs\": %d"
    t.iterations_s t.verifications_s t.detections_s t.reconstructions_s
    t.rollbacks_s t.restarts_s t.precond_repairs_s

let device_fields t =
  Printf.sprintf
    "\"retries\": %d, \"transients\": %d, \"hangs\": %d, \
     \"corrupted_transfers\": %d, \"quarantines\": %d, \
     \"cpu_fallbacks\": %d, \"device_losses\": %d, \"reprobes\": %d, \
     \"rejoins\": %d, \"resplits\": %d"
    t.retries_d t.transients_d t.hangs_d t.corrupted_d t.quarantines_d
    t.fallbacks_d t.losses_d t.reprobes_d t.rejoins_d t.resplits_d

let to_json ~seed results =
  let agg = aggregate results in
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  out "{\n  \"schema_version\": 5,\n  \"results\": [";
  List.iteri
    (fun i r ->
      out "%s\n    { \"experiment\": \"ftsoak\", \"name\": \"%s\", \
           \"size\": %d, \"metrics\": {"
        (if i = 0 then "" else ",")
        (json_escape (case_name r.case))
        (r.case.grid * r.case.block);
      out " \"outcome\": \"%s\"," (outcome_name r.outcome);
      List.iteri
        (fun k (key, v) ->
          out "%s\"%s\": %s"
            (if k = 0 then " " else ", ")
            (json_escape key) (json_float v))
        (result_metrics r);
      out " } }")
    results;
  out "\n  ],\n  \"aggregate\": {\n";
  out "    \"seed\": %d,\n" seed;
  out "    \"campaigns\": %d,\n" agg.campaigns;
  out "    \"successes\": %d,\n" agg.successes;
  out "    \"silent_corruptions\": %d,\n" agg.silent_corruptions;
  out "    \"gave_ups\": %d,\n" agg.gave_ups;
  out "    \"faults_fired\": %d,\n" agg.faults_fired;
  out "    \"silent_rate\": %s,\n" (json_float agg.silent_rate);
  out "    \"worst_residual\": %s,\n" (json_float agg.worst_residual);
  out "    \"totals\": { %s },\n" (rung_fields "" agg.totals);
  out "    \"rung_campaigns\": { %s },\n" (rung_fields "" agg.rung_campaigns);
  out "    \"device_totals\": { %s },\n" (device_fields agg.device_totals);
  out "    \"device_campaigns\": { %s },\n" (device_fields agg.device_campaigns);
  out "    \"solver_totals\": { %s },\n" (solver_fields agg.solver_totals);
  out "    \"solver_campaigns\": { %s }\n" (solver_fields agg.solver_campaigns);
  out "  }\n}\n";
  Buffer.contents b

let pp_aggregate fmt agg =
  Format.fprintf fmt
    "@[<v>campaigns: %d (success %d, silent %d, gave-up %d)@,faults fired: \
     %d@,rung events: corrections %d, reconstructions %d, checksum repairs \
     %d, rollbacks %d, restarts %d@,campaigns touching each rung: %d / %d / \
     %d / %d / %d@,worst residual: %.3e@]"
    agg.campaigns agg.successes agg.silent_corruptions agg.gave_ups
    agg.faults_fired agg.totals.corrections_n agg.totals.reconstructions_n
    agg.totals.checksum_repairs_n agg.totals.rollbacks_n agg.totals.restarts_n
    agg.rung_campaigns.corrections_n agg.rung_campaigns.reconstructions_n
    agg.rung_campaigns.checksum_repairs_n agg.rung_campaigns.rollbacks_n
    agg.rung_campaigns.restarts_n agg.worst_residual;
  if agg.device_totals <> zero_device then
    Format.fprintf fmt
      "@.@[<v>device events: retries %d, transients %d, hangs %d, corrupted \
       transfers %d, quarantines %d, cpu fallbacks %d, losses %d, reprobes \
       %d, rejoins %d, resplits %d@,campaigns touching each device \
       mechanism: %d / %d / %d / %d / %d / %d / %d / %d / %d / %d@]"
      agg.device_totals.retries_d agg.device_totals.transients_d
      agg.device_totals.hangs_d agg.device_totals.corrupted_d
      agg.device_totals.quarantines_d agg.device_totals.fallbacks_d
      agg.device_totals.losses_d agg.device_totals.reprobes_d
      agg.device_totals.rejoins_d agg.device_totals.resplits_d
      agg.device_campaigns.retries_d agg.device_campaigns.transients_d
      agg.device_campaigns.hangs_d agg.device_campaigns.corrupted_d
      agg.device_campaigns.quarantines_d agg.device_campaigns.fallbacks_d
      agg.device_campaigns.losses_d agg.device_campaigns.reprobes_d
      agg.device_campaigns.rejoins_d agg.device_campaigns.resplits_d;
  if agg.solver_totals <> zero_solver then
    Format.fprintf fmt
      "@.@[<v>solver events: iterations %d, verifications %d, detections %d, \
       forward reconstructions %d, rollbacks %d, restarts %d, precond \
       repairs %d@,campaigns touching forward/rollback/restart: %d / %d / \
       %d@]"
      agg.solver_totals.iterations_s agg.solver_totals.verifications_s
      agg.solver_totals.detections_s agg.solver_totals.reconstructions_s
      agg.solver_totals.rollbacks_s agg.solver_totals.restarts_s
      agg.solver_totals.precond_repairs_s
      agg.solver_campaigns.reconstructions_s agg.solver_campaigns.rollbacks_s
      agg.solver_campaigns.restarts_s
