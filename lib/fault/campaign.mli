(** Seeded multi-fault soak campaigns.

    A campaign is one factorization run under a randomized fault plan
    drawn from a {!family}. This module generates the plans and owns
    the result/aggregation/report types; the driver loop that actually
    calls the factorization lives in [bin/ftsoak] (this library sits
    below the Cholesky drivers and cannot call them). *)

type family =
  | Mixed  (** storage + checksum + update + computing mix *)
  | Burst
      (** two wrong values in one column of one freshly written block —
          uncorrectable with d = 2 by construction, forcing the ladder
          past the inline rungs (rollback/restart) *)
  | Storage_heavy  (** mostly resident bit flips *)
  | Compute_heavy  (** mostly wrong kernel outputs *)
  | Checksum_storm  (** only checksum-store and checksum-update faults *)
  | Anchor
      (** overwhelming resident corruption (exponent-flip-sized values,
          ~1e35..1e55) in off-diagonal blocks: the corrupted value
          defeats delta correction, exercising the plain-sum
          reconstruction rung *)

val all_families : family list
val family_name : family -> string
val family_of_string : string -> (family, string) result

val needs_enhanced : family -> bool
(** True for families whose plans may contain [In_storage] flips:
    Online-ABFT inherently misses those (the paper's motivating
    failure), so the soak pairs these families only with Enhanced. *)

val plan : family -> seed:int -> grid:int -> block:int -> count:int -> Fault.t
(** Deterministic in all arguments. [count] is ignored by [Burst]
    (always two injections). @raise Invalid_argument if [count < 1] or
    ([Burst] with [grid < 4] — the burst needs an iteration ≥ 2 with a
    snapshot boundary below it). *)

type case = {
  id : int;
  family : family;
  scheme : string;  (** display name, e.g. "enhanced-k1" *)
  grid : int;
  block : int;
  domains : int;  (** pool size the case ran under *)
  seed : int;  (** per-case derived seed *)
  plan : Fault.t;
}

type outcome = Success | Silent_corruption | Gave_up of string

val outcome_name : outcome -> string

type run_result = {
  case : case;
  outcome : outcome;
  residual : float;
  verifications : int;
  corrections : int;
  reconstructions : int;
  checksum_repairs : int;
  rollbacks : int;
  snapshots : int;
  restarts : int;
  fired : int;
}

type rung_counts = {
  corrections_n : int;
  reconstructions_n : int;
  checksum_repairs_n : int;
  rollbacks_n : int;
  restarts_n : int;
}

type aggregate = {
  campaigns : int;
  successes : int;
  silent_corruptions : int;
  gave_ups : int;
  faults_fired : int;
  totals : rung_counts;  (** summed event counts across all campaigns *)
  rung_campaigns : rung_counts;
      (** number of campaigns that exercised each rung at least once —
          the acceptance check "every rung below full restart was hit"
          reads these *)
  worst_residual : float;
  silent_rate : float;
}

val aggregate : run_result list -> aggregate

val case_name : case -> string
(** ["family/scheme/g<grid>-b<block>-p<domains>/seed<seed>"]. *)

val to_json : seed:int -> run_result list -> string
(** Full report: bench-style [schema_version 1] sink with one result
    row per campaign (experiment ["ftsoak"], size = matrix order) plus
    an ["aggregate"] object carrying the outcome histogram, per-rung
    totals, campaign-level rung coverage, silent-corruption rate and
    worst residual. *)

val pp_aggregate : Format.formatter -> aggregate -> unit
