(** Seeded multi-fault soak campaigns.

    A campaign is one factorization run under a randomized fault plan
    drawn from a {!family}. This module generates the plans and owns
    the result/aggregation/report types; the driver loop that actually
    calls the factorization lives in [bin/ftsoak] (this library sits
    below the Cholesky drivers and cannot call them). *)

type family =
  | Mixed  (** storage + checksum + update + computing mix *)
  | Burst
      (** two wrong values in one column of one freshly written block —
          uncorrectable with d = 2 by construction, forcing the ladder
          past the inline rungs (rollback/restart) *)
  | Storage_heavy  (** mostly resident bit flips *)
  | Compute_heavy  (** mostly wrong kernel outputs *)
  | Checksum_storm  (** only checksum-store and checksum-update faults *)
  | Anchor
      (** overwhelming resident corruption (exponent-flip-sized values,
          ~1e35..1e55) in off-diagonal blocks: the corrupted value
          defeats delta correction, exercising the plain-sum
          reconstruction rung *)
  | Device_storm
      (** corrupted host↔device transfers ([In_device]) dominating a
          storage/checksum/computing mix; runs on a machine with a
          seeded {!device_profile}, so the resilient scheduling layer
          (retry, backoff, quarantine, CPU fallback) is exercised
          alongside the ABFT ladder *)
  | Solver_storm
      (** [In_solver] bit flips against a PCG run's live [x]/[r]/[p]
          vectors and its preconditioner factor. The campaign driver
          runs the fault-tolerant solver harness instead of a
          factorization; classification recomputes the true residual
          against pristine inputs, so a corrupted "converged" state is
          reported as {!Silent_corruption}. *)

val all_families : family list
val family_name : family -> string
val family_of_string : string -> (family, string) result

val needs_enhanced : family -> bool
(** True for families whose plans may contain [In_storage] flips:
    Online-ABFT inherently misses those (the paper's motivating
    failure), so the soak pairs these families only with Enhanced.
    Also true for [Solver_storm], which runs the solver harness rather
    than a factorization driver and is pinned to the Enhanced cell to
    avoid duplicating every solver case across schemes. *)

val plan : family -> seed:int -> grid:int -> block:int -> count:int -> Fault.t
(** Deterministic in all arguments. [count] is ignored by [Burst]
    (always two injections). @raise Invalid_argument if [count < 1] or
    ([Burst] with [grid < 4] — the burst needs an iteration ≥ 2 with a
    snapshot boundary below it). *)

val device_profile : seed:int -> dropout:bool -> Hetsim.Device.reliability
(** Seeded reliability profile for device-storm campaigns: transient
    fault rate ~0.05..0.25, hang rate ~0.02..0.10 with a 20..80 ms
    watchdog, transfer corruption ~0.05..0.20, and — iff [dropout] — a
    finite permanent-dropout time early in the schedule. Deterministic
    in [seed]; the non-dropout profile is unchanged by the flag. *)

type case = {
  id : int;
  family : family;
  scheme : string;  (** display name, e.g. "enhanced-k1" *)
  grid : int;
  block : int;
  domains : int;  (** pool size the case ran under *)
  seed : int;  (** per-case derived seed *)
  plan : Fault.t;
}

type outcome = Success | Silent_corruption | Gave_up of string

val outcome_name : outcome -> string

type device_counts = {
  retries_d : int;  (** kernel attempts beyond the first, both devices *)
  transients_d : int;
  hangs_d : int;
  corrupted_d : int;
      (** corrupted transfers — healed by ABFT, never retried *)
  quarantines_d : int;  (** 1 if the GPU was quarantined *)
  fallbacks_d : int;  (** operations re-planned onto the CPU *)
  losses_d : int;  (** 1 if a device dropped out permanently *)
  reprobes_d : int;  (** half-open probes of a quarantined GPU *)
  rejoins_d : int;  (** quarantines lifted after successful probes *)
  resplits_d : int;  (** applied load-balancer split changes *)
}

val zero_device : device_counts
(** For families run on reliable machines. *)

val device_counts_of_stats : Hetsim.Resilient.stats -> device_counts
(** Distill one run's resilient-driver statistics into campaign
    counters (quarantine/loss flattened to per-device 0/1 hits). *)

type solver_counts = {
  iterations_s : int;  (** PCG updates performed, all attempts *)
  verifications_s : int;  (** true-residual verification points *)
  detections_s : int;  (** verification failures entering the ladder *)
  reconstructions_s : int;  (** forward reconstructions (rung 1) *)
  rollbacks_s : int;  (** checkpoint rollbacks (rung 2) *)
  restarts_s : int;  (** full solver restarts (rung 3) *)
  precond_repairs_s : int;  (** preconditioner columns healed *)
}

val zero_solver : solver_counts
(** For the factorization families. *)

type run_result = {
  case : case;
  outcome : outcome;
  residual : float;
  verifications : int;
  corrections : int;
  reconstructions : int;
  checksum_repairs : int;
  rollbacks : int;
  snapshots : int;
  restarts : int;
  fired : int;
  device : device_counts;
  solver : solver_counts;
      (** solver-ladder counters ({!zero_solver} for factorization
          families) *)
  obs_metrics : (string * float) list;
      (** per-campaign observability totals ([Obs.metric_list] of the
          campaign's sink: "op.*_s"/"op.*_n" time breakdowns plus
          "counter.*"/"hist.*" entries); [[]] when the soak ran
          untraced *)
}

type rung_counts = {
  corrections_n : int;
  reconstructions_n : int;
  checksum_repairs_n : int;
  rollbacks_n : int;
  restarts_n : int;
}

type aggregate = {
  campaigns : int;
  successes : int;
  silent_corruptions : int;
  gave_ups : int;
  faults_fired : int;
  totals : rung_counts;  (** summed event counts across all campaigns *)
  rung_campaigns : rung_counts;
      (** number of campaigns that exercised each rung at least once —
          the acceptance check "every rung below full restart was hit"
          reads these *)
  device_totals : device_counts;  (** summed device counters *)
  device_campaigns : device_counts;
      (** number of campaigns that exercised each device-resilience
          mechanism at least once — the device-storm acceptance check
          (quarantine / retry / degradation each ≥ 10) reads these *)
  solver_totals : solver_counts;  (** summed solver-ladder counters *)
  solver_campaigns : solver_counts;
      (** number of campaigns that exercised each solver rung at least
          once — the solver-storm acceptance check (forward
          reconstruction / rollback / restart each ≥ 1) reads these *)
  worst_residual : float;
  silent_rate : float;
}

val aggregate : run_result list -> aggregate

val case_name : case -> string
(** ["family/scheme/g<grid>-b<block>-p<domains>/seed<seed>"]. *)

val to_json : seed:int -> run_result list -> string
(** Full report: bench-style [schema_version 5] sink with one result
    row per campaign (experiment ["ftsoak"], size = matrix order) plus
    an ["aggregate"] object carrying the outcome histogram, per-rung
    totals, campaign-level rung coverage, device-resilience totals and
    coverage ([device_totals] / [device_campaigns]), solver-ladder
    totals and coverage ([solver_totals] / [solver_campaigns]),
    silent-corruption rate and worst residual. Each version is a
    strict superset of the one before: 2 added the per-campaign device
    metrics and the two aggregate device objects; 3 added each
    campaign's [obs_metrics] pairs to its metrics object when the soak
    runs traced; 4 added the per-campaign solver metrics and the two
    aggregate solver objects (all-zero outside solver-storm); 5 adds
    the half-open re-probe / rejoin / load-balancer resplit device
    counters to both the per-campaign metrics and the aggregate
    device objects. *)

val pp_aggregate : Format.formatter -> aggregate -> unit
