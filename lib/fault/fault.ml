type op = Syrk | Gemm | Trsm | Potf2
type solver_target = Sol_x | Sol_r | Sol_p | Sol_precond

type window =
  | In_storage
  | In_computation of op
  | In_checksum
  | In_update of op
  | In_device
  | In_solver of solver_target

type kind =
  | Bit_flip of { bit : int }
  | Value_offset of { delta : float }
  | Value_set of { value : float }

type injection = {
  iteration : int;
  window : window;
  block : int * int;
  element : int * int;
  kind : kind;
}

type t = injection list

let equal_op a b =
  match (a, b) with
  | Syrk, Syrk | Gemm, Gemm | Trsm, Trsm | Potf2, Potf2 -> true
  | (Syrk | Gemm | Trsm | Potf2), _ -> false

let equal_solver_target a b =
  match (a, b) with
  | Sol_x, Sol_x | Sol_r, Sol_r | Sol_p, Sol_p | Sol_precond, Sol_precond ->
      true
  | (Sol_x | Sol_r | Sol_p | Sol_precond), _ -> false

let apply_kind kind v =
  match kind with
  | Bit_flip { bit } -> Bitflip.flip v bit
  | Value_offset { delta } -> v +. delta
  | Value_set { value } -> value

let computing_error ?(delta = 1e3) ~iteration ~op ~block ~element () =
  { iteration; window = In_computation op; block; element; kind = Value_offset { delta } }

let storage_error ?(bit = 40) ~iteration ~block ~element () =
  { iteration; window = In_storage; block; element; kind = Bit_flip { bit } }

let checksum_error ?(bit = 40) ~iteration ~block ~element () =
  { iteration; window = In_checksum; block; element; kind = Bit_flip { bit } }

let update_error ?(delta = 1e3) ~iteration ~op ~block ~element () =
  { iteration; window = In_update op; block; element; kind = Value_offset { delta } }

let transfer_error ?(bit = 40) ~iteration ~block ~element () =
  { iteration; window = In_device; block; element; kind = Bit_flip { bit } }

let solver_error ?(bit = 40) ~iteration ~target ~element () =
  {
    iteration;
    window = In_solver target;
    block = (0, 0);
    element;
    kind = Bit_flip { bit };
  }

let random_plan ?(covered_only = false) ~seed ~grid ~block ~count
    ~storage_fraction ?(checksum_fraction = 0.) ?(update_fraction = 0.)
    ?(device_fraction = 0.) () =
  if grid < 1 || block < 1 || count < 0 then
    invalid_arg "Fault.random_plan: bad dimensions";
  if storage_fraction < 0. || storage_fraction > 1. then
    invalid_arg "Fault.random_plan: storage_fraction out of [0,1]";
  if checksum_fraction < 0. || update_fraction < 0. || device_fraction < 0. then
    invalid_arg "Fault.random_plan: negative window fraction";
  if storage_fraction +. checksum_fraction +. update_fraction +. device_fraction
     > 1.
  then invalid_arg "Fault.random_plan: window fractions exceed 1";
  let st = Random.State.make [| seed; grid; block; count |] in
  let int_in lo hi = lo + Random.State.int st (hi - lo + 1) in
  let element () = (Random.State.int st block, Random.State.int st block) in
  let lower_tri_block () =
    (* Uniform over the lower triangle of the block grid. *)
    let rec draw () =
      let i = Random.State.int st grid and c = Random.State.int st grid in
      if i >= c then (i, c) else draw ()
    in
    draw ()
  in
  let storage () =
    let ((i, c) as blk) = lower_tri_block () in
    let hi = if covered_only then max i c else grid - 1 in
    {
      iteration = int_in c hi;
      window = In_storage;
      block = blk;
      element = element ();
      kind = Bit_flip { bit = int_in 30 52 };
    }
  in
  let device () =
    (* A corrupted PCIe transfer: wrong bits landed in the tile while
       it crossed the bus. Same liveness window and same storage-class
       correctability as a resident flip; only the physical cause (and
       the resilient driver's accounting) differ. *)
    let ((i, c) as blk) = lower_tri_block () in
    let hi = if covered_only then max i c else grid - 1 in
    {
      iteration = int_in c hi;
      window = In_device;
      block = blk;
      element = element ();
      kind = Bit_flip { bit = int_in 30 52 };
    }
  in
  let checksum () =
    (* A flip inside the stored d x B checksum block itself. The element
       row indexes the checksum row (the store's default d = 2); the
       column indexes the tile column it protects. Covered means a later
       verification still consults this block's checksum (same liveness
       window as a storage flip on the tile). *)
    let ((i, c) as blk) = lower_tri_block () in
    let hi = if covered_only then max i c else grid - 1 in
    {
      iteration = int_in c hi;
      window = In_checksum;
      block = blk;
      element = (Random.State.int st 2, Random.State.int st block);
      kind = Bit_flip { bit = int_in 30 52 };
    }
  in
  let computing () =
    let j = Random.State.int st grid in
    let candidates =
      (if covered_only then [] else [ Potf2 ])
      @ (if j >= 1 then [ Syrk ] else if covered_only then [] else [])
      @ (if j < grid - 1 then [ Trsm ] else [])
      @ (if j >= 1 && j < grid - 1 then [ Gemm ] else [])
    in
    match candidates with
    | [] ->
        (* grid = 1 with covered_only: fall back to a covered storage
           flip; a 1x1 grid has no covered computing window. *)
        storage ()
    | candidates ->
        let op =
          let candidates = Array.of_list candidates in
          candidates.(Random.State.int st (Array.length candidates))
        in
        let blk =
          match op with
          | Syrk | Potf2 -> (j, j)
          | Gemm | Trsm -> (int_in (j + 1) (grid - 1), j)
        in
        {
          iteration = j;
          window = In_computation op;
          block = blk;
          element = element ();
          kind = Value_offset { delta = 1. +. Random.State.float st 1e4 };
        }
  in
  let update () =
    (* A wrong value written by an op's checksum-update kernel: the
       corrupted output lands in the checksum block, never in the tile,
       so every scheme's cross-check can repair it by recalculation —
       the window is covered for any op (Potf2 included). *)
    let j = Random.State.int st grid in
    let candidates =
      [ Potf2 ]
      @ (if j >= 1 then [ Syrk ] else [])
      @ (if j < grid - 1 then [ Trsm ] else [])
      @ if j >= 1 && j < grid - 1 then [ Gemm ] else []
    in
    let op =
      let candidates = Array.of_list candidates in
      candidates.(Random.State.int st (Array.length candidates))
    in
    let blk =
      match op with
      | Syrk | Potf2 -> (j, j)
      | Gemm | Trsm -> (int_in (j + 1) (grid - 1), j)
    in
    {
      iteration = j;
      window = In_update op;
      block = blk;
      element = (Random.State.int st 2, Random.State.int st block);
      kind = Value_offset { delta = 1. +. Random.State.float st 1e4 };
    }
  in
  List.init count (fun _ ->
      let r = Random.State.float st 1. in
      if r < storage_fraction then storage ()
      else if r < storage_fraction +. checksum_fraction then checksum ()
      else if r < storage_fraction +. checksum_fraction +. update_fraction then
        update ()
      else if
        r
        < storage_fraction +. checksum_fraction +. update_fraction
          +. device_fraction
      then device ()
      else computing ())

let random_solver_plan ~seed ~n ~iters ~count ?(x_fraction = 0.3)
    ?(r_fraction = 0.25) ?(p_fraction = 0.25) ?(precond_fraction = 0.2) () =
  if n < 1 || iters < 1 || count < 0 then
    invalid_arg "Fault.random_solver_plan: bad dimensions";
  List.iter
    (fun f ->
      if f < 0. || f > 1. then
        invalid_arg "Fault.random_solver_plan: window fraction out of [0,1]")
    [ x_fraction; r_fraction; p_fraction; precond_fraction ];
  if x_fraction +. r_fraction +. p_fraction +. precond_fraction > 1. +. 1e-9
  then invalid_arg "Fault.random_solver_plan: window fractions exceed 1";
  let st = Random.State.make [| seed; n; iters; count; 0x50CC |] in
  let int_in lo hi = lo + Random.State.int st (hi - lo + 1) in
  let draw target element =
    {
      iteration = int_in 1 iters;
      window = In_solver target;
      block = (0, 0);
      element;
      kind = Bit_flip { bit = int_in 30 62 };
    }
  in
  let vec_elem () = (Random.State.int st n, 0) in
  let factor_elem () =
    (* Uniform over the lower triangle, where the Cholesky/IC factor
       actually stores data. *)
    let rec go () =
      let i = Random.State.int st n and j = Random.State.int st n in
      if i >= j then (i, j) else go ()
    in
    go ()
  in
  List.init count (fun _ ->
      let r = Random.State.float st 1. in
      if r < x_fraction then draw Sol_x (vec_elem ())
      else if r < x_fraction +. r_fraction then draw Sol_r (vec_elem ())
      else if r < x_fraction +. r_fraction +. p_fraction then
        draw Sol_p (vec_elem ())
      else if
        r < x_fraction +. r_fraction +. p_fraction +. precond_fraction
      then draw Sol_precond (factor_elem ())
      else draw Sol_r (vec_elem ()))

let op_name = function
  | Syrk -> "syrk"
  | Gemm -> "gemm"
  | Trsm -> "trsm"
  | Potf2 -> "potf2"

let solver_target_name = function
  | Sol_x -> "x"
  | Sol_r -> "r"
  | Sol_p -> "p"
  | Sol_precond -> "precond"

let pp_injection fmt inj =
  let w =
    match inj.window with
    | In_storage -> "storage"
    | In_computation op -> "compute:" ^ op_name op
    | In_checksum -> "checksum"
    | In_update op -> "chk-update:" ^ op_name op
    | In_device -> "device"
    | In_solver t -> "solver:" ^ solver_target_name t
  in
  let k =
    match inj.kind with
    | Bit_flip { bit } -> Printf.sprintf "bit %d" bit
    | Value_offset { delta } -> Printf.sprintf "+%g" delta
    | Value_set { value } -> Printf.sprintf "=%g" value
  in
  let bi, bj = inj.block and ei, ej = inj.element in
  Format.fprintf fmt "it=%d %s block(%d,%d) elem(%d,%d) %s" inj.iteration w bi
    bj ei ej k

let pp fmt plan =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_injection)
    plan

let to_string plan = Format.asprintf "%a" pp plan
