(** Fault descriptions and injection plans.

    A plan is a list of {!injection}s, each firing at most once at a
    well-defined logical point of the factorization. The windows extend
    the paper's taxonomy:

    - {{!window}[In_computation op]} — a *computing error*: one element
      of [op]'s freshly written output block is wrong (the "1+1=3"
      class). Post-update verification (Online-ABFT) catches these.
    - {{!window}[In_storage]} — a *storage error*: a bit of a block
      flips while the block sits in memory between its last
      verification and its next access. Only pre-read verification
      (Enhanced Online-ABFT) catches these before they are consumed.
    - {{!window}[In_checksum]} — a bit of the *stored checksum block*
      flips while resident. The checksum store's duplicate encoding
      (see {!Abft.Checksum}) detects the disagreement at the next
      verification and repairs the corrupted copy by recalculation.
    - {{!window}[In_update op]} — a computing error inside [op]'s
      checksum-*update* kernel: the wrong value lands in the checksum
      block, never in the tile, and is likewise repaired by
      recalculation at the next verification.

    Plans are data: deterministic, serializable to a compact string
    form, and independent of the execution mode (the numeric driver
    physically applies them; the timing driver uses them to decide
    which recovery penalties occur). *)

type op = Syrk | Gemm | Trsm | Potf2

type solver_target =
  | Sol_x  (** the iterate [x] *)
  | Sol_r  (** the recurrence residual [r] *)
  | Sol_p  (** the search direction [p] *)
  | Sol_precond  (** the preconditioner's triangular factor *)

type window =
  | In_storage
      (** fired at the start of the target iteration, before any
          verification, emulating decay while resident *)
  | In_computation of op
      (** fired immediately after [op] writes the target block in the
          target iteration *)
  | In_checksum
      (** fired at the start of the target iteration on the stored
          checksum block of the target tile; [element] is
          [(checksum row, tile column)] within the d×B block *)
  | In_update of op
      (** fired immediately after [op]'s checksum update writes the
          target block's checksum in the target iteration; [element]
          as for [In_checksum] *)
  | In_device
      (** a corrupted host↔device transfer: wrong bits landed in the
          target tile while it crossed the PCIe bus. Fired at the start
          of the target iteration like [In_storage], and corrected
          under exactly the same (pre-read verification) conditions —
          the physical cause differs, the checksum math does not. The
          resilient scheduling layer deliberately does not retry these:
          they must be healed by the ABFT ladder. *)
  | In_solver of solver_target
      (** a bit-flip inside a running iterative solve: fired at the
          start of solver iteration [iteration], before that iteration's
          verification or convergence check, on the target vector (for
          {!Sol_x}/{!Sol_r}/{!Sol_p}, [element] is [(index, 0)]) or the
          preconditioner's live triangular factor (for {!Sol_precond},
          [element] is a lower-triangle [(row, col)]). These windows are
          ignored by the factorization drivers and fired only by
          {!Injector.fire_solver}. *)

type kind =
  | Bit_flip of { bit : int }  (** storage-style corruption *)
  | Value_offset of { delta : float }  (** computing-style wrong result *)
  | Value_set of { value : float }  (** hard override, for tests *)

type injection = {
  iteration : int;  (** outer iteration (block column) at which to fire *)
  window : window;
  block : int * int;  (** target tile, block coordinates (row, col) *)
  element : int * int;  (** element within the tile (or checksum block) *)
  kind : kind;
}

type t = injection list

val equal_op : op -> op -> bool
(** Structural equality on {!op} without polymorphic compare. *)

val equal_solver_target : solver_target -> solver_target -> bool
(** Structural equality on {!solver_target} without polymorphic
    compare. *)

val apply_kind : kind -> float -> float
(** The corrupted value a [kind] produces from a stored value. *)

val computing_error :
  ?delta:float -> iteration:int -> op:op -> block:int * int -> element:int * int -> unit -> injection
(** A single computing error (default [delta = 1e3]). *)

val storage_error :
  ?bit:int -> iteration:int -> block:int * int -> element:int * int -> unit -> injection
(** A single storage bit-flip (default [bit = 40], a mid-exponent
    mantissa bit large enough to matter). *)

val checksum_error :
  ?bit:int -> iteration:int -> block:int * int -> element:int * int -> unit -> injection
(** A single bit-flip inside the stored checksum block; [element] is
    [(checksum row, tile column)]. *)

val update_error :
  ?delta:float -> iteration:int -> op:op -> block:int * int -> element:int * int -> unit -> injection
(** A single wrong value written by [op]'s checksum-update kernel. *)

val transfer_error :
  ?bit:int -> iteration:int -> block:int * int -> element:int * int -> unit -> injection
(** A single corrupted-transfer bit-flip ([In_device], default
    [bit = 40]). *)

val solver_error :
  ?bit:int ->
  iteration:int ->
  target:solver_target ->
  element:int * int ->
  unit ->
  injection
(** A single bit-flip in a running solve ([In_solver], default
    [bit = 40]); [iteration] is the solver iteration, [element] as
    described on {!In_solver}. *)

val random_plan :
  ?covered_only:bool ->
  seed:int ->
  grid:int ->
  block:int ->
  count:int ->
  storage_fraction:float ->
  ?checksum_fraction:float ->
  ?update_fraction:float ->
  ?device_fraction:float ->
  unit ->
  t
(** [random_plan ~seed ~grid ~block ~count ~storage_fraction] draws
    [count] injections over a [grid × grid] tile matrix of [block]-size
    tiles: iteration uniform in the iterations during which the target
    block is still live, target block uniform over the lower triangle,
    element uniform in the tile. Each draw is a storage flip with
    probability [storage_fraction], a checksum-store flip with
    probability [checksum_fraction] (default 0), a checksum-update
    error with probability [update_fraction] (default 0), a
    corrupted-transfer flip with probability [device_fraction]
    (default 0), else a computing error (op chosen to match where the
    block is written at that iteration). Deterministic in [seed]; with
    the default zero checksum/update/device fractions the generated
    plans are identical to the two-window generator of earlier
    revisions.

    [~covered_only:true] (default [false]) restricts draws to the
    windows the Enhanced scheme actually covers — the injections the
    paper's experiments use: no [Potf2]-output computing errors (the
    checksum update consumes the corrupted factor, detect-only) and no
    storage or checksum flips after the target block's last read
    ([iteration <= max row col], after which nothing re-reads it).
    Checksum-update errors are covered for every op — they never touch
    tile data, so recalculation always repairs them.

    @raise Invalid_argument if any fraction is out of range or the
    window fractions sum past 1. *)

val random_solver_plan :
  seed:int ->
  n:int ->
  iters:int ->
  count:int ->
  ?x_fraction:float ->
  ?r_fraction:float ->
  ?p_fraction:float ->
  ?precond_fraction:float ->
  unit ->
  t
(** [random_solver_plan ~seed ~n ~iters ~count ()] draws [count]
    {!In_solver} injections against an [n]-dimensional solve: the
    firing iteration is uniform in [\[1, iters\]], the target is
    {!Sol_x} / {!Sol_r} / {!Sol_p} / {!Sol_precond} with probability
    [x_fraction] (default 0.3) / [r_fraction] (0.25) / [p_fraction]
    (0.25) / [precond_fraction] (0.2); any remainder falls to
    {!Sol_r}. Vector targets flip element [(index, 0)] with the index
    uniform in [\[0, n)]; factor targets flip a uniform lower-triangle
    element. Bits are drawn in [\[30, 62\]], so both mantissa noise and
    exponent blow-ups occur. Deterministic in [seed].

    @raise Invalid_argument if a fraction is outside [\[0, 1\]] or the
    four fractions sum past 1 — solver-storm plans must not silently
    over-allocate their windows. *)

val pp_injection : Format.formatter -> injection -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
