(** Fault descriptions and injection plans.

    A plan is a list of {!injection}s, each firing at most once at a
    well-defined logical point of the factorization. The two windows
    mirror the paper's taxonomy:

    - {{!window}[In_computation op]} — a *computing error*: one element
      of [op]'s freshly written output block is wrong (the "1+1=3"
      class). Post-update verification (Online-ABFT) catches these.
    - {{!window}[In_storage]} — a *storage error*: a bit of a block
      flips while the block sits in memory between its last
      verification and its next access. Only pre-read verification
      (Enhanced Online-ABFT) catches these before they are consumed.

    Plans are data: deterministic, serializable to a compact string
    form, and independent of the execution mode (the numeric driver
    physically applies them; the timing driver uses them to decide
    which recovery penalties occur). *)

type op = Syrk | Gemm | Trsm | Potf2

type window =
  | In_storage
      (** fired at the start of the target iteration, before any
          verification, emulating decay while resident *)
  | In_computation of op
      (** fired immediately after [op] writes the target block in the
          target iteration *)

type kind =
  | Bit_flip of { bit : int }  (** storage-style corruption *)
  | Value_offset of { delta : float }  (** computing-style wrong result *)
  | Value_set of { value : float }  (** hard override, for tests *)

type injection = {
  iteration : int;  (** outer iteration (block column) at which to fire *)
  window : window;
  block : int * int;  (** target tile, block coordinates (row, col) *)
  element : int * int;  (** element within the tile *)
  kind : kind;
}

type t = injection list

val apply_kind : kind -> float -> float
(** The corrupted value a [kind] produces from a stored value. *)

val computing_error :
  ?delta:float -> iteration:int -> op:op -> block:int * int -> element:int * int -> unit -> injection
(** A single computing error (default [delta = 1e3]). *)

val storage_error :
  ?bit:int -> iteration:int -> block:int * int -> element:int * int -> unit -> injection
(** A single storage bit-flip (default [bit = 40], a mid-exponent
    mantissa bit large enough to matter). *)

val random_plan :
  ?covered_only:bool ->
  seed:int ->
  grid:int ->
  block:int ->
  count:int ->
  storage_fraction:float ->
  unit ->
  t
(** [random_plan ~seed ~grid ~block ~count ~storage_fraction] draws
    [count] injections over a [grid × grid] tile matrix of [block]-size
    tiles: iteration uniform in the iterations during which the target
    block is still live, target block uniform over the lower triangle,
    element uniform in the tile, window storage with probability
    [storage_fraction] else computing (op chosen to match where the
    block is written at that iteration). Deterministic in [seed].

    [~covered_only:true] (default [false]) restricts draws to the
    windows the Enhanced scheme actually covers — the injections the
    paper's experiments use: no [Potf2]-output computing errors (the
    checksum update consumes the corrupted factor, detect-only) and no
    storage flips after the target block's last read
    ([iteration <= max row col], after which nothing re-reads it). *)

val pp_injection : Format.formatter -> injection -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
