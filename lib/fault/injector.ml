open Matrix

type fired = {
  injection : Fault.injection;
  old_value : float;
  new_value : float;
}

type t = {
  mutable pending : Fault.t;
  mutable log : fired list;  (* reverse firing order *)
}

let create plan = { pending = plan; log = [] }

let corrupt t (inj : Fault.injection) tile =
  let ei, ej = inj.Fault.element in
  let old_value = Mat.get tile ei ej in
  let new_value = Fault.apply_kind inj.Fault.kind old_value in
  Mat.set tile ei ej new_value;
  t.log <- { injection = inj; old_value; new_value } :: t.log

let partition_fire t select apply =
  let fire, keep = List.partition select t.pending in
  (* Remove an injection from pending only if it actually applied. *)
  let unapplied = List.filter (fun inj -> not (apply inj)) fire in
  t.pending <- unapplied @ keep

let fire_storage t ~iteration ~lookup =
  partition_fire t
    (fun inj ->
      inj.Fault.window = Fault.In_storage && inj.Fault.iteration = iteration)
    (fun inj ->
      match lookup inj.Fault.block with
      | None -> false
      | Some tile ->
          corrupt t inj tile;
          true)

let fire_compute t ~iteration ~op ~block tile =
  partition_fire t
    (fun inj ->
      inj.Fault.window = Fault.In_computation op
      && inj.Fault.iteration = iteration
      && inj.Fault.block = block)
    (fun inj ->
      corrupt t inj tile;
      true)

let fired t = List.rev t.log
let fired_count t = List.length t.log
let pending t = t.pending

let pp_fired fmt f =
  Format.fprintf fmt "%a : %.17g -> %.17g" Fault.pp_injection f.injection
    f.old_value f.new_value
