open Matrix

type fired = {
  injection : Fault.injection;
  old_value : float;
  new_value : float;
}

type t = {
  mutable pending : Fault.t;
  mutable log : fired list;  (* reverse firing order *)
  mutable fired_n : int;  (* length of [log], maintained incrementally *)
}

let create plan = { pending = plan; log = []; fired_n = 0 }

let corrupt t (inj : Fault.injection) tile =
  let ei, ej = inj.Fault.element in
  let old_value = Mat.get tile ei ej in
  let new_value = Fault.apply_kind inj.Fault.kind old_value in
  Mat.set tile ei ej new_value;
  t.log <- { injection = inj; old_value; new_value } :: t.log;
  t.fired_n <- t.fired_n + 1

let partition_fire t select apply =
  let fire, keep = List.partition select t.pending in
  (* Remove an injection from pending only if it actually applied. *)
  let unapplied = List.filter (fun inj -> not (apply inj)) fire in
  t.pending <- unapplied @ keep

let block_matches (inj : Fault.injection) (bi, bc) =
  let ii, ic = inj.Fault.block in
  ii = bi && ic = bc

let fire_storage t ~iteration ~lookup =
  partition_fire t
    (fun inj ->
      match inj.Fault.window with
      | Fault.In_storage -> inj.Fault.iteration = iteration
      | Fault.In_computation _ | Fault.In_checksum | Fault.In_update _
      | Fault.In_device | Fault.In_solver _ ->
          false)
    (fun inj ->
      match lookup inj.Fault.block with
      | None -> false
      | Some tile ->
          corrupt t inj tile;
          true)

let fire_device t ~iteration ~lookup =
  partition_fire t
    (fun inj ->
      match inj.Fault.window with
      | Fault.In_device -> inj.Fault.iteration = iteration
      | Fault.In_storage | Fault.In_computation _ | Fault.In_checksum
      | Fault.In_update _ | Fault.In_solver _ ->
          false)
    (fun inj ->
      match lookup inj.Fault.block with
      | None -> false
      | Some tile ->
          corrupt t inj tile;
          true)

let fire_compute t ~iteration ~op ~block tile =
  partition_fire t
    (fun inj ->
      match inj.Fault.window with
      | Fault.In_computation o ->
          Fault.equal_op o op
          && inj.Fault.iteration = iteration
          && block_matches inj block
      | Fault.In_storage | Fault.In_checksum | Fault.In_update _
      | Fault.In_device | Fault.In_solver _ ->
          false)
    (fun inj ->
      corrupt t inj tile;
      true)

let fire_checksum t ~iteration ~lookup =
  partition_fire t
    (fun inj ->
      match inj.Fault.window with
      | Fault.In_checksum -> inj.Fault.iteration = iteration
      | Fault.In_storage | Fault.In_computation _ | Fault.In_update _
      | Fault.In_device | Fault.In_solver _ ->
          false)
    (fun inj ->
      match lookup inj.Fault.block with
      | None -> false
      | Some chk ->
          corrupt t inj chk;
          true)

let fire_update t ~iteration ~op ~block chk =
  partition_fire t
    (fun inj ->
      match inj.Fault.window with
      | Fault.In_update o ->
          Fault.equal_op o op
          && inj.Fault.iteration = iteration
          && block_matches inj block
      | Fault.In_storage | Fault.In_computation _ | Fault.In_checksum
      | Fault.In_device | Fault.In_solver _ ->
          false)
    (fun inj ->
      corrupt t inj chk;
      true)

let corrupt_vec t (inj : Fault.injection) (v : Vec.t) =
  let ei, _ = inj.Fault.element in
  if ei < 0 || ei >= Array.length v then false
  else begin
    let old_value = v.(ei) in
    let new_value = Fault.apply_kind inj.Fault.kind old_value in
    v.(ei) <- new_value;
    t.log <- { injection = inj; old_value; new_value } :: t.log;
    t.fired_n <- t.fired_n + 1;
    true
  end

let fire_solver t ~iteration ~lookup =
  partition_fire t
    (fun inj ->
      match inj.Fault.window with
      | Fault.In_solver _ -> inj.Fault.iteration = iteration
      | Fault.In_storage | Fault.In_computation _ | Fault.In_checksum
      | Fault.In_update _ | Fault.In_device ->
          false)
    (fun inj ->
      let target =
        match inj.Fault.window with
        | Fault.In_solver tgt -> tgt
        | Fault.In_storage | Fault.In_computation _ | Fault.In_checksum
        | Fault.In_update _ | Fault.In_device ->
            assert false (* unreachable: the selector above filters *)
      in
      match lookup target with
      | None -> false
      | Some (`Vec v) -> corrupt_vec t inj v
      | Some (`Mat m) ->
          let ei, ej = inj.Fault.element in
          if ei < 0 || ej < 0 || ei >= Mat.rows m || ej >= Mat.cols m then
            false
          else begin
            corrupt t inj m;
            true
          end)

let fired t = List.rev t.log
let fired_count t = t.fired_n
let pending t = t.pending

let pp_fired fmt f =
  Format.fprintf fmt "%a : %.17g -> %.17g" Fault.pp_injection f.injection
    f.old_value f.new_value
