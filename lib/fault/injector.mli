(** Stateful application of a fault plan to live tiles.

    The numeric Cholesky drivers announce logical points of the
    factorization; the injector fires the plan's matching injections by
    physically corrupting the tile data — or, for the checksum-side
    windows, the stored checksum block — and keeps an audit log of what
    it changed (block, element, old and new value). Each injection
    fires at most once — faults in the paper's experiments are
    transient, so they do not re-fire during a recovery re-run. *)

type fired = {
  injection : Fault.injection;
  old_value : float;
  new_value : float;
}

type t

val create : Fault.t -> t

val fire_storage :
  t -> iteration:int -> lookup:(int * int -> Matrix.Mat.t option) -> unit
(** [fire_storage t ~iteration ~lookup] applies every still-pending
    [In_storage] injection scheduled for [iteration]. [lookup] maps
    block coordinates to the live tile ([None] if the driver holds no
    such block, in which case the injection stays pending and is
    reported by {!pending}). *)

val fire_device :
  t -> iteration:int -> lookup:(int * int -> Matrix.Mat.t option) -> unit
(** [fire_device t ~iteration ~lookup] applies every still-pending
    [In_device] injection scheduled for [iteration] — a corrupted
    host↔device transfer materialized as wrong bits in the tile.
    Mechanically identical to {!fire_storage} (the tile holds wrong
    data before its next read); kept separate so campaigns and stats
    can attribute the fault to the transfer path. *)

val fire_compute :
  t -> iteration:int -> op:Fault.op -> block:int * int -> Matrix.Mat.t -> unit
(** [fire_compute t ~iteration ~op ~block tile] applies every pending
    [In_computation op] injection matching this (iteration, op, block)
    to the freshly updated [tile]. *)

val fire_checksum :
  t -> iteration:int -> lookup:(int * int -> Matrix.Mat.t option) -> unit
(** [fire_checksum t ~iteration ~lookup] applies every still-pending
    [In_checksum] injection scheduled for [iteration]. [lookup] maps
    block coordinates to the live (primary) d×B checksum matrix of
    that block — only the primary copy is hit, mirroring a resident
    memory fault on one replica. *)

val fire_update :
  t -> iteration:int -> op:Fault.op -> block:int * int -> Matrix.Mat.t -> unit
(** [fire_update t ~iteration ~op ~block chk] applies every pending
    [In_update op] injection matching this (iteration, op, block) to
    the freshly updated (primary) checksum matrix [chk]. *)

val fire_solver :
  t ->
  iteration:int ->
  lookup:
    (Fault.solver_target ->
    [ `Vec of Matrix.Vec.t | `Mat of Matrix.Mat.t ] option) ->
  unit
(** [fire_solver t ~iteration ~lookup] applies every still-pending
    [In_solver] injection scheduled for solver iteration [iteration].
    [lookup] maps the target to the live state: a solver vector
    ([`Vec], corrupted at [element]'s row index) or the
    preconditioner's live factor ([`Mat], corrupted at [element]).
    [None] — or an element outside the live target's bounds — leaves
    the injection pending, mirroring {!fire_storage}'s contract. *)

val fired : t -> fired list
(** Audit log, in firing order. *)

val fired_count : t -> int
(** Number of fired injections; O(1) (an incremental counter, not a
    walk of the log). *)

val pending : t -> Fault.t
(** Injections that have not fired (yet, or ever — e.g. scheduled past
    the last iteration). *)

val pp_fired : Format.formatter -> fired -> unit
