(* Time of one BLAS-2 kernel given the aggregate bandwidth utilisation
   achieved by [concurrent] kernels in flight. Summing this quantity
   over all kernels of a batch yields the batch makespan, because the
   aggregate bandwidth is shared: each kernel's share-of-time equals its
   share of the total traffic. *)
let blas2_time ~concurrent (d : Device.t) kernel =
  let fl = Kernel.flops kernel in
  let by = float_of_int (Kernel.bytes kernel) in
  let util = Device.aggregate_blas2_util d ~concurrent in
  let bw_time = by /. (d.mem_bandwidth_gbs *. 1e9 *. util) in
  let compute_time = fl /. (d.peak_gflops *. 1e9) in
  Float.max bw_time compute_time

let duration (d : Device.t) kernel =
  let launch = d.kernel_launch_overhead_s in
  match Kernel.shape kernel with
  | Kernel.Blas3 ->
      let rate = Device.gflops_sustained d ~k:(Kernel.inner_dim kernel) in
      (Kernel.flops kernel /. (rate *. 1e9)) +. launch
  | Kernel.Blas2 -> blas2_time ~concurrent:1 d kernel +. launch
  | Kernel.Trivial -> (Kernel.flops kernel /. (d.peak_gflops *. 1e9)) +. launch
  | Kernel.Copy ->
      invalid_arg "Cost_model.duration: Memcpy is costed by the link"

let batch_duration (d : Device.t) ~streams kernels =
  if streams < 1 then invalid_arg "Cost_model.batch_duration: streams < 1";
  List.iter
    (fun k ->
      if Kernel.shape k <> Kernel.Blas2 then
        invalid_arg "Cost_model.batch_duration: only BLAS-2 kernels batch")
    kernels;
  let m = List.length kernels in
  if m = 0 then 0.
  else begin
    let width = min streams (min m d.max_concurrent_kernels) in
    let traffic_time =
      List.fold_left
        (fun acc k -> acc +. blas2_time ~concurrent:width d k)
        0. kernels
    in
    traffic_time
    +. (float_of_int m *. d.kernel_launch_overhead_s /. float_of_int width)
  end

(* Model-predicted GPU share of a row-splittable kernel: the fraction
   of rows the GPU should own so both devices finish together when each
   processes its rows at the full-kernel rate. With per-row times
   proportional to total durations, share = t_cpu / (t_cpu + t_gpu). *)
let gpu_share (m : Machine.t) kernel =
  let tc = duration m.Machine.cpu kernel in
  let tg = duration m.Machine.gpu kernel in
  if tc +. tg <= 0. then 0.5 else tc /. (tc +. tg)

let background_duration (d : Device.t) kernel =
  let frac = Float.max 1e-3 d.spare_stream_fraction in
  match Kernel.shape kernel with
  | Kernel.Copy -> invalid_arg "Cost_model.background_duration: Memcpy"
  | _ -> duration d kernel /. frac
