(** Duration model: kernel descriptor × device → seconds.

    - BLAS-3 kernels run at the device's sustained rate for their inner
      dimension ({!Device.gflops_sustained}), i.e. compute-bound with a
      ramp-up for skinny shapes.
    - BLAS-2 kernels are bound by whichever is slower of peak compute
      and memory bandwidth at the achievable utilisation; a lone kernel
      only reaches [blas2_single_util] of the bandwidth, while a batch
      spread over CUDA streams reaches
      {!Device.aggregate_blas2_util} — this is where CUDA concurrent
      kernel execution (the paper's Optimization 1) acts.
    - [Trivial] kernels cost their (tiny) flops at peak plus launch.
    - [Memcpy] must be costed by the link ({!Machine.transfer_time}),
      not here; passing one raises [Invalid_argument]. *)

val duration : Device.t -> Kernel.t -> float
(** [duration d k] in seconds, including one kernel-launch overhead.
    BLAS-2 kernels are costed at single-kernel utilisation.
    @raise Invalid_argument on [Memcpy]. *)

val batch_duration : Device.t -> streams:int -> Kernel.t list -> float
(** [batch_duration d ~streams ks] is the makespan of a batch of
    independent BLAS-2 kernels issued round-robin over [streams] CUDA
    streams: total traffic over the aggregate bandwidth achieved by the
    concurrent width [min streams (min |ks| max_concurrent_kernels)],
    plus launch overheads amortised across that width. With
    [streams = 1] this degrades exactly to the serial sum of
    {!duration}s. A batch containing a non-BLAS-2 kernel raises
    [Invalid_argument] — only checksum recalculation is batched in this
    system. *)

val gpu_share : Machine.t -> Kernel.t -> float
(** [gpu_share m k] is the model-predicted fraction of [k]'s rows the
    GPU should own so CPU and GPU finish their row slices together,
    assuming per-row time proportional to the whole-kernel
    {!duration} on each device: [tc / (tc + tg)]. In (0,1) for any
    machine with both devices; [0.5] for a degenerate zero-cost
    kernel. The static seed of the adaptive load balancer. *)

val background_duration : Device.t -> Kernel.t -> float
(** Duration of a kernel running on a spare/background stream while the
    main stream is busy: the kernel sees only
    [spare_stream_fraction] of the device throughput (Optimization 2,
    GPU placement). *)
