type kind = Cpu | Gpu

type reliability = {
  transient_fault_rate : float;
  hang_rate : float;
  hang_timeout_s : float;
  transfer_corruption_rate : float;
  dropout_after_s : float;
  faults_until_s : float;
}

let reliable =
  {
    transient_fault_rate = 0.;
    hang_rate = 0.;
    hang_timeout_s = 1.0;
    transfer_corruption_rate = 0.;
    dropout_after_s = infinity;
    faults_until_s = infinity;
  }

let is_reliable r =
  (r.transient_fault_rate <= 0.
   && r.hang_rate <= 0.
   && r.transfer_corruption_rate <= 0.
  || r.faults_until_s <= 0.)
  && not (Float.is_finite r.dropout_after_s)

type t = {
  name : string;
  kind : kind;
  peak_gflops : float;
  gemm_efficiency : float;
  gemm_half_k : float;
  mem_bandwidth_gbs : float;
  blas2_single_util : float;
  max_concurrent_kernels : int;
  concurrency_effectiveness : float;
  kernel_launch_overhead_s : float;
  spare_stream_fraction : float;
  mem_bytes : int;
  reliability : reliability;
}

let gflops_sustained d ~k =
  let k = float_of_int (max k 1) in
  d.peak_gflops *. d.gemm_efficiency *. (k /. (k +. d.gemm_half_k))

let aggregate_blas2_util d ~concurrent =
  let p = max 1 (min concurrent d.max_concurrent_kernels) in
  let util =
    d.blas2_single_util
    *. (1. +. (float_of_int (p - 1) *. d.concurrency_effectiveness))
  in
  Float.min 1. util

let validate d =
  let frac name v =
    if v < 0. || v > 1. then Error (Printf.sprintf "%s: %s out of [0,1]" d.name name)
    else Ok ()
  in
  let pos name v =
    if v <= 0. then Error (Printf.sprintf "%s: %s must be positive" d.name name)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = pos "peak_gflops" d.peak_gflops in
  let* () = frac "gemm_efficiency" d.gemm_efficiency in
  let* () = pos "mem_bandwidth_gbs" d.mem_bandwidth_gbs in
  let* () = frac "blas2_single_util" d.blas2_single_util in
  let* () = frac "concurrency_effectiveness" d.concurrency_effectiveness in
  let* () = frac "spare_stream_fraction" d.spare_stream_fraction in
  let* () =
    if d.max_concurrent_kernels < 1 then
      Error (d.name ^ ": max_concurrent_kernels must be >= 1")
    else Ok ()
  in
  let* () =
    if d.kernel_launch_overhead_s < 0. then
      Error (d.name ^ ": kernel_launch_overhead_s must be >= 0")
    else Ok ()
  in
  let r = d.reliability in
  let* () = frac "transient_fault_rate" r.transient_fault_rate in
  let* () = frac "hang_rate" r.hang_rate in
  let* () = frac "transfer_corruption_rate" r.transfer_corruption_rate in
  let* () = pos "hang_timeout_s" r.hang_timeout_s in
  let* () =
    if r.dropout_after_s <= 0. then
      Error (d.name ^ ": dropout_after_s must be positive (infinity = never)")
    else Ok ()
  in
  if r.faults_until_s < 0. || Float.is_nan r.faults_until_s then
    Error (d.name ^ ": faults_until_s must be >= 0 (infinity = never heals)")
  else Ok ()

let pp fmt d =
  Format.fprintf fmt
    "%s (%s): %.0f GF peak, eff %.2f, BW %.0f GB/s, %d ck x %.2f"
    d.name
    (match d.kind with Cpu -> "CPU" | Gpu -> "GPU")
    d.peak_gflops d.gemm_efficiency d.mem_bandwidth_gbs
    d.max_concurrent_kernels d.concurrency_effectiveness
