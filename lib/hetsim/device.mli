(** Device performance descriptors.

    A device is characterised by the handful of parameters the paper's
    reasoning depends on: dense (BLAS-3) throughput, memory bandwidth
    (which bounds BLAS-2 work such as checksum recalculation), kernel
    launch overhead, and how well the device overlaps concurrent
    kernels (CUDA "concurrent kernel execution", much stronger on
    Kepler/Hyper-Q than on Fermi — the machine-dependence behind the
    paper's Optimization 1 results). *)

type kind = Cpu | Gpu

(** Per-device reliability profile, all rates per-operation: a device
    can fault transiently (kernel completes but the result is garbage,
    detected at completion), hang (a watchdog deadline of
    [hang_timeout_s] is charged before the failure is observed),
    corrupt a host↔device transfer (the copy "succeeds" but the payload
    is wrong — an ABFT storage error, not a scheduling failure), or
    drop out permanently at virtual time [dropout_after_s]. The default
    {!reliable} profile has every rate at zero and never drops out, and
    the engine draws no randomness for reliable devices, so existing
    timing results are bit-identical. *)
type reliability = {
  transient_fault_rate : float;
      (** per-kernel probability of a transient fault, in [0,1] *)
  hang_rate : float;  (** per-kernel probability of a hang, in [0,1] *)
  hang_timeout_s : float;
      (** watchdog deadline charged when a kernel hangs *)
  transfer_corruption_rate : float;
      (** per-transfer probability of silent payload corruption *)
  dropout_after_s : float;
      (** virtual time after which the device is permanently lost;
          [infinity] = never *)
  faults_until_s : float;
      (** virtual time after which the fault window closes: kernels
          and transfers starting at or after this time behave reliably
          and draw no randomness. Models a transiently-unhealthy device
          (thermal excursion, flaky driver) that heals mid-run;
          [infinity] = faults persist for the whole run *)
}

val reliable : reliability
(** All-zero rates, [dropout_after_s = infinity]: a device that never
    fails. *)

val is_reliable : reliability -> bool
(** True iff no failure source is active (all rates [<= 0] and no
    finite dropout time). *)

type t = {
  name : string;
  kind : kind;
  peak_gflops : float;
      (** double-precision peak for dense BLAS-3 work *)
  gemm_efficiency : float;
      (** fraction of peak reached by a saturating GEMM *)
  gemm_half_k : float;
      (** inner dimension at which GEMM reaches half of
          [gemm_efficiency]; models the ramp-up for skinny shapes *)
  mem_bandwidth_gbs : float;
      (** device memory bandwidth, bounds BLAS-2 kernels *)
  blas2_single_util : float;
      (** fraction of bandwidth one lone small BLAS-2 kernel achieves *)
  max_concurrent_kernels : int;
      (** hardware limit on resident concurrent kernels
          (16 on Fermi, 32 on Kepler) *)
  concurrency_effectiveness : float;
      (** in [0,1]: how much each extra concurrent kernel adds to
          aggregate utilisation (Fermi low, Kepler/Hyper-Q high) *)
  kernel_launch_overhead_s : float;
      (** fixed cost to launch one kernel *)
  spare_stream_fraction : float;
      (** fraction of throughput available to a background stream while
          the main stream is busy (Optimization 2 on-GPU placement) *)
  mem_bytes : int;  (** device memory capacity *)
  reliability : reliability;
      (** failure behaviour; {!reliable} for ideal hardware *)
}

val gflops_sustained : t -> k:int -> float
(** [gflops_sustained d ~k] is the sustained BLAS-3 rate for inner
    dimension [k] (GFLOPS):
    [peak * gemm_efficiency * k / (k + gemm_half_k)]. *)

val aggregate_blas2_util : t -> concurrent:int -> float
(** [aggregate_blas2_util d ~concurrent] is the fraction of memory
    bandwidth achieved by [concurrent] independent BLAS-2 kernels in
    flight: [min 1 (single * (1 + (p-1) * effectiveness))] where [p] is
    capped by [max_concurrent_kernels]. With [concurrent = 1] this is
    just [blas2_single_util]. *)

val validate : t -> (unit, string) result
(** Sanity-check the parameter ranges (fractions in [0,1], positive
    rates); returns [Error msg] naming the first bad field. *)

val pp : Format.formatter -> t -> unit
