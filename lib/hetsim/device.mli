(** Device performance descriptors.

    A device is characterised by the handful of parameters the paper's
    reasoning depends on: dense (BLAS-3) throughput, memory bandwidth
    (which bounds BLAS-2 work such as checksum recalculation), kernel
    launch overhead, and how well the device overlaps concurrent
    kernels (CUDA "concurrent kernel execution", much stronger on
    Kepler/Hyper-Q than on Fermi — the machine-dependence behind the
    paper's Optimization 1 results). *)

type kind = Cpu | Gpu

type t = {
  name : string;
  kind : kind;
  peak_gflops : float;
      (** double-precision peak for dense BLAS-3 work *)
  gemm_efficiency : float;
      (** fraction of peak reached by a saturating GEMM *)
  gemm_half_k : float;
      (** inner dimension at which GEMM reaches half of
          [gemm_efficiency]; models the ramp-up for skinny shapes *)
  mem_bandwidth_gbs : float;
      (** device memory bandwidth, bounds BLAS-2 kernels *)
  blas2_single_util : float;
      (** fraction of bandwidth one lone small BLAS-2 kernel achieves *)
  max_concurrent_kernels : int;
      (** hardware limit on resident concurrent kernels
          (16 on Fermi, 32 on Kepler) *)
  concurrency_effectiveness : float;
      (** in [0,1]: how much each extra concurrent kernel adds to
          aggregate utilisation (Fermi low, Kepler/Hyper-Q high) *)
  kernel_launch_overhead_s : float;
      (** fixed cost to launch one kernel *)
  spare_stream_fraction : float;
      (** fraction of throughput available to a background stream while
          the main stream is busy (Optimization 2 on-GPU placement) *)
  mem_bytes : int;  (** device memory capacity *)
}

val gflops_sustained : t -> k:int -> float
(** [gflops_sustained d ~k] is the sustained BLAS-3 rate for inner
    dimension [k] (GFLOPS):
    [peak * gemm_efficiency * k / (k + gemm_half_k)]. *)

val aggregate_blas2_util : t -> concurrent:int -> float
(** [aggregate_blas2_util d ~concurrent] is the fraction of memory
    bandwidth achieved by [concurrent] independent BLAS-2 kernels in
    flight: [min 1 (single * (1 + (p-1) * effectiveness))] where [p] is
    capped by [max_concurrent_kernels]. With [concurrent = 1] this is
    just [blas2_single_util]. *)

val validate : t -> (unit, string) result
(** Sanity-check the parameter ranges (fractions in [0,1], positive
    rates); returns [Error msg] naming the first bad field. *)

val pp : Format.formatter -> t -> unit
