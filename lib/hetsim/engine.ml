type resource = Cpu | Gpu | Gpu_spare | Link_h2d | Link_d2h

type event = float
(* An event is just its completion time: the engine schedules eagerly
   in issue order, so the finish time is known at submission. *)

type stream = { mutable last : float }

type binding =
  | Bound_by_deps
  | Bound_by_resource
  | Bound_by_stream
  | Started_free

type record = {
  label : string;
  phase : string;
  resource : resource option;
  start : float;
  finish : float;
  binding : binding;
}

type t = {
  machine : Machine.t;
  mutable free : (resource * float ref) list;
  mutable makespan : float;
  mutable ops : record list;  (* reverse issue order *)
  mutable count : int;
}

let create machine =
  {
    machine;
    free =
      [
        (Cpu, ref 0.);
        (Gpu, ref 0.);
        (Gpu_spare, ref 0.);
        (Link_h2d, ref 0.);
        (Link_d2h, ref 0.);
      ];
    makespan = 0.;
    ops = [];
    count = 0;
  }

let machine t = t.machine
let ready : event = 0.
let new_stream _t = { last = 0. }

let deps_time deps = List.fold_left Float.max 0. deps

let record t ~label ~phase ~resource ~start ~finish ~binding =
  t.ops <- { label; phase; resource; start; finish; binding } :: t.ops;
  t.count <- t.count + 1;
  if finish > t.makespan then t.makespan <- finish

(* Schedule a duration on a resource: start at the latest of deps,
   resource availability and stream order; advance both clocks. *)
let schedule t ?stream ~deps ~phase ~label resource dur : event =
  let avail = List.assoc resource t.free in
  let stream_last = match stream with None -> 0. | Some s -> s.last in
  let dep_t = deps_time deps in
  let start = Float.max dep_t (Float.max !avail stream_last) in
  let binding =
    if start <= 0. then Started_free
    else if start = !avail && !avail >= dep_t && !avail >= stream_last then
      Bound_by_resource
    else if start = dep_t && dep_t >= stream_last then Bound_by_deps
    else Bound_by_stream
  in
  let finish = start +. dur in
  avail := finish;
  (match stream with None -> () | Some s -> s.last <- finish);
  record t ~label ~phase ~resource:(Some resource) ~start ~finish ~binding;
  finish

let device_of t = function
  | Cpu -> t.machine.Machine.cpu
  | Gpu | Gpu_spare -> t.machine.Machine.gpu
  | Link_h2d | Link_d2h ->
      invalid_arg "Engine: link carries only Memcpy operations"

let submit t ?stream ?(deps = []) ?(phase = "compute") resource kernel : event =
  match (resource, Kernel.shape kernel) with
  | (Link_h2d | Link_d2h), _ ->
      invalid_arg "Engine.submit: use Engine.transfer for link operations"
  | _, Kernel.Copy ->
      invalid_arg "Engine.submit: Memcpy must go through Engine.transfer"
  | (Cpu | Gpu), _ ->
      let dur = Cost_model.duration (device_of t resource) kernel in
      schedule t ?stream ~deps ~phase ~label:(Kernel.label kernel) resource dur
  | Gpu_spare, _ ->
      let dur = Cost_model.background_duration (device_of t resource) kernel in
      schedule t ?stream ~deps ~phase ~label:(Kernel.label kernel) resource dur

let submit_batch t ?(deps = []) ?(phase = "compute") ~streams kernels : event =
  match kernels with
  | [] -> deps_time deps
  | ks ->
      let dur = Cost_model.batch_duration t.machine.Machine.gpu ~streams ks in
      let label =
        Printf.sprintf "batch[%d kernels, %d streams]" (List.length ks) streams
      in
      schedule t ~deps ~phase ~label Gpu dur

let submit_background t ?(deps = []) ?(phase = "compute") kernel : event =
  let dur = Cost_model.background_duration t.machine.Machine.gpu kernel in
  schedule t ~deps ~phase ~label:("bg " ^ Kernel.label kernel) Gpu_spare dur

let transfer t ?(deps = []) ?(phase = "transfer") ~dir bytes : event =
  let resource = match dir with `H2d -> Link_h2d | `D2h -> Link_d2h in
  let dur = Machine.transfer_time t.machine ~bytes in
  let label =
    Printf.sprintf "%s %dB" (match dir with `H2d -> "h2d" | `D2h -> "d2h") bytes
  in
  schedule t ~deps ~phase ~label resource dur

let join _t events : event = deps_time events

let delay t ?(deps = []) ?(phase = "penalty") dur : event =
  let start = deps_time deps in
  let finish = start +. dur in
  let binding = if start <= 0. then Started_free else Bound_by_deps in
  record t ~label:"delay" ~phase ~resource:None ~start ~finish ~binding;
  finish

let time_of _t (e : event) = e
let makespan t = t.makespan

let busy_time t resource =
  List.fold_left
    (fun acc r ->
      if r.resource = Some resource then acc +. (r.finish -. r.start) else acc)
    0. t.ops

let phase_time t phase =
  List.fold_left
    (fun acc r -> if r.phase = phase then acc +. (r.finish -. r.start) else acc)
    0. t.ops

let phases t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let prev = Option.value (Hashtbl.find_opt tbl r.phase) ~default:0. in
      Hashtbl.replace tbl r.phase (prev +. (r.finish -. r.start)))
    t.ops;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let op_count t = t.count
let records t = List.rev t.ops

let resource_name = function
  | Cpu -> "cpu"
  | Gpu -> "gpu"
  | Gpu_spare -> "gpu-spare"
  | Link_h2d -> "h2d"
  | Link_d2h -> "d2h"

let pp_resource fmt r = Format.pp_print_string fmt (resource_name r)

let all_resources = [ Cpu; Gpu; Gpu_spare; Link_h2d; Link_d2h ]

let utilization t =
  let ms = t.makespan in
  List.map
    (fun r -> (r, if ms <= 0. then 0. else busy_time t r /. ms))
    all_resources

let binding_name = function
  | Bound_by_deps -> "deps"
  | Bound_by_resource -> "resource"
  | Bound_by_stream -> "stream"
  | Started_free -> "free"

let pp_binding fmt b = Format.pp_print_string fmt (binding_name b)

let binding_summary t =
  let count b =
    List.fold_left (fun acc r -> if r.binding = b then acc + 1 else acc) 0 t.ops
  in
  List.map
    (fun b -> (b, count b))
    [ Bound_by_deps; Bound_by_resource; Bound_by_stream; Started_free ]

let gantt ?(width = 100) ?(max_ops = 2000) t =
  let buf = Buffer.create 1024 in
  let ms = t.makespan in
  if ms <= 0. then Buffer.add_string buf "(empty timeline)\n"
  else begin
    let col time =
      min (width - 1) (int_of_float (time /. ms *. float_of_int width))
    in
    List.iter
      (fun res ->
        let ops = List.filter (fun r -> r.resource = Some res) (records t) in
        Buffer.add_string buf (Printf.sprintf "%-9s |" (resource_name res));
        if List.length ops > max_ops then
          Buffer.add_string buf
            (Printf.sprintf " %d ops, busy %.1f%% (too many to draw)"
               (List.length ops)
               (busy_time t res /. ms *. 100.))
        else begin
          let lane = Bytes.make width ' ' in
          List.iter
            (fun r ->
              let c0 = col r.start and c1 = col r.finish in
              let glyph =
                if String.length r.phase > 0 then
                  (* distinguish checksum phases from compute at a glance *)
                  if r.phase = "compute" then '#'
                  else if r.phase = "transfer" then '-'
                  else Char.lowercase_ascii r.phase.[String.length r.phase - 1]
                else '#'
              in
              for c = c0 to max c0 c1 do
                if c < width then Bytes.set lane c glyph
              done)
            ops;
          Buffer.add_string buf (Bytes.to_string lane)
        end;
        Buffer.add_char buf '\n')
      all_resources;
    Buffer.add_string buf
      (Printf.sprintf "%-9s 0%s%.4fs\n" "" (String.make (width - 8) ' ') ms)
  end;
  Buffer.contents buf

let to_chrome_trace t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  List.iter
    (fun r ->
      if not !first then Buffer.add_string buf ",";
      first := false;
      let tid = match r.resource with
        | None -> "virtual"
        | Some res -> resource_name res
      in
      Buffer.add_string buf
        (Printf.sprintf
           {|{"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":"%s"}|}
           (String.map (function '"' -> '\'' | c -> c) r.label)
           r.phase (r.start *. 1e6)
           ((r.finish -. r.start) *. 1e6)
           tid))
    (records t);
  Buffer.add_string buf "]";
  Buffer.contents buf
