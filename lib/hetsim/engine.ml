type resource = Cpu | Gpu | Gpu_spare | Link_h2d | Link_d2h

type event = float
(* An event is just its completion time: the engine schedules eagerly
   in issue order, so the finish time is known at submission. *)

type stream = { mutable last : float }

type binding =
  | Bound_by_deps
  | Bound_by_resource
  | Bound_by_stream
  | Started_free

type record = {
  label : string;
  phase : string;
  resource : resource option;
  start : float;
  finish : float;
  binding : binding;
}

type failure =
  | Transient_fault
  | Hang of { timeout_s : float }
  | Corrupted_transfer
  | Device_lost

type outcome = Completed of event | Failed of failure * event

type t = {
  machine : Machine.t;
  mutable free : (resource * float ref) list;
  mutable makespan : float;
  mutable ops : record list;  (* reverse issue order *)
  mutable count : int;
  rng : Random.State.t;
      (* consumed only by the [_result] submission paths, and only for
         devices whose reliability profile is non-trivial, so clean
         runs remain draw-free and bit-identical to the plain paths *)
  mutable cpu_lost : bool;
  mutable gpu_lost : bool;
}

let create ?(seed = 0) machine =
  {
    machine;
    free =
      [
        (Cpu, ref 0.);
        (Gpu, ref 0.);
        (Gpu_spare, ref 0.);
        (Link_h2d, ref 0.);
        (Link_d2h, ref 0.);
      ];
    makespan = 0.;
    ops = [];
    count = 0;
    rng = Random.State.make [| 0x5eed; seed |];
    cpu_lost = false;
    gpu_lost = false;
  }

let machine t = t.machine
let ready : event = 0.
let new_stream _t = { last = 0. }

let deps_time deps = List.fold_left Float.max 0. deps

let record t ~label ~phase ~resource ~start ~finish ~binding =
  t.ops <- { label; phase; resource; start; finish; binding } :: t.ops;
  t.count <- t.count + 1;
  if finish > t.makespan then t.makespan <- finish

(* Schedule a duration on a resource: start at the latest of deps,
   resource availability and stream order; advance both clocks. *)
let schedule t ?stream ~deps ~phase ~label resource dur : event =
  let avail = List.assoc resource t.free in
  let stream_last = match stream with None -> 0. | Some s -> s.last in
  let dep_t = deps_time deps in
  let start = Float.max dep_t (Float.max !avail stream_last) in
  let binding =
    if start <= 0. then Started_free
    else if start = !avail && !avail >= dep_t && !avail >= stream_last then
      Bound_by_resource
    else if start = dep_t && dep_t >= stream_last then Bound_by_deps
    else Bound_by_stream
  in
  let finish = start +. dur in
  avail := finish;
  (match stream with None -> () | Some s -> s.last <- finish);
  record t ~label ~phase ~resource:(Some resource) ~start ~finish ~binding;
  finish

let device_of t = function
  | Cpu -> t.machine.Machine.cpu
  | Gpu | Gpu_spare -> t.machine.Machine.gpu
  | Link_h2d | Link_d2h ->
      invalid_arg "Engine: link carries only Memcpy operations"

(* ------------------------------------------------------------------ *)
(* Failure-aware submission                                            *)
(* ------------------------------------------------------------------ *)

let device_lost t = function
  | Cpu -> t.cpu_lost
  | Gpu | Gpu_spare -> t.gpu_lost
  | Link_h2d | Link_d2h -> false

let mark_lost t = function
  | Cpu -> t.cpu_lost <- true
  | Gpu | Gpu_spare -> t.gpu_lost <- true
  | Link_h2d | Link_d2h -> ()

let planned_start t ?stream ~deps resource =
  let avail = List.assoc resource t.free in
  let stream_last = match stream with None -> 0. | Some s -> s.last in
  Float.max (deps_time deps) (Float.max !avail stream_last)

(* One fault draw for an operation of duration [dur] on [resource].
   Failure-time accounting: a permanent dropout is observed instantly
   at the would-be start (zero duration); a hang charges the watchdog
   deadline [hang_timeout_s]; a transient fault charges the full kernel
   duration (the kernel ran, its output is garbage). Exactly two RNG
   draws happen per faulty attempt regardless of the outcome, so the
   draw sequence — and hence every downstream retry decision — is a
   deterministic function of the engine seed and the call sequence. *)
let faulty_run t ?stream ~deps ~phase ~label resource dur : outcome =
  let rel = (device_of t resource).Device.reliability in
  if Device.is_reliable rel && not (device_lost t resource) then
    Completed (schedule t ?stream ~deps ~phase ~label resource dur)
  else begin
    let start = planned_start t ?stream ~deps resource in
    if device_lost t resource || start >= rel.Device.dropout_after_s then begin
      mark_lost t resource;
      Failed
        ( Device_lost,
          schedule t ?stream ~deps ~phase ~label:("lost " ^ label) resource 0.
        )
    end
    else if start >= rel.Device.faults_until_s then
      (* the fault window has closed: the device has healed, so this
         attempt runs clean and draws no randomness — later operations
         stay on the same draw sequence as if the device were reliable *)
      Completed (schedule t ?stream ~deps ~phase ~label resource dur)
    else begin
      let u_hang = Random.State.float t.rng 1. in
      let u_fault = Random.State.float t.rng 1. in
      if u_hang < rel.Device.hang_rate then
        let timeout_s = rel.Device.hang_timeout_s in
        Failed
          ( Hang { timeout_s },
            schedule t ?stream ~deps ~phase ~label:("hang " ^ label) resource
              timeout_s )
      else if u_fault < rel.Device.transient_fault_rate then
        Failed
          ( Transient_fault,
            schedule t ?stream ~deps ~phase ~label:("fault " ^ label) resource
              dur )
      else Completed (schedule t ?stream ~deps ~phase ~label resource dur)
    end
  end

let submit t ?stream ?(deps = []) ?(phase = "compute") resource kernel : event =
  match (resource, Kernel.shape kernel) with
  | (Link_h2d | Link_d2h), _ ->
      invalid_arg "Engine.submit: use Engine.transfer for link operations"
  | _, Kernel.Copy ->
      invalid_arg "Engine.submit: Memcpy must go through Engine.transfer"
  | (Cpu | Gpu), _ ->
      let dur = Cost_model.duration (device_of t resource) kernel in
      schedule t ?stream ~deps ~phase ~label:(Kernel.label kernel) resource dur
  | Gpu_spare, _ ->
      let dur = Cost_model.background_duration (device_of t resource) kernel in
      schedule t ?stream ~deps ~phase ~label:(Kernel.label kernel) resource dur

let submit_batch t ?(deps = []) ?(phase = "compute") ~streams kernels : event =
  match kernels with
  | [] -> deps_time deps
  | ks ->
      let dur = Cost_model.batch_duration t.machine.Machine.gpu ~streams ks in
      let label =
        Printf.sprintf "batch[%d kernels, %d streams]" (List.length ks) streams
      in
      schedule t ~deps ~phase ~label Gpu dur

let submit_background t ?(deps = []) ?(phase = "compute") kernel : event =
  let dur = Cost_model.background_duration t.machine.Machine.gpu kernel in
  schedule t ~deps ~phase ~label:("bg " ^ Kernel.label kernel) Gpu_spare dur

let transfer_label ?label ~dir bytes =
  match label with
  | Some l -> l
  | None ->
      Printf.sprintf "%s %dB"
        (match dir with `H2d -> "h2d" | `D2h -> "d2h")
        bytes

let transfer t ?(deps = []) ?(phase = "transfer") ?label ~dir bytes : event =
  let resource = match dir with `H2d -> Link_h2d | `D2h -> Link_d2h in
  let dur = Machine.transfer_time t.machine ~bytes in
  let label = transfer_label ?label ~dir bytes in
  schedule t ~deps ~phase ~label resource dur

let submit_result t ?stream ?(deps = []) ?(phase = "compute") resource kernel :
    outcome =
  match (resource, Kernel.shape kernel) with
  | (Link_h2d | Link_d2h), _ ->
      invalid_arg
        "Engine.submit_result: use Engine.transfer_result for link operations"
  | _, Kernel.Copy ->
      invalid_arg
        "Engine.submit_result: Memcpy must go through Engine.transfer_result"
  | (Cpu | Gpu), _ ->
      let dur = Cost_model.duration (device_of t resource) kernel in
      faulty_run t ?stream ~deps ~phase ~label:(Kernel.label kernel) resource
        dur
  | Gpu_spare, _ ->
      let dur = Cost_model.background_duration (device_of t resource) kernel in
      faulty_run t ?stream ~deps ~phase ~label:(Kernel.label kernel) resource
        dur

let submit_batch_result t ?(deps = []) ?(phase = "compute") ~streams kernels :
    outcome =
  match kernels with
  | [] -> Completed (deps_time deps)
  | ks ->
      let dur = Cost_model.batch_duration t.machine.Machine.gpu ~streams ks in
      let label =
        Printf.sprintf "batch[%d kernels, %d streams]" (List.length ks) streams
      in
      (* one draw for the whole batch: the batch occupies the engine as
         a single operation, so it faults as a single operation *)
      faulty_run t ~deps ~phase ~label Gpu dur

(* Transfer corruption is charged to the GPU endpoint's profile (every
   modelled copy has the GPU on one side). A corrupted transfer takes
   its full, normal time — the copy "succeeds" and only the payload is
   wrong, which is exactly why it must flow into the ABFT verify path
   rather than being retried here. *)
let transfer_result t ?(deps = []) ?(phase = "transfer") ?label ~dir bytes :
    outcome =
  let resource = match dir with `H2d -> Link_h2d | `D2h -> Link_d2h in
  let rel = t.machine.Machine.gpu.Device.reliability in
  let dur = Machine.transfer_time t.machine ~bytes in
  let label = transfer_label ?label ~dir bytes in
  if Device.is_reliable rel && not t.gpu_lost then
    Completed (schedule t ~deps ~phase ~label resource dur)
  else begin
    let start = planned_start t ~deps resource in
    if t.gpu_lost || start >= rel.Device.dropout_after_s then begin
      t.gpu_lost <- true;
      Failed
        (Device_lost, schedule t ~deps ~phase ~label:("lost " ^ label) resource 0.)
    end
    else if start >= rel.Device.faults_until_s then
      Completed (schedule t ~deps ~phase ~label resource dur)
    else begin
      let u = Random.State.float t.rng 1. in
      let ev = schedule t ~deps ~phase ~label resource dur in
      if u < rel.Device.transfer_corruption_rate then
        Failed (Corrupted_transfer, ev)
      else Completed ev
    end
  end

let join _t events : event = deps_time events

let delay t ?(deps = []) ?(phase = "penalty") ?(label = "delay") dur : event =
  let start = deps_time deps in
  let finish = start +. dur in
  let binding = if start <= 0. then Started_free else Bound_by_deps in
  record t ~label ~phase ~resource:None ~start ~finish ~binding;
  finish

let time_of _t (e : event) = e
let makespan t = t.makespan

let busy_time t resource =
  List.fold_left
    (fun acc r ->
      if r.resource = Some resource then acc +. (r.finish -. r.start) else acc)
    0. t.ops

let phase_time t phase =
  List.fold_left
    (fun acc r -> if r.phase = phase then acc +. (r.finish -. r.start) else acc)
    0. t.ops

let phases t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let prev = Option.value (Hashtbl.find_opt tbl r.phase) ~default:0. in
      Hashtbl.replace tbl r.phase (prev +. (r.finish -. r.start)))
    t.ops;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let op_count t = t.count
let records t = List.rev t.ops

let last_duration t =
  match t.ops with [] -> 0. | r :: _ -> r.finish -. r.start

let resource_name = function
  | Cpu -> "cpu"
  | Gpu -> "gpu"
  | Gpu_spare -> "gpu-spare"
  | Link_h2d -> "h2d"
  | Link_d2h -> "d2h"

let pp_resource fmt r = Format.pp_print_string fmt (resource_name r)

let failure_name = function
  | Transient_fault -> "transient-fault"
  | Hang _ -> "hang"
  | Corrupted_transfer -> "corrupted-transfer"
  | Device_lost -> "device-lost"

let pp_failure fmt = function
  | Hang { timeout_s } -> Format.fprintf fmt "hang (%.3fs timeout)" timeout_s
  | f -> Format.pp_print_string fmt (failure_name f)

let all_resources = [ Cpu; Gpu; Gpu_spare; Link_h2d; Link_d2h ]

let utilization t =
  let ms = t.makespan in
  List.map
    (fun r -> (r, if ms <= 0. then 0. else busy_time t r /. ms))
    all_resources

let binding_name = function
  | Bound_by_deps -> "deps"
  | Bound_by_resource -> "resource"
  | Bound_by_stream -> "stream"
  | Started_free -> "free"

let pp_binding fmt b = Format.pp_print_string fmt (binding_name b)

let binding_summary t =
  let count b =
    List.fold_left (fun acc r -> if r.binding = b then acc + 1 else acc) 0 t.ops
  in
  List.map
    (fun b -> (b, count b))
    [ Bound_by_deps; Bound_by_resource; Bound_by_stream; Started_free ]

let gantt ?(width = 100) ?(max_ops = 2000) t =
  (* Narrow terminals (or a caller passing 1) must degrade, not raise:
     below 10 columns the lanes and the 0..makespan axis cannot be
     drawn, so the width is clamped there. *)
  let width = max 10 width in
  let buf = Buffer.create 1024 in
  let ms = t.makespan in
  if ms <= 0. then Buffer.add_string buf "(empty timeline)\n"
  else begin
    let col time =
      min (width - 1) (int_of_float (time /. ms *. float_of_int width))
    in
    List.iter
      (fun res ->
        let ops = List.filter (fun r -> r.resource = Some res) (records t) in
        Buffer.add_string buf (Printf.sprintf "%-9s |" (resource_name res));
        if List.length ops > max_ops then
          Buffer.add_string buf
            (Printf.sprintf " %d ops, busy %.1f%% (too many to draw)"
               (List.length ops)
               (busy_time t res /. ms *. 100.))
        else begin
          let lane = Bytes.make width ' ' in
          List.iter
            (fun r ->
              let c0 = col r.start and c1 = col r.finish in
              let glyph =
                if String.length r.phase > 0 then
                  (* distinguish checksum phases from compute at a glance *)
                  if r.phase = "compute" then '#'
                  else if r.phase = "transfer" then '-'
                  else Char.lowercase_ascii r.phase.[String.length r.phase - 1]
                else '#'
              in
              for c = c0 to max c0 c1 do
                if c < width then Bytes.set lane c glyph
              done)
            ops;
          Buffer.add_string buf (Bytes.to_string lane)
        end;
        Buffer.add_char buf '\n')
      all_resources;
    Buffer.add_string buf
      (Printf.sprintf "%-9s 0%s%.4fs\n" "" (String.make (max 0 (width - 8)) ' ') ms)
  end;
  Buffer.contents buf

let to_chrome_trace t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  List.iter
    (fun r ->
      if not !first then Buffer.add_string buf ",";
      first := false;
      let tid = match r.resource with
        | None -> "virtual"
        | Some res -> resource_name res
      in
      Buffer.add_string buf
        (Printf.sprintf
           {|{"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":"%s"}|}
           (Obs.Json.escape r.label)
           (Obs.Json.escape r.phase)
           (r.start *. 1e6)
           ((r.finish -. r.start) *. 1e6)
           (Obs.Json.escape tid)))
    (records t);
  Buffer.add_string buf "]";
  Buffer.contents buf
