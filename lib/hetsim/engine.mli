(** Discrete-event execution engine with CUDA-stream semantics.

    A driver issues operations in program order; each returns an
    {!event}. Each operation names a {!resource}, an optional
    {!stream}, and a list of dependency events. The virtual start time
    of an operation is the maximum of: its dependencies' finish times,
    the previous finish time on its resource (resources execute one
    operation at a time, FIFO in issue order — GPU BLAS-3 kernels
    saturate the device, so this mirrors hardware), and the previous
    finish time on its stream (CUDA streams are in-order queues).

    Five resources model the heterogeneous node: the CPU, the GPU main
    execution engine, a GPU background/spare channel (carries
    Optimization-2 checksum updates at [spare_stream_fraction]
    throughput without blocking the main engine), and the two
    directions of the PCIe link. Concurrent BLAS-2 batches
    (Optimization 1) are a single engine operation whose duration comes
    from {!Cost_model.batch_duration}.

    Every operation is attributed to a [phase] string ("compute",
    "chk-recalc", …); {!phase_time} aggregates durations per phase so
    benches can decompose overhead exactly the way the paper's figures
    do. *)

type t

type resource = Cpu | Gpu | Gpu_spare | Link_h2d | Link_d2h

type event
(** A completion timestamp; totally ordered by time. *)

type stream
(** An in-order queue. Operations without an explicit stream serialize
    only through their resource and dependencies. *)

type failure =
  | Transient_fault
      (** the kernel ran to completion but produced garbage; full
          duration is charged *)
  | Hang of { timeout_s : float }
      (** the kernel never completed; the watchdog deadline
          [timeout_s] is charged before the failure is observed *)
  | Corrupted_transfer
      (** the copy took its normal time but the payload is wrong — an
          ABFT storage error for the verify path, not a retry case *)
  | Device_lost
      (** permanent dropout: observed instantly at the would-be start,
          and every later operation on the device fails the same way *)

type outcome = Completed of event | Failed of failure * event
(** Result of a failure-aware submission: either the completion event,
    or a structured failure plus the event marking when the failure was
    observed (retry decisions chain their timing off that event). *)

val create : ?seed:int -> Machine.t -> t
(** [create ?seed m] builds an engine over machine [m]. [seed]
    (default 0) drives the failure draws of the [_result] submission
    paths; engines over machines whose devices are all
    {!Device.reliable} never consume randomness, so the seed is then
    irrelevant. *)

val machine : t -> Machine.t

val ready : event
(** The event that is complete at time 0; useful as an initial
    dependency. *)

val new_stream : t -> stream

(** {1 Issuing operations} *)

val submit :
  t ->
  ?stream:stream ->
  ?deps:event list ->
  ?phase:string ->
  resource ->
  Kernel.t ->
  event
(** [submit t ~stream ~deps ~phase r k] schedules kernel [k] on
    resource [r]. Default phase is ["compute"].
    @raise Invalid_argument if a [Memcpy] is submitted to a non-link
    resource, a non-[Memcpy] to a link, or a GPU-shaped kernel to the
    CPU of a machine that has none. *)

val submit_batch :
  t ->
  ?deps:event list ->
  ?phase:string ->
  streams:int ->
  Kernel.t list ->
  event
(** [submit_batch t ~streams ks] schedules a concurrent BLAS-2 batch on
    the GPU main engine (Optimization 1). The batch occupies the engine
    for {!Cost_model.batch_duration}. An empty batch completes
    immediately at its dependencies' ready time. *)

val submit_background : t -> ?deps:event list -> ?phase:string -> Kernel.t -> event
(** Schedule on the GPU spare channel at
    {!Cost_model.background_duration} (Optimization 2, GPU placement). *)

val transfer :
  t ->
  ?deps:event list ->
  ?phase:string ->
  ?label:string ->
  dir:[ `H2d | `D2h ] ->
  int ->
  event
(** [transfer t ~dir bytes] schedules a PCIe copy. [label] overrides
    the default ["h2d <bytes>B"]-style record label — drivers use it to
    tag which logical payload (e.g. which LC panel row) a copy carries,
    so tests can enumerate shipped data sets from {!records}. Labels
    never affect timing. *)

(** {1 Failure-aware submission}

    The [_result] variants behave exactly like their plain counterparts
    on reliable devices (same timings, same records, zero RNG draws)
    but consult the device's {!Device.reliability} profile and may
    complete with a structured {!failure}. Drivers that want failures
    surfaced must use these; the plain paths above always succeed. *)

val submit_result :
  t ->
  ?stream:stream ->
  ?deps:event list ->
  ?phase:string ->
  resource ->
  Kernel.t ->
  outcome
(** Failure-aware {!submit}. Exactly two RNG draws are consumed per
    attempt on a non-reliable device (hang, then transient), so the
    outcome sequence is a deterministic function of the engine seed and
    the call sequence. *)

val submit_batch_result :
  t -> ?deps:event list -> ?phase:string -> streams:int -> Kernel.t list -> outcome
(** Failure-aware {!submit_batch}; the batch faults as a single
    operation (one draw pair for the whole batch). *)

val transfer_result :
  t ->
  ?deps:event list ->
  ?phase:string ->
  ?label:string ->
  dir:[ `H2d | `D2h ] ->
  int ->
  outcome
(** Failure-aware {!transfer}. Corruption probability comes from the
    GPU endpoint's [transfer_corruption_rate]; a corrupted transfer is
    charged its full normal duration ([Failed (Corrupted_transfer, e)]
    carries the copy's completion event). *)

val device_lost : t -> resource -> bool
(** Whether the device backing a resource has permanently dropped out
    (links never drop; GPU and its spare channel share fate). *)

val failure_name : failure -> string
val pp_failure : Format.formatter -> failure -> unit

val join : t -> event list -> event
(** An event complete when all of the given events are (no resource,
    no duration). [join t []] is {!ready}. *)

val delay : t -> ?deps:event list -> ?phase:string -> ?label:string -> float -> event
(** A pure time cost attached to no resource — used for modelled
    penalties such as a recovery restart. [label] (default ["delay"])
    names the operation in the timeline and exported traces. *)

(** {1 Interrogation} *)

val time_of : t -> event -> float
val makespan : t -> float
(** Latest finish time over all operations issued so far. *)

val busy_time : t -> resource -> float
(** Total occupied time of a resource. *)

val phase_time : t -> string -> float
(** Summed durations of all operations attributed to a phase. *)

val phases : t -> (string * float) list
(** All phases with their summed durations, largest first. *)

val op_count : t -> int

val last_duration : t -> float
(** Duration (seconds) of the most recently issued operation, 0 before
    any operation. The load balancer samples this right after a
    failure-aware submission to learn what an attempt actually charged
    (full kernel time for a transient fault, the watchdog deadline for
    a hang, zero for an instant dropout). *)

type binding =
  | Bound_by_deps  (** waited on its dependencies *)
  | Bound_by_resource  (** waited for the resource to free up *)
  | Bound_by_stream  (** waited for stream order *)
  | Started_free  (** started at time 0: nothing delayed it *)

type record = {
  label : string;
  phase : string;
  resource : resource option;  (** [None] for joins/delays *)
  start : float;
  finish : float;
  binding : binding;
      (** which constraint determined the start time (ties resolve to
          [Bound_by_resource], then [Bound_by_deps]) — the raw material
          of bottleneck analysis *)
}

val records : t -> record list
(** All operations in issue order. *)

val to_chrome_trace : t -> string
(** Serialize the timeline as a Chrome [chrome://tracing] /
    Perfetto-compatible JSON array. Labels and phases are JSON-escaped,
    so any operation label round-trips exactly. *)

(** {1 Analysis} *)

val utilization : t -> (resource * float) list
(** Busy fraction of each resource over the makespan (0 when nothing
    ran). *)

val binding_summary : t -> (binding * int) list
(** How many operations were bound by each constraint class — e.g. a
    schedule whose GPU ops are mostly [Bound_by_resource] is
    GPU-throughput-limited, while [Bound_by_deps] dominance points at
    serialization on the dependency graph. *)

val gantt : ?width:int -> ?max_ops:int -> t -> string
(** An ASCII Gantt chart: one lane per resource, time left to right
    over [width] columns (default 100, clamped to at least 10 so
    degenerate widths degrade instead of raising), each operation
    drawn as a span of its phase's initial. Intended for eyeballing
    small schedules in a terminal; lanes with more than [max_ops]
    (default 2000) operations are summarized instead of drawn. *)

val pp_binding : Format.formatter -> binding -> unit

val resource_name : resource -> string
val pp_resource : Format.formatter -> resource -> unit
