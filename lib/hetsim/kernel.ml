type t =
  | Gemm of { m : int; n : int; k : int }
  | Syrk of { n : int; k : int }
  | Trsm of { order : int; nrhs : int }
  | Potf2 of { n : int }
  | Gemv of { m : int; n : int }
  | Checksum_recalc of { b : int; nchk : int }
  | Checksum_compare of { b : int; nchk : int }
  | Checksum_correct
  | Memcpy of { bytes : int }
  | Host_flops of float

type shape = Blas3 | Blas2 | Copy | Trivial

let shape = function
  | Gemm _ | Syrk _ | Trsm _ | Potf2 _ -> Blas3
  | Gemv _ | Checksum_recalc _ -> Blas2
  | Memcpy _ -> Copy
  | Checksum_compare _ | Checksum_correct | Host_flops _ -> Trivial

let flops = function
  | Gemm { m; n; k } -> 2. *. float m *. float n *. float k
  | Syrk { n; k } -> float n *. float (n + 1) *. float k
  | Trsm { order; nrhs } -> float order *. float order *. float nrhs
  | Potf2 { n } -> float n *. float n *. float n /. 3.
  | Gemv { m; n } -> 2. *. float m *. float n
  | Checksum_recalc { b; nchk } -> 2. *. float nchk *. float b *. float b
  | Checksum_compare { b; nchk } -> float nchk *. float b
  | Checksum_correct -> 4.
  | Memcpy _ -> 0.
  | Host_flops f -> f

let bytes = function
  | Gemm { m; n; k } -> 8 * ((m * k) + (k * n) + (m * n))
  | Syrk { n; k } -> 8 * ((n * k) + (n * n / 2))
  | Trsm { order; nrhs } -> 8 * ((order * order / 2) + (order * nrhs))
  | Potf2 { n } -> 8 * n * n
  | Gemv { m; n } -> 8 * ((m * n) + m + n)
  | Checksum_recalc { b; nchk } ->
      (* One fused pass over the tile computes all [nchk] weighted row
         sums (a (nchk x b) x (b x b) product reads the tile once), so
         traffic is the tile plus the small checksum vectors. *)
      (8 * b * b) + (8 * 2 * nchk * b)
  | Checksum_compare { b; nchk } -> 8 * 2 * nchk * b
  | Checksum_correct -> 32
  | Memcpy { bytes } -> bytes
  | Host_flops _ -> 0

let inner_dim = function
  | Gemm { k; _ } | Syrk { k; _ } -> max k 1
  | Trsm { order; _ } | Potf2 { n = order } -> order
  | Gemv _ | Checksum_recalc _ | Checksum_compare _ | Checksum_correct
  | Memcpy _ | Host_flops _ ->
      1

let label = function
  | Gemm { m; n; k } -> Printf.sprintf "gemm %dx%dx%d" m n k
  | Syrk { n; k } -> Printf.sprintf "syrk %d k=%d" n k
  | Trsm { order; nrhs } -> Printf.sprintf "trsm %d nrhs=%d" order nrhs
  | Potf2 { n } -> Printf.sprintf "potf2 %d" n
  | Gemv { m; n } -> Printf.sprintf "gemv %dx%d" m n
  | Checksum_recalc { b; nchk } -> Printf.sprintf "chk-recalc b=%d d=%d" b nchk
  | Checksum_compare { b; nchk } -> Printf.sprintf "chk-compare b=%d d=%d" b nchk
  | Checksum_correct -> "chk-correct"
  | Memcpy { bytes } -> Printf.sprintf "memcpy %dB" bytes
  | Host_flops f -> Printf.sprintf "host %.0f flops" f

let pp fmt k = Format.pp_print_string fmt (label k)
