(** Kernel descriptors: the unit of simulated work.

    Every operation the Cholesky drivers issue — compute kernels,
    checksum maintenance, memory copies — is described by one of these
    constructors, from which {!Cost_model} derives a duration on a
    given device. Flop counts follow the standard dense-LA conventions
    (and the paper's Section VI accounting). *)

type t =
  | Gemm of { m : int; n : int; k : int }
      (** C(m×n) += A(m×k) · B(k×n): [2mnk] flops *)
  | Syrk of { n : int; k : int }
      (** C(n×n, one triangle) += A(n×k) · Aᵀ: [n(n+1)k] flops *)
  | Trsm of { order : int; nrhs : int }
      (** triangular solve of order [order] against [nrhs] right-hand
          sides: [order² · nrhs] flops *)
  | Potf2 of { n : int }
      (** unblocked Cholesky of an n×n block: [n³/3] flops *)
  | Gemv of { m : int; n : int }
      (** y += A(m×n) · x: [2mn] flops, bandwidth-bound *)
  | Checksum_recalc of { b : int; nchk : int }
      (** recompute [nchk] weighted column sums of a B×B block:
          [2·nchk·b²] flops in one fused bandwidth-bound pass over the
          tile *)
  | Checksum_compare of { b : int; nchk : int }
      (** subtract stored from recomputed checksums and scan for an
          element above threshold: O(nchk·b), bandwidth-trivial *)
  | Checksum_correct
      (** patch one located element: O(1) *)
  | Memcpy of { bytes : int }
      (** host↔device copy; costed by the link, not a device *)
  | Host_flops of float
      (** generic CPU-side work given directly in flops *)

type shape = Blas3 | Blas2 | Copy | Trivial
(** Cost-model class of a kernel. *)

val shape : t -> shape

val flops : t -> float
(** Floating-point operation count. [Memcpy] has 0. *)

val bytes : t -> int
(** Bytes of memory traffic the kernel generates (used for the
    bandwidth bound of [Blas2] kernels and for [Memcpy] sizing). *)

val inner_dim : t -> int
(** The dimension that governs BLAS-3 pipeline efficiency (the [k] of
    GEMM/SYRK, the order of TRSM/POTF2); 1 for non-BLAS-3 kernels. *)

val label : t -> string
(** Short name for traces, e.g. ["gemm 512x512x1024"]. *)

val pp : Format.formatter -> t -> unit
