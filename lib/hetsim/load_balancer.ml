type mode = Static | Adaptive

type config = {
  mode : mode;
  update_interval : int;
  ewma_alpha : float;
  hysteresis : float;
  probe_share : float;
  min_gpu_share : float;
  max_gpu_share : float;
}

let default_config =
  {
    mode = Adaptive;
    update_interval = 4;
    ewma_alpha = 0.25;
    hysteresis = 0.05;
    probe_share = 1.0;
    min_gpu_share = 0.;
    max_gpu_share = 1.;
  }

let static_config = { default_config with mode = Static }

type t = {
  cfg : config;
  machine : Machine.t;
  mutable e_cpu : float;  (* observed efficiency, EWMA over tick windows *)
  mutable e_gpu : float;
  mutable a_cpu : float;  (* applied efficiency, lags by hysteresis *)
  mutable a_gpu : float;
  (* per-device useful/wasted seconds accumulated since the last tick.
     Folding a whole window into one EWMA sample weights the estimate
     by *time*, not by kernel count: a storm of tiny checksum kernels,
     each losing a fixed backoff, would otherwise drown out the big
     trailing GEMMs whose throughput is what the split is actually
     balancing. *)
  mutable pend_useful_cpu : float;
  mutable pend_wasted_cpu : float;
  mutable pend_useful_gpu : float;
  mutable pend_wasted_gpu : float;
  mutable gpu_ok : bool;
  mutable iter : int;
  mutable forced : bool;
  mutable resplits : int;
}

let validate_config c =
  let frac name v =
    if v < 0. || v > 1. || Float.is_nan v then
      invalid_arg (Printf.sprintf "Load_balancer: %s out of [0,1]" name)
  in
  if c.update_interval < 1 then
    invalid_arg "Load_balancer: update_interval must be >= 1";
  if c.ewma_alpha <= 0. || c.ewma_alpha > 1. then
    invalid_arg "Load_balancer: ewma_alpha out of (0,1]";
  frac "hysteresis" c.hysteresis;
  frac "probe_share" c.probe_share;
  frac "min_gpu_share" c.min_gpu_share;
  frac "max_gpu_share" c.max_gpu_share;
  if c.min_gpu_share > c.max_gpu_share then
    invalid_arg "Load_balancer: min_gpu_share > max_gpu_share"

let create ?(config = default_config) machine =
  validate_config config;
  {
    cfg = config;
    machine;
    e_cpu = 1.0;
    e_gpu = 1.0;
    a_cpu = 1.0;
    a_gpu = 1.0;
    pend_useful_cpu = 0.;
    pend_wasted_cpu = 0.;
    pend_useful_gpu = 0.;
    pend_wasted_gpu = 0.;
    gpu_ok = true;
    iter = 0;
    forced = false;
    resplits = 0;
  }

let config t = t.cfg

let observe t resource ~useful_s ~wasted_s =
  match t.cfg.mode with
  | Static -> ()
  | Adaptive -> (
      match resource with
      | Engine.Cpu ->
          t.pend_useful_cpu <- t.pend_useful_cpu +. useful_s;
          t.pend_wasted_cpu <- t.pend_wasted_cpu +. wasted_s
      | Engine.Gpu | Engine.Gpu_spare ->
          t.pend_useful_gpu <- t.pend_useful_gpu +. useful_s;
          t.pend_wasted_gpu <- t.pend_wasted_gpu +. wasted_s
      | Engine.Link_h2d | Engine.Link_d2h -> ())

(* Fold the pending window into the EWMA (once per tick). A window with
   no wasted time yields the exact sample 1.0, so a clean run keeps the
   estimates at their 1.0 fixpoint bit-for-bit. *)
let drain_window t =
  let blend old sample =
    ((1. -. t.cfg.ewma_alpha) *. old) +. (t.cfg.ewma_alpha *. sample)
  in
  let cpu_total = t.pend_useful_cpu +. t.pend_wasted_cpu in
  if cpu_total > 0. then
    t.e_cpu <- blend t.e_cpu (t.pend_useful_cpu /. cpu_total);
  let gpu_total = t.pend_useful_gpu +. t.pend_wasted_gpu in
  if gpu_total > 0. then
    t.e_gpu <- blend t.e_gpu (t.pend_useful_gpu /. gpu_total);
  t.pend_useful_cpu <- 0.;
  t.pend_wasted_cpu <- 0.;
  t.pend_useful_gpu <- 0.;
  t.pend_wasted_gpu <- 0.

let gpu_down t =
  match t.cfg.mode with
  | Static -> ()
  | Adaptive ->
      t.gpu_ok <- false;
      t.a_gpu <- 0.;
      t.forced <- true

let gpu_up t =
  match t.cfg.mode with
  | Static -> ()
  | Adaptive ->
      t.gpu_ok <- true;
      t.e_gpu <- t.cfg.probe_share;
      t.a_gpu <- t.cfg.probe_share;
      (* samples from before the quarantine describe the sick device,
         not the one that just passed its probes — start fresh *)
      t.pend_useful_gpu <- 0.;
      t.pend_wasted_gpu <- 0.;
      t.forced <- true

let gpu_available t = t.gpu_ok

type split = { gpu_rows : int; cpu_rows : int; share : float; resplit : bool }

let clamp lo hi v = Float.min hi (Float.max lo v)

let applied_share t kernel =
  let s0 = Cost_model.gpu_share t.machine kernel in
  (* damped response: weight by sqrt of the applied efficiency rather
     than the efficiency itself. The clean-rate share s0 ignores the
     CPU's serial duties outside the split (POTF2, host-side checksum
     work), so following the raw efficiency ratio overshoots toward an
     already-busy CPU; half-strength shifts recover most of the win on
     a misbehaving GPU without starving it. sqrt leaves the 0 and 1
     fixpoints exactly in place, so clean runs and a downed GPU are
     unaffected. *)
  let wg = s0 *. Float.sqrt t.a_gpu
  and wc = (1. -. s0) *. Float.sqrt t.a_cpu in
  let s = if wg +. wc <= 0. then 0. else wg /. (wg +. wc) in
  if not t.gpu_ok then 0.
  else clamp t.cfg.min_gpu_share t.cfg.max_gpu_share s

let tick t ~kernel ~rows =
  (match t.cfg.mode with Static -> () | Adaptive -> drain_window t);
  let due =
    match t.cfg.mode with
    | Static -> false
    | Adaptive ->
        t.forced
        || t.iter mod t.cfg.update_interval = 0
           && (Float.abs (t.e_cpu -. t.a_cpu) > t.cfg.hysteresis
              || Float.abs (t.e_gpu -. t.a_gpu) > t.cfg.hysteresis)
  in
  t.iter <- t.iter + 1;
  let resplit =
    due
    && begin
         (* a forced event (quarantine, rejoin) already moved the
            applied GPU efficiency outside this function, so it always
            counts as a change even if the EWMA happens to agree *)
         let changed =
           t.forced || t.a_cpu <> t.e_cpu || (t.gpu_ok && t.a_gpu <> t.e_gpu)
         in
         t.a_cpu <- t.e_cpu;
         if t.gpu_ok then t.a_gpu <- t.e_gpu;
         t.forced <- false;
         changed
       end
  in
  if resplit then t.resplits <- t.resplits + 1;
  let share = applied_share t kernel in
  let rows = max rows 0 in
  let gpu_rows =
    min rows (max 0 (int_of_float (Float.round (share *. float_of_int rows))))
  in
  { gpu_rows; cpu_rows = rows - gpu_rows; share; resplit }

let resplits t = t.resplits
let efficiencies t = ((t.e_cpu, t.e_gpu), (t.a_cpu, t.a_gpu))
let mode_name = function Static -> "static" | Adaptive -> "adaptive"

let pp fmt t =
  Format.fprintf fmt
    "%s balancer: eff obs cpu=%.3f gpu=%.3f applied cpu=%.3f gpu=%.3f \
     gpu_ok=%b resplits=%d"
    (mode_name t.cfg.mode) t.e_cpu t.e_gpu t.a_cpu t.a_gpu t.gpu_ok t.resplits
