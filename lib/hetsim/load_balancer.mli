(** Adaptive CPU/GPU split for row-splittable trailing-update kernels.

    The MAGMA-style schedules seed the CPU/GPU proportions from the
    cost model ({!Cost_model.gpu_share}) and, without this module,
    never revisit them — after a quarantine or dropout the schedule
    keeps the original proportions and limps (ROADMAP open item 3).
    Following the heterogeneous-solvers idiom
    ([LoadBalancer::getNewProportionGPU]), this balancer tracks each
    device's *observed efficiency*: completed attempts accumulate
    useful and wasted seconds (wasted is what retries, hang timeouts
    and backoffs charged), each {!tick} folds the window's
    [useful / (useful + wasted)] into an EWMA — one time-weighted
    sample per tick, so a swarm of tiny checksum kernels cannot
    outvote the big trailing GEMMs — and the trailing update is
    re-split every [update_interval] iterations when the observation
    has drifted beyond a hysteresis band from the applied value.

    Determinism: the balancer consumes no randomness; its trajectory is
    a pure function of the observation sequence, which is itself a
    deterministic function of the engine seed. On a clean run every
    sample is exactly [1.0], the EWMA fixpoint keeps both efficiencies
    at their initial [1.0] bit-exactly, the hysteresis band never
    trips, and [Adaptive] produces the same splits as [Static] —
    bitwise. *)

type mode =
  | Static
      (** split once from the cost model, never move — the baseline the
          bench and ftsoak legs compare against *)
  | Adaptive  (** EWMA-driven re-splitting as described above *)

type config = {
  mode : mode;
  update_interval : int;
      (** outer iterations between applied re-splits (>= 1); forced
          events (quarantine, rejoin, dropout) bypass the interval *)
  ewma_alpha : float;
      (** smoothing weight of the newest efficiency sample, in (0,1] *)
  hysteresis : float;
      (** minimum |observed - applied| efficiency drift before a
          re-split is applied; keeps a near-clean run pinned to the
          static split *)
  probe_share : float;
      (** efficiency estimate granted to a GPU re-admitted after
          quarantine. The default [1.0] is an optimistic reset — the
          device just passed its probes, so it restarts at the static
          split and the EWMA re-learns any residual sickness; lower it
          to make rejoined GPUs earn their slice back gradually *)
  min_gpu_share : float;  (** clamp on the applied GPU share *)
  max_gpu_share : float;  (** clamp on the applied GPU share *)
}

val default_config : config
(** [Adaptive], interval 4, alpha 0.25, hysteresis 0.05, probe share
    1.0, shares clamped to [0, 1]. *)

val static_config : config
(** [default_config] with [mode = Static]. *)

type t

val create : ?config:config -> Machine.t -> t
(** Both efficiencies start at exactly [1.0] (the cost model's own
    assumption), so the first split is the static one.
    @raise Invalid_argument on out-of-range config fields. *)

val config : t -> config

val observe :
  t -> Engine.resource -> useful_s:float -> wasted_s:float -> unit
(** Feed one completed (or abandoned) operation's accounting into the
    pending window for the device backing the resource. [useful_s] is
    the time the successful attempt took (0 when the operation was
    abandoned to the other device); [wasted_s] is everything charged
    on top — failed-attempt durations, hang timeouts, backoffs. The
    window is folded into the EWMA at the next {!tick}; windows with
    no accumulated time and link resources are ignored. No-op in
    [Static] mode. *)

val gpu_down : t -> unit
(** The GPU was quarantined or lost: drop its applied efficiency to 0
    immediately and force a re-split on the next {!tick}, bypassing
    both the update interval and the hysteresis band. *)

val gpu_up : t -> unit
(** The GPU passed its half-open re-probe and rejoined: restart both
    its observed and applied efficiency at [probe_share] and force a
    re-split on the next {!tick}. *)

val gpu_available : t -> bool
(** False between {!gpu_down} and {!gpu_up}. *)

type split = {
  gpu_rows : int;  (** block-rows assigned to the GPU *)
  cpu_rows : int;  (** block-rows assigned to the CPU *)
  share : float;  (** applied GPU share the rows were cut from *)
  resplit : bool;
      (** true iff this tick changed the applied efficiencies — the
          event the trace op, Obs counter and ftsoak assertion count *)
}

val tick : t -> kernel:Kernel.t -> rows:int -> split
(** [tick t ~kernel ~rows] is called once per outer iteration with the
    iteration's dominant trailing-update kernel and the number of
    block-rows to distribute. It advances the iteration counter,
    folds the pending observation window into the EWMA, applies the
    observed efficiencies when due (interval elapsed and drift beyond
    hysteresis, or a forced event pending), and cuts [rows] by the
    applied share:
    [share = (s0 * sqrt a_gpu) / (s0 * sqrt a_gpu + (1 - s0) * sqrt a_cpu)]
    with [s0 = Cost_model.gpu_share], clamped to the configured
    bounds. The square root damps the response to half strength: [s0]
    ignores the CPU's serial duties outside the split (POTF2,
    host-side checksum work), so following the raw efficiency ratio
    overshoots toward an already-busy CPU. The 0 and 1 fixpoints are
    unaffected, so clean runs still reproduce the static split
    exactly.
    [rows = 0] is legal (degenerate last iterations) and returns an
    empty split. *)

val resplits : t -> int
(** Number of ticks that applied a changed split so far. *)

val efficiencies : t -> (float * float) * (float * float)
(** [((observed_cpu, observed_gpu), (applied_cpu, applied_gpu))] —
    exposed for tests and {!pp}. *)

val mode_name : mode -> string
val pp : Format.formatter -> t -> unit
