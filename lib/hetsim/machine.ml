type link = { bandwidth_gbs : float; latency_s : float }

type t = {
  name : string;
  cpu : Device.t;
  gpu : Device.t;
  link : link;
  default_block : int;
  measured_update_placement : [ `Cpu | `Gpu ] option;
}

let opteron_6272 ~sockets =
  {
    Device.name = Printf.sprintf "%dx Opteron 6272" sockets;
    kind = Device.Cpu;
    (* 8 Bulldozer modules/socket x 8 DP flops/cycle x 2.1 GHz. *)
    peak_gflops = float_of_int sockets *. 134.4;
    gemm_efficiency = 0.60;
    gemm_half_k = 32.;
    mem_bandwidth_gbs = 25. *. float_of_int sockets;
    blas2_single_util = 0.8;
    max_concurrent_kernels = 1;
    concurrency_effectiveness = 0.;
    kernel_launch_overhead_s = 1e-6;
    spare_stream_fraction = 1.0;
    (* the CPU is idle most of the MAGMA run *)
    mem_bytes = 64 * 1024 * 1024 * 1024;
    reliability = Device.reliable;
  }

let tesla_m2075 =
  {
    Device.name = "Tesla M2075 (Fermi)";
    kind = Device.Gpu;
    peak_gflops = 515.;
    gemm_efficiency = 0.55;
    gemm_half_k = 64.;
    mem_bandwidth_gbs = 150.;
    blas2_single_util = 0.65;
    max_concurrent_kernels = 16;
    concurrency_effectiveness = 0.025;
    kernel_launch_overhead_s = 3e-6;
    spare_stream_fraction = 0.10;
    mem_bytes = 6 * 1024 * 1024 * 1024;
    reliability = Device.reliable;
  }

let tesla_k40c =
  {
    Device.name = "Tesla K40c (Kepler)";
    kind = Device.Gpu;
    peak_gflops = 1430.;
    gemm_efficiency = 0.79;
    gemm_half_k = 64.;
    mem_bandwidth_gbs = 288.;
    blas2_single_util = 0.30;
    max_concurrent_kernels = 32;
    concurrency_effectiveness = 0.09;
    kernel_launch_overhead_s = 5e-6;
    spare_stream_fraction = 0.30;
    mem_bytes = 12 * 1024 * 1024 * 1024;
    reliability = Device.reliable;
  }

let tardis =
  {
    name = "tardis";
    cpu = opteron_6272 ~sockets:2;
    gpu = tesla_m2075;
    link = { bandwidth_gbs = 6.; latency_s = 10e-6 };
    default_block = 256;
    measured_update_placement = Some `Cpu;
  }

let bulldozer64 =
  {
    name = "bulldozer64";
    cpu = opteron_6272 ~sockets:4;
    gpu = tesla_k40c;
    link = { bandwidth_gbs = 10.; latency_s = 8e-6 };
    default_block = 512;
    measured_update_placement = Some `Gpu;
  }

let testbench =
  {
    name = "testbench";
    cpu =
      {
        Device.name = "test CPU";
        kind = Device.Cpu;
        peak_gflops = 100.;
        gemm_efficiency = 1.0;
        gemm_half_k = 0.;
        mem_bandwidth_gbs = 100.;
        blas2_single_util = 1.0;
        max_concurrent_kernels = 1;
        concurrency_effectiveness = 0.;
        kernel_launch_overhead_s = 0.;
        spare_stream_fraction = 1.0;
        mem_bytes = 1 lsl 34;
        reliability = Device.reliable;
      };
    gpu =
      {
        Device.name = "test GPU";
        kind = Device.Gpu;
        peak_gflops = 1000.;
        gemm_efficiency = 1.0;
        gemm_half_k = 0.;
        mem_bandwidth_gbs = 100.;
        blas2_single_util = 0.25;
        max_concurrent_kernels = 8;
        concurrency_effectiveness = 1.0;
        kernel_launch_overhead_s = 0.;
        spare_stream_fraction = 0.5;
        mem_bytes = 1 lsl 34;
        reliability = Device.reliable;
      };
    link = { bandwidth_gbs = 10.; latency_s = 0. };
    default_block = 64;
    measured_update_placement = None;
  }

(* A modern reference point, far beyond the paper's testbeds: an
   NVIDIA A100-class device (9.7 DP TFLOPS, 1.5 TB/s HBM2e, huge
   concurrent-kernel capacity) behind PCIe 4.0, paired with a
   32-core EPYC-class host. Used by the hardware-sensitivity
   experiment to ask how the paper's overheads would look today. *)
let epyc_7543 =
  {
    Device.name = "32-core EPYC 7543";
    kind = Device.Cpu;
    peak_gflops = 1433.6;
    gemm_efficiency = 0.85;
    gemm_half_k = 32.;
    mem_bandwidth_gbs = 200.;
    blas2_single_util = 0.8;
    max_concurrent_kernels = 1;
    concurrency_effectiveness = 0.;
    kernel_launch_overhead_s = 1e-6;
    spare_stream_fraction = 1.0;
    mem_bytes = 256 * 1024 * 1024 * 1024;
    reliability = Device.reliable;
  }

let a100_like =
  {
    Device.name = "A100-class (Ampere)";
    kind = Device.Gpu;
    peak_gflops = 9700.;
    gemm_efficiency = 0.90;
    gemm_half_k = 128.;
    mem_bandwidth_gbs = 1555.;
    blas2_single_util = 0.20;
    max_concurrent_kernels = 128;
    concurrency_effectiveness = 0.25;
    kernel_launch_overhead_s = 3e-6;
    spare_stream_fraction = 0.50;
    mem_bytes = 40 * 1024 * 1024 * 1024;
    reliability = Device.reliable;
  }

let modern =
  {
    name = "modern";
    cpu = epyc_7543;
    gpu = a100_like;
    link = { bandwidth_gbs = 25.; latency_s = 5e-6 };
    default_block = 512;
    measured_update_placement = Some `Gpu;
  }

let with_reliability ?cpu ?gpu m =
  let set dev profile =
    match profile with
    | None -> dev
    | Some reliability -> { dev with Device.reliability }
  in
  { m with cpu = set m.cpu cpu; gpu = set m.gpu gpu }

let transfer_time m ~bytes =
  m.link.latency_s +. (float_of_int bytes /. (m.link.bandwidth_gbs *. 1e9))

let all_presets =
  [
    ("tardis", tardis);
    ("bulldozer64", bulldozer64);
    ("modern", modern);
    ("testbench", testbench);
  ]

let find name =
  List.assoc_opt (String.lowercase_ascii name) all_presets

let pp fmt m =
  Format.fprintf fmt "@[<v>machine %s:@,  cpu: %a@,  gpu: %a@,  link: %.1f GB/s, %.1f us@,  block: %d@]"
    m.name Device.pp m.cpu Device.pp m.gpu m.link.bandwidth_gbs
    (m.link.latency_s *. 1e6) m.default_block
