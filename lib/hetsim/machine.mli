(** Whole-machine descriptors: one CPU, one GPU, a PCIe-like link.

    Two presets mirror the paper's testbeds:

    - {!tardis}: 2× 16-core AMD Opteron 6272 @ 2.1 GHz + NVIDIA Tesla
      M2075 (Fermi, 6 GB, 515 DP GFLOPS, 150 GB/s, weak concurrent
      kernel execution, PCIe 2.0). MAGMA block size 256.
    - {!bulldozer64}: 4× 16-core Opteron 6272 + Tesla K40c (Kepler,
      12 GB, 1430 DP GFLOPS, 288 GB/s, Hyper-Q, PCIe 3.0). MAGMA block
      size 512.

    The numbers are public spec-sheet values; the efficiency and
    concurrency fractions are calibrated so the simulated plain-MAGMA
    Cholesky matches the paper's reported absolute times (§VII) within
    a few percent, see EXPERIMENTS.md. *)

type link = {
  bandwidth_gbs : float;  (** sustained host↔device copy bandwidth *)
  latency_s : float;  (** per-transfer fixed cost *)
}

type t = {
  name : string;
  cpu : Device.t;
  gpu : Device.t;
  link : link;
  default_block : int;  (** MAGMA's block size for this GPU *)
  measured_update_placement : [ `Cpu | `Gpu ] option;
      (** Where checksum updating ran fastest on this system, as
          determined empirically — the paper's §VII-D reports CPU on
          TARDIS and GPU on BULLDOZER64 ("determined by our testing
          system"). The analytic §V-B model alone cannot separate the
          two (both options cost well under 1% of the run on either
          testbed), so presets carry the measured answer and
          [Abft.Placement.decide] falls back to the model when this is
          [None] (custom machines). *)
}

val tardis : t
val bulldozer64 : t

val modern : t
(** A machine a decade past the paper: A100-class GPU (9.7 DP TFLOPS,
    1.55 TB/s, 128-deep concurrent kernels) + 32-core EPYC host +
    PCIe 4.0, block 512. For asking how the paper's trade-offs age —
    compute grew ~7x over the K40c while PCIe grew ~2.5x, so the CPU
    placement ages badly while bandwidth-bound verification ages well. *)

val testbench : t
(** A small, fast, deliberately round-numbered machine for unit tests
    (1 TFLOP GPU at efficiency 1.0, 100 GFLOPS CPU, 10 GB/s link, zero
    launch overhead) so expected durations can be computed by hand. *)

val with_reliability :
  ?cpu:Device.reliability -> ?gpu:Device.reliability -> t -> t
(** [with_reliability ?cpu ?gpu m] is [m] with the given reliability
    profiles installed on its devices (omitted devices keep theirs).
    Presets all ship with {!Device.reliable} devices. *)

val transfer_time : t -> bytes:int -> float
(** [transfer_time m ~bytes] is the link time for one transfer:
    [latency + bytes / bandwidth]. *)

val all_presets : (string * t) list
(** Name → machine, for CLI lookup. *)

val find : string -> t option
(** Case-insensitive preset lookup. *)

val pp : Format.formatter -> t -> unit
