(* Shared cmdliner plumbing for binaries that pick a machine preset and
   optionally storm its devices. ftchol and ftsoak used to each carry a
   private copy of the converter (and they had begun to drift on the
   error message); this module is the single home, plus the
   --device-faults / --device-seed pair that scales a canonical
   unreliable-GPU profile onto whatever preset was chosen. *)

open Cmdliner

let machine_conv =
  let parse s =
    match Hetsim.Machine.find s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown machine %S (try: %s)" s
               (String.concat ", " (List.map fst Hetsim.Machine.all_presets))))
  in
  Arg.conv
    (parse, fun fmt m -> Format.pp_print_string fmt m.Hetsim.Machine.name)

let default_doc = "Machine preset: tardis, bulldozer64 or testbench."

let machine_arg ?(default = Hetsim.Machine.testbench) ?(doc = default_doc) () =
  Arg.(
    value & opt machine_conv default
    & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)

let device_faults_arg =
  Arg.(
    value & opt float 0.
    & info [ "device-faults" ] ~docv:"RATE"
        ~doc:
          "Make the GPU unreliable: scale a canonical storm profile \
           (transient kernel faults, watchdog hangs, corrupted transfers) \
           by $(docv) in [0,1]. 0 (the default) keeps every device \
           perfectly reliable — and the simulation bit-identical to runs \
           without this flag.")

let device_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "device-seed" ] ~docv:"SEED"
        ~doc:
          "Seed for the device-failure draws and retry-backoff jitter \
           (only meaningful with $(b,--device-faults)).")

(* The canonical storm at rate 1.0: hot enough that a realistic schedule
   sees retries and the occasional quarantine, cold enough that the CPU
   fallback keeps every run completing. Rates scale linearly and are
   clamped to valid fractions. *)
let storm_reliability ~rate =
  if rate < 0. || rate > 1. then
    invalid_arg "Machine_cli.storm_reliability: rate must be in [0,1]";
  {
    Hetsim.Device.transient_fault_rate = 0.15 *. rate;
    hang_rate = 0.05 *. rate;
    hang_timeout_s = 0.05;
    transfer_corruption_rate = 0.10 *. rate;
    dropout_after_s = infinity;
    faults_until_s = infinity;
  }

let apply_device_faults ~rate m =
  if rate <= 0. then m
  else Hetsim.Machine.with_reliability ~gpu:(storm_reliability ~rate) m

let balance_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "off" -> Ok None
    | "static" -> Ok (Some Hetsim.Load_balancer.Static)
    | "adaptive" -> Ok (Some Hetsim.Load_balancer.Adaptive)
    | _ ->
        Error
          (`Msg
            (Printf.sprintf "unknown balance mode %S (off, static, adaptive)" s))
  in
  let print fmt = function
    | None -> Format.pp_print_string fmt "off"
    | Some m -> Format.pp_print_string fmt (Hetsim.Load_balancer.mode_name m)
  in
  Arg.conv (parse, print)

let balance_arg =
  Arg.(
    value & opt balance_conv None
    & info [ "balance" ] ~docv:"MODE"
        ~doc:
          "CPU/GPU split of the trailing update: $(b,off) (the default) \
           keeps the schedule's historical GPU-only trailing update and is \
           bit-identical to runs without this flag; $(b,static) splits once \
           from the cost model and never moves; $(b,adaptive) re-splits \
           from observed per-device efficiency (EWMA-smoothed, \
           hysteresis-banded) and shifts work away from a faulting or \
           quarantined GPU.")

let balance_interval_arg =
  Arg.(
    value
    & opt int Hetsim.Load_balancer.default_config.update_interval
    & info [ "balance-interval" ] ~docv:"ITERS"
        ~doc:
          "Outer iterations between applied re-splits in \
           $(b,--balance adaptive) (>= 1); quarantine, rejoin and dropout \
           force an immediate re-split regardless.")
