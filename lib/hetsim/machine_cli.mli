(** Shared cmdliner arguments for machine selection and device-fault
    injection — the single home of the converter that [ftchol] and
    [ftsoak] previously each re-implemented. *)

val machine_conv : Hetsim.Machine.t Cmdliner.Arg.conv
(** Parses a preset name via {!Hetsim.Machine.find}; the error message
    lists the available presets. *)

val machine_arg :
  ?default:Hetsim.Machine.t -> ?doc:string -> unit -> Hetsim.Machine.t Cmdliner.Term.t
(** [--machine]/[-m] (default {!Hetsim.Machine.testbench}). *)

val device_faults_arg : float Cmdliner.Term.t
(** [--device-faults RATE] (default 0): intensity in [0,1] of the
    canonical GPU storm profile applied by {!apply_device_faults}. *)

val device_seed_arg : int Cmdliner.Term.t
(** [--device-seed SEED] (default 0): seed for the engine's failure
    draws and the resilient driver's backoff jitter. *)

val storm_reliability : rate:float -> Hetsim.Device.reliability
(** The canonical storm profile scaled by [rate]: at 1.0, 15% transient
    kernel faults, 5% hangs (50 ms watchdog) and 10% corrupted
    transfers. @raise Invalid_argument if [rate] is outside [0,1]. *)

val apply_device_faults : rate:float -> Hetsim.Machine.t -> Hetsim.Machine.t
(** Identity at [rate <= 0]; otherwise installs
    [storm_reliability ~rate] on the machine's GPU. *)

val balance_conv : Hetsim.Load_balancer.mode option Cmdliner.Arg.conv
(** Parses [off] / [static] / [adaptive]; [off] maps to [None]. *)

val balance_arg : Hetsim.Load_balancer.mode option Cmdliner.Term.t
(** [--balance MODE] (default off = [None]): the trailing-update
    CPU/GPU split policy. *)

val balance_interval_arg : int Cmdliner.Term.t
(** [--balance-interval ITERS] (default
    {!Hetsim.Load_balancer.default_config}[.update_interval]): outer
    iterations between applied adaptive re-splits. *)
