(* Failure-aware scheduling layer over Engine.

   The driver mirrors the Engine submission API but routes every
   operation through the failure-aware [_result] paths and implements
   the recovery policy the engine itself deliberately does not have:

   - deadline-based hang detection (the engine charges the watchdog
     timeout; this layer decides what happens next),
   - seeded-deterministic retry with capped exponential backoff and
     jitter, realized as resource-free [Engine.delay] spans so backoff
     time is visible in the timeline under the "backoff" phase,
   - per-device health scoring with quarantine once the score drops
     below the policy threshold,
   - graceful degradation: once the GPU is quarantined or lost, all
     remaining GPU work is re-planned onto the CPU (the cost model
     prices it there) and host<->device transfers are skipped.

   Corrupted transfers are deliberately NOT retried: the copy looked
   successful, so a scheduling-level retry would mask the error the
   ABFT checksum layer exists to catch. They are counted and surfaced
   so the caller can account for them as storage errors. *)

type policy = {
  max_retries : int;
  base_backoff_s : float;
  backoff_factor : float;
  max_backoff_s : float;
  jitter : float;
  quarantine_threshold : float;
  fault_penalty : float;
  success_credit : float;
  reprobe_after_s : float;
  reprobe_successes : int;
}

let default_policy =
  {
    max_retries = 3;
    base_backoff_s = 1e-3;
    backoff_factor = 2.0;
    max_backoff_s = 0.1;
    jitter = 0.25;
    quarantine_threshold = 0.2;
    fault_penalty = 0.6;
    success_credit = 0.05;
    (* re-probing is opt-in: with an infinite cooldown a quarantine is
       final, which is the historical behaviour existing traces and
       tests pin down *)
    reprobe_after_s = infinity;
    reprobe_successes = 2;
  }

type device_stats = {
  submitted : int;
  completed : int;
  transient_faults : int;
  hangs : int;
  retries : int;
  backoff_s : float;
  quarantined_at : float option;
  lost_at : float option;
}

type stats = {
  cpu : device_stats;
  gpu : device_stats;
  corrupted_transfers : int;
  skipped_transfers : int;
  degraded_ops : int;
  degraded_at : float option;
  reprobes : int;
  rejoins : int;
  resplits : int;
}

exception
  Gave_up of {
    resource : Engine.resource;
    failure : Engine.failure;
    attempts : int;
    stats : stats;
  }

(* mutable per-device counters; [health] starts at 1.0, multiplies by
   [fault_penalty] per fault and gains [success_credit] (capped at 1.0)
   per completion *)
type dev = {
  mutable submitted : int;
  mutable completed : int;
  mutable transient_faults : int;
  mutable hangs : int;
  mutable retries : int;
  mutable backoff_s : float;
  mutable health : float;
  mutable quarantined_at : float option;
  mutable lost_at : float option;
  mutable quarantine_episodes : int;
  mutable probe_successes : int;
}

let fresh_dev () =
  {
    submitted = 0;
    completed = 0;
    transient_faults = 0;
    hangs = 0;
    retries = 0;
    backoff_s = 0.;
    health = 1.0;
    quarantined_at = None;
    lost_at = None;
    quarantine_episodes = 0;
    probe_successes = 0;
  }

type t = {
  engine : Engine.t;
  policy : policy;
  rng : Random.State.t;  (* jitter draws only; one per backoff *)
  cpu : dev;
  gpu : dev;  (* GPU main engine and spare channel share fate *)
  obs : Obs.t;  (* event counters; Obs.null unless the caller traces *)
  balancer : Load_balancer.t option;
      (* fed per-operation useful/wasted accounting and the
         quarantine/rejoin edges; None = static split, no feedback *)
  mutable corrupted_transfers : int;
  mutable skipped_transfers : int;
  mutable degraded_ops : int;
  mutable degraded_at : float option;
  mutable reprobes : int;
  mutable rejoins : int;
}

let create ?(policy = default_policy) ?balancer ?(seed = 0) ?(obs = Obs.null)
    engine =
  {
    engine;
    policy;
    rng = Random.State.make [| 0xbac0ff; seed |];
    cpu = fresh_dev ();
    gpu = fresh_dev ();
    obs;
    balancer;
    corrupted_transfers = 0;
    skipped_transfers = 0;
    degraded_ops = 0;
    degraded_at = None;
    reprobes = 0;
    rejoins = 0;
  }

let engine t = t.engine
let machine t = Engine.machine t.engine
let balancer t = t.balancer

let balancer_iter t f =
  match t.balancer with None -> () | Some b -> f b

let dev_of t = function
  | Engine.Cpu -> t.cpu
  | Engine.Gpu | Engine.Gpu_spare -> t.gpu
  | Engine.Link_h2d | Engine.Link_d2h ->
      invalid_arg "Resilient: links have no device health"

let unavailable d =
  Option.is_some d.quarantined_at || Option.is_some d.lost_at

let gpu_unavailable t = unavailable t.gpu
let degraded t = Option.is_some t.degraded_at

let mark_degraded t ~now =
  t.degraded_ops <- t.degraded_ops + 1;
  Obs.incr t.obs "resilient.cpu_fallbacks";
  if Option.is_none t.degraded_at then t.degraded_at <- Some now

let note_lost t d ev =
  if Option.is_none d.lost_at then begin
    d.lost_at <- Some ev;
    Obs.incr t.obs "resilient.device_losses";
    if d == t.gpu then balancer_iter t Load_balancer.gpu_down
  end

let quarantine t d ~now =
  if Option.is_none d.quarantined_at then begin
    d.quarantined_at <- Some now;
    d.quarantine_episodes <- d.quarantine_episodes + 1;
    d.probe_successes <- 0;
    Obs.incr t.obs "resilient.quarantines"
    (* deliberately NOT [Load_balancer.gpu_down]: quarantine is
       transient and the reroute already moves the work, so the split
       must keep nominating GPU rows — those rerouted submissions are
       the probe traffic that ends the quarantine. Zeroing the split
       here starves the probes and leaves the healed GPU idle for
       iterations longer than the static split would. Only a permanent
       loss ({!note_lost}) collapses the split. *)
  end

(* A failed half-open probe: the device was already quarantined, so
   {!quarantine}'s first-time guard does not fire — restart the
   cooldown clock from the probe's failure time and escalate the
   episode count so the next eligibility window is further out. *)
let requarantine t d ~now =
  d.quarantined_at <- Some now;
  d.quarantine_episodes <- d.quarantine_episodes + 1;
  d.probe_successes <- 0;
  Obs.incr t.obs "resilient.quarantines"
(* like {!quarantine}, the balancer split is left alone — see above *)

(* health update after one fault; only the GPU can be quarantined — the
   CPU is the fallback of last resort, so a sick CPU keeps limping
   until its retry budget runs out and the driver gives up *)
let penalize t d ~gpu ~now =
  d.health <- d.health *. t.policy.fault_penalty;
  if gpu && d.health < t.policy.quarantine_threshold then quarantine t d ~now

let credit t d =
  d.completed <- d.completed + 1;
  d.health <- Float.min 1.0 (d.health +. t.policy.success_credit)

let note_fault d = function
  | Engine.Hang _ -> d.hangs <- d.hangs + 1
  | Engine.Transient_fault -> d.transient_faults <- d.transient_faults + 1
  | Engine.Corrupted_transfer | Engine.Device_lost -> ()

(* capped exponential backoff with symmetric jitter: attempt [i]
   (0-based) waits [min max_backoff (base * factor^i)] scaled by a
   factor drawn uniformly from [1-jitter, 1+jitter] *)
let backoff_duration t ~attempt =
  let p = t.policy in
  let b = p.base_backoff_s *. (p.backoff_factor ** float_of_int attempt) in
  let b = Float.min b p.max_backoff_s in
  let u = Random.State.float t.rng 1. in
  b *. (1. +. (p.jitter *. ((2. *. u) -. 1.)))

let deps_now t deps = Engine.time_of t.engine (Engine.join t.engine deps)

let snapshot (d : dev) : device_stats =
  {
    submitted = d.submitted;
    completed = d.completed;
    transient_faults = d.transient_faults;
    hangs = d.hangs;
    retries = d.retries;
    backoff_s = d.backoff_s;
    quarantined_at = d.quarantined_at;
    lost_at = d.lost_at;
  }

let stats t =
  {
    cpu = snapshot t.cpu;
    gpu = snapshot t.gpu;
    corrupted_transfers = t.corrupted_transfers;
    skipped_transfers = t.skipped_transfers;
    degraded_ops = t.degraded_ops;
    degraded_at = t.degraded_at;
    reprobes = t.reprobes;
    rejoins = t.rejoins;
    resplits =
      (match t.balancer with
      | None -> 0
      | Some b -> Load_balancer.resplits b);
  }

(* The retry driver. [run ~extra] performs one attempt with [extra]
   prepended to the dependency list (used to chain a retry after its
   backoff delay, or a fallback after the failure it reacts to).
   [fallback] is invoked with the failure event once this resource is
   given up on; [None] (the CPU) means exhaustion raises {!Gave_up}.
   The loop is bounded by [policy.max_retries] — each attempt either
   completes, backs off into the next attempt, or fails over. *)
let retried t ~resource ~run ~fallback =
  let d = dev_of t resource in
  let gpu =
    match resource with
    | Engine.Gpu | Engine.Gpu_spare -> true
    | Engine.Cpu | Engine.Link_h2d | Engine.Link_d2h -> false
  in
  (* everything this operation charged beyond its one successful
     attempt: failed-attempt durations, hang timeouts, backoffs — the
     balancer's efficiency signal *)
  let wasted = ref 0. in
  let observe ~useful_s =
    balancer_iter t (fun b ->
        Load_balancer.observe b resource ~useful_s ~wasted_s:!wasted)
  in
  let fail_over ~failure ~attempt ~ev =
    match fallback with
    | Some fb ->
        (* the operation is abandoned to the other device: this one got
           zero useful seconds out of everything it charged *)
        observe ~useful_s:0.;
        mark_degraded t ~now:(Engine.time_of t.engine ev);
        fb ev
    | None ->
        raise
          (Gave_up { resource; failure; attempts = attempt + 1; stats = stats t })
  in
  let rec go ~attempt ~extra =
    d.submitted <- d.submitted + 1;
    if attempt > 0 then begin
      d.retries <- d.retries + 1;
      Obs.incr t.obs "resilient.retries"
    end;
    match run ~extra with
    | Engine.Completed ev ->
        credit t d;
        observe ~useful_s:(Engine.last_duration t.engine);
        ev
    | Engine.Failed (Engine.Corrupted_transfer, _) ->
        (* kernels cannot corrupt transfers; only Resilient.transfer
           sees this outcome *)
        assert false
    | Engine.Failed (Engine.Device_lost, ev) ->
        note_lost t d (Engine.time_of t.engine ev);
        fail_over ~failure:Engine.Device_lost ~attempt ~ev
    | Engine.Failed ((Engine.Transient_fault | Engine.Hang _) as f, ev) ->
        let now = Engine.time_of t.engine ev in
        wasted := !wasted +. Engine.last_duration t.engine;
        note_fault d f;
        Obs.incr t.obs
          (match f with
          | Engine.Hang _ -> "resilient.hangs"
          | _ -> "resilient.transients");
        penalize t d ~gpu ~now;
        if unavailable d then fail_over ~failure:f ~attempt ~ev
        else if attempt >= t.policy.max_retries then begin
          (* retry budget exhausted: stop trusting this device *)
          if gpu then quarantine t d ~now;
          fail_over ~failure:f ~attempt ~ev
        end
        else begin
          let b = backoff_duration t ~attempt in
          d.backoff_s <- d.backoff_s +. b;
          wasted := !wasted +. b;
          Obs.observe t.obs "resilient.backoff_s" b;
          let delay_ev =
            Engine.delay t.engine ~deps:[ ev ] ~phase:"backoff" ~label:"backoff"
              b
          in
          go ~attempt:(attempt + 1) ~extra:[ delay_ev ]
        end
  in
  go ~attempt:0 ~extra:[]

(* Half-open re-probe eligibility (breaker idiom, cf. lib/server):
   a quarantined — not lost — GPU may receive one single-attempt probe
   once [reprobe_after_s] of virtual time has elapsed since (re-)entry
   into quarantine, with the cooldown doubling per quarantine episode
   (capped at 2^6) so a genuinely sick device is probed ever more
   rarely. Disabled entirely at the default infinite cooldown. *)
let probe_cooldown t d =
  let ep = max 1 d.quarantine_episodes in
  t.policy.reprobe_after_s *. (2. ** float_of_int (min 6 (ep - 1)))

let probe_due t d ~now =
  match (d.quarantined_at, d.lost_at) with
  | Some q, None ->
      Float.is_finite t.policy.reprobe_after_s && now >= q +. probe_cooldown t d
  | _ -> false

let rejoin t d ~now:_ =
  d.quarantined_at <- None;
  d.probe_successes <- 0;
  (* restored health starts exactly at the quarantine threshold: the
     device is trusted again but one fresh fault sends it straight
     back, with a longer cooldown *)
  d.health <- Float.max d.health t.policy.quarantine_threshold;
  t.rejoins <- t.rejoins + 1;
  Obs.incr t.obs "resilient.rejoins";
  if d == t.gpu then balancer_iter t Load_balancer.gpu_up

let submit t ?stream ?(deps = []) ?(phase = "compute") resource kernel =
  match resource with
  | Engine.Link_h2d | Engine.Link_d2h ->
      invalid_arg "Resilient.submit: use Resilient.transfer for link operations"
  | Engine.Cpu ->
      retried t ~resource:Engine.Cpu ~fallback:None ~run:(fun ~extra ->
          Engine.submit_result t.engine ?stream ~deps:(deps @ extra) ~phase
            Engine.Cpu kernel)
  | (Engine.Gpu | Engine.Gpu_spare) as r ->
      let cpu_run ~extra =
        Engine.submit_result t.engine ?stream ~deps:(deps @ extra) ~phase
          Engine.Cpu kernel
      in
      let cpu_retried ~after =
        retried t ~resource:Engine.Cpu ~fallback:None ~run:(fun ~extra ->
            cpu_run ~extra:(after @ extra))
      in
      if gpu_unavailable t then begin
        let now = deps_now t deps in
        let d = t.gpu in
        if probe_due t d ~now then begin
          (* one bounded attempt, no retry loop: a probe either earns
             trust or re-quarantines with an escalated cooldown *)
          d.submitted <- d.submitted + 1;
          t.reprobes <- t.reprobes + 1;
          Obs.incr t.obs "resilient.reprobes";
          match Engine.submit_result t.engine ?stream ~deps ~phase r kernel with
          | Engine.Failed (Engine.Corrupted_transfer, _) ->
              (* kernels cannot corrupt transfers *)
              assert false
          | Engine.Completed ev ->
              credit t d;
              d.probe_successes <- d.probe_successes + 1;
              balancer_iter t (fun b ->
                  Load_balancer.observe b r
                    ~useful_s:(Engine.last_duration t.engine)
                    ~wasted_s:0.);
              if d.probe_successes >= t.policy.reprobe_successes then
                rejoin t d ~now:(Engine.time_of t.engine ev);
              ev
          | Engine.Failed (Engine.Device_lost, ev) ->
              let now = Engine.time_of t.engine ev in
              note_lost t d now;
              mark_degraded t ~now;
              cpu_retried ~after:[ ev ]
          | Engine.Failed ((Engine.Transient_fault | Engine.Hang _) as f, ev)
            ->
              let now = Engine.time_of t.engine ev in
              note_fault d f;
              Obs.incr t.obs
                (match f with
                | Engine.Hang _ -> "resilient.hangs"
                | _ -> "resilient.transients");
              d.health <- d.health *. t.policy.fault_penalty;
              balancer_iter t (fun b ->
                  Load_balancer.observe b r ~useful_s:0.
                    ~wasted_s:(Engine.last_duration t.engine));
              requarantine t d ~now;
              mark_degraded t ~now;
              cpu_retried ~after:[ ev ]
        end
        else begin
          mark_degraded t ~now;
          retried t ~resource:Engine.Cpu ~fallback:None ~run:cpu_run
        end
      end
      else
        retried t ~resource:r
          ~run:(fun ~extra ->
            Engine.submit_result t.engine ?stream ~deps:(deps @ extra) ~phase r
              kernel)
          ~fallback:(Some (fun ev -> cpu_retried ~after:[ ev ]))

let submit_background t ?(deps = []) ?(phase = "compute") kernel =
  submit t ~deps ~phase Engine.Gpu_spare kernel

let submit_batch t ?(deps = []) ?(phase = "compute") ~streams kernels =
  match kernels with
  | [] -> Engine.join t.engine deps
  | _ ->
      (* re-planning a concurrent BLAS-2 batch onto the CPU loses the
         concurrency benefit: each kernel is submitted individually
         (serialized by the CPU resource clock) and the batch completes
         at their join *)
      let on_cpu ~deps =
        let evs = List.map (fun k -> submit t ~deps ~phase Engine.Cpu k) kernels in
        Engine.join t.engine evs
      in
      if gpu_unavailable t then begin
        mark_degraded t ~now:(deps_now t deps);
        on_cpu ~deps
      end
      else
        retried t ~resource:Engine.Gpu
          ~run:(fun ~extra ->
            Engine.submit_batch_result t.engine ~deps:(deps @ extra) ~phase
              ~streams kernels)
          ~fallback:(Some (fun ev -> on_cpu ~deps:(ev :: deps)))

let transfer t ?(deps = []) ?(phase = "transfer") ~dir bytes =
  if gpu_unavailable t then begin
    (* nothing on the other side: the CPU-resident fallback works on
       host copies, so the transfer is dropped, not re-routed *)
    t.skipped_transfers <- t.skipped_transfers + 1;
    Obs.incr t.obs "resilient.skipped_transfers";
    Engine.join t.engine deps
  end
  else
    match Engine.transfer_result t.engine ~deps ~phase ~dir bytes with
    | Engine.Completed ev -> ev
    | Engine.Failed (Engine.Corrupted_transfer, ev) ->
        (* count it and let it through: the payload error is healed by
           the ABFT verify path, never by a blind scheduling retry *)
        t.corrupted_transfers <- t.corrupted_transfers + 1;
        Obs.incr t.obs "resilient.corrupted_transfers";
        ev
    | Engine.Failed (Engine.Device_lost, ev) ->
        let now = Engine.time_of t.engine ev in
        note_lost t t.gpu now;
        t.skipped_transfers <- t.skipped_transfers + 1;
        Obs.incr t.obs "resilient.skipped_transfers";
        if Option.is_none t.degraded_at then t.degraded_at <- Some now;
        ev
    | Engine.Failed ((Engine.Transient_fault | Engine.Hang _), _) ->
        (* transfer_result only fails with corruption or device loss *)
        assert false

let pp_stats fmt (s : stats) =
  let dev name (d : device_stats) =
    Format.fprintf fmt
      "  %s: %d submitted, %d completed, %d transient, %d hangs, %d retries, \
       %.4fs backoff%s%s@,"
      name d.submitted d.completed d.transient_faults d.hangs d.retries
      d.backoff_s
      (match d.quarantined_at with
      | None -> ""
      | Some x -> Printf.sprintf ", quarantined@%.4fs" x)
      (match d.lost_at with
      | None -> ""
      | Some x -> Printf.sprintf ", lost@%.4fs" x)
  in
  Format.fprintf fmt "@[<v>resilient driver:@,";
  dev "cpu" s.cpu;
  dev "gpu" s.gpu;
  Format.fprintf fmt
    "  %d corrupted transfer(s), %d skipped transfer(s), %d degraded op(s)%s@,"
    s.corrupted_transfers s.skipped_transfers s.degraded_ops
    (match s.degraded_at with
    | None -> ""
    | Some x -> Printf.sprintf ", degraded@%.4fs" x);
  Format.fprintf fmt "  %d reprobe(s), %d rejoin(s), %d resplit(s)@]"
    s.reprobes s.rejoins s.resplits
