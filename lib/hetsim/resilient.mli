(** Failure-aware scheduling layer over {!Engine}.

    Mirrors the Engine submission API but routes every operation
    through the failure-aware [_result] paths and reacts to the
    structured failures the engine reports:

    - {b Hangs} are detected by deadline: the engine charges the
      device's watchdog timeout, then this layer retries.
    - {b Transient faults and hangs} are retried up to
      [policy.max_retries] times with capped exponential backoff and
      seeded jitter; backoff spans appear in the timeline as
      resource-free delays under the ["backoff"] phase.
    - {b Health scoring}: each device starts at health 1.0; a fault
      multiplies by [fault_penalty], a completion adds
      [success_credit] (capped at 1.0). When the GPU's health drops
      below [quarantine_threshold] — or its retry budget for a single
      operation is exhausted — it is quarantined.
    - {b Degradation}: once the GPU is quarantined or lost, remaining
      GPU work is re-planned onto the CPU (priced by the cost model on
      the CPU device) and host<->device transfers are skipped. The CPU
      is the fallback of last resort and is never quarantined; if it
      exhausts its own retry budget the driver raises {!Gave_up}.
    - {b Corrupted transfers} are never retried: the copy looked
      successful, so retrying would mask the very error the ABFT
      checksum layer exists to catch. They are counted in {!stats} and
      the event is returned as if completed; callers account for them
      as storage errors in the verify path.

    All randomness (jitter) comes from a [Random.State] seeded at
    {!create}, and the engine's own failure draws are seeded at
    {!Engine.create}, so a given seed pair reproduces the exact same
    failure/retry/quarantine/degradation trace. On a machine whose
    devices are {!Device.reliable} the driver is an exact pass-through:
    same events, same records, same makespan, zero RNG draws. *)

type policy = {
  max_retries : int;  (** retries per operation beyond the first try *)
  base_backoff_s : float;  (** backoff before the first retry *)
  backoff_factor : float;  (** multiplier per further retry *)
  max_backoff_s : float;  (** backoff cap *)
  jitter : float;
      (** symmetric jitter fraction: each backoff is scaled by a factor
          drawn from [1-jitter, 1+jitter] *)
  quarantine_threshold : float;
      (** GPU health below this → quarantine *)
  fault_penalty : float;  (** multiplicative health hit per fault *)
  success_credit : float;  (** additive health gain per completion *)
}

val default_policy : policy
(** 3 retries, 1ms..100ms backoff doubling with 25% jitter, health
    penalty 0.6 / credit 0.05 / quarantine below 0.2 (so roughly four
    consecutive faults, or one fully failed operation, quarantine the
    GPU). *)

type device_stats = {
  submitted : int;  (** attempts on this device, including retries *)
  completed : int;
  transient_faults : int;
  hangs : int;
  retries : int;
  backoff_s : float;  (** total modelled backoff time *)
  quarantined_at : float option;  (** virtual quarantine time *)
  lost_at : float option;  (** virtual permanent-dropout time *)
}

type stats = {
  cpu : device_stats;
  gpu : device_stats;  (** GPU main engine + spare channel combined *)
  corrupted_transfers : int;
  skipped_transfers : int;  (** transfers dropped after degradation *)
  degraded_ops : int;  (** operations re-planned onto the CPU *)
  degraded_at : float option;
      (** virtual time degradation began, [None] if never *)
}

exception
  Gave_up of {
    resource : Engine.resource;
    failure : Engine.failure;
    attempts : int;
  }
(** Raised when the fallback of last resort (the CPU) exhausts its
    retry budget or is itself lost. *)

type t

val create : ?policy:policy -> ?seed:int -> ?obs:Obs.t -> Engine.t -> t
(** [create ?policy ?seed engine] wraps [engine]. [seed] (default 0)
    drives only the backoff jitter; pair it with the engine's own seed
    for full reproducibility.

    [obs] (default [Obs.null]) receives one counter increment per
    resilience event — ["resilient.retries"], ["resilient.transients"],
    ["resilient.hangs"], ["resilient.corrupted_transfers"],
    ["resilient.skipped_transfers"], ["resilient.quarantines"],
    ["resilient.cpu_fallbacks"], ["resilient.device_losses"] — and a
    ["resilient.backoff_s"] histogram observation per backoff. The
    same information is available after the fact via {!stats}; the
    sink exists so one trace carries both numeric-driver spans and
    scheduling events. *)

val engine : t -> Engine.t
val machine : t -> Machine.t

(** {1 Issuing operations}

    Drop-in counterparts of the Engine entry points; each returns the
    completion event of the operation's final (successful or
    degraded) attempt.
    @raise Gave_up when the CPU fallback is exhausted. *)

val submit :
  t ->
  ?stream:Engine.stream ->
  ?deps:Engine.event list ->
  ?phase:string ->
  Engine.resource ->
  Kernel.t ->
  Engine.event

val submit_batch :
  t ->
  ?deps:Engine.event list ->
  ?phase:string ->
  streams:int ->
  Kernel.t list ->
  Engine.event
(** The batch faults as one operation. If it must degrade, the batch
    is re-planned as individual kernels on the CPU (the concurrency
    benefit is lost) completing at their join. *)

val submit_background :
  t -> ?deps:Engine.event list -> ?phase:string -> Kernel.t -> Engine.event
(** Spare-channel submission; shares the GPU's fate and health. *)

val transfer :
  t ->
  ?deps:Engine.event list ->
  ?phase:string ->
  dir:[ `H2d | `D2h ] ->
  int ->
  Engine.event
(** Corrupted transfers complete normally (counted, healed by ABFT
    downstream); once the GPU is gone transfers are skipped and their
    dependencies' join is returned. *)

(** {1 Interrogation} *)

val degraded : t -> bool
(** Whether any operation has been re-planned onto the CPU (or a
    transfer dropped) because the GPU was quarantined or lost. *)

val gpu_unavailable : t -> bool
(** Whether the GPU is currently quarantined or lost. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
