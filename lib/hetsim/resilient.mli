(** Failure-aware scheduling layer over {!Engine}.

    Mirrors the Engine submission API but routes every operation
    through the failure-aware [_result] paths and reacts to the
    structured failures the engine reports:

    - {b Hangs} are detected by deadline: the engine charges the
      device's watchdog timeout, then this layer retries.
    - {b Transient faults and hangs} are retried up to
      [policy.max_retries] times with capped exponential backoff and
      seeded jitter; backoff spans appear in the timeline as
      resource-free delays under the ["backoff"] phase.
    - {b Health scoring}: each device starts at health 1.0; a fault
      multiplies by [fault_penalty], a completion adds
      [success_credit] (capped at 1.0). When the GPU's health drops
      below [quarantine_threshold] — or its retry budget for a single
      operation is exhausted — it is quarantined.
    - {b Degradation}: once the GPU is quarantined or lost, remaining
      GPU work is re-planned onto the CPU (priced by the cost model on
      the CPU device) and host<->device transfers are skipped. The CPU
      is the fallback of last resort and is never quarantined; if it
      exhausts its own retry budget the driver raises {!Gave_up}.
    - {b Half-open re-probe}: with a finite [policy.reprobe_after_s], a
      quarantined (not lost) GPU periodically receives one
      single-attempt probe kernel through {!submit}; after
      [policy.reprobe_successes] consecutive successes the quarantine
      is lifted and the device rejoins (the attached load balancer is
      told via [gpu_up]). A failed probe re-quarantines with a doubled
      cooldown. At the default infinite cooldown this path is inert and
      quarantine remains final.
    - {b Corrupted transfers} are never retried: the copy looked
      successful, so retrying would mask the very error the ABFT
      checksum layer exists to catch. They are counted in {!stats} and
      the event is returned as if completed; callers account for them
      as storage errors in the verify path.

    All randomness (jitter) comes from a [Random.State] seeded at
    {!create}, and the engine's own failure draws are seeded at
    {!Engine.create}, so a given seed pair reproduces the exact same
    failure/retry/quarantine/degradation trace. On a machine whose
    devices are {!Device.reliable} the driver is an exact pass-through:
    same events, same records, same makespan, zero RNG draws. *)

type policy = {
  max_retries : int;  (** retries per operation beyond the first try *)
  base_backoff_s : float;  (** backoff before the first retry *)
  backoff_factor : float;  (** multiplier per further retry *)
  max_backoff_s : float;  (** backoff cap *)
  jitter : float;
      (** symmetric jitter fraction: each backoff is scaled by a factor
          drawn from [1-jitter, 1+jitter] *)
  quarantine_threshold : float;
      (** GPU health below this → quarantine *)
  fault_penalty : float;  (** multiplicative health hit per fault *)
  success_credit : float;  (** additive health gain per completion *)
  reprobe_after_s : float;
      (** half-open re-probe cooldown: virtual seconds after
          (re-)entering quarantine before the GPU may receive one
          single-attempt probe kernel. The cooldown doubles per
          quarantine episode (capped at [2^6×]). [infinity] (the
          default) disables re-probing — a quarantine is then final,
          the historical behaviour. *)
  reprobe_successes : int;
      (** consecutive successful probes required before the GPU rejoins
          (its quarantine is lifted and health restored to the
          quarantine threshold) *)
}

val default_policy : policy
(** 3 retries, 1ms..100ms backoff doubling with 25% jitter, health
    penalty 0.6 / credit 0.05 / quarantine below 0.2 (so roughly four
    consecutive faults, or one fully failed operation, quarantine the
    GPU); re-probing disabled ([reprobe_after_s = infinity], 2
    successes to rejoin once enabled). *)

type device_stats = {
  submitted : int;  (** attempts on this device, including retries *)
  completed : int;
  transient_faults : int;
  hangs : int;
  retries : int;
  backoff_s : float;  (** total modelled backoff time *)
  quarantined_at : float option;  (** virtual quarantine time *)
  lost_at : float option;  (** virtual permanent-dropout time *)
}

type stats = {
  cpu : device_stats;
  gpu : device_stats;  (** GPU main engine + spare channel combined *)
  corrupted_transfers : int;
  skipped_transfers : int;  (** transfers dropped after degradation *)
  degraded_ops : int;  (** operations re-planned onto the CPU *)
  degraded_at : float option;
      (** virtual time degradation began, [None] if never *)
  reprobes : int;  (** half-open probe kernels sent to a quarantined GPU *)
  rejoins : int;  (** quarantines lifted after enough probe successes *)
  resplits : int;
      (** applied split changes reported by the attached load balancer;
          0 when no balancer is attached *)
}

exception
  Gave_up of {
    resource : Engine.resource;
    failure : Engine.failure;
    attempts : int;
    stats : stats;
  }
(** Raised when the fallback of last resort (the CPU) exhausts its
    retry budget or is itself lost. [stats] is the driver's counter
    snapshot at the moment of giving up, so callers can aggregate what
    the run cost even though it did not complete — discarding these
    partial counters was how campaign totals silently drifted. *)

type t

val create :
  ?policy:policy ->
  ?balancer:Load_balancer.t ->
  ?seed:int ->
  ?obs:Obs.t ->
  Engine.t ->
  t
(** [create ?policy ?seed engine] wraps [engine]. [seed] (default 0)
    drives only the backoff jitter; pair it with the engine's own seed
    for full reproducibility.

    [balancer] (default none) receives per-operation useful/wasted
    accounting via {!Load_balancer.observe}, plus
    {!Load_balancer.gpu_down} on permanent device loss and
    {!Load_balancer.gpu_up} on rejoin after quarantine. A (transient)
    quarantine deliberately does NOT collapse the split: the reroute
    already moves the work, and the still-nominated GPU submissions
    are the probe traffic that ends the quarantine. The driver never
    calls {!Load_balancer.tick} — cutting rows is the schedule's
    decision.

    [obs] (default [Obs.null]) receives one counter increment per
    resilience event — ["resilient.retries"], ["resilient.transients"],
    ["resilient.hangs"], ["resilient.corrupted_transfers"],
    ["resilient.skipped_transfers"], ["resilient.quarantines"],
    ["resilient.cpu_fallbacks"], ["resilient.device_losses"],
    ["resilient.reprobes"], ["resilient.rejoins"] — and a
    ["resilient.backoff_s"] histogram observation per backoff. The
    same information is available after the fact via {!stats}; the
    sink exists so one trace carries both numeric-driver spans and
    scheduling events. *)

val engine : t -> Engine.t
val machine : t -> Machine.t

val balancer : t -> Load_balancer.t option
(** The balancer passed at {!create}, if any. *)

(** {1 Issuing operations}

    Drop-in counterparts of the Engine entry points; each returns the
    completion event of the operation's final (successful or
    degraded) attempt.
    @raise Gave_up when the CPU fallback is exhausted. *)

val submit :
  t ->
  ?stream:Engine.stream ->
  ?deps:Engine.event list ->
  ?phase:string ->
  Engine.resource ->
  Kernel.t ->
  Engine.event

val submit_batch :
  t ->
  ?deps:Engine.event list ->
  ?phase:string ->
  streams:int ->
  Kernel.t list ->
  Engine.event
(** The batch faults as one operation. If it must degrade, the batch
    is re-planned as individual kernels on the CPU (the concurrency
    benefit is lost) completing at their join. *)

val submit_background :
  t -> ?deps:Engine.event list -> ?phase:string -> Kernel.t -> Engine.event
(** Spare-channel submission; shares the GPU's fate and health. *)

val transfer :
  t ->
  ?deps:Engine.event list ->
  ?phase:string ->
  dir:[ `H2d | `D2h ] ->
  int ->
  Engine.event
(** Corrupted transfers complete normally (counted, healed by ABFT
    downstream); once the GPU is gone transfers are skipped and their
    dependencies' join is returned. *)

(** {1 Interrogation} *)

val degraded : t -> bool
(** Whether any operation has been re-planned onto the CPU (or a
    transfer dropped) because the GPU was quarantined or lost. *)

val gpu_unavailable : t -> bool
(** Whether the GPU is currently quarantined or lost. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
