open Matrix

type t = { col : Abft.Checksum.t; row : Abft.Checksum.t }

let encode ?(d = 2) tile =
  {
    col = Abft.Checksum.encode ~d tile;
    row = Abft.Checksum.encode ~d (Mat.transpose tile);
  }

let col t = t.col
let row t = t.row
let verify_col ?tol t tile = Abft.Verify.verify ?tol t.col tile

let verify_row ?tol t tile =
  let tt = Mat.transpose tile in
  match Abft.Verify.verify ?tol t.row tt with
  | Abft.Verify.Clean -> Abft.Verify.Clean
  | Abft.Verify.Uncorrectable _ as u -> u
  | Abft.Verify.Corrected fixes ->
      (* Write the patched elements back, swapping coordinates. *)
      let fixes' =
        List.map
          (fun (f : Abft.Verify.correction) ->
            Mat.set tile f.Abft.Verify.col f.Abft.Verify.row f.Abft.Verify.fixed;
            {
              f with
              Abft.Verify.row = f.Abft.Verify.col;
              Abft.Verify.col = f.Abft.Verify.row;
            })
          fixes
      in
      Abft.Verify.Corrected fixes'

let verify_both ?tol t tile =
  match verify_col ?tol t tile with
  | Abft.Verify.Uncorrectable _ as u -> u
  | col_outcome -> (
      match verify_row ?tol t tile with
      | Abft.Verify.Uncorrectable _ as u -> u
      | row_outcome -> (
          match (col_outcome, row_outcome) with
          | Abft.Verify.Clean, Abft.Verify.Clean -> Abft.Verify.Clean
          | Abft.Verify.Corrected a, Abft.Verify.Corrected b ->
              Abft.Verify.Corrected (a @ b)
          | (Abft.Verify.Corrected _ as c), Abft.Verify.Clean
          | Abft.Verify.Clean, (Abft.Verify.Corrected _ as c) ->
              c
          | _ -> assert false))

let gemm ~c ~l_chk ~u_chk ~l ~u =
  (* colchk(C) -= colchk(L) . U *)
  Blas3.gemm ~alpha:(-1.) ~beta:1. (Abft.Checksum.matrix l_chk.col) u
    (Abft.Checksum.matrix c.col);
  (* rowchk(C)_rep -= rowchk(U)_rep . L^T   (from C^T -= U^T L^T) *)
  Blas3.gemm ~transb:Types.Trans ~alpha:(-1.) ~beta:1.
    (Abft.Checksum.matrix u_chk.row) l
    (Abft.Checksum.matrix c.row)

let getf2 t ~lu_packed =
  let u = Mat.triu lu_packed in
  let l = Mat.tril ~diag:Types.Unit_diag lu_packed in
  (* chk(L) = chk(A) . U^-1 *)
  Blas3.trsm Types.Right Types.Upper Types.No_trans Types.Non_unit_diag u
    (Abft.Checksum.matrix t.col);
  (* rowchk(U)_rep = rowchk(A)_rep . (L^T)^-1   (from U^T = A^T (L^T)^-1) *)
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Unit_diag l
    (Abft.Checksum.matrix t.row)

let col_panel t ~u_diag =
  Blas3.trsm Types.Right Types.Upper Types.No_trans Types.Non_unit_diag u_diag
    (Abft.Checksum.matrix t.col)

let row_panel t ~l_diag =
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Unit_diag l_diag
    (Abft.Checksum.matrix t.row)

let copy t =
  { col = Abft.Checksum.copy t.col; row = Abft.Checksum.copy t.row }
