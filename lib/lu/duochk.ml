open Matrix

type t = { col : Abft.Checksum.t; row : Abft.Checksum.t }

let encode ?(d = 2) tile =
  {
    col = Abft.Checksum.encode ~d tile;
    row = Abft.Checksum.encode ~d (Mat.transpose tile);
  }

let col t = t.col
let row t = t.row
let verify_col ?tol t tile = Abft.Verify.verify ?tol t.col tile

let swap_correction tile (f : Abft.Verify.correction) =
  (* Write the patched element back, swapping coordinates. *)
  Mat.set tile f.Abft.Verify.col f.Abft.Verify.row f.Abft.Verify.fixed;
  { f with Abft.Verify.row = f.Abft.Verify.col; Abft.Verify.col = f.Abft.Verify.row }

let compare_col ?tol t tile = Abft.Verify.compare ?tol t.col tile

(* Map a row-side (transposed) outcome back to tile coordinates,
   writing any fixes into the untransposed tile. *)
let untranspose_outcome tile = function
  | Abft.Verify.Clean -> Abft.Verify.Clean
  | Abft.Verify.Uncorrectable _ as u -> u
  | Abft.Verify.Corrected fixes ->
      Abft.Verify.Corrected (List.map (swap_correction tile) fixes)
  | Abft.Verify.Checksum_repaired { cells; corrections } ->
      Abft.Verify.Checksum_repaired
        { cells; corrections = List.map (swap_correction tile) corrections }

let verify_row ?tol t tile =
  untranspose_outcome tile (Abft.Verify.verify ?tol t.row (Mat.transpose tile))

let compare_row ?tol t tile =
  untranspose_outcome tile (Abft.Verify.compare ?tol t.row (Mat.transpose tile))

(* Combine the two verifications. Either side may additionally report a
   replica repair ([Checksum_repaired]); the combination stays a repair
   if either side healed a replica, accumulating all tile fixes. *)
let both ~vcol ~vrow t tile =
  match vcol t tile with
  | Abft.Verify.Uncorrectable _ as u -> u
  | col_outcome -> (
      match vrow t tile with
      | Abft.Verify.Uncorrectable _ as u -> u
      | row_outcome ->
          let fixes_of = function
            | Abft.Verify.Clean -> []
            | Abft.Verify.Corrected l -> l
            | Abft.Verify.Checksum_repaired { corrections; _ } -> corrections
            | Abft.Verify.Uncorrectable _ -> []
          in
          let cells_of = function
            | Abft.Verify.Checksum_repaired { cells; _ } -> cells
            | Abft.Verify.Clean | Abft.Verify.Corrected _
            | Abft.Verify.Uncorrectable _ ->
                0
          in
          let cells = cells_of col_outcome + cells_of row_outcome in
          let fixes = fixes_of col_outcome @ fixes_of row_outcome in
          if cells > 0 then
            Abft.Verify.Checksum_repaired { cells; corrections = fixes }
          else if fixes <> [] then Abft.Verify.Corrected fixes
          else Abft.Verify.Clean)

let verify_both ?tol t tile =
  both ~vcol:(verify_col ?tol) ~vrow:(verify_row ?tol) t tile

let compare_both ?tol t tile =
  both ~vcol:(compare_col ?tol) ~vrow:(compare_row ?tol) t tile

let gemm_row ~c ~u_chk ~l =
  (* rowchk(C)_rep -= rowchk(U)_rep . L^T   (from C^T -= U^T L^T) *)
  Blas3.gemm ~transb:Types.Trans ~alpha:(-1.) ~beta:1.
    (Abft.Checksum.matrix u_chk.row) l
    (Abft.Checksum.matrix c.row);
  Blas3.gemm ~transb:Types.Trans ~alpha:(-1.) ~beta:1.
    (Abft.Checksum.shadow u_chk.row) l
    (Abft.Checksum.shadow c.row)

let fuse_col ~l_chk c = Abft.Checksum.update_fused ~chk_a:l_chk.col c.col
let solve_col c = Abft.Checksum.solve_fused c.col

let gemm ~c ~l_chk ~u_chk ~l ~u =
  (* colchk(C) -= colchk(L) . U *)
  Blas3.gemm ~alpha:(-1.) ~beta:1. (Abft.Checksum.matrix l_chk.col) u
    (Abft.Checksum.matrix c.col);
  Blas3.gemm ~alpha:(-1.) ~beta:1. (Abft.Checksum.shadow l_chk.col) u
    (Abft.Checksum.shadow c.col);
  gemm_row ~c ~u_chk ~l

let getf2 t ~lu_packed =
  let u = Mat.triu lu_packed in
  let l = Mat.tril ~diag:Types.Unit_diag lu_packed in
  (* chk(L) = chk(A) . U^-1 *)
  Blas3.trsm Types.Right Types.Upper Types.No_trans Types.Non_unit_diag u
    (Abft.Checksum.matrix t.col);
  Blas3.trsm Types.Right Types.Upper Types.No_trans Types.Non_unit_diag u
    (Abft.Checksum.shadow t.col);
  (* rowchk(U)_rep = rowchk(A)_rep . (L^T)^-1   (from U^T = A^T (L^T)^-1) *)
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Unit_diag l
    (Abft.Checksum.matrix t.row);
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Unit_diag l
    (Abft.Checksum.shadow t.row)

let col_panel t ~u_diag =
  Blas3.trsm Types.Right Types.Upper Types.No_trans Types.Non_unit_diag u_diag
    (Abft.Checksum.matrix t.col);
  Blas3.trsm Types.Right Types.Upper Types.No_trans Types.Non_unit_diag u_diag
    (Abft.Checksum.shadow t.col)

let row_panel t ~l_diag =
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Unit_diag l_diag
    (Abft.Checksum.matrix t.row);
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Unit_diag l_diag
    (Abft.Checksum.shadow t.row)

let copy t =
  { col = Abft.Checksum.copy t.col; row = Abft.Checksum.copy t.row }
