(** Dual (column + row) checksums for one tile — the encoding FT-LU
    needs.

    Cholesky only ever reads and writes the lower triangle, so column
    checksums suffice. LU is two-sided: the L panel wants *column*
    checksums (an error is located by its row index), the U panel wants
    *row* checksums (located by its column index), and trailing tiles
    must maintain both so either factor's update can be verified. A row
    checksum of [A] is simply a column checksum of [Aᵀ], which lets the
    whole {!Abft.Verify} machinery be reused through a transpose.

    Update rules, mirroring {!Abft.Update} on both sides:
    - trailing GEMM [C -= L·U]:
      [colchk(C) -= colchk(L)·U] and [rowchk(C) -= L·rowchk(U)]
    - GETF2 [A → L\U]:
      [colchk(L) = colchk(A)·U⁻¹] and [rowchk(U) = L⁻¹·rowchk(A)]
    - column-panel TRSM [L = A·U₁₁⁻¹]: [colchk(L) = colchk(A)·U₁₁⁻¹]
    - row-panel TRSM [U = L₁₁⁻¹·A]: [rowchk(U) = L₁₁⁻¹·rowchk(A)] *)

open Matrix

type t
(** Column and row checksums of one tile, mutable. *)

val encode : ?d:int -> Mat.t -> t
(** Encode both sides of a square tile (default [d = 2]). *)

val col : t -> Abft.Checksum.t
(** The column-checksum half (live). *)

val row : t -> Abft.Checksum.t
(** The row-checksum half, represented as a column checksum of the
    tile's transpose (live). *)

(** {1 Verification} *)

val verify_col : ?tol:float -> t -> Mat.t -> Abft.Verify.outcome
(** Verify and correct the tile against its column checksums —
    corrections land in the tile. *)

val verify_row : ?tol:float -> t -> Mat.t -> Abft.Verify.outcome
(** Verify and correct against the row checksums: the tile is checked
    transposed, and any corrections are written back untransposed. The
    reported corrections' [(row, col)] are in tile coordinates. *)

val verify_both : ?tol:float -> t -> Mat.t -> Abft.Verify.outcome
(** Column verification, then row verification; the combined
    corrections (or the first uncorrectable outcome). *)

(** {1 Update rules} *)

val gemm : c:t -> l_chk:t -> u_chk:t -> l:Mat.t -> u:Mat.t -> unit
(** Trailing update [C -= L·U] on both checksum sides. *)

val getf2 : t -> lu_packed:Mat.t -> unit
(** Diagonal-tile factorization: the column side becomes [chk(L)], the
    row side becomes [chk(U)]. *)

val col_panel : t -> u_diag:Mat.t -> unit
(** Column-panel solve against the factored diagonal's [U]. *)

val row_panel : t -> l_diag:Mat.t -> unit
(** Row-panel solve against the factored diagonal's [L]. *)

val copy : t -> t
