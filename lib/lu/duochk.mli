(** Dual (column + row) checksums for one tile — the encoding FT-LU
    needs.

    Cholesky only ever reads and writes the lower triangle, so column
    checksums suffice. LU is two-sided: the L panel wants *column*
    checksums (an error is located by its row index), the U panel wants
    *row* checksums (located by its column index), and trailing tiles
    must maintain both so either factor's update can be verified. A row
    checksum of [A] is simply a column checksum of [Aᵀ], which lets the
    whole {!Abft.Verify} machinery be reused through a transpose.

    Update rules, mirroring {!Abft.Update} on both sides:
    - trailing GEMM [C -= L·U]:
      [colchk(C) -= colchk(L)·U] and [rowchk(C) -= L·rowchk(U)]
    - GETF2 [A → L\U]:
      [colchk(L) = colchk(A)·U⁻¹] and [rowchk(U) = L⁻¹·rowchk(A)]
    - column-panel TRSM [L = A·U₁₁⁻¹]: [colchk(L) = colchk(A)·U₁₁⁻¹]
    - row-panel TRSM [U = L₁₁⁻¹·A]: [rowchk(U) = L₁₁⁻¹·rowchk(A)] *)

open Matrix

type t
(** Column and row checksums of one tile, mutable. *)

val encode : ?d:int -> Mat.t -> t
(** Encode both sides of a square tile (default [d = 2]). *)

val col : t -> Abft.Checksum.t
(** The column-checksum half (live). *)

val row : t -> Abft.Checksum.t
(** The row-checksum half, represented as a column checksum of the
    tile's transpose (live). *)

(** {1 Verification} *)

val verify_col : ?tol:float -> t -> Mat.t -> Abft.Verify.outcome
(** Verify and correct the tile against its column checksums —
    corrections land in the tile. *)

val verify_row : ?tol:float -> t -> Mat.t -> Abft.Verify.outcome
(** Verify and correct against the row checksums: the tile is checked
    transposed, and any corrections are written back untransposed. The
    reported corrections' [(row, col)] are in tile coordinates. *)

val verify_both : ?tol:float -> t -> Mat.t -> Abft.Verify.outcome
(** Column verification, then row verification; the combined
    corrections (or the first uncorrectable outcome). *)

val compare_col : ?tol:float -> t -> Mat.t -> Abft.Verify.outcome
(** Fused-mode column verification ({!Abft.Verify.compare}): cheap
    carried-vs-fresh diff, escalating to the full locate/patch ladder
    only on a mismatch. *)

val compare_row : ?tol:float -> t -> Mat.t -> Abft.Verify.outcome
(** Fused-mode row verification — the transposed analogue of
    {!compare_col}, with corrections reported in tile coordinates. *)

val compare_both : ?tol:float -> t -> Mat.t -> Abft.Verify.outcome
(** {!compare_col} then {!compare_row}, combined like
    {!verify_both}. *)

(** {1 Update rules} *)

val gemm : c:t -> l_chk:t -> u_chk:t -> l:Mat.t -> u:Mat.t -> unit
(** Trailing update [C -= L·U] on both checksum sides. *)

val getf2 : t -> lu_packed:Mat.t -> unit
(** Diagonal-tile factorization: the column side becomes [chk(L)], the
    row side becomes [chk(U)]. *)

val col_panel : t -> u_diag:Mat.t -> unit
(** Column-panel solve against the factored diagonal's [U]. *)

val row_panel : t -> l_diag:Mat.t -> unit
(** Row-panel solve against the factored diagonal's [L]. *)

(** {1 Fused-kernel carry}

    The column side of the LU update rules has the same shape as the
    tile operation itself (extra rows of [op(a)] riding a [No_trans]
    GEMM, or a [Right]-side solve), so it can be carried through the
    fused BLAS-3 kernels. The row side cannot: the trailing row rule
    multiplies by [Lᵀ] while the tile GEMM multiplies by [U], and the
    row-panel solve is [Left]-sided — both stay separate passes
    ({!gemm_row}, {!row_panel}). *)

val fuse_col : l_chk:t -> t -> Blas3.fuse
(** [fuse_col ~l_chk c] carries [colchk(C) -= colchk(L)·U] through the
    trailing tile GEMM — pass as its [?fused] argument. *)

val solve_col : t -> Blas3.fuse
(** Carry the column-panel solve [colchk(L) = colchk(A)·U₁₁⁻¹] through
    the tile TRSM — pass as the [?fused] argument of the same
    [Right Upper No_trans] solve. *)

val gemm_row : c:t -> u_chk:t -> l:Mat.t -> unit
(** Just the row half of {!gemm} — the separate pass that remains when
    the column half is fused into the tile kernel. *)

val copy : t -> t
