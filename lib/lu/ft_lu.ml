open Matrix

let src = Logs.Src.create "ftchol.lu" ~doc:"FT LU driver events"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome = Success | Silent_corruption | Gave_up of string

type stats = {
  verifications : int;
  corrections : int;
  uncorrectable_events : int;
  fail_stops : int;
  restarts : int;
}

type report = {
  l : Mat.t;
  u : Mat.t;
  outcome : outcome;
  residual : float;
  stats : stats;
  injections_fired : Injector.fired list;
}

let residual_threshold = 1e-6

exception Recovery of string

type state = {
  grid : int;
  block : int;
  tol : float;
  fused : bool;
  tiles : Mat.t array array;  (* full grid, all tiles live *)
  chks : Duochk.t array array option;  (* None for No_ft *)
  injector : Injector.t;
  mutable verifications : int;
  mutable corrections : int;
}

let tile st i c = st.tiles.(i).(c)

let lookup st (i, c) =
  if i >= 0 && c >= 0 && i < st.grid && c < st.grid then Some st.tiles.(i).(c)
  else None

let chk st i c =
  match st.chks with Some m -> m.(i).(c) | None -> assert false

let count_outcome st ~where = function
  | Abft.Verify.Clean -> ()
  | Abft.Verify.Corrected fixes ->
      Log.info (fun m -> m "corrected %d element(s) in %s" (List.length fixes) where);
      st.corrections <- st.corrections + List.length fixes
  | Abft.Verify.Checksum_repaired { cells; corrections } ->
      Log.info (fun m ->
          m "repaired %d checksum cell(s) in %s (+%d tile fix(es))" cells where
            (List.length corrections));
      st.corrections <- st.corrections + List.length corrections
  | Abft.Verify.Uncorrectable msg ->
      Log.warn (fun m -> m "uncorrectable at %s: %s" where msg);
      raise (Recovery (Printf.sprintf "%s: %s" where msg))

(* Fused runs verify by carried-vs-fresh [compare]; the fresh sums are
   recomputed here (never taken from the kernel) because injected
   faults can land in the tile after the kernel returns. *)
let vcol st =
  if st.fused then Duochk.compare_col ~tol:st.tol
  else Duochk.verify_col ~tol:st.tol

let vrow st =
  if st.fused then Duochk.compare_row ~tol:st.tol
  else Duochk.verify_row ~tol:st.tol

let vboth st =
  if st.fused then Duochk.compare_both ~tol:st.tol
  else Duochk.verify_both ~tol:st.tol

(* Verify a still-unfactored (trailing) tile against both checksum
   sides. *)
let verify_trailing st i c =
  st.verifications <- st.verifications + 1;
  count_outcome st
    ~where:(Printf.sprintf "trailing (%d,%d)" i c)
    (vboth st (chk st i c) (tile st i c))

(* Verify an L-panel tile (column checksums only). *)
let verify_l st i c =
  st.verifications <- st.verifications + 1;
  count_outcome st
    ~where:(Printf.sprintf "L (%d,%d)" i c)
    (vcol st (chk st i c) (tile st i c))

(* Verify a U-panel tile (row checksums only). *)
let verify_u st i c =
  st.verifications <- st.verifications + 1;
  count_outcome st
    ~where:(Printf.sprintf "U (%d,%d)" i c)
    (vrow st (chk st i c) (tile st i c))

(* Verify a factored diagonal tile: the packed L\U storage is checked
   as its two triangular reconstructions; corrections must land in the
   triangle they claim to fix. *)
let verify_diag_factored st j =
  st.verifications <- st.verifications + 1;
  let packed = tile st j j in
  let dk = chk st j j in
  let lpart = Mat.tril ~diag:Types.Unit_diag packed in
  (match vcol st dk lpart with
  | Abft.Verify.Clean -> ()
  | Abft.Verify.Checksum_repaired { corrections = []; _ } -> ()
  | Abft.Verify.Corrected fixes
  | Abft.Verify.Checksum_repaired { corrections = _ :: _ as fixes; _ } ->
      List.iter
        (fun (f : Abft.Verify.correction) ->
          if f.Abft.Verify.row > f.Abft.Verify.col then begin
            Mat.set packed f.Abft.Verify.row f.Abft.Verify.col f.Abft.Verify.fixed;
            st.corrections <- st.corrections + 1
          end
          else
            raise
              (Recovery
                 (Printf.sprintf
                    "diag (%d,%d): correction outside the L triangle" j j)))
        fixes
  | Abft.Verify.Uncorrectable msg ->
      raise (Recovery (Printf.sprintf "diag L (%d,%d): %s" j j msg)));
  let upart = Mat.triu packed in
  match vrow st dk upart with
  | Abft.Verify.Clean -> ()
  | Abft.Verify.Checksum_repaired { corrections = []; _ } -> ()
  | Abft.Verify.Corrected fixes
  | Abft.Verify.Checksum_repaired { corrections = _ :: _ as fixes; _ } ->
      List.iter
        (fun (f : Abft.Verify.correction) ->
          if f.Abft.Verify.row <= f.Abft.Verify.col then begin
            Mat.set packed f.Abft.Verify.row f.Abft.Verify.col f.Abft.Verify.fixed;
            st.corrections <- st.corrections + 1
          end
          else
            raise
              (Recovery
                 (Printf.sprintf
                    "diag (%d,%d): correction outside the U triangle" j j)))
        fixes
  | Abft.Verify.Uncorrectable msg ->
      raise (Recovery (Printf.sprintf "diag U (%d,%d): %s" j j msg))

let run_attempt st ~scheme =
  let g = st.grid in
  let with_ft = st.chks <> None in
  let enhanced = match scheme with Abft.Scheme.Enhanced _ -> true | _ -> false in
  let online = scheme = Abft.Scheme.Online in
  let kk = Abft.Scheme.verification_interval scheme in
  (* Left-looking ("inner product") blocked LU: every tile receives all
     its trailing updates lazily, in the iteration that factors it. The
     factored panels are therefore re-read every later iteration —
     exactly the property that lets pre-read verification protect them
     from storage errors, and the reason the paper builds on MAGMA's
     inner-product Cholesky. *)
  for j = 0 to g - 1 do
    Injector.fire_storage st.injector ~iteration:j ~lookup:(lookup st);
    Injector.fire_device st.injector ~iteration:j ~lookup:(lookup st);
    let gate = j mod kk = 0 in
    (* ---- 1. lazy update of the diagonal tile:
            A_jj -= sum_{c<j} L(j,c) U(c,j). Inputs always verified
            (an undetected error here reaches GETF2 — the fail-stop
            path), mirroring the SYRK rule of Optimization 3. ---- *)
    if enhanced && with_ft then begin
      verify_trailing st j j;
      for c = 0 to j - 1 do
        verify_l st j c;
        verify_u st c j
      done
    end;
    let diag = tile st j j in
    for c = 0 to j - 1 do
      if with_ft && st.fused then begin
        (* column chains ride the tile GEMM; the row side multiplies by
           Lᵀ where the tile multiplies by U, so it stays a separate
           (d×B) pass *)
        Blas3.gemm ~alpha:(-1.) ~beta:1.
          ~fused:(Duochk.fuse_col ~l_chk:(chk st j c) (chk st j j))
          (tile st j c) (tile st c j) diag;
        Duochk.gemm_row ~c:(chk st j j) ~u_chk:(chk st c j) ~l:(tile st j c)
      end
      else begin
        Blas3.gemm ~alpha:(-1.) ~beta:1. (tile st j c) (tile st c j) diag;
        if with_ft then
          Duochk.gemm ~c:(chk st j j) ~l_chk:(chk st j c) ~u_chk:(chk st c j)
            ~l:(tile st j c) ~u:(tile st c j)
      end
    done;
    if j > 0 then
      Injector.fire_compute st.injector ~iteration:j ~op:Fault.Syrk
        ~block:(j, j) diag;
    if online && with_ft && j > 0 then verify_trailing st j j;
    (* ---- 2. GETF2 on the diagonal tile ---- *)
    if enhanced && with_ft then verify_trailing st j j;
    (try Lapack.getf2 diag
     with Lapack.Singular_pivot k ->
       raise
         (Recovery
            (Printf.sprintf "fail-stop: singular pivot at iteration %d, \
                             column %d" j k)));
    Injector.fire_compute st.injector ~iteration:j ~op:Fault.Potf2 ~block:(j, j)
      diag;
    if with_ft then Duochk.getf2 (chk st j j) ~lu_packed:diag;
    if online && with_ft then verify_diag_factored st j;
    let u_diag = Mat.triu diag in
    let l_diag = Mat.tril ~diag:Types.Unit_diag diag in
    (* ---- 3. column panel: lazy update then solve against U_jj.
            L(j,c)/U(c,j) were verified in step 1; the new inputs are
            the panel tiles and the older L rows, K-gated. ---- *)
    if j < g - 1 then begin
      if enhanced && with_ft && gate then begin
        for i = j + 1 to g - 1 do
          verify_trailing st i j;
          for c = 0 to j - 1 do
            verify_l st i c
          done
        done
      end;
      for i = j + 1 to g - 1 do
        let t = tile st i j in
        for c = 0 to j - 1 do
          if with_ft && st.fused then begin
            Blas3.gemm ~alpha:(-1.) ~beta:1.
              ~fused:(Duochk.fuse_col ~l_chk:(chk st i c) (chk st i j))
              (tile st i c) (tile st c j) t;
            Duochk.gemm_row ~c:(chk st i j) ~u_chk:(chk st c j)
              ~l:(tile st i c)
          end
          else begin
            Blas3.gemm ~alpha:(-1.) ~beta:1. (tile st i c) (tile st c j) t;
            if with_ft then
              Duochk.gemm ~c:(chk st i j) ~l_chk:(chk st i c)
                ~u_chk:(chk st c j) ~l:(tile st i c) ~u:(tile st c j)
          end
        done;
        if j > 0 then
          Injector.fire_compute st.injector ~iteration:j ~op:Fault.Gemm
            ~block:(i, j) t;
        if online && with_ft && j > 0 then verify_trailing st i j
      done;
      if enhanced && with_ft then verify_diag_factored st j;
      for i = j + 1 to g - 1 do
        let t = tile st i j in
        if with_ft && st.fused then
          Blas3.trsm
            ~fused:(Duochk.solve_col (chk st i j))
            Types.Right Types.Upper Types.No_trans Types.Non_unit_diag u_diag
            t
        else
          Blas3.trsm Types.Right Types.Upper Types.No_trans
            Types.Non_unit_diag u_diag t;
        Injector.fire_compute st.injector ~iteration:j ~op:Fault.Trsm
          ~block:(i, j) t;
        if with_ft && not st.fused then Duochk.col_panel (chk st i j) ~u_diag;
        if online && with_ft then verify_l st i j
      done;
      (* ---- 4. row panel: symmetric ---- *)
      if enhanced && with_ft && gate then begin
        for c = j + 1 to g - 1 do
          verify_trailing st j c;
          for k = 0 to j - 1 do
            verify_u st k c
          done
        done
      end;
      for c = j + 1 to g - 1 do
        let t = tile st j c in
        for k = 0 to j - 1 do
          if with_ft && st.fused then begin
            Blas3.gemm ~alpha:(-1.) ~beta:1.
              ~fused:(Duochk.fuse_col ~l_chk:(chk st j k) (chk st j c))
              (tile st j k) (tile st k c) t;
            Duochk.gemm_row ~c:(chk st j c) ~u_chk:(chk st k c)
              ~l:(tile st j k)
          end
          else begin
            Blas3.gemm ~alpha:(-1.) ~beta:1. (tile st j k) (tile st k c) t;
            if with_ft then
              Duochk.gemm ~c:(chk st j c) ~l_chk:(chk st j k)
                ~u_chk:(chk st k c) ~l:(tile st j k) ~u:(tile st k c)
          end
        done;
        if j > 0 then
          Injector.fire_compute st.injector ~iteration:j ~op:Fault.Gemm
            ~block:(j, c) t;
        if online && with_ft && j > 0 then verify_trailing st j c;
        Blas3.trsm Types.Left Types.Lower Types.No_trans Types.Unit_diag l_diag
          t;
        Injector.fire_compute st.injector ~iteration:j ~op:Fault.Trsm
          ~block:(j, c) t;
        if with_ft then Duochk.row_panel (chk st j c) ~l_diag;
        if online && with_ft then verify_u st j c
      done
    end
  done

let final_verification st ~scheme =
  if scheme = Abft.Scheme.Offline && st.chks <> None then
    for j = 0 to st.grid - 1 do
      (* detect-only, as in the Cholesky driver: propagated errors are
         not trustworthily correctable at the end *)
      st.verifications <- st.verifications + 1;
      let packed = tile st j j in
      let dk = chk st j j in
      let ok_l =
        Abft.Verify.check ~tol:st.tol (Duochk.col dk)
          (Mat.tril ~diag:Types.Unit_diag packed)
      in
      let ok_u =
        Abft.Verify.check ~tol:st.tol (Duochk.row dk)
          (Mat.transpose (Mat.triu packed))
      in
      if not (ok_l && ok_u) then
        raise (Recovery (Printf.sprintf "final verify: diag (%d,%d)" j j));
      for i = j + 1 to st.grid - 1 do
        st.verifications <- st.verifications + 1;
        if not (Abft.Verify.check ~tol:st.tol (Duochk.col (chk st i j)) (tile st i j))
        then raise (Recovery (Printf.sprintf "final verify: L (%d,%d)" i j));
        st.verifications <- st.verifications + 1;
        if
          not
            (Abft.Verify.check ~tol:st.tol
               (Duochk.row (chk st j i))
               (Mat.transpose (tile st j i)))
        then raise (Recovery (Printf.sprintf "final verify: U (%d,%d)" j i))
      done
    done

let assemble st =
  let n = st.grid * st.block in
  let packed = Mat.create n n in
  for i = 0 to st.grid - 1 do
    for c = 0 to st.grid - 1 do
      Mat.blit ~src:st.tiles.(i).(c) ~dst:packed ~row:(i * st.block)
        ~col:(c * st.block)
    done
  done;
  Lapack.lu_unpack packed

let factor ?(plan = []) ?(scheme = Abft.Scheme.enhanced ()) ?(block = 16)
    ?(tol = Abft.Verify.default_tol) ?(max_restarts = 3) ?(fused = true) a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Ft_lu.factor: input not square";
  let block = if n < block then n else block in
  if n <= 0 || n mod block <> 0 then
    invalid_arg
      (Printf.sprintf
         "Ft_lu.factor: order %d must be a positive multiple of block %d" n
         block);
  let g = n / block in
  let injector = Injector.create plan in
  let uncorrectable_events = ref 0 and fail_stops = ref 0 in
  let rec attempt k =
    let tiles =
      Array.init g (fun i ->
          Array.init g (fun c ->
              Mat.sub a ~row:(i * block) ~col:(c * block) ~rows:block
                ~cols:block))
    in
    let chks =
      if scheme = Abft.Scheme.No_ft then None
      else
        Some
          (Array.init g (fun i ->
               Array.init g (fun c -> Duochk.encode tiles.(i).(c))))
    in
    let st =
      {
        grid = g;
        block;
        tol;
        fused;
        tiles;
        chks;
        injector;
        verifications = 0;
        corrections = 0;
      }
    in
    match
      run_attempt st ~scheme;
      final_verification st ~scheme
    with
    | () -> (k, st, None)
    | exception Recovery msg ->
        incr uncorrectable_events;
        if String.length msg >= 9 && String.sub msg 0 9 = "fail-stop" then
          incr fail_stops;
        if k < max_restarts then attempt (k + 1) else (k, st, Some msg)
  in
  let restarts, st, failure = attempt 0 in
  let l, u = assemble st in
  let residual =
    Mat.norm_fro
      (Mat.sub_mat
         (Blas3.gemm_alloc l u
         [@abft.unverified
           "final residual: the product is subtracted from A on this very \
            line — the comparison against the input IS the verification"])
         a)
    /. Float.max 1. (Mat.norm_fro a)
  in
  let outcome =
    match failure with
    | Some msg -> Gave_up msg
    | None -> if residual <= residual_threshold then Success else Silent_corruption
  in
  {
    l;
    u;
    outcome;
    residual;
    stats =
      {
        verifications = st.verifications;
        corrections = st.corrections;
        uncorrectable_events = !uncorrectable_events;
        fail_stops = !fail_stops;
        restarts;
      };
    injections_fired = Injector.fired injector;
  }

let pp_outcome fmt = function
  | Success -> Format.pp_print_string fmt "success"
  | Silent_corruption -> Format.pp_print_string fmt "silent corruption"
  | Gave_up msg -> Format.fprintf fmt "gave up: %s" msg

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>outcome: %a@,residual: %.3e@,verifications: %d, corrections: %d, \
     restarts: %d, uncorrectable: %d, fail-stops: %d@,injections fired: %d@]"
    pp_outcome r.outcome r.residual r.stats.verifications r.stats.corrections
    r.stats.restarts r.stats.uncorrectable_events r.stats.fail_stops
    (List.length r.injections_fired)
