(** Fault-tolerant blocked LU decomposition (extension beyond the
    paper).

    The paper's group applied online ABFT to LU and QR in companion
    work (FT-ScaLAPACK, HPDC'14; Davies & Chen, HPDC'13); this module
    carries the *Enhanced* pre-read scheme over to LU on the same
    substrate. LU is two-sided, so every trailing tile maintains both
    column and row checksums ({!Duochk}); the L panel keeps column
    checksums (errors located by row), the U panel row checksums
    (located by column). Pivoting is omitted — row swaps would break
    the per-tile checksum relationship — so inputs must be diagonally
    dominant ({!Matrix.Lapack.diag_dominant}); a vanishing pivot
    fail-stops and triggers recovery, exactly like lost positive
    definiteness in the Cholesky driver.

    Numeric mode only: the timing story (schedules, optimizations) is
    identical in structure to Cholesky's and is not duplicated here. *)

open Matrix

type outcome = Success | Silent_corruption | Gave_up of string

type stats = {
  verifications : int;
  corrections : int;
  uncorrectable_events : int;
  fail_stops : int;
  restarts : int;
}

type report = {
  l : Mat.t;  (** unit-lower factor *)
  u : Mat.t;  (** upper factor *)
  outcome : outcome;
  residual : float;  (** ‖L·U − A‖_F / ‖A‖_F *)
  stats : stats;
  injections_fired : Injector.fired list;
}

val factor :
  ?plan:Fault.t ->
  ?scheme:Abft.Scheme.t ->
  ?block:int ->
  ?tol:float ->
  ?max_restarts:int ->
  ?fused:bool ->
  Mat.t ->
  report
(** [factor a] decomposes square [a] (unmodified) with per-tile dual
    checksums. Defaults: [Enhanced k=1], block 16 (or the order if
    smaller), {!Abft.Verify.default_tol}, 3 restarts, fused kernels
    ([?fused], default [true]: column checksum chains ride the tile
    GEMM/TRSM via {!Duochk.fuse_col}/{!Duochk.solve_col} and
    verification uses the carried-vs-fresh compare; the row side and
    GETF2 rules stay separate passes either way). Supported
    schemes: [No_ft], [Online] (post-update verification), [Enhanced]
    (pre-read, K-gated trailing verification; panel and diagonal inputs
    always verified, mirroring the SYRK rule of the paper's
    Optimization 3), [Offline] (detect-only final verification).

    Fault windows map as: [Potf2 ↦ GETF2] (diagonal tile),
    [Trsm ↦ either panel solve] (disambiguated by the target tile's
    coordinates), [Gemm ↦ trailing update], [In_storage] as in
    Cholesky.
    @raise Invalid_argument if [a] is not square or its order is not a
    positive multiple of the block size. *)

val residual_threshold : float
val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit
