open Hetsim
module Config = Cholesky.Config

type result = {
  makespan : float;
  gflops : float;
  reruns : int;
  engine : Engine.t;
  resilience : Resilient.stats;
  degraded : bool;
}

type pass_state = {
  cfg : Config.t;
  eng : Engine.t;
  res : Resilient.t;
  bal : Load_balancer.t option;
      (* trailing-panel split; None keeps the GPU-only panels *)
  g : int;
  b : int;
  d : int;
  streams : int;
  placement : Config.placement;
  mutable prev_chk_ready : Engine.event;
  mutable prev_panels : Engine.event;  (* previous iteration's panel solves *)
}

let recalc st = Kernel.Checksum_recalc { b = st.b; nchk = st.d }

(* A verification batch over [kernels] single-side tile recalculations
   (a both-sides tile contributes two). *)
let verify st ~deps ~count : Engine.event =
  if count = 0 then Engine.join st.eng deps
  else begin
    let deps =
      match st.placement with
      | Config.Cpu_offload ->
          let bytes = count * st.d * st.b * 8 in
          [ Resilient.transfer st.res ~deps ~phase:"chk-transfer" ~dir:`H2d bytes ]
      | _ -> deps
    in
    let batch =
      Resilient.submit_batch st.res ~deps ~phase:"chk-recalc"
        ~streams:st.streams
        (List.init count (fun _ -> recalc st))
    in
    Resilient.submit st.res ~deps:[ batch ] ~phase:"chk-compare" Engine.Gpu
      (Kernel.Checksum_compare { b = st.b * count; nchk = st.d })
  end

let chk_update st ~deps ~skinny_rows : Engine.event =
  if skinny_rows = 0 then Engine.join st.eng deps
  else begin
    let kernel = Kernel.Gemm { m = st.d * skinny_rows; n = st.b; k = st.b } in
    match st.placement with
    | Config.Auto -> assert false
    | Config.Gpu_inline ->
        Resilient.submit st.res ~deps ~phase:"chk-update" Engine.Gpu kernel
    | Config.Gpu_stream ->
        Resilient.submit_background st.res ~deps ~phase:"chk-update" kernel
    | Config.Cpu_offload ->
        Resilient.submit st.res ~deps ~phase:"chk-update" Engine.Cpu kernel
  end

let run_pass st ~with_ft ~enhanced ~online ~offline ~kk =
  let g = st.g and b = st.b in
  let eng = st.eng in
  let res = st.res in
  let block_bytes = 8 * b * b in
  let encode_ev =
    if with_ft then begin
      (* dual checksums: two single-side encodes per tile *)
      let ev =
        Resilient.submit_batch res ~phase:"chk-encode" ~streams:st.streams
          (List.init (2 * g * g) (fun _ -> recalc st))
      in
      match st.placement with
      | Config.Cpu_offload ->
          Resilient.transfer res ~deps:[ ev ] ~phase:"chk-transfer" ~dir:`D2h
            (2 * g * g * st.d * b * 8)
      | _ -> ev
    end
    else Engine.ready
  in
  st.prev_chk_ready <- encode_ev;
  st.prev_panels <- Engine.ready;
  for j = 0 to g - 1 do
    let gate = j mod kk = 0 in
    (* ---- panel split (load balancer): one decision per iteration,
       shared by both panel sides ---- *)
    let rem0 = g - 1 - j in
    let split =
      match st.bal with
      | None -> None
      | Some bal ->
          let kernel =
            if j > 0 then Kernel.Gemm { m = rem0 * b; n = b; k = j * b }
            else Kernel.Trsm { order = b; nrhs = rem0 * b }
          in
          Some (Load_balancer.tick bal ~kernel ~rows:rem0)
    in
    let cpu_rows =
      match split with None -> 0 | Some s -> s.Load_balancer.cpu_rows
    in
    (* operand staging for the CPU slice: its panel rows' current state
       (j factored blocks + live tile per row), once per iteration *)
    let stage_ev =
      if cpu_rows > 0 then
        Resilient.transfer res ~deps:[ st.prev_panels ] ~phase:"balance"
          ~dir:`D2h
          (cpu_rows * (j + 1) * block_bytes)
      else Engine.ready
    in
    let chk_updates = ref [] in
    let verify_deps = [ st.prev_chk_ready ] in
    let lc_panel_ev =
      if with_ft && st.placement = Config.Cpu_offload && j > 0 then
        (* both panels of every previous iteration are update operands *)
        Resilient.transfer res ~deps:[ st.prev_panels ] ~phase:"chk-transfer"
          ~dir:`D2h
          (2 * j * block_bytes)
      else Engine.ready
    in
    (* ---- lazy diagonal update; inputs always verified ---- *)
    let pre_diag =
      if enhanced && with_ft then
        verify st ~deps:verify_deps ~count:(2 + (2 * j))
      else Engine.ready
    in
    let diag_upd_ev =
      if j > 0 then
        Resilient.submit res ~deps:[ pre_diag ] ~phase:"compute" Engine.Gpu
          (Kernel.Gemm { m = b; n = b; k = j * b })
      else Engine.join eng [ pre_diag ]
    in
    if with_ft && j > 0 then
      chk_updates :=
        chk_update st ~deps:[ lc_panel_ev ] ~skinny_rows:(2 * j)
        :: !chk_updates;
    let post_diag_upd =
      if online && with_ft && j > 0 then
        verify st ~deps:[ diag_upd_ev ] ~count:2
      else diag_upd_ev
    in
    (* ---- GETF2 on the CPU between the two transfers ---- *)
    let d2h_ev =
      Resilient.transfer res ~deps:[ post_diag_upd ] ~dir:`D2h block_bytes
    in
    let getf2_ev =
      Resilient.submit res ~deps:[ d2h_ev ] ~phase:"compute" Engine.Cpu
        (Kernel.Host_flops (2. /. 3. *. (float_of_int b ** 3.)))
    in
    if with_ft then begin
      (* the two triangular checksum transforms, tiny *)
      let u = chk_update st ~deps:[ getf2_ev ] ~skinny_rows:2 in
      chk_updates := u :: !chk_updates
    end;
    let h2d_ev =
      Resilient.transfer res ~deps:[ getf2_ev ] ~dir:`H2d block_bytes
    in
    if online && with_ft then ignore (verify st ~deps:[ getf2_ev ] ~count:2);
    (* ---- panels ---- *)
    if j < g - 1 then begin
      let rem = g - 1 - j in
      let panel_evs = ref [] in
      List.iter
        (fun _side ->
          (* lazy update of the panel, K-gated pre-read verification of
             the panel tiles (both sides) and the older factored tiles *)
          let pre =
            if enhanced && with_ft && gate then
              verify st ~deps:verify_deps ~count:(rem * (2 + j))
            else Engine.ready
          in
          let upd_ev =
            if j > 0 then begin
              if cpu_rows = 0 then
                Resilient.submit res ~deps:[ pre ] ~phase:"compute" Engine.Gpu
                  (Kernel.Gemm { m = rem * b; n = b; k = j * b })
              else begin
                let gpu_part =
                  if rem - cpu_rows > 0 then
                    Resilient.submit res ~deps:[ pre ] ~phase:"compute"
                      Engine.Gpu
                      (Kernel.Gemm { m = (rem - cpu_rows) * b; n = b; k = j * b })
                  else Engine.ready
                in
                let cpu_part =
                  Resilient.submit res ~deps:[ pre; stage_ev ] ~phase:"compute"
                    Engine.Cpu
                    (Kernel.Gemm { m = cpu_rows * b; n = b; k = j * b })
                in
                Engine.join eng [ gpu_part; cpu_part ]
              end
            end
            else Engine.join eng [ pre ]
          in
          if with_ft && j > 0 then
            chk_updates :=
              chk_update st ~deps:[ lc_panel_ev ] ~skinny_rows:(2 * rem * j)
              :: !chk_updates;
          if online && with_ft && j > 0 then
            ignore (verify st ~deps:[ upd_ev ] ~count:(2 * rem));
          (* solve against the factored diagonal *)
          let pre_solve =
            if enhanced && with_ft then
              verify st ~deps:(h2d_ev :: verify_deps) ~count:2
            else Engine.ready
          in
          let solve_ev =
            if cpu_rows = 0 then
              Resilient.submit res
                ~deps:[ h2d_ev; upd_ev; pre_solve ]
                ~phase:"compute" Engine.Gpu
                (Kernel.Trsm { order = b; nrhs = rem * b })
            else begin
              let gpu_part =
                if rem - cpu_rows > 0 then
                  Resilient.submit res
                    ~deps:[ h2d_ev; upd_ev; pre_solve ]
                    ~phase:"compute" Engine.Gpu
                    (Kernel.Trsm { order = b; nrhs = (rem - cpu_rows) * b })
                else Engine.ready
              in
              (* the CPU slice reads the factored diagonal straight
                 from GETF2's host-resident output *)
              let cpu_part =
                Resilient.submit res
                  ~deps:[ getf2_ev; upd_ev; pre_solve; stage_ev ]
                  ~phase:"compute" Engine.Cpu
                  (Kernel.Trsm { order = b; nrhs = cpu_rows * b })
              in
              Engine.join eng [ gpu_part; cpu_part ]
            end
          in
          panel_evs := solve_ev :: !panel_evs;
          if with_ft then
            chk_updates :=
              chk_update st ~deps:[ solve_ev ] ~skinny_rows:rem :: !chk_updates;
          if online && with_ft then
            ignore (verify st ~deps:[ solve_ev ] ~count:rem))
        [ `Col; `Row ];
      st.prev_panels <- Engine.join eng !panel_evs
    end;
    st.prev_chk_ready <- Engine.join eng !chk_updates
  done;
  if offline then
    (* end-of-run detect-only sweep over both sides of every tile *)
    ignore (verify st ~deps:[ st.prev_chk_ready ] ~count:(2 * g * g))

let run ?(plan = []) ?(d = 2) ?policy ?(fault_seed = 0) cfg ~n =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Schedule_lu.run: " ^ e));
  let b = Config.block_size cfg in
  if n <= 0 || n mod b <> 0 then
    invalid_arg
      (Printf.sprintf
         "Schedule_lu.run: n=%d must be a positive multiple of the block %d" n b);
  let scheme = cfg.Config.scheme in
  let with_ft = scheme <> Abft.Scheme.No_ft in
  let enhanced = match scheme with Abft.Scheme.Enhanced _ -> true | _ -> false in
  let online = scheme = Abft.Scheme.Online in
  let offline = scheme = Abft.Scheme.Offline in
  let kk = Abft.Scheme.verification_interval scheme in
  let placement =
    if with_ft then Config.resolve_placement cfg ~n else Config.Gpu_inline
  in
  let eng = Engine.create ~seed:fault_seed cfg.Config.machine in
  let bal = Config.balancer cfg in
  let res = Resilient.create ?policy ?balancer:bal ~seed:fault_seed eng in
  let st =
    {
      cfg;
      eng;
      res;
      bal;
      g = n / b;
      b;
      d;
      streams = Config.effective_recalc_streams cfg;
      placement;
      prev_chk_ready = Engine.ready;
      prev_panels = Engine.ready;
    }
  in
  run_pass st ~with_ft ~enhanced ~online ~offline ~kk;
  let transfer_faults =
    (Resilient.stats res).Resilient.corrupted_transfers > 0
    && not (Abft.Scheme.corrects_storage_errors scheme)
  in
  let reruns =
    if Cholesky.Schedule.uncorrected scheme plan <> [] || transfer_faults then 1
    else 0
  in
  if reruns > 0 then run_pass st ~with_ft ~enhanced ~online ~offline ~kk;
  let makespan = Engine.makespan eng in
  {
    makespan;
    gflops = 2. *. (float_of_int n ** 3.) /. 3. /. makespan /. 1e9;
    reruns;
    engine = eng;
    resilience = Resilient.stats res;
    degraded = Resilient.degraded res;
  }
