(** Timing-mode schedule for the FT-LU extension — the LU analogue of
    {!Cholesky.Schedule}, on the same {!Hetsim.Engine} and with the same
    modelling conventions (one engine operation per kernel class per
    iteration; verification as concurrent BLAS-2 batches; checksum
    updating routed per Optimization-2 placement; uncorrected faults
    charge one full recovery pass).

    The schedule is the left-looking order {!Ft_lu} executes: lazy
    diagonal update → GETF2 on the CPU (between the two PCIe diagonal
    transfers, overlapping the panels' lazy GEMMs) → column panel →
    row panel. Dual checksums double the verification and update
    traffic relative to Cholesky's single-sided encoding — the honest
    price of protecting both factors. *)

type result = {
  makespan : float;
  gflops : float;  (** (2n³/3) / makespan / 1e9 *)
  reruns : int;
  engine : Hetsim.Engine.t;
  resilience : Hetsim.Resilient.stats;
      (** device-failure accounting, as in {!Cholesky.Schedule} *)
  degraded : bool;
}

val run :
  ?plan:Fault.t ->
  ?d:int ->
  ?policy:Hetsim.Resilient.policy ->
  ?fault_seed:int ->
  Cholesky.Config.t ->
  n:int ->
  result
(** [run cfg ~n] simulates FT-LU of an n×n matrix on the config's
    machine. The config's scheme/optimizations are honoured exactly as
    in {!Cholesky.Schedule.run}; fault classification reuses
    {!Cholesky.Schedule.uncorrected} (the [Potf2] window reads as
    GETF2).
    @raise Invalid_argument if [n] is not a positive multiple of the
    block size. *)
