open Types

let gemv ?(trans = No_trans) ?(alpha = 1.) ?(beta = 0.) a x y =
  let m = Mat.rows a and n = Mat.cols a in
  let xr, yr = match trans with No_trans -> (n, m) | Trans -> (m, n) in
  if Array.length x <> xr || Array.length y <> yr then
    Mat.dim_error "gemv" "a=%dx%d x=%d y=%d trans=%a" m n (Array.length x)
      (Array.length y) pp_trans trans;
  (match beta with
  | 0. -> Vec.fill y 0.
  | 1. -> ()
  | b -> Vec.scal b y);
  match trans with
  | No_trans ->
      (* y += alpha * A x : accumulate column by column (stride-1 over the
         column-major storage). *)
      for j = 0 to n - 1 do
        let s = alpha *. Array.unsafe_get x j in
        if s <> 0. then
          for i = 0 to m - 1 do
            Array.unsafe_set y i
              (Array.unsafe_get y i +. (s *. Mat.unsafe_get a i j))
          done
      done
  | Trans ->
      for j = 0 to n - 1 do
        let acc = ref 0. in
        for i = 0 to m - 1 do
          acc := !acc +. (Mat.unsafe_get a i j *. Array.unsafe_get x i)
        done;
        Array.unsafe_set y j (Array.unsafe_get y j +. (alpha *. !acc))
      done

let gemv_alloc ?(trans = No_trans) ?(alpha = 1.) a x =
  let y =
    Vec.create (match trans with No_trans -> Mat.rows a | Trans -> Mat.cols a)
  in
  gemv ~trans ~alpha ~beta:0. a x y;
  y

let ger ?(alpha = 1.) x y a =
  let m = Mat.rows a and n = Mat.cols a in
  if Array.length x <> m || Array.length y <> n then
    Mat.dim_error "ger" "a=%dx%d x=%d y=%d" m n (Array.length x)
      (Array.length y);
  for j = 0 to n - 1 do
    let s = alpha *. Array.unsafe_get y j in
    if s <> 0. then
      for i = 0 to m - 1 do
        Mat.unsafe_set a i j (Mat.unsafe_get a i j +. (s *. Array.unsafe_get x i))
      done
  done

let syr ?(alpha = 1.) uplo x a =
  let n = Mat.rows a in
  if Mat.cols a <> n || Array.length x <> n then
    Mat.dim_error "syr" "a=%dx%d x=%d" n (Mat.cols a) (Array.length x);
  for j = 0 to n - 1 do
    let s = alpha *. Array.unsafe_get x j in
    if s <> 0. then begin
      let lo, hi = match uplo with Lower -> (j, n - 1) | Upper -> (0, j) in
      for i = lo to hi do
        Mat.unsafe_set a i j (Mat.unsafe_get a i j +. (s *. Array.unsafe_get x i))
      done
    end
  done

(* Effective orientation of the triangle actually traversed: transposing a
   lower-triangular solve is an upper-triangular solve over the transposed
   accesses. We implement the four cases directly on [get a i j] or
   [get a j i]. *)
let trsv uplo trans diag a x =
  let n = Mat.rows a in
  if Mat.cols a <> n || Array.length x <> n then
    Mat.dim_error "trsv" "a=%dx%d x=%d" n (Mat.cols a) (Array.length x);
  let coef i j =
    match trans with No_trans -> Mat.unsafe_get a i j | Trans -> Mat.unsafe_get a j i
  in
  let lower =
    match (uplo, trans) with
    | Lower, No_trans | Upper, Trans -> true
    | Upper, No_trans | Lower, Trans -> false
  in
  let solve_pivot i acc =
    let rhs = Array.unsafe_get x i -. acc in
    match diag with
    | Unit_diag -> rhs
    | Non_unit_diag ->
        let d = coef i i in
        if Float.equal d 0. then failwith "trsv: zero pivot";
        rhs /. d
  in
  if lower then
    for i = 0 to n - 1 do
      let acc = ref 0. in
      for j = 0 to i - 1 do
        acc := !acc +. (coef i j *. Array.unsafe_get x j)
      done;
      Array.unsafe_set x i (solve_pivot i !acc)
    done
  else
    for i = n - 1 downto 0 do
      let acc = ref 0. in
      for j = i + 1 to n - 1 do
        acc := !acc +. (coef i j *. Array.unsafe_get x j)
      done;
      Array.unsafe_set x i (solve_pivot i !acc)
    done

let trmv uplo trans diag a x =
  let n = Mat.rows a in
  if Mat.cols a <> n || Array.length x <> n then
    Mat.dim_error "trmv" "a=%dx%d x=%d" n (Mat.cols a) (Array.length x);
  let coef i j =
    match trans with No_trans -> Mat.unsafe_get a i j | Trans -> Mat.unsafe_get a j i
  in
  let lower =
    match (uplo, trans) with
    | Lower, No_trans | Upper, Trans -> true
    | Upper, No_trans | Lower, Trans -> false
  in
  let y = Vec.create n in
  for i = 0 to n - 1 do
    let lo, hi = if lower then (0, i) else (i, n - 1) in
    let acc = ref 0. in
    for j = lo to hi do
      let c =
        if j = i then
          match diag with Unit_diag -> 1. | Non_unit_diag -> coef i i
        else coef i j
      in
      acc := !acc +. (c *. Array.unsafe_get x j)
    done;
    y.(i) <- !acc
  done;
  Array.blit y 0 x 0 n
