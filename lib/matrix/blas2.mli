(** BLAS level-2 kernels (matrix–vector).

    These are the operations whose low GPU efficiency motivates the
    paper's Optimization 1: checksum recalculation is a batch of
    independent [gemv]-shaped products that a GPU runs poorly one at a
    time. The numeric definitions here are the reference semantics; the
    simulated device cost of each kernel lives in [Hetsim.Cost_model]. *)

open Types

val gemv :
  ?trans:trans -> ?alpha:float -> ?beta:float -> Mat.t -> Vec.t -> Vec.t -> unit
(** [gemv ~trans ~alpha ~beta a x y] computes
    [y <- alpha * op(a) * x + beta * y] in place, where [op] is identity
    or transpose. Defaults: [trans = No_trans], [alpha = 1.],
    [beta = 0.].
    @raise Mat.Dimension_mismatch on incompatible shapes. *)

val gemv_alloc : ?trans:trans -> ?alpha:float -> Mat.t -> Vec.t -> Vec.t
(** Allocating convenience wrapper: returns [alpha * op(a) * x]. *)

val ger : ?alpha:float -> Vec.t -> Vec.t -> Mat.t -> unit
(** [ger ~alpha x y a] computes the rank-1 update
    [a <- a + alpha * x * yᵀ] in place. Default [alpha = 1.]. *)

val syr : ?alpha:float -> uplo -> Vec.t -> Mat.t -> unit
(** [syr ~alpha uplo x a] computes the symmetric rank-1 update
    [a <- a + alpha * x * xᵀ], touching only the [uplo] triangle. *)

val trsv : uplo -> trans -> diag -> Mat.t -> Vec.t -> unit
(** [trsv uplo trans diag a x] solves [op(a) * z = x] for [z] in place
    in [x], with [a] triangular as described by [uplo]/[diag].
    @raise Mat.Dimension_mismatch on incompatible shapes.
    @raise Failure if a zero pivot is met with [Non_unit_diag]. *)

val trmv : uplo -> trans -> diag -> Mat.t -> Vec.t -> unit
(** [trmv uplo trans diag a x] computes [x <- op(a) * x] with [a]
    triangular. *)
