open Types
module Pool = Parallel.Pool

(* Debug build switch: ABFT_BOUNDS_CHECK=1 routes every unsafe-access
   micro-kernel in this module through bounds-checked Array.get/set.
   The branch is taken once per panel/block, not per element, so the
   release path keeps its unchecked inner loops. *)
let bounds_checked =
  match Sys.getenv_opt "ABFT_BOUNDS_CHECK" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | _ -> false

(* Checksum panels carried through a fused kernel call. Each chain pair
   (f_a.(i), f_c.(i)) is one replica: the weighted checksum rows of
   op(a) and of c. The kernel applies the same update to the chain that
   it applies to c — the chain is algebraically d extra rows of a
   virtual [op(a); chk] stack — with chain i reading only chain i, so
   replica chains stay bitwise independent. [f_fresh], when set,
   receives the weighted reduction of the *finished* c (needs
   [f_weights]), computed while the output panel is still in cache. *)
type fuse = {
  f_a : Mat.t array;
  f_c : Mat.t array;
  f_fresh : Mat.t option;
  f_weights : Mat.t option;
}

(* op(a) dimensions without materializing the transpose. *)
let op_dims trans a =
  match trans with
  | No_trans -> (Mat.rows a, Mat.cols a)
  | Trans -> (Mat.cols a, Mat.rows a)

let op_get trans a i j =
  match trans with No_trans -> Mat.unsafe_get a i j | Trans -> Mat.unsafe_get a j i

let scale_in_place beta c =
  match beta with
  | 1. -> ()
  | 0. ->
      for j = 0 to Mat.cols c - 1 do
        for i = 0 to Mat.rows c - 1 do
          Mat.unsafe_set c i j 0.
        done
      done
  | b ->
      for j = 0 to Mat.cols c - 1 do
        for i = 0 to Mat.rows c - 1 do
          Mat.unsafe_set c i j (b *. Mat.unsafe_get c i j)
        done
      done

(* ------------------------------------------------------------------ *)
(* Seed reference kernels (naive triple loops).                        *)
(*                                                                     *)
(* Kept verbatim: they are the fallback for tiny operands, the         *)
(* reference the tiled kernels are property-tested against, and the    *)
(* baseline bench_parallel reports speedups over.                      *)
(* ------------------------------------------------------------------ *)

let gemm_naive ?(transa = No_trans) ?(transb = No_trans) ?(alpha = 1.)
    ?(beta = 0.) a b c =
  let m, k = op_dims transa a in
  let kb, n = op_dims transb b in
  if k <> kb || Mat.rows c <> m || Mat.cols c <> n then
    Mat.dim_error "gemm" "op(a)=%dx%d op(b)=%dx%d c=%dx%d" m k kb n (Mat.rows c)
      (Mat.cols c);
  scale_in_place beta c;
  (* Loop order j-l-i keeps the innermost loop stride-1 in both [c] and
     (for transa = No_trans) [a]. *)
  for j = 0 to n - 1 do
    for l = 0 to k - 1 do
      let s = alpha *. op_get transb b l j in
      if s <> 0. then
        for i = 0 to m - 1 do
          Mat.unsafe_set c i j (Mat.unsafe_get c i j +. (s *. op_get transa a i l))
        done
    done
  done

let syrk_naive ?(trans = No_trans) ?(alpha = 1.) ?(beta = 0.) uplo a c =
  let n, k = op_dims trans a in
  if Mat.rows c <> n || Mat.cols c <> n then
    Mat.dim_error "syrk" "op(a)=%dx%d c=%dx%d" n k (Mat.rows c) (Mat.cols c);
  for j = 0 to n - 1 do
    let lo, hi = match uplo with Lower -> (j, n - 1) | Upper -> (0, j) in
    for i = lo to hi do
      let acc = ref 0. in
      for l = 0 to k - 1 do
        acc := !acc +. (op_get trans a i l *. op_get trans a j l)
      done;
      let prev = match beta with 0. -> 0. | b -> b *. Mat.unsafe_get c i j in
      Mat.unsafe_set c i j (prev +. (alpha *. !acc))
    done
  done

let check_trsm_shapes name side a b =
  let n = Mat.rows a in
  if Mat.cols a <> n then Mat.dim_error name "a not square: %dx%d" n (Mat.cols a);
  let need = match side with Left -> Mat.rows b | Right -> Mat.cols b in
  if need <> n then
    Mat.dim_error name "a=%dx%d b=%dx%d side=%a" n n (Mat.rows b) (Mat.cols b)
      pp_side side

(* trsm reduced to a trsv per column (Left) or per row (Right): clear,
   and exactly the dataflow the checksum update for TRSM relies on. *)
let trsm_naive ?(alpha = 1.) side uplo trans diag a b =
  check_trsm_shapes "trsm" side a b;
  if alpha <> 1. then scale_in_place alpha b;
  match side with
  | Left ->
      for j = 0 to Mat.cols b - 1 do
        let x = Mat.col b j in
        Blas2.trsv uplo trans diag a x;
        Mat.set_col b j x
      done
  | Right ->
      (* X * op(a) = b  ⇔  op(a)ᵀ * Xᵀ = bᵀ: solve a transposed trsv per
         row of b. *)
      for i = 0 to Mat.rows b - 1 do
        let x = Mat.row b i in
        Blas2.trsv uplo (flip_trans trans) diag a x;
        Mat.set_row b i x
      done

(* ------------------------------------------------------------------ *)
(* Cache-blocked tiled kernels with column-panel parallelism.          *)
(*                                                                     *)
(* Determinism contract: every element of the output is computed by    *)
(* exactly one pool task, and its reduction order over the inner       *)
(* dimension is fixed by the loop structure alone (ascending l),       *)
(* independent of panel boundaries — so results are bitwise identical  *)
(* for every pool size, which keeps the ABFT rounding thresholds       *)
(* valid across ABFT_DOMAINS settings.                                 *)
(* ------------------------------------------------------------------ *)

(* Block sizes, tuned per cache level: [kc] keeps one packed alpha·B
   block (kc × panel ≤ 64 KB) L1/L2-resident, [mc] sizes the a/c strip
   the saxpy micro-kernel streams (mc × kc of [a] ≈ 64 KB, L2), [jb] is
   the parallel work unit (narrow, so triangular workloads balance),
   and [nc_seq] widens sequential panels so each packed block and each
   kc×mc block of [a] is reused across more columns. *)
let kc = 64 (* inner-dimension block *)
let mc = 128 (* row block: one c/a strip of the micro-kernel *)
let jb = 16 (* column-panel width = one unit of parallel work *)
let nc_seq = 128 (* sequential column-panel width *)

(* Below [seq_cutoff] flops-ish the seed loops win (no blocking setup);
   above [par_cutoff] the batch is worth fanning out across domains. *)
let seq_cutoff = 32_768
let par_cutoff = 2_000_000

(* ------------------------------------------------------------------ *)
(* Fused-checksum helpers.                                             *)
(*                                                                     *)
(* A chain is (chk_a data, chk_c data, d) with both matrices d-row     *)
(* column-major; a fresh slot is (fresh data, weights data, d). Chain  *)
(* accumulation follows the exact ascending-l order of the naive       *)
(* separate-pass update (Abft.Update applies gemm_naive to the d×B     *)
(* checksum blocks), so carrying the chain through the fused kernel    *)
(* is bitwise identical to the separate pass.                          *)
(* ------------------------------------------------------------------ *)

(* chk_c(:,j) += sum_l (alpha · op(b)(l,j)) · chk_a(:,l) over columns
   [j0, j1), for every replica chain. The d running sums live in locals
   across the l sweep (one store per (j,r) instead of a load+store per
   l) — the additions happen in the same ascending-l order either way,
   so the result is bitwise unchanged. d = 2 is the deployed scheme and
   gets a branch-free specialization. *)
let fuse_accum ~alpha ~bget ~k ~chains j0 j1 =
  let one_chain (fad, fcd, d) =
    if d = 2 && not bounds_checked then
      for j = j0 to j1 - 1 do
        let cof = j * 2 in
        let acc0 = ref (Array.unsafe_get fcd cof)
        and acc1 = ref (Array.unsafe_get fcd (cof + 1)) in
        for l = 0 to k - 1 do
          let s = alpha *. bget l j in
          if s <> 0. then begin
            let aof = l * 2 in
            acc0 := !acc0 +. (s *. Array.unsafe_get fad aof);
            acc1 := !acc1 +. (s *. Array.unsafe_get fad (aof + 1))
          end
        done;
        Array.unsafe_set fcd cof !acc0;
        Array.unsafe_set fcd (cof + 1) !acc1
      done
    else
      for j = j0 to j1 - 1 do
        let cof = j * d in
        for l = 0 to k - 1 do
          let s = alpha *. bget l j in
          if s <> 0. then begin
            let aof = l * d in
            if bounds_checked then
              for r = 0 to d - 1 do
                fcd.(cof + r) <- fcd.(cof + r) +. (s *. fad.(aof + r))
              done
            else
              for r = 0 to d - 1 do
                Array.unsafe_set fcd (cof + r)
                  (Array.unsafe_get fcd (cof + r)
                  +. (s *. Array.unsafe_get fad (aof + r)))
              done
          end
        done
      done
  in
  match chains with
  | [| (fa0, fc0, 2); (fa1, fc1, 2) |] when not bounds_checked ->
      (* the deployed scheme (two replica chains, d = 2) in one sweep:
         the — possibly strided — b operand is read once per (j,l)
         instead of once per chain; each chain still accumulates in
         ascending-l order, so both stay bitwise identical to
         [one_chain] *)
      for j = j0 to j1 - 1 do
        let cof = j * 2 in
        let a00 = ref (Array.unsafe_get fc0 cof)
        and a01 = ref (Array.unsafe_get fc0 (cof + 1))
        and a10 = ref (Array.unsafe_get fc1 cof)
        and a11 = ref (Array.unsafe_get fc1 (cof + 1)) in
        for l = 0 to k - 1 do
          let s = alpha *. bget l j in
          if s <> 0. then begin
            let aof = l * 2 in
            a00 := !a00 +. (s *. Array.unsafe_get fa0 aof);
            a01 := !a01 +. (s *. Array.unsafe_get fa0 (aof + 1));
            a10 := !a10 +. (s *. Array.unsafe_get fa1 aof);
            a11 := !a11 +. (s *. Array.unsafe_get fa1 (aof + 1))
          end
        done;
        Array.unsafe_set fc0 cof !a00;
        Array.unsafe_set fc0 (cof + 1) !a01;
        Array.unsafe_set fc1 cof !a10;
        Array.unsafe_set fc1 (cof + 1) !a11
      done
  | _ -> Array.iter one_chain chains

(* fresh(r,j) = sum_i weights(i,r) · c(i,j) over columns [j0, j1):
   the verification-side reduction, run while the freshly written
   panel of c is still in cache. Ascending-i order — bitwise identical
   to a separate Checksum.recompute pass. *)
let fresh_reduce cd ~m ~fresh j0 j1 =
  match fresh with
  | None -> ()
  | Some (fd, wd, d) ->
      if d = 2 && not bounds_checked then
        (* both weight rows in one ascending-i sweep: the c column is
           read once instead of twice, and each accumulator still sums
           in the same order as the per-row loop below — bitwise
           unchanged, half the memory traffic *)
        for j = j0 to j1 - 1 do
          let cof = j * m in
          let acc0 = ref 0. and acc1 = ref 0. in
          for i = 0 to m - 1 do
            let ci = Array.unsafe_get cd (cof + i) in
            acc0 := !acc0 +. (Array.unsafe_get wd i *. ci);
            acc1 := !acc1 +. (Array.unsafe_get wd (m + i) *. ci)
          done;
          fd.(j * 2) <- !acc0;
          fd.((j * 2) + 1) <- !acc1
        done
      else
        for j = j0 to j1 - 1 do
          let cof = j * m in
          for r = 0 to d - 1 do
            let wof = r * m in
            let acc = ref 0. in
            if bounds_checked then
              for i = 0 to m - 1 do
                acc := !acc +. (wd.(wof + i) *. cd.(cof + i))
              done
            else
              for i = 0 to m - 1 do
                acc :=
                  !acc
                  +. (Array.unsafe_get wd (wof + i)
                     *. Array.unsafe_get cd (cof + i))
              done;
            fd.((j * d) + r) <- !acc
          done
        done

let chk_reduce ~weights c ~into =
  let m = Mat.rows c and n = Mat.cols c in
  let d = Mat.cols weights in
  if Mat.rows weights <> m || Mat.rows into <> d || Mat.cols into <> n then
    Mat.dim_error "chk_reduce" "weights=%dx%d c=%dx%d into=%dx%d"
      (Mat.rows weights) d m n (Mat.rows into) (Mat.cols into);
  fresh_reduce c.Mat.data ~m ~fresh:(Some (into.Mat.data, weights.Mat.data, d))
    0 n

(* Same reduction over a symmetric matrix stored in one triangle:
   mirrored reads for the unstored half, still ascending-i per column.
   This is the verify-side companion of a fused [syrk], whose output
   never materializes the opposite triangle. *)
let chk_reduce_sym uplo ~weights c ~into =
  let n = Mat.rows c in
  let d = Mat.cols weights in
  if
    Mat.cols c <> n || Mat.rows weights <> n || Mat.rows into <> d
    || Mat.cols into <> n
  then
    Mat.dim_error "chk_reduce_sym" "weights=%dx%d c=%dx%d into=%dx%d"
      (Mat.rows weights) d n (Mat.cols c) (Mat.rows into) (Mat.cols into);
  let cd = c.Mat.data and wd = weights.Mat.data and fd = into.Mat.data in
  let get =
    match uplo with
    | Lower -> fun i j -> if i >= j then cd.((j * n) + i) else cd.((i * n) + j)
    | Upper -> fun i j -> if i <= j then cd.((j * n) + i) else cd.((i * n) + j)
  in
  for j = 0 to n - 1 do
    for r = 0 to d - 1 do
      let wof = r * n in
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. (wd.(wof + i) *. get i j)
      done;
      fd.((j * d) + r) <- !acc
    done
  done

(* Validate a [fuse] against the call's op(a)=m×k, c=m×n shapes, fold
   [beta] into the carried chains (they scale exactly as c does), and
   strip down to the raw arrays the micro-kernels consume. *)
let prep_fuse name ~beta ~m ~k ~n fused =
  match fused with
  | None -> ([||], None)
  | Some { f_a; f_c; f_fresh; f_weights } ->
      if Array.length f_a <> Array.length f_c then
        invalid_arg (name ^ ": fused chains need matching f_a/f_c");
      let chains =
        Array.init (Array.length f_a) (fun i ->
            let fa = f_a.(i) and fc = f_c.(i) in
            let d = Mat.rows fa in
            if Mat.rows fc <> d || Mat.cols fa <> k || Mat.cols fc <> n then
              Mat.dim_error name
                "fused chain %d: chk_a=%dx%d chk_c=%dx%d for op(a)=%dx%d \
                 c=%dx%d"
                i d (Mat.cols fa) (Mat.rows fc) (Mat.cols fc) m k m n;
            scale_in_place beta fc;
            (fa.Mat.data, fc.Mat.data, d))
      in
      let fresh =
        match f_fresh with
        | None -> None
        | Some f -> (
            match f_weights with
            | None -> invalid_arg (name ^ ": f_fresh requires f_weights")
            | Some w ->
                let d = Mat.rows f in
                if
                  Mat.cols f <> n || Mat.rows w <> m || Mat.cols w <> d
                then
                  Mat.dim_error name "fused fresh=%dx%d weights=%dx%d c=%dx%d"
                    d (Mat.cols f) (Mat.rows w) (Mat.cols w) m n;
                Some (f.Mat.data, w.Mat.data, d))
      in
      (chains, fresh)

(* Fan a column range out across the pool in fixed-width panels. The
   panel grid depends only on [n], never on the pool, and tasks claim
   panels dynamically so triangular workloads balance. *)
let over_panels pool ~parallel ~n body =
  if not parallel then body 0 n
  else begin
    let npanels = (n + jb - 1) / jb in
    Pool.parallel_for ~chunk:1 pool ~lo:0 ~hi:npanels (fun p ->
        body (p * jb) (min n ((p * jb) + jb)))
  end

(* c <- c + alpha * a * B over columns [j0, j1), a m×k untransposed,
   B supplied by [bget l j]. Each kc-block of alpha·B is packed into a
   contiguous panel buffer first, so the saxpy micro-kernel streams
   [a] and [c] at stride 1 and reads its scalars from a hot L1 strip;
   one kc×mc block of [a] is then reused across the whole panel.
   Checksum [chains] ride each packed block as d extra rows of [a]
   (one pass per block, outside the mc row loop), and [fresh] reduces
   the finished panel columns while they are still in cache. *)
let gemm_panel_n ~alpha ad cd ~m ~k ~bget ~chains ~fresh j0 j1 =
  let w = j1 - j0 in
  let bp = Array.make (kc * w) 0. in
  let nlb = (k + kc - 1) / kc in
  let nib = (m + mc - 1) / mc in
  for lb = 0 to nlb - 1 do
    let l0 = lb * kc and l1 = min k ((lb * kc) + kc) in
    let kw = l1 - l0 in
    (* pack alpha·op(b)[l0..l1) × [j0..j1), column-major in the block *)
    if bounds_checked then
      for j = j0 to j1 - 1 do
        let off = (j - j0) * kw in
        for l = l0 to l1 - 1 do
          bp.(off + l - l0) <- alpha *. bget l j
        done
      done
    else
      for j = j0 to j1 - 1 do
        let off = (j - j0) * kw in
        for l = l0 to l1 - 1 do
          Array.unsafe_set bp (off + l - l0) (alpha *. bget l j)
        done
      done;
    for ib = 0 to nib - 1 do
      let i0 = ib * mc and i1 = min m ((ib * mc) + mc) in
      for j = j0 to j1 - 1 do
        let cof = j * m in
        let boff = (j - j0) * kw in
        if bounds_checked then
          for l = 0 to kw - 1 do
            let s = bp.(boff + l) in
            if s <> 0. then begin
              let aof = (l0 + l) * m in
              for i = i0 to i1 - 1 do
                cd.(cof + i) <- cd.(cof + i) +. (s *. ad.(aof + i))
              done
            end
          done
        else
          for l = 0 to kw - 1 do
            let s = Array.unsafe_get bp (boff + l) in
            if s <> 0. then begin
              let aof = (l0 + l) * m in
              for i = i0 to i1 - 1 do
                Array.unsafe_set cd (cof + i)
                  (Array.unsafe_get cd (cof + i)
                  +. (s *. Array.unsafe_get ad (aof + i)))
              done
            end
          done
      done
    done;
    (* carried chains: the same packed scalars applied to the d-row
       checksum stack; lb ascends, so the global accumulation order
       over l matches the separate-pass update exactly. Running sums
       stay in locals across the kw sweep (stores once per (j,r), not
       per l) — same ascending-l additions, bitwise unchanged. *)
    Array.iter
      (fun (fad, fcd, d) ->
        if d = 2 && not bounds_checked then
          for j = j0 to j1 - 1 do
            let boff = (j - j0) * kw in
            let cof = j * 2 in
            let acc0 = ref (Array.unsafe_get fcd cof)
            and acc1 = ref (Array.unsafe_get fcd (cof + 1)) in
            for l = 0 to kw - 1 do
              let s = Array.unsafe_get bp (boff + l) in
              if s <> 0. then begin
                let aof = (l0 + l) * 2 in
                acc0 := !acc0 +. (s *. Array.unsafe_get fad aof);
                acc1 := !acc1 +. (s *. Array.unsafe_get fad (aof + 1))
              end
            done;
            Array.unsafe_set fcd cof !acc0;
            Array.unsafe_set fcd (cof + 1) !acc1
          done
        else
          for j = j0 to j1 - 1 do
            let boff = (j - j0) * kw in
            let cof = j * d in
            for l = 0 to kw - 1 do
              let s =
                if bounds_checked then bp.(boff + l)
                else Array.unsafe_get bp (boff + l)
              in
              if s <> 0. then begin
                let aof = (l0 + l) * d in
                if bounds_checked then
                  for r = 0 to d - 1 do
                    fcd.(cof + r) <- fcd.(cof + r) +. (s *. fad.(aof + r))
                  done
                else
                  for r = 0 to d - 1 do
                    Array.unsafe_set fcd (cof + r)
                      (Array.unsafe_get fcd (cof + r)
                      +. (s *. Array.unsafe_get fad (aof + r)))
                  done
              end
            done
          done)
      chains
  done;
  fresh_reduce cd ~m ~fresh j0 j1

(* c <- c + alpha * aᵀ * b over columns [j0, j1), a physical k×m,
   b physical k×n untransposed: stride-1 dot products; the b panel
   stays in cache across the whole i sweep. *)
let gemm_panel_tn ~alpha ad bd cd ~m ~k j0 j1 =
  for i = 0 to m - 1 do
    let aof = i * k in
    for j = j0 to j1 - 1 do
      let bof = j * k in
      let acc = ref 0. in
      for l = 0 to k - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get ad (aof + l) *. Array.unsafe_get bd (bof + l))
      done;
      let ci = (j * m) + i in
      Array.unsafe_set cd ci (Array.unsafe_get cd ci +. (alpha *. !acc))
    done
  done

let resolve_pool ~work = function
  | Some p -> if work >= par_cutoff && Pool.size p > 1 then Some p else None
  | None ->
      if work >= par_cutoff then begin
        let p = Pool.default () in
        if Pool.size p > 1 then Some p else None
      end
      else None

let gemm ?pool ?(transa = No_trans) ?(transb = No_trans) ?(alpha = 1.)
    ?(beta = 0.) ?fused a b c =
  let m, k = op_dims transa a in
  let kb, n = op_dims transb b in
  if k <> kb || Mat.rows c <> m || Mat.cols c <> n then
    Mat.dim_error "gemm" "op(a)=%dx%d op(b)=%dx%d c=%dx%d" m k kb n (Mat.rows c)
      (Mat.cols c);
  let chains, fresh = prep_fuse "gemm" ~beta ~m ~k ~n fused in
  let work = m * n * k in
  if work < seq_cutoff || (transa = Trans && transb = Trans) then begin
    gemm_naive ~transa ~transb ~alpha ~beta a b c;
    (* tiny-operand fallback: chains and fresh still applied, in the
       same ascending-l / ascending-i orders as the fused panels *)
    if Array.length chains > 0 then
      fuse_accum ~alpha ~bget:(fun l j -> op_get transb b l j) ~k ~chains 0 n;
    fresh_reduce c.Mat.data ~m ~fresh 0 n
  end
  else begin
    scale_in_place beta c;
    let ad = a.Mat.data and bd = b.Mat.data and cd = c.Mat.data in
    let pool = resolve_pool ~work pool in
    let parallel = pool <> None in
    let run body =
      match pool with
      | Some p -> over_panels p ~parallel ~n body
      | None ->
          (* sequential: wider panels amortize packing and a-block
             reloads; per-element order is unchanged (see contract) *)
          let np = (n + nc_seq - 1) / nc_seq in
          for p = 0 to np - 1 do
            body (p * nc_seq) (min n ((p * nc_seq) + nc_seq))
          done
    in
    match transa with
    | No_trans ->
        let bget =
          match transb with
          | No_trans ->
              if bounds_checked then fun l j -> bd.((j * k) + l)
              else fun l j -> Array.unsafe_get bd ((j * k) + l)
          | Trans ->
              if bounds_checked then fun l j -> bd.((l * n) + j)
              else fun l j -> Array.unsafe_get bd ((l * n) + j)
        in
        run (gemm_panel_n ~alpha ad cd ~m ~k ~bget ~chains ~fresh)
    | Trans ->
        (* transb = Trans was dispatched to the naive path above. *)
        run (fun j0 j1 ->
            gemm_panel_tn ~alpha ad bd cd ~m ~k j0 j1;
            if Array.length chains > 0 then
              fuse_accum ~alpha
                ~bget:(fun l j -> Array.unsafe_get bd ((j * k) + l))
                ~k ~chains j0 j1;
            fresh_reduce cd ~m ~fresh j0 j1)
  end

let gemm_alloc ?pool ?(transa = No_trans) ?(transb = No_trans) ?(alpha = 1.) a b
    =
  let m, _ = op_dims transa a in
  let _, n = op_dims transb b in
  let c = Mat.create m n in
  gemm ?pool ~transa ~transb ~alpha ~beta:0. a b c;
  c

(* Scale the [uplo]-triangle segment of column [j] — syrk must leave
   the opposite strict triangle untouched. *)
let syrk_prescale ~beta cd ~n uplo j =
  let lo, hi = match uplo with Lower -> (j, n - 1) | Upper -> (0, j) in
  let cof = j * n in
  match beta with
  | 1. -> ()
  | 0. ->
      for i = lo to hi do
        Array.unsafe_set cd (cof + i) 0.
      done
  | b ->
      for i = lo to hi do
        Array.unsafe_set cd (cof + i) (b *. Array.unsafe_get cd (cof + i))
      done

let syrk ?pool ?(trans = No_trans) ?(alpha = 1.) ?(beta = 0.) ?fused uplo a c =
  let n, k = op_dims trans a in
  if Mat.rows c <> n || Mat.cols c <> n then
    Mat.dim_error "syrk" "op(a)=%dx%d c=%dx%d" n k (Mat.rows c) (Mat.cols c);
  (match fused with
  | Some { f_fresh = Some _; _ } ->
      (* c only materializes one triangle, so the fresh reduction must
         mirror-read it — a cross-panel access the column-parallel
         kernel cannot do race-free. Callers use chk_reduce_sym. *)
      invalid_arg "Blas3.syrk: f_fresh unsupported; reduce with chk_reduce_sym"
  | _ -> ());
  let chains, _ = prep_fuse "syrk" ~beta ~m:n ~k ~n fused in
  (* The carried chains track the full symmetric product (chk_c +=
     alpha · chk_a · op(a)ᵀ over every column), exactly like the
     separate-pass Abft.Update.syrk rule, even though c itself only
     stores the [uplo] triangle. *)
  let chain_bget =
    match trans with
    | No_trans -> fun l j -> Mat.unsafe_get a j l
    | Trans -> fun l j -> Mat.unsafe_get a l j
  in
  let work = n * n * k / 2 in
  if work < seq_cutoff then begin
    syrk_naive ~trans ~alpha ~beta uplo a c;
    if Array.length chains > 0 then
      fuse_accum ~alpha ~bget:chain_bget ~k ~chains 0 n
  end
  else begin
    let ad = a.Mat.data and cd = c.Mat.data in
    let pool = resolve_pool ~work pool in
    let run body =
      match pool with
      | Some p -> over_panels p ~parallel:true ~n body
      | None -> body 0 n
    in
    match trans with
    | No_trans ->
        (* Saxpy form: c(:,j) += (alpha·a(j,l)) · a(:,l), stride-1, one
           kc-block of [a]'s columns reused across the panel. *)
        run (fun j0 j1 ->
            for j = j0 to j1 - 1 do
              syrk_prescale ~beta cd ~n uplo j
            done;
            let nlb = (k + kc - 1) / kc in
            for lb = 0 to nlb - 1 do
              let l0 = lb * kc and l1 = min k ((lb * kc) + kc) in
              for j = j0 to j1 - 1 do
                let lo, hi =
                  match uplo with Lower -> (j, n - 1) | Upper -> (0, j)
                in
                let cof = j * n in
                for l = l0 to l1 - 1 do
                  let s = alpha *. Array.unsafe_get ad ((l * n) + j) in
                  if s <> 0. then begin
                    let aof = l * n in
                    for i = lo to hi do
                      Array.unsafe_set cd (cof + i)
                        (Array.unsafe_get cd (cof + i)
                        +. (s *. Array.unsafe_get ad (aof + i)))
                    done
                  end
                done
              done
            done;
            if Array.length chains > 0 then
              fuse_accum ~alpha ~bget:chain_bget ~k ~chains j0 j1)
    | Trans ->
        (* Dot form over a's stride-1 columns; accumulation order
           matches the seed kernel exactly. *)
        run (fun j0 j1 ->
            for j = j0 to j1 - 1 do
              let lo, hi =
                match uplo with Lower -> (j, n - 1) | Upper -> (0, j)
              in
              let bof = j * k in
              for i = lo to hi do
                let aof = i * k in
                let acc = ref 0. in
                for l = 0 to k - 1 do
                  acc :=
                    !acc
                    +. (Array.unsafe_get ad (aof + l)
                       *. Array.unsafe_get ad (bof + l))
                done;
                let ci = (j * n) + i in
                let prev =
                  match beta with
                  | 0. -> 0.
                  | b -> b *. Array.unsafe_get cd ci
                in
                Array.unsafe_set cd ci (prev +. (alpha *. !acc))
              done
            done;
            if Array.length chains > 0 then
              fuse_accum ~alpha ~bget:chain_bget ~k ~chains j0 j1)
  end

(* Right-side solve X · op(A) = B as a forward/backward column sweep:
   column j of X is B(:,j) minus saxpy contributions of the already
   solved columns, then a divide by the diagonal. All accesses are
   stride-1 down b's columns (the seed extracted strided rows), and
   rows of B are independent, so the sweep parallelizes by row block
   with per-element operation order unchanged. *)
let trsm_right_blocked ~diag a b =
  let n = Mat.rows a and m = Mat.rows b in
  let ad = a.Mat.data and bd = b.Mat.data in
  (* op(A)[c][j]; [trans] decides the access, [uplo] only the sweep
     direction (structural zeros are never read). *)
  fun ~trans ~upper_op ~r0 ~r1 ->
    let coef c j =
      match trans with
      | No_trans -> Array.unsafe_get ad ((j * n) + c)
      | Trans -> Array.unsafe_get ad ((c * n) + j)
    in
    let solve_col j c_lo c_hi =
      let cof = j * m in
      for c = c_lo to c_hi do
        if c <> j then begin
          let s = coef c j in
          if s <> 0. then begin
            let xof = c * m in
            for i = r0 to r1 - 1 do
              Array.unsafe_set bd (cof + i)
                (Array.unsafe_get bd (cof + i)
                -. (s *. Array.unsafe_get bd (xof + i)))
            done
          end
        end
      done;
      match diag with
      | Unit_diag -> ()
      | Non_unit_diag ->
          let d = coef j j in
          if Float.equal d 0. then failwith "trsm: zero pivot";
          for i = r0 to r1 - 1 do
            Array.unsafe_set bd (cof + i) (Array.unsafe_get bd (cof + i) /. d)
          done
    in
    if upper_op then
      for j = 0 to n - 1 do
        solve_col j 0 (j - 1)
      done
    else
      for j = n - 1 downto 0 do
        solve_col j (j + 1) (n - 1)
      done

let trsm ?pool ?(alpha = 1.) ?fused side uplo trans diag a b =
  check_trsm_shapes "trsm" side a b;
  let n = Mat.rows a in
  (* Fused solve: the carried checksum of b satisfies the same
     right-side system (chk(X)·op(a) = chk(alpha·b) row-wise), so each
     replica chain is co-solved against the still-hot factor. The d-row
     chains go through the seed sweep — the same path the separate-pass
     Abft.Update.trsm takes for them, so fused and separate chains stay
     bitwise identical. Left-side solves mix rows of b and have no
     row-checksum carry rule, hence no fused mode. *)
  let chains =
    match fused with
    | None -> [||]
    | Some fz ->
        if side = Left then
          invalid_arg "Blas3.trsm: fused mode supports Right side only";
        if Array.length fz.f_a <> 0 then
          invalid_arg "Blas3.trsm: fused solve carries f_c only (no f_a)";
        if fz.f_fresh <> None then
          invalid_arg "Blas3.trsm: f_fresh unsupported; reduce after the solve";
        Array.iter
          (fun fc ->
            if Mat.cols fc <> n then
              Mat.dim_error "trsm" "fused chain %dx%d against a=%dx%d"
                (Mat.rows fc) (Mat.cols fc) n n)
          fz.f_c;
        fz.f_c
  in
  let solve_chains () =
    Array.iter (fun fc -> trsm_naive ~alpha Right uplo trans diag a fc) chains
  in
  let m, ncols = (Mat.rows b, Mat.cols b) in
  let work = m * ncols * n / 2 in
  if work < seq_cutoff then begin
    trsm_naive ~alpha side uplo trans diag a b;
    solve_chains ()
  end
  else begin
    if alpha <> 1. then scale_in_place alpha b;
    let pool = resolve_pool ~work pool in
    (match side with
    | Left ->
        (* Columns of b are independent triangular solves. *)
        let solve_cols j0 j1 =
          for j = j0 to j1 - 1 do
            let x = Mat.col b j in
            Blas2.trsv uplo trans diag a x;
            Mat.set_col b j x
          done
        in
        (match pool with
        | Some p -> Pool.parallel_chunks p ~lo:0 ~hi:ncols (fun ~lo ~hi -> solve_cols lo hi)
        | None -> solve_cols 0 ncols)
    | Right ->
        let upper_op =
          match (uplo, trans) with
          | Lower, Trans | Upper, No_trans -> true
          | Lower, No_trans | Upper, Trans -> false
        in
        let sweep = trsm_right_blocked ~diag a b in
        (match pool with
        | Some p ->
            Pool.parallel_chunks p ~lo:0 ~hi:m (fun ~lo ~hi ->
                sweep ~trans ~upper_op ~r0:lo ~r1:hi)
        | None -> sweep ~trans ~upper_op ~r0:0 ~r1:m));
    solve_chains ()
  end

let trmm ?(alpha = 1.) side uplo trans diag a b =
  check_trsm_shapes "trmm" side a b;
  (match side with
  | Left ->
      for j = 0 to Mat.cols b - 1 do
        let x = Mat.col b j in
        Blas2.trmv uplo trans diag a x;
        Mat.set_col b j x
      done
  | Right ->
      for i = 0 to Mat.rows b - 1 do
        let x = Mat.row b i in
        Blas2.trmv uplo (flip_trans trans) diag a x;
        Mat.set_row b i x
      done);
  if alpha <> 1. then scale_in_place alpha b

let symm ?pool ?(alpha = 1.) ?(beta = 0.) side uplo a b c =
  let n = Mat.rows a in
  if Mat.cols a <> n then Mat.dim_error "symm" "a not square: %dx%d" n (Mat.cols a);
  let full = Mat.symmetrize_from uplo a in
  match side with
  | Left ->
      if Mat.rows b <> n || Mat.rows c <> n || Mat.cols c <> Mat.cols b then
        Mat.dim_error "symm" "a=%dx%d b=%dx%d c=%dx%d" n n (Mat.rows b)
          (Mat.cols b) (Mat.rows c) (Mat.cols c);
      gemm ?pool ~alpha ~beta full b c
  | Right ->
      if Mat.cols b <> n || Mat.cols c <> n || Mat.rows c <> Mat.rows b then
        Mat.dim_error "symm" "a=%dx%d b=%dx%d c=%dx%d" n n (Mat.rows b)
          (Mat.cols b) (Mat.rows c) (Mat.cols c);
      gemm ?pool ~alpha ~beta b full c
