open Types
module Pool = Parallel.Pool

(* op(a) dimensions without materializing the transpose. *)
let op_dims trans a =
  match trans with
  | No_trans -> (Mat.rows a, Mat.cols a)
  | Trans -> (Mat.cols a, Mat.rows a)

let op_get trans a i j =
  match trans with No_trans -> Mat.unsafe_get a i j | Trans -> Mat.unsafe_get a j i

let scale_in_place beta c =
  match beta with
  | 1. -> ()
  | 0. ->
      for j = 0 to Mat.cols c - 1 do
        for i = 0 to Mat.rows c - 1 do
          Mat.unsafe_set c i j 0.
        done
      done
  | b ->
      for j = 0 to Mat.cols c - 1 do
        for i = 0 to Mat.rows c - 1 do
          Mat.unsafe_set c i j (b *. Mat.unsafe_get c i j)
        done
      done

(* ------------------------------------------------------------------ *)
(* Seed reference kernels (naive triple loops).                        *)
(*                                                                     *)
(* Kept verbatim: they are the fallback for tiny operands, the         *)
(* reference the tiled kernels are property-tested against, and the    *)
(* baseline bench_parallel reports speedups over.                      *)
(* ------------------------------------------------------------------ *)

let gemm_naive ?(transa = No_trans) ?(transb = No_trans) ?(alpha = 1.)
    ?(beta = 0.) a b c =
  let m, k = op_dims transa a in
  let kb, n = op_dims transb b in
  if k <> kb || Mat.rows c <> m || Mat.cols c <> n then
    Mat.dim_error "gemm" "op(a)=%dx%d op(b)=%dx%d c=%dx%d" m k kb n (Mat.rows c)
      (Mat.cols c);
  scale_in_place beta c;
  (* Loop order j-l-i keeps the innermost loop stride-1 in both [c] and
     (for transa = No_trans) [a]. *)
  for j = 0 to n - 1 do
    for l = 0 to k - 1 do
      let s = alpha *. op_get transb b l j in
      if s <> 0. then
        for i = 0 to m - 1 do
          Mat.unsafe_set c i j (Mat.unsafe_get c i j +. (s *. op_get transa a i l))
        done
    done
  done

let syrk_naive ?(trans = No_trans) ?(alpha = 1.) ?(beta = 0.) uplo a c =
  let n, k = op_dims trans a in
  if Mat.rows c <> n || Mat.cols c <> n then
    Mat.dim_error "syrk" "op(a)=%dx%d c=%dx%d" n k (Mat.rows c) (Mat.cols c);
  for j = 0 to n - 1 do
    let lo, hi = match uplo with Lower -> (j, n - 1) | Upper -> (0, j) in
    for i = lo to hi do
      let acc = ref 0. in
      for l = 0 to k - 1 do
        acc := !acc +. (op_get trans a i l *. op_get trans a j l)
      done;
      let prev = match beta with 0. -> 0. | b -> b *. Mat.unsafe_get c i j in
      Mat.unsafe_set c i j (prev +. (alpha *. !acc))
    done
  done

let check_trsm_shapes name side a b =
  let n = Mat.rows a in
  if Mat.cols a <> n then Mat.dim_error name "a not square: %dx%d" n (Mat.cols a);
  let need = match side with Left -> Mat.rows b | Right -> Mat.cols b in
  if need <> n then
    Mat.dim_error name "a=%dx%d b=%dx%d side=%a" n n (Mat.rows b) (Mat.cols b)
      pp_side side

(* trsm reduced to a trsv per column (Left) or per row (Right): clear,
   and exactly the dataflow the checksum update for TRSM relies on. *)
let trsm_naive ?(alpha = 1.) side uplo trans diag a b =
  check_trsm_shapes "trsm" side a b;
  if alpha <> 1. then scale_in_place alpha b;
  match side with
  | Left ->
      for j = 0 to Mat.cols b - 1 do
        let x = Mat.col b j in
        Blas2.trsv uplo trans diag a x;
        Mat.set_col b j x
      done
  | Right ->
      (* X * op(a) = b  ⇔  op(a)ᵀ * Xᵀ = bᵀ: solve a transposed trsv per
         row of b. *)
      for i = 0 to Mat.rows b - 1 do
        let x = Mat.row b i in
        Blas2.trsv uplo (flip_trans trans) diag a x;
        Mat.set_row b i x
      done

(* ------------------------------------------------------------------ *)
(* Cache-blocked tiled kernels with column-panel parallelism.          *)
(*                                                                     *)
(* Determinism contract: every element of the output is computed by    *)
(* exactly one pool task, and its reduction order over the inner       *)
(* dimension is fixed by the loop structure alone (ascending l),       *)
(* independent of panel boundaries — so results are bitwise identical  *)
(* for every pool size, which keeps the ABFT rounding thresholds       *)
(* valid across ABFT_DOMAINS settings.                                 *)
(* ------------------------------------------------------------------ *)

let kc = 64 (* inner-dimension block *)
let mc = 128 (* row block: one c/a strip of the micro-kernel *)
let jb = 16 (* column-panel width = one unit of parallel work *)

(* Below [seq_cutoff] flops-ish the seed loops win (no blocking setup);
   above [par_cutoff] the batch is worth fanning out across domains. *)
let seq_cutoff = 32_768
let par_cutoff = 2_000_000

(* Fan a column range out across the pool in fixed-width panels. The
   panel grid depends only on [n], never on the pool, and tasks claim
   panels dynamically so triangular workloads balance. *)
let over_panels pool ~parallel ~n body =
  if not parallel then body 0 n
  else begin
    let npanels = (n + jb - 1) / jb in
    Pool.parallel_for ~chunk:1 pool ~lo:0 ~hi:npanels (fun p ->
        body (p * jb) (min n ((p * jb) + jb)))
  end

(* c <- c + alpha * a * B over columns [j0, j1), a m×k untransposed,
   B supplied by [bget l j]. Stride-1 saxpy inner loop, blocked so one
   kc×mc block of [a] is reused across the whole panel. *)
let gemm_panel_n ~alpha ad cd ~m ~k ~bget j0 j1 =
  let nlb = (k + kc - 1) / kc in
  let nib = (m + mc - 1) / mc in
  for lb = 0 to nlb - 1 do
    let l0 = lb * kc and l1 = min k ((lb * kc) + kc) in
    for ib = 0 to nib - 1 do
      let i0 = ib * mc and i1 = min m ((ib * mc) + mc) in
      for j = j0 to j1 - 1 do
        let cof = j * m in
        for l = l0 to l1 - 1 do
          let s = alpha *. bget l j in
          if s <> 0. then begin
            let aof = l * m in
            for i = i0 to i1 - 1 do
              Array.unsafe_set cd (cof + i)
                (Array.unsafe_get cd (cof + i)
                +. (s *. Array.unsafe_get ad (aof + i)))
            done
          end
        done
      done
    done
  done

(* c <- c + alpha * aᵀ * b over columns [j0, j1), a physical k×m,
   b physical k×n untransposed: stride-1 dot products; the b panel
   stays in cache across the whole i sweep. *)
let gemm_panel_tn ~alpha ad bd cd ~m ~k j0 j1 =
  for i = 0 to m - 1 do
    let aof = i * k in
    for j = j0 to j1 - 1 do
      let bof = j * k in
      let acc = ref 0. in
      for l = 0 to k - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get ad (aof + l) *. Array.unsafe_get bd (bof + l))
      done;
      let ci = (j * m) + i in
      Array.unsafe_set cd ci (Array.unsafe_get cd ci +. (alpha *. !acc))
    done
  done

let resolve_pool ~work = function
  | Some p -> if work >= par_cutoff && Pool.size p > 1 then Some p else None
  | None ->
      if work >= par_cutoff then begin
        let p = Pool.default () in
        if Pool.size p > 1 then Some p else None
      end
      else None

let gemm ?pool ?(transa = No_trans) ?(transb = No_trans) ?(alpha = 1.)
    ?(beta = 0.) a b c =
  let m, k = op_dims transa a in
  let kb, n = op_dims transb b in
  if k <> kb || Mat.rows c <> m || Mat.cols c <> n then
    Mat.dim_error "gemm" "op(a)=%dx%d op(b)=%dx%d c=%dx%d" m k kb n (Mat.rows c)
      (Mat.cols c);
  let work = m * n * k in
  if work < seq_cutoff || (transa = Trans && transb = Trans) then
    gemm_naive ~transa ~transb ~alpha ~beta a b c
  else begin
    scale_in_place beta c;
    let ad = a.Mat.data and bd = b.Mat.data and cd = c.Mat.data in
    let pool = resolve_pool ~work pool in
    let parallel = pool <> None in
    let run body =
      match pool with
      | Some p -> over_panels p ~parallel ~n body
      | None -> body 0 n
    in
    match transa with
    | No_trans ->
        let bget =
          match transb with
          | No_trans -> fun l j -> Array.unsafe_get bd ((j * k) + l)
          | Trans -> fun l j -> Array.unsafe_get bd ((l * n) + j)
        in
        run (gemm_panel_n ~alpha ad cd ~m ~k ~bget)
    | Trans ->
        (* transb = Trans was dispatched to the naive path above. *)
        run (gemm_panel_tn ~alpha ad bd cd ~m ~k)
  end

let gemm_alloc ?pool ?(transa = No_trans) ?(transb = No_trans) ?(alpha = 1.) a b
    =
  let m, _ = op_dims transa a in
  let _, n = op_dims transb b in
  let c = Mat.create m n in
  gemm ?pool ~transa ~transb ~alpha ~beta:0. a b c;
  c

(* Scale the [uplo]-triangle segment of column [j] — syrk must leave
   the opposite strict triangle untouched. *)
let syrk_prescale ~beta cd ~n uplo j =
  let lo, hi = match uplo with Lower -> (j, n - 1) | Upper -> (0, j) in
  let cof = j * n in
  match beta with
  | 1. -> ()
  | 0. ->
      for i = lo to hi do
        Array.unsafe_set cd (cof + i) 0.
      done
  | b ->
      for i = lo to hi do
        Array.unsafe_set cd (cof + i) (b *. Array.unsafe_get cd (cof + i))
      done

let syrk ?pool ?(trans = No_trans) ?(alpha = 1.) ?(beta = 0.) uplo a c =
  let n, k = op_dims trans a in
  if Mat.rows c <> n || Mat.cols c <> n then
    Mat.dim_error "syrk" "op(a)=%dx%d c=%dx%d" n k (Mat.rows c) (Mat.cols c);
  let work = n * n * k / 2 in
  if work < seq_cutoff then syrk_naive ~trans ~alpha ~beta uplo a c
  else begin
    let ad = a.Mat.data and cd = c.Mat.data in
    let pool = resolve_pool ~work pool in
    let run body =
      match pool with
      | Some p -> over_panels p ~parallel:true ~n body
      | None -> body 0 n
    in
    match trans with
    | No_trans ->
        (* Saxpy form: c(:,j) += (alpha·a(j,l)) · a(:,l), stride-1, one
           kc-block of [a]'s columns reused across the panel. *)
        run (fun j0 j1 ->
            for j = j0 to j1 - 1 do
              syrk_prescale ~beta cd ~n uplo j
            done;
            let nlb = (k + kc - 1) / kc in
            for lb = 0 to nlb - 1 do
              let l0 = lb * kc and l1 = min k ((lb * kc) + kc) in
              for j = j0 to j1 - 1 do
                let lo, hi =
                  match uplo with Lower -> (j, n - 1) | Upper -> (0, j)
                in
                let cof = j * n in
                for l = l0 to l1 - 1 do
                  let s = alpha *. Array.unsafe_get ad ((l * n) + j) in
                  if s <> 0. then begin
                    let aof = l * n in
                    for i = lo to hi do
                      Array.unsafe_set cd (cof + i)
                        (Array.unsafe_get cd (cof + i)
                        +. (s *. Array.unsafe_get ad (aof + i)))
                    done
                  end
                done
              done
            done)
    | Trans ->
        (* Dot form over a's stride-1 columns; accumulation order
           matches the seed kernel exactly. *)
        run (fun j0 j1 ->
            for j = j0 to j1 - 1 do
              let lo, hi =
                match uplo with Lower -> (j, n - 1) | Upper -> (0, j)
              in
              let bof = j * k in
              for i = lo to hi do
                let aof = i * k in
                let acc = ref 0. in
                for l = 0 to k - 1 do
                  acc :=
                    !acc
                    +. (Array.unsafe_get ad (aof + l)
                       *. Array.unsafe_get ad (bof + l))
                done;
                let ci = (j * n) + i in
                let prev =
                  match beta with
                  | 0. -> 0.
                  | b -> b *. Array.unsafe_get cd ci
                in
                Array.unsafe_set cd ci (prev +. (alpha *. !acc))
              done
            done)
  end

(* Right-side solve X · op(A) = B as a forward/backward column sweep:
   column j of X is B(:,j) minus saxpy contributions of the already
   solved columns, then a divide by the diagonal. All accesses are
   stride-1 down b's columns (the seed extracted strided rows), and
   rows of B are independent, so the sweep parallelizes by row block
   with per-element operation order unchanged. *)
let trsm_right_blocked ~diag a b =
  let n = Mat.rows a and m = Mat.rows b in
  let ad = a.Mat.data and bd = b.Mat.data in
  (* op(A)[c][j]; [trans] decides the access, [uplo] only the sweep
     direction (structural zeros are never read). *)
  fun ~trans ~upper_op ~r0 ~r1 ->
    let coef c j =
      match trans with
      | No_trans -> Array.unsafe_get ad ((j * n) + c)
      | Trans -> Array.unsafe_get ad ((c * n) + j)
    in
    let solve_col j c_lo c_hi =
      let cof = j * m in
      for c = c_lo to c_hi do
        if c <> j then begin
          let s = coef c j in
          if s <> 0. then begin
            let xof = c * m in
            for i = r0 to r1 - 1 do
              Array.unsafe_set bd (cof + i)
                (Array.unsafe_get bd (cof + i)
                -. (s *. Array.unsafe_get bd (xof + i)))
            done
          end
        end
      done;
      match diag with
      | Unit_diag -> ()
      | Non_unit_diag ->
          let d = coef j j in
          if Float.equal d 0. then failwith "trsm: zero pivot";
          for i = r0 to r1 - 1 do
            Array.unsafe_set bd (cof + i) (Array.unsafe_get bd (cof + i) /. d)
          done
    in
    if upper_op then
      for j = 0 to n - 1 do
        solve_col j 0 (j - 1)
      done
    else
      for j = n - 1 downto 0 do
        solve_col j (j + 1) (n - 1)
      done

let trsm ?pool ?(alpha = 1.) side uplo trans diag a b =
  check_trsm_shapes "trsm" side a b;
  let n = Mat.rows a in
  let m, ncols = (Mat.rows b, Mat.cols b) in
  let work = m * ncols * n / 2 in
  if work < seq_cutoff then trsm_naive ~alpha side uplo trans diag a b
  else begin
    if alpha <> 1. then scale_in_place alpha b;
    let pool = resolve_pool ~work pool in
    match side with
    | Left ->
        (* Columns of b are independent triangular solves. *)
        let solve_cols j0 j1 =
          for j = j0 to j1 - 1 do
            let x = Mat.col b j in
            Blas2.trsv uplo trans diag a x;
            Mat.set_col b j x
          done
        in
        (match pool with
        | Some p -> Pool.parallel_chunks p ~lo:0 ~hi:ncols (fun ~lo ~hi -> solve_cols lo hi)
        | None -> solve_cols 0 ncols)
    | Right ->
        let upper_op =
          match (uplo, trans) with
          | Lower, Trans | Upper, No_trans -> true
          | Lower, No_trans | Upper, Trans -> false
        in
        let sweep = trsm_right_blocked ~diag a b in
        (match pool with
        | Some p ->
            Pool.parallel_chunks p ~lo:0 ~hi:m (fun ~lo ~hi ->
                sweep ~trans ~upper_op ~r0:lo ~r1:hi)
        | None -> sweep ~trans ~upper_op ~r0:0 ~r1:m)
  end

let trmm ?(alpha = 1.) side uplo trans diag a b =
  check_trsm_shapes "trmm" side a b;
  (match side with
  | Left ->
      for j = 0 to Mat.cols b - 1 do
        let x = Mat.col b j in
        Blas2.trmv uplo trans diag a x;
        Mat.set_col b j x
      done
  | Right ->
      for i = 0 to Mat.rows b - 1 do
        let x = Mat.row b i in
        Blas2.trmv uplo (flip_trans trans) diag a x;
        Mat.set_row b i x
      done);
  if alpha <> 1. then scale_in_place alpha b

let symm ?pool ?(alpha = 1.) ?(beta = 0.) side uplo a b c =
  let n = Mat.rows a in
  if Mat.cols a <> n then Mat.dim_error "symm" "a not square: %dx%d" n (Mat.cols a);
  let full = Mat.symmetrize_from uplo a in
  match side with
  | Left ->
      if Mat.rows b <> n || Mat.rows c <> n || Mat.cols c <> Mat.cols b then
        Mat.dim_error "symm" "a=%dx%d b=%dx%d c=%dx%d" n n (Mat.rows b)
          (Mat.cols b) (Mat.rows c) (Mat.cols c);
      gemm ?pool ~alpha ~beta full b c
  | Right ->
      if Mat.cols b <> n || Mat.cols c <> n || Mat.rows c <> Mat.rows b then
        Mat.dim_error "symm" "a=%dx%d b=%dx%d c=%dx%d" n n (Mat.rows b)
          (Mat.cols b) (Mat.rows c) (Mat.cols c);
      gemm ?pool ~alpha ~beta b full c
