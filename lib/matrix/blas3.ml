open Types

(* op(a) dimensions without materializing the transpose. *)
let op_dims trans a =
  match trans with
  | No_trans -> (Mat.rows a, Mat.cols a)
  | Trans -> (Mat.cols a, Mat.rows a)

let op_get trans a i j =
  match trans with No_trans -> Mat.unsafe_get a i j | Trans -> Mat.unsafe_get a j i

let scale_in_place beta c =
  match beta with
  | 1. -> ()
  | 0. ->
      for j = 0 to Mat.cols c - 1 do
        for i = 0 to Mat.rows c - 1 do
          Mat.unsafe_set c i j 0.
        done
      done
  | b ->
      for j = 0 to Mat.cols c - 1 do
        for i = 0 to Mat.rows c - 1 do
          Mat.unsafe_set c i j (b *. Mat.unsafe_get c i j)
        done
      done

let gemm ?(transa = No_trans) ?(transb = No_trans) ?(alpha = 1.) ?(beta = 0.) a
    b c =
  let m, k = op_dims transa a in
  let kb, n = op_dims transb b in
  if k <> kb || Mat.rows c <> m || Mat.cols c <> n then
    Mat.dim_error "gemm" "op(a)=%dx%d op(b)=%dx%d c=%dx%d" m k kb n (Mat.rows c)
      (Mat.cols c);
  scale_in_place beta c;
  (* Loop order j-l-i keeps the innermost loop stride-1 in both [c] and
     (for transa = No_trans) [a]. *)
  for j = 0 to n - 1 do
    for l = 0 to k - 1 do
      let s = alpha *. op_get transb b l j in
      if s <> 0. then
        for i = 0 to m - 1 do
          Mat.unsafe_set c i j (Mat.unsafe_get c i j +. (s *. op_get transa a i l))
        done
    done
  done

let gemm_alloc ?(transa = No_trans) ?(transb = No_trans) ?(alpha = 1.) a b =
  let m, _ = op_dims transa a in
  let _, n = op_dims transb b in
  let c = Mat.create m n in
  gemm ~transa ~transb ~alpha ~beta:0. a b c;
  c

let syrk ?(trans = No_trans) ?(alpha = 1.) ?(beta = 0.) uplo a c =
  let n, k = op_dims trans a in
  if Mat.rows c <> n || Mat.cols c <> n then
    Mat.dim_error "syrk" "op(a)=%dx%d c=%dx%d" n k (Mat.rows c) (Mat.cols c);
  for j = 0 to n - 1 do
    let lo, hi = match uplo with Lower -> (j, n - 1) | Upper -> (0, j) in
    for i = lo to hi do
      let acc = ref 0. in
      for l = 0 to k - 1 do
        acc := !acc +. (op_get trans a i l *. op_get trans a j l)
      done;
      let prev = match beta with 0. -> 0. | b -> b *. Mat.unsafe_get c i j in
      Mat.unsafe_set c i j (prev +. (alpha *. !acc))
    done
  done

let check_trsm_shapes name side a b =
  let n = Mat.rows a in
  if Mat.cols a <> n then Mat.dim_error name "a not square: %dx%d" n (Mat.cols a);
  let need = match side with Left -> Mat.rows b | Right -> Mat.cols b in
  if need <> n then
    Mat.dim_error name "a=%dx%d b=%dx%d side=%a" n n (Mat.rows b) (Mat.cols b)
      pp_side side

(* trsm is reduced to a trsv per column (Left) or per row (Right): clear,
   and exactly the dataflow the checksum update for TRSM relies on. *)
let trsm ?(alpha = 1.) side uplo trans diag a b =
  check_trsm_shapes "trsm" side a b;
  if alpha <> 1. then scale_in_place alpha b;
  match side with
  | Left ->
      for j = 0 to Mat.cols b - 1 do
        let x = Mat.col b j in
        Blas2.trsv uplo trans diag a x;
        Mat.set_col b j x
      done
  | Right ->
      (* X * op(a) = b  ⇔  op(a)ᵀ * Xᵀ = bᵀ: solve a transposed trsv per
         row of b. *)
      for i = 0 to Mat.rows b - 1 do
        let x = Mat.row b i in
        Blas2.trsv uplo (flip_trans trans) diag a x;
        Mat.set_row b i x
      done

let trmm ?(alpha = 1.) side uplo trans diag a b =
  check_trsm_shapes "trmm" side a b;
  (match side with
  | Left ->
      for j = 0 to Mat.cols b - 1 do
        let x = Mat.col b j in
        Blas2.trmv uplo trans diag a x;
        Mat.set_col b j x
      done
  | Right ->
      for i = 0 to Mat.rows b - 1 do
        let x = Mat.row b i in
        Blas2.trmv uplo (flip_trans trans) diag a x;
        Mat.set_row b i x
      done);
  if alpha <> 1. then scale_in_place alpha b

let symm ?(alpha = 1.) ?(beta = 0.) side uplo a b c =
  let n = Mat.rows a in
  if Mat.cols a <> n then Mat.dim_error "symm" "a not square: %dx%d" n (Mat.cols a);
  let full = Mat.symmetrize_from uplo a in
  match side with
  | Left ->
      if Mat.rows b <> n || Mat.rows c <> n || Mat.cols c <> Mat.cols b then
        Mat.dim_error "symm" "a=%dx%d b=%dx%d c=%dx%d" n n (Mat.rows b)
          (Mat.cols b) (Mat.rows c) (Mat.cols c);
      gemm ~alpha ~beta full b c
  | Right ->
      if Mat.cols b <> n || Mat.cols c <> n || Mat.rows c <> Mat.rows b then
        Mat.dim_error "symm" "a=%dx%d b=%dx%d c=%dx%d" n n (Mat.rows b)
          (Mat.cols b) (Mat.rows c) (Mat.cols c);
      gemm ~alpha ~beta b full c
