(** BLAS level-3 kernels (matrix–matrix).

    These carry essentially all the flops of blocked Cholesky: GEMM
    updates the trailing panel, SYRK the diagonal block, TRSM solves the
    panel against the factored diagonal block. MAGMA runs all three on
    the GPU; the paper's checksum-update rules are expressed in terms of
    these same kernels applied to the (2 × B) checksum blocks.

    The main entry points ([gemm], [syrk], [trsm]) are cache-blocked
    tiled kernels that optionally fan column panels out across a
    {!Parallel.Pool.t} (defaulting to {!Parallel.Pool.default} for
    operands large enough to benefit). They fall back to the original
    naive triple loops ([gemm_naive] …) for tiny operands.

    {b Determinism.} For every kernel, the reduction order per output
    element is fixed by the operand shapes alone — panel boundaries and
    pool size never change it — so results are bitwise identical across
    [ABFT_DOMAINS] settings. Tiled and naive kernels may round
    differently from each other (blocked accumulation), but each is
    individually deterministic. *)

open Types

val gemm :
  ?pool:Parallel.Pool.t ->
  ?transa:trans ->
  ?transb:trans ->
  ?alpha:float ->
  ?beta:float ->
  Mat.t ->
  Mat.t ->
  Mat.t ->
  unit
(** [gemm ~transa ~transb ~alpha ~beta a b c] computes
    [c <- alpha * op(a) * op(b) + beta * c] in place. Defaults:
    [No_trans], [alpha = 1.], [beta = 0.]. Large products are
    cache-blocked and, when a pool with more than one lane is available,
    parallelized over fixed-width column panels.
    @raise Mat.Dimension_mismatch on incompatible shapes. *)

val gemm_alloc :
  ?pool:Parallel.Pool.t ->
  ?transa:trans ->
  ?transb:trans ->
  ?alpha:float ->
  Mat.t ->
  Mat.t ->
  Mat.t
(** Allocating wrapper: returns [alpha * op(a) * op(b)]. *)

val syrk :
  ?pool:Parallel.Pool.t ->
  ?trans:trans ->
  ?alpha:float ->
  ?beta:float ->
  uplo ->
  Mat.t ->
  Mat.t ->
  unit
(** [syrk ~trans ~alpha ~beta uplo a c] computes the symmetric rank-k
    update [c <- alpha * a * aᵀ + beta * c] ([trans = No_trans]) or
    [c <- alpha * aᵀ * a + beta * c] ([trans = Trans]), writing only the
    [uplo] triangle of [c]. Defaults: [No_trans], [alpha = 1.],
    [beta = 0.]. *)

val trsm :
  ?pool:Parallel.Pool.t ->
  ?alpha:float ->
  side ->
  uplo ->
  trans ->
  diag ->
  Mat.t ->
  Mat.t ->
  unit
(** [trsm ~alpha side uplo trans diag a b] solves the triangular system
    - [side = Left]:  [op(a) * X = alpha * b]
    - [side = Right]: [X * op(a) = alpha * b]
    overwriting [b] with the solution [X]. Default [alpha = 1.].
    Large solves run blocked ([Right]: a stride-1 column sweep
    parallelized over row blocks; [Left]: independent per-column solves
    across the pool).
    @raise Failure on a zero pivot with [Non_unit_diag]. *)

val trmm :
  ?alpha:float -> side -> uplo -> trans -> diag -> Mat.t -> Mat.t -> unit
(** [trmm ~alpha side uplo trans diag a b] computes
    [b <- alpha * op(a) * b] ([Left]) or [b <- alpha * b * op(a)]
    ([Right]) with [a] triangular. *)

val symm :
  ?pool:Parallel.Pool.t ->
  ?alpha:float ->
  ?beta:float ->
  side ->
  uplo ->
  Mat.t ->
  Mat.t ->
  Mat.t ->
  unit
(** [symm ~alpha ~beta side uplo a b c] computes
    [c <- alpha * A * b + beta * c] ([Left]) or
    [c <- alpha * b * A + beta * c] ([Right]) where [A] is the symmetric
    matrix stored in the [uplo] triangle of [a]. *)

(** {1 Seed reference kernels}

    The original naive triple-loop implementations, kept as the
    fallback for tiny operands, as the property-test reference for the
    tiled kernels, and as the baseline [bench_parallel] measures
    speedups against. *)

val gemm_naive :
  ?transa:trans ->
  ?transb:trans ->
  ?alpha:float ->
  ?beta:float ->
  Mat.t ->
  Mat.t ->
  Mat.t ->
  unit

val syrk_naive :
  ?trans:trans -> ?alpha:float -> ?beta:float -> uplo -> Mat.t -> Mat.t -> unit

val trsm_naive :
  ?alpha:float -> side -> uplo -> trans -> diag -> Mat.t -> Mat.t -> unit
