(** BLAS level-3 kernels (matrix–matrix).

    These carry essentially all the flops of blocked Cholesky: GEMM
    updates the trailing panel, SYRK the diagonal block, TRSM solves the
    panel against the factored diagonal block. MAGMA runs all three on
    the GPU; the paper's checksum-update rules are expressed in terms of
    these same kernels applied to the (2 × B) checksum blocks. *)

open Types

val gemm :
  ?transa:trans ->
  ?transb:trans ->
  ?alpha:float ->
  ?beta:float ->
  Mat.t ->
  Mat.t ->
  Mat.t ->
  unit
(** [gemm ~transa ~transb ~alpha ~beta a b c] computes
    [c <- alpha * op(a) * op(b) + beta * c] in place. Defaults:
    [No_trans], [alpha = 1.], [beta = 0.].
    @raise Mat.Dimension_mismatch on incompatible shapes. *)

val gemm_alloc :
  ?transa:trans -> ?transb:trans -> ?alpha:float -> Mat.t -> Mat.t -> Mat.t
(** Allocating wrapper: returns [alpha * op(a) * op(b)]. *)

val syrk :
  ?trans:trans -> ?alpha:float -> ?beta:float -> uplo -> Mat.t -> Mat.t -> unit
(** [syrk ~trans ~alpha ~beta uplo a c] computes the symmetric rank-k
    update [c <- alpha * a * aᵀ + beta * c] ([trans = No_trans]) or
    [c <- alpha * aᵀ * a + beta * c] ([trans = Trans]), writing only the
    [uplo] triangle of [c]. Defaults: [No_trans], [alpha = 1.],
    [beta = 0.]. *)

val trsm :
  ?alpha:float -> side -> uplo -> trans -> diag -> Mat.t -> Mat.t -> unit
(** [trsm ~alpha side uplo trans diag a b] solves the triangular system
    - [side = Left]:  [op(a) * X = alpha * b]
    - [side = Right]: [X * op(a) = alpha * b]
    overwriting [b] with the solution [X]. Default [alpha = 1.].
    @raise Failure on a zero pivot with [Non_unit_diag]. *)

val trmm :
  ?alpha:float -> side -> uplo -> trans -> diag -> Mat.t -> Mat.t -> unit
(** [trmm ~alpha side uplo trans diag a b] computes
    [b <- alpha * op(a) * b] ([Left]) or [b <- alpha * b * op(a)]
    ([Right]) with [a] triangular. *)

val symm : ?alpha:float -> ?beta:float -> side -> uplo -> Mat.t -> Mat.t -> Mat.t -> unit
(** [symm ~alpha ~beta side uplo a b c] computes
    [c <- alpha * A * b + beta * c] ([Left]) or
    [c <- alpha * b * A + beta * c] ([Right]) where [A] is the symmetric
    matrix stored in the [uplo] triangle of [a]. *)
