(** BLAS level-3 kernels (matrix–matrix).

    These carry essentially all the flops of blocked Cholesky: GEMM
    updates the trailing panel, SYRK the diagonal block, TRSM solves the
    panel against the factored diagonal block. MAGMA runs all three on
    the GPU; the paper's checksum-update rules are expressed in terms of
    these same kernels applied to the (2 × B) checksum blocks.

    The main entry points ([gemm], [syrk], [trsm]) are cache-blocked
    tiled kernels that optionally fan column panels out across a
    {!Parallel.Pool.t} (defaulting to {!Parallel.Pool.default} for
    operands large enough to benefit). They fall back to the original
    naive triple loops ([gemm_naive] …) for tiny operands.

    {b Determinism.} For every kernel, the reduction order per output
    element is fixed by the operand shapes alone — panel boundaries and
    pool size never change it — so results are bitwise identical across
    [ABFT_DOMAINS] settings. Tiled and naive kernels may round
    differently from each other (blocked accumulation), but each is
    individually deterministic. *)

open Types

(** {1 Fused checksum carry}

    ABFT checksum rows are algebraically just extra rows of a virtual
    [op(a)] — so instead of re-walking operands in a separate
    checksum-update pass, a kernel can carry them through its own cache
    blocking, accumulating the d-row chains against the same packed
    scalar panel while the data is hot. [fuse] describes what to carry:

    - [f_a.(i)] / [f_c.(i)]: replica chain [i] — the weighted checksums
      of [op(a)] (d×k) and of [c] (d×n). The kernel applies its exact
      update to each [f_c.(i)] reading only [f_a.(i)], so the replica
      chains stay bitwise independent (the self-protecting store's
      invariant). For [trsm], [f_a] is [[||]]: the chain of [b] is
      co-solved in place.
    - [f_fresh] (with [f_weights], m×d): optionally receives the
      weighted reduction of the {e finished} [c] (d×n), computed while
      the output panel is still in cache. Only sound when nothing can
      corrupt [c] between the kernel and its verification — drivers
      with post-kernel fault windows must recompute at verify time
      instead (see DESIGN).

    Chain accumulation order is ascending-l per column — identical to
    the naive separate-pass [Abft.Update] rules, so fused and separate
    checksums agree bitwise, not just within tolerance.

    Setting [ABFT_BOUNDS_CHECK=1] in the environment re-routes every
    unsafe-access micro-kernel (packed saxpy, chain carry, reductions)
    through bounds-checked accesses; [bounds_checked] reports the mode. *)

type fuse = {
  f_a : Mat.t array;
  f_c : Mat.t array;
  f_fresh : Mat.t option;
  f_weights : Mat.t option;
}

val bounds_checked : bool
(** True when [ABFT_BOUNDS_CHECK] selects the checked debug build. *)

val chk_reduce : weights:Mat.t -> Mat.t -> into:Mat.t -> unit
(** [chk_reduce ~weights c ~into] computes [into <- weightsᵀ · c]
    (d×n from m×d weights and m×n [c]) without allocating — the
    verification-side reduction, bitwise identical to the in-kernel
    [f_fresh] epilogue and to [gemm_alloc ~transa:Trans weights c]. *)

val chk_reduce_sym : uplo -> weights:Mat.t -> Mat.t -> into:Mat.t -> unit
(** Same reduction over a symmetric matrix stored in one triangle
    (mirror-reads the unstored half): the verify-side companion of a
    fused [syrk]. *)

val gemm :
  ?pool:Parallel.Pool.t ->
  ?transa:trans ->
  ?transb:trans ->
  ?alpha:float ->
  ?beta:float ->
  ?fused:fuse ->
  Mat.t ->
  Mat.t ->
  Mat.t ->
  unit
(** [gemm ~transa ~transb ~alpha ~beta a b c] computes
    [c <- alpha * op(a) * op(b) + beta * c] in place. Defaults:
    [No_trans], [alpha = 1.], [beta = 0.]. Large products are
    cache-blocked with the alpha·op(b) panel packed contiguous and, when
    a pool with more than one lane is available, parallelized over
    fixed-width column panels. With [~fused], checksum chains
    [f_c.(i) <- alpha * f_a.(i) * op(b) + beta * f_c.(i)] ride the same
    blocking (and [f_fresh], if set, the same panels).
    @raise Mat.Dimension_mismatch on incompatible shapes (including
    fused chain shapes). *)

val gemm_alloc :
  ?pool:Parallel.Pool.t ->
  ?transa:trans ->
  ?transb:trans ->
  ?alpha:float ->
  Mat.t ->
  Mat.t ->
  Mat.t
(** Allocating wrapper: returns [alpha * op(a) * op(b)]. *)

val syrk :
  ?pool:Parallel.Pool.t ->
  ?trans:trans ->
  ?alpha:float ->
  ?beta:float ->
  ?fused:fuse ->
  uplo ->
  Mat.t ->
  Mat.t ->
  unit
(** [syrk ~trans ~alpha ~beta uplo a c] computes the symmetric rank-k
    update [c <- alpha * a * aᵀ + beta * c] ([trans = No_trans]) or
    [c <- alpha * aᵀ * a + beta * c] ([trans = Trans]), writing only the
    [uplo] triangle of [c]. Defaults: [No_trans], [alpha = 1.],
    [beta = 0.]. With [~fused], the carried chains track the full
    symmetric product (every column), like the separate-pass
    [Abft.Update.syrk] rule; [f_fresh] is rejected — reduce the
    triangle afterwards with {!chk_reduce_sym}. *)

val trsm :
  ?pool:Parallel.Pool.t ->
  ?alpha:float ->
  ?fused:fuse ->
  side ->
  uplo ->
  trans ->
  diag ->
  Mat.t ->
  Mat.t ->
  unit
(** [trsm ~alpha side uplo trans diag a b] solves the triangular system
    - [side = Left]:  [op(a) * X = alpha * b]
    - [side = Right]: [X * op(a) = alpha * b]
    overwriting [b] with the solution [X]. Default [alpha = 1.].
    Large solves run blocked ([Right]: a stride-1 column sweep
    parallelized over row blocks; [Left]: independent per-column solves
    across the pool). With [~fused] (Right side only), each [f_c.(i)]
    chain — the carried checksum of [b] — is co-solved against the same
    factor ([f_a] must be empty).
    @raise Failure on a zero pivot with [Non_unit_diag]. *)

val trmm :
  ?alpha:float -> side -> uplo -> trans -> diag -> Mat.t -> Mat.t -> unit
(** [trmm ~alpha side uplo trans diag a b] computes
    [b <- alpha * op(a) * b] ([Left]) or [b <- alpha * b * op(a)]
    ([Right]) with [a] triangular. *)

val symm :
  ?pool:Parallel.Pool.t ->
  ?alpha:float ->
  ?beta:float ->
  side ->
  uplo ->
  Mat.t ->
  Mat.t ->
  Mat.t ->
  unit
(** [symm ~alpha ~beta side uplo a b c] computes
    [c <- alpha * A * b + beta * c] ([Left]) or
    [c <- alpha * b * A + beta * c] ([Right]) where [A] is the symmetric
    matrix stored in the [uplo] triangle of [a]. *)

(** {1 Seed reference kernels}

    The original naive triple-loop implementations, kept as the
    fallback for tiny operands, as the property-test reference for the
    tiled kernels, and as the baseline [bench_parallel] measures
    speedups against. *)

val gemm_naive :
  ?transa:trans ->
  ?transb:trans ->
  ?alpha:float ->
  ?beta:float ->
  Mat.t ->
  Mat.t ->
  Mat.t ->
  unit

val syrk_naive :
  ?trans:trans -> ?alpha:float -> ?beta:float -> uplo -> Mat.t -> Mat.t -> unit

val trsm_naive :
  ?alpha:float -> side -> uplo -> trans -> diag -> Mat.t -> Mat.t -> unit
