open Types

exception Not_positive_definite of int

let check_square name a =
  if Mat.rows a <> Mat.cols a then
    Mat.dim_error name "not square: %dx%d" (Mat.rows a) (Mat.cols a)

let zero_opposite uplo a =
  let n = Mat.rows a in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      let above = i < j in
      let kill =
        match uplo with Lower -> above | Upper -> (not above) && i <> j
      in
      if kill then Mat.unsafe_set a i j 0.
    done
  done

(* Unblocked lower Cholesky, column by column ("left-looking within the
   column"): pivot, scale, then rank-1 update of the remaining columns. *)
let potf2_lower a =
  let n = Mat.rows a in
  for j = 0 to n - 1 do
    let d = ref (Mat.unsafe_get a j j) in
    for k = 0 to j - 1 do
      let v = Mat.unsafe_get a j k in
      d := !d -. (v *. v)
    done;
    if (not (Float.is_finite !d)) || !d <= 0. then
      raise (Not_positive_definite j);
    let piv = sqrt !d in
    Mat.unsafe_set a j j piv;
    for i = j + 1 to n - 1 do
      let acc = ref (Mat.unsafe_get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.unsafe_get a i k *. Mat.unsafe_get a j k)
      done;
      Mat.unsafe_set a i j (!acc /. piv)
    done
  done

let potf2 uplo a =
  check_square "potf2" a;
  (match uplo with
  | Lower -> potf2_lower a
  | Upper ->
      (* Factor the transpose as lower, then transpose back: keeps a
         single well-tested kernel. *)
      let at = Mat.transpose a in
      potf2_lower at;
      let n = Mat.rows a in
      for j = 0 to n - 1 do
        for i = 0 to n - 1 do
          Mat.unsafe_set a i j (Mat.unsafe_get at j i)
        done
      done);
  zero_opposite uplo a

let potrf ?(block = 64) uplo a =
  check_square "potrf" a;
  if block <= 0 then invalid_arg "potrf: block size must be positive";
  let n = Mat.rows a in
  (match uplo with
  | Upper ->
      (* Rare in this code base; fall back to the unblocked kernel. *)
      potf2 Upper a
  | Lower ->
      let j = ref 0 in
      while !j < n do
        let jb = min block (n - !j) in
        (* Diagonal block: A[j,j] -= L[j,0:j] * L[j,0:j]^T, then factor. *)
        let diag = Mat.sub a ~row:!j ~col:!j ~rows:jb ~cols:jb in
        if !j > 0 then begin
          let panel_row = Mat.sub a ~row:!j ~col:0 ~rows:jb ~cols:!j in
          Blas3.syrk ~alpha:(-1.) ~beta:1. Lower panel_row diag
        end;
        (try potf2_lower diag
         with Not_positive_definite k -> raise (Not_positive_definite (!j + k)));
        Mat.blit ~src:diag ~dst:a ~row:!j ~col:!j;
        let below = n - !j - jb in
        if below > 0 then begin
          let sub_panel = Mat.sub a ~row:(!j + jb) ~col:!j ~rows:below ~cols:jb in
          if !j > 0 then begin
            let left_below = Mat.sub a ~row:(!j + jb) ~col:0 ~rows:below ~cols:!j in
            let left_diag = Mat.sub a ~row:!j ~col:0 ~rows:jb ~cols:!j in
            Blas3.gemm ~transb:Trans ~alpha:(-1.) ~beta:1. left_below left_diag
              sub_panel
          end;
          Blas3.trsm Right Lower Trans Non_unit_diag diag sub_panel;
          Mat.blit ~src:sub_panel ~dst:a ~row:(!j + jb) ~col:!j
        end;
        j := !j + jb
      done;
      zero_opposite Lower a)

let trtrs uplo trans diag a b = Blas3.trsm Left uplo trans diag a b

let potrs uplo l b =
  check_square "potrs" l;
  if Mat.rows b <> Mat.rows l then
    Mat.dim_error "potrs" "l=%dx%d b=%dx%d" (Mat.rows l) (Mat.cols l)
      (Mat.rows b) (Mat.cols b);
  match uplo with
  | Lower ->
      trtrs Lower No_trans Non_unit_diag l b;
      trtrs Lower Trans Non_unit_diag l b
  | Upper ->
      trtrs Upper Trans Non_unit_diag l b;
      trtrs Upper No_trans Non_unit_diag l b

let cholesky a =
  let l = Mat.copy a in
  potf2 Lower l;
  l

let solve_spd a b =
  let l = cholesky a in
  let x = Mat.copy b in
  potrs Lower l x;
  x

let log_det_spd a =
  let l = cholesky a in
  let acc = ref 0. in
  for i = 0 to Mat.rows l - 1 do
    acc := !acc +. log (Mat.get l i i)
  done;
  2. *. !acc

exception Singular_pivot of int

let getf2 a =
  check_square "getf2" a;
  let n = Mat.rows a in
  for j = 0 to n - 1 do
    let piv = Mat.unsafe_get a j j in
    if (not (Float.is_finite piv)) || abs_float piv < 1e-12 then
      raise (Singular_pivot j);
    for i = j + 1 to n - 1 do
      let lij = Mat.unsafe_get a i j /. piv in
      Mat.unsafe_set a i j lij;
      for c = j + 1 to n - 1 do
        Mat.unsafe_set a i c
          (Mat.unsafe_get a i c -. (lij *. Mat.unsafe_get a j c))
      done
    done
  done

let getrf ?(block = 64) a =
  check_square "getrf" a;
  if block <= 0 then invalid_arg "getrf: block size must be positive";
  let n = Mat.rows a in
  let j = ref 0 in
  while !j < n do
    let jb = min block (n - !j) in
    let diag = Mat.sub a ~row:!j ~col:!j ~rows:jb ~cols:jb in
    (try getf2 diag
     with Singular_pivot k -> raise (Singular_pivot (!j + k)));
    Mat.blit ~src:diag ~dst:a ~row:!j ~col:!j;
    let below = n - !j - jb in
    if below > 0 then begin
      (* Column panel: L21 = A21 U11^-1 *)
      let col_panel = Mat.sub a ~row:(!j + jb) ~col:!j ~rows:below ~cols:jb in
      Blas3.trsm Types.Right Types.Upper Types.No_trans Types.Non_unit_diag
        diag col_panel;
      Mat.blit ~src:col_panel ~dst:a ~row:(!j + jb) ~col:!j;
      (* Row panel: U12 = L11^-1 A12 *)
      let row_panel = Mat.sub a ~row:!j ~col:(!j + jb) ~rows:jb ~cols:below in
      Blas3.trsm Types.Left Types.Lower Types.No_trans Types.Unit_diag diag
        row_panel;
      Mat.blit ~src:row_panel ~dst:a ~row:!j ~col:(!j + jb);
      (* Trailing update: A22 -= L21 U12 *)
      let trailing = Mat.sub a ~row:(!j + jb) ~col:(!j + jb) ~rows:below ~cols:below in
      Blas3.gemm ~alpha:(-1.) ~beta:1. col_panel row_panel trailing;
      Mat.blit ~src:trailing ~dst:a ~row:(!j + jb) ~col:(!j + jb)
    end;
    j := !j + jb
  done

let getrs lu b =
  check_square "getrs" lu;
  if Mat.rows b <> Mat.rows lu then
    Mat.dim_error "getrs" "lu=%dx%d b=%dx%d" (Mat.rows lu) (Mat.cols lu)
      (Mat.rows b) (Mat.cols b);
  Blas3.trsm Types.Left Types.Lower Types.No_trans Types.Unit_diag lu b;
  Blas3.trsm Types.Left Types.Upper Types.No_trans Types.Non_unit_diag lu b

let lu_unpack packed =
  (Mat.tril ~diag:Types.Unit_diag packed, Mat.triu packed)

let diag_dominant ?(seed = 42) n =
  let m = Spd.random ~seed n n in
  Mat.mapi
    (fun i j v -> if i = j then (float_of_int n *. 2.) +. abs_float v else v)
    m
