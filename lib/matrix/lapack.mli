(** LAPACK-style factorizations: the Cholesky family.

    [potf2] is the unblocked kernel MAGMA runs on the CPU for each
    diagonal block; [potrf] is the blocked right-looking factorization
    used as the host-only reference against which the simulated hybrid
    driver is validated. *)

open Types

exception Not_positive_definite of int
(** Raised when a non-positive pivot is met; the payload is the 0-based
    index of the failing column. This is exactly the fail-stop the paper
    warns about: a storage error in a diagonal block can break positive
    definiteness and kill the whole factorization. *)

val potf2 : uplo -> Mat.t -> unit
(** [potf2 uplo a] factors the square matrix [a] in place, unblocked:
    on return the [uplo] triangle holds the Cholesky factor ([Lower]:
    [a = L·Lᵀ]; [Upper]: [a = Uᵀ·U]). The opposite triangle is zeroed so
    the result is directly usable as a triangular operand.
    @raise Not_positive_definite if a pivot is [<= 0] or NaN. *)

val potrf : ?block:int -> uplo -> Mat.t -> unit
(** [potrf ~block uplo a] blocked factorization in place (default block
    size 64), same contract as {!potf2}. Dispatches SYRK/GEMM/TRSM on
    the trailing matrix exactly like the hybrid driver, so it doubles
    as the oracle for the driver's numeric output. *)

val potrs : uplo -> Mat.t -> Mat.t -> unit
(** [potrs uplo l b] solves [A·X = b] in place in [b], given the
    Cholesky factor [l] produced by {!potf2}/{!potrf} with the same
    [uplo]. *)

val trtrs : uplo -> trans -> diag -> Mat.t -> Mat.t -> unit
(** [trtrs uplo trans diag a b] solves [op(a)·X = b] in place in [b]
    with [a] triangular — a thin wrapper over {!Blas3.trsm}. *)

val cholesky : Mat.t -> Mat.t
(** [cholesky a] is the fresh lower Cholesky factor of [a] (input
    unmodified). @raise Not_positive_definite as {!potf2}. *)

val solve_spd : Mat.t -> Mat.t -> Mat.t
(** [solve_spd a b] solves [A·X = b] for symmetric positive definite
    [a] via Cholesky; returns a fresh [X]. *)

val log_det_spd : Mat.t -> float
(** [log_det_spd a] is [log det A] computed stably from the Cholesky
    factor (2·Σ log lᵢᵢ). Used by the Gaussian-process workload. *)

(** {1 LU factorization (no pivoting)}

    Used by the FT-LU extension. Pivoting is omitted — rows cannot be
    swapped without breaking the per-tile checksum relationship — so
    these kernels require a diagonally dominant (or otherwise stably
    factorable) input, which the generators in {!Spd} provide. *)

exception Singular_pivot of int
(** Raised when a pivot's magnitude falls below the stability threshold;
    payload is the 0-based column. *)

val getf2 : Mat.t -> unit
(** [getf2 a] factors square [a] in place into [L\U] packed form: the
    strict lower triangle holds the unit-lower factor [L] (implicit
    unit diagonal), the upper triangle holds [U], and [a = L·U].
    @raise Singular_pivot as above. *)

val getrf : ?block:int -> Mat.t -> unit
(** Blocked right-looking variant of {!getf2} (default block 64); same
    contract. *)

val getrs : Mat.t -> Mat.t -> unit
(** [getrs lu b] solves [A·X = b] in place in [b] given the packed
    [L\U] from {!getf2}/{!getrf}. *)

val lu_unpack : Mat.t -> Mat.t * Mat.t
(** [lu_unpack packed] is [(l, u)] with [l] unit-lower and [u] upper,
    fresh copies. *)

val diag_dominant : ?seed:int -> int -> Mat.t
(** A random diagonally dominant matrix — safely LU-factorable without
    pivoting. *)
