type t = { data : float array; rows : int; cols : int }

exception Dimension_mismatch of string

let dim_error op fmt =
  Format.kasprintf (fun s -> raise (Dimension_mismatch (op ^ ": " ^ s))) fmt

let create m n =
  if m < 0 || n < 0 then invalid_arg "Mat.create: negative dimension";
  { data = Array.make (m * n) 0.; rows = m; cols = n }

let init m n f =
  let a = create m n in
  for j = 0 to n - 1 do
    for i = 0 to m - 1 do
      a.data.((j * m) + i) <- f i j
    done
  done;
  a

let identity n = init n n (fun i j -> if i = j then 1. else 0.)
let scalar n a = init n n (fun i j -> if i = j then a else 0.)

let of_arrays rows_arr =
  let m = Array.length rows_arr in
  if m = 0 then invalid_arg "Mat.of_arrays: empty";
  let n = Array.length rows_arr.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> n then invalid_arg "Mat.of_arrays: ragged input")
    rows_arr;
  init m n (fun i j -> rows_arr.(i).(j))

let to_arrays a =
  Array.init a.rows (fun i ->
      Array.init a.cols (fun j -> a.data.((j * a.rows) + i)))

let of_col_major ~rows ~cols data =
  if Array.length data <> rows * cols then
    invalid_arg "Mat.of_col_major: wrong length";
  { data = Array.copy data; rows; cols }

let copy a = { a with data = Array.copy a.data }
let rows a = a.rows
let cols a = a.cols

let get a i j =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg
      (Printf.sprintf "Mat.get: index (%d,%d) out of %dx%d" i j a.rows a.cols);
  a.data.((j * a.rows) + i)

let set a i j v =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg
      (Printf.sprintf "Mat.set: index (%d,%d) out of %dx%d" i j a.rows a.cols);
  a.data.((j * a.rows) + i) <- v

let unsafe_get a i j = Array.unsafe_get a.data ((j * a.rows) + i)
let unsafe_set a i j v = Array.unsafe_set a.data ((j * a.rows) + i) v

let col a j =
  if j < 0 || j >= a.cols then invalid_arg "Mat.col: out of bounds";
  Array.sub a.data (j * a.rows) a.rows

let row a i =
  if i < 0 || i >= a.rows then invalid_arg "Mat.row: out of bounds";
  Array.init a.cols (fun j -> a.data.((j * a.rows) + i))

let set_col a j v =
  if j < 0 || j >= a.cols then invalid_arg "Mat.set_col: out of bounds";
  if Array.length v <> a.rows then invalid_arg "Mat.set_col: length mismatch";
  Array.blit v 0 a.data (j * a.rows) a.rows

let set_row a i v =
  if i < 0 || i >= a.rows then invalid_arg "Mat.set_row: out of bounds";
  if Array.length v <> a.cols then invalid_arg "Mat.set_row: length mismatch";
  for j = 0 to a.cols - 1 do
    a.data.((j * a.rows) + i) <- v.(j)
  done

let sub a ~row ~col ~rows ~cols =
  if
    row < 0 || col < 0 || rows < 0 || cols < 0
    || row + rows > a.rows
    || col + cols > a.cols
  then
    invalid_arg
      (Printf.sprintf "Mat.sub: window (%d,%d)+%dx%d out of %dx%d" row col rows
         cols a.rows a.cols);
  let b = create rows cols in
  for j = 0 to cols - 1 do
    Array.blit a.data (((col + j) * a.rows) + row) b.data (j * rows) rows
  done;
  b

let blit ~src ~dst ~row ~col =
  if row < 0 || col < 0 || row + src.rows > dst.rows || col + src.cols > dst.cols
  then
    invalid_arg
      (Printf.sprintf "Mat.blit: window (%d,%d)+%dx%d out of %dx%d" row col
         src.rows src.cols dst.rows dst.cols);
  for j = 0 to src.cols - 1 do
    Array.blit src.data (j * src.rows) dst.data
      (((col + j) * dst.rows) + row)
      src.rows
  done

let map f a = { a with data = Array.map f a.data }
let mapi f a = init a.rows a.cols (fun i j -> f i j (unsafe_get a i j))

let check_same_shape op a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    dim_error op "%dx%d vs %dx%d" a.rows a.cols b.rows b.cols

let add a b =
  check_same_shape "Mat.add" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub_mat a b =
  check_same_shape "Mat.sub_mat" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let scale alpha a = map (fun v -> alpha *. v) a
let transpose a = init a.cols a.rows (fun i j -> unsafe_get a j i)

let equal a b =
  a.rows = b.rows && a.cols = b.cols && a.data = b.data

let symmetrize_from uplo a =
  if a.rows <> a.cols then dim_error "Mat.symmetrize_from" "%dx%d" a.rows a.cols;
  init a.rows a.cols (fun i j ->
      match uplo with
      | Types.Lower -> if i >= j then unsafe_get a i j else unsafe_get a j i
      | Types.Upper -> if i <= j then unsafe_get a i j else unsafe_get a j i)

let tril ?(diag = Types.Non_unit_diag) a =
  init a.rows a.cols (fun i j ->
      if i > j then unsafe_get a i j
      else if i = j then
        match diag with
        | Types.Unit_diag -> 1.
        | Types.Non_unit_diag -> unsafe_get a i j
      else 0.)

let triu ?(diag = Types.Non_unit_diag) a =
  init a.rows a.cols (fun i j ->
      if i < j then unsafe_get a i j
      else if i = j then
        match diag with
        | Types.Unit_diag -> 1.
        | Types.Non_unit_diag -> unsafe_get a i j
      else 0.)

let norm_fro a = Vec.nrm2 a.data

let norm_one a =
  let best = ref 0. in
  for j = 0 to a.cols - 1 do
    let s = ref 0. in
    for i = 0 to a.rows - 1 do
      s := !s +. abs_float (unsafe_get a i j)
    done;
    if !s > !best then best := !s
  done;
  !best

let norm_inf a =
  let best = ref 0. in
  for i = 0 to a.rows - 1 do
    let s = ref 0. in
    for j = 0 to a.cols - 1 do
      s := !s +. abs_float (unsafe_get a i j)
    done;
    if !s > !best then best := !s
  done;
  !best

let norm_max a =
  Array.fold_left (fun acc v -> Float.max acc (abs_float v)) 0. a.data

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Vec.approx_equal ~tol a.data b.data

let rel_diff a b =
  check_same_shape "Mat.rel_diff" a b;
  norm_fro (sub_mat a b) /. Float.max 1. (norm_fro b)

let pp fmt a =
  Format.fprintf fmt "@[<v>";
  for i = 0 to a.rows - 1 do
    Format.fprintf fmt "@[<h>";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%10.4g" (unsafe_get a i j)
    done;
    Format.fprintf fmt "@]";
    if i < a.rows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"

let to_string a = Format.asprintf "%a" pp a
