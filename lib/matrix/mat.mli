(** Dense column-major matrices of [float].

    The storage convention is column-major ("Fortran order"), matching
    BLAS/LAPACK and MAGMA: element [(i, j)] of an [m × n] matrix lives
    at flat index [j * m + i]. All indices are 0-based.

    Every kernel in {!Blas2}, {!Blas3} and {!Lapack} operates on this
    type. Matrices own their storage — submatrix extraction copies.
    This keeps aliasing semantics trivial at the cost of copies, which
    is the right trade-off here because the fault-tolerance logic needs
    blocks it can verify and patch independently. *)

type t = private {
  data : float array;  (** flat column-major storage, length [rows*cols] *)
  rows : int;
  cols : int;
}

exception Dimension_mismatch of string
(** Raised by any operation whose operands have incompatible shapes.
    The payload names the operation and the offending dimensions. *)

val dim_error : string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [dim_error op fmt ...] raises {!Dimension_mismatch} with a message
    prefixed by [op]. Shared by the BLAS modules. *)

(** {1 Construction} *)

val create : int -> int -> t
(** [create m n] is the [m × n] zero matrix.
    @raise Invalid_argument if [m < 0] or [n < 0]. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init m n f] has element [(i, j)] equal to [f i j]. *)

val identity : int -> t
val scalar : int -> float -> t
(** [scalar n a] is [a · I]. *)

val of_arrays : float array array -> t
(** [of_arrays rows] builds a matrix from an array of rows (row-major
    input for readability in tests). @raise Invalid_argument on ragged
    input or an empty outer array. *)

val to_arrays : t -> float array array
(** Inverse of {!of_arrays}: an array of rows. *)

val of_col_major : rows:int -> cols:int -> float array -> t
(** [of_col_major ~rows ~cols data] wraps an existing flat column-major
    array (copied). @raise Invalid_argument if the length is wrong. *)

val copy : t -> t

(** {1 Access} *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val unsafe_get : t -> int -> int -> float
(** No bounds check; for inner loops that have already validated
    shapes. *)

val unsafe_set : t -> int -> int -> float -> unit

val col : t -> int -> Vec.t
(** [col a j] is a fresh copy of column [j]. *)

val row : t -> int -> Vec.t
(** [row a i] is a fresh copy of row [i]. *)

val set_col : t -> int -> Vec.t -> unit
val set_row : t -> int -> Vec.t -> unit

(** {1 Submatrices and block moves} *)

val sub : t -> row:int -> col:int -> rows:int -> cols:int -> t
(** [sub a ~row ~col ~rows ~cols] is a fresh copy of the given window.
    @raise Invalid_argument if the window exceeds [a]'s bounds. *)

val blit : src:t -> dst:t -> row:int -> col:int -> unit
(** [blit ~src ~dst ~row ~col] copies all of [src] into [dst] with its
    top-left corner at [(row, col)]. *)

(** {1 Elementwise and structural operations} *)

val map : (float -> float) -> t -> t
val mapi : (int -> int -> float -> float) -> t -> t
val add : t -> t -> t
val sub_mat : t -> t -> t
val scale : float -> t -> t
val transpose : t -> t
val equal : t -> t -> bool

val symmetrize_from : Types.uplo -> t -> t
(** [symmetrize_from uplo a] is a fresh symmetric matrix built by
    mirroring the triangle [uplo] of [a] onto the other one. Used when a
    kernel (e.g. SYRK) has only touched one triangle. *)

val tril : ?diag:Types.diag -> t -> t
(** Lower-triangular part; [~diag:Unit_diag] forces ones on the
    diagonal. *)

val triu : ?diag:Types.diag -> t -> t

(** {1 Norms and comparison} *)

val norm_fro : t -> float
val norm_one : t -> float
(** Maximum absolute column sum. *)

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val norm_max : t -> float
(** Largest absolute element. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Elementwise comparison within absolute tolerance [tol] (default
    [1e-9]); false on shape mismatch. *)

val rel_diff : t -> t -> float
(** [rel_diff a b] is ‖a−b‖_F / max(1, ‖b‖_F): a scale-aware distance
    used in tests of the factorization residual. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
