let fail fmt = Printf.ksprintf failwith fmt

type format_kind = Array | Coordinate
type symmetry = General | Symmetric

let parse_header line =
  match
    String.split_on_char ' ' (String.lowercase_ascii (String.trim line))
    |> List.filter (fun s -> s <> "")
  with
  | [ "%%matrixmarket"; "matrix"; fmt; field; sym ] ->
      let fmt =
        match fmt with
        | "array" -> Array
        | "coordinate" -> Coordinate
        | f -> fail "MatrixMarket: unsupported format %S" f
      in
      (match field with
      | "real" | "integer" -> ()
      | f -> fail "MatrixMarket: unsupported field %S (only real/integer)" f);
      let sym =
        match sym with
        | "general" -> General
        | "symmetric" -> Symmetric
        | s -> fail "MatrixMarket: unsupported symmetry %S" s
      in
      (fmt, sym)
  | _ -> fail "MatrixMarket: malformed header %S" line

let data_lines lines =
  List.filter
    (fun l ->
      let l = String.trim l in
      String.length l > 0 && l.[0] <> '%')
    lines

let floats_of_line line =
  String.split_on_char ' ' (String.trim line)
  |> List.filter (fun s -> s <> "")

let read_string text =
  match String.split_on_char '\n' text with
  | [] -> fail "MatrixMarket: empty input"
  | header :: rest -> (
      let fmt, sym = parse_header header in
      match data_lines rest with
      | [] -> fail "MatrixMarket: missing size line"
      | size_line :: entries -> (
          let ints =
            try List.map int_of_string (floats_of_line size_line)
            with Failure _ -> fail "MatrixMarket: bad size line %S" size_line
          in
          match (fmt, ints) with
          | Array, [ rows; cols ] ->
              let m = Mat.create rows cols in
              let expected =
                match sym with
                | General -> rows * cols
                | Symmetric ->
                    if rows <> cols then
                      fail "MatrixMarket: symmetric matrix must be square";
                    rows * (rows + 1) / 2
              in
              let values =
                List.concat_map floats_of_line entries
                |> List.map (fun s ->
                       try float_of_string s
                       with Failure _ -> fail "MatrixMarket: bad value %S" s)
              in
              if List.length values <> expected then
                fail "MatrixMarket: expected %d values, found %d" expected
                  (List.length values);
              (* column-major order; symmetric stores the lower triangle *)
              let vs = ref values in
              let next () =
                match !vs with
                | v :: tl ->
                    vs := tl;
                    v
                | [] -> assert false
              in
              (match sym with
              | General ->
                  for j = 0 to cols - 1 do
                    for i = 0 to rows - 1 do
                      Mat.set m i j (next ())
                    done
                  done
              | Symmetric ->
                  for j = 0 to cols - 1 do
                    for i = j to rows - 1 do
                      let v = next () in
                      Mat.set m i j v;
                      Mat.set m j i v
                    done
                  done);
              m
          | Coordinate, [ rows; cols; nnz ] ->
              let m = Mat.create rows cols in
              if List.length entries <> nnz then
                fail "MatrixMarket: expected %d entries, found %d" nnz
                  (List.length entries);
              List.iter
                (fun line ->
                  match floats_of_line line with
                  | [ i; j; v ] -> (
                      try
                        let i = int_of_string i - 1 and j = int_of_string j - 1 in
                        let v = float_of_string v in
                        if i < 0 || i >= rows || j < 0 || j >= cols then
                          fail "MatrixMarket: entry (%d,%d) out of range" (i + 1)
                            (j + 1);
                        Mat.set m i j v;
                        if sym = Symmetric && i <> j then Mat.set m j i v
                      with Failure _ as e -> raise e)
                  | _ -> fail "MatrixMarket: bad coordinate line %S" line)
                entries;
              m
          | Array, _ -> fail "MatrixMarket: array size line needs 2 integers"
          | Coordinate, _ ->
              fail "MatrixMarket: coordinate size line needs 3 integers"))

let read path =
  let ic = try open_in path with Sys_error e -> fail "MatrixMarket: %s" e in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  read_string text

let to_string ?(symmetric = false) m =
  let buf = Buffer.create 4096 in
  let rows = Mat.rows m and cols = Mat.cols m in
  if symmetric then begin
    if rows <> cols then invalid_arg "Mm_io.to_string: symmetric needs square";
    Buffer.add_string buf "%%MatrixMarket matrix array real symmetric\n";
    Buffer.add_string buf (Printf.sprintf "%d %d\n" rows cols);
    for j = 0 to cols - 1 do
      for i = j to rows - 1 do
        Buffer.add_string buf (Printf.sprintf "%.17g\n" (Mat.get m i j))
      done
    done
  end
  else begin
    Buffer.add_string buf "%%MatrixMarket matrix array real general\n";
    Buffer.add_string buf (Printf.sprintf "%d %d\n" rows cols);
    for j = 0 to cols - 1 do
      for i = 0 to rows - 1 do
        Buffer.add_string buf (Printf.sprintf "%.17g\n" (Mat.get m i j))
      done
    done
  end;
  Buffer.contents buf

let write ?symmetric m path =
  let oc = open_out path in
  output_string oc (to_string ?symmetric m);
  close_out oc
