(** Matrix Market I/O — lets the CLI factor user-supplied matrices.

    Supports the common real subset of the NIST Matrix Market format:
    [array] (dense, column-major) and [coordinate] (sparse triplets,
    densified on read), with [general] or [symmetric] symmetry.
    Comments ([%…]) and blank lines are skipped. Writing always emits
    [array real general] (or [symmetric], storing the lower triangle,
    when requested). *)

val read : string -> Mat.t
(** [read path] parses a Matrix Market file.
    @raise Failure with a descriptive message on malformed input,
    unsupported qualifiers ([complex], [pattern], [skew-symmetric],
    [hermitian]) or I/O errors. *)

val write : ?symmetric:bool -> Mat.t -> string -> unit
(** [write m path] writes [m]. With [~symmetric:true] only the lower
    triangle is stored under the [symmetric] qualifier ([m] must be
    square; symmetry of values is the caller's claim and is not
    checked). *)

val read_string : string -> Mat.t
(** Parse from an in-memory string — the testable core of {!read}. *)

val to_string : ?symmetric:bool -> Mat.t -> string
(** Render to a string — the testable core of {!write}. *)
