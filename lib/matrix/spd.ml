let random ?(seed = 42) ?(lo = -1.) ?(hi = 1.) m n =
  let st = Random.State.make [| seed; m; n |] in
  Mat.init m n (fun _ _ -> lo +. ((hi -. lo) *. Random.State.float st 1.))

let random_spd ?(seed = 42) ?shift n =
  let shift = match shift with Some s -> s | None -> float_of_int n in
  let m = random ~seed n n in
  let c = Mat.create n n in
  Blas3.syrk Types.Lower m c;
  let c = Mat.symmetrize_from Types.Lower c in
  Mat.mapi (fun i j v -> if i = j then v +. shift else v) c

let diag d =
  let n = Array.length d in
  Mat.init n n (fun i j -> if i = j then d.(i) else 0.)

let random_orthogonal ?(seed = 42) n =
  let m = random ~seed:(seed + 7) n n in
  (* Modified Gram–Schmidt on the columns. *)
  let q = Mat.copy m in
  for j = 0 to n - 1 do
    let v = Mat.col q j in
    for k = 0 to j - 1 do
      let u = Mat.col q k in
      let r = Vec.dot u v in
      Vec.axpy (-.r) u v
    done;
    let nrm = Vec.nrm2 v in
    (* A degenerate column (probability ~0 for random input) falls back
       to a unit basis vector re-orthogonalized implicitly by later
       columns; assert instead of papering over it. *)
    assert (nrm > 1e-12);
    Vec.scal (1. /. nrm) v;
    Mat.set_col q j v
  done;
  q

let random_spd_cond ?(seed = 42) ~cond n =
  if cond < 1. then invalid_arg "random_spd_cond: cond must be >= 1";
  let q = random_orthogonal ~seed n in
  let eigs =
    Vec.init n (fun i ->
        if n = 1 then 1.
        else
          let t = float_of_int i /. float_of_int (n - 1) in
          exp (-.t *. log cond))
  in
  let qd = Blas3.gemm_alloc q (diag eigs) in
  Blas3.gemm_alloc ~transb:Types.Trans qd q

let hilbert n = Mat.init n n (fun i j -> 1. /. float_of_int (i + j + 1))

let tridiag_laplacian n =
  Mat.init n n (fun i j ->
      if i = j then 2. else if abs (i - j) = 1 then -1. else 0.)

let kalman_covariance ?(seed = 42) n =
  let st = Random.State.make [| seed; n; 97 |] in
  let noise = Array.init n (fun _ -> 0.1 +. Random.State.float st 0.4) in
  Mat.init n n (fun i j ->
      let d = abs (i - j) in
      let corr = exp (-.float_of_int d /. 8.) in
      if i = j then 1. +. noise.(i) else corr)
