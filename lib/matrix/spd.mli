(** Generators for test and benchmark matrices.

    Everything is deterministic given [seed], so fault-injection
    experiments and property tests are reproducible run to run. *)

val random : ?seed:int -> ?lo:float -> ?hi:float -> int -> int -> Mat.t
(** [random ~seed ~lo ~hi m n] has i.i.d. uniform entries in
    [[lo, hi)] (defaults [-1., 1.]). *)

val random_spd : ?seed:int -> ?shift:float -> int -> Mat.t
(** [random_spd ~seed ~shift n] is a symmetric positive definite matrix
    built as [M·Mᵀ + shift·I] with [M] uniform in [[-1,1)]. The default
    [shift = float n] makes the matrix comfortably well conditioned —
    the same style of input the paper's experiments use. *)

val random_spd_cond : ?seed:int -> cond:float -> int -> Mat.t
(** [random_spd_cond ~seed ~cond n] is SPD with 2-norm condition number
    approximately [cond]: eigenvalues log-spaced in [[1/cond, 1]]
    conjugated by a random orthogonal matrix (from QR of a random
    matrix). @raise Invalid_argument if [cond < 1.]. *)

val random_orthogonal : ?seed:int -> int -> Mat.t
(** A Haar-ish random orthogonal matrix via Gram–Schmidt on a random
    square matrix. *)

val diag : Vec.t -> Mat.t
(** [diag d] is the diagonal matrix with diagonal [d]. *)

val hilbert : int -> Mat.t
(** The Hilbert matrix [1/(i+j+1)] — SPD but catastrophically
    ill-conditioned; used to exercise verification thresholds. *)

val tridiag_laplacian : int -> Mat.t
(** The 1-D Laplacian [tridiag(-1, 2, -1)]: a structured SPD matrix
    with known Cholesky factor behaviour. *)

val kalman_covariance : ?seed:int -> int -> Mat.t
(** A covariance-shaped SPD matrix (correlation decaying with index
    distance plus diagonal noise), as produced by Kalman-filter style
    workloads. *)
