type t = { tiles : Mat.t array array; block : int; n : int }

let create ~block ~n =
  if n <= 0 || block <= 0 || n mod block <> 0 then
    invalid_arg
      (Printf.sprintf "Tile.create: block %d must divide n %d (both > 0)" block
         n);
  let g = n / block in
  {
    tiles = Array.init g (fun _ -> Array.init g (fun _ -> Mat.create block block));
    block;
    n;
  }

let n t = t.n
let block t = t.block
let grid t = t.n / t.block

let of_mat ~block a =
  if Mat.rows a <> Mat.cols a then invalid_arg "Tile.of_mat: not square";
  let t = create ~block ~n:(Mat.rows a) in
  let g = grid t in
  for bi = 0 to g - 1 do
    for bj = 0 to g - 1 do
      let sub =
        Mat.sub a ~row:(bi * block) ~col:(bj * block) ~rows:block ~cols:block
      in
      Mat.blit ~src:sub ~dst:t.tiles.(bi).(bj) ~row:0 ~col:0
    done
  done;
  t

let to_mat t =
  let a = Mat.create t.n t.n in
  let g = grid t in
  for bi = 0 to g - 1 do
    for bj = 0 to g - 1 do
      Mat.blit ~src:t.tiles.(bi).(bj) ~dst:a ~row:(bi * t.block)
        ~col:(bj * t.block)
    done
  done;
  a

let check_range t i j =
  let g = grid t in
  if i < 0 || i >= g || j < 0 || j >= g then
    invalid_arg (Printf.sprintf "Tile: block (%d,%d) out of %dx%d grid" i j g g)

let tile t i j =
  check_range t i j;
  t.tiles.(i).(j)

let set_tile t i j m =
  check_range t i j;
  if Mat.rows m <> t.block || Mat.cols m <> t.block then
    invalid_arg "Tile.set_tile: wrong tile shape";
  Mat.blit ~src:m ~dst:t.tiles.(i).(j) ~row:0 ~col:0

let iter_tiles f t =
  let g = grid t in
  for bj = 0 to g - 1 do
    for bi = 0 to g - 1 do
      f bi bj t.tiles.(bi).(bj)
    done
  done

let copy t =
  {
    t with
    tiles = Array.map (fun row -> Array.map Mat.copy row) t.tiles;
  }

let map_tiles f t =
  let fresh = copy t in
  iter_tiles
    (fun i j m ->
      let m' = f m in
      set_tile fresh i j m')
    t;
  fresh
