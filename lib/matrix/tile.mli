(** Tiled storage of a square matrix.

    MAGMA's blocked Cholesky, and the paper's per-block checksums, both
    view the n×n input as a grid of B×B blocks. This module stores the
    matrix as that grid directly: each tile is an independent {!Mat.t}
    that can be updated, verified and patched in place — exactly the
    unit of fault tolerance in the paper. Tiles are aliased, not copied:
    [tile t i j] returns the live block.

    The matrix order must be a multiple of the tile size; the drivers
    only ever produce such sizes (as do the paper's experiments, all
    multiples of 256/512). *)

type t

val create : block:int -> n:int -> t
(** [create ~block ~n] is the zero matrix of order [n] tiled into
    [block × block] tiles.
    @raise Invalid_argument unless [n > 0], [block > 0] and
    [block] divides [n]. *)

val of_mat : block:int -> Mat.t -> t
(** [of_mat ~block a] tiles a square matrix (copying its data).
    @raise Invalid_argument as {!create}, or if [a] is not square. *)

val to_mat : t -> Mat.t
(** Reassemble a fresh dense matrix from the tiles. *)

val n : t -> int
(** Matrix order. *)

val block : t -> int
(** Tile size B. *)

val grid : t -> int
(** Number of tiles per side, [n / block]. *)

val tile : t -> int -> int -> Mat.t
(** [tile t i j] is the live tile at block coordinates [(i, j)] —
    mutating it mutates the tiled matrix.
    @raise Invalid_argument out of range. *)

val set_tile : t -> int -> int -> Mat.t -> unit
(** [set_tile t i j m] replaces the tile (the contents are copied into
    the existing tile storage so aliases remain valid).
    @raise Invalid_argument on wrong shape or range. *)

val iter_tiles : (int -> int -> Mat.t -> unit) -> t -> unit
(** Iterate over all tiles in column-major block order. *)

val copy : t -> t
(** Deep copy. *)

val map_tiles : (Mat.t -> Mat.t) -> t -> t
(** [map_tiles f t] is a fresh tiled matrix whose [(i,j)] tile is
    [f (tile t i j)]; [f] must preserve the tile shape. *)
