type trans = No_trans | Trans
type uplo = Upper | Lower
type side = Left | Right
type diag = Unit_diag | Non_unit_diag

let flip_trans = function No_trans -> Trans | Trans -> No_trans

let pp_trans fmt = function
  | No_trans -> Format.pp_print_string fmt "N"
  | Trans -> Format.pp_print_string fmt "T"

let pp_uplo fmt = function
  | Upper -> Format.pp_print_string fmt "U"
  | Lower -> Format.pp_print_string fmt "L"

let pp_side fmt = function
  | Left -> Format.pp_print_string fmt "L"
  | Right -> Format.pp_print_string fmt "R"

let pp_diag fmt = function
  | Unit_diag -> Format.pp_print_string fmt "U"
  | Non_unit_diag -> Format.pp_print_string fmt "N"
