(** Shared enumerations for BLAS-style matrix operations.

    Mirrors the conventional BLAS/LAPACK character flags ([N]/[T],
    [U]/[L], [L]/[R], [U]/[N]) as OCaml variants so that misuse is a
    type error rather than a silent wrong answer. *)

type trans =
  | No_trans  (** use the operand as stored *)
  | Trans  (** use the transpose of the operand *)

type uplo =
  | Upper  (** only the upper triangle is referenced/valid *)
  | Lower  (** only the lower triangle is referenced/valid *)

type side =
  | Left  (** the triangular operand multiplies from the left *)
  | Right  (** the triangular operand multiplies from the right *)

type diag =
  | Unit_diag  (** the triangular operand has an implicit unit diagonal *)
  | Non_unit_diag  (** the diagonal entries are stored explicitly *)

val flip_trans : trans -> trans
(** [flip_trans t] is [Trans] iff [t] is [No_trans]. *)

val pp_trans : Format.formatter -> trans -> unit
val pp_uplo : Format.formatter -> uplo -> unit
val pp_side : Format.formatter -> side -> unit
val pp_diag : Format.formatter -> diag -> unit
