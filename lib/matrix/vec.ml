type t = float array

let create n = Array.make n 0.
let init = Array.init
let copy = Array.copy
let ones n = Array.make n 1.
let ramp n = Array.init n (fun i -> float_of_int (i + 1))
let fill x a = Array.fill x 0 (Array.length x) a

let check_same_length name x y =
  if Array.length x <> Array.length y then
    invalid_arg
      (Printf.sprintf "Vec.%s: length mismatch (%d vs %d)" name
         (Array.length x) (Array.length y))

let scal alpha x =
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set x i (alpha *. Array.unsafe_get x i)
  done

let axpy alpha x y =
  check_same_length "axpy" x y;
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set y i
      ((alpha *. Array.unsafe_get x i) +. Array.unsafe_get y i)
  done

let dot x y =
  check_same_length "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (Array.unsafe_get x i *. Array.unsafe_get y i)
  done;
  !acc

(* Scaled two-pass formulation: divide by the max magnitude first so the
   squares cannot overflow even for vectors of huge elements. *)
let nrm2 x =
  let n = Array.length x in
  if n = 0 then 0.
  else begin
    let amax = ref 0. in
    for i = 0 to n - 1 do
      let a = abs_float (Array.unsafe_get x i) in
      if a > !amax then amax := a
    done;
    if Float.equal !amax 0. then 0.
    else begin
      let scale = !amax in
      let acc = ref 0. in
      for i = 0 to n - 1 do
        let v = Array.unsafe_get x i /. scale in
        acc := !acc +. (v *. v)
      done;
      scale *. sqrt !acc
    end
  end

let asum x =
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. abs_float (Array.unsafe_get x i)
  done;
  !acc

let iamax x =
  let n = Array.length x in
  if n = 0 then invalid_arg "Vec.iamax: empty vector";
  let best = ref 0 and best_abs = ref (abs_float x.(0)) in
  for i = 1 to n - 1 do
    let a = abs_float (Array.unsafe_get x i) in
    if a > !best_abs then begin
      best := i;
      best_abs := a
    end
  done;
  !best

let add x y =
  check_same_length "add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_same_length "sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let map = Array.map

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  && begin
       let ok = ref true in
       for i = 0 to Array.length x - 1 do
         if abs_float (x.(i) -. y.(i)) > tol then ok := false
       done;
       !ok
     end

let pp fmt x =
  Format.fprintf fmt "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
       (fun f v -> Format.fprintf f "%.4g" v))
    (Array.to_list x)
