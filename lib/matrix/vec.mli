(** Dense vectors of [float] and the BLAS level-1 operations on them.

    A vector is a plain [float array]; this module only adds the numeric
    kernels and a few constructors, so interop with the rest of the code
    base is zero-cost. All kernels are written with explicit loops and
    unsafe accesses guarded by a single upfront dimension check — the
    style used throughout the [matrix] library. *)

type t = float array

val create : int -> t
(** [create n] is a fresh zero vector of length [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val copy : t -> t
(** [copy x] is a fresh vector equal to [x]. *)

val ones : int -> t
(** [ones n] is the all-ones vector, i.e. the first ABFT checksum
    weight vector [v1] of the paper. *)

val ramp : int -> t
(** [ramp n] is [| 1.; 2.; ...; float n |], the second ABFT checksum
    weight vector [v2] of the paper. *)

val fill : t -> float -> unit
(** [fill x a] sets every element of [x] to [a]. *)

val scal : float -> t -> unit
(** [scal alpha x] scales [x <- alpha * x] in place. *)

val axpy : float -> t -> t -> unit
(** [axpy alpha x y] computes [y <- alpha * x + y] in place.
    @raise Invalid_argument if lengths differ. *)

val dot : t -> t -> float
(** [dot x y] is the inner product Σᵢ xᵢ·yᵢ.
    @raise Invalid_argument if lengths differ. *)

val nrm2 : t -> float
(** [nrm2 x] is the Euclidean norm ‖x‖₂, computed with scaling to avoid
    intermediate overflow. *)

val asum : t -> float
(** [asum x] is Σᵢ |xᵢ|. *)

val iamax : t -> int
(** [iamax x] is the index of the first element of maximal absolute
    value. @raise Invalid_argument on the empty vector. *)

val add : t -> t -> t
(** [add x y] is the fresh vector [x + y]. *)

val sub : t -> t -> t
(** [sub x y] is the fresh vector [x - y]. *)

val map : (float -> float) -> t -> t
(** [map f x] is the fresh vector with [f] applied pointwise. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** [approx_equal ~tol x y] is true when the vectors have equal length
    and every componentwise difference is at most [tol] (default
    [1e-9]). *)

val pp : Format.formatter -> t -> unit
(** Human-readable printer, e.g. [[1.00; 2.00; 3.00]]. *)
