(* Unified observability: a monotonic-clock span tracer plus a
   counters/histograms registry, designed so a disabled (null) sink
   costs one branch at every instrumentation point and a clean run
   stays bit-identical to an uninstrumented one.

   Concurrency model: every domain that emits owns a private cell
   (spans list + counter/histogram tables) found through a lock-free
   registry — an immutable list swapped by compare-and-set only when a
   new domain first emits. Appends never synchronize; collection
   happens after the instrumented work has joined (pool batches
   complete before the driver reads the sink), so merge time is the
   only reader. *)

module Json = struct
  (* The one JSON string escaper for the whole repo (Chrome traces,
     bench sinks, soak reports). RFC 8259: double quote, backslash and
     every control character must be escaped; everything else passes
     through untouched (UTF-8 bytes survive as-is). *)
  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let quote s = "\"" ^ escape s ^ "\""

  (* JSON has no NaN/Infinity literals; %.17g would emit them and
     corrupt the document, so non-finite values are serialized as the
     quoted strings "nan" / "inf" / "-inf" — lossless and parseable. *)
  let number f =
    match Float.classify_float f with
    | FP_nan -> quote "nan"
    | FP_infinite -> quote (if f > 0. then "inf" else "-inf")
    | FP_zero | FP_subnormal | FP_normal ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Printf.sprintf "%.1f" f
        else Printf.sprintf "%.17g" f
end

type span = {
  op : string;
  phase : string;
  tile : (int * int) option;
  dom : int;  (* domain id at emit time: the trace tid *)
  t0 : float;  (* absolute monotonic seconds *)
  t1 : float;
}

type hist = {
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

type cell = {
  dom_id : int;
  mutable spans : span list;  (* newest first; only the owner appends *)
  counters : (string, float ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

type t = { enabled : bool; cells : cell list Atomic.t }

let null = { enabled = false; cells = Atomic.make [] }
let create () = { enabled = true; cells = Atomic.make [] }
let enabled t = t.enabled

let clock () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let cell t =
  let id = (Domain.self () :> int) in
  let rec find = function
    | [] -> None
    | c :: rest -> if c.dom_id = id then Some c else find rest
  in
  let rec get () =
    match find (Atomic.get t.cells) with
    | Some c -> c
    | None ->
        let c =
          {
            dom_id = id;
            spans = [];
            counters = Hashtbl.create 16;
            hists = Hashtbl.create 8;
          }
        in
        let cur = Atomic.get t.cells in
        if Atomic.compare_and_set t.cells cur (c :: cur) then c else get ()
  in
  get ()

let start t = if t.enabled then clock () else 0.

let stop t ?tile ~op ~phase t0 =
  if t.enabled then begin
    let t1 = clock () in
    let c = cell t in
    c.spans <- { op; phase; tile; dom = c.dom_id; t0; t1 } :: c.spans
  end

let span t ?tile ~op ~phase f =
  if t.enabled then begin
    let t0 = clock () in
    match f () with
    | v ->
        stop t ?tile ~op ~phase t0;
        v
    | exception e ->
        stop t ?tile ~op ~phase t0;
        raise e
  end
  else f ()

let incr t ?(by = 1.) name =
  if t.enabled then begin
    let c = cell t in
    match Hashtbl.find_opt c.counters name with
    | Some r -> r := !r +. by
    | None -> Hashtbl.add c.counters name (ref by)
  end

let observe t name v =
  if t.enabled then begin
    let c = cell t in
    match Hashtbl.find_opt c.hists name with
    | Some h ->
        h.n <- h.n + 1;
        h.sum <- h.sum +. v;
        if v < h.minv then h.minv <- v;
        if v > h.maxv then h.maxv <- v
    | None -> Hashtbl.add c.hists name { n = 1; sum = v; minv = v; maxv = v }
  end

(* ---- collection (call after instrumented work has joined) ---- *)

let span_order a b =
  let c = Float.compare a.t0 b.t0 in
  if c <> 0 then c
  else
    let c = Int.compare a.dom b.dom in
    if c <> 0 then c else Float.compare a.t1 b.t1

let spans t =
  Atomic.get t.cells
  |> List.concat_map (fun c -> List.rev c.spans)
  |> List.sort span_order

let counters t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun c ->
      Hashtbl.iter
        (fun k v ->
          let prev = Option.value (Hashtbl.find_opt tbl k) ~default:0. in
          Hashtbl.replace tbl k (prev +. !v))
        c.counters)
    (Atomic.get t.cells);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hists t =
  let tbl : (string, hist) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun c ->
      Hashtbl.iter
        (fun k (h : hist) ->
          match Hashtbl.find_opt tbl k with
          | Some m ->
              m.n <- m.n + h.n;
              m.sum <- m.sum +. h.sum;
              if h.minv < m.minv then m.minv <- h.minv;
              if h.maxv > m.maxv then m.maxv <- h.maxv
          | None ->
              Hashtbl.add tbl k
                { n = h.n; sum = h.sum; minv = h.minv; maxv = h.maxv })
        c.hists)
    (Atomic.get t.cells);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let op_totals t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let dur = s.t1 -. s.t0 in
      match Hashtbl.find_opt tbl s.op with
      | Some (sum, n) -> Hashtbl.replace tbl s.op (sum +. dur, n + 1)
      | None -> Hashtbl.add tbl s.op (dur, 1))
    (spans t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, (a, _)) (kb, (b, _)) ->
         let c = Float.compare b a in
         if c <> 0 then c else String.compare ka kb)

let total_span_s t =
  List.fold_left (fun acc s -> acc +. (s.t1 -. s.t0)) 0. (spans t)

let metric_list t =
  List.concat_map
    (fun (op, (s, n)) ->
      [ ("op." ^ op ^ "_s", s); ("op." ^ op ^ "_n", float_of_int n) ])
    (op_totals t)
  @ List.map (fun (k, v) -> ("counter." ^ k, v)) (counters t)
  @ List.concat_map
      (fun (k, (h : hist)) ->
        [
          ("hist." ^ k ^ "_n", float_of_int h.n);
          ("hist." ^ k ^ "_sum", h.sum);
          ("hist." ^ k ^ "_min", h.minv);
          ("hist." ^ k ^ "_max", h.maxv);
        ])
      (hists t)

(* ---- exporters ---- *)

let chrome_trace_of_spans spans =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let base =
    match spans with
    | [] -> 0.
    | s :: rest -> List.fold_left (fun acc x -> Float.min acc x.t0) s.t0 rest
  in
  let first = ref true in
  let emit s =
    if not !first then Buffer.add_string buf ",";
    first := false;
    Buffer.add_string buf s
  in
  let doms = List.sort_uniq Int.compare (List.map (fun s -> s.dom) spans) in
  List.iter
    (fun d ->
      emit
        (Printf.sprintf
           {|{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"domain-%d"}}|}
           d d))
    doms;
  List.iter
    (fun s ->
      let args =
        match s.tile with
        | None -> ""
        | Some (i, c) -> Printf.sprintf {|,"args":{"tile":"(%d,%d)"}|} i c
      in
      emit
        (Printf.sprintf
           {|{"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d%s}|}
           (Json.escape s.op) (Json.escape s.phase)
           ((s.t0 -. base) *. 1e6)
           ((s.t1 -. s.t0) *. 1e6)
           s.dom args))
    spans;
  Buffer.add_string buf "]";
  Buffer.contents buf

let chrome_trace t = chrome_trace_of_spans (spans t)

type metrics_record = {
  experiment : string;
  name : string;
  size : int;
  metrics : (string * float) list;
}

let metrics_json records =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"schema_version\": 1,\n  \"results\": [";
  List.iteri
    (fun i r ->
      out
        "%s\n    { \"experiment\": \"%s\", \"name\": \"%s\", \"size\": %d, \
         \"metrics\": {"
        (if i = 0 then "" else ",")
        (Json.escape r.experiment) (Json.escape r.name) r.size;
      List.iteri
        (fun k (key, v) ->
          out "%s\"%s\": %s"
            (if k = 0 then " " else ", ")
            (Json.escape key) (Json.number v))
        r.metrics;
      out " } }")
    records;
  out "\n  ]\n}\n";
  Buffer.contents buf

let summary_table t =
  let ops = op_totals t in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-14s %10s %8s %10s\n" "op" "total_s" "spans" "mean_ms");
  List.iter
    (fun (op, (s, n)) ->
      Buffer.add_string buf
        (Printf.sprintf "%-14s %10.4f %8d %10.4f\n" op s n
           (s /. float_of_int n *. 1e3)))
    ops;
  Buffer.contents buf
