(** Unified observability: monotonic-clock span tracing plus a
    counters/histograms registry, with JSON exporters shared by every
    sink in the repo.

    {b Null-sink contract.} The default sink ({!null}) is disabled:
    every instrumentation entry point ({!start}, {!stop}, {!span},
    {!incr}, {!observe}) tests one boolean and returns. A traced run
    therefore executes exactly the same numeric code as an untraced
    one — factors are bitwise identical — and an untraced run pays a
    branch per instrumentation point, nothing more.

    {b Concurrency.} Each emitting domain owns a private buffer,
    registered in a lock-free (compare-and-set) list the first time
    that domain emits. Emission never takes a lock; collection
    ({!spans}, {!counters}, …) merges the per-domain buffers and must
    run after the instrumented work has joined (e.g. after the pool
    batch that emitted from workers has completed — the pool's join
    provides the needed synchronization). *)

(** The shared JSON primitives (the only string escaper and float
    serializer the repo's hand-rolled JSON sinks may use). *)
module Json : sig
  val escape : string -> string
  (** RFC 8259 string-body escaping: double quote, backslash and all
      control characters (as [\n]/[\r]/[\t] or [\u00XX]); everything
      else is passed through byte-for-byte. *)

  val quote : string -> string
  (** [quote s] wraps [escape s] in double quotes. *)

  val number : float -> string
  (** Finite floats serialize as JSON numbers (integers as [x.0],
      others at full [%.17g] precision). NaN and infinities — which
      JSON cannot represent as numbers — serialize as the quoted
      strings ["nan"], ["inf"], ["-inf"], keeping the document
      parseable. *)
end

type span = {
  op : string;  (** operation name, e.g. ["gemm"] *)
  phase : string;  (** category, e.g. ["compute"], ["chk-update"] *)
  tile : (int * int) option;  (** tile coordinates, when per-tile *)
  dom : int;  (** emitting domain id — the per-domain trace [tid] *)
  t0 : float;  (** absolute monotonic seconds *)
  t1 : float;
}

type hist = {
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

type t

val null : t
(** The disabled sink: all emission is a single branch. *)

val create : unit -> t
(** A fresh enabled sink. *)

val enabled : t -> bool

(** {1 Emission} *)

val start : t -> float
(** Begin a span: the current monotonic time ([0.] when disabled). *)

val stop : t -> ?tile:int * int -> op:string -> phase:string -> float -> unit
(** [stop t ~op ~phase t0] records a span from [t0] (a {!start}
    result) to now, attributed to the calling domain. *)

val span : t -> ?tile:int * int -> op:string -> phase:string -> (unit -> 'a) -> 'a
(** [span t ~op ~phase f] runs [f ()] inside a span (recorded even if
    [f] raises). When disabled, just [f ()]. *)

val incr : t -> ?by:float -> string -> unit
(** Add [by] (default 1) to a named counter. *)

val observe : t -> string -> float -> unit
(** Add one observation to a named histogram (count/sum/min/max). *)

(** {1 Collection — after instrumented work has joined} *)

val spans : t -> span list
(** All spans, merged across domains, sorted by start time. *)

val counters : t -> (string * float) list
(** Counter totals summed across domains, sorted by name. *)

val hists : t -> (string * hist) list
(** Histograms merged across domains, sorted by name. *)

val op_totals : t -> (string * (float * int)) list
(** Per-op summed duration and span count, largest total first. *)

val total_span_s : t -> float
(** Sum of every span's duration (across all domains — under a pool
    this is busy time, not wall time). *)

val metric_list : t -> (string * float) list
(** Everything as flat bench-convention metrics:
    [op.<op>_s]/[op.<op>_n] per op, [counter.<name>] per counter,
    [hist.<name>_{n,sum,min,max}] per histogram. *)

(** {1 Exporters} *)

val chrome_trace : t -> string
(** The sink's spans as a Chrome Trace-Event JSON array (complete
    events, [pid] 1, one [tid] per domain with [thread_name]
    metadata, timestamps rebased to the earliest span). Loads in
    Perfetto / [about:tracing]. *)

val chrome_trace_of_spans : span list -> string
(** Same, over an explicit span list — e.g. the concatenation of
    several sinks' spans (all timestamps share the one monotonic
    clock, so merged lists remain globally ordered). *)

type metrics_record = {
  experiment : string;
  name : string;
  size : int;
  metrics : (string * float) list;
}

val metrics_json : metrics_record list -> string
(** The bench-convention results document
    ([{"schema_version": 1, "results": [...]}]) over the given
    records — the same shape [bench --json] writes. *)

val summary_table : t -> string
(** A compact per-op table (total seconds, span count, mean ms), one
    line per op, largest total first. *)
