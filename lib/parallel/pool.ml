(* A fixed-size domain pool: the real-core analogue of the paper's N
   CUDA streams (Optimization 1). One pool is created up front and
   reused for every batch of independent work items — fanning a batch
   out across the pool costs two lock round-trips, not N domain spawns.

   Design constraints, in order:
   - determinism: the pool never splits a work item, so any numeric
     kernel that keeps a fixed reduction order per item produces
     bitwise-identical results for every pool size (the ABFT rounding
     thresholds rely on this);
   - reentrancy: a task that (transitively) calls back into the pool
     runs the nested batch inline on its own domain instead of
     deadlocking on the single job slot;
   - zero dependencies: Domain + Mutex/Condition + Atomic from the
     OCaml 5 stdlib only. *)

type job = {
  run : int -> unit;
  ntasks : int;
  next : int Atomic.t;  (* next task index to claim *)
  mutable completed : int;  (* guarded by the pool mutex *)
  mutable err : exn option;  (* first exception raised by a task *)
}

(* One declared write rectangle (inclusive element ranges) from the
   opt-in tile-race detector; [tag] names the logical array so claims
   on different matrices never clash. *)
type claim = { tag : string; rows : int * int; cols : int * int }

type t = {
  lanes : int;  (* worker domains + the submitting caller *)
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work : Condition.t;  (* signalled when a job is posted / on shutdown *)
  finished : Condition.t;  (* signalled when a job's last task completes *)
  mutable job : job option;  (* the single in-flight job *)
  mutable gen : int;  (* bumped per job so sleeping workers wake once *)
  mutable stopped : bool;
  racecheck : bool;  (* ABFT_RACECHECK instrumentation on for this pool *)
  claims_m : Mutex.t;  (* guards [claims]; never held with [m] *)
  claims : (int, claim list) Hashtbl.t;  (* in-flight task id -> claims *)
  mutable obs : Obs.t;  (* batch/task counters sink; Obs.null by default *)
}

exception Race of string

(* True while the current domain is executing pool tasks: nested
   parallel_* calls from inside a task run inline. *)
let draining : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* The (pool, task index) the current domain is executing, for claim
   attribution under ABFT_RACECHECK. Nested inline batches keep the
   outer token: their writes belong to the outer work item. *)
let current_task : (t * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let ranges_overlap (a0, a1) (b0, b1) = a0 <= b1 && b0 <= a1

let pp_claim c =
  let r0, r1 = c.rows and c0, c1 = c.cols in
  Printf.sprintf "%s[%d..%d, %d..%d]" c.tag r0 r1 c0 c1

(* Register a write rectangle for the current work item and assert it
   is disjoint from every rectangle declared by the other in-flight
   items of [t]. Free (one boolean test) when racecheck is off. *)
let declare_write t ~tag ~rows ~cols =
  if t.racecheck then begin
    match Domain.DLS.get current_task with
    | Some (owner, id) when owner == t ->
        let mine = { tag; rows; cols } in
        Mutex.lock t.claims_m;
        let clash = ref None in
        Hashtbl.iter
          (fun id' cs ->
            if id' <> id && !clash = None then
              match
                List.find_opt
                  (fun c ->
                    c.tag = tag
                    && ranges_overlap c.rows rows
                    && ranges_overlap c.cols cols)
                  cs
              with
              | Some c -> clash := Some (id', c)
              | None -> ())
          t.claims;
        (match !clash with
        | None ->
            let prev =
              match Hashtbl.find_opt t.claims id with
              | Some cs -> cs
              | None -> []
            in
            Hashtbl.replace t.claims id (mine :: prev);
            Mutex.unlock t.claims_m
        | Some (id', c) ->
            Mutex.unlock t.claims_m;
            raise
              (Race
                 (Printf.sprintf
                    "tile race: work item %d declares write %s overlapping \
                     %s already claimed by in-flight item %d"
                    id (pp_claim mine) (pp_claim c) id')))
    | _ ->
        (* Not inside a task of this pool (sequential section, degraded
           inline batch, or a different pool's item): nothing to race
           against at this granularity. *)
        ()
  end

let clear_claims pool i =
  if pool.racecheck then begin
    Mutex.lock pool.claims_m;
    Hashtbl.remove pool.claims i;
    Mutex.unlock pool.claims_m
  end

let drain pool (j : job) =
  let outer = Domain.DLS.get draining in
  Domain.DLS.set draining true;
  let rec loop () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.ntasks then begin
      let token = Domain.DLS.get current_task in
      if pool.racecheck then Domain.DLS.set current_task (Some (pool, i));
      (try j.run i
       with e ->
         Mutex.lock pool.m;
         if j.err = None then j.err <- Some e;
         Mutex.unlock pool.m)
      [@abft.waive
        "exception trampoline, not a swallow: the first task exception is \
         recorded and re-raised by run_tasks after the batch drains"];
      if pool.racecheck then begin
        Domain.DLS.set current_task token;
        clear_claims pool i
      end;
      Mutex.lock pool.m;
      j.completed <- j.completed + 1;
      if j.completed = j.ntasks then Condition.broadcast pool.finished;
      Mutex.unlock pool.m;
      loop ()
    end
  in
  loop ();
  Domain.DLS.set draining outer

let worker pool =
  let rec wait last_gen =
    Mutex.lock pool.m;
    while (not pool.stopped) && pool.gen = last_gen do
      Condition.wait pool.work pool.m
    done;
    if pool.stopped then Mutex.unlock pool.m
    else begin
      let gen = pool.gen in
      (* The job may already be done and cleared by the time a slow
         waker gets here — that's just a stale generation, not an
         error. Re-arm on the new generation. *)
      let j = pool.job in
      Mutex.unlock pool.m;
      (match j with Some j -> drain pool j | None -> ());
      wait gen
    end
  in
  wait 0

let racecheck_env_var = "ABFT_RACECHECK"

let env_racecheck () =
  match Sys.getenv_opt racecheck_env_var with
  | Some ("1" | "true" | "on" | "yes") -> true
  | Some _ | None -> false

let create ?domains ?racecheck ?(obs = Obs.null) () =
  let lanes =
    match domains with
    | None -> Domain.recommended_domain_count ()
    | Some d when d >= 1 -> d
    | Some d -> invalid_arg (Printf.sprintf "Pool.create: domains %d < 1" d)
  in
  let racecheck =
    match racecheck with Some b -> b | None -> env_racecheck ()
  in
  let pool =
    {
      lanes;
      workers = [||];
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      gen = 0;
      stopped = false;
      racecheck;
      claims_m = Mutex.create ();
      claims = Hashtbl.create 64;
      obs;
    }
  in
  pool.workers <- Array.init (lanes - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size t = t.lanes
let racecheck_enabled t = t.racecheck
let obs t = t.obs
let set_obs t obs = t.obs <- obs

let shutdown t =
  Mutex.lock t.m;
  let was = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  if not was then Array.iter Domain.join t.workers

(* Run [run 0 .. run (ntasks-1)] across the pool; the caller
   participates. Tasks are claimed dynamically (atomic counter), so
   uneven task costs balance. Re-raises the first task exception after
   the whole batch has drained. *)
let run_tasks t ~ntasks run =
  if ntasks = 1 then run 0
  else if ntasks > 1 then begin
    (* Batch accounting only — no per-task spans here: the pool must
       not change what gets recorded between pool sizes (size-1 pools
       and nested batches bypass the job machinery entirely), so
       size-sensitive counters carry the "pool." prefix and span
       emission stays with the caller's work items. *)
    Obs.incr t.obs ~by:(float_of_int ntasks) "pool.tasks";
    if t.lanes = 1 || Domain.DLS.get draining then begin
      Obs.incr t.obs "pool.inline_batches";
      for i = 0 to ntasks - 1 do
        run i
      done
    end
    else begin
      Mutex.lock t.m;
      if t.stopped then begin
        Mutex.unlock t.m;
        invalid_arg "Pool: used after shutdown"
      end;
      match t.job with
      | Some _ ->
          (* Another domain is already using this pool: degrade to
             inline rather than queueing (the pool has one job slot). *)
          Mutex.unlock t.m;
          Obs.incr t.obs "pool.inline_batches";
          for i = 0 to ntasks - 1 do
            run i
          done
      | None ->
          let j =
            { run; ntasks; next = Atomic.make 0; completed = 0; err = None }
          in
          Obs.incr t.obs "pool.jobs";
          t.job <- Some j;
          t.gen <- t.gen + 1;
          Condition.broadcast t.work;
          Mutex.unlock t.m;
          drain t j;
          Mutex.lock t.m;
          while j.completed < ntasks do
            Condition.wait t.finished t.m
          done;
          t.job <- None;
          Mutex.unlock t.m;
          (match j.err with Some e -> raise e | None -> ())
    end
  end

(* Iterate [f lo .. f (hi-1)]. [chunk] consecutive indices form one
   task (default: ~4 tasks per lane, at least 1 index each) — chunking
   amortizes the per-task atomic claim without affecting results, since
   every index still runs exactly once, in ascending order within its
   chunk. *)
let parallel_for ?chunk t ~lo ~hi f =
  let n = hi - lo in
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some c -> invalid_arg (Printf.sprintf "Pool.parallel_for: chunk %d < 1" c)
      | None -> max 1 (n / (4 * t.lanes))
    in
    let ntasks = (n + chunk - 1) / chunk in
    run_tasks t ~ntasks (fun c ->
        let first = lo + (c * chunk) in
        let last = min hi (first + chunk) - 1 in
        for i = first to last do
          f i
        done)
  end

(* Split [lo, hi) into at most [size t] near-equal contiguous ranges
   and run [f ~lo ~hi] on each — for kernels that want whole panels
   (e.g. a column-panel GEMM) rather than single indices. *)
let parallel_chunks t ~lo ~hi f =
  let n = hi - lo in
  if n > 0 then begin
    let pieces = min t.lanes n in
    let base = n / pieces and rem = n mod pieces in
    run_tasks t ~ntasks:pieces (fun c ->
        let extra = min c rem in
        let first = lo + (c * base) + extra in
        let len = base + if c < rem then 1 else 0 in
        f ~lo:first ~hi:(first + len))
  end

(* ------------------------------------------------------------------ *)
(* The process-wide default pool                                       *)
(* ------------------------------------------------------------------ *)

let env_var = "ABFT_DOMAINS"

let default_lanes () =
  match Sys.getenv_opt env_var with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_mutex = Mutex.create ()
let default_pool : t option ref = ref None

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ~domains:(default_lanes ()) () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mutex;
  p
