(** A reusable fixed-size domain pool — the real-core analogue of the
    paper's N concurrent CUDA streams (Optimization 1).

    The paper makes checksum recalculation cheap by issuing the
    independent [vᵀ·A_block] kernels concurrently on N streams; on the
    host side the same batch structure fans out across OCaml 5 domains.
    One pool is created per process (or per driver) and reused for
    every batch, so domains are spawned once, not per kernel.

    {b Determinism.} The pool distributes whole work items and never
    splits one, so a kernel that fixes its reduction order per item
    produces bitwise-identical results for every pool size — the
    property the ABFT rounding thresholds depend on, and the reason
    [ABFT_DOMAINS=1] and [ABFT_DOMAINS=8] factorizations agree to the
    last bit.

    {b Reentrancy.} A task that calls back into the pool (e.g. a
    parallel tile sweep whose per-tile kernel is itself pool-aware)
    runs the nested batch inline on its own domain — nesting is safe
    and free, never a deadlock.

    Built on [Domain], [Mutex]/[Condition] and [Atomic] only; no
    dependencies outside the OCaml 5 stdlib. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] starts a pool with [domains] total lanes of
    parallelism: [domains - 1] worker domains plus the calling domain,
    which participates in every batch it submits. Defaults to
    {!Domain.recommended_domain_count}.
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Total lanes (workers + caller). A pool of size 1 spawns no domains
    and runs everything inline. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent. Submitting to a pool after
    shutdown raises [Invalid_argument]. *)

val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi f] runs [f i] for every [lo <= i < hi]
    across the pool. [chunk] consecutive indices form one dynamically
    claimed task (default ≈ 4 tasks per lane), balancing uneven costs —
    e.g. the triangle-shaped columns of a SYRK. Returns when all
    indices have run; if tasks raised, re-raises one of the exceptions
    (the first recorded) after the batch has fully drained.
    @raise Invalid_argument if [chunk < 1]. *)

val parallel_chunks : t -> lo:int -> hi:int -> (lo:int -> hi:int -> unit) -> unit
(** [parallel_chunks t ~lo ~hi f] splits [lo, hi) into at most
    [size t] near-equal contiguous ranges and runs [f ~lo ~hi] on each
    ([hi] exclusive) — for kernels that process whole panels. Same
    completion and exception contract as {!parallel_for}. *)

val run_tasks : t -> ntasks:int -> (int -> unit) -> unit
(** The primitive under both iterators: run tasks [0 .. ntasks-1],
    caller participating, dynamic claiming, exceptions re-raised after
    the drain. *)

(** {1 The process-wide default pool} *)

val default : unit -> t
(** The shared default pool, created on first use and never shut down.
    Sized by the [ABFT_DOMAINS] environment variable when set to a
    positive integer, otherwise {!Domain.recommended_domain_count}.
    Every pool-aware kernel falls back to this pool when no explicit
    [?pool] is given, so [ABFT_DOMAINS=1] forces the whole process
    sequential without code changes. *)

val default_lanes : unit -> int
(** The lane count {!default} would use (reads the environment on
    every call; the default pool itself is created once). *)

val env_var : string
(** ["ABFT_DOMAINS"]. *)
