(** A reusable fixed-size domain pool — the real-core analogue of the
    paper's N concurrent CUDA streams (Optimization 1).

    The paper makes checksum recalculation cheap by issuing the
    independent [vᵀ·A_block] kernels concurrently on N streams; on the
    host side the same batch structure fans out across OCaml 5 domains.
    One pool is created per process (or per driver) and reused for
    every batch, so domains are spawned once, not per kernel.

    {b Determinism.} The pool distributes whole work items and never
    splits one, so a kernel that fixes its reduction order per item
    produces bitwise-identical results for every pool size — the
    property the ABFT rounding thresholds depend on, and the reason
    [ABFT_DOMAINS=1] and [ABFT_DOMAINS=8] factorizations agree to the
    last bit.

    {b Reentrancy.} A task that calls back into the pool (e.g. a
    parallel tile sweep whose per-tile kernel is itself pool-aware)
    runs the nested batch inline on its own domain — nesting is safe
    and free, never a deadlock.

    Built on [Domain], [Mutex]/[Condition] and [Atomic] only; no
    dependencies outside the OCaml 5 stdlib. *)

type t

val create : ?domains:int -> ?racecheck:bool -> ?obs:Obs.t -> unit -> t
(** [create ~domains ()] starts a pool with [domains] total lanes of
    parallelism: [domains - 1] worker domains plus the calling domain,
    which participates in every batch it submits. Defaults to
    {!Domain.recommended_domain_count}.

    [racecheck] opts the pool into the dynamic tile-race detector (see
    {!declare_write}); it defaults to the [ABFT_RACECHECK] environment
    variable ([1]/[true]/[on]/[yes] enable it).

    [obs] (default [Obs.null]) receives batch accounting counters —
    ["pool.jobs"], ["pool.tasks"], ["pool.inline_batches"]. The pool
    emits counters only, never spans: what the sink records per work
    item is the caller's business, so traces stay identical across
    pool sizes. The ["pool."]-prefixed counters themselves are
    legitimately size-sensitive (a size-1 pool runs batches inline).
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Total lanes (workers + caller). A pool of size 1 spawns no domains
    and runs everything inline. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent. Submitting to a pool after
    shutdown raises [Invalid_argument]. *)

val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi f] runs [f i] for every [lo <= i < hi]
    across the pool. [chunk] consecutive indices form one dynamically
    claimed task (default ≈ 4 tasks per lane), balancing uneven costs —
    e.g. the triangle-shaped columns of a SYRK. Returns when all
    indices have run; if tasks raised, re-raises one of the exceptions
    (the first recorded) after the batch has fully drained.
    @raise Invalid_argument if [chunk < 1]. *)

val parallel_chunks : t -> lo:int -> hi:int -> (lo:int -> hi:int -> unit) -> unit
(** [parallel_chunks t ~lo ~hi f] splits [lo, hi) into at most
    [size t] near-equal contiguous ranges and runs [f ~lo ~hi] on each
    ([hi] exclusive) — for kernels that process whole panels. Same
    completion and exception contract as {!parallel_for}. *)

val run_tasks : t -> ntasks:int -> (int -> unit) -> unit
(** The primitive under both iterators: run tasks [0 .. ntasks-1],
    caller participating, dynamic claiming, exceptions re-raised after
    the drain. *)

(** {1 Dynamic tile-race detection}

    The static rule R1 (abftlint) proves closures don't write captured
    scalars; block writes routed through kernels are claimed at run
    time instead. With racecheck on, each work item calls
    {!declare_write} for every tile range it is about to write and the
    pool asserts pairwise disjointness across in-flight items —
    overlapping claims mean two concurrent items could write the same
    element, the exact silent-corruption mode ABFT must not introduce
    itself. With racecheck off (the default) the declarations cost one
    boolean test and allocate nothing further. *)

exception Race of string
(** Raised (out of {!run_tasks}, after the batch drains) when two
    in-flight work items declare overlapping write rectangles on the
    same tag. *)

val declare_write :
  t -> tag:string -> rows:int * int -> cols:int * int -> unit
(** [declare_write t ~tag ~rows:(r0, r1) ~cols:(c0, c1)] claims the
    inclusive element rectangle [r0..r1 × c0..c1] of the logical array
    [tag] for the calling work item. No-op when the pool was created
    without [racecheck], or when the caller is not executing a task of
    [t] (a sequential section cannot race). Claims are released when
    the work item finishes.
    @raise Race on overlap with another in-flight item's claim. *)

val racecheck_enabled : t -> bool
(** Whether this pool was created with racecheck on — guard any
    non-trivial range computation at instrumentation sites. *)

(** {1 Observability} *)

val obs : t -> Obs.t
(** The pool's current sink ([Obs.null] unless set). *)

val set_obs : t -> Obs.t -> unit
(** Swap the pool's sink. Drivers handed a long-lived pool attach
    their run's sink for the duration of the run and restore the
    previous one after; call only from the submitting domain, between
    batches. *)

val racecheck_env_var : string
(** ["ABFT_RACECHECK"]. *)

(** {1 The process-wide default pool} *)

val default : unit -> t
(** The shared default pool, created on first use and never shut down.
    Sized by the [ABFT_DOMAINS] environment variable when set to a
    positive integer, otherwise {!Domain.recommended_domain_count}.
    Every pool-aware kernel falls back to this pool when no explicit
    [?pool] is given, so [ABFT_DOMAINS=1] forces the whole process
    sequential without code changes. *)

val default_lanes : unit -> int
(** The lane count {!default} would use (reads the environment on
    every call; the default pool itself is created once). *)

val env_var : string
(** ["ABFT_DOMAINS"]. *)
