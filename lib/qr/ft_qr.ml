open Matrix

let src = Logs.Src.create "ftchol.qr" ~doc:"FT QR driver events"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome = Success | Silent_corruption | Gave_up of string

type stats = {
  verifications : int;
  corrections : int;
  uncorrectable_events : int;
  fail_stops : int;
  restarts : int;
}

type report = {
  q : Mat.t;
  r : Mat.t;
  outcome : outcome;
  residual : float;
  orthogonality : float;
  stats : stats;
  injections_fired : Injector.fired list;
}

let residual_threshold = 1e-6

exception Recovery of string

type state = {
  m : int;
  block : int;
  nb : int;  (* number of panels *)
  tol : float;
  fused : bool;
  panels : Mat.t array;  (* m x block each; A panels becoming Q panels *)
  chks : Panelchk.t array option;
  r : Mat.t;  (* n x n upper, unprotected (see .mli) *)
  injector : Injector.t;
  mutable verifications : int;
  mutable corrections : int;
}

let lookup st (i, _c) =
  if i >= 0 && i < st.nb then Some st.panels.(i) else None

let chk st i = match st.chks with Some c -> c.(i) | None -> assert false

let verify_panel st i =
  st.verifications <- st.verifications + 1;
  (* Fused runs verify by carried-vs-fresh [compare]; the fresh sums
     are recomputed here (never taken from the kernel) because injected
     faults can land in the panel after the kernel returns. *)
  let outcome =
    if st.fused then Panelchk.compare ~tol:st.tol (chk st i) st.panels.(i)
    else Panelchk.verify ~tol:st.tol (chk st i) st.panels.(i)
  in
  match outcome with
  | Abft.Verify.Clean -> ()
  | Abft.Verify.Corrected fixes ->
      Log.info (fun f ->
          f "corrected %d element(s) in panel %d" (List.length fixes) i);
      st.corrections <- st.corrections + List.length fixes
  | Abft.Verify.Checksum_repaired { cells; corrections } ->
      Log.info (fun f ->
          f "repaired %d checksum cell(s) for panel %d (+%d tile fix(es))"
            cells i (List.length corrections));
      st.corrections <- st.corrections + List.length corrections
  | Abft.Verify.Uncorrectable msg ->
      raise (Recovery (Printf.sprintf "panel %d: %s" i msg))

(* In-panel MGS: factor panel j in place into Q columns, filling the
   corresponding diagonal block of R. Every step is linear in the panel
   columns, so the checksum follows with exact rules. *)
let mgs_panel st j ~with_ft =
  let p = st.panels.(j) in
  let b = st.block in
  let base = j * b in
  (* both checksum replicas follow the panel through the same exact
     update sequence *)
  let cs =
    if with_ft then
      [ Panelchk.matrix (chk st j); Panelchk.shadow (chk st j) ]
    else []
  in
  for col = 0 to b - 1 do
    let v = Mat.col p col in
    let nrm = Vec.nrm2 v in
    if (not (Float.is_finite nrm)) || nrm < 1e-12 then
      raise
        (Recovery
           (Printf.sprintf "fail-stop: rank deficiency at column %d of panel %d"
              col j));
    Mat.set st.r (base + col) (base + col) nrm;
    Vec.scal (1. /. nrm) v;
    Mat.set_col p col v;
    List.iter
      (fun cm ->
        for row = 0 to Mat.rows cm - 1 do
          Mat.set cm row col (Mat.get cm row col /. nrm)
        done)
      cs;
    for col' = col + 1 to b - 1 do
      let w = Mat.col p col' in
      let proj = Vec.dot v w in
      Mat.set st.r (base + col) (base + col') proj;
      Vec.axpy (-.proj) v w;
      Mat.set_col p col' w;
      List.iter
        (fun cm ->
          for row = 0 to Mat.rows cm - 1 do
            Mat.set cm row col'
              (Mat.get cm row col' -. (proj *. Mat.get cm row col))
          done)
        cs
    done
  done

let run_attempt st ~scheme =
  let with_ft = scheme <> Abft.Scheme.No_ft in
  let enhanced = match scheme with Abft.Scheme.Enhanced _ -> true | _ -> false in
  let online = scheme = Abft.Scheme.Online in
  let kk = Abft.Scheme.verification_interval scheme in
  let b = st.block in
  for j = 0 to st.nb - 1 do
    Injector.fire_storage st.injector ~iteration:j ~lookup:(lookup st);
    Injector.fire_device st.injector ~iteration:j ~lookup:(lookup st);
    let gate = j mod kk = 0 in
    (* ---- block projections against all previous Q panels.
       Each projection both READS and WRITES panel j, and its R entry
       is consumed immediately, so pre-read verification must run
       before every projection (K-gated), not once per iteration —
       otherwise a computing error landing between projections
       contaminates R before any verification sees it. ---- *)
    for k = 0 to j - 1 do
      if enhanced && with_ft && gate then begin
        verify_panel st k;
        verify_panel st j
      end;
      let qk = st.panels.(k) and aj = st.panels.(j) in
      (* R_kj = Qk^T Aj *)
      let rkj =
        Blas3.gemm_alloc ~transa:Types.Trans qk aj
        [@abft.unverified
          "both operands were verified by the K-gated pre-read pass above; \
           the R entry is consumed immediately and the panel update that \
           follows carries its own checksum chains, which the next gated \
           pass checks"]
      in
      Mat.blit ~src:rkj ~dst:st.r ~row:(k * b) ~col:(j * b);
      (* Aj -= Qk Rkj, chk(Aj) -= chk(Qk) Rkj — on both replicas, each
         reading its own copy of chk(Qk) so the chains stay
         independent. Fused mode carries both chains through the tile
         GEMM itself; the separate path runs them as two d×b GEMMs. *)
      if with_ft && st.fused then
        Blas3.gemm ~alpha:(-1.) ~beta:1.
          ~fused:(Panelchk.fuse ~qk_chk:(chk st k) (chk st j))
          qk rkj aj
      else begin
        Blas3.gemm ~alpha:(-1.) ~beta:1. qk rkj aj;
        if with_ft then begin
          Blas3.gemm ~alpha:(-1.) ~beta:1.
            (Panelchk.matrix (chk st k))
            rkj
            (Panelchk.matrix (chk st j));
          Blas3.gemm ~alpha:(-1.) ~beta:1.
            (Panelchk.shadow (chk st k))
            rkj
            (Panelchk.shadow (chk st j))
        end
      end;
      Injector.fire_compute st.injector ~iteration:j ~op:Fault.Gemm
        ~block:(j, k) aj;
      if online && with_ft then verify_panel st j
    done;
    (* ---- in-panel MGS (its input is always verified) ---- *)
    if enhanced && with_ft then verify_panel st j;
    mgs_panel st j ~with_ft;
    Injector.fire_compute st.injector ~iteration:j ~op:Fault.Potf2 ~block:(j, j)
      st.panels.(j);
    if online && with_ft then verify_panel st j
  done

let final_verification st ~scheme =
  if scheme = Abft.Scheme.Offline && st.chks <> None then
    for i = 0 to st.nb - 1 do
      st.verifications <- st.verifications + 1;
      if not (Panelchk.check ~tol:st.tol (chk st i) st.panels.(i)) then
        raise (Recovery (Printf.sprintf "final verify: panel %d" i))
    done

let factor ?(plan = []) ?(scheme = Abft.Scheme.enhanced ()) ?(block = 16)
    ?(tol = Abft.Verify.default_tol) ?(max_restarts = 3) ?(fused = true) a =
  let m = Mat.rows a and n = Mat.cols a in
  if n <= 0 || m < n then invalid_arg "Ft_qr.factor: need m >= n > 0";
  let block = if n < block then n else block in
  if n mod block <> 0 then
    invalid_arg
      (Printf.sprintf "Ft_qr.factor: block %d must divide n=%d" block n);
  let nb = n / block in
  let injector = Injector.create plan in
  let uncorrectable_events = ref 0 and fail_stops = ref 0 in
  let rec attempt k =
    let panels =
      Array.init nb (fun j ->
          Mat.sub a ~row:0 ~col:(j * block) ~rows:m ~cols:block)
    in
    let chks =
      if scheme = Abft.Scheme.No_ft then None
      else Some (Array.map Panelchk.encode panels)
    in
    let st =
      {
        m;
        block;
        nb;
        tol;
        fused;
        panels;
        chks;
        r = Mat.create n n;
        injector;
        verifications = 0;
        corrections = 0;
      }
    in
    match
      run_attempt st ~scheme;
      final_verification st ~scheme
    with
    | () -> (k, st, None)
    | exception Recovery msg ->
        Log.warn (fun f -> f "attempt %d failed (%s)" k msg);
        incr uncorrectable_events;
        if String.length msg >= 9 && String.sub msg 0 9 = "fail-stop" then
          incr fail_stops;
        if k < max_restarts then attempt (k + 1) else (k, st, Some msg)
  in
  let restarts, st, failure = attempt 0 in
  let q = Mat.create m n in
  Array.iteri (fun j p -> Mat.blit ~src:p ~dst:q ~row:0 ~col:(j * st.block)) st.panels;
  let residual =
    Mat.norm_fro
      (Mat.sub_mat
         (Blas3.gemm_alloc q st.r
         [@abft.unverified
           "residual check on the finished Q·R: runs after the scheme's own \
            verification to second-guess it, so it must read the factors \
            as-is"])
         a)
    /. Float.max 1. (Mat.norm_fro a)
  in
  let orthogonality =
    Mat.norm_fro
      (Mat.sub_mat
         (Blas3.gemm_alloc ~transa:Types.Trans q q
         [@abft.unverified
           "orthogonality check on the finished Q: same post-verification \
            read as the residual"])
         (Mat.identity n))
  in
  let outcome =
    match failure with
    | Some msg -> Gave_up msg
    | None ->
        if residual <= residual_threshold && orthogonality <= 1e-6 then Success
        else Silent_corruption
  in
  {
    q;
    r = st.r;
    outcome;
    residual;
    orthogonality;
    stats =
      {
        verifications = st.verifications;
        corrections = st.corrections;
        uncorrectable_events = !uncorrectable_events;
        fail_stops = !fail_stops;
        restarts;
      };
    injections_fired = Injector.fired injector;
  }

let pp_outcome fmt = function
  | Success -> Format.pp_print_string fmt "success"
  | Silent_corruption -> Format.pp_print_string fmt "silent corruption"
  | Gave_up msg -> Format.fprintf fmt "gave up: %s" msg

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>outcome: %a@,residual: %.3e, orthogonality: %.3e@,verifications: \
     %d, corrections: %d, restarts: %d, uncorrectable: %d, fail-stops: %d@,\
     injections fired: %d@]"
    pp_outcome r.outcome r.residual r.orthogonality r.stats.verifications
    r.stats.corrections r.stats.restarts r.stats.uncorrectable_events
    r.stats.fail_stops
    (List.length r.injections_fired)
