(** Fault-tolerant blocked QR by modified Gram–Schmidt (extension).

    The third routine of the FT-ScaLAPACK family the paper's related
    work covers (Cholesky, LU, QR). Householder QR entangles checksums
    through the reflectors, so this driver uses blocked *modified
    Gram–Schmidt*: every operation on the panels is linear in the
    panel data (block projections [R_kj = Q_kᵀ A_j],
    [A_j ← A_j − Q_k R_kj], column scalings), so the per-panel column
    checksums of {!Panelchk} follow each step with exact update rules —
    precisely the property ABFT needs.

    The driver is left-looking: panel [j] receives the projections of
    {e all} previous Q panels in its own iteration, so factored Q
    panels are re-read every later iteration and the Enhanced pre-read
    verification protects them against storage errors — the same
    structural argument as MAGMA's inner-product Cholesky and the
    left-looking FT-LU.

    Protected state: the Q panels (and the in-progress A panels).
    The small R factor (n×n upper) is not checksummed — it is O(n²)
    host-side data, the natural home for conventional ECC; noted as
    future work.

    Fault-window mapping: [Gemm] = the block projection/update of panel
    [j] by panel [k] (target block [(j, k)]); [Potf2] = the in-panel
    MGS factorization of panel [j] (target [(j, j)]); [In_storage]
    flips an element of panel [block_row] at the start of the given
    iteration ([block_col] is ignored).

    A pleasant difference from Cholesky: because MGS transforms panel
    data and checksum {e together}, a computing error in its output is
    an ordinary post-update single error — corrected at the panel's
    next read rather than forcing recomputation the way Cholesky's
    POTF2 (whose Algorithm-2 update consumes the corrupted factor)
    does. *)

open Matrix

type outcome = Success | Silent_corruption | Gave_up of string

type stats = {
  verifications : int;
  corrections : int;
  uncorrectable_events : int;
  fail_stops : int;  (** rank-deficiency detected in the MGS panel step *)
  restarts : int;
}

type report = {
  q : Mat.t;  (** m×n, orthonormal columns *)
  r : Mat.t;  (** n×n upper triangular *)
  outcome : outcome;
  residual : float;  (** ‖Q·R − A‖_F / ‖A‖_F *)
  orthogonality : float;  (** ‖QᵀQ − I‖_F *)
  stats : stats;
  injections_fired : Injector.fired list;
}

val factor :
  ?plan:Fault.t ->
  ?scheme:Abft.Scheme.t ->
  ?block:int ->
  ?tol:float ->
  ?max_restarts:int ->
  ?fused:bool ->
  Mat.t ->
  report
(** [factor a] for [a] m×n with [m >= n > 0] and full column rank.
    Defaults: Enhanced (k = 1), block 16 (clamped to n), 3 restarts,
    fused kernels ([?fused], default [true]: the checksum chains of
    both replicas ride the block-projection GEMM via {!Panelchk.fuse}
    and verification uses the carried-vs-fresh {!Panelchk.compare};
    the in-panel MGS checksum updates are scalar rules and unaffected).
    Supported schemes: [No_ft], [Online], [Enhanced] (K gates the
    projection-input verifications; the panel about to be factored is
    always verified), [Offline] (detect-only final check of the Q
    panels).
    @raise Invalid_argument unless [m >= n], [n > 0] and [block]
    divides [n]. *)

val residual_threshold : float
val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit
