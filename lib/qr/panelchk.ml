(* Thin wrapper: since Abft.Checksum/Verify were generalized to
   rectangular tiles, a panel checksum IS a checksum — this module only
   keeps the QR-flavoured names and the panel-shape validation. *)

open Matrix

type t = Abft.Checksum.t

let encode ?(d = 2) p =
  if Mat.rows p < 1 then invalid_arg "Panelchk.encode: empty panel";
  Abft.Checksum.encode ~d p

let matrix = Abft.Checksum.matrix
let shadow = Abft.Checksum.shadow
let copy = Abft.Checksum.copy
let check ?tol t p = Abft.Verify.check ?tol t p
let verify ?tol t p = Abft.Verify.verify ?tol t p
let compare ?tol t p = Abft.Verify.compare ?tol t p
let fuse ~qk_chk aj_chk = Abft.Checksum.update_fused ~chk_a:qk_chk aj_chk
