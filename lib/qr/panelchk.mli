(** Column checksums for rectangular panels (m×b, m ≥ b).

    QR works on tall column panels rather than square tiles; since
    {!Abft.Checksum} and {!Abft.Verify} operate on any m×n tile, this
    module is a thin delegation layer that keeps QR-flavoured names
    (and gets every Verify improvement — per-row thresholds, two-error
    decoding at d ≥ 4, anchored Inf/NaN reconstruction — for free). *)

open Matrix

type t = Abft.Checksum.t
(** Mutable checksum block (d×b) of one m×b panel. *)

val encode : ?d:int -> Mat.t -> t
(** [encode p] for a panel with [rows p >= 1] (default [d = 2]). *)

val matrix : t -> Mat.t
(** The live d×b checksum matrix (update rules mutate it). *)

val shadow : t -> Mat.t
(** The live shadow replica. Update rules mutating {!matrix} must
    mirror the same operation here, or verification will flag the
    store as corrupted (see {!Abft.Checksum}). *)

val check : ?tol:float -> t -> Mat.t -> bool
(** Detection only. @raise Invalid_argument on shape mismatch. *)

val verify : ?tol:float -> t -> Mat.t -> Abft.Verify.outcome
(** Detect, locate and correct in place — up to one error per panel
    column, plus anchored reconstruction of a single overwhelming
    (Inf/NaN/huge) element per column. *)

val compare : ?tol:float -> t -> Mat.t -> Abft.Verify.outcome
(** Fused-mode verification ({!Abft.Verify.compare}): diff the carried
    checksum against a fresh reduction, escalating to the full
    {!verify} ladder only on a mismatch. *)

val fuse : qk_chk:t -> t -> Blas3.fuse
(** [fuse ~qk_chk aj_chk] carries [chk(Aj) -= chk(Qk)·Rkj] (both
    replicas) through the projection GEMM [Aj -= Qk·Rkj] — pass as its
    [?fused] argument instead of running the two separate checksum
    GEMMs. *)

val copy : t -> t
