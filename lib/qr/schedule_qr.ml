open Hetsim
module Config = Cholesky.Config

type result = {
  makespan : float;
  gflops : float;
  reruns : int;
  engine : Engine.t;
  resilience : Resilient.stats;
  degraded : bool;
}

(* QR differs from Cholesky in one classification: the MGS (Potf2)
   window is an ordinary post-update error because the checksum is
   transformed together with the data. *)
let uncorrected scheme plan =
  Cholesky.Schedule.uncorrected scheme plan
  |> List.filter (fun (inj : Fault.injection) ->
         match inj.Fault.window with
         | Fault.In_computation Fault.Potf2 ->
             not (Abft.Scheme.corrects_computing_errors scheme)
         | _ -> true)

type pass_state = {
  eng : Engine.t;
  res : Resilient.t;
  bal : Load_balancer.t option;
      (* trailing-projection split; None keeps the GPU-only projections *)
  m : int;
  b : int;
  nb : int;
  d : int;
  streams : int;
  placement : Config.placement;
  mutable prev_chk_ready : Engine.event;
}

(* A panel verification: one rectangular recalc kernel (m x b fused
   pass) per panel side. *)
let panel_recalc st = Kernel.Gemv { m = st.m; n = st.b }

let verify st ~deps ~panels : Engine.event =
  if panels = 0 then Engine.join st.eng deps
  else begin
    let batch =
      Resilient.submit_batch st.res ~deps ~phase:"chk-recalc"
        ~streams:st.streams
        (List.init panels (fun _ -> panel_recalc st))
    in
    Resilient.submit st.res ~deps:[ batch ] ~phase:"chk-compare" Engine.Gpu
      (Kernel.Checksum_compare { b = st.b * panels; nchk = st.d })
  end

let chk_update st ~deps ~flops : Engine.event =
  if flops <= 0. then Engine.join st.eng deps
  else begin
    let kernel = Kernel.Host_flops flops in
    match st.placement with
    | Config.Auto -> assert false
    | Config.Gpu_inline ->
        Resilient.submit st.res ~deps ~phase:"chk-update" Engine.Gpu kernel
    | Config.Gpu_stream ->
        Resilient.submit_background st.res ~deps ~phase:"chk-update" kernel
    | Config.Cpu_offload ->
        Resilient.submit st.res ~deps ~phase:"chk-update" Engine.Cpu kernel
  end

let run_pass st ~with_ft ~enhanced ~online ~offline ~kk =
  let eng = st.eng in
  let res = st.res in
  let fb = float_of_int st.b in
  let encode_ev =
    if with_ft then
      Resilient.submit_batch res ~phase:"chk-encode" ~streams:st.streams
        (List.init st.nb (fun _ -> panel_recalc st))
    else Engine.ready
  in
  st.prev_chk_ready <- encode_ev;
  (* panel rows in block-row units, the balancer's splitting grain *)
  let rblocks = max 1 (st.m / st.b) in
  for j = 0 to st.nb - 1 do
    let gate = j mod kk = 0 in
    let chk_updates = ref [] in
    let prior_chk = st.prev_chk_ready in
    (* ---- projection split (load balancer): one decision per
       iteration, shared by all j projections of this panel ---- *)
    let cpu_m =
      match st.bal with
      | None -> 0
      | Some bal ->
          let s =
            Load_balancer.tick bal
              ~kernel:(Kernel.Gemm { m = st.m; n = st.b; k = st.b })
              ~rows:rblocks
          in
          if j = 0 then 0 else min st.m (s.Load_balancer.cpu_rows * st.b)
    in
    (* stage the CPU-owned slice of the live panel to the host once;
       it stays there across this iteration's projections *)
    let stage_ev =
      if cpu_m > 0 then
        Resilient.transfer res ~deps:[ prior_chk ] ~phase:"balance" ~dir:`D2h
          (cpu_m * st.b * 8)
      else Engine.ready
    in
    (* block projections: per previous panel k, a pre-read verify of
       both operands (K-gated), one projection GEMM pair, a checksum
       update, and (Online) a post verify. *)
    let last = ref Engine.ready in
    for _k = 0 to j - 1 do
      let pre =
        if enhanced && with_ft && gate then
          verify st ~deps:[ prior_chk; !last ] ~panels:2
        else Engine.join eng [ !last ]
      in
      (* R_kj = Qk^T Aj (2 m b^2) then Aj -= Qk Rkj (2 m b^2) *)
      let ev =
        Resilient.submit res ~deps:[ pre ] ~phase:"compute" Engine.Gpu
          (Kernel.Gemm { m = st.b; n = st.b; k = st.m })
      in
      let ev =
        if cpu_m = 0 then
          Resilient.submit res ~deps:[ ev ] ~phase:"compute" Engine.Gpu
            (Kernel.Gemm { m = st.m; n = st.b; k = st.b })
        else begin
          (* the CPU slice applies Rkj to its host-resident rows; Rkj
             itself is tiny and rides a small h2d hop *)
          let r_ev =
            Resilient.transfer res ~deps:[ ev ] ~phase:"balance" ~dir:`D2h
              (st.b * st.b * 8)
          in
          let gpu_part =
            if st.m - cpu_m > 0 then
              Resilient.submit res ~deps:[ ev ] ~phase:"compute" Engine.Gpu
                (Kernel.Gemm { m = st.m - cpu_m; n = st.b; k = st.b })
            else Engine.ready
          in
          let cpu_part =
            Resilient.submit res ~deps:[ r_ev; stage_ev ] ~phase:"compute"
              Engine.Cpu
              (Kernel.Gemm { m = cpu_m; n = st.b; k = st.b })
          in
          Engine.join eng [ gpu_part; cpu_part ]
        end
      in
      if with_ft then
        chk_updates :=
          chk_update st ~deps:[ ev ] ~flops:(4. *. float_of_int st.d *. fb *. fb)
          :: !chk_updates;
      if online && with_ft then last := verify st ~deps:[ ev ] ~panels:1
      else last := ev
    done;
    (* the CPU-owned slice migrates back before the (GPU) in-panel MGS *)
    let back_ev =
      if cpu_m > 0 then
        Resilient.transfer res ~deps:[ !last ] ~phase:"balance" ~dir:`H2d
          (cpu_m * st.b * 8)
      else Engine.ready
    in
    (* in-panel MGS: ~2 m b^2 flops of BLAS-1/2, bandwidth-bound *)
    let pre_mgs =
      if enhanced && with_ft then
        verify st ~deps:[ prior_chk; !last; back_ev ] ~panels:1
      else Engine.join eng [ !last; back_ev ]
    in
    let mgs_ev =
      Resilient.submit res ~deps:[ pre_mgs ] ~phase:"compute" Engine.Gpu
        (Kernel.Gemv { m = st.m * st.b; n = st.b })
    in
    if with_ft then
      chk_updates :=
        chk_update st ~deps:[ mgs_ev ]
          ~flops:(2. *. float_of_int st.d *. fb *. fb)
        :: !chk_updates;
    if online && with_ft then ignore (verify st ~deps:[ mgs_ev ] ~panels:1);
    st.prev_chk_ready <- Engine.join eng (prior_chk :: !chk_updates)
  done;
  if offline then ignore (verify st ~deps:[ st.prev_chk_ready ] ~panels:st.nb)

let run ?(plan = []) ?(d = 2) ?policy ?(fault_seed = 0) cfg ~m ~n =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Schedule_qr.run: " ^ e));
  let b = Config.block_size cfg in
  if n <= 0 || m < n then invalid_arg "Schedule_qr.run: need m >= n > 0";
  if n mod b <> 0 then
    invalid_arg
      (Printf.sprintf "Schedule_qr.run: block %d must divide n=%d" b n);
  let scheme = cfg.Config.scheme in
  let with_ft = scheme <> Abft.Scheme.No_ft in
  let enhanced = match scheme with Abft.Scheme.Enhanced _ -> true | _ -> false in
  let online = scheme = Abft.Scheme.Online in
  let offline = scheme = Abft.Scheme.Offline in
  let kk = Abft.Scheme.verification_interval scheme in
  let placement =
    if with_ft then Config.resolve_placement cfg ~n else Config.Gpu_inline
  in
  let eng = Engine.create ~seed:fault_seed cfg.Config.machine in
  let bal = Config.balancer cfg in
  let res = Resilient.create ?policy ?balancer:bal ~seed:fault_seed eng in
  let st =
    {
      eng;
      res;
      bal;
      m;
      b;
      nb = n / b;
      d;
      streams = Config.effective_recalc_streams cfg;
      placement;
      prev_chk_ready = Engine.ready;
    }
  in
  run_pass st ~with_ft ~enhanced ~online ~offline ~kk;
  let transfer_faults =
    (Resilient.stats res).Resilient.corrupted_transfers > 0
    && not (Abft.Scheme.corrects_storage_errors scheme)
  in
  let reruns =
    if uncorrected scheme plan <> [] || transfer_faults then 1 else 0
  in
  if reruns > 0 then run_pass st ~with_ft ~enhanced ~online ~offline ~kk;
  let makespan = Engine.makespan eng in
  let fm = float_of_int m and fn = float_of_int n in
  {
    makespan;
    gflops =
      ((2. *. fm *. fn *. fn) -. (2. *. (fn ** 3.) /. 3.)) /. makespan /. 1e9;
    reruns;
    engine = eng;
    resilience = Resilient.stats res;
    degraded = Resilient.degraded res;
  }
