(** Timing-mode schedule for the FT-QR extension — the QR analogue of
    {!Cholesky.Schedule} / {!Ftlu.Schedule_lu}, on the same engine and
    with the same modelling conventions.

    Blocked MGS is GPU-friendly: the block projections are GEMMs
    ([2mb²] flops each against a [k < j] panel), and the in-panel MGS
    is a chain of BLAS-1/2 column operations modelled as one
    bandwidth-bound pass over the panel per column pair. Panels live on
    the GPU; there is no per-iteration CPU step, so the host/link play
    no role beyond checksum placement. *)

type result = {
  makespan : float;
  gflops : float;  (** (2mn² − 2n³/3) / makespan / 1e9 *)
  reruns : int;
  engine : Hetsim.Engine.t;
  resilience : Hetsim.Resilient.stats;
      (** device-failure accounting, as in {!Cholesky.Schedule} *)
  degraded : bool;
}

val run :
  ?plan:Fault.t ->
  ?d:int ->
  ?policy:Hetsim.Resilient.policy ->
  ?fault_seed:int ->
  Cholesky.Config.t ->
  m:int ->
  n:int ->
  result
(** [run cfg ~m ~n] simulates FT-QR of an m×n matrix (m ≥ n). Fault
    classification reuses {!Cholesky.Schedule.uncorrected}, except that
    the [Potf2] (MGS) window is correctable here — the MGS step
    transforms data and checksum together (see {!Ft_qr}).
    @raise Invalid_argument unless [m >= n > 0] and the block size
    divides [n]. *)
