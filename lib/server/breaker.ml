(* Per-tenant circuit breaker: Closed -> Open -> Half_open with
   capped-exponential cooldown escalation and seeded jitter, the same
   backoff idiom as Hetsim.Resilient. Driven with an explicit [now]
   for deterministic tests; callers serialize access (the server calls
   it under its admission lock). *)

type policy = {
  trip_after : int;
  cooldown_base_s : float;
  cooldown_factor : float;
  cooldown_max_s : float;
  jitter : float;
  half_open_probes : int;
}

let default_policy =
  {
    trip_after = 3;
    cooldown_base_s = 0.05;
    cooldown_factor = 2.0;
    cooldown_max_s = 2.0;
    jitter = 0.25;
    half_open_probes = 1;
  }

let validate_policy p =
  if p.trip_after < 1 then Error "trip_after must be >= 1"
  else if p.cooldown_base_s <= 0. then Error "cooldown_base_s must be > 0"
  else if p.cooldown_factor < 1. then Error "cooldown_factor must be >= 1"
  else if p.cooldown_max_s < p.cooldown_base_s then
    Error "cooldown_max_s must be >= cooldown_base_s"
  else if p.jitter < 0. || p.jitter >= 1. then Error "jitter must be in [0, 1)"
  else if p.half_open_probes < 1 then Error "half_open_probes must be >= 1"
  else Ok ()

type state = Closed | Open | Half_open

(* [escalation] is the number of consecutive opens without an
   intervening success; it indexes the cooldown ladder. [until] is the
   absolute time the current open episode ends. *)
type t = {
  policy : policy;
  rng : Random.State.t;
  mutable state : state;
  mutable failures : int;  (* consecutive, closed state only *)
  mutable probes_left : int;  (* half-open state only *)
  mutable until : float;  (* open state only *)
  mutable escalation : int;
  mutable trips : int;
}

let create ?(policy = default_policy) ?(seed = 0) () =
  (match validate_policy policy with
  | Ok () -> ()
  | Error e -> invalid_arg ("Breaker.create: " ^ e));
  {
    policy;
    rng = Random.State.make [| 0xb4ea4e; seed |];
    state = Closed;
    failures = 0;
    probes_left = 0;
    until = 0.;
    escalation = 0;
    trips = 0;
  }

let state t = t.state
let trips t = t.trips

(* capped exponential with symmetric jitter, as in
   Resilient.backoff_duration: open [k] (0-based) cools down for
   [min max (base * factor^k)] scaled by a draw from
   [1-jitter, 1+jitter] *)
let cooldown t =
  let p = t.policy in
  let b = p.cooldown_base_s *. (p.cooldown_factor ** float_of_int t.escalation) in
  let b = Float.min b p.cooldown_max_s in
  let u = Random.State.float t.rng 1. in
  b *. (1. +. (p.jitter *. ((2. *. u) -. 1.)))

let trip t ~now =
  t.until <- now +. cooldown t;
  t.escalation <- t.escalation + 1;
  t.trips <- t.trips + 1;
  t.state <- Open

let admit t ~now =
  match t.state with
  | Closed -> `Admit
  | Open ->
      if now >= t.until then begin
        t.state <- Half_open;
        t.probes_left <- t.policy.half_open_probes - 1;
        `Admit
      end
      else `Reject (t.until -. now)
  | Half_open ->
      if t.probes_left > 0 then begin
        t.probes_left <- t.probes_left - 1;
        `Admit
      end
      else
        (* probes in flight; cheapest honest estimate is one base
           cooldown — the probe verdict lands well within it *)
        `Reject t.policy.cooldown_base_s

let on_success t =
  t.state <- Closed;
  t.failures <- 0;
  t.escalation <- 0

let on_failure t ~now =
  match t.state with
  | Closed ->
      t.failures <- t.failures + 1;
      if t.failures >= t.policy.trip_after then begin
        t.failures <- 0;
        trip t ~now
      end
  | Half_open -> trip t ~now
  | Open -> ()
