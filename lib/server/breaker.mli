(** Per-tenant circuit breaker.

    Sheds a tenant's load after repeated terminal failures (gave-up
    factorizations, deadline expiries) instead of letting the tenant
    keep burning pool slots on work that keeps dying. Classic
    three-state machine:

    - {e Closed} — traffic flows; consecutive terminal failures are
      counted and [trip_after] of them open the breaker;
    - {e Open} — everything is rejected until the cooldown elapses;
      cooldowns escalate capped-exponentially with seeded jitter
      (the backoff idiom of [Hetsim.Resilient]), so a tenant that
      keeps failing its half-open probes backs off further each trip;
    - {e Half-open} — after the cooldown, [half_open_probes] trial
      requests are admitted; one success closes the breaker (and
      resets the escalation), one failure re-opens it at the next
      escalation level.

    The breaker is driven with an explicit [now] so tests are
    deterministic; it performs no locking — the serving layer calls it
    under its own admission lock. *)

type policy = {
  trip_after : int;  (** consecutive failures that open the breaker *)
  cooldown_base_s : float;  (** first open-state cooldown *)
  cooldown_factor : float;  (** escalation multiplier per re-trip *)
  cooldown_max_s : float;  (** cooldown cap *)
  jitter : float;
      (** symmetric jitter fraction on each cooldown, drawn from the
          seeded per-breaker RNG *)
  half_open_probes : int;  (** trial admissions per half-open episode *)
}

val default_policy : policy
(** 3 failures to trip; cooldowns 50 ms · 2ᵏ capped at 2 s with 25%
    jitter; a single half-open probe. *)

val validate_policy : policy -> (unit, string) result

type state = Closed | Open | Half_open

type t

val create : ?policy:policy -> ?seed:int -> unit -> t
(** @raise Invalid_argument if the policy fails {!validate_policy}. *)

val state : t -> state
val trips : t -> int
(** Total times the breaker has opened. *)

val admit : t -> now:float -> [ `Admit | `Reject of float ]
(** Admission decision at time [now]. [`Reject retry_after_s] carries
    the seconds until the breaker is worth retrying. An [`Admit] from
    the open state transitions to half-open and consumes a probe. *)

val on_success : t -> unit
(** Report a request completing cleanly: closes the breaker and resets
    both the failure count and the cooldown escalation. *)

val on_failure : t -> now:float -> unit
(** Report a terminal failure (gave-up, deadline). In the closed state
    counts toward [trip_after]; in the half-open state re-opens at the
    next escalation level. Cancellation by the client must {e not} be
    reported — it says nothing about the tenant's workload health. *)
