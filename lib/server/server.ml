(* The serving layer: bounded queue, worker slots with private pools,
   per-tenant quotas/plans/breakers, deadlines and cooperative
   cancellation, graceful drain.

   Locking: one mutex guards the queue, ticket states, per-tenant
   outstanding counts, breakers, the phase and the service-time ewma.
   The request-accounting counters shared across worker domains are
   Atomic so introspection never has to take the lock. Workers never
   hold the lock while factorizing. *)

open Matrix
module C = Cholesky

let now () = Unix.gettimeofday ()

type work =
  | Factor of Mat.t
  | Solve of { a : Mat.t; rhs : Vec.t }
  | Solve_cg of { a : Mat.t; rhs : Vec.t }

type tenant_policy = {
  weight : int;
  plan : n:int -> block:int -> seed:int -> Fault.t;
  chol : C.Config.t option;
  final_sweep : bool;
  breaker : Breaker.policy;
}

let clean_tenant =
  {
    weight = 1;
    plan = (fun ~n:_ ~block:_ ~seed:_ -> []);
    chol = None;
    final_sweep = false;
    breaker = Breaker.default_policy;
  }

type config = {
  workers : int;
  pool_domains : int;
  queue_capacity : int;
  chol : C.Config.t;
  seed : int;
}

let default_config =
  {
    workers = 2;
    pool_domains = 2;
    queue_capacity = 8;
    chol = C.Config.default;
    seed = 0;
  }

type rejection =
  | Overloaded of { retry_after_s : float }
  | Quota_exceeded of { tenant : string; outstanding : int; quota : int }
  | Breaker_open of { tenant : string; retry_after_s : float }
  | Unknown_tenant of string
  | Shutting_down

let pp_rejection fmt = function
  | Overloaded { retry_after_s } ->
      Format.fprintf fmt "overloaded (retry after %.3fs)" retry_after_s
  | Quota_exceeded { tenant; outstanding; quota } ->
      Format.fprintf fmt "quota exceeded for %s (%d outstanding, quota %d)"
        tenant outstanding quota
  | Breaker_open { tenant; retry_after_s } ->
      Format.fprintf fmt "breaker open for %s (retry after %.3fs)" tenant
        retry_after_s
  | Unknown_tenant tenant -> Format.fprintf fmt "unknown tenant %s" tenant
  | Shutting_down -> Format.pp_print_string fmt "shutting down"

type outcome =
  | Completed of {
      report : C.Ft.report;
      solution : Vec.t option;
      solver : Solvers.Cg.report option;
      wait_s : float;
      service_s : float;
    }
  | Deadline_exceeded of {
      elapsed_s : float;
      iteration : int;
      stats : C.Ft.stats option;
    }
  | Cancelled of { elapsed_s : float; ran : bool }
  | Failed of { reason : string; elapsed_s : float }

let pp_outcome fmt = function
  | Completed { wait_s; service_s; _ } ->
      Format.fprintf fmt "completed (wait %.4fs, service %.4fs)" wait_s
        service_s
  | Deadline_exceeded { elapsed_s; iteration; _ } ->
      Format.fprintf fmt "deadline exceeded after %.4fs at iteration %d"
        elapsed_s iteration
  | Cancelled { elapsed_s; ran } ->
      Format.fprintf fmt "cancelled after %.4fs (%s)" elapsed_s
        (if ran then "while running" else "while queued")
  | Failed { reason; elapsed_s } ->
      Format.fprintf fmt "failed after %.4fs: %s" elapsed_s reason

type ticket_state = Queued | Running | Done of outcome

type ticket = {
  id : int;
  tenant : string;
  work : work;
  submitted_at : float;
  deadline_at : float option;
  cancel_flag : bool Atomic.t;
  mutable state : ticket_state;
}

let ticket_id tk = tk.id
let ticket_tenant tk = tk.tenant

type tenant_state = {
  policy : tenant_policy;
  breaker : Breaker.t;
  mutable outstanding : int;  (* queued + running, guarded by mu *)
}

type phase = Serving | Draining | Stopping | Stopped

type t = {
  cfg : config;
  obs : Obs.t;
  mu : Mutex.t;
  work_c : Condition.t;  (* workers wait for queued work *)
  done_c : Condition.t;  (* awaiters and drain wait for completions *)
  queue : ticket Queue.t;
  tenants : (string * tenant_state) list;
  total_weight : int;
  pools : Parallel.Pool.t array;  (* one private pool per worker slot *)
  current : ticket option array;  (* what each slot is running *)
  mutable phase : phase;
  mutable inflight : int;
  mutable ewma_service_s : float;  (* 0 until the first completion *)
  mutable handles : unit Domain.t list;
  mutable workers_joined : bool;
  (* request accounting, shared across submitter and worker domains *)
  ids : int Atomic.t;
  accepted : int Atomic.t;
  rejected_overloaded : int Atomic.t;
  rejected_quota : int Atomic.t;
  rejected_breaker : int Atomic.t;
  rejected_other : int Atomic.t;
  completed_n : int Atomic.t;
  deadline_n : int Atomic.t;
  cancelled_n : int Atomic.t;
  failed_n : int Atomic.t;
  corruptions : int Atomic.t;
}

let tenant_state t name =
  match List.assoc_opt name t.tenants with
  | Some ts -> ts
  | None -> invalid_arg ("Server: unknown tenant " ^ name)

let quota_of t (ts : tenant_state) =
  max 1
    (ts.policy.weight
     * (t.cfg.queue_capacity + t.cfg.workers)
     / t.total_weight)

let quota t name = quota_of t (tenant_state t name)

(* under mu: how long until a queue slot plausibly frees up *)
let retry_hint t =
  let svc = if t.ewma_service_s > 0. then t.ewma_service_s else 0.01 in
  Float.max 0.001
    (float_of_int (Queue.length t.queue + 1)
     *. svc
     /. float_of_int t.cfg.workers)

(* Terminal accounting shared by every exit path: ticket state, tenant
   outstanding count, breaker feedback, ewma, counters, obs. Callers
   must NOT hold mu. *)
let complete t tk outcome =
  let ts = tenant_state t tk.tenant in
  let tnow = now () in
  Mutex.lock t.mu;
  tk.state <- Done outcome;
  ts.outstanding <- ts.outstanding - 1;
  let trips_before = Breaker.trips ts.breaker in
  (match outcome with
  | Completed { service_s; _ } ->
      Breaker.on_success ts.breaker;
      t.ewma_service_s <-
        (if t.ewma_service_s <= 0. then service_s
         else (0.8 *. t.ewma_service_s) +. (0.2 *. service_s))
  | Deadline_exceeded _ | Failed _ -> Breaker.on_failure ts.breaker ~now:tnow
  | Cancelled _ -> ());
  let tripped = Breaker.trips ts.breaker > trips_before in
  Condition.broadcast t.done_c;
  Mutex.unlock t.mu;
  if tripped then Obs.incr t.obs "server.breaker_trips";
  match outcome with
  | Completed { wait_s; service_s; _ } ->
      Atomic.incr t.completed_n;
      Obs.incr t.obs "server.completed";
      Obs.observe t.obs "server.wait_s" wait_s;
      Obs.observe t.obs "server.service_s" service_s
  | Deadline_exceeded _ ->
      Atomic.incr t.deadline_n;
      Obs.incr t.obs "server.deadline_exceeded"
  | Cancelled _ ->
      Atomic.incr t.cancelled_n;
      Obs.incr t.obs "server.cancelled"
  | Failed _ ->
      Atomic.incr t.failed_n;
      Obs.incr t.obs "server.failed"

let run_request t pool tk =
  let ts = tenant_state t tk.tenant in
  let elapsed () = now () -. tk.submitted_at in
  let deadline_hit () =
    match tk.deadline_at with Some d -> now () > d | None -> false
  in
  if Atomic.get tk.cancel_flag then
    complete t tk (Cancelled { elapsed_s = elapsed (); ran = false })
  else if deadline_hit () then
    complete t tk
      (Deadline_exceeded { elapsed_s = elapsed (); iteration = 0; stats = None })
  else begin
    let t0 = now () in
    let wait_s = t0 -. tk.submitted_at in
    let cancel () = Atomic.get tk.cancel_flag || deadline_hit () in
    let outcome =
      (try
         let report, solution, solver =
           (* the per-request span: one obs record per accepted request
              that actually ran, stopped on every exit (Obs.span
              records even when the body raises) *)
           Obs.span t.obs ~op:"request" ~phase:"serve" (fun () ->
               let a =
                 match tk.work with
                 | Factor a | Solve { a; _ } | Solve_cg { a; _ } -> a
               in
               let n = Mat.rows a in
               let base =
                 match ts.policy.chol with Some c -> c | None -> t.cfg.chol
               in
               let cfg =
                 let b = C.Config.block_size base in
                 if n > 0 && n mod b = 0 then base
                 else { base with C.Config.block = C.Config.divisor_block n }
               in
               let plan =
                 ts.policy.plan ~n
                   ~block:(C.Config.block_size cfg)
                   ~seed:(t.cfg.seed + tk.id)
               in
               let report =
                 (* for Solve_cg the factorization is the solver's
                    preconditioner, run under the same cancel hook so
                    deadlines cover both halves of the request *)
                 C.Ft.factor ~pool ~obs:t.obs ~plan
                   ~final_sweep:ts.policy.final_sweep ~cancel cfg a
               in
               let solution, solver =
                 match (tk.work, report.C.Ft.outcome) with
                 | Factor _, _ -> (None, None)
                 | ( (Solve _ | Solve_cg _),
                     (C.Ft.Silent_corruption | C.Ft.Gave_up _) ) ->
                     (None, None)
                 | Solve { rhs; _ }, C.Ft.Success ->
                     let x = Vec.copy rhs in
                     Blas2.trsv Types.Lower Types.No_trans Types.Non_unit_diag
                       report.C.Ft.factor x;
                     Blas2.trsv Types.Lower Types.Trans Types.Non_unit_diag
                       report.C.Ft.factor x;
                     (Some x, None)
                 | Solve_cg { rhs; _ }, C.Ft.Success ->
                     (* the tenant's plan keeps flowing: Ft.factor fired
                        its factorization windows above, the solver now
                        fires the In_solver ones; each leaves the
                        other's injections pending *)
                     let precond = Solvers.Cg.ic report.C.Ft.factor in
                     let r =
                       Solvers.Cg.solve ~obs:t.obs ~plan ~precond ~cancel
                         Solvers.Cg.default a rhs
                     in
                     ( (match r.Solvers.Cg.outcome with
                       | Solvers.Cg.Converged -> Some r.Solvers.Cg.x
                       | Solvers.Cg.Gave_up _ -> None),
                       Some r )
               in
               (report, solution, solver))
         in
         let el = elapsed () in
         match report.C.Ft.outcome with
         | C.Ft.Success -> (
             match solver with
             | Some { Solvers.Cg.outcome = Solvers.Cg.Gave_up reason; _ } ->
                 Failed
                   {
                     reason =
                       Format.asprintf "solver gave up: %a"
                         Solvers.Cg.pp_reason reason;
                     elapsed_s = el;
                   }
             | Some { Solvers.Cg.outcome = Solvers.Cg.Converged; _ } | None ->
                 Completed
                   { report; solution; solver; wait_s; service_s = el -. wait_s }
             )
         | C.Ft.Silent_corruption ->
             Atomic.incr t.corruptions;
             Obs.incr t.obs "server.corruptions";
             Failed
               {
                 reason =
                   Printf.sprintf "silent corruption (residual %.3e)"
                     report.C.Ft.residual;
                 elapsed_s = el;
               }
         | C.Ft.Gave_up reason ->
             Failed
               {
                 reason = "gave up: " ^ C.Recovery.describe reason;
                 elapsed_s = el;
               }
       with
      | C.Ft.Cancelled { iteration; stats } ->
          let el = elapsed () in
          if Atomic.get tk.cancel_flag then
            Cancelled { elapsed_s = el; ran = true }
          else Deadline_exceeded { elapsed_s = el; iteration; stats = Some stats }
      | Solvers.Cg.Cancelled { iteration; _ } ->
          (* cancelled in the iterative half: the factorization already
             completed, so no partial driver stats apply *)
          let el = elapsed () in
          if Atomic.get tk.cancel_flag then
            Cancelled { elapsed_s = el; ran = true }
          else Deadline_exceeded { elapsed_s = el; iteration; stats = None }
      | e ->
          Failed { reason = Printexc.to_string e; elapsed_s = elapsed () })
      [@abft.waive
        "serving boundary: any exception escaping one request (bad \
         dimensions, solve pivot failure) must become that request's \
         structured Failed outcome, not kill the worker slot"]
    in
    complete t tk outcome
  end

let rec worker t slot =
  let pool = t.pools.(slot) in
  Mutex.lock t.mu;
  let rec take () =
    if not (Queue.is_empty t.queue) then begin
      let tk = Queue.pop t.queue in
      tk.state <- Running;
      t.current.(slot) <- Some tk;
      t.inflight <- t.inflight + 1;
      Obs.observe t.obs "server.inflight" (float_of_int t.inflight);
      Some tk
    end
    else
      match t.phase with
      | Serving ->
          Condition.wait t.work_c t.mu;
          take ()
      | Draining | Stopping | Stopped -> None
  in
  let tk = take () in
  Mutex.unlock t.mu;
  match tk with
  | None -> ()
  | Some tk ->
      run_request t pool tk;
      Mutex.lock t.mu;
      t.current.(slot) <- None;
      t.inflight <- t.inflight - 1;
      Condition.broadcast t.done_c;
      Mutex.unlock t.mu;
      worker t slot

let create ?(obs = Obs.null) cfg tenants =
  if cfg.workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  if cfg.pool_domains < 1 then
    invalid_arg "Server.create: pool_domains must be >= 1";
  if cfg.queue_capacity < 1 then
    invalid_arg "Server.create: queue_capacity must be >= 1";
  (match tenants with [] -> invalid_arg "Server.create: no tenants" | _ -> ());
  let names = List.map fst tenants in
  if
    List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Server.create: duplicate tenant names";
  List.iter
    (fun (name, (p : tenant_policy)) ->
      if p.weight < 1 then
        invalid_arg
          (Printf.sprintf "Server.create: tenant %s has weight %d" name
             p.weight);
      match Breaker.validate_policy p.breaker with
      | Ok () -> ()
      | Error e ->
          invalid_arg
            (Printf.sprintf "Server.create: tenant %s breaker policy: %s" name
               e))
    tenants;
  let tstates =
    List.mapi
      (fun i (name, policy) ->
        ( name,
          {
            policy;
            breaker =
              Breaker.create ~policy:policy.breaker ~seed:(cfg.seed + i) ();
            outstanding = 0;
          } ))
      tenants
  in
  let total_weight =
    List.fold_left (fun acc (_, p) -> acc + p.weight) 0 tenants
  in
  let pools =
    Array.init cfg.workers (fun _ ->
        Parallel.Pool.create ~domains:cfg.pool_domains ())
  in
  let t =
    {
      cfg;
      obs;
      mu = Mutex.create ();
      work_c = Condition.create ();
      done_c = Condition.create ();
      queue = Queue.create ();
      tenants = tstates;
      total_weight;
      pools;
      current = Array.make cfg.workers None;
      phase = Serving;
      inflight = 0;
      ewma_service_s = 0.;
      handles = [];
      workers_joined = false;
      ids = Atomic.make 0;
      accepted = Atomic.make 0;
      rejected_overloaded = Atomic.make 0;
      rejected_quota = Atomic.make 0;
      rejected_breaker = Atomic.make 0;
      rejected_other = Atomic.make 0;
      completed_n = Atomic.make 0;
      deadline_n = Atomic.make 0;
      cancelled_n = Atomic.make 0;
      failed_n = Atomic.make 0;
      corruptions = Atomic.make 0;
    }
  in
  t.handles <-
    List.init cfg.workers (fun slot -> Domain.spawn (fun () -> worker t slot));
  t

let reject t rej =
  (match rej with
  | Overloaded _ ->
      Atomic.incr t.rejected_overloaded;
      Obs.incr t.obs "server.rejected.overloaded"
  | Quota_exceeded _ ->
      Atomic.incr t.rejected_quota;
      Obs.incr t.obs "server.rejected.quota"
  | Breaker_open _ ->
      Atomic.incr t.rejected_breaker;
      Obs.incr t.obs "server.rejected.breaker"
  | Unknown_tenant _ | Shutting_down ->
      Atomic.incr t.rejected_other;
      Obs.incr t.obs "server.rejected.other");
  Error rej

let submit t ~tenant ?deadline_s work =
  match List.assoc_opt tenant t.tenants with
  | None -> reject t (Unknown_tenant tenant)
  | Some ts ->
      let tnow = now () in
      Mutex.lock t.mu;
      let verdict =
        match t.phase with
        | Draining | Stopping | Stopped -> Error Shutting_down
        | Serving ->
            if Queue.length t.queue >= t.cfg.queue_capacity then
              Error (Overloaded { retry_after_s = retry_hint t })
            else begin
              let q = quota_of t ts in
              if ts.outstanding >= q then
                Error
                  (Quota_exceeded
                     { tenant; outstanding = ts.outstanding; quota = q })
              else
                (* the breaker check is last so a half-open probe is
                   only consumed by a request that is actually
                   admitted *)
                match Breaker.admit ts.breaker ~now:tnow with
                | `Reject retry_after_s ->
                    Error (Breaker_open { tenant; retry_after_s })
                | `Admit ->
                    let tk =
                      {
                        id = Atomic.fetch_and_add t.ids 1;
                        tenant;
                        work;
                        submitted_at = tnow;
                        deadline_at = Option.map (fun d -> tnow +. d) deadline_s;
                        cancel_flag = Atomic.make false;
                        state = Queued;
                      }
                    in
                    Queue.push tk t.queue;
                    ts.outstanding <- ts.outstanding + 1;
                    Condition.signal t.work_c;
                    Ok tk
            end
      in
      let depth = Queue.length t.queue in
      Mutex.unlock t.mu;
      (match verdict with
      | Ok _ ->
          Atomic.incr t.accepted;
          Obs.incr t.obs "server.accepted";
          Obs.observe t.obs "server.queue_depth" (float_of_int depth);
          verdict
      | Error rej -> reject t rej)

let cancel t tk =
  Mutex.lock t.mu;
  (match tk.state with
  | Done _ -> ()
  | Queued | Running -> Atomic.set tk.cancel_flag true);
  Mutex.unlock t.mu

let await t tk =
  Mutex.lock t.mu;
  let rec wait () =
    match tk.state with
    | Done o -> o
    | Queued | Running ->
        Condition.wait t.done_c t.mu;
        wait ()
  in
  let o = wait () in
  Mutex.unlock t.mu;
  o

let poll t tk =
  Mutex.lock t.mu;
  let o = match tk.state with Done o -> Some o | Queued | Running -> None in
  Mutex.unlock t.mu;
  o

let shutdown t ~drain =
  Mutex.lock t.mu;
  (match t.phase with
  | Stopped -> ()
  | Serving | Draining | Stopping ->
      t.phase <- (if drain then Draining else Stopping);
      if not drain then begin
        (* settle queued tickets as cancelled-before-running, and flag
           in-flight ones to stop at their next iteration boundary *)
        let queued = Queue.fold (fun acc tk -> tk :: acc) [] t.queue in
        Queue.clear t.queue;
        List.iter
          (fun tk ->
            Atomic.set tk.cancel_flag true;
            tk.state <-
              Done (Cancelled { elapsed_s = now () -. tk.submitted_at; ran = false });
            (tenant_state t tk.tenant).outstanding <-
              (tenant_state t tk.tenant).outstanding - 1;
            Atomic.incr t.cancelled_n;
            Obs.incr t.obs "server.cancelled")
          queued;
        Array.iter
          (function Some tk -> Atomic.set tk.cancel_flag true | None -> ())
          t.current
      end;
      Condition.broadcast t.work_c;
      Condition.broadcast t.done_c;
      while t.inflight > 0 || not (Queue.is_empty t.queue) do
        Condition.wait t.done_c t.mu
      done;
      t.phase <- Stopped;
      Condition.broadcast t.work_c);
  let join_needed = not t.workers_joined in
  t.workers_joined <- true;
  Mutex.unlock t.mu;
  if join_needed then begin
    List.iter Domain.join t.handles;
    Array.iter Parallel.Pool.shutdown t.pools;
    Obs.observe t.obs "server.queue_depth" 0.
  end

type counters = {
  accepted : int;
  rejected_overloaded : int;
  rejected_quota : int;
  rejected_breaker : int;
  rejected_other : int;
  completed : int;
  deadline_exceeded : int;
  cancelled : int;
  failed : int;
  corruptions : int;
  breaker_trips : int;
}

let counters t =
  let trips =
    Mutex.lock t.mu;
    let n =
      List.fold_left (fun acc (_, ts) -> acc + Breaker.trips ts.breaker) 0
        t.tenants
    in
    Mutex.unlock t.mu;
    n
  in
  {
    accepted = Atomic.get t.accepted;
    rejected_overloaded = Atomic.get t.rejected_overloaded;
    rejected_quota = Atomic.get t.rejected_quota;
    rejected_breaker = Atomic.get t.rejected_breaker;
    rejected_other = Atomic.get t.rejected_other;
    completed = Atomic.get t.completed_n;
    deadline_exceeded = Atomic.get t.deadline_n;
    cancelled = Atomic.get t.cancelled_n;
    failed = Atomic.get t.failed_n;
    corruptions = Atomic.get t.corruptions;
    breaker_trips = trips;
  }

let queue_depth t =
  Mutex.lock t.mu;
  let d = Queue.length t.queue in
  Mutex.unlock t.mu;
  d

let inflight t =
  Mutex.lock t.mu;
  let n = t.inflight in
  Mutex.unlock t.mu;
  n
