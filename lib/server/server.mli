(** Factorization-as-a-service: a concurrent multi-tenant front-end
    over the fault-tolerant Cholesky driver.

    The server owns a fixed set of worker slots (each a domain with its
    own private {!Parallel.Pool}, so concurrent requests never share a
    pool or its obs sink) fed from one bounded submission queue:

    - {b Backpressure.} When the queue is full, {!submit} returns a
      structured [Overloaded] rejection carrying a retry hint derived
      from the observed service time — the queue never grows without
      bound.
    - {b Deadlines and cancellation.} Each request may carry a
      deadline; the deadline and {!cancel} both flip a per-ticket
      atomic flag that the Cholesky driver polls at iteration
      boundaries ({!Cholesky.Ft.factor}'s [cancel] hook). An expired
      or cancelled request frees its worker slot and reports partial
      stats; it never publishes a half-written factor.
    - {b Tenant isolation.} Tenants carry admission weights (turned
      into outstanding-request quotas), their own fault-injection
      plans and driver-config overrides, and a per-tenant
      {!Breaker} — a storming tenant is clipped by its quota and then
      by its breaker instead of starving clean tenants.
    - {b Graceful shutdown.} [shutdown ~drain:true] stops admitting
      and finishes the queue; [~drain:false] cancels queued work and
      flags in-flight runs, which stop at their next iteration
      boundary. Either way every accepted ticket reaches a terminal
      outcome: accepted = completed + deadline + cancelled + failed,
      with no silent drops.

    All cross-request shared counters are [Atomic.t]; queue and
    per-tenant state are guarded by one server mutex. The obs sink
    receives per-request [request] spans (always stopped, on every
    exit path), wait/service histograms, queue-depth/inflight
    observations, and rejection/breaker counters. *)

open Matrix

(** {1 Work and tenants} *)

type work =
  | Factor of Mat.t  (** factor an SPD matrix *)
  | Solve of { a : Mat.t; rhs : Vec.t }
      (** factor then solve [a x = rhs] by two triangular solves
          against the ABFT-protected factor *)
  | Solve_cg of { a : Mat.t; rhs : Vec.t }
      (** factor, then solve [a x = rhs] with the fault-tolerant PCG
          harness ({!Solvers.Cg.solve}) preconditioned by the
          ABFT-protected factor. Both halves run under the request's
          cancel hook, so deadlines and {!cancel} take effect at the
          next factorization or solver iteration boundary; the tenant's
          fault plan flows to both (factorization windows fire in the
          factor, [In_solver] windows in the solver). A solver give-up
          is a [Failed] outcome; [Completed] carries the verified
          iterate and the solver report *)

type tenant_policy = {
  weight : int;  (** admission share; quotas are weight-proportional *)
  plan : n:int -> block:int -> seed:int -> Fault.t;
      (** per-request fault plan (the tenant's injection/storm
          profile); [seed] is derived deterministically from the
          server seed and the request id *)
  chol : Cholesky.Config.t option;
      (** per-tenant driver-config override (resilience knobs:
          restarts, rollbacks, snapshot cadence, scheme); [None] uses
          the server's base config *)
  final_sweep : bool;  (** pass [final_sweep] to the driver *)
  breaker : Breaker.policy;
}

val clean_tenant : tenant_policy
(** weight 1, empty fault plan, no config override, no final sweep,
    {!Breaker.default_policy}. *)

type config = {
  workers : int;  (** worker slots (each one domain + private pool) *)
  pool_domains : int;  (** parallelism lanes per worker's pool *)
  queue_capacity : int;  (** bounded submission queue length *)
  chol : Cholesky.Config.t;  (** base driver config *)
  seed : int;  (** seeds breakers and per-request fault plans *)
}

val default_config : config
(** 2 workers × 2 lanes, queue of 8, {!Cholesky.Config.default},
    seed 0. *)

(** {1 Admission} *)

type rejection =
  | Overloaded of { retry_after_s : float }
      (** queue full; retry hint from observed service time *)
  | Quota_exceeded of { tenant : string; outstanding : int; quota : int }
  | Breaker_open of { tenant : string; retry_after_s : float }
  | Unknown_tenant of string
  | Shutting_down

val pp_rejection : Format.formatter -> rejection -> unit

(** {1 Outcomes} *)

type outcome =
  | Completed of {
      report : Cholesky.Ft.report;
      solution : Vec.t option;  (** [Some] for [Solve]/[Solve_cg] work *)
      solver : Solvers.Cg.report option;
          (** [Some] for [Solve_cg] work: the PCG report (iterations,
              detections, recovery-rung counts, audit log) *)
      wait_s : float;  (** submission → start *)
      service_s : float;  (** start → completion *)
    }
  | Deadline_exceeded of {
      elapsed_s : float;
      iteration : int;
          (** outer (or, for [Solve_cg] expiring mid-solve, solver)
              iteration reached; 0 if never ran *)
      stats : Cholesky.Ft.stats option;
          (** partial driver stats; [None] if it never ran or expired
              in the iterative half of a [Solve_cg] *)
    }
  | Cancelled of { elapsed_s : float; ran : bool }
      (** [ran] is false when cancelled while still queued *)
  | Failed of { reason : string; elapsed_s : float }
      (** gave-up factorizations, silent corruption (counted
          separately in {!counters}), solve failures *)

val pp_outcome : Format.formatter -> outcome -> unit

type ticket
(** Handle to one accepted request. *)

val ticket_id : ticket -> int
val ticket_tenant : ticket -> string

(** {1 Lifecycle} *)

type t

val create : ?obs:Obs.t -> config -> (string * tenant_policy) list -> t
(** Start the worker slots and their pools. Tenant names must be
    distinct and weights positive.
    @raise Invalid_argument on an empty or invalid tenant table or
    config. *)

val submit :
  t -> tenant:string -> ?deadline_s:float -> work -> (ticket, rejection) result
(** Admission-check and enqueue. [deadline_s] is a relative budget
    from submission time; it covers queue wait. Never blocks. *)

val cancel : t -> ticket -> unit
(** Request cooperative cancellation: queued tickets terminate as
    [Cancelled {ran = false}] without running; running tickets stop at
    the driver's next iteration boundary. Idempotent; a no-op on
    already-terminal tickets. *)

val await : t -> ticket -> outcome
(** Block until the ticket is terminal. *)

val poll : t -> ticket -> outcome option
(** [Some] once terminal; never blocks. *)

val shutdown : t -> drain:bool -> unit
(** Stop admitting, settle every accepted ticket ([~drain:true] runs
    the queue to completion; [~drain:false] cancels queued tickets and
    flags in-flight ones), join the worker domains and shut their
    pools down. Idempotent; blocks until fully stopped. *)

(** {1 Introspection} *)

type counters = {
  accepted : int;
  rejected_overloaded : int;
  rejected_quota : int;
  rejected_breaker : int;
  rejected_other : int;  (** unknown tenant, shutting down *)
  completed : int;
  deadline_exceeded : int;
  cancelled : int;
  failed : int;
  corruptions : int;
      (** completed-but-wrong factors (also classified [Failed]) —
          must be 0 under any plan the scheme covers *)
  breaker_trips : int;
}

val counters : t -> counters
(** Snapshot of the atomic request-accounting counters. Once the
    server is shut down,
    [accepted = completed + deadline_exceeded + cancelled + failed]. *)

val queue_depth : t -> int
(** Live queued-request count (0 after drain). *)

val inflight : t -> int
(** Requests currently on a worker slot. *)

val quota : t -> string -> int
(** The outstanding-request quota admission enforces for a tenant:
    [max 1 (weight * (queue_capacity + workers) / total_weight)].
    @raise Invalid_argument for an unknown tenant. *)
