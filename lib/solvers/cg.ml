(* Fault-tolerant CG/PCG with online residual verification and a
   backward/forward recovery ladder, after Fasi, Langou, Robert &
   Ucar's backward/forward recovery approach for the preconditioned
   conjugate gradient method, on top of the repo's fault-injection and
   observability stack.

   The protection scheme mirrors the Cholesky driver's structure one
   level up the stack:

   - every [verify_interval] iterations the true residual [b - A·x] is
     recomputed and cross-checked against the recurrence residual [r]
     with a scaled tolerance (the recurrence and the truth drift apart
     only through rounding — a fault makes them diverge violently);
   - a verified state is checkpointed every [checkpoint_interval]
     verifications' worth of iterations, reusing the Checkpoint
     snapshot idiom (capture copies, restore by blitting into the live
     vectors so aliases stay attached);
   - on detection the ladder runs: forward reconstruction (rebuild
     [r := b - A·x], [z := M⁻¹r], [p := z] from a still-plausible [x])
     when the iterate survived, backward rollback to the last verified
     checkpoint otherwise, then full restart, then a structured
     [Gave_up] — every rung counted in {!stats}.

   The preconditioner's triangular factor is itself protected: column
   sums are recorded at setup and re-derived at every verification
   point; a disagreeing column is healed from a pristine replica
   (single-replica variant of the checksum store's primary/shadow
   arbitration — the replica and the sums live outside the injector's
   reach, exactly like the shadow copy).

   A protected solve can never report a silent wrong answer: the
   convergence test on the cheap recurrence residual is only trusted
   after a final true-residual verification passes. *)

open Matrix

type precond =
  | Identity
  | Jacobi of Vec.t
  | Ic of Mat.t

type reason =
  | Breakdown of { iteration : int; detail : string }
  | Not_converged of { iterations : int; residual : float }
  | Corrupted_state of { iteration : int; detail : string }

type outcome = Converged | Gave_up of reason

type stats = {
  iterations : int;
  verifications : int;
  detections : int;
  reconstructions : int;
  rollbacks : int;
  checkpoints : int;
  restarts : int;
  precond_repairs : int;
}

type report = {
  x : Vec.t;
  outcome : outcome;
  residual : float;
  stats : stats;
  injections_fired : Injector.fired list;
}

exception Cancelled of { iteration : int; stats : stats }

type config = {
  max_iters : int;
  rtol : float;
  verify_interval : int;
  verify_slack : float;
  checkpoint_interval : int;
  max_rollbacks : int;
  max_restarts : int;
}

let config ?(max_iters = 0) ?(rtol = 1e-10) ?(verify_interval = 4)
    ?(verify_slack = 1e-6) ?(checkpoint_interval = 8) ?(max_rollbacks = 2)
    ?(max_restarts = 2) () =
  let nonneg name v =
    if v < 0 then
      invalid_arg
        (Printf.sprintf "Cg.config: %s must be >= 0 (0 disables it), got %d"
           name v)
  in
  nonneg "max_iters" max_iters;
  nonneg "verify_interval" verify_interval;
  nonneg "checkpoint_interval" checkpoint_interval;
  nonneg "max_rollbacks" max_rollbacks;
  nonneg "max_restarts" max_restarts;
  if rtol <= 0. then invalid_arg "Cg.config: rtol must be positive";
  if verify_slack <= 0. then
    invalid_arg "Cg.config: verify_slack must be positive";
  {
    max_iters;
    rtol;
    verify_interval;
    verify_slack;
    checkpoint_interval;
    max_rollbacks;
    max_restarts;
  }

let default = config ()

(* ------------------------------------------------------------------ *)
(* Preconditioners                                                     *)
(* ------------------------------------------------------------------ *)

let jacobi a =
  let n = Mat.rows a in
  Jacobi
    (Vec.init n (fun i ->
         let d = Mat.get a i i in
         if d <= 0. then
           invalid_arg "Cg.jacobi: non-positive diagonal entry";
         1. /. d))

let block_jacobi ?(block = 8) a =
  if block < 1 then invalid_arg "Cg.block_jacobi: block must be >= 1";
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Cg.block_jacobi: matrix not square";
  let l = Mat.create n n in
  let rec factor_from j0 =
    if j0 < n then begin
      let bs = min block (n - j0) in
      let blk = Mat.init bs bs (fun i j -> Mat.get a (j0 + i) (j0 + j)) in
      Lapack.potf2 Types.Lower blk;
      for j = 0 to bs - 1 do
        for i = j to bs - 1 do
          Mat.set l (j0 + i) (j0 + j) (Mat.get blk i j)
        done
      done;
      factor_from (j0 + bs)
    end
  in
  factor_from 0;
  Ic l

let cholesky ?pool ?obs ?plan ?cfg a =
  Ic (Cholesky.Solve.factor_matrix (Cholesky.Solve.factorize ?pool ?obs ?plan ?cfg a))

let ic l =
  if Mat.rows l <> Mat.cols l then
    invalid_arg "Cg.ic: factor is not square";
  Ic l

(* z <- M^-1 r *)
let apply_precond m r z =
  let n = Array.length r in
  match m with
  | Identity -> Array.blit r 0 z 0 n
  | Jacobi d ->
      for i = 0 to n - 1 do
        z.(i) <- d.(i) *. r.(i)
      done
  | Ic l ->
      Array.blit r 0 z 0 n;
      Cholesky.Solve.triangular_solve_vec l z

(* Lower-triangle column sums of the live factor, the quantity the
   precondition guard compares against its setup-time reference. The
   recomputation is deterministic and order-identical, so any resident
   flip — however low the bit — makes the sums bitwise unequal. *)
let factor_colsums l =
  let n = Mat.rows l in
  Vec.init n (fun j ->
      let s = ref 0. in
      for i = j to n - 1 do
        s := !s +. Mat.get l i j
      done;
      !s)

(* ------------------------------------------------------------------ *)
(* The verified-snapshot idiom, specialized to the PCG state           *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_it : int;
  sx : Vec.t;
  sr : Vec.t;
  sp : Vec.t;
  sz : Vec.t;
  srz : float;
}

let take_snapshot ~it ~x ~r ~p ~z ~rz =
  { snap_it = it; sx = Vec.copy x; sr = Vec.copy r; sp = Vec.copy p;
    sz = Vec.copy z; srz = rz }

(* Restore element-wise into the live vectors (never swap the arrays:
   the injector's lookup and the caller's aliases stay attached). *)
let restore_snapshot s ~x ~r ~p ~z =
  let n = Array.length x in
  Array.blit s.sx 0 x 0 n;
  Array.blit s.sr 0 r 0 n;
  Array.blit s.sp 0 p 0 n;
  Array.blit s.sz 0 z 0 n

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)
(* ------------------------------------------------------------------ *)

type counters = {
  mutable c_iterations : int;
  mutable c_verifications : int;
  mutable c_detections : int;
  mutable c_reconstructions : int;
  mutable c_rollbacks : int;
  mutable c_checkpoints : int;
  mutable c_restarts : int;
  mutable c_precond_repairs : int;
}

let freeze c =
  {
    iterations = c.c_iterations;
    verifications = c.c_verifications;
    detections = c.c_detections;
    reconstructions = c.c_reconstructions;
    rollbacks = c.c_rollbacks;
    checkpoints = c.c_checkpoints;
    restarts = c.c_restarts;
    precond_repairs = c.c_precond_repairs;
  }

(* rt <- b - A·x and its norm: the solver's verification point. Every
   detection decision reads the truth through this helper. *)
let residual_check ~obs a b x rt =
  Obs.span obs ~op:"solver-verify" ~phase:"abft" (fun () ->
      Array.blit b 0 rt 0 (Array.length b);
      Blas2.gemv ~alpha:(-1.) ~beta:1. a x rt;
      Vec.nrm2 rt)

let all_finite v = Array.for_all Float.is_finite v

let solve ?(obs = Obs.null) ?(plan = []) ?(precond = Identity)
    ?(cancel = fun () -> false) cfg a b =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Cg.solve: matrix not square";
  if Array.length b <> n then
    invalid_arg "Cg.solve: right-hand side has wrong length";
  let inj = Injector.create plan in
  let bnorm = Vec.nrm2 b in
  let norm_a = Mat.norm_inf a in
  let max_iters = if cfg.max_iters > 0 then cfg.max_iters else 2 * n in
  let protected = cfg.verify_interval > 0 in
  (* Live state; the injector's lookup aliases these arrays (and the
     preconditioner's live factor) for the whole run. *)
  let x = Vec.create n in
  let r = Vec.create n in
  let z = Vec.create n in
  let p = Vec.create n in
  let q = Vec.create n in
  let rt = Vec.create n in
  let rz = ref 0. in
  let live_factor =
    match precond with Ic l -> Some l | Identity | Jacobi _ -> None
  in
  (* The guard's replica and reference sums are captured before the
     first injection window opens and never exposed to the injector:
     the live factor is the only corruptible copy. *)
  let precond_guard =
    match live_factor with
    | None -> None
    | Some l -> Some (l, Mat.copy l, factor_colsums l)
  in
  let c =
    {
      c_iterations = 0;
      c_verifications = 0;
      c_detections = 0;
      c_reconstructions = 0;
      c_rollbacks = 0;
      c_checkpoints = 0;
      c_restarts = 0;
      c_precond_repairs = 0;
    }
  in
  let verify_precond () =
    match precond_guard with
    | None -> ()
    | Some (l, replica, sums) ->
        let live = factor_colsums l in
        for j = 0 to n - 1 do
          if not (Float.equal live.(j) sums.(j)) then begin
            for i = j to n - 1 do
              Mat.set l i j (Mat.get replica i j)
            done;
            c.c_precond_repairs <- c.c_precond_repairs + 1;
            Obs.incr obs "solver.precond_repairs"
          end
        done
  in
  let lookup target =
    match (target : Fault.solver_target) with
    | Fault.Sol_x -> Some (`Vec x)
    | Fault.Sol_r -> Some (`Vec r)
    | Fault.Sol_p -> Some (`Vec p)
    | Fault.Sol_precond ->
        Option.map (fun l -> `Mat l) live_factor
  in
  let finish outcome residual =
    {
      x = Vec.copy x;
      outcome;
      residual;
      stats = freeze c;
      injections_fired = Injector.fired inj;
    }
  in
  (* One restart attempt. [restart_no] threads the ladder's outermost
     cap; inner recursion is bounded by [max_iters] plus the (finite,
     fire-once) injection plan. *)
  let rec attempt restart_no =
    Vec.fill x 0.;
    Array.blit b 0 r 0 n;
    apply_precond precond r z;
    Array.blit z 0 p 0 n;
    rz := Vec.dot r z;
    let snap = ref None in
    let rollbacks_here = ref 0 in
    (* Residual level of the last state that passed verification: the
       yardstick for the forward/backward choice. A detection whose
       true residual is still near this level means the iterate
       survived (corruption hit r/p/z, or x only slightly) — rebuild
       forward. A residual far above it means x itself took the hit —
       roll back. *)
    let last_good = ref bnorm in
    (* Forward reconstructions are capped by the plan: each transient
       fault can force at most one, so anything beyond that means the
       reconstruction itself is not converging — fall through to the
       backward rungs instead of livelocking. *)
    let forwards_left = ref (List.length plan + 2) in
    if protected && cfg.checkpoint_interval > 0 then begin
      snap := Some (take_snapshot ~it:0 ~x ~r ~p ~z ~rz:!rz);
      c.c_checkpoints <- c.c_checkpoints + 1
    end;
    let rec iterate it =
      if cancel () then
        raise (Cancelled { iteration = it; stats = freeze c });
      Injector.fire_solver inj ~iteration:it ~lookup;
      let rn = Vec.nrm2 r in
      if rn <= cfg.rtol *. bnorm then begin
        if not protected then finish Converged (rn /. Float.max 1e-300 bnorm)
        else begin
          (* Never trust the recurrence alone: a converged report is
             only issued after the true residual agrees. *)
          let tn = residual_check ~obs a b x rt in
          c.c_verifications <- c.c_verifications + 1;
          if Float.is_finite tn && tn <= 10. *. cfg.rtol *. bnorm then
            finish Converged (tn /. Float.max 1e-300 bnorm)
          else recover it "converged-state verification failed"
        end
      end
      else if it >= max_iters then
        if restart_no < cfg.max_restarts then begin
          c.c_restarts <- c.c_restarts + 1;
          Obs.incr obs "solver.restarts";
          attempt (restart_no + 1)
        end
        else
          finish
            (Gave_up
               (Not_converged
                  { iterations = it; residual = rn /. Float.max 1e-300 bnorm }))
            (rn /. Float.max 1e-300 bnorm)
      else begin
        let verifying =
          protected && it > 0 && it mod cfg.verify_interval = 0
        in
        if verifying then begin
          verify_precond ();
          let tn = residual_check ~obs a b x rt in
          c.c_verifications <- c.c_verifications + 1;
          let dev = ref 0. in
          for i = 0 to n - 1 do
            let d = rt.(i) -. r.(i) in
            dev := !dev +. (d *. d)
          done;
          let dev = sqrt !dev in
          let scale =
            cfg.verify_slack
            *. ((norm_a *. Vec.nrm2 x) +. bnorm +. tn +. 1.)
          in
          if not (Float.is_finite dev) || dev > scale then
            recover it "recurrence residual diverged from b - A*x"
          else begin
            last_good := tn;
            if
              cfg.checkpoint_interval > 0
              && it mod cfg.checkpoint_interval = 0
            then begin
              snap := Some (take_snapshot ~it ~x ~r ~p ~z ~rz:!rz);
              c.c_checkpoints <- c.c_checkpoints + 1;
              Obs.incr obs "solver.checkpoints"
            end;
            step it
          end
        end
        else step it
      end
    and step it =
      c.c_iterations <- c.c_iterations + 1;
      Obs.incr obs "solver.iterations";
      Blas2.gemv a p q;
      let pq = Vec.dot p q in
      if not (Float.is_finite pq) || pq <= 0. then
        if protected then recover it "direction breakdown (p'Ap <= 0)"
        else
          finish
            (Gave_up
               (Breakdown
                  { iteration = it; detail = "direction breakdown (p'Ap <= 0)" }))
            Float.nan
      else begin
        let alpha = !rz /. pq in
        Vec.axpy alpha p x;
        Vec.axpy (-.alpha) q r;
        apply_precond precond r z;
        let rz' = Vec.dot r z in
        if not (Float.is_finite rz') then
          if protected then recover it "non-finite preconditioned product"
          else
            finish
              (Gave_up
                 (Breakdown
                    {
                      iteration = it;
                      detail = "non-finite preconditioned product";
                    }))
              Float.nan
        else begin
          let beta = rz' /. !rz in
          rz := rz';
          Vec.scal beta p;
          Vec.axpy 1. z p;
          iterate (it + 1)
        end
      end
    and recover it detail =
      c.c_detections <- c.c_detections + 1;
      Obs.incr obs "solver.detections";
      (* Heal the preconditioner first: the forward rung is about to
         rebuild z and p through it. *)
      verify_precond ();
      let tn = residual_check ~obs a b x rt in
      c.c_verifications <- c.c_verifications + 1;
      let forward_ok =
        !forwards_left > 0 && all_finite x && Float.is_finite tn
        && tn <= 1e3 *. (!last_good +. (cfg.rtol *. bnorm))
      in
      if forward_ok then begin
        (* Forward reconstruction: the iterate is plausible, so rebuild
           the recurrence state from its invariant r = b - A*x and
           reset the search direction. CG restarted from x converges
           from wherever x stands. *)
        decr forwards_left;
        last_good := tn;
        c.c_reconstructions <- c.c_reconstructions + 1;
        Obs.incr obs "solver.reconstructions";
        Array.blit rt 0 r 0 n;
        apply_precond precond r z;
        Array.blit z 0 p 0 n;
        rz := Vec.dot r z;
        if Float.is_finite !rz && !rz > 0. then iterate (it + 1)
        else backward it detail
      end
      else backward it detail
    and backward it detail =
      match !snap with
      | Some s when !rollbacks_here < cfg.max_rollbacks ->
          incr rollbacks_here;
          c.c_rollbacks <- c.c_rollbacks + 1;
          Obs.incr obs "solver.rollbacks";
          Obs.span obs ~op:"solver-rollback" ~phase:"recovery" (fun () ->
              restore_snapshot s ~x ~r ~p ~z;
              rz := s.srz);
          iterate s.snap_it
      | Some _ | None ->
          if restart_no < cfg.max_restarts then begin
            c.c_restarts <- c.c_restarts + 1;
            Obs.incr obs "solver.restarts";
            attempt (restart_no + 1)
          end
          else
            finish
              (Gave_up (Corrupted_state { iteration = it; detail }))
              Float.nan
    in
    iterate 0
  in
  if bnorm <= 0. then finish Converged 0. else attempt 0

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_reason fmt = function
  | Breakdown { iteration; detail } ->
      Format.fprintf fmt "breakdown at iteration %d: %s" iteration detail
  | Not_converged { iterations; residual } ->
      Format.fprintf fmt "no convergence after %d iterations (residual %.3e)"
        iterations residual
  | Corrupted_state { iteration; detail } ->
      Format.fprintf fmt "corrupted state at iteration %d: %s" iteration
        detail

let pp_outcome fmt = function
  | Converged -> Format.fprintf fmt "converged"
  | Gave_up reason -> Format.fprintf fmt "gave up: %a" pp_reason reason

let pp_stats fmt s =
  Format.fprintf fmt
    "iters=%d verifs=%d detects=%d forward=%d rollbacks=%d checkpoints=%d \
     restarts=%d precond-repairs=%d"
    s.iterations s.verifications s.detections s.reconstructions s.rollbacks
    s.checkpoints s.restarts s.precond_repairs
