(** Fault-tolerant conjugate gradient with online residual
    verification, verified checkpoints, and a backward/forward
    recovery ladder.

    The solver follows Fasi, Langou, Robert & Ucar's backward/forward
    recovery approach for PCG (see PAPERS.md): the cheap recurrence
    residual drives the iteration, the true residual [b − A·x] is
    recomputed every {!config.verify_interval} iterations and
    cross-checked against it with a scaled tolerance, and each
    detection picks the cheapest sufficient rung:

    + {b forward reconstruction} — when the iterate [x] is still
      plausible, rebuild [r := b − A·x], [z := M⁻¹r], [p := z] from the
      recurrence invariant and continue (CG restarted from [x]);
    + {b backward rollback} — restore the last verified checkpoint of
      [(x, r, p, z)] (at most {!config.max_rollbacks} per attempt);
    + {b restart} — from scratch (at most {!config.max_restarts});
    + structured {!Gave_up}.

    Every rung is counted in {!stats}. A protected solve never reports
    a silent wrong answer: {!Converged} is only issued after a final
    true-residual verification passes. With
    [verify_interval = 0] the harness is disabled and the solver is a
    plain (unprotected) CG — the baseline the bench harness compares
    against.

    Fault windows: {!Injector.fire_solver} fires the plan's
    [In_solver] injections at the start of every iteration, against
    the live [x]/[r]/[p] vectors and (for [Sol_precond]) the
    preconditioner's live triangular factor. The factor is additionally
    guarded by setup-time column sums and a pristine replica, checked
    and healed at every verification point. *)

open Matrix

(** How [z = M⁻¹ r] is computed. [Ic] holds a lower-triangular
    (full or incomplete) Cholesky factor applied via
    {!Cholesky.Solve.triangular_solve_vec}. *)
type precond =
  | Identity  (** plain CG *)
  | Jacobi of Vec.t  (** inverse-diagonal scaling *)
  | Ic of Mat.t  (** triangular factor, full or incomplete *)

type reason =
  | Breakdown of { iteration : int; detail : string }
      (** an unprotected run hit a non-finite or non-positive inner
          product (protected runs recover instead) *)
  | Not_converged of { iterations : int; residual : float }
      (** iteration budget exhausted on every attempt *)
  | Corrupted_state of { iteration : int; detail : string }
      (** the ladder ran dry with the state still failing
          verification *)

type outcome = Converged | Gave_up of reason

type stats = {
  iterations : int;  (** PCG updates performed, all attempts *)
  verifications : int;  (** true-residual recomputations *)
  detections : int;  (** verification failures that entered the ladder *)
  reconstructions : int;  (** forward recoveries (rung 1) *)
  rollbacks : int;  (** checkpoint restores (rung 2), all attempts *)
  checkpoints : int;  (** verified snapshots captured, all attempts *)
  restarts : int;  (** full restarts (rung 3) *)
  precond_repairs : int;
      (** preconditioner-factor columns healed from the replica *)
}

type report = {
  x : Vec.t;  (** the solution iterate (last attempt's, fresh copy) *)
  outcome : outcome;
  residual : float;
      (** verified relative true residual ‖b − A·x‖₂/‖b‖₂ on
          {!Converged}; the recurrence estimate (or [nan]) on
          {!Gave_up} *)
  stats : stats;
  injections_fired : Injector.fired list;  (** audit log of the plan *)
}

exception Cancelled of { iteration : int; stats : stats }
(** Raised when [cancel] returns [true] at an iteration boundary —
    same cooperative-cancellation contract as {!Cholesky.Ft.Cancelled}:
    no torn state, partial stats attached. *)

type config = {
  max_iters : int;  (** iteration budget per attempt; 0 means [2n] *)
  rtol : float;  (** convergence target on ‖r‖₂/‖b‖₂ *)
  verify_interval : int;
      (** verify every k iterations; 0 disables the whole harness *)
  verify_slack : float;
      (** scaled-tolerance multiplier for the recurrence/true residual
          cross-check *)
  checkpoint_interval : int;
      (** checkpoint at verified iterations divisible by this;
          0 disables checkpoints (the backward rung falls through to
          restart) *)
  max_rollbacks : int;  (** backward rollbacks per attempt *)
  max_restarts : int;  (** full restarts per solve *)
}

val config :
  ?max_iters:int ->
  ?rtol:float ->
  ?verify_interval:int ->
  ?verify_slack:float ->
  ?checkpoint_interval:int ->
  ?max_rollbacks:int ->
  ?max_restarts:int ->
  unit ->
  config
(** Defaults: [max_iters = 0] (meaning 2n), [rtol = 1e-10],
    [verify_interval = 4], [verify_slack = 1e-6],
    [checkpoint_interval = 8], [max_rollbacks = 2], [max_restarts = 2].
    @raise Invalid_argument if a count or interval is negative (0 is
    the legitimate "disabled" value, exactly as
    {!Cholesky.Config.make}'s snapshot cadence) or a tolerance is not
    positive. *)

val default : config

val jacobi : Mat.t -> precond
(** Inverse-diagonal preconditioner.
    @raise Invalid_argument on a non-positive diagonal entry. *)

val block_jacobi : ?block:int -> Mat.t -> precond
(** Incomplete Cholesky-style preconditioner: each diagonal
    [block × block] (default 8) sub-block is factored independently and
    assembled into one block-diagonal lower factor — inexact enough to
    keep PCG iterating, cheap enough for storm campaigns.
    @raise Failure if a diagonal block is not positive definite. *)

val cholesky :
  ?pool:Parallel.Pool.t ->
  ?obs:Obs.t ->
  ?plan:Fault.t ->
  ?cfg:Cholesky.Config.t ->
  Mat.t ->
  precond
(** Full ABFT-protected Cholesky preconditioner via
    {!Cholesky.Solve.factorize} — exact, so PCG doubles as iterative
    refinement. @raise Failure as {!Cholesky.Solve.factorize}. *)

val ic : Mat.t -> precond
(** Wrap an existing lower-triangular factor (e.g.
    {!Cholesky.Ft.report}[.factor]).
    @raise Invalid_argument if not square. *)

val solve :
  ?obs:Obs.t ->
  ?plan:Fault.t ->
  ?precond:precond ->
  ?cancel:(unit -> bool) ->
  config ->
  Mat.t ->
  Vec.t ->
  report
(** [solve cfg a b] solves SPD [a · x = b] (neither input modified;
    [precond] defaults to {!Identity}).

    [cancel] is polled at the top of every iteration — including after
    rollbacks and restarts — and raises {!Cancelled} with partial
    stats; serving layers use it for deadlines and client
    cancellation.

    [obs] receives "solver-verify"/"solver-rollback" spans and the
    [solver.iterations], [solver.verifications], [solver.detections],
    [solver.reconstructions], [solver.rollbacks], [solver.checkpoints],
    [solver.restarts] and [solver.precond_repairs] counters.

    [plan]'s [In_solver] injections fire once each, at the start of
    their target iteration; all other windows stay pending (and are
    reported untouched in the audit log's complement).

    @raise Invalid_argument on shape mismatch. *)

val pp_reason : Format.formatter -> reason -> unit
val pp_outcome : Format.formatter -> outcome -> unit
val pp_stats : Format.formatter -> stats -> unit
