open Matrix

type t = {
  x : Vec.t;
  alpha : Vec.t;  (* (K + s2 I)^-1 y *)
  l : Mat.t;  (* Cholesky factor of the noisy kernel matrix *)
  lengthscale : float;
  signal : float;
  report : Cholesky.Ft.report;
  log_ml : float;
}

let kern ~lengthscale ~signal a b =
  let d = (a -. b) /. lengthscale in
  signal *. signal *. exp (-0.5 *. d *. d)

let fit ?cfg ?plan ?(lengthscale = 1.) ?(signal = 1.) ?(noise = 0.1) ~x ~y () =
  let n = Array.length x in
  if n = 0 then invalid_arg "Gp.fit: empty data";
  if Array.length y <> n then invalid_arg "Gp.fit: x/y length mismatch";
  let k =
    Mat.init n n (fun i j ->
        kern ~lengthscale ~signal x.(i) x.(j)
        +. if i = j then noise *. noise else 0.)
  in
  let report = Util.ft_cholesky ?cfg ?plan k in
  let l = report.Cholesky.Ft.factor in
  let ymat = Mat.init n 1 (fun i _ -> y.(i)) in
  let alpha_mat = Util.spd_solve_with_factor l ymat in
  let alpha = Mat.col alpha_mat 0 in
  (* log ML = -1/2 y^T alpha - sum log l_ii - n/2 log 2pi *)
  let logdet_half = ref 0. in
  for i = 0 to n - 1 do
    logdet_half := !logdet_half +. log (Mat.get l i i)
  done;
  let log_ml =
    (-0.5 *. Vec.dot y alpha)
    -. !logdet_half
    -. (float_of_int n /. 2. *. log (2. *. Float.pi))
  in
  { x; alpha; l; lengthscale; signal; report; log_ml }

let predict t xs =
  let n = Array.length t.x in
  let means =
    Array.map
      (fun xstar ->
        let kv =
          Vec.init n (fun i ->
              kern ~lengthscale:t.lengthscale ~signal:t.signal t.x.(i) xstar)
        in
        Vec.dot kv t.alpha)
      xs
  in
  let variances =
    Array.map
      (fun xstar ->
        let kv =
          Array.init n (fun i ->
              kern ~lengthscale:t.lengthscale ~signal:t.signal t.x.(i) xstar)
        in
        (* v = inv(L) k_star; var = k(xstar, xstar) - v'v *)
        Blas2.trsv Types.Lower Types.No_trans Types.Non_unit_diag t.l kv;
        let prior = kern ~lengthscale:t.lengthscale ~signal:t.signal xstar xstar in
        Float.max 0. (prior -. Vec.dot kv kv))
      xs
  in
  (means, variances)

let log_marginal_likelihood t = t.log_ml
let factorization t = t.report
