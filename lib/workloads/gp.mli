(** Gaussian-process regression — a "non-linear optimization /
    least-squares" style consumer of Cholesky (the kernel matrix solve
    dominates GP training cost, and it must be SPD).

    Squared-exponential kernel; the noisy kernel matrix
    [K + σ²I] is factored with the fault-tolerant driver; predictions
    and the log marginal likelihood come from the factor. *)

open Matrix

type t
(** A fitted GP model. *)

val fit :
  ?cfg:Cholesky.Config.t ->
  ?plan:Fault.t ->
  ?lengthscale:float ->
  ?signal:float ->
  ?noise:float ->
  x:Vec.t ->
  y:Vec.t ->
  unit ->
  t
(** [fit ~x ~y ()] trains on 1-D inputs. Defaults:
    [lengthscale = 1.], [signal = 1.], [noise = 0.1].
    @raise Invalid_argument on length mismatch or empty data.
    @raise Failure if the factorization does not succeed. *)

val predict : t -> Vec.t -> Vec.t * Vec.t
(** [predict t xs] is [(means, variances)] at the test inputs. *)

val log_marginal_likelihood : t -> float

val factorization : t -> Cholesky.Ft.report
(** The FT driver report of the training factorization. *)
