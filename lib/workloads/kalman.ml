open Matrix

type model = { f : Mat.t; h : Mat.t; q : Mat.t; r : Mat.t }

type track = {
  estimates : Mat.t list;
  truth : Mat.t list;
  rmse : float;
  factorizations : int;
  corrections : int;
}

let constant_velocity ?(dt = 1.) ?(q = 0.01) ?(r = 0.25) ~dim () =
  if dim < 1 then invalid_arg "Kalman.constant_velocity: dim must be >= 1";
  let n = 2 * dim in
  let f =
    Mat.init n n (fun i j ->
        if i = j then 1. else if j = i + dim then dt else 0.)
  in
  let h = Mat.init dim n (fun i j -> if i = j then 1. else 0.) in
  let q_mat = Mat.init n n (fun i j -> if i = j then q else 0.) in
  let r_mat = Mat.init dim dim (fun i j -> if i = j then r else 0.) in
  { f; h; q = q_mat; r = r_mat }

let run ?(seed = 3) ?cfg ?plan_at model ~steps =
  let st = Random.State.make [| seed; steps |] in
  let n = Mat.rows model.f and m = Mat.rows model.h in
  let q_chol = Lapack.cholesky model.q in
  let r_chol = Lapack.cholesky model.r in
  let corrections = ref 0 and factorizations = ref 0 in
  let x_true = ref (Util.gaussian_mat st n 1) in
  let x_est = ref (Mat.create n 1) in
  let p = ref (Mat.scalar n 10.) in
  let truth = ref [] and estimates = ref [] in
  let sq_err = ref 0. in
  for step = 0 to steps - 1 do
    (* Simulate truth and a measurement. *)
    let w = Blas3.gemm_alloc q_chol (Util.gaussian_mat st n 1) in
    x_true := Mat.add (Blas3.gemm_alloc model.f !x_true) w;
    let v = Blas3.gemm_alloc r_chol (Util.gaussian_mat st m 1) in
    let z = Mat.add (Blas3.gemm_alloc model.h !x_true) v in
    (* Predict. *)
    let x_pred = Blas3.gemm_alloc model.f !x_est in
    let fp = Blas3.gemm_alloc model.f !p in
    let p_pred = Mat.add (Blas3.gemm_alloc ~transb:Types.Trans fp model.f) model.q in
    (* Innovation covariance S = H P H^T + R, factored fault-tolerantly. *)
    let hp = Blas3.gemm_alloc model.h p_pred in
    let s = Mat.add (Blas3.gemm_alloc ~transb:Types.Trans hp model.h) model.r in
    let plan =
      match plan_at with
      | Some (at, plan) when at = step -> plan
      | _ -> []
    in
    let report = Util.ft_cholesky ?cfg ~plan s in
    incr factorizations;
    corrections := !corrections + report.Cholesky.Ft.stats.Cholesky.Ft.corrections;
    (* Gain K = P H^T S^-1, via the factor: solve S Kt = H P. *)
    let kt = Util.spd_solve_with_factor report.Cholesky.Ft.factor hp in
    let k = Mat.transpose kt in
    (* Update. *)
    let innov = Mat.sub_mat z (Blas3.gemm_alloc model.h x_pred) in
    x_est := Mat.add x_pred (Blas3.gemm_alloc k innov);
    let kh = Blas3.gemm_alloc k model.h in
    let eye_kh = Mat.sub_mat (Mat.identity n) kh in
    p := Blas3.gemm_alloc eye_kh p_pred;
    truth := Mat.copy !x_true :: !truth;
    estimates := Mat.copy !x_est :: !estimates;
    (* position error only (first m state components) *)
    for i = 0 to m - 1 do
      let d = Mat.get !x_est i 0 -. Mat.get !x_true i 0 in
      sq_err := !sq_err +. (d *. d)
    done
  done;
  {
    estimates = List.rev !estimates;
    truth = List.rev !truth;
    rmse = sqrt (!sq_err /. float_of_int (steps * m));
    factorizations = !factorizations;
    corrections = !corrections;
  }
