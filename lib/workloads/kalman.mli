(** A linear Kalman filter whose measurement update solves against the
    innovation covariance with the fault-tolerant Cholesky — the
    paper's "Kalman filters" motivation.

    The model is a constant-velocity tracker in [dim] spatial
    dimensions (state = positions ++ velocities) with position-only
    measurements. Each update factors the innovation covariance
    [S = H·P·Hᵀ + R] (SPD, order [dim·obs_blocks]) through
    {!Util.ft_cholesky}; faults can be injected into any chosen
    update's factorization. *)

open Matrix

type model = {
  f : Mat.t;  (** state transition *)
  h : Mat.t;  (** observation *)
  q : Mat.t;  (** process noise covariance *)
  r : Mat.t;  (** measurement noise covariance *)
}

type track = {
  estimates : Mat.t list;  (** filtered state means, oldest first *)
  truth : Mat.t list;  (** simulated true states *)
  rmse : float;  (** position RMSE of the filtered track *)
  factorizations : int;  (** Cholesky factorizations performed *)
  corrections : int;  (** ABFT corrections absorbed across them *)
}

val constant_velocity : ?dt:float -> ?q:float -> ?r:float -> dim:int -> unit -> model
(** Standard constant-velocity model: state order [2·dim].
    @raise Invalid_argument if [dim < 1]. *)

val run :
  ?seed:int ->
  ?cfg:Cholesky.Config.t ->
  ?plan_at:int * Fault.t ->
  model ->
  steps:int ->
  track
(** [run model ~steps] simulates a trajectory and filters it.
    [plan_at = (step, plan)] injects the plan into the factorization
    performed at that step (0-based).
    @raise Failure if a factorization does not succeed. *)
