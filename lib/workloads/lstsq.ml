open Matrix

type solution = {
  x : Mat.t;
  residual_norm : float;
  factorization : Cholesky.Ft.report;
}

let solve ?cfg ?plan ~a ~b () =
  let m = Mat.rows a and n = Mat.cols a in
  if Mat.rows b <> m then
    invalid_arg
      (Printf.sprintf "Lstsq.solve: a is %dx%d but b has %d rows" m n
         (Mat.rows b));
  if m < n then invalid_arg "Lstsq.solve: need rows >= cols";
  let gram = Blas3.gemm_alloc ~transa:Types.Trans a a in
  let rhs = Blas3.gemm_alloc ~transa:Types.Trans a b in
  let factorization = Util.ft_cholesky ?cfg ?plan gram in
  let x = Util.spd_solve_with_factor factorization.Cholesky.Ft.factor rhs in
  let fit = Blas3.gemm_alloc a x in
  let residual_norm = Mat.norm_fro (Mat.sub_mat fit b) in
  { x; residual_norm; factorization }

let synthetic_problem ?(seed = 11) ?(noise = 1e-3) ~rows ~cols () =
  let st = Random.State.make [| seed; rows; cols |] in
  let a = Util.gaussian_mat st rows cols in
  let x_true = Util.gaussian_mat st cols 1 in
  let b = Blas3.gemm_alloc a x_true in
  let b = Mat.mapi (fun _ _ v -> v +. (noise *. Util.gaussian st)) b in
  (a, b, x_true)
