(** Linear least squares by normal equations — the first application
    the paper's introduction motivates for Cholesky decomposition.

    Solves [min ‖A·x − b‖₂] via [AᵀA·x = Aᵀb]: the Gram matrix is SPD,
    so the fault-tolerant Cholesky factors it and two triangular solves
    finish the job. (Normal equations square the condition number; fine
    for the well-conditioned synthetic problems used here.) *)

open Matrix

type solution = {
  x : Mat.t;  (** n×rhs solution *)
  residual_norm : float;  (** ‖A·x − b‖_F *)
  factorization : Cholesky.Ft.report;  (** the FT driver's report *)
}

val solve :
  ?cfg:Cholesky.Config.t -> ?plan:Fault.t -> a:Mat.t -> b:Mat.t -> unit -> solution
(** [solve ~a ~b ()] with [a] m×n (m ≥ n) and [b] m×rhs. Faults in
    [plan] are injected into the factorization and must be absorbed by
    the configured scheme.
    @raise Invalid_argument on shape mismatch.
    @raise Failure if the factorization does not succeed. *)

val synthetic_problem :
  ?seed:int -> ?noise:float -> rows:int -> cols:int -> unit -> Mat.t * Mat.t * Mat.t
(** [synthetic_problem ~rows ~cols ()] is [(a, b, x_true)] with
    [b = a·x_true + noise]: a regression problem with a known answer
    for tests and examples. *)
