open Matrix

type estimate = {
  mean : float;
  stddev : float;
  var_95 : float;
  samples : int;
  factorization : Cholesky.Ft.report;
}

let correlated_returns_cov ?(seed = 5) ~assets () =
  let st = Random.State.make [| seed; assets |] in
  let sectors = max 1 (assets / 8) in
  let sector_of = Array.init assets (fun _ -> Random.State.int st sectors) in
  let vol = Array.init assets (fun _ -> 0.1 +. Random.State.float st 0.3) in
  Mat.init assets assets (fun i j ->
      let corr =
        if i = j then 1.
        else if sector_of.(i) = sector_of.(j) then 0.6
        else 0.15
      in
      corr *. vol.(i) *. vol.(j))

let simulate ?(seed = 17) ?cfg ?plan ~cov ~weights ~samples () =
  let n = Mat.rows cov in
  if Array.length weights <> n then
    invalid_arg "Montecarlo.simulate: weights length mismatch";
  if samples <= 0 then invalid_arg "Montecarlo.simulate: samples <= 0";
  let factorization = Util.ft_cholesky ?cfg ?plan cov in
  let l = factorization.Cholesky.Ft.factor in
  let st = Random.State.make [| seed; samples; n |] in
  let returns = Array.make samples 0. in
  for s = 0 to samples - 1 do
    let z = Util.gaussian_vec st n in
    let x = Blas2.gemv_alloc l z in
    returns.(s) <- Vec.dot weights x
  done;
  let mean = Array.fold_left ( +. ) 0. returns /. float_of_int samples in
  let var =
    Array.fold_left (fun acc r -> acc +. ((r -. mean) ** 2.)) 0. returns
    /. float_of_int (max 1 (samples - 1))
  in
  let sorted = Array.copy returns in
  Array.sort Float.compare sorted;
  let var_95 = -.sorted.(max 0 (samples / 20 - 1)) in
  { mean; stddev = sqrt var; var_95; samples; factorization }
