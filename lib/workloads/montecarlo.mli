(** Correlated Monte-Carlo sampling — the paper's "Monte Carlo
    simulations" motivation.

    Drawing from [N(mu, Σ)] needs the Cholesky factor of Σ once up
    front ([x = mu + L·z] with [z ~ N(0, I)]): a single silent error in
    [L] skews {e every} sample, which is why a fault-tolerant
    factorization matters here. The demo estimates portfolio loss
    statistics (mean, variance, value-at-risk) over correlated asset
    returns. *)

open Matrix

type estimate = {
  mean : float;  (** sample mean of the portfolio return *)
  stddev : float;
  var_95 : float;  (** 95% value-at-risk (positive = loss) *)
  samples : int;
  factorization : Cholesky.Ft.report;
}

val correlated_returns_cov : ?seed:int -> assets:int -> unit -> Mat.t
(** A realistic SPD covariance: sector-correlated returns with
    idiosyncratic variance. *)

val simulate :
  ?seed:int ->
  ?cfg:Cholesky.Config.t ->
  ?plan:Fault.t ->
  cov:Mat.t ->
  weights:Vec.t ->
  samples:int ->
  unit ->
  estimate
(** [simulate ~cov ~weights ~samples ()] draws correlated return
    vectors and aggregates the portfolio return [wᵀx].
    @raise Invalid_argument on dimension mismatch or [samples <= 0].
    @raise Failure if the factorization does not succeed. *)
