open Matrix

let pick_block ?target n =
  try Cholesky.Config.divisor_block ?target n
  with Invalid_argument _ -> invalid_arg "Util.pick_block: n must be positive"

let gaussian st =
  let rec u () =
    let x = Random.State.float st 1. in
    if x > 0. then x else u ()
  in
  sqrt (-2. *. log (u ())) *. cos (2. *. Float.pi *. Random.State.float st 1.)

let gaussian_vec st n = Vec.init n (fun _ -> gaussian st)
let gaussian_mat st m n = Mat.init m n (fun _ _ -> gaussian st)

let spd_solve_with_factor l b =
  let x = Mat.copy b in
  Lapack.potrs Types.Lower l x;
  x

let ft_cholesky ?cfg ?(plan = []) a =
  let cfg =
    match cfg with
    | Some c -> c
    | None ->
        Cholesky.Config.make ~machine:Hetsim.Machine.testbench
          ~block:(pick_block (Mat.rows a))
          ()
  in
  let report = Cholesky.Ft.factor ~plan cfg a in
  (match report.Cholesky.Ft.outcome with
  | Cholesky.Ft.Success -> ()
  | o ->
      failwith
        (Format.asprintf "ft_cholesky: factorization did not succeed: %a"
           Cholesky.Ft.pp_outcome o));
  report
