(** Small shared helpers for the workload layer. *)

open Matrix

val pick_block : ?target:int -> int -> int
(** [pick_block n] is the largest divisor of [n] that is at most
    [target] (default 64) — a convenient tile size for numeric-mode
    factorizations of workload-determined matrix orders.
    @raise Invalid_argument if [n <= 0]. *)

val gaussian : Random.State.t -> float
(** One standard normal draw (Box–Muller). *)

val gaussian_vec : Random.State.t -> int -> Vec.t
val gaussian_mat : Random.State.t -> int -> int -> Mat.t

val spd_solve_with_factor : Mat.t -> Mat.t -> Mat.t
(** [spd_solve_with_factor l b] solves [A·X = b] given the lower
    Cholesky factor [l] of [A]; fresh result. *)

val ft_cholesky : ?cfg:Cholesky.Config.t -> ?plan:Fault.t -> Mat.t -> Cholesky.Ft.report
(** Factor an SPD matrix with the fault-tolerant driver, defaulting to
    the Enhanced scheme on the testbench machine with a block size that
    divides the order ({!pick_block}).
    @raise Failure if the driver reports anything but [Success] — the
    workloads treat an unrecovered factorization as fatal. *)
