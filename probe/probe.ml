open Matrix
open Types
let rand_mat st m n = Mat.init m n (fun _ _ -> Random.State.float st 2.0 -. 1.0)
let naive_mm a b = (* plain *) 
  let m = Mat.rows a and k = Mat.cols a and n = Mat.cols b in
  assert (Mat.rows b = k);
  Mat.init m n (fun i j -> let s = ref 0. in for l = 0 to k-1 do s := !s +. Mat.get a i l *. Mat.get b l j done; !s)
let tr = Mat.transpose
let opm t a = match t with No_trans -> a | Trans -> tr a
let max_diff a b = Mat.norm_max (Mat.sub_mat a b)
let () =
  let st = Random.State.make [|1|] in
  let worst = ref 0. in
  for _ = 1 to 200 do
    let m = 1 + Random.State.int st 6 and n = 1 + Random.State.int st 6 and k = 1 + Random.State.int st 6 in
    let ta = if Random.State.bool st then Trans else No_trans in
    let tb = if Random.State.bool st then Trans else No_trans in
    let alpha = Random.State.float st 2. -. 1. and beta = Random.State.float st 2. -. 1. in
    let a = (match ta with No_trans -> rand_mat st m k | Trans -> rand_mat st k m) in
    let b = (match tb with No_trans -> rand_mat st k n | Trans -> rand_mat st n k) in
    let c = rand_mat st m n in
    let expect = Mat.add (Mat.scale beta c) (Mat.scale alpha (naive_mm (opm ta a) (opm tb b))) in
    let got = Mat.copy c in
    Blas3.gemm ~transa:ta ~transb:tb ~alpha ~beta a b got;
    worst := Float.max !worst (max_diff expect got)
  done;
  Printf.printf "gemm worst %g\n" !worst;
  (* syrk both uplos/trans *)
  let worst = ref 0. in
  for _ = 1 to 200 do
    let n = 1 + Random.State.int st 6 and k = 1 + Random.State.int st 6 in
    let t = if Random.State.bool st then Trans else No_trans in
    let uplo = if Random.State.bool st then Lower else Upper in
    let alpha = Random.State.float st 2. -. 1. and beta = Random.State.float st 2. -. 1. in
    let a = (match t with No_trans -> rand_mat st n k | Trans -> rand_mat st k n) in
    let c = rand_mat st n n in
    let full = Mat.add (Mat.scale beta c) (Mat.scale alpha (naive_mm (opm t a) (tr (opm t a)))) in
    let got = Mat.copy c in
    Blas3.syrk ~trans:t ~alpha ~beta uplo a got;
    (* compare only the written triangle *)
    let d = ref 0. in
    for i = 0 to n-1 do for j = 0 to n-1 do
      let inl = match uplo with Lower -> i >= j | Upper -> i <= j in
      if inl then d := Float.max !d (abs_float (Mat.get got i j -. Mat.get full i j))
      else if Mat.get got i j <> Mat.get c i j then (Printf.printf "syrk touched opposite triangle!\n"; exit 1)
    done done;
    worst := Float.max !worst !d
  done;
  Printf.printf "syrk worst %g\n" !worst;
  (* trsm/trmm all combos *)
  let worst = ref 0. in
  for _ = 1 to 400 do
    let n = 1 + Random.State.int st 5 and m = 1 + Random.State.int st 5 in
    let side = if Random.State.bool st then Left else Right in
    let uplo = if Random.State.bool st then Lower else Upper in
    let t = if Random.State.bool st then Trans else No_trans in
    let dg = if Random.State.bool st then Unit_diag else Non_unit_diag in
    let na = match side with Left -> m | Right -> n in
    let a0 = rand_mat st na na in
    let a = Mat.mapi (fun i j v -> if i = j then v +. 3. else v) a0 in
    let b = rand_mat st m n in
    let alpha = Random.State.float st 2. -. 1. in
    let x = Mat.copy b in
    Blas3.trsm ~alpha side uplo t dg a x;
    (* residual: op(tri(a)) * x = alpha b (Left) or x * op(tri(a)) = alpha b *)
    let tri = (match uplo with Lower -> Mat.tril ~diag:dg a | Upper -> Mat.triu ~diag:dg a) in
    let opa = opm t tri in
    let lhs = match side with Left -> naive_mm opa x | Right -> naive_mm x opa in
    worst := Float.max !worst (max_diff lhs (Mat.scale alpha b))
  done;
  Printf.printf "trsm worst %g\n" !worst;
  let worst = ref 0. in
  for _ = 1 to 400 do
    let n = 1 + Random.State.int st 5 and m = 1 + Random.State.int st 5 in
    let side = if Random.State.bool st then Left else Right in
    let uplo = if Random.State.bool st then Lower else Upper in
    let t = if Random.State.bool st then Trans else No_trans in
    let dg = if Random.State.bool st then Unit_diag else Non_unit_diag in
    let na = match side with Left -> m | Right -> n in
    let a = rand_mat st na na in
    let b = rand_mat st m n in
    let alpha = Random.State.float st 2. -. 1. in
    let x = Mat.copy b in
    Blas3.trmm ~alpha side uplo t dg a x;
    let tri = (match uplo with Lower -> Mat.tril ~diag:dg a | Upper -> Mat.triu ~diag:dg a) in
    let opa = opm t tri in
    let expect = Mat.scale alpha (match side with Left -> naive_mm opa b | Right -> naive_mm b opa) in
    worst := Float.max !worst (max_diff expect x)
  done;
  Printf.printf "trmm worst %g\n" !worst;
  (* gemv both trans *)
  let worst = ref 0. in
  for _ = 1 to 300 do
    let m = 1 + Random.State.int st 6 and n = 1 + Random.State.int st 6 in
    let t = if Random.State.bool st then Trans else No_trans in
    let a = rand_mat st m n in
    let xl = match t with No_trans -> n | Trans -> m in
    let yl = match t with No_trans -> m | Trans -> n in
    let x = Array.init xl (fun _ -> Random.State.float st 2. -. 1.) in
    let y = Array.init yl (fun _ -> Random.State.float st 2. -. 1.) in
    let alpha = Random.State.float st 2. -. 1. and beta = Random.State.float st 2. -. 1. in
    let xm = Mat.init xl 1 (fun i _ -> x.(i)) in
    let ym = Mat.init yl 1 (fun i _ -> y.(i)) in
    let expect = Mat.add (Mat.scale beta ym) (Mat.scale alpha (naive_mm (opm t a) xm)) in
    let got = Array.copy y in
    Blas2.gemv ~trans:t ~alpha ~beta a x got;
    let d = ref 0. in
    Array.iteri (fun i v -> d := Float.max !d (abs_float (v -. Mat.get expect i 0))) got;
    worst := Float.max !worst !d
  done;
  Printf.printf "gemv worst %g\n" !worst
