(* Deliberately unparsable: the driver must report a parse error for
   this file (exit 2), not crash. *)
let f x = match x with
