(* Clean fixture: idioms the linter must accept, including the
   disjoint-write allowlist, the <> sparsity fast path, and waivers. *)

let scale_rows pool a =
  (* writes indexed by the item's own induction variable: disjoint *)
  Pool.parallel_for pool ~lo:0 ~hi:(Array.length a) (fun i ->
      a.(i) <- a.(i) *. 2.)

let fill_chunks pool dst =
  Pool.parallel_chunks pool ~lo:0 ~hi:(Array.length dst) (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        dst.(i) <- float_of_int i
      done)

let local_accum pool a =
  (* mutable state created inside the work item is private to it *)
  Pool.parallel_for pool ~lo:0 ~hi:(Array.length a) (fun i ->
      let acc = ref 0. in
      for _k = 0 to 3 do
        acc := !acc +. a.(i)
      done;
      a.(i) <- !acc)

let sparse_axpy alpha x y =
  (* <> against the 0. literal is the allowlisted sparsity fast path *)
  if alpha <> 0. then Array.iteri (fun i xi -> y.(i) <- y.(i) +. (alpha *. xi)) x

let close_enough a b = Float.compare a b = 0

let waived_global_flag pool n flag =
  Pool.parallel_for pool ~lo:0 ~hi:n (fun _i ->
      (flag := true)
      [@abft.waive "idempotent monotone flag: every writer stores true"])
