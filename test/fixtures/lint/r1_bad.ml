(* R1 fixture: every construct here must be flagged — a closure handed
   to the pool writing state captured from the enclosing scope. *)

let sum_badly pool a =
  let total = ref 0. in
  Pool.parallel_for pool ~lo:0 ~hi:(Array.length a) (fun i ->
      (* captured ref := inside a pool closure *)
      total := !total +. a.(i));
  !total

let count_badly pool a =
  let hits = Array.make 1 0 in
  Pool.parallel_for pool ~lo:0 ~hi:(Array.length a) (fun _i ->
      (* captured array, constant index: same slot from every item *)
      hits.(0) <- hits.(0) + 1);
  hits.(0)

type acc = { mutable best : float }

let max_badly pool a =
  let acc = { best = neg_infinity } in
  Pool.parallel_chunks pool ~lo:0 ~hi:(Array.length a) (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        (* captured mutable record field *)
        if a.(i) > acc.best then acc.best <- a.(i)
      done);
  acc.best

let incr_badly pool n =
  let seen = ref 0 in
  let work _i = incr seen in
  (* named closure resolved through the local let-binding *)
  Pool.parallel_for pool ~lo:0 ~hi:n work;
  !seen
