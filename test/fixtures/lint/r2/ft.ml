(* R2 fixture: named ft.ml so the verify-before-read rule is in scope.
   Every BLAS-3 read below lacks a dominating Verify call and carries
   no [@abft.unverified] waiver — each must be flagged. *)

let trailing_update st j i =
  (* GEMM reads tiles that were never verified in this function *)
  Blas3.gemm ~alpha:(-1.) ~beta:1. (tile st i j) (tile st j j) (tile st i j)

let panel_solve st j i =
  Blas3.trsm Types.Right Types.Lower Types.Trans Types.Non_unit_diag
    (tile st j j) (tile st i j)

let verified_then_read st j i =
  (* the verify dominates: this one must NOT be flagged *)
  verify_block st (i, j);
  Blas3.syrk ~alpha:(-1.) ~beta:1. (tile st i j) (tile st i i)
