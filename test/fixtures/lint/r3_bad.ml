(* R3 fixture: banned constructs, one per binding — all flagged. *)

let swallow_everything f x =
  (* catch-all try...with can hide Verify/Recovery failures *)
  try f x with _ -> 0.

let reinterpret (x : int) : float =
  (* Obj.magic *)
  Obj.magic x

let first_residual residuals =
  (* partial List.hd in lib code *)
  List.hd residuals

let nth_residual residuals i =
  (* partial List.nth in lib code *)
  List.nth residuals i

let is_zero x =
  (* polymorphic = against a float literal *)
  x = 0.

let same_tol a b =
  (* polymorphic compare on floats *)
  compare a b = 0
