(* R4 fixture: unbounded retry recursion — each should produce one
   blocking finding. *)

(* 1. retry-ish name, no cap anywhere *)
let rec retry_submit dev op =
  match dev op with Some r -> r | None -> retry_submit dev op

(* 2. innocuous name but an [attempt] parameter, still uncapped *)
let resubmit run =
  let rec go ~attempt = match run () with Some r -> r | None -> go ~attempt:(attempt + 1) in
  go ~attempt:0

(* 3. mutual recursion through a helper, no cap in the retry-ish body *)
let rec retry_transfer xfer x = try xfer x with Failure _ -> again xfer x
and again xfer x = retry_transfer xfer x

(* Bounded counterparts that must NOT fire: *)

let max_retries = 3

let rec retry_bounded dev op ~attempt =
  match dev op with
  | Some r -> Some r
  | None -> if attempt >= max_retries then None else retry_bounded dev op ~attempt:(attempt + 1)

(* cap consulted through a record path, the drivers' idiom *)
type policy = { limit : int }

let retry_policy (p : policy) run =
  let rec go ~attempt =
    match run () with
    | Some r -> Some r
    | None -> if attempt >= p.limit then None else go ~attempt:(attempt + 1)
  in
  go ~attempt:0

(* waived: bounded by an exception from below *)
let rec retry_waived run x =
  (match run x with Some r -> r | None -> retry_waived run x)
[@abft.waive "run raises after its internal budget; recursion cannot spin"]

(* 4. while-shaped retry: the serving layer's imperative drain loops
   are retry loops in everything but shape — same bargain applies *)
let drain_retries q =
  while retry_pending q do
    resubmit_head q
  done

(* bounded while counterpart that must NOT fire: the cap is consulted
   in the loop condition *)
let drain_bounded q ~max_attempts =
  let attempts = ref 0 in
  while retry_pending q && !attempts < max_attempts do
    resubmit_head q;
    incr attempts
  done

(* waived while: bounded from below by the queue it drains *)
let drain_waived q =
  (while retry_pending q do
     resubmit_head q
   done)
  [@abft.waive "resubmit_head pops the item on its final failure"]
