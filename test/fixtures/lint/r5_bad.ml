(* R5 fixture: unchecked accesses outside lib/matrix — each unwaived
   use should produce one blocking finding. *)

(* 1. unsafe read in driver-layer code *)
let sum_first3 a = Array.unsafe_get a 0 +. Array.unsafe_get a 1

(* 2. unsafe write *)
let clobber a = Array.unsafe_set a 7 0.

(* 3. passed as a function value, not applied *)
let reader : float array -> int -> float = Array.unsafe_get

(* Waived use: reported but not blocking. *)
let hot_path a i =
  (Array.unsafe_get a i [@abft.waive "i < length a checked by caller"])

(* Safe accesses must NOT fire. *)
let fine a i = a.(i) <- a.(i) *. 2.
