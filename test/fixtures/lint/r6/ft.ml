(* R6 fixture: named ft.ml so the taint rule is in scope. Every read
   below consumes checksummed-kernel output with no verify or recovery
   rung in between — each must be flagged. *)

let direct_flow st a b = Mat.blit ~src:(Blas3.gemm_alloc a b) ~dst:st

let bound_then_read st a b =
  let c = Blas3.gemm_alloc a b in
  Mat.axpy c st

let cross_module st a b =
  let c = Helpers.recompute a b in
  Mat.axpy c st
