(* Cross-module producer: the index fixpoint makes its result a taint
   source at every call site (its tail call lands in Blas3). *)

let recompute a b = Blas3.gemm_alloc a b
