(* Passing twin of r6/ft.ml: every kernel read is verified, recovered
   or explicitly waived before use. *)

let verified_flow st chk a b =
  verify_block st (0, 0);
  let c = Blas3.gemm_alloc a b in
  Verify.compare chk c;
  Mat.axpy c st

let helper_verified st a b =
  verify_block st (0, 0);
  let c = Helpers.recompute a b in
  verify_block st c;
  Mat.axpy c st

let waived st a b =
  verify_block st (0, 0);
  let c =
    Blas3.gemm_alloc a b
    [@abft.unverified "fixture: deliberately unchecked read"]
  in
  Mat.axpy c st
