(* Cross-module producer, as in the failing twin. *)

let recompute a b = Blas3.gemm_alloc a b
