(* R6 fixture: named cg.ml so the solver harness is in the taint
   rule's scope. Blas2 _alloc products consumed without a
   residual_check or verify point in between — each must be
   flagged. *)

let direct_flow x a p = Vec.axpy (Blas2.gemv_alloc a p) x

let bound_then_read x a p =
  let q = Blas2.gemv_alloc a p in
  Vec.dot q x
