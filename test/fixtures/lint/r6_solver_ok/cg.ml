(* Passing twin of r6_solver/cg.ml: every matrix-vector product is
   cross-checked by a residual_check verification point (the solver
   layer's sanitizer spelling) before anything reads it. *)

let verified_flow x a p =
  let q = Blas2.gemv_alloc a p in
  residual_check a x q;
  Vec.axpy q x

let waived x a p =
  let q =
    Blas2.gemv_alloc a p
    [@abft.unverified "fixture: deliberately unchecked read"]
  in
  Vec.dot q x
