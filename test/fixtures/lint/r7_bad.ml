(* R7 fixture: observability spans must close on every path and pool
   attachments must restore under Fun.protect — each function below
   violates one of those. *)

let unbound_start st f =
  Obs.start st.obs;
  f ()

let never_stopped st f =
  let t0 = Obs.start st.obs in
  f t0

let open_across_raise st f =
  let t0 = Obs.start st.obs in
  if f () then raise (Failure "boom");
  Obs.stop st.obs t0

let bare_attach pool sink work =
  Pool.set_obs pool sink;
  work pool

(* a cancellation probe that bails with [failwith] mid-span: a
   failwith is a raise for span purposes, and it loses the span *)
let cancel_mid_span st cancel f =
  let t0 = Obs.start st.obs in
  if cancel () then failwith "request cancelled";
  let r = f () in
  Obs.stop st.obs t0;
  r
