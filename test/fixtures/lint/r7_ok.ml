(* Passing twin of r7_bad.ml: every span closes on all paths and the
   pool attachment restores the saved sink under Fun.protect. *)

let stopped st f =
  let t0 = Obs.start st.obs in
  let r = f () in
  Obs.stop st.obs t0;
  r

let spanned st f = Obs.span st.obs ~op:"work" ~phase:"compute" f

let protected_attach pool sink work =
  let saved = Pool.obs pool in
  Fun.protect
    ~finally:(fun () -> Pool.set_obs pool saved)
    (fun () ->
      Pool.set_obs pool sink;
      work pool)

(* the serving layer's cancellation idiom: poll the flag *before*
   opening the span, then let Obs.span close it on every path *)
let cancel_before_span st cancel f =
  if cancel () then None
  else Some (Obs.span st.obs ~op:"request" ~phase:"serve" f)
