(* R8 fixture: recovery-ladder raises must be accounted before they
   escalate, and recovery exceptions must never be swallowed. *)

let escalate st j =
  if j < 0 then raise (Recovery.Error (Recovery.Fail_stop j));
  st

let swallow run st =
  try run st with Recovery.Error _ -> st
