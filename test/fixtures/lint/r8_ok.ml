(* Passing twin of r8_bad.ml: every escalation is accounted and every
   recovery handler either updates stats or re-raises. The accounting
   in [escalate] flows through a local helper, exercising the index's
   stat-updater fixpoint. *)

let bump st = st.retries <- st.retries + 1

let escalate st j =
  bump st;
  if j < 0 then raise (Recovery.Error (Recovery.Fail_stop j));
  st

let retry run st =
  try run st
  with Recovery.Error e ->
    bump st;
    raise (Recovery.Error e)
